examples/degree_counting.ml: Array Cgraph Fo Folearn Format Gen Graph List Printf
