examples/degree_counting.mli:
