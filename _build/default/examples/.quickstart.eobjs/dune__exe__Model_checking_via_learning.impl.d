examples/model_checking_via_learning.ml: Cgraph Fo Folearn Format Gen Graph List Modelcheck String
