examples/mso_strings.ml: Array Format List Mso String Unix
