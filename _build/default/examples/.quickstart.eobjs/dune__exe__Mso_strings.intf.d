examples/mso_strings.mli:
