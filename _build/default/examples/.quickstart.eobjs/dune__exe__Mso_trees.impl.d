examples/mso_trees.ml: Format List Mso Unix
