examples/mso_trees.mli:
