examples/pac_social_network.ml: Array Cgraph Folearn Format Gen Graph List
