examples/pac_social_network.mli:
