examples/query_reverse_engineering.ml: Array Cgraph Fo Folearn Format Graph List Modelcheck Splitter
