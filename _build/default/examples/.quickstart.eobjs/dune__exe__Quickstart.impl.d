examples/quickstart.ml: Array Cgraph Fo Folearn Format Gen Graph List
