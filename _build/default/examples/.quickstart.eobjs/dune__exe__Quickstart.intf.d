examples/quickstart.mli:
