examples/relational_database.ml: Array Cgraph Folearn Format Graph List Modelcheck
