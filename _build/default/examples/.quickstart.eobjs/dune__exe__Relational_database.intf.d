examples/relational_database.mli:
