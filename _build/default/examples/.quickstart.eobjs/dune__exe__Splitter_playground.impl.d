examples/splitter_playground.ml: Cgraph Format Gen Graph List Splitter
