examples/splitter_playground.mli:
