(* The counting extension (FOC) at work.

   The paper's conclusion proposes extending its results to first-order
   logic with counting.  This demo shows why: at a fixed quantifier rank,
   counting quantifiers are strictly more expressive, so the ERM learner
   reaches zero error where plain FO of the same rank provably cannot.

   Scenario: a load-balancer "hot node" detector.  A node is overloaded
   iff it serves at least 3 clients.  "Degree >= 3" is a single counting
   quantifier (atleast 3 y. E(x, y)), rank 1 — but expressing it uniformly
   in plain FO takes three nested quantifiers (three distinct neighbours).
   At rank 1 plain FO provably cannot fit the data; on a fixed finite
   graph rank-2 type unions may happen to fit, as the table shows.

   Run with:  dune exec examples/degree_counting.exe *)

open Cgraph
module Sam = Folearn.Sample
module Brute = Folearn.Erm_brute
module Cnt = Folearn.Erm_counting
module Hyp = Folearn.Hypothesis

let () =
  (* a caterpillar: spine servers with a few clients each *)
  let g = Gen.caterpillar ~seed:11 ~spine:10 ~legs:4 in
  Format.printf "Network: %d nodes, %d links, max degree %d@.@."
    (Graph.order g) (Graph.size g) (Graph.max_degree g);

  let overloaded v = Graph.degree g v.(0) >= 3 in
  let lam = Sam.label_with g ~target:overloaded (Sam.all_tuples g ~k:1) in
  Format.printf "%d nodes, %d of them overloaded (degree >= 3)@.@."
    (Sam.size lam)
    (List.length (Sam.positives lam));

  (* plain FO at increasing rank *)
  Format.printf "%-28s %12s@." "hypothesis class" "train err";
  List.iter
    (fun q ->
      let r = Brute.solve g ~k:1 ~ell:0 ~q lam in
      Format.printf "%-28s %12.3f@."
        (Printf.sprintf "plain FO, rank %d" q)
        r.Brute.err)
    [ 0; 1; 2 ];

  (* counting at rank 1 with growing threshold caps *)
  List.iter
    (fun tmax ->
      let r = Cnt.solve g ~k:1 ~ell:0 ~q:1 ~tmax lam in
      Format.printf "%-28s %12.3f@."
        (Printf.sprintf "counting FO, rank 1, t<=%d" tmax)
        r.Cnt.err)
    [ 1; 2; 3 ];

  (* show the witness formula the exact counting learner produces *)
  let r = Cnt.solve g ~k:1 ~ell:0 ~q:1 ~tmax:3 lam in
  Format.printf "@.Learned counting hypothesis (err %.3f):@.%a@." r.Cnt.err
    Fo.Formula.pp
    (Hyp.formula r.Cnt.hypothesis);

  (* the concise equivalent a human would write *)
  let concise = Fo.Parser.parse "atleast 3 y. E(x1, y)" in
  let h = Hyp.of_formula g ~k:1 ~formula:concise ~params:[||] in
  Format.printf
    "@.The concise target 'atleast 3 y. E(x1, y)' has training error %.3f@."
    (Hyp.training_error h lam)
