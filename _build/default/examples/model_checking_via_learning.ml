(* Theorem 1 live: decide G |= phi using only an ERM oracle.

   The hardness reduction (Lemma 7) turns a model-checking question into
   polynomially many learning questions: oracle calls on two-example
   training sequences colour the vertex pairs, a Ramsey-style elimination
   shrinks the graph to a set T of type representatives, and the sentence
   is rewritten through fresh colours P_t, Q_t and decided recursively.

   Run with:  dune exec examples/model_checking_via_learning.exe *)

open Cgraph
module Red = Folearn.Reduction
module E = Modelcheck.Eval

let demo g gname phi_src =
  let phi = Fo.Parser.parse phi_src in
  let direct = E.sentence g phi in
  let via_erm, stats = Red.model_check ~oracle:Red.exact_oracle g phi in
  Format.printf "%s |= %s@." gname phi_src;
  Format.printf "  direct model checking : %b@." direct;
  Format.printf "  via the ERM oracle    : %b   %s@." via_erm
    (if direct = via_erm then "(agrees)" else "(DISAGREES!)");
  Format.printf
    "  oracle calls: %d, recursion nodes: %d, representative sets: [%s], colours: %d@.@."
    stats.Red.oracle_calls stats.Red.recursion_nodes
    (String.concat "; "
       (List.map string_of_int stats.Red.representative_sets))
    stats.Red.colors_observed

let () =
  Format.printf
    "=== FO model checking through the (L,Q)-FO-ERM oracle (Theorem 1) ===@.@.";
  let coloured_path =
    Graph.with_colors (Gen.path 9) [ ("Red", [ 0; 4 ]); ("Blue", [ 8 ]) ]
  in
  demo coloured_path "coloured-P9" "exists x. Red(x) /\\ exists y. E(x, y) /\\ Blue(y)";
  demo coloured_path "coloured-P9" "exists x. Red(x) /\\ exists y. E(x, y) /\\ Red(y)";
  demo (Gen.cycle 7) "C7" "forall x. exists y. exists z. E(x, y) /\\ E(x, z) /\\ ~ y = z";
  demo (Gen.star 8) "star8" "exists x. forall y. ~ x = y -> E(x, y)";
  demo (Gen.path 10) "P10" "exists x. forall y. ~ E(x, y)";

  Format.printf
    "Note how the representative sets stay small: on a long path the@.\
     pairwise oracle answers realise only a handful of distinct colours,@.\
     so the Ramsey elimination compresses the quantifier range from n@.\
     vertices to a bounded set of type representatives - that is exactly@.\
     the engine of the fpt Turing reduction.@.@.";

  (* The general-L variant: the oracle is allowed a parameter, and the
     reduction routes every comparison through the disjoint-copies
     construction. *)
  Format.printf "=== general-L variant (oracle may use parameters) ===@.@.";
  let g = Graph.with_colors (Gen.path 5) [ ("Red", [ 2 ]) ] in
  let phi_src = "exists x. Red(x) /\\ exists y. E(x, y)" in
  let phi = Fo.Parser.parse phi_src in
  let direct = E.sentence g phi in
  let via, stats =
    Red.model_check ~general_l:true ~oracle_ell:1 ~locality_radius:2
      ~oracle:Red.exact_oracle g phi
  in
  Format.printf "coloured-P5 |= %s@." phi_src;
  Format.printf "  direct: %b, via 2l-copies construction: %b %s@." direct via
    (if direct = via then "(agrees)" else "(DISAGREES!)");
  Format.printf "  oracle calls on the disjoint-union graphs: %d@."
    stats.Red.oracle_calls
