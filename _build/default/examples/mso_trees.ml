(* Learning MSO-definable hypotheses on trees (related work [19]).

   An XML-ish document tree where some nodes are "sections" (label 1)
   and some are "text" (label 0).  We learn node concepts from labelled
   nodes, and show the per-node preprocessing oracle: two passes over the
   tree, then O(1) classification of every node.

   Run with:  dune exec examples/mso_trees.exe *)

module T = Mso.Tree
module Tf = Mso.Tree_formula
module Tl = Mso.Tree_learner

let () =
  let tree = T.random ~seed:2024 ~sigma:2 ~size:400 in
  Format.printf "document tree: %d nodes, depth %d@.@." (T.size tree)
    (T.depth tree);

  (* hidden concept: "text node directly under a section" *)
  let phi =
    Tf.And
      [
        Tf.Label (0, "x");
        Tf.ExistsPos
          ( "p",
            Tf.And
              [ Tf.Or [ Tf.Child1 ("p", "x"); Tf.Child2 ("p", "x") ];
                Tf.Label (1, "p") ] );
      ]
  in
  Format.printf
    "concept: text node whose parent is a section (an MSO formula phi(x))@.";

  (* the [19]-style preprocessing: bottom-up states + top-down contexts *)
  let t0 = Unix.gettimeofday () in
  let oracle = Tl.Node_oracle.make ~sigma:2 phi tree in
  let t1 = Unix.gettimeofday () in
  let positives =
    List.filter (fun (id, _) -> Tl.Node_oracle.holds oracle id) (T.nodes tree)
  in
  let t2 = Unix.gettimeofday () in
  Format.printf
    "preprocessing: %.2f ms (%d-state automaton); classifying all %d nodes \
     afterwards: %.2f ms@."
    ((t1 -. t0) *. 1e3)
    (Tl.Node_oracle.states oracle)
    (T.size tree)
    ((t2 -. t1) *. 1e3);
  Format.printf "%d nodes satisfy the concept@.@." (List.length positives);

  (* learn the concept back from a handful of labelled nodes *)
  let catalogue =
    [
      { Tl.name = "is text"; phi = Tf.Label (0, "x"); xvars = [ "x" ]; yvars = [] };
      { Tl.name = "is section"; phi = Tf.Label (1, "x"); xvars = [ "x" ]; yvars = [] };
      { Tl.name = "text under a section"; phi; xvars = [ "x" ]; yvars = [] };
    ]
  in
  let examples =
    List.filteri (fun i _ -> i mod 23 = 0) (T.nodes tree)
    |> List.map (fun (id, _) -> ([| id |], Tl.Node_oracle.holds oracle id))
  in
  Format.printf "training on %d labelled nodes...@." (List.length examples);
  match Tl.solve ~sigma:2 ~tree ~catalogue examples with
  | None -> Format.printf "no hypothesis found@."
  | Some r ->
      Format.printf "learned %S with training error %.3f@." r.Tl.entry.Tl.name
        r.Tl.err
