(* Agnostic PAC learning on a noisy social network.

   A random bounded-degree "social network" with Premium users; the data
   generating distribution labels a user as churner if they have no
   Premium friend — but 10% of the labels are corrupted.  We draw i.i.d.
   samples of growing size, learn with ERM, and watch the generalisation
   error approach the Bayes risk, as the uniform-convergence argument of
   Section 3 predicts.

   Run with:  dune exec examples/pac_social_network.exe *)

open Cgraph
module Pac = Folearn.Pac
module Brute = Folearn.Erm_brute

let () =
  let network =
    Gen.colored ~seed:2024 ~colors:[ "Premium" ]
      (Gen.random_bounded_degree ~seed:7 ~n:40 ~d:4)
  in
  Format.printf
    "Social network: %d users, %d friendships, %d premium, max degree %d@.@."
    (Graph.order network) (Graph.size network)
    (List.length (Graph.color_class network "Premium"))
    (Graph.max_degree network);

  let churner v =
    not
      (Array.exists
         (fun u -> Graph.has_color network "Premium" u)
         (Graph.neighbors network v.(0)))
  in
  let noise = 0.10 in
  let d = Pac.uniform_noisy network ~k:1 ~target:churner ~noise in
  Format.printf "Distribution: %s; Bayes risk %.3f@.@." d.Pac.describe
    (Pac.bayes_risk d);

  let solver lam =
    (Brute.solve network ~k:1 ~ell:0 ~q:1 lam).Brute.hypothesis
  in

  (* the uniform-convergence sample bound for this hypothesis class *)
  let log2_h =
    Pac.log2_hypothesis_count network ~k:1 ~ell:0 ~q:1
  in
  Format.printf
    "log2 |H_{1,0,1}(G)| <= %.1f; uniform-convergence bound for eps=0.1, delta=0.05: m >= %d@.@."
    log2_h
    (Pac.sample_bound ~log2_h ~eps:0.1 ~delta:0.05);

  Format.printf "%6s  %10s  %10s  %8s@." "m" "train err" "risk" "gap";
  List.iter
    (fun m ->
      (* average over a few seeds to smooth the picture *)
      let runs = List.init 5 (fun s -> Pac.run ~solver d ~seed:(31 * s) ~m) in
      let avg f =
        List.fold_left (fun a o -> a +. f o) 0.0 runs
        /. float_of_int (List.length runs)
      in
      Format.printf "%6d  %10.3f  %10.3f  %8.3f@." m
        (avg (fun o -> o.Pac.training_error))
        (avg (fun o -> o.Pac.generalisation_error))
        (avg (fun o -> o.Pac.gap)))
    [ 5; 10; 20; 40; 80; 160; 320; 640 ];

  Format.printf
    "@.The gap |train - risk| shrinks like O(sqrt(log|H| / m)): ERM is an@.\
     agnostic PAC learner for first-order queries over this structure.@."
