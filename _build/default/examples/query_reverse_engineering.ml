(* Query reverse engineering — the database motivation of the paper.

   A bibliography database (authors, papers, venues) is encoded as a
   vertex-coloured graph.  A user marks some author-author pairs as
   "related" and others as not; we reverse-engineer a first-order query
   q(x1, x2) consistent with the marks.  This is the k = 2 learning
   problem FO-ERM over a relational structure.

   Run with:  dune exec examples/query_reverse_engineering.exe *)

open Cgraph
module Sam = Folearn.Sample
module Brute = Folearn.Erm_brute
module Nd = Folearn.Erm_nd
module Hyp = Folearn.Hypothesis

(* Schema: Author, Paper, Venue as colours; edges encode authorship
   (author - paper) and publication (paper - venue). *)
let authors = [ 0; 1; 2; 3; 4; 5 ]
let papers = [ 6; 7; 8; 9; 10 ]
let venues = [ 11; 12 ]

let db =
  Graph.create ~n:13
    ~edges:
      [
        (* authorship *)
        (0, 6); (1, 6);            (* alice, bob   -> p1 *)
        (1, 7); (2, 7);            (* bob, carol   -> p2 *)
        (2, 8);                    (* carol        -> p3 *)
        (3, 9); (4, 9);            (* dave, erin   -> p4 *)
        (5, 10);                   (* frank        -> p5 *)
        (* publication *)
        (6, 11); (7, 11); (8, 11); (* p1-p3 at PODS *)
        (9, 12); (10, 12);         (* p4, p5 at ICDT *)
      ]
    ~colors:
      [ ("Author", authors); ("Paper", papers); ("Venue", venues) ]

let name = function
  | 0 -> "alice" | 1 -> "bob" | 2 -> "carol" | 3 -> "dave"
  | 4 -> "erin" | 5 -> "frank"
  | 6 -> "p1" | 7 -> "p2" | 8 -> "p3" | 9 -> "p4" | 10 -> "p5"
  | 11 -> "PODS" | 12 -> "ICDT" | v -> string_of_int v

let () =
  Format.printf "Bibliography database: %d entities, %d facts@.@."
    (Graph.order db) (Graph.size db);

  (* The intent the user has in mind but never writes down:
     "x1 and x2 are co-authors of some paper". *)
  let intent =
    Fo.Parser.parse
      "exists p. Paper(p) /\\ E(x1, p) /\\ E(x2, p) /\\ ~ x1 = x2"
  in

  (* The user only marks a handful of pairs. *)
  let marked_pairs =
    [ (0, 1); (1, 2); (3, 4); (0, 2); (0, 3); (4, 5); (2, 2); (1, 0) ]
  in
  let lam =
    Sam.label_with_query db ~formula:intent ~xvars:[ "x1"; "x2" ]
      (List.map (fun (a, b) -> [| a; b |]) marked_pairs)
  in
  Format.printf "User feedback:@.";
  List.iter
    (fun (t, label) ->
      Format.printf "  (%s, %s) -> %s@." (name t.(0)) (name t.(1))
        (if label then "related" else "unrelated"))
    lam;

  (* Reverse-engineer: exact ERM over quantifier-rank-2 pair queries. *)
  let result = Brute.solve db ~k:2 ~ell:0 ~q:2 lam in
  Format.printf "@.Recovered query (training error %.3f), rank %d@."
    result.Brute.err
    (Hyp.quantifier_rank result.Brute.hypothesis);

  (* Validate the recovered query on ALL pairs against the intent. *)
  let all_pairs =
    List.concat_map (fun a -> List.map (fun b -> [| a; b |]) authors) authors
  in
  let disagreements =
    List.filter
      (fun t ->
        Hyp.predict result.Brute.hypothesis t
        <> Modelcheck.Eval.holds_tuple db ~vars:[ "x1"; "x2" ] t intent)
      all_pairs
  in
  Format.printf "Disagreements with the hidden intent on all %d author pairs: %d@."
    (List.length all_pairs)
    (List.length disagreements);
  List.iter
    (fun t -> Format.printf "  differs on (%s, %s)@." (name t.(0)) (name t.(1)))
    disagreements;

  (* The same problem through the Theorem 13 learner (the database is a
     forest, hence nowhere dense). *)
  let cfg =
    Nd.default_config ~epsilon:0.2 ~radius:2 ~k:2 ~ell_star:0 ~q_star:2
      Splitter.Nowhere_dense.forests
  in
  let rep = Nd.solve cfg db lam in
  Format.printf
    "@.Theorem 13 learner: training error %.3f, %d parameters, rank %d, %d branch(es)@."
    rep.Nd.err rep.Nd.ell_used rep.Nd.q_used rep.Nd.branches_explored
