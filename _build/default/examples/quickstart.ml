(* Quickstart: learn a first-order query from labelled examples.

   We build a small coloured graph, label every vertex with a hidden
   first-order target query, hand the labelled examples to the exact ERM
   solver, and print the hypothesis it learns.

   Run with:  dune exec examples/quickstart.exe *)

open Cgraph
module Sam = Folearn.Sample
module Brute = Folearn.Erm_brute
module Hyp = Folearn.Hypothesis

let () =
  (* A coloured path: think of it as a tiny database of 10 entities in a
     chain, some of which are flagged "Urgent". *)
  let g =
    Graph.with_colors (Gen.path 10) [ ("Urgent", [ 2; 3; 7 ]) ]
  in
  Format.printf "Background structure:@.%a@." Graph.pp g;

  (* The hidden target: "x is urgent or has an urgent neighbour". *)
  let target = Fo.Parser.parse "Urgent(x1) \\/ (exists z. E(x1, z) /\\ Urgent(z))" in
  Format.printf "Hidden target query: %a@.@." Fo.Formula.pp target;

  (* Label all vertices with the target (the realisable setting). *)
  let lam =
    Sam.label_with_query g ~formula:target ~xvars:[ "x1" ]
      (Sam.all_tuples g ~k:1)
  in
  Format.printf "Training sequence (%d examples):@.%a@." (Sam.size lam)
    Sam.pp lam;

  (* Run exact empirical risk minimisation over H_{1,0,1}(G): quantifier
     rank 1, no parameters. *)
  let result = Brute.solve g ~k:1 ~ell:0 ~q:1 lam in
  Format.printf "Learned hypothesis (training error %.3f):@.%a@.@."
    result.Brute.err Hyp.pp result.Brute.hypothesis;

  (* The learned hypothesis classifies every vertex exactly like the
     hidden target. *)
  let agree =
    List.for_all
      (fun (v, label) -> Hyp.predict result.Brute.hypothesis v = label)
      lam
  in
  Format.printf "Agrees with the target on all examples: %b@." agree;

  (* Now a harder target that *needs* a parameter: "x is adjacent to
     vertex 5".  No parameterless rank-0 query expresses it, but ell = 1
     finds the hidden constant. *)
  let lam2 =
    Sam.label_with g ~target:(fun v -> Graph.mem_edge g v.(0) 5)
      (Sam.all_tuples g ~k:1)
  in
  let without = Brute.solve g ~k:1 ~ell:0 ~q:0 lam2 in
  let with_param = Brute.solve g ~k:1 ~ell:1 ~q:0 lam2 in
  Format.printf
    "@.Parameterised target 'adjacent to hidden vertex':@.\
     \  without parameters: training error %.3f@.\
     \  with one parameter: training error %.3f, parameters = %a@."
    without.Brute.err with_param.Brute.err Graph.Tuple.pp
    (Hyp.params with_param.Brute.hypothesis)
