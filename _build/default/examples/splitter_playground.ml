(* The splitter game, played out on several graph classes.

   Fact 4 (Grohe-Kreutzer-Siebertz): a class is nowhere dense iff for
   every radius r Splitter wins the (r, s)-splitter game in a bounded
   number of rounds s.  Watch Splitter demolish sparse graphs quickly and
   struggle on dense ones, where the round count grows with n.

   Run with:  dune exec examples/splitter_playground.exe *)

open Cgraph
module G = Splitter.Game
module S = Splitter.Strategy

let show_game name g ~r =
  Format.printf "--- %s (n = %d, r = %d) ---@." name (Graph.order g) r;
  let tr =
    G.trace g ~r ~connector:(S.connector_max_ball ~r)
      ~splitter:S.best_heuristic
  in
  List.iteri
    (fun i (v, w, remaining) ->
      Format.printf
        "  round %d: Connector picks %d, Splitter answers %d -> arena %d vertices@."
        (i + 1) v w remaining)
    tr;
  (match List.rev tr with
  | (_, _, 0) :: _ ->
      Format.printf "  Splitter wins in %d round(s)@.@." (List.length tr)
  | _ -> Format.printf "  Splitter did not finish within the cap@.@.");
  List.length tr

let () =
  let path = Gen.path 40 in
  let tree = Gen.random_tree ~seed:11 60 in
  let grid = Gen.grid 7 7 in
  let clique = Gen.clique 12 in

  ignore (show_game "path P40" path ~r:2);
  ignore (show_game "random tree, 60 vertices" tree ~r:2);
  ignore (show_game "7x7 grid" grid ~r:2);
  let clique_rounds = show_game "clique K12" clique ~r:1 in
  Format.printf
    "On the clique every radius-1 ball is the whole arena, so each round@.\
     removes exactly one vertex: %d rounds for K12 - the round count@.\
     scales with n, witnessing somewhere-density.@.@."
    clique_rounds;

  (* exact game values on tiny graphs (minimax ground truth) *)
  Format.printf "Exact optimal Splitter round counts (minimax, r = 1):@.";
  List.iter
    (fun (name, g) ->
      match S.minimax_rounds ~cap:6 g ~r:1 with
      | Some v -> Format.printf "  %-10s %d@." name v
      | None -> Format.printf "  %-10s > 6@." name)
    [
      ("P2", Gen.path 2);
      ("P5", Gen.path 5);
      ("C5", Gen.cycle 5);
      ("star7", Gen.star 7);
      ("K4", Gen.clique 4);
    ];

  (* the empirical s(r) profile used by the Theorem 13 learner *)
  Format.printf "@.Empirical s(r) for the heuristic Splitter:@.";
  Format.printf "%12s" "";
  List.iter (fun r -> Format.printf "  r=%d" r) [ 1; 2; 3 ];
  Format.printf "@.";
  List.iter
    (fun (name, g) ->
      Format.printf "%12s" name;
      List.iter
        (fun r ->
          match S.empirical_rounds g ~r ~splitter:S.best_heuristic with
          | Some s -> Format.printf "  %3d" s
          | None -> Format.printf "    -")
        [ 1; 2; 3 ];
      Format.printf "@.")
    [
      ("path40", path);
      ("tree60", tree);
      ("grid7x7", grid);
      ("K12", clique);
    ]
