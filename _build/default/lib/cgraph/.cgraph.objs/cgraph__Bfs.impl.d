lib/cgraph/bfs.ml: Array Graph List Queue
