lib/cgraph/bfs.mli: Graph
