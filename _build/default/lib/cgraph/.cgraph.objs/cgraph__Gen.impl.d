lib/cgraph/gen.ml: Array Fun Graph Hashtbl List Random
