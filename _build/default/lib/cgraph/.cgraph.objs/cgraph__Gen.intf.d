lib/cgraph/gen.mli: Graph
