lib/cgraph/graph.ml: Array Buffer Format Fun List Map Printf String
