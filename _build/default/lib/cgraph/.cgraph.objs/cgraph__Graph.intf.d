lib/cgraph/graph.mli: Format
