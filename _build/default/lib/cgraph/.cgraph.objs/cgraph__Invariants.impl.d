lib/cgraph/invariants.ml: Array Bfs Graph List Ops Queue
