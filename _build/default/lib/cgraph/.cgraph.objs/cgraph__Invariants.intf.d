lib/cgraph/invariants.mli: Graph
