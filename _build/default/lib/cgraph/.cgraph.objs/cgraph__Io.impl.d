lib/cgraph/io.ml: Buffer Fun Graph Hashtbl List Printf String
