lib/cgraph/io.mli: Graph
