lib/cgraph/ops.ml: Array Bfs Fun Graph Hashtbl List
