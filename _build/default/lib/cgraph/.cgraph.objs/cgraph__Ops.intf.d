lib/cgraph/ops.mli: Graph
