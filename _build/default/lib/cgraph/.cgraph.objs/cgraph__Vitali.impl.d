lib/cgraph/vitali.ml: Array Bfs Graph List
