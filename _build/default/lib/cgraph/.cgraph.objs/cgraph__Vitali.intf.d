lib/cgraph/vitali.mli: Graph
