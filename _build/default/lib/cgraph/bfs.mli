(** Breadth-first search: distances and [r]-neighbourhoods.

    Distances follow Section 2 of the paper: [dist(u, v)] is the length of a
    shortest path; the distance from a vertex to a tuple (or set) is the
    minimum over its entries; the distance between two unreachable vertices
    is {!infinity}. *)

val infinity : int
(** Sentinel distance for unreachable vertices (larger than any real
    distance in any graph). *)

val distances : Graph.t -> Graph.vertex -> int array
(** [distances g src] gives the distance from [src] to every vertex
    ({!infinity} for unreachable ones). *)

val distances_multi : Graph.t -> Graph.vertex list -> int array
(** Multi-source distances: [dist(v, S)] for every [v] (all {!infinity}
    when [S] is empty). *)

val dist : Graph.t -> Graph.vertex -> Graph.vertex -> int
(** Pairwise distance. *)

val dist_tuple : Graph.t -> Graph.Tuple.t -> Graph.Tuple.t -> int
(** [dist(ū, v̄) = min over entries] (paper, Section 2).  {!infinity} if
    either tuple is empty or they lie in different components. *)

val ball : Graph.t -> r:int -> Graph.vertex list -> Graph.vertex list
(** [ball g ~r srcs] is the [r]-neighbourhood [N_r(srcs)]: all vertices at
    distance at most [r] from some source, sorted increasingly.  Includes
    the sources themselves (distance 0). *)

val ball_tuple : Graph.t -> r:int -> Graph.Tuple.t -> Graph.vertex list
(** [N_r(ū)] for a tuple. *)

val eccentricity : Graph.t -> Graph.vertex -> int
(** Largest finite distance from the vertex. *)

val within : Graph.t -> r:int -> Graph.vertex -> Graph.vertex -> bool
(** [within g ~r u v] iff [dist(u,v) <= r]; stops the search early. *)
