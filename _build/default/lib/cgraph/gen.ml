let path n =
  Graph.create ~n ~edges:(List.init (max 0 (n - 1)) (fun i -> (i, i + 1))) ~colors:[]

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  let edges = (n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)) in
  Graph.create ~n ~edges ~colors:[]

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  Graph.create ~n ~edges:(List.init (n - 1) (fun i -> (0, i + 1))) ~colors:[]

let clique n =
  let edges =
    List.concat (List.init n (fun i -> List.init i (fun j -> (j, i))))
  in
  Graph.create ~n ~edges ~colors:[]

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Gen.grid: need positive dimensions";
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then edges := (id x y, id (x + 1) y) :: !edges;
      if y + 1 < h then edges := (id x y, id x (y + 1)) :: !edges
    done
  done;
  Graph.create ~n:(w * h) ~edges:!edges ~colors:[]

let complete_binary_tree depth =
  if depth < 0 then invalid_arg "Gen.complete_binary_tree: negative depth";
  let n = (1 lsl (depth + 1)) - 1 in
  let edges =
    List.concat
      (List.init n (fun i ->
           let kids = [ (2 * i) + 1; (2 * i) + 2 ] in
           List.filter_map (fun k -> if k < n then Some (i, k) else None) kids))
  in
  Graph.create ~n ~edges ~colors:[]

let random_tree ~seed n =
  if n < 1 then invalid_arg "Gen.random_tree: need n >= 1";
  let st = Random.State.make [| seed; 0x7ee |] in
  let edges =
    List.init (n - 1) (fun i ->
        let v = i + 1 in
        (Random.State.int st v, v))
  in
  Graph.create ~n ~edges ~colors:[]

let caterpillar ~seed ~spine ~legs =
  if spine < 1 then invalid_arg "Gen.caterpillar: need spine >= 1";
  let st = Random.State.make [| seed; 0xca7 |] in
  let next = ref spine in
  let edges = ref (List.init (spine - 1) (fun i -> (i, i + 1))) in
  for s = 0 to spine - 1 do
    let k = if legs = 0 then 0 else Random.State.int st (legs + 1) in
    for _ = 1 to k do
      edges := (s, !next) :: !edges;
      incr next
    done
  done;
  Graph.create ~n:!next ~edges:!edges ~colors:[]

let random_bounded_degree ~seed ~n ~d =
  if d < 0 then invalid_arg "Gen.random_bounded_degree: negative degree bound";
  let st = Random.State.make [| seed; 0xb0d |] in
  let deg = Array.make n 0 in
  let edges = ref [] in
  let have = Hashtbl.create (n * d) in
  let attempts = n * d * 4 in
  for _ = 1 to attempts do
    if n >= 2 then begin
      let u = Random.State.int st n and v = Random.State.int st n in
      let u, v = (min u v, max u v) in
      if u <> v && deg.(u) < d && deg.(v) < d && not (Hashtbl.mem have (u, v))
      then begin
        Hashtbl.replace have (u, v) ();
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1;
        edges := (u, v) :: !edges
      end
    end
  done;
  Graph.create ~n ~edges:!edges ~colors:[]

let ktree ~seed ~k ~n =
  if k < 1 then invalid_arg "Gen.ktree: need k >= 1";
  if n < k + 1 then invalid_arg "Gen.ktree: need n >= k+1";
  let st = Random.State.make [| seed; 0x27ee |] in
  (* cliques: list of k-subsets available for attachment *)
  let base = List.init (k + 1) Fun.id in
  let edges = ref [] in
  List.iteri
    (fun i u -> List.iteri (fun j v -> if i < j then edges := (u, v) :: !edges) base)
    base;
  let rec k_subsets = function
    | _, 0 -> [ [] ]
    | [], _ -> []
    | x :: rest, j ->
        List.map (fun s -> x :: s) (k_subsets (rest, j - 1)) @ k_subsets (rest, j)
  in
  let cliques = ref (Array.of_list (k_subsets (base, k))) in
  for v = k + 1 to n - 1 do
    let c = (!cliques).(Random.State.int st (Array.length !cliques)) in
    List.iter (fun u -> edges := (u, v) :: !edges) c;
    (* new k-cliques: v with each (k-1)-subset of c *)
    let fresh =
      List.map
        (fun drop -> v :: List.filter (fun u -> u <> drop) c)
        c
    in
    cliques := Array.append !cliques (Array.of_list fresh)
  done;
  Graph.create ~n ~edges:!edges ~colors:[]

let partial_ktree ~seed ~k ~n ~keep =
  if keep < 0.0 || keep > 1.0 then invalid_arg "Gen.partial_ktree: bad keep";
  let g = ktree ~seed ~k ~n in
  let st = Random.State.make [| seed; 0x97c |] in
  let edges =
    List.filter (fun _ -> Random.State.float st 1.0 < keep) (Graph.edges g)
  in
  Graph.create ~n ~edges ~colors:[]

let gnp ~seed ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.gnp: probability out of range";
  let st = Random.State.make [| seed; 0x69b |] in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float st 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges ~colors:[]

let colored ~seed ~colors g =
  let st = Random.State.make [| seed; 0xc01 |] in
  let classes =
    List.map
      (fun c ->
        ( c,
          List.filter (fun _ -> Random.State.bool st) (Graph.vertices g) ))
      colors
  in
  Graph.with_colors g classes

let colored_balanced ~seed ~colors g =
  match colors with
  | [] -> g
  | _ ->
      let st = Random.State.make [| seed; 0xba1 |] in
      let k = List.length colors in
      let assignment =
        List.map (fun v -> (v, Random.State.int st k)) (Graph.vertices g)
      in
      let classes =
        List.mapi
          (fun i c ->
            (c, List.filter_map (fun (v, j) -> if i = j then Some v else None) assignment))
          colors
      in
      Graph.with_colors g classes
