(** Graph generators for workloads and tests.

    All random generators are deterministic given the [seed] argument.
    The sparse families (paths, trees, grids, caterpillars, bounded-degree
    graphs) are nowhere dense; cliques and dense [G(n,p)] are not, giving
    the contrast classes used in the splitter-game experiments (E7). *)

val path : int -> Graph.t
(** Path [P_n] on vertices [0 - 1 - ... - n-1]. *)

val cycle : int -> Graph.t
(** Cycle [C_n] ([n >= 3]). *)

val star : int -> Graph.t
(** Star with centre [0] and [n-1] leaves. *)

val clique : int -> Graph.t
(** Complete graph [K_n]. *)

val grid : int -> int -> Graph.t
(** [grid w h]: the [w*h] grid; vertex [(x,y)] has id [y*w + x].
    Planar, hence nowhere dense. *)

val complete_binary_tree : int -> Graph.t
(** Complete binary tree of the given depth (depth 0 = single vertex). *)

val random_tree : seed:int -> int -> Graph.t
(** Uniform random labelled tree on [n] vertices (random Prüfer-style
    attachment). *)

val caterpillar : seed:int -> spine:int -> legs:int -> Graph.t
(** A path of length [spine] with up to [legs] random pendant vertices per
    spine vertex. *)

val random_bounded_degree : seed:int -> n:int -> d:int -> Graph.t
(** Random graph of maximum degree at most [d] (greedy random matching of
    stubs; the bound is guaranteed, the distribution is not uniform). *)

val gnp : seed:int -> n:int -> p:float -> Graph.t
(** Erdős–Rényi [G(n,p)]. *)

val ktree : seed:int -> k:int -> n:int -> Graph.t
(** A random [k]-tree on [n >= k+1] vertices: start from [K_{k+1}], then
    repeatedly attach a fresh vertex to a random existing [k]-clique.
    Treewidth exactly [k]; bounded-treewidth classes are nowhere dense
    (the setting of the conclusion's MSO question). *)

val partial_ktree : seed:int -> k:int -> n:int -> keep:float -> Graph.t
(** A random subgraph of a [k]-tree keeping each edge with probability
    [keep] (treewidth at most [k]). *)

val colored : seed:int -> colors:string list -> Graph.t -> Graph.t
(** Assign each colour independently to each vertex with probability 1/2
    (colour expansion used to diversify types in the experiments). *)

val colored_balanced : seed:int -> colors:string list -> Graph.t -> Graph.t
(** Partition vertices randomly into the given colours (each vertex gets
    exactly one colour). *)
