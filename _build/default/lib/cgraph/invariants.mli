(** Graph invariants used to characterise workload classes. *)

val components : Graph.t -> Graph.vertex list list
(** Connected components, each sorted, ordered by smallest member. *)

val is_connected : Graph.t -> bool
(** True for graphs with at most one component. *)

val isolated_vertices : Graph.t -> Graph.vertex list
(** Vertices of degree 0. *)

val degeneracy : Graph.t -> int
(** The degeneracy (smallest [d] such that every subgraph has a vertex of
    degree at most [d]); a standard sparseness measure — nowhere dense
    classes of bounded degeneracy include all our sparse generators. *)

val is_forest : Graph.t -> bool
(** True iff the graph is acyclic. *)

val diameter : Graph.t -> int
(** Largest finite eccentricity (0 for the empty graph). *)

val treewidth_exact : ?cap:int -> Graph.t -> int option
(** Exact treewidth by the Bodlaender–Fomin–Koster subset dynamic program
    over elimination orderings ([O(2^n poly)]): [None] if the order
    exceeds [cap] (default 16).  Ground truth for the generator tests
    ([Gen.ktree ~k] has treewidth exactly [k]). *)

val treedepth_upper_bound : Graph.t -> int
(** A cheap upper bound on treedepth: for forests the exact centroid-based
    recursion; otherwise [order].  Used to seed splitter-game budgets. *)
