exception Format_error of string

let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.order g));
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" u v))
    (Graph.edges g);
  List.iter
    (fun c ->
      match Graph.color_class g c with
      | [] -> Buffer.add_string buf (Printf.sprintf "c %s\n" c)
      | members ->
          Buffer.add_string buf
            (Printf.sprintf "c %s %s\n" c
               (String.concat " " (List.map string_of_int members))))
    (Graph.color_names g);
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let n = ref None in
  let edges = ref [] in
  let colors : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let fail lineno msg =
    raise (Format_error (Printf.sprintf "line %d: %s" lineno msg))
  in
  let int_of lineno s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail lineno (Printf.sprintf "expected an integer, got %S" s)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun s -> s <> "")
      with
      | [] -> ()
      | "n" :: rest -> (
          match rest with
          | [ v ] ->
              if !n <> None then fail lineno "duplicate n line";
              n := Some (int_of lineno v)
          | _ -> fail lineno "n takes exactly one argument")
      | "e" :: rest -> (
          match rest with
          | [ u; v ] -> edges := (int_of lineno u, int_of lineno v) :: !edges
          | _ -> fail lineno "e takes exactly two arguments")
      | "c" :: name :: members ->
          let cell =
            match Hashtbl.find_opt colors name with
            | Some cell -> cell
            | None ->
                let cell = ref [] in
                Hashtbl.replace colors name cell;
                cell
          in
          cell := List.map (int_of lineno) members @ !cell
      | "c" :: [] -> fail lineno "c needs a colour name"
      | tok :: _ -> fail lineno (Printf.sprintf "unknown directive %S" tok))
    lines;
  match !n with
  | None -> raise (Format_error "missing n line")
  | Some n ->
      let colors = Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) colors [] in
      (try Graph.create ~n ~edges:!edges ~colors
       with Graph.Invalid_vertex v ->
         raise (Format_error (Printf.sprintf "vertex %d out of range" v)))

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
