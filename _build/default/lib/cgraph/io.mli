(** Plain-text serialisation of coloured graphs.

    Line-oriented format (order of lines is irrelevant except that [n]
    must come first; [#] starts a comment):

    {v
      n 6              # number of vertices
      e 0 1            # an undirected edge
      e 1 2
      c Red 0 3        # a colour class
      c Blue 5
    v} *)

exception Format_error of string
(** Raised with a message naming the offending line. *)

val to_string : Graph.t -> string
(** Serialise (vertices implicit, edges and colours sorted). *)

val of_string : string -> Graph.t
(** Parse.  @raise Format_error on malformed input. *)

val save : string -> Graph.t -> unit
(** Write to a file. *)

val load : string -> Graph.t
(** Read from a file.
    @raise Format_error on malformed content.
    @raise Sys_error if the file cannot be read. *)
