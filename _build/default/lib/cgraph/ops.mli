(** Graph surgery: induced subgraphs, disjoint unions, neighbourhood graphs.

    These are the structure-building operations used throughout the paper:
    induced subgraphs [G\[S\]], the neighbourhood graphs [N_r^G(ū)]
    (Section 2), disjoint unions (hardness proof, Lemma 7), and the edge
    deletions / isolated-vertex additions of the Lemma 16 projection. *)

type embedding = {
  graph : Graph.t;  (** the derived graph *)
  to_sub : Graph.vertex -> Graph.vertex option;
      (** partial map from the original graph into the derived one *)
  of_sub : Graph.vertex -> Graph.vertex;
      (** total map from the derived graph back to the original *)
}
(** An induced subgraph together with its vertex correspondences. *)

val induced : Graph.t -> Graph.vertex list -> embedding
(** [induced g s] is [G\[S\]] (edges and colours restricted to [S]).
    Duplicates in [s] are merged; vertex order is preserved. *)

val neighborhood : Graph.t -> r:int -> Graph.Tuple.t -> embedding
(** The induced [r]-neighbourhood graph [N_r^G(ū)] around a tuple. *)

val disjoint_union : Graph.t list -> Graph.t * (int -> Graph.vertex -> Graph.vertex)
(** [disjoint_union gs] is the disjoint union; the returned function maps
    (index of component, vertex in that component) to the vertex in the
    union.  Colour classes with equal names are merged (their union is
    taken), as required by the copies construction in Lemma 7. *)

val copies : Graph.t -> int -> Graph.t * (int -> Graph.vertex -> Graph.vertex)
(** [copies g c] is the disjoint union of [c] copies of [g];
    the map sends (copy index, original vertex) to the union vertex. *)

val delete_edges_at : Graph.t -> Graph.vertex list -> Graph.t
(** Remove every edge incident to one of the listed vertices (Step 3 of the
    Lemma 16 construction); vertices and colours are kept. *)

val add_isolated : Graph.t -> (string list) list -> Graph.t * Graph.vertex list
(** [add_isolated g colour_sets] appends one fresh isolated vertex per list
    element, carrying exactly the given colours (creating colour classes as
    needed); returns the new graph and the fresh vertex ids (the
    type-representative vertices [t_{I,θ}] of Lemma 16). *)

val subgraph_of : Graph.t -> Graph.t -> bool
(** [subgraph_of h g]: is [h] a subgraph of [g] under the identity map
    (paper, Section 2: [V ⊆ V], [E ⊆ E], [P ⊆ P])? *)
