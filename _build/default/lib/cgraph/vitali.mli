(** Lemma 3 of the paper (a consequence of the Vitali Covering Lemma).

    Given a set [X ⊆ V(G)] and a radius [r >= 1], produce [Z ⊆ X] and
    [R = 3^i * r] for some [0 <= i <= |X| - 1] such that
    - the [R]-balls around distinct members of [Z] are pairwise disjoint, and
    - [N_r(X) ⊆ N_R(Z)]. *)

type cover = {
  centers : Graph.vertex list;  (** the set [Z ⊆ X], sorted *)
  radius : int;  (** the blown-up radius [R = 3^i * r] *)
  rounds : int;  (** the index [i], i.e. how often the radius was tripled *)
}

val cover : Graph.t -> r:int -> Graph.vertex list -> cover
(** Runs the inductive construction from the proof of Lemma 3: start with
    [Z_0 = X]; while some two [R_i]-balls intersect, take an inclusion-wise
    maximal subset with pairwise disjoint balls and triple the radius.
    @raise Invalid_argument if [r < 1] or [X] is empty. *)

val check : Graph.t -> r:int -> Graph.vertex list -> cover -> bool
(** Verifies both conclusions of Lemma 3 for a claimed cover (used by the
    property tests). *)
