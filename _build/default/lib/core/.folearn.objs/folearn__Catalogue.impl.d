lib/core/catalogue.ml: Array Cgraph Fo Graph List Modelcheck Printf
