lib/core/catalogue.mli: Cgraph Fo Graph
