lib/core/erm_brute.ml: Cgraph Graph Hashtbl Hypothesis List Modelcheck Printf Sample
