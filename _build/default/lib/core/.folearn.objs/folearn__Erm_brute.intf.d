lib/core/erm_brute.mli: Cgraph Graph Hypothesis Sample
