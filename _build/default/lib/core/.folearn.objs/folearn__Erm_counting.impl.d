lib/core/erm_counting.ml: Cgraph Graph Hashtbl Hypothesis List Modelcheck Printf Sample
