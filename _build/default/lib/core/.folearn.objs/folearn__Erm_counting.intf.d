lib/core/erm_counting.mli: Cgraph Graph Hypothesis Sample
