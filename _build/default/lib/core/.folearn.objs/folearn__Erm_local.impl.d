lib/core/erm_local.ml: Array Bfs Cgraph Fo Graph Hashtbl Hypothesis List Modelcheck Printf Sample
