lib/core/erm_local.mli: Cgraph Graph Hypothesis Sample
