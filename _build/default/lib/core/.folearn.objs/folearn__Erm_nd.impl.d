lib/core/erm_nd.ml: Array Bfs Cgraph Fo Fun Graph Hashtbl Hypothesis Int List Logs Modelcheck Ops Printf Sample Set Splitter String
