lib/core/erm_nd.mli: Cgraph Graph Hypothesis Sample Splitter
