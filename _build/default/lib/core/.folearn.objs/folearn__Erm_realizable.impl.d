lib/core/erm_realizable.ml: Array Cgraph Fo Graph Hypothesis List Modelcheck Printf Sample
