lib/core/erm_realizable.mli: Cgraph Fo Graph Hypothesis Sample
