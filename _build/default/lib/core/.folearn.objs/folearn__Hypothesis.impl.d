lib/core/hypothesis.ml: Array Cgraph Fo Format Graph Int Lazy List Modelcheck Printf Sample Set String
