lib/core/hypothesis.mli: Cgraph Fo Format Graph Modelcheck Sample
