lib/core/pac.ml: Array Cgraph Float Graph Hashtbl Hypothesis Lazy List Modelcheck Printf Random Sample
