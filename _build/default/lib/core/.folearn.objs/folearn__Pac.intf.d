lib/core/pac.mli: Cgraph Graph Hypothesis Lazy Random Sample
