lib/core/preindex.ml: Array Cgraph Graph Hashtbl Hypothesis List Modelcheck Printf Sample
