lib/core/preindex.mli: Cgraph Graph Hypothesis Sample
