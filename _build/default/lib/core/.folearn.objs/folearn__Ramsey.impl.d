lib/core/ramsey.ml: Array Hashtbl List
