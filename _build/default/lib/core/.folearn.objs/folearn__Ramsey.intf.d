lib/core/ramsey.mli:
