lib/core/reduction.ml: Array Bfs Cgraph Erm_brute Fo Graph Hashtbl Hypothesis Invariants List Modelcheck Ops Printf Ramsey Sample String
