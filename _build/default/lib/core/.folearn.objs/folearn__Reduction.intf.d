lib/core/reduction.mli: Cgraph Fo Graph Hypothesis Sample
