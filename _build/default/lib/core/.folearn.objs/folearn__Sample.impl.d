lib/core/sample.ml: Array Cgraph Float Format Graph List Modelcheck Random
