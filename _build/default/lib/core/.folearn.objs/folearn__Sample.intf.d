lib/core/sample.mli: Cgraph Fo Format Graph
