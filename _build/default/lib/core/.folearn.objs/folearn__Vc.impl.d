lib/core/vc.ml: Array Cgraph Graph Hashtbl List Modelcheck Random
