lib/core/vc.mli: Cgraph Graph
