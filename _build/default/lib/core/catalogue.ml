open Cgraph
module Types = Modelcheck.Types

(* realised local (q,r)-types of (1+ell)-tuples, as canonical types *)
let realised_types g ~ell ~q ~r =
  let ctx = Types.make_ctx g in
  Types.partition_by_ltp ctx ~q ~r
    (Graph.Tuple.all ~n:(Graph.order g) ~k:(1 + ell))
  |> List.map fst

(* the formula "ltp(x, y1..yell) ∈ {θ}": relativised Hintikka over the
   Algorithm 2 variable convention (x, y1, ..., yell) *)
let formula_of_types g ~ell ~q:_ ~r thetas =
  let colors = Graph.color_names g in
  let vars = Modelcheck.Hintikka.variables (1 + ell) in
  let rename =
    ("x1", "x")
    :: List.init ell (fun i ->
           (Printf.sprintf "x%d" (i + 2), Printf.sprintf "y%d" (i + 1)))
  in
  Fo.Formula.or_
    (List.map
       (fun theta ->
         Fo.Formula.substitute rename
           (Fo.Localize.relativize ~r ~around:vars
              (Modelcheck.Hintikka.of_type ~colors theta)))
       thetas)

let subsets_smallest_first items ~limit =
  (* enumerate subsets in order of increasing cardinality, skipping the
     empty set, stopping at [limit] *)
  let arr = Array.of_list items in
  let n = Array.length arr in
  let out = ref [] in
  let count = ref 0 in
  (try
     for size = 1 to n do
       (* all index subsets of the given size *)
       let rec choose start acc =
         if List.length acc = size then begin
           incr count;
           out := List.rev_map (fun i -> arr.(i)) acc :: !out;
           if !count >= limit then raise Exit
         end
         else
           for i = start to n - 1 do
             choose (i + 1) (i :: acc)
           done
       in
       choose 0 []
     done
   with Exit -> ());
  List.rev !out

let of_local_types g ~ell ~q ~r ?(max_size = 256) () =
  if ell < 0 then invalid_arg "Catalogue.of_local_types: negative ell";
  let types = realised_types g ~ell ~q ~r in
  List.map
    (fun thetas -> formula_of_types g ~ell ~q ~r thetas)
    (subsets_smallest_first types ~limit:max_size)

let positive_types_only g ~ell ~q ~r =
  List.map
    (fun theta -> formula_of_types g ~ell ~q ~r [ theta ])
    (realised_types g ~ell ~q ~r)
