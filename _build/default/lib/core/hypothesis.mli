(** Hypotheses [h_{φ,w̄} : V(G)^k → {0,1}] (paper, Sections 1 and 3).

    A hypothesis is a first-order formula [φ(x̄; ȳ)] together with a
    parameter tuple [w̄ ∈ V(G)^ℓ]; it classifies [v̄] as positive iff
    [G |= φ(v̄; w̄)].

    Besides the syntactic form, the learners build hypotheses {e
    semantically} as sets of canonical types: by Corollary 6, a
    quantifier-rank-[q] hypothesis is exactly a union of [q]-types (or of
    local [(q,r)]-types).  Such hypotheses classify via the type machinery
    (fast) and materialise a witness formula — a disjunction of Hintikka
    formulas — only on demand. *)

open Cgraph

type t

val xvars : int -> Fo.Formula.var list
(** Standard example variables [x1 ... xk]. *)

val yvars : int -> Fo.Formula.var list
(** Standard parameter variables [y1 ... yℓ]. *)

(** {1 Constructors} *)

val of_formula :
  Graph.t -> k:int -> formula:Fo.Formula.t -> params:Graph.Tuple.t -> t
(** Syntactic hypothesis.  [formula] must have free variables among
    [x1..xk, y1..yℓ] where [ℓ = |params|].
    @raise Invalid_argument otherwise. *)

val of_types :
  Graph.t -> k:int -> q:int -> types:Modelcheck.Types.ty list -> params:Graph.Tuple.t -> t
(** Semantic hypothesis "[tp_q(G, v̄·w̄)] is one of [types]".  The witness
    formula has quantifier rank exactly [q] (for [q >= 1]). *)

val of_local_types :
  Graph.t ->
  k:int -> q:int -> r:int ->
  types:Modelcheck.Types.ty list ->
  params:Graph.Tuple.t ->
  t
(** Semantic hypothesis "[ltp_{q,r}(G, v̄·w̄)] is one of [types]" — the
    shape produced by the Theorem 13 learner.  The witness formula is the
    [r]-relativised Hintikka disjunction, of quantifier rank
    [q + O(log r)] (the paper's [Q] relaxation). *)

val of_counting_types :
  Graph.t ->
  k:int -> q:int -> tmax:int ->
  types:Modelcheck.Ctypes.ty list ->
  params:Graph.Tuple.t ->
  t
(** Semantic FOC hypothesis "the counting type [ctp_q^tmax(G, v̄·w̄)] is
    one of [types]" (the counting extension from the paper's conclusion).
    The witness formula uses [atleast] quantifiers. *)

val of_counting_local_types :
  Graph.t ->
  k:int -> q:int -> tmax:int -> r:int ->
  types:Modelcheck.Ctypes.ty list ->
  params:Graph.Tuple.t ->
  t
(** Local counting-type hypothesis
    "[cltp_q^tmax(G, v̄·w̄)] at radius [r] is one of [types]" — produced
    by the Theorem 13 learner in counting mode. *)

val constantly : Graph.t -> k:int -> bool -> t
(** The constant hypothesis (formula [true] or [false], no parameters). *)

val conj : t -> t -> t
(** Conjunction of two hypotheses over the same graph and arity: predicts
    positive iff both do; witness formula is the conjunction (parameters
    are concatenated, the second operand's [y] variables shifted).
    @raise Invalid_argument on arity mismatch. *)

val disj : t -> t -> t
(** Disjunction, dually. *)

val negate : t -> t
(** Complement hypothesis. *)

(** {1 Use} *)

val predict : t -> Graph.Tuple.t -> bool
(** Classify a [k]-tuple. *)

val formula : t -> Fo.Formula.t
(** The witness formula [φ(x̄; ȳ)] (materialised on first use). *)

val params : t -> Graph.Tuple.t
(** The parameter tuple [w̄]. *)

val k : t -> int
val ell : t -> int

val quantifier_rank : t -> int
(** Rank of the witness formula (without materialising it for semantic
    hypotheses). *)

val training_error : t -> Sample.t -> float
(** [err_Λ(φ, w̄)]. *)

val signature : t -> string
(** A canonical identity string: two hypotheses over the same graph with
    equal signatures classify identically.  Used as the Ramsey colouring
    in the hardness reduction. *)

val pp : Format.formatter -> t -> unit
(** Prints the witness formula and the parameters. *)
