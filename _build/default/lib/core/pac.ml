open Cgraph

type dist = {
  describe : string;
  sample : Random.State.t -> Sample.example;
  support : (Sample.example * float) list Lazy.t;
}

let uniform_target g ~k ~target =
  let n = Graph.order g in
  if n = 0 then invalid_arg "Pac.uniform_target: empty graph";
  {
    describe = Printf.sprintf "uniform over V^%d, realisable" k;
    sample =
      (fun st ->
        let v = Array.init k (fun _ -> Random.State.int st n) in
        (v, target v));
    support =
      lazy
        (let tuples = Graph.Tuple.all ~n ~k in
         let p = 1.0 /. float_of_int (List.length tuples) in
         List.map (fun v -> ((v, target v), p)) tuples);
  }

let uniform_noisy g ~k ~target ~noise =
  if noise < 0.0 || noise > 1.0 then invalid_arg "Pac.uniform_noisy: bad noise";
  let n = Graph.order g in
  if n = 0 then invalid_arg "Pac.uniform_noisy: empty graph";
  {
    describe = Printf.sprintf "uniform over V^%d, noise %.2f" k noise;
    sample =
      (fun st ->
        let v = Array.init k (fun _ -> Random.State.int st n) in
        let l = target v in
        let l = if Random.State.float st 1.0 < noise then not l else l in
        (v, l));
    support =
      lazy
        (let tuples = Graph.Tuple.all ~n ~k in
         let p = 1.0 /. float_of_int (List.length tuples) in
         List.concat_map
           (fun v ->
             let l = target v in
             [
               ((v, l), p *. (1.0 -. noise));
               ((v, not l), p *. noise);
             ])
           tuples);
  }

let weighted ~describe entries =
  if entries = [] then invalid_arg "Pac.weighted: empty support";
  List.iter
    (fun (_, w) -> if w <= 0.0 then invalid_arg "Pac.weighted: weight <= 0")
    entries;
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 entries in
  let entries = List.map (fun (e, w) -> (e, w /. total)) entries in
  {
    describe;
    sample =
      (fun st ->
        let x = Random.State.float st 1.0 in
        let rec pick acc = function
          | [ (e, _) ] -> e
          | (e, w) :: rest -> if acc +. w >= x then e else pick (acc +. w) rest
          | [] -> assert false
        in
        pick 0.0 entries);
    support = lazy entries;
  }

let draw d ~seed ~m =
  let st = Random.State.make [| seed; 0xd1 |] in
  List.init m (fun _ -> d.sample st)

let risk d h =
  List.fold_left
    (fun acc ((v, l), p) -> if h v <> l then acc +. p else acc)
    0.0 (Lazy.force d.support)

let bayes_risk d =
  (* best classifier: per tuple, predict the majority label *)
  let tbl : (Graph.Tuple.t, float * float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ((v, l), p) ->
      let pos, neg =
        match Hashtbl.find_opt tbl v with Some c -> c | None -> (0.0, 0.0)
      in
      Hashtbl.replace tbl v (if l then (pos +. p, neg) else (pos, neg +. p)))
    (Lazy.force d.support);
  Hashtbl.fold (fun _ (pos, neg) acc -> acc +. min pos neg) tbl 0.0

let log2_hypothesis_count g ~k ~ell ~q =
  let n = float_of_int (max 1 (Graph.order g)) in
  let t = float_of_int (Modelcheck.Types.count_types g ~q ~k:(k + ell)) in
  t +. (float_of_int ell *. Float.log2 n)

let sample_bound ~log2_h ~eps ~delta =
  if eps <= 0.0 || delta <= 0.0 then
    invalid_arg "Pac.sample_bound: eps, delta must be > 0";
  let ln_h = log2_h *. log 2.0 in
  int_of_float (ceil (2.0 *. (ln_h +. log (2.0 /. delta)) /. (eps *. eps)))

type outcome = {
  m : int;
  training_error : float;
  generalisation_error : float;
  best_risk : float;
  gap : float;
}

let run ~solver d ~seed ~m =
  let lam = draw d ~seed ~m in
  let h = solver lam in
  let training_error = Hypothesis.training_error h lam in
  let generalisation_error = risk d (Hypothesis.predict h) in
  let best_risk = bayes_risk d in
  {
    m;
    training_error;
    generalisation_error;
    best_risk;
    gap = Float.abs (training_error -. generalisation_error);
  }

let cross_validate ~solver ~seed ~k lam =
  let folds = Sample.kfold ~seed ~k lam in
  let total =
    List.fold_left
      (fun acc (train, validation) ->
        let h = solver train in
        acc +. Hypothesis.training_error h validation)
      0.0 folds
  in
  total /. float_of_int k
