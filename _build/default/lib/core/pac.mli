(** Agnostic PAC learning on top of ERM (paper, Sections 1 and 3).

    PAC learning draws [m] labelled examples from an unknown distribution
    [D] on [V(G)^k × {0,1}], runs an ERM solver on the sample, and bounds
    the generalisation error via uniform convergence: for a finite
    hypothesis class, [m = O((log |H| + log(1/δ)) / ε²)] examples suffice
    for the training error of every hypothesis to be [ε]-close to its
    risk, making the ERM output an [2ε]-approximate risk minimiser with
    probability [1 - δ]. *)

open Cgraph

type dist = {
  describe : string;
  sample : Random.State.t -> Sample.example;
  support : (Sample.example * float) list Lazy.t;
      (** exact support with probabilities, for exact risk computation *)
}
(** A data-generating distribution on [V(G)^k × {0,1}]. *)

val uniform_target : Graph.t -> k:int -> target:(Graph.Tuple.t -> bool) -> dist
(** Uniform distribution on tuples, deterministic labels (realisable
    setting). *)

val uniform_noisy :
  Graph.t -> k:int -> target:(Graph.Tuple.t -> bool) -> noise:float -> dist
(** Uniform on tuples, labels flipped with probability [noise] (agnostic
    setting; the Bayes risk is [noise]). *)

val weighted :
  describe:string -> (Sample.example * float) list -> dist
(** Arbitrary finite distribution (weights are normalised).
    @raise Invalid_argument on empty or non-positive weights. *)

val draw : dist -> seed:int -> m:int -> Sample.t
(** An i.i.d. sample of size [m]. *)

val risk : dist -> (Graph.Tuple.t -> bool) -> float
(** Exact generalisation error
    [Pr_{(v̄,λ) ~ D} (h(v̄) ≠ λ)] (sums the support). *)

val bayes_risk : dist -> float
(** The risk of the best possible classifier (majority label per tuple). *)

(** {1 Uniform-convergence sample bounds} *)

val log2_hypothesis_count : Graph.t -> k:int -> ell:int -> q:int -> float
(** [log2] of an upper bound on [|H_{k,ℓ,q}(G)|]:
    [t + ℓ·log2 n] where [t] is the number of realised
    [(k+ℓ)]-variable [q]-types (every hypothesis is a type set for some
    parameter tuple).  Matches the paper's [f(k,ℓ,q) · n^ℓ] shape
    (Section 3) and never overflows. *)

val sample_bound : log2_h:float -> eps:float -> delta:float -> int
(** Agnostic uniform-convergence bound
    [m >= (2 (ln|H| + ln(2/δ))) / ε²] (Hoeffding + union bound). *)

(** {1 End-to-end PAC experiments} *)

type outcome = {
  m : int;
  training_error : float;
  generalisation_error : float;
  best_risk : float;  (** [min_h risk(h)] proxy: risk of ERM on the full support *)
  gap : float;  (** |training - generalisation| *)
}

val run :
  solver:(Sample.t -> Hypothesis.t) ->
  dist ->
  seed:int ->
  m:int ->
  outcome
(** Draw, learn, and measure (one PAC trial). *)

val cross_validate :
  solver:(Sample.t -> Hypothesis.t) -> seed:int -> k:int -> Sample.t -> float
(** Mean validation error over a {!Sample.kfold} — the practitioner's
    estimate of the generalisation error when no distribution oracle is
    available.
    @raise Invalid_argument on bad [k]. *)
