let overflow_guard name x =
  if x < 0 then invalid_arg (name ^ ": overflow")

let factorial n =
  if n < 0 then invalid_arg "Ramsey.factorial: negative input";
  let rec go acc i =
    if i > n then acc
    else begin
      let acc' = acc * i in
      if acc' < acc then invalid_arg "Ramsey.factorial: overflow";
      go acc' (i + 1)
    end
  in
  go 1 1

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      let next = !acc * (n - k + i) / i in
      overflow_guard "Ramsey.binomial" next;
      acc := next
    done;
    !acc
  end

let triangle_bound ~colors =
  if colors < 1 then invalid_arg "Ramsey.triangle_bound: need >= 1 colour";
  (* R_s(3) <= floor(s! * e) + 1 = 1 + sum_{i=0..s} s!/i!  (Greenwood-
     Gleason style bound) *)
  let s = colors in
  let total = ref 0 in
  let term = ref 1 in
  (* term = s! / i! computed downwards from i = s (term 1) to i = 0 *)
  for i = s downto 0 do
    total := !total + !term;
    overflow_guard "Ramsey.triangle_bound" !total;
    if i >= 1 then begin
      term := !term * i;
      overflow_guard "Ramsey.triangle_bound" !term
    end
  done;
  !total + 1

let ramsey_upper ~colors ~clique =
  if colors < 1 || clique < 1 then
    invalid_arg "Ramsey.ramsey_upper: need colors, clique >= 1";
  let memo : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  (* args: multiset of clique targets, sorted *)
  let rec r args =
    match args with
    | [] -> 1
    | _ when List.mem 1 args -> 1
    | [ m ] -> m (* one colour: K_m appears at n = m *)
    | _ when List.mem 2 args ->
        (* R(2, rest) = R(rest): either some pair takes the "2" colour,
           or the colouring never uses it *)
        let rec drop_one = function
          | 2 :: rest -> rest
          | x :: rest -> x :: drop_one rest
          | [] -> []
        in
        r (drop_one args)
    | _ -> (
        let args = List.sort compare args in
        match Hashtbl.find_opt memo args with
        | Some v -> v
        | None ->
            let s = List.length args in
            let total =
              List.fold_left ( + ) (2 - s)
                (List.mapi
                   (fun i _ ->
                     r (List.mapi (fun j m -> if i = j then m - 1 else m) args))
                   args)
            in
            overflow_guard "Ramsey.ramsey_upper" total;
            Hashtbl.replace memo args total;
            total)
  in
  r (List.init colors (fun _ -> clique))

let monochromatic_triple ~color ~equal vs =
  let arr = Array.of_list (List.sort_uniq compare vs) in
  let n = Array.length arr in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         let cij = color arr.(i) arr.(j) in
         for l = j + 1 to n - 1 do
           if
             equal cij (color arr.(i) arr.(l))
             && equal cij (color arr.(j) arr.(l))
           then begin
             found := Some (arr.(i), arr.(j), arr.(l));
             raise Exit
           end
         done
       done
     done
   with Exit -> ());
  !found

let eliminate_until_ramsey_free ~color ~equal vs =
  let rec go vs =
    match monochromatic_triple ~color ~equal vs with
    | None -> vs
    | Some (_, v2, _) -> go (List.filter (fun v -> v <> v2) vs)
  in
  go (List.sort_uniq compare vs)
