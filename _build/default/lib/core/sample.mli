(** Training sequences [Λ ∈ (V(G)^k × {0,1})^m] and example generators.

    The learning problems of Section 3 consume a sequence of labelled
    [k]-tuples over the background graph.  This module provides the
    sequence type, realisable labelling by a hidden target query, label
    noise, and the bookkeeping ([err_Λ], positives/negatives) shared by
    every ERM solver. *)

open Cgraph

type example = Graph.Tuple.t * bool
(** One labelled example [(v̄, λ)]. *)

type t = example list
(** A training sequence [Λ]; order is irrelevant to every algorithm but
    preserved. *)

val size : t -> int

val positives : t -> Graph.Tuple.t list
(** [Λ⁺]: tuples labelled 1, in sequence order. *)

val negatives : t -> Graph.Tuple.t list
(** [Λ⁻]: tuples labelled 0, in sequence order. *)

val arity : t -> int option
(** Common arity [k] of the examples; [None] for an empty sequence.
    @raise Invalid_argument if examples disagree on arity. *)

val error_of : (Graph.Tuple.t -> bool) -> t -> float
(** Training error [err_Λ(h)]: fraction of misclassified examples
    (0 on the empty sequence). *)

val errors_of : (Graph.Tuple.t -> bool) -> t -> int
(** Absolute number of misclassified examples. *)

(** {1 Generators} *)

val all_tuples : Graph.t -> k:int -> Graph.Tuple.t list
(** Every [k]-tuple over the graph. *)

val random_tuples : seed:int -> Graph.t -> k:int -> m:int -> Graph.Tuple.t list
(** [m] tuples drawn uniformly (with replacement). *)

val label_with :
  Graph.t -> target:(Graph.Tuple.t -> bool) -> Graph.Tuple.t list -> t
(** Realisable labelling by a target predicate. *)

val label_with_query :
  Graph.t ->
  formula:Fo.Formula.t ->
  xvars:Fo.Formula.var list ->
  ?yvars:Fo.Formula.var list ->
  ?params:Graph.Tuple.t ->
  Graph.Tuple.t list ->
  t
(** Realisable labelling by the query [φ(x̄; ȳ)] with parameters [w̄]:
    label 1 iff [G |= φ(v̄; w̄)]. *)

val flip_noise : seed:int -> p:float -> t -> t
(** Independently flip each label with probability [p] (agnostic-setting
    workloads). *)

val split : seed:int -> ratio:float -> t -> t * t
(** Random train/test split; [ratio] is the training fraction.
    @raise Invalid_argument unless [0 <= ratio <= 1]. *)

val kfold : seed:int -> k:int -> t -> (t * t) list
(** [k] (train, validation) folds of a random permutation; every example
    appears in exactly one validation fold.
    @raise Invalid_argument unless [1 <= k <= size]. *)

val pp : Format.formatter -> t -> unit
