open Cgraph
module Types = Modelcheck.Types

(* Dichotomies realised on S for one parameter tuple w̄: all labelings of
   S constant on the q-type classes of v̄·w̄.  Represented as bitmasks over
   the positions of S. *)
let dichotomies_for ctx ~q ~params s =
  let classes : (Types.ty, int) Hashtbl.t = Hashtbl.create 16 in
  let class_masks = ref [] in
  List.iteri
    (fun pos v ->
      let t = Types.tp ctx ~q (Graph.Tuple.append v params) in
      match Hashtbl.find_opt classes t with
      | Some idx ->
          class_masks :=
            List.mapi
              (fun i m -> if i = idx then m lor (1 lsl pos) else m)
              !class_masks
      | None ->
          Hashtbl.replace classes t (List.length !class_masks);
          class_masks := !class_masks @ [ 1 lsl pos ])
    s;
  (* all unions of a subset of class masks *)
  let masks = Array.of_list !class_masks in
  let c = Array.length masks in
  List.init (1 lsl c) (fun choice ->
      let acc = ref 0 in
      for i = 0 to c - 1 do
        if choice land (1 lsl i) <> 0 then acc := !acc lor masks.(i)
      done;
      !acc)

let all_dichotomies g ~k:_ ~ell ~q s =
  let ctx = Types.make_ctx g in
  let n = Graph.order g in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun params ->
      List.iter
        (fun mask -> Hashtbl.replace seen mask ())
        (dichotomies_for ctx ~q ~params s))
    (Graph.Tuple.all ~n ~k:ell);
  seen

let dichotomy_count g ~k ~ell ~q s =
  if List.length s > 20 then invalid_arg "Vc.dichotomy_count: set too large";
  Hashtbl.length (all_dichotomies g ~k ~ell ~q s)

let is_shattered g ~k ~ell ~q s =
  dichotomy_count g ~k ~ell ~q s = 1 lsl List.length s

let lower_bound ?(seed = 7) ?(attempts = 40) g ~k ~ell ~q ~max_d =
  let st = Random.State.make [| seed; 0xc |] in
  let n = Graph.order g in
  if n = 0 then 0
  else begin
    let random_tuple () = Array.init k (fun _ -> Random.State.int st n) in
    let best = ref 0 in
    for _ = 1 to attempts do
      (* greedy growth: keep adding random tuples while still shattered *)
      let rec grow s size =
        if size >= max_d then size
        else begin
          let rec try_extend tries =
            if tries = 0 then None
            else begin
              let v = random_tuple () in
              if List.exists (fun u -> Graph.Tuple.equal u v) s then
                try_extend (tries - 1)
              else if is_shattered g ~k ~ell ~q (v :: s) then Some (v :: s)
              else try_extend (tries - 1)
            end
          in
          match try_extend 12 with
          | Some s' -> grow s' (size + 1)
          | None -> size
        end
      in
      best := max !best (grow [] 0)
    done;
    !best
  end

let exact_small g ~k ~ell ~q ~max_d =
  let tuples = Graph.Tuple.all ~n:(Graph.order g) ~k in
  let rec subsets_of_size d = function
    | _ when d = 0 -> [ [] ]
    | [] -> []
    | x :: rest ->
        List.map (fun s -> x :: s) (subsets_of_size (d - 1) rest)
        @ subsets_of_size d rest
  in
  let rec go d =
    if d > max_d then max_d
    else if
      List.exists
        (fun s -> is_shattered g ~k ~ell ~q s)
        (subsets_of_size (d + 1) tuples)
    then go (d + 1)
    else d
  in
  go 0
