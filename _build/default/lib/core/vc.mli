(** VC dimension of the hypothesis classes [H_{k,ℓ,q}(G)].

    Section 3 of the paper: on nowhere dense classes the VC dimension of
    [H_{k,ℓ,q}(G)] is bounded by a constant [d(C, k, ℓ, q)] independent of
    [|G|] (Adler–Adler), whereas on somewhere dense classes it grows.
    Experiment E9 measures this contrast.

    Shattering test used here: by Corollary 6, for a fixed parameter tuple
    [w̄] the dichotomies realised on a set [S] of [k]-tuples are exactly
    the labelings constant on the [q]-type classes of [{v̄·w̄ : v̄ ∈ S}];
    [S] is shattered iff the union over [w̄] of those labeling sets covers
    all [2^{|S|}] labelings. *)

open Cgraph

val dichotomy_count : Graph.t -> k:int -> ell:int -> q:int -> Graph.Tuple.t list -> int
(** Number of distinct dichotomies of the given tuple set realised by
    [H_{k,ℓ,q}(G)].  Requires [|S| <= 20]. *)

val is_shattered : Graph.t -> k:int -> ell:int -> q:int -> Graph.Tuple.t list -> bool
(** [dichotomy_count = 2^{|S|}]. *)

val lower_bound :
  ?seed:int -> ?attempts:int -> Graph.t -> k:int -> ell:int -> q:int -> max_d:int -> int
(** Largest shattered set found by randomised + greedy search: a {e lower}
    bound on [VC(H_{k,ℓ,q}(G))], capped at [max_d]. *)

val exact_small : Graph.t -> k:int -> ell:int -> q:int -> max_d:int -> int
(** Exact VC dimension by exhaustive search over subsets of [V^k] of size
    [<= max_d + 1] (exponential; tiny graphs only). *)
