lib/fo/formula.ml: Format Hashtbl List Printf Set Stdlib String
