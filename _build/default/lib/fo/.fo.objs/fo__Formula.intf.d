lib/fo/formula.mli: Format
