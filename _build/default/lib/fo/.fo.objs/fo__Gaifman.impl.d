lib/fo/gaifman.ml:
