lib/fo/gaifman.mli:
