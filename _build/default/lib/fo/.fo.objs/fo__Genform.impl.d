lib/fo/genform.ml: Formula List Printf Random
