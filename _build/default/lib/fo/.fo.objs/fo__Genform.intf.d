lib/fo/genform.mli: Formula
