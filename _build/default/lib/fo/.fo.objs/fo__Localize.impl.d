lib/fo/localize.ml: Formula List Printf
