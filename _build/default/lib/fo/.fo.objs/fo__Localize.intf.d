lib/fo/localize.mli: Formula
