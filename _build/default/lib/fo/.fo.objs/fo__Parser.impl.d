lib/fo/parser.ml: Formula List Printf String
