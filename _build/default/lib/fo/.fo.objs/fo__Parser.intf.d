lib/fo/parser.mli: Formula
