lib/fo/prenex.ml: Formula List Printf
