lib/fo/prenex.mli: Formula
