type var = string

type atom =
  | Eq of var * var
  | Edge of var * var
  | Color of string * var

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Exists of var * t
  | Forall of var * t
  | CountGe of int * var * t

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let tru = True
let fls = False
let eq x y = Atom (Eq (x, y))
let edge x y = Atom (Edge (x, y))
let color c x = Atom (Color (c, x))

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let and_ fs =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | True :: rest -> flatten acc rest
    | False :: _ -> None
    | And gs :: rest -> flatten acc (gs @ rest)
    | f :: rest -> flatten (f :: acc) rest
  in
  match flatten [] fs with
  | None -> False
  | Some [] -> True
  | Some [ f ] -> f
  | Some fs -> And fs

let or_ fs =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | False :: rest -> flatten acc rest
    | True :: _ -> None
    | Or gs :: rest -> flatten acc (gs @ rest)
    | f :: rest -> flatten (f :: acc) rest
  in
  match flatten [] fs with
  | None -> True
  | Some [] -> False
  | Some [ f ] -> f
  | Some fs -> Or fs

let implies a b =
  match (a, b) with
  | False, _ -> True
  | True, b -> b
  | _, True -> True
  | a, False -> not_ a
  | a, b -> Implies (a, b)

let iff a b =
  match (a, b) with
  | True, b -> b
  | a, True -> a
  | False, b -> not_ b
  | a, False -> not_ a
  | a, b -> Iff (a, b)

let exists x f = match f with False -> False | f -> Exists (x, f)
let forall x f = match f with True -> True | f -> Forall (x, f)

let count_ge t x f =
  if t < 0 then invalid_arg "Formula.count_ge: negative threshold";
  if t = 0 then True
  else match f with False -> False | f -> CountGe (t, x, f)
let exists_many xs f = List.fold_right exists xs f
let forall_many xs f = List.fold_right forall xs f

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let rec quantifier_rank = function
  | True | False | Atom _ -> 0
  | Not f -> quantifier_rank f
  | And fs | Or fs ->
      List.fold_left (fun acc f -> max acc (quantifier_rank f)) 0 fs
  | Implies (a, b) | Iff (a, b) ->
      max (quantifier_rank a) (quantifier_rank b)
  | Exists (_, f) | Forall (_, f) | CountGe (_, _, f) -> 1 + quantifier_rank f

module VSet = Set.Make (String)

let atom_vars = function
  | Eq (x, y) | Edge (x, y) -> VSet.of_list [ x; y ]
  | Color (_, x) -> VSet.singleton x

let rec free_set = function
  | True | False -> VSet.empty
  | Atom a -> atom_vars a
  | Not f -> free_set f
  | And fs | Or fs ->
      List.fold_left (fun acc f -> VSet.union acc (free_set f)) VSet.empty fs
  | Implies (a, b) | Iff (a, b) -> VSet.union (free_set a) (free_set b)
  | Exists (x, f) | Forall (x, f) | CountGe (_, x, f) -> VSet.remove x (free_set f)

let free_vars f = VSet.elements (free_set f)

let rec all_set = function
  | True | False -> VSet.empty
  | Atom a -> atom_vars a
  | Not f -> all_set f
  | And fs | Or fs ->
      List.fold_left (fun acc f -> VSet.union acc (all_set f)) VSet.empty fs
  | Implies (a, b) | Iff (a, b) -> VSet.union (all_set a) (all_set b)
  | Exists (x, f) | Forall (x, f) | CountGe (_, x, f) -> VSet.add x (all_set f)

let all_vars f = VSet.elements (all_set f)

module SSet = Set.Make (String)

let colors_used f =
  let rec go acc = function
    | True | False -> acc
    | Atom (Color (c, _)) -> SSet.add c acc
    | Atom _ -> acc
    | Not f -> go acc f
    | And fs | Or fs -> List.fold_left go acc fs
    | Implies (a, b) | Iff (a, b) -> go (go acc a) b
    | Exists (_, f) | Forall (_, f) | CountGe (_, _, f) -> go acc f
  in
  SSet.elements (go SSet.empty f)

let rec size = function
  | True | False | Atom _ -> 1
  | Not f -> 1 + size f
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + size f) 1 fs
  | Implies (a, b) | Iff (a, b) -> 1 + size a + size b
  | Exists (_, f) | Forall (_, f) | CountGe (_, _, f) -> 1 + size f

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (f : t) = Hashtbl.hash f

(* ------------------------------------------------------------------ *)
(* Renaming and substitution                                           *)
(* ------------------------------------------------------------------ *)

let fresh_var ~avoid base =
  if not (List.mem base avoid) then base
  else begin
    let rec go i =
      let cand = Printf.sprintf "%s%d" base i in
      if List.mem cand avoid then go (i + 1) else cand
    in
    go 0
  end

let rename sigma f =
  (* capture-avoiding: when entering a binder whose variable collides with
     the image of a free variable, refresh the bound variable first. *)
  let rec go sigma f =
    match f with
    | True | False -> f
    | Atom (Eq (x, y)) -> Atom (Eq (sigma x, sigma y))
    | Atom (Edge (x, y)) -> Atom (Edge (sigma x, sigma y))
    | Atom (Color (c, x)) -> Atom (Color (c, sigma x))
    | Not f -> Not (go sigma f)
    | And fs -> And (List.map (go sigma) fs)
    | Or fs -> Or (List.map (go sigma) fs)
    | Implies (a, b) -> Implies (go sigma a, go sigma b)
    | Iff (a, b) -> Iff (go sigma a, go sigma b)
    | Exists (x, body) ->
        let x', body' = refresh sigma x body in
        Exists (x', go (under x' sigma) body')
    | Forall (x, body) ->
        let x', body' = refresh sigma x body in
        Forall (x', go (under x' sigma) body')
    | CountGe (t, x, body) ->
        let x', body' = refresh sigma x body in
        CountGe (t, x', go (under x' sigma) body')
  and under x sigma y = if y = x then x else sigma y
  and refresh sigma x body =
    let fv = VSet.remove x (free_set body) in
    let images = VSet.elements fv |> List.map sigma in
    if List.mem x images then begin
      let avoid = images @ VSet.elements (all_set body) in
      let x' = fresh_var ~avoid x in
      let body' =
        go (fun y -> if y = x then x' else y) body
      in
      (x', body')
    end
    else (x, body)
  in
  go sigma f

let substitute assoc f =
  rename (fun x -> match List.assoc_opt x assoc with Some y -> y | None -> x) f

let rec map_atoms h = function
  | True -> True
  | False -> False
  | Atom a -> h a
  | Not f -> not_ (map_atoms h f)
  | And fs -> and_ (List.map (map_atoms h) fs)
  | Or fs -> or_ (List.map (map_atoms h) fs)
  | Implies (a, b) -> implies (map_atoms h a) (map_atoms h b)
  | Iff (a, b) -> iff (map_atoms h a) (map_atoms h b)
  | Exists (x, f) -> exists x (map_atoms h f)
  | Forall (x, f) -> forall x (map_atoms h f)
  | CountGe (t, x, f) -> count_ge t x (map_atoms h f)

(* ------------------------------------------------------------------ *)
(* Normal forms                                                        *)
(* ------------------------------------------------------------------ *)

let rec nnf f =
  match f with
  | True | False | Atom _ -> f
  | Implies (a, b) -> nnf (Or [ Not a; b ])
  | Iff (a, b) -> nnf (Or [ And [ a; b ]; And [ Not a; Not b ] ])
  | And fs -> and_ (List.map nnf fs)
  | Or fs -> or_ (List.map nnf fs)
  | Exists (x, f) -> exists x (nnf f)
  | Forall (x, f) -> forall x (nnf f)
  | CountGe (t, x, f) -> count_ge t x (nnf f)
  | Not g -> (
      match g with
      | True -> False
      | False -> True
      | Atom _ -> Not g
      | Not h -> nnf h
      | And fs -> or_ (List.map (fun f -> nnf (Not f)) fs)
      | Or fs -> and_ (List.map (fun f -> nnf (Not f)) fs)
      | Implies (a, b) -> nnf (And [ a; Not b ])
      | Iff (a, b) -> nnf (Or [ And [ a; Not b ]; And [ Not a; b ] ])
      | Exists (x, f) -> forall x (nnf (Not f))
      | Forall (x, f) -> exists x (nnf (Not f))
      | CountGe (t, x, f) ->
          (* "< t" has no positive form in our syntax; keep the guarded
             negation, whose operand is in NNF *)
          not_ (count_ge t x (nnf f)))

let rec simplify f =
  match f with
  | True | False -> f
  | Atom (Eq (x, y)) when x = y -> True
  | Atom _ -> f
  | Not f -> not_ (simplify f)
  | And fs -> and_ (List.sort_uniq Stdlib.compare (List.map simplify fs))
  | Or fs -> or_ (List.sort_uniq Stdlib.compare (List.map simplify fs))
  | Implies (a, b) -> implies (simplify a) (simplify b)
  | Iff (a, b) -> iff (simplify a) (simplify b)
  | Exists (x, f) ->
      let f = simplify f in
      if not (VSet.mem x (free_set f)) then f else exists x f
  | Forall (x, f) ->
      let f = simplify f in
      if not (VSet.mem x (free_set f)) then f else forall x f
  | CountGe (t, x, f) -> count_ge t x (simplify f)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

(* precedence levels: 0 = iff, 1 = implies, 2 = or, 3 = and, 4 = unary *)
let rec pp_prec lvl ppf f =
  let paren needed body =
    if needed then Format.fprintf ppf "(%t)" body else body ppf
  in
  match f with
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom (Eq (x, y)) -> Format.fprintf ppf "%s = %s" x y
  | Atom (Edge (x, y)) -> Format.fprintf ppf "E(%s, %s)" x y
  | Atom (Color (c, x)) -> Format.fprintf ppf "%s(%s)" c x
  | Not f ->
      Format.pp_print_string ppf "~";
      pp_prec 4 ppf f
  | And fs ->
      paren (lvl > 3) (fun ppf ->
          Format.pp_open_hvbox ppf 0;
          Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.fprintf ppf " /\\@ ")
            (pp_prec 4) ppf fs;
          Format.pp_close_box ppf ())
  | Or fs ->
      paren (lvl > 2) (fun ppf ->
          Format.pp_open_hvbox ppf 0;
          Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.fprintf ppf " \\/@ ")
            (pp_prec 3) ppf fs;
          Format.pp_close_box ppf ())
  | Implies (a, b) ->
      paren (lvl > 1) (fun ppf ->
          Format.fprintf ppf "%a -> %a" (pp_prec 2) a (pp_prec 1) b)
  | Iff (a, b) ->
      paren (lvl > 0) (fun ppf ->
          Format.fprintf ppf "%a <-> %a" (pp_prec 1) a (pp_prec 1) b)
  | Exists (x, f) ->
      paren (lvl > 0) (fun ppf ->
          Format.fprintf ppf "exists %s.@ %a" x (pp_prec 0) f)
  | Forall (x, f) ->
      paren (lvl > 0) (fun ppf ->
          Format.fprintf ppf "forall %s.@ %a" x (pp_prec 0) f)
  | CountGe (t, x, f) ->
      paren (lvl > 0) (fun ppf ->
          Format.fprintf ppf "atleast %d %s.@ %a" t x (pp_prec 0) f)

let pp ppf f =
  Format.pp_open_hvbox ppf 0;
  pp_prec 0 ppf f;
  Format.pp_close_box ppf ()

let to_string f = Format.asprintf "%a" pp f
