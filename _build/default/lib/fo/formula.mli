(** First-order formulas over vocabularies of vertex-coloured graphs.

    The vocabulary [tau = {E, P_1, ..., P_c}] has one binary relation [E]
    and unary colour predicates, matching {!Cgraph.Graph}.  Equality is a
    logical symbol.  Quantifier rank, free variables, and the normal-form
    conventions follow Section 2 of the paper. *)

type var = string
(** Variable names. *)

(** Atomic formulas. *)
type atom =
  | Eq of var * var  (** [x = y] *)
  | Edge of var * var  (** [E(x, y)] *)
  | Color of string * var  (** [P(x)] for a colour [P] *)

(** Formulas.  [And]/[Or] are n-ary (flattened by the smart constructors);
    an empty conjunction is [True], an empty disjunction is [False]. *)
type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Exists of var * t
  | Forall of var * t
  | CountGe of int * var * t
      (** counting quantifier [∃^{>=t} x. φ] — the FOC extension proposed
          in the paper's conclusion (cf. van Bergerem, LICS 2019).
          [Exists] is [CountGe 1] semantically; both are kept for
          faithful plain-FO quantifier ranks. *)

(** {1 Smart constructors}

    These perform local simplification (unit laws, flattening, double
    negation) so that mechanically built formulas — Hintikka formulas in
    particular — stay readable. *)

val tru : t
val fls : t
val eq : var -> var -> t
val edge : var -> var -> t
val color : string -> var -> t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val implies : t -> t -> t
val iff : t -> t -> t
val exists : var -> t -> t
val forall : var -> t -> t
val exists_many : var list -> t -> t
val forall_many : var list -> t -> t

val count_ge : int -> var -> t -> t
(** [count_ge t x f] is [∃^{>=t} x. f]; simplifies the trivial thresholds
    ([t = 0] gives [true], [f = False] with [t >= 1] gives [false]). *)

(** {1 Inspection} *)

val quantifier_rank : t -> int
(** Maximum nesting depth of quantifiers. *)

val free_vars : t -> var list
(** Free variables, sorted, without duplicates. *)

val all_vars : t -> var list
(** Free and bound variables, sorted, without duplicates. *)

val colors_used : t -> string list
(** Colour predicates occurring in the formula, sorted. *)

val size : t -> int
(** Number of connective/atom nodes. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Transformation} *)

val rename : (var -> var) -> t -> t
(** Apply a renaming to the {e free} variables.  The renaming is applied
    capture-avoidingly: bound variables are refreshed when they collide
    with an image of the renaming. *)

val substitute : (var * var) list -> t -> t
(** Parallel free-variable substitution [x := y] given as an association
    list; variables not listed are unchanged. *)

val map_atoms : (atom -> t) -> t -> t
(** Replace every atom by a formula (used by the hardness reduction to
    rewrite [x = y ↦ P_t(y)], [E(x,y) ↦ Q_t(y)], and [P_i(z) ↦ False]). *)

val nnf : t -> t
(** Negation normal form; eliminates [Implies]/[Iff]. *)

val simplify : t -> t
(** Bottom-up constant folding and de-duplication of juncts.  Preserves
    logical equivalence and never increases the quantifier rank. *)

val fresh_var : avoid:var list -> string -> var
(** [fresh_var ~avoid base] is a variable named like [base] that avoids
    the given names. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Concrete syntax accepted by {!Parser.parse}. *)

val to_string : t -> string
