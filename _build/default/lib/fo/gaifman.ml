let radius q =
  if q < 0 then invalid_arg "Gaifman.radius: negative quantifier rank";
  if q > 21 then invalid_arg "Gaifman.radius: 7^q overflows on this platform";
  let rec pow7 q = if q = 0 then 1 else 7 * pow7 (q - 1) in
  (pow7 q - 1) / 2

let rank_overhead r =
  if r < 0 then invalid_arg "Gaifman.rank_overhead: negative radius";
  let rec go acc cover = if cover >= r then acc else go (acc + 1) (2 * cover) in
  if r <= 1 then 0 else go 0 1
