(** The locality radius of Fact 5 (a consequence of Gaifman's theorem).

    Fact 5: there is an [r = r(q) in 2^{O(q)}], independent of the
    vocabulary, such that tuples with equal local [(q, r)]-types have equal
    [q]-types.  The classical bound extracted from Gaifman's proof is
    [r(q) = (7^q - 1) / 2].

    Substitution note (DESIGN.md §5): the bound is astronomical already for
    moderate [q]; all algorithms take the radius as an explicit argument,
    defaulting to {!radius}, so experiments can run the same code at a
    feasible radius while property tests check Fact 5 at the radius used. *)

val radius : int -> int
(** [radius q = (7^q - 1) / 2]: Gaifman locality radius for quantifier
    rank [q].  [radius 0 = 0], [radius 1 = 3], [radius 2 = 24].
    @raise Invalid_argument on negative rank or overflow ([q > 21]). *)

val rank_overhead : int -> int
(** [rank_overhead r]: the quantifier-rank cost [ceil(log2 r)] of making a
    formula [r]-local (the [O(max(q, log r))] of the hardness proof). *)
