(** Distance formulas and relativisation of quantifiers to neighbourhoods.

    The hardness proof (Lemma 7, general-[L] branch) turns a formula
    [phi(x)] into an [r]-local formula by restricting every quantifier to
    vertices at distance at most [r] from [x]; the quantifier rank grows by
    [O(log r)] via the recursive-doubling distance formulas below. *)

val dist_le : d:int -> Formula.var -> Formula.var -> Formula.t
(** [dist_le ~d x y] defines [dist(x, y) <= d].  Quantifier rank is
    [ceil(log2 d)] for [d >= 1] (0 for [d <= 1]), by recursive doubling:
    [dist(x,y) <= 2d  iff  exists z. dist(x,z) <= d /\ dist(z,y) <= d]. *)

val dist_gt : d:int -> Formula.var -> Formula.var -> Formula.t
(** Negation of {!dist_le}. *)

val relativize : r:int -> around:Formula.var list -> Formula.t -> Formula.t
(** [relativize ~r ~around phi] restricts every quantifier in [phi] to the
    union of the [r]-balls around the given variables: existential bodies
    are conjoined with, universal bodies guarded by,
    [\/_{x in around} dist(y, x) <= r].

    If [around] contains all free variables of [phi], the result is
    [r]-local: its truth value at a tuple [v̄] only depends on the induced
    neighbourhood [N_r(v̄)] (tested in [test_localize.ml]). *)

val ball_membership : r:int -> Formula.var list -> Formula.var -> Formula.t
(** [ball_membership ~r centers y] is the guard
    [\/_{x in centers} dist(y, x) <= r]. *)
