exception Parse_error of string

type token =
  | IDENT of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EQ
  | NEQ
  | NOT
  | AND
  | OR
  | IMPLIES
  | IFF
  | TRUE
  | FALSE
  | EXISTS
  | FORALL
  | ATLEAST
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | EQ -> "'='"
  | NEQ -> "'!='"
  | NOT -> "'~'"
  | AND -> "'/\\'"
  | OR -> "'\\/'"
  | IMPLIES -> "'->'"
  | IFF -> "'<->'"
  | TRUE -> "'true'"
  | FALSE -> "'false'"
  | EXISTS -> "'exists'"
  | FORALL -> "'forall'"
  | ATLEAST -> "'atleast'"
  | EOF -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (emit LPAREN; incr i)
    else if c = ')' then (emit RPAREN; incr i)
    else if c = ',' then (emit COMMA; incr i)
    else if c = '.' then (emit DOT; incr i)
    else if c = '~' then (emit NOT; incr i)
    else if c = '&' then (emit AND; incr i)
    else if c = '|' then (emit OR; incr i)
    else if c = '=' then (emit EQ; incr i)
    else if c = '!' && !i + 1 < n && input.[!i + 1] = '=' then (emit NEQ; i := !i + 2)
    else if c = '/' && !i + 1 < n && input.[!i + 1] = '\\' then (emit AND; i := !i + 2)
    else if c = '\\' && !i + 1 < n && input.[!i + 1] = '/' then (emit OR; i := !i + 2)
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '>' then (emit IMPLIES; i := !i + 2)
    else if c = '<' && !i + 2 < n && input.[!i + 1] = '-' && input.[!i + 2] = '>'
    then (emit IFF; i := !i + 3)
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do incr i done;
      let word = String.sub input start (!i - start) in
      match word with
      | "true" -> emit TRUE
      | "false" -> emit FALSE
      | "not" -> emit NOT
      | "and" -> emit AND
      | "or" -> emit OR
      | "exists" -> emit EXISTS
      | "forall" -> emit FORALL
      | "atleast" -> emit ATLEAST
      | w -> emit (IDENT w)
    end
    else
      raise (Parse_error (Printf.sprintf "unexpected character %C at offset %d" c !i))
  done;
  emit EOF;
  List.rev !tokens

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t =
  let got = peek st in
  if got = t then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (token_to_string t)
            (token_to_string got)))

let expect_ident st =
  match peek st with
  | IDENT x ->
      advance st;
      x
  | got ->
      raise
        (Parse_error
           (Printf.sprintf "expected an identifier but found %s"
              (token_to_string got)))

let rec parse_formula st = parse_iff st

and parse_iff st =
  let lhs = parse_impl st in
  let rec loop acc =
    match peek st with
    | IFF ->
        advance st;
        let rhs = parse_impl st in
        loop (Formula.iff acc rhs)
    | _ -> acc
  in
  loop lhs

and parse_impl st =
  let lhs = parse_or st in
  match peek st with
  | IMPLIES ->
      advance st;
      let rhs = parse_impl st in
      Formula.implies lhs rhs
  | _ -> lhs

and parse_or st =
  let first = parse_and st in
  let rec loop acc =
    match peek st with
    | OR ->
        advance st;
        loop (parse_and st :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with [ f ] -> f | fs -> Formula.or_ fs

and parse_and st =
  let first = parse_unary st in
  let rec loop acc =
    match peek st with
    | AND ->
        advance st;
        loop (parse_unary st :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with [ f ] -> f | fs -> Formula.and_ fs

and parse_unary st =
  match peek st with
  | NOT ->
      advance st;
      Formula.not_ (parse_unary st)
  | ATLEAST ->
      advance st;
      let t =
        match peek st with
        | IDENT n -> (
            advance st;
            match int_of_string_opt n with
            | Some t when t >= 0 -> t
            | _ ->
                raise
                  (Parse_error
                     (Printf.sprintf
                        "atleast needs a non-negative threshold, got %S" n)))
        | got ->
            raise
              (Parse_error
                 (Printf.sprintf "atleast needs a threshold but found %s"
                    (token_to_string got)))
      in
      let x = expect_ident st in
      expect st DOT;
      let body = parse_formula st in
      Formula.count_ge t x body
  | EXISTS | FORALL ->
      let quant = peek st in
      advance st;
      let rec idents acc =
        match peek st with
        | IDENT x ->
            advance st;
            idents (x :: acc)
        | _ -> List.rev acc
      in
      let xs = idents [] in
      if xs = [] then
        raise (Parse_error "quantifier must bind at least one variable");
      expect st DOT;
      let body = parse_formula st in
      if quant = EXISTS then Formula.exists_many xs body
      else Formula.forall_many xs body
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | TRUE ->
      advance st;
      Formula.tru
  | FALSE ->
      advance st;
      Formula.fls
  | LPAREN ->
      advance st;
      let f = parse_formula st in
      expect st RPAREN;
      f
  | IDENT name -> (
      advance st;
      match peek st with
      | EQ ->
          advance st;
          Formula.eq name (expect_ident st)
      | NEQ ->
          advance st;
          Formula.not_ (Formula.eq name (expect_ident st))
      | LPAREN ->
          advance st;
          let a = expect_ident st in
          let f =
            match peek st with
            | COMMA ->
                advance st;
                let b = expect_ident st in
                if name = "E" then Formula.edge a b
                else
                  raise
                    (Parse_error
                       (Printf.sprintf
                          "binary predicate %S is not part of the vocabulary"
                          name))
            | _ ->
                if name = "E" then
                  raise (Parse_error "edge predicate E needs two arguments")
                else Formula.color name a
          in
          expect st RPAREN;
          f
      | got ->
          raise
            (Parse_error
               (Printf.sprintf
                  "identifier %S must begin an atom; found %s instead" name
                  (token_to_string got))))
  | got ->
      raise
        (Parse_error
           (Printf.sprintf "expected a formula but found %s"
              (token_to_string got)))

let parse input =
  let st = { toks = lex input } in
  let f = parse_formula st in
  expect st EOF;
  f

let parse_opt input = try Some (parse input) with Parse_error _ -> None
