(** A hand-written recursive-descent parser for the concrete formula syntax
    produced by {!Formula.pp}.

    Grammar (precedence increasing downwards, [->] right-associative):
    {v
      formula := iff
      iff     := impl ('<->' impl)*
      impl    := or ('->' impl)?
      or      := and (('\/' | 'or' | '|') and)*
      and     := unary (('/\' | 'and' | '&') unary)*
      unary   := ('~' | 'not') unary | quantified | primary
      quantified := ('exists' | 'forall') ident+ '.' formula
                   | 'atleast' nat ident '.' formula        (counting)
      primary := '(' formula ')' | 'true' | 'false' | atom
      atom    := ident '=' ident | ident '!=' ident
               | 'E' '(' ident ',' ident ')'       (edge)
               | ident '(' ident ')'               (colour)
    v}

    Quantifier bodies extend as far right as possible. *)

exception Parse_error of string
(** Raised with a human-readable message pointing at the offending token. *)

val parse : string -> Formula.t
(** @raise Parse_error on malformed input. *)

val parse_opt : string -> Formula.t option
(** Like {!parse} but returns [None] instead of raising. *)
