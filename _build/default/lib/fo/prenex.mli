(** Prenex normal form for plain first-order formulas.

    Every FO formula is equivalent to one of the shape
    [Q_1 v_1 ... Q_p v_p. matrix] with a quantifier-free matrix.  The
    transformation goes through NNF and extracts quantifiers with fresh
    bound-variable names, so it is capture-safe; the number of
    quantifiers is preserved but the quantifier {e rank} may grow (a
    conjunction of two rank-1 formulas becomes rank 2). *)

exception Unsupported of string
(** Raised on counting quantifiers: [∃^{>=t}] does not commute with the
    connectives the way plain quantifiers do. *)

val to_prenex : Formula.t -> Formula.t
(** Logically equivalent prenex form.  @raise Unsupported on counting. *)

val is_prenex : Formula.t -> bool
(** Is the formula already of prenex shape? *)

val prefix_length : Formula.t -> int
(** Number of leading quantifiers ([0] if not prenex-shaped at all —
    simply counts the leading spine). *)
