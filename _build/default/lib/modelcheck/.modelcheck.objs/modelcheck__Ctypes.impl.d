lib/modelcheck/ctypes.ml: Array Cgraph Fo Format Graph Hashtbl Hintikka List Ops Option Printf Stdlib Types
