lib/modelcheck/ctypes.mli: Cgraph Fo Format Graph Types
