lib/modelcheck/ef.ml: Array Cgraph Graph Hashtbl List
