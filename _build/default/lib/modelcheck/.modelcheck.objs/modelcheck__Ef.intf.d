lib/modelcheck/ef.mli: Cgraph Graph
