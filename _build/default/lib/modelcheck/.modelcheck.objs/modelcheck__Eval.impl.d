lib/modelcheck/eval.ml: Array Cgraph Fo Graph List Map String
