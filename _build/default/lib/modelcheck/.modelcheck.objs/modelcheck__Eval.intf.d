lib/modelcheck/eval.mli: Cgraph Fo Graph
