lib/modelcheck/hintikka.ml: Array Fo List Printf Types
