lib/modelcheck/hintikka.mli: Cgraph Fo Types
