lib/modelcheck/locality.ml: Cgraph Graph List Types
