lib/modelcheck/locality.mli: Cgraph Graph Types
