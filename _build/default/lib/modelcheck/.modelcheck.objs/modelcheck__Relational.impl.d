lib/modelcheck/relational.ml: Array Cgraph Fo Format Fun Graph Hashtbl List Map Printf String
