lib/modelcheck/relational.mli: Cgraph Fo Format Graph
