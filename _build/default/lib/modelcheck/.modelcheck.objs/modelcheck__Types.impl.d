lib/modelcheck/types.ml: Array Cgraph Format Graph Hashtbl List Ops Stdlib
