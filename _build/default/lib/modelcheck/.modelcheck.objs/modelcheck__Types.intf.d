lib/modelcheck/types.mli: Cgraph Format Graph
