open Cgraph

let partial_isomorphism g u h v =
  let k = Array.length u in
  Array.length v = k
  && begin
       let ok = ref true in
       for i = 0 to k - 1 do
         for j = i + 1 to k - 1 do
           if (u.(i) = u.(j)) <> (v.(i) = v.(j)) then ok := false;
           if Graph.mem_edge g u.(i) u.(j) <> Graph.mem_edge h v.(i) v.(j)
           then ok := false
         done
       done;
       for i = 0 to k - 1 do
         if Graph.colors_of g u.(i) <> Graph.colors_of h v.(i) then ok := false
       done;
       !ok
     end

let equiv ~q g u h v =
  if q < 0 then invalid_arg "Ef.equiv: negative round count";
  let memo : (int * Graph.Tuple.t * Graph.Tuple.t, bool) Hashtbl.t =
    Hashtbl.create 1024
  in
  let rec go q u v =
    match Hashtbl.find_opt memo (q, u, v) with
    | Some b -> b
    | None ->
        let result =
          partial_isomorphism g u h v
          && (q = 0
             || (spoiler_loses q g u h v (fun w w' ->
                     go (q - 1) (Graph.Tuple.append u [| w |])
                       (Graph.Tuple.append v [| w' |]))
                && spoiler_loses q h v g u (fun w' w ->
                       go (q - 1)
                         (Graph.Tuple.append u [| w |])
                         (Graph.Tuple.append v [| w' |]))))
        in
        Hashtbl.replace memo (q, u, v) result;
        result
  and spoiler_loses _q side_a _ua side_b _ub answer =
    (* for every Spoiler move in [side_a], Duplicator has a reply in
       [side_b] *)
    List.for_all
      (fun w -> List.exists (fun w' -> answer w w') (Graph.vertices side_b))
      (Graph.vertices side_a)
  in
  go q u v

let rank_distinguishing ~max_q g u h v =
  let rec go q =
    if q > max_q then None
    else if not (equiv ~q g u h v) then Some q
    else go (q + 1)
  in
  go 0
