(** Ehrenfeucht–Fraïssé games.

    [(G, ū)] and [(H, v̄)] are [q]-equivalent (Duplicator wins the
    [q]-round EF game) iff [tp_q(G, ū) = tp_q(H, v̄)].  This module is an
    {e independent} implementation of type equality used to cross-validate
    the canonical type construction of {!Types} in the test suite. *)

open Cgraph

val partial_isomorphism : Graph.t -> Graph.Tuple.t -> Graph.t -> Graph.Tuple.t -> bool
(** Do the tuples induce a partial isomorphism (equalities, edges and
    colours agree position-wise)?  This is 0-equivalence. *)

val equiv : q:int -> Graph.t -> Graph.Tuple.t -> Graph.t -> Graph.Tuple.t -> bool
(** [equiv ~q g u h v]: does Duplicator win the [q]-round game from
    position [(ū, v̄)]?  Memoised per call; cost is
    [O((|G| * |H|)^q)] in the worst case, so keep [q] and the graphs small
    (this function exists for validation, not production use). *)

val rank_distinguishing :
  max_q:int -> Graph.t -> Graph.Tuple.t -> Graph.t -> Graph.Tuple.t -> int option
(** Least [q <= max_q] with the tuples {e not} [q]-equivalent, if any. *)
