(** Direct recursive first-order model checking.

    This is the naive evaluator witnessing the XP data complexity of FO-MC
    (time [O(size(phi) * n^{qr + free})]).  It is the baseline of experiment
    E1 and the workhorse that all learning algorithms' hypothesis
    evaluations are checked against. *)

open Cgraph

type env = (Fo.Formula.var * Graph.vertex) list
(** Assignments of graph vertices to free variables. *)

exception Unbound_variable of Fo.Formula.var
(** Raised when the formula mentions a free variable missing from the
    environment. *)

val holds : Graph.t -> env -> Fo.Formula.t -> bool
(** [holds g env phi] decides [G |= phi\[env\]].
    @raise Unbound_variable on a free variable not assigned by [env]. *)

val sentence : Graph.t -> Fo.Formula.t -> bool
(** [sentence g phi] for sentences.
    @raise Unbound_variable if [phi] has free variables. *)

val holds_tuple :
  Graph.t -> vars:Fo.Formula.var list -> Graph.Tuple.t -> Fo.Formula.t -> bool
(** [holds_tuple g ~vars t phi] binds [vars] positionally to [t].
    @raise Invalid_argument on a length mismatch. *)

val answers : Graph.t -> vars:Fo.Formula.var list -> Fo.Formula.t -> Graph.Tuple.t list
(** The query answer: all [|vars|]-tuples satisfying [phi].  Tuples are in
    lexicographic order. *)

val count_answers : Graph.t -> vars:Fo.Formula.var list -> Fo.Formula.t -> int
(** [List.length (answers ...)] without materialising the list. *)
