(** Hintikka formulas: the defining formulas of canonical types.

    For a [q]-type [θ] of arity [k] over a colour vocabulary [C], the
    Hintikka formula [hin_θ(x_1, ..., x_k)] has quantifier rank exactly
    [q] (when [q >= 1]) and satisfies, for every graph [G] over a colour
    vocabulary [⊆ C] and every [k]-tuple [v̄],

    {v G |= hin_θ(v̄)  iff  tp_q(G, v̄) = θ. v}

    This realises the paper's "types as finite sets of formulas in normal
    form": every quantifier-rank-[q] definable property is a finite union
    of [q]-types (Corollary 6-style), and the union of Hintikka formulas is
    the witness formula our ERM solvers output. *)

val variables : int -> Fo.Formula.var list
(** [variables k] = the standard variable names [x1; ...; xk]. *)

val of_type : colors:string list -> Types.ty -> Fo.Formula.t
(** [of_type ~colors θ]: the Hintikka formula of [θ] over the standard
    variables, relative to the given colour vocabulary (needed to spell
    out the {e negative} colour facts).
    @raise Invalid_argument if [θ] mentions a colour outside [colors]. *)

val of_types : colors:string list -> Types.ty list -> Fo.Formula.t
(** Disjunction of Hintikka formulas: the formula defining "my [q]-type is
    one of these". *)

val of_tuple :
  colors:string list -> Cgraph.Graph.t -> q:int -> Cgraph.Graph.Tuple.t -> Fo.Formula.t
(** The rank-[q] Hintikka formula of a concrete tuple in a graph. *)
