(** Empirical validation of Gaifman locality (Fact 5 / Corollary 6).

    Fact 5: for [r >= r(q)] ({!Fo.Gaifman.radius}), equal local
    [(q,r)]-types imply equal [q]-types.  These helpers scan a graph for
    counterexamples; experiment E8 and the property tests call them. *)

open Cgraph

type violation = {
  left : Graph.Tuple.t;
  right : Graph.Tuple.t;
  local_type : Types.ty;  (** the shared local type *)
}
(** A pair of tuples with equal [ltp_{q,r}] but different [tp_q]. *)

val violations : Graph.t -> q:int -> r:int -> k:int -> violation list
(** All violating pairs among [k]-tuples (one witness per unordered pair,
    first-in-class representatives only). *)

val fact5_holds : Graph.t -> q:int -> r:int -> k:int -> bool
(** [violations = \[\]]. *)

val minimal_radius : Graph.t -> q:int -> k:int -> max_r:int -> int option
(** Least [r <= max_r] making Fact 5 hold on this graph (diagnostic for
    E8; the paper's bound is worst-case over all graphs). *)
