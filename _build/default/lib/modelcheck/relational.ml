open Cgraph

exception Ill_formed of string

module SMap = Map.Make (String)

type structure = {
  n : int;
  rels : (int * int array list) SMap.t; (* name -> (arity, facts) *)
}

let create ~n ~relations =
  if n < 0 then raise (Ill_formed "negative universe size");
  let rels =
    List.fold_left
      (fun acc (name, arity, facts) ->
        if SMap.mem name acc then
          raise (Ill_formed (Printf.sprintf "duplicate relation %S" name));
        if arity < 1 then
          raise (Ill_formed (Printf.sprintf "relation %S: arity must be >= 1" name));
        List.iter
          (fun fact ->
            if Array.length fact <> arity then
              raise
                (Ill_formed
                   (Printf.sprintf "relation %S: fact of wrong arity" name));
            Array.iter
              (fun a ->
                if a < 0 || a >= n then
                  raise
                    (Ill_formed
                       (Printf.sprintf "relation %S: element %d out of range"
                          name a)))
              fact)
          facts;
        SMap.add name (arity, List.sort_uniq compare facts) acc)
      SMap.empty relations
  in
  { n; rels }

let universe s = List.init s.n Fun.id
let relation_names s = List.map fst (SMap.bindings s.rels)

let arity s name = fst (SMap.find name s.rels)
let facts s name = try snd (SMap.find name s.rels) with Not_found -> []

let holds s name fact =
  match SMap.find_opt name s.rels with
  | None -> false
  | Some (k, fs) -> Array.length fact = k && List.mem fact fs

let pp ppf s =
  Format.fprintf ppf "@[<v>structure: universe of %d elements@," s.n;
  SMap.iter
    (fun name (k, fs) ->
      Format.fprintf ppf "%s/%d: {%a}@," name k
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf fact ->
             Format.fprintf ppf "(%s)"
               (String.concat ","
                  (List.map string_of_int (Array.to_list fact)))))
        fs)
    s.rels;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

type query =
  | RTrue
  | RFalse
  | REq of string * string
  | RAtom of string * string list
  | RNot of query
  | RAnd of query list
  | ROr of query list
  | RExists of string * query
  | RForall of string * query

let eval s env0 query =
  let rec go env = function
    | RTrue -> true
    | RFalse -> false
    | REq (x, y) -> List.assoc x env = List.assoc y env
    | RAtom (name, vars) ->
        let k, fs = SMap.find name s.rels in
        if List.length vars <> k then
          raise
            (Ill_formed (Printf.sprintf "atom %S: wrong number of arguments" name));
        let fact = Array.of_list (List.map (fun v -> List.assoc v env) vars) in
        List.mem fact fs
    | RNot f -> not (go env f)
    | RAnd fs -> List.for_all (go env) fs
    | ROr fs -> List.exists (go env) fs
    | RExists (x, f) ->
        List.exists (fun a -> go ((x, a) :: env) f) (universe s)
    | RForall (x, f) ->
        List.for_all (fun a -> go ((x, a) :: env) f) (universe s)
  in
  go env0 query

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let elem_color = "_Elem"
let rel_color name = "_Rel_" ^ name
let pos_color i = Printf.sprintf "_Pos_%d" i

type encoding = {
  graph : Graph.t;
  element : int -> Graph.vertex;
}

let encode s =
  (* vertices: 0..n-1 elements, then per fact one fact vertex and [arity]
     connector vertices *)
  let next = ref s.n in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let edges = ref [] in
  let rel_members : (string, Graph.vertex list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let pos_members : (int, Graph.vertex list ref) Hashtbl.t = Hashtbl.create 8 in
  let add tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some cell -> cell := v :: !cell
    | None -> Hashtbl.replace tbl key (ref [ v ])
  in
  SMap.iter
    (fun name (_, fs) ->
      List.iter
        (fun fact ->
          let f = fresh () in
          add rel_members name f;
          Array.iteri
            (fun i a ->
              let p = fresh () in
              add pos_members (i + 1) p;
              (* direct fact-element edge keeps element-element
                 distances short (2 through a shared fact); the
                 connector p encodes the argument position *)
              edges := (f, a) :: (f, p) :: (p, a) :: !edges)
            fact)
        fs)
    s.rels;
  let colors =
    (elem_color, List.init s.n Fun.id)
    :: Hashtbl.fold
         (fun name cell acc -> (rel_color name, !cell) :: acc)
         rel_members []
    @ Hashtbl.fold
        (fun i cell acc -> (pos_color i, !cell) :: acc)
        pos_members []
  in
  let graph = Graph.create ~n:!next ~edges:!edges ~colors in
  { graph; element = Fun.id }

let translate query =
  let module F = Fo.Formula in
  let fact_var avoid = F.fresh_var ~avoid "f" in
  let conn_var avoid = F.fresh_var ~avoid "p" in
  let rec go = function
    | RTrue -> F.tru
    | RFalse -> F.fls
    | REq (x, y) -> F.eq x y
    | RAtom (name, vars) ->
        let avoid = vars in
        let f = fact_var avoid in
        let body =
          List.mapi
            (fun i x ->
              let p = conn_var (f :: avoid) in
              F.exists p
                (F.and_
                   [
                     F.color (pos_color (i + 1)) p;
                     F.edge f p;
                     F.edge p x;
                   ]))
            vars
        in
        F.exists f (F.and_ (F.color (rel_color name) f :: body))
    | RNot f -> F.not_ (go f)
    | RAnd fs -> F.and_ (List.map go fs)
    | ROr fs -> F.or_ (List.map go fs)
    | RExists (x, f) ->
        F.exists x (F.and_ [ F.color elem_color x; go f ])
    | RForall (x, f) ->
        F.forall x (F.implies (F.color elem_color x) (go f))
  in
  go query
