(** Relational structures and their encoding as vertex-coloured graphs.

    The paper states (Section 2) that all results extend from coloured
    graphs to arbitrary relational structures "by coding relational
    structures as graphs".  This module makes that coding executable:

    - {!structure}: a finite relational structure (a database instance) —
      a universe [0..n-1] and named relations of arbitrary arity;
    - {!query}: first-order queries over the relational vocabulary;
    - {!encode}: the incidence encoding.  Every universe element becomes
      an [_Elem]-coloured vertex; every fact [R(a_1, ..., a_k)] becomes a
      fresh fact vertex coloured [_Rel_R], adjacent to each [a_i]
      directly (keeping distances short) and through its own connector
      vertex coloured [_Pos_i] (encoding the argument position);
    - {!translate}: compiles a relational query to an FO formula over the
      encoded graph such that answers correspond exactly (tested as a
      property over random structures and queries).

    Learning over a database instance is then learning over the encoded
    graph with example tuples mapped through {!element}. *)

open Cgraph

type structure

exception Ill_formed of string

val create :
  n:int -> relations:(string * int * int array list) list -> structure
(** [create ~n ~relations] with [(name, arity, facts)] triples.
    @raise Ill_formed on arity mismatches, out-of-range elements, or
    duplicate relation names. *)

val universe : structure -> int list
val relation_names : structure -> string list
val arity : structure -> string -> int
(** @raise Not_found for unknown relations. *)

val facts : structure -> string -> int array list
val holds : structure -> string -> int array -> bool

val pp : Format.formatter -> structure -> unit

(** {1 Relational queries} *)

type query =
  | RTrue
  | RFalse
  | REq of string * string
  | RAtom of string * string list  (** [R(x_1, ..., x_k)] *)
  | RNot of query
  | RAnd of query list
  | ROr of query list
  | RExists of string * query
  | RForall of string * query

val eval :
  structure -> (string * int) list -> query -> bool
(** Direct evaluation over the structure (the reference semantics).
    @raise Ill_formed on arity mismatch, [Not_found] on unknown relation
    or unbound variable. *)

(** {1 Encoding} *)

type encoding = {
  graph : Graph.t;  (** the coloured-graph encoding *)
  element : int -> Graph.vertex;  (** universe element ↦ graph vertex *)
}

val encode : structure -> encoding
(** The incidence encoding described above.  The encoded graph of a
    structure from a "sparse" schema (bounded-arity relations, bounded
    occurrences per element) has bounded degree, preserving
    nowhere-density — which is why the paper's graph results carry
    over. *)

val translate : query -> Fo.Formula.t
(** Compile to graph-FO: element quantifiers are relativised to [_Elem],
    [R(x̄)] becomes "some [_Rel_R] fact vertex reaches each [x_i] through
    a [_Pos_i] connector".  Guarantee (tested): for every structure [S],
    query [φ(x̄)] and elements [ā],
    [eval S ā φ  iff  graph(S) |= translate φ (element ā)]. *)
