lib/mso/bridge.ml: Fo Formula List Printf String
