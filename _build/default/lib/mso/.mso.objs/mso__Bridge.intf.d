lib/mso/bridge.mli: Fo Formula
