lib/mso/dfa.ml: Array Format Fun Hashtbl List Map Queue
