lib/mso/dfa.mli: Format
