lib/mso/formula.ml: Array Dfa Format Fun List Map Nfa Printf String
