lib/mso/formula.mli: Dfa Format
