lib/mso/learner.ml: Array Dfa Formula List Oracle Printf
