lib/mso/learner.mli: Formula
