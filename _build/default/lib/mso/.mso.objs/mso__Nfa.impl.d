lib/mso/nfa.ml: Array Dfa Int List Map Set
