lib/mso/nfa.mli: Dfa
