lib/mso/oracle.ml: Array Dfa Fun Hashtbl List Option
