lib/mso/oracle.mli: Dfa
