lib/mso/parser.ml: Formula List Printf String
