lib/mso/parser.mli: Formula
