lib/mso/regex.ml: Array Dfa Format Int List Nfa Printf Set String
