lib/mso/regex.mli: Dfa Format Nfa
