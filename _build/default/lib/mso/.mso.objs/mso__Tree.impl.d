lib/mso/tree.ml: Format List Printf Random String
