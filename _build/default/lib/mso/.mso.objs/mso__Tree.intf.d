lib/mso/tree.mli: Format
