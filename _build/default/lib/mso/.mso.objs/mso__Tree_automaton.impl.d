lib/mso/tree_automaton.ml: Array Hashtbl Int List Map Set Tree
