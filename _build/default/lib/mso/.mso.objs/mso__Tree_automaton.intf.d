lib/mso/tree_automaton.mli: Tree
