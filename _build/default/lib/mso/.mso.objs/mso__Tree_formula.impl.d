lib/mso/tree_formula.ml: Array Fun List Map Printf String Tree Tree_automaton
