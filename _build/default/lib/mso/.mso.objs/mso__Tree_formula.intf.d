lib/mso/tree_formula.mli: Tree Tree_automaton
