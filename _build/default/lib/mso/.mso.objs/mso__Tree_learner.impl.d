lib/mso/tree_learner.ml: Array List Printf Tree Tree_automaton Tree_formula
