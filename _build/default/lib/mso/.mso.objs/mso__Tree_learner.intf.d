lib/mso/tree_learner.mli: Tree Tree_formula
