lib/mso/tree_parser.ml: List Printf String Tree_formula
