lib/mso/tree_parser.mli: Tree_formula
