lib/mso/word.ml: Array Cgraph Fun List Printf Random String
