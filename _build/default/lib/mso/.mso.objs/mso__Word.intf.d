lib/mso/word.mli: Cgraph
