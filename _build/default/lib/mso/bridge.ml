exception Unsupported of string

let letter_of_color ~sigma c =
  if c = "First" then None
  else if String.length c >= 2 && c.[0] = 'L' then begin
    match int_of_string_opt (String.sub c 1 (String.length c - 1)) with
    | Some a when a >= 0 && a < sigma -> Some a
    | _ ->
        raise
          (Unsupported
             (Printf.sprintf "colour %S is outside the word-graph vocabulary" c))
  end
  else
    raise
      (Unsupported
         (Printf.sprintf "colour %S is outside the word-graph vocabulary" c))

let mso_of_fo ~sigma phi =
  let fresh = ref 0 in
  let fresh_var () =
    incr fresh;
    Printf.sprintf "_bp%d" !fresh
  in
  let rec go (f : Fo.Formula.t) : Formula.t =
    match f with
    | True -> Formula.MTrue
    | False -> Formula.MFalse
    | Atom (Eq (x, y)) -> Formula.EqPos (x, y)
    | Atom (Edge (x, y)) ->
        Formula.Or [ Formula.Succ (x, y); Formula.Succ (y, x) ]
    | Atom (Color (c, x)) -> (
        match letter_of_color ~sigma c with
        | Some a -> Formula.Letter (a, x)
        | None ->
            (* First(x): no predecessor *)
            let p = fresh_var () in
            Formula.Not (Formula.ExistsPos (p, Formula.Succ (p, x))))
    | Not f -> Formula.Not (go f)
    | And fs -> Formula.And (List.map go fs)
    | Or fs -> Formula.Or (List.map go fs)
    | Implies (a, b) -> Formula.Or [ Formula.Not (go a); go b ]
    | Iff (a, b) ->
        let a' = go a and b' = go b in
        Formula.Or
          [ Formula.And [ a'; b' ];
            Formula.And [ Formula.Not a'; Formula.Not b' ] ]
    | Exists (x, f) -> Formula.ExistsPos (x, go f)
    | Forall (x, f) -> Formula.ForallPos (x, go f)
    | CountGe _ ->
        raise (Unsupported "counting quantifiers have no MSO counterpart here")
  in
  go phi
