(** Bridge between the two logics of the repository: first-order logic
    over the coloured-graph encoding of a word ({!Word.to_graph}) and MSO
    over the word itself.

    Every FO formula over the word-graph vocabulary
    ([E], [L0..L(σ-1)], [First]) translates to an MSO formula over words
    with the same satisfying assignments — the glue identifying the
    paper's FO-over-structures setting with the strings setting of its
    related work [21] (checked as a QCheck property over random formulas
    and words). *)

exception Unsupported of string
(** Raised on counting quantifiers (MSO on words has no counting here)
    or colour predicates outside the word-graph vocabulary. *)

val mso_of_fo : sigma:int -> Fo.Formula.t -> Formula.t
(** Translate: [E(x,y) ↦ succ(x,y) ∨ succ(y,x)], [La(x) ↦ letter],
    [First(x) ↦ ¬∃p. succ(p,x)], quantifiers to position quantifiers.
    @raise Unsupported per above. *)
