type t = {
  states : int;
  alphabet : int;
  start : int;
  delta : int array array;
  accept : bool array;
}

let create ~states ~alphabet ~start ~delta ~accept =
  if states < 1 then invalid_arg "Dfa.create: need at least one state";
  if alphabet < 1 then invalid_arg "Dfa.create: need at least one letter";
  if start < 0 || start >= states then invalid_arg "Dfa.create: bad start";
  if Array.length delta <> states || Array.length accept <> states then
    invalid_arg "Dfa.create: table sizes do not match the state count";
  Array.iter
    (fun row ->
      if Array.length row <> alphabet then
        invalid_arg "Dfa.create: transition row has wrong width";
      Array.iter
        (fun q ->
          if q < 0 || q >= states then
            invalid_arg "Dfa.create: transition target out of range")
        row)
    delta;
  { states; alphabet; start; delta; accept }

let step a q letter =
  if letter < 0 || letter >= a.alphabet then
    invalid_arg "Dfa.step: letter out of range";
  a.delta.(q).(letter)

let run a q word = Array.fold_left (fun q letter -> step a q letter) q word
let accepts a word = a.accept.(run a a.start word)

let complement a = { a with accept = Array.map not a.accept }

let product a b ~mode =
  if a.alphabet <> b.alphabet then
    invalid_arg "Dfa.product: alphabet mismatch";
  let states = a.states * b.states in
  let pair qa qb = (qa * b.states) + qb in
  let delta =
    Array.init states (fun s ->
        let qa = s / b.states and qb = s mod b.states in
        Array.init a.alphabet (fun l ->
            pair a.delta.(qa).(l) b.delta.(qb).(l)))
  in
  let accept =
    Array.init states (fun s ->
        let qa = s / b.states and qb = s mod b.states in
        match mode with
        | `Inter -> a.accept.(qa) && b.accept.(qb)
        | `Union -> a.accept.(qa) || b.accept.(qb))
  in
  { states; alphabet = a.alphabet; start = pair a.start b.start; delta; accept }

let reachable a =
  let seen = Array.make a.states false in
  let order = ref [] in
  let rec dfs q =
    if not seen.(q) then begin
      seen.(q) <- true;
      order := q :: !order;
      Array.iter dfs a.delta.(q)
    end
  in
  dfs a.start;
  let old_states = List.rev !order in
  let renum = Array.make a.states (-1) in
  List.iteri (fun i q -> renum.(q) <- i) old_states;
  let arr = Array.of_list old_states in
  {
    states = Array.length arr;
    alphabet = a.alphabet;
    start = renum.(a.start);
    delta =
      Array.map (fun q -> Array.map (fun q' -> renum.(q')) a.delta.(q)) arr;
    accept = Array.map (fun q -> a.accept.(q)) arr;
  }

let minimize a0 =
  let a = reachable a0 in
  (* Moore: iteratively refine the accept/reject partition *)
  let cls = Array.init a.states (fun q -> if a.accept.(q) then 1 else 0) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* signature of q: (class, classes of successors) *)
    let sigs =
      Array.init a.states (fun q ->
          (cls.(q), Array.map (fun q' -> cls.(q')) a.delta.(q)))
    in
    let tbl = Hashtbl.create 16 in
    let next = ref 0 in
    let newcls =
      Array.map
        (fun s ->
          match Hashtbl.find_opt tbl s with
          | Some c -> c
          | None ->
              let c = !next in
              incr next;
              Hashtbl.replace tbl s c;
              c)
        sigs
    in
    if newcls <> cls then begin
      Array.blit newcls 0 cls 0 a.states;
      changed := true
    end
  done;
  let class_count = 1 + Array.fold_left max 0 cls in
  let repr = Array.make class_count (-1) in
  Array.iteri (fun q c -> if repr.(c) < 0 then repr.(c) <- q) cls;
  {
    states = class_count;
    alphabet = a.alphabet;
    start = cls.(a.start);
    delta =
      Array.init class_count (fun c ->
          Array.map (fun q' -> cls.(q')) a.delta.(repr.(c)));
    accept = Array.init class_count (fun c -> a.accept.(repr.(c)));
  }

let is_empty a =
  let a = reachable a in
  not (Array.exists Fun.id a.accept)

let equal_language a b =
  if a.alphabet <> b.alphabet then
    invalid_arg "Dfa.equal_language: alphabet mismatch";
  (* symmetric difference empty *)
  let xor =
    let p = product a b ~mode:`Inter in
    let qa s = s / b.states and qb s = s mod b.states in
    {
      p with
      accept =
        Array.init p.states (fun s ->
            a.accept.(qa s) <> b.accept.(qb s));
    }
  in
  is_empty xor

let total_language ~alphabet =
  create ~states:1 ~alphabet ~start:0
    ~delta:[| Array.make alphabet 0 |]
    ~accept:[| true |]

let empty_language ~alphabet =
  create ~states:1 ~alphabet ~start:0
    ~delta:[| Array.make alphabet 0 |]
    ~accept:[| false |]

let of_predicate ~alphabet ~max_len pred =
  (* Myhill-Nerode by sampled residuals: identify prefixes by the values
     of [pred] on all continuations of length <= max_len, and explore
     states breadth-first.  Correct whenever max_len distinguishes all
     residual classes of the language (e.g. any DFA with <= max_len
     states). *)
  let suffixes =
    let rec go l =
      if l = 0 then [ [] ]
      else begin
        let shorter = go (l - 1) in
        shorter
        @ List.concat_map
            (fun w ->
              if List.length w = l - 1 then
                List.init alphabet (fun a -> a :: w)
              else [])
            shorter
      end
    in
    List.map Array.of_list (go max_len)
  in
  let signature prefix =
    List.map (fun s -> pred (Array.append prefix s)) suffixes
  in
  let module SM = Map.Make (struct
    type t = bool list

    let compare = compare
  end) in
  let ids = ref SM.empty in
  let reps = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let state_of prefix =
    let s = signature prefix in
    match SM.find_opt s !ids with
    | Some id -> id
    | None ->
        let id = !count in
        incr count;
        if id > 4096 then
          invalid_arg "Dfa.of_predicate: too many residual classes";
        ids := SM.add s id !ids;
        reps := (id, prefix) :: !reps;
        Queue.add (id, prefix) queue;
        id
  in
  let transitions = ref [] in
  let _start = state_of [||] in
  while not (Queue.is_empty queue) do
    let id, prefix = Queue.take queue in
    let row =
      Array.init alphabet (fun a -> state_of (Array.append prefix [| a |]))
    in
    transitions := (id, row) :: !transitions
  done;
  let states = !count in
  let delta = Array.make states [||] in
  List.iter (fun (id, row) -> delta.(id) <- row) !transitions;
  let accept = Array.make states false in
  List.iter (fun (id, prefix) -> accept.(id) <- pred prefix) !reps;
  minimize (create ~states ~alphabet ~start:0 ~delta ~accept)

let pp ppf a =
  Format.fprintf ppf "@[<v>dfa: %d states over %d letters, start %d@," a.states
    a.alphabet a.start;
  Array.iteri
    (fun q row ->
      Format.fprintf ppf "%c q%d:" (if a.accept.(q) then '*' else ' ') q;
      Array.iteri (fun l q' -> Format.fprintf ppf " %d->q%d" l q') row;
      Format.fprintf ppf "@,")
    a.delta;
  Format.fprintf ppf "@]"
