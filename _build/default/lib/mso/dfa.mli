(** Deterministic finite automata over integer alphabets.

    The automaton substrate for the MSO-on-strings subsystem (related
    work [21] of the paper): MSO formulas compile to DFAs
    (Büchi–Elgot–Trakhtenbrot), and the learners run and compose them.
    States and letters are dense integers; automata are complete. *)

type t = {
  states : int;  (** number of states, ids [0..states-1] *)
  alphabet : int;  (** number of letters, ids [0..alphabet-1] *)
  start : int;
  delta : int array array;  (** [delta.(q).(a)] — must be total *)
  accept : bool array;
}

val create :
  states:int -> alphabet:int -> start:int ->
  delta:int array array -> accept:bool array -> t
(** Validates shapes and ranges.  @raise Invalid_argument otherwise. *)

val step : t -> int -> int -> int
(** [step a q letter]. *)

val run : t -> int -> int array -> int
(** [run a q word]: state after reading the word from [q]. *)

val accepts : t -> int array -> bool

(** {1 Algebra} *)

val complement : t -> t

val product : t -> t -> mode:[ `Inter | `Union ] -> t
(** Synchronous product; alphabets must agree.
    @raise Invalid_argument otherwise. *)

val reachable : t -> t
(** Restrict to states reachable from the start (renumbered). *)

val minimize : t -> t
(** Moore minimisation of the reachable part.  The result is the unique
    minimal complete DFA for the language. *)

val is_empty : t -> bool
(** No reachable accepting state. *)

val equal_language : t -> t -> bool
(** Language equivalence (via product with xor acceptance + emptiness).
    @raise Invalid_argument if alphabets differ. *)

(** {1 Constructions} *)

val total_language : alphabet:int -> t
(** Accepts everything. *)

val empty_language : alphabet:int -> t
(** Accepts nothing. *)

val of_predicate : alphabet:int -> max_len:int -> (int array -> bool) -> t
(** Myhill–Nerode construction from a sampled predicate: prefixes are
    identified by the predicate's values on all continuations of length
    [<= max_len].  Yields the true minimal DFA whenever continuations of
    that length distinguish all residual classes (in particular for any
    regular language recognised by a DFA with [<= max_len] states).
    @raise Invalid_argument if more than 4096 residual classes appear. *)

val pp : Format.formatter -> t -> unit
