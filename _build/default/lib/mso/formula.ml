type var = string

type t =
  | MTrue
  | MFalse
  | Letter of int * var
  | Less of var * var
  | Succ of var * var
  | EqPos of var * var
  | Mem of var * var
  | Not of t
  | And of t list
  | Or of t list
  | ExistsPos of var * t
  | ForallPos of var * t
  | ExistsSet of var * t
  | ForallSet of var * t

type kind = Pos | Set

module VMap = Map.Make (String)

let free phi =
  let add name kind acc =
    match VMap.find_opt name acc with
    | Some k when k <> kind ->
        invalid_arg
          (Printf.sprintf "Mso: variable %S used both as position and set" name)
    | _ -> VMap.add name kind acc
  in
  let rec go bound acc = function
    | MTrue | MFalse -> acc
    | Letter (_, x) -> if List.mem x bound then acc else add x Pos acc
    | Less (x, y) | Succ (x, y) | EqPos (x, y) ->
        let acc = if List.mem x bound then acc else add x Pos acc in
        if List.mem y bound then acc else add y Pos acc
    | Mem (x, bigx) ->
        let acc = if List.mem x bound then acc else add x Pos acc in
        if List.mem bigx bound then acc else add bigx Set acc
    | Not f -> go bound acc f
    | And fs | Or fs -> List.fold_left (go bound) acc fs
    | ExistsPos (x, f) | ForallPos (x, f) | ExistsSet (x, f) | ForallSet (x, f)
      ->
        go (x :: bound) acc f
  in
  VMap.bindings (go [] VMap.empty phi)

(* ------------------------------------------------------------------ *)
(* Direct evaluation                                                   *)
(* ------------------------------------------------------------------ *)

type assignment = {
  pos : (var * int) list;
  sets : (var * int list) list;
}

let empty_assignment = { pos = []; sets = [] }

let eval ~word asg phi =
  let n = Array.length word in
  let rec go asg = function
    | MTrue -> true
    | MFalse -> false
    | Letter (a, x) ->
        let p = List.assoc x asg.pos in
        p >= 0 && p < n && word.(p) = a
    | Less (x, y) -> List.assoc x asg.pos < List.assoc y asg.pos
    | Succ (x, y) -> List.assoc y asg.pos = List.assoc x asg.pos + 1
    | EqPos (x, y) -> List.assoc x asg.pos = List.assoc y asg.pos
    | Mem (x, bigx) -> List.mem (List.assoc x asg.pos) (List.assoc bigx asg.sets)
    | Not f -> not (go asg f)
    | And fs -> List.for_all (go asg) fs
    | Or fs -> List.exists (go asg) fs
    | ExistsPos (x, f) ->
        List.exists
          (fun p -> go { asg with pos = (x, p) :: asg.pos } f)
          (List.init n Fun.id)
    | ForallPos (x, f) ->
        List.for_all
          (fun p -> go { asg with pos = (x, p) :: asg.pos } f)
          (List.init n Fun.id)
    | ExistsSet (bigx, f) ->
        let rec subsets = function
          | [] -> [ [] ]
          | p :: rest ->
              let s = subsets rest in
              s @ List.map (fun u -> p :: u) s
        in
        List.exists
          (fun s -> go { asg with sets = (bigx, s) :: asg.sets } f)
          (subsets (List.init n Fun.id))
    | ForallSet (bigx, f) ->
        let rec subsets = function
          | [] -> [ [] ]
          | p :: rest ->
              let s = subsets rest in
              s @ List.map (fun u -> p :: u) s
        in
        List.for_all
          (fun s -> go { asg with sets = (bigx, s) :: asg.sets } f)
          (subsets (List.init n Fun.id))
  in
  go asg phi

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let track scope name =
  (* innermost binding wins: quantifiers append their variable at the end
     of the scope, so a shadowed name must resolve to the LAST entry *)
  let rec find i best = function
    | [] -> best
    | (v, _) :: rest -> find (i + 1) (if v = name then Some i else best) rest
  in
  match find 0 None scope with
  | Some i -> i
  | None ->
      invalid_arg (Printf.sprintf "%s: %S is not in scope" __MODULE__ name)

(* Build a DFA over alphabet sigma * 2^tracks from an explicit
   state-machine description: [next state letter bitmask] and accepting
   states.  State -1 is a rejecting sink. *)
let machine ~sigma ~tracks ~states ~start ~next ~accepting =
  let alphabet = sigma lsl tracks in
  let total = states + 1 in
  let sink = states in
  let delta =
    Array.init total (fun q ->
        Array.init alphabet (fun l ->
            if q = sink then sink
            else begin
              let a = l mod sigma and mask = l / sigma in
              match next q a mask with Some q' -> q' | None -> sink
            end))
  in
  let accept = Array.init total (fun q -> q <> sink && accepting q) in
  Dfa.create ~states:total ~alphabet ~start ~delta ~accept

let bit mask i = (mask lsr i) land 1 = 1

(* exactly one mark on track t *)
let singleton_dfa ~sigma ~tracks t =
  machine ~sigma ~tracks ~states:2 ~start:0
    ~next:(fun q _a mask ->
      match (q, bit mask t) with
      | 0, false -> Some 0
      | 0, true -> Some 1
      | 1, false -> Some 1
      | 1, true -> None
      | _ -> None)
    ~accepting:(fun q -> q = 1)

let rec compile ~sigma ~scope phi =
  if sigma < 1 then invalid_arg "Mso.compile: need sigma >= 1";
  List.iter
    (fun (v, k) ->
      match List.assoc_opt v scope with
      | Some k' when k = k' -> ()
      | Some _ ->
          invalid_arg
            (Printf.sprintf "Mso.compile: %S has the wrong kind in scope" v)
      | None ->
          invalid_arg (Printf.sprintf "Mso.compile: free variable %S not in scope" v))
    (free phi);
  let tracks = List.length scope in
  let alphabet = sigma lsl tracks in
  let base = function
    | MTrue -> Dfa.total_language ~alphabet
    | MFalse -> Dfa.empty_language ~alphabet
    | Letter (a, x) ->
        if a < 0 || a >= sigma then
          invalid_arg "Mso.compile: letter out of range";
        let t = track scope x in
        (* one x-mark, carrying letter a *)
        machine ~sigma ~tracks ~states:2 ~start:0
          ~next:(fun q letter mask ->
            match (q, bit mask t) with
            | 0, false -> Some 0
            | 0, true -> if letter = a then Some 1 else None
            | 1, false -> Some 1
            | 1, true -> None
            | _ -> None)
          ~accepting:(fun q -> q = 1)
    | Less (x, y) ->
        let tx = track scope x and ty = track scope y in
        machine ~sigma ~tracks ~states:3 ~start:0
          ~next:(fun q _ mask ->
            let mx = bit mask tx and my = bit mask ty in
            match q with
            | 0 -> (
                match (mx, my) with
                | false, false -> Some 0
                | true, false -> Some 1
                | _ -> None)
            | 1 -> (
                match (mx, my) with
                | false, false -> Some 1
                | false, true -> Some 2
                | _ -> None)
            | 2 -> if mx || my then None else Some 2
            | _ -> None)
          ~accepting:(fun q -> q = 2)
    | Succ (x, y) ->
        let tx = track scope x and ty = track scope y in
        machine ~sigma ~tracks ~states:3 ~start:0
          ~next:(fun q _ mask ->
            let mx = bit mask tx and my = bit mask ty in
            match q with
            | 0 -> (
                match (mx, my) with
                | false, false -> Some 0
                | true, false -> Some 1
                | _ -> None)
            | 1 -> if my && not mx then Some 2 else None
            | 2 -> if mx || my then None else Some 2
            | _ -> None)
          ~accepting:(fun q -> q = 2)
    | EqPos (x, y) ->
        let tx = track scope x and ty = track scope y in
        machine ~sigma ~tracks ~states:2 ~start:0
          ~next:(fun q _ mask ->
            let mx = bit mask tx and my = bit mask ty in
            match q with
            | 0 -> (
                match (mx, my) with
                | false, false -> Some 0
                | true, true -> Some 1
                | _ -> None)
            | 1 -> if mx || my then None else Some 1
            | _ -> None)
          ~accepting:(fun q -> q = 1)
    | Mem (x, bigx) ->
        let tx = track scope x and ts = track scope bigx in
        machine ~sigma ~tracks ~states:2 ~start:0
          ~next:(fun q _ mask ->
            let mx = bit mask tx and ms = bit mask ts in
            match q with
            | 0 -> if not mx then Some 0 else if ms then Some 1 else None
            | 1 -> if mx then None else Some 1
            | _ -> None)
          ~accepting:(fun q -> q = 1)
    | _ -> assert false
  in
  let quantify ~is_pos ~exists x kind body =
    let scope' = scope @ [ (x, kind) ] in
    let inner =
      if exists then compile ~sigma ~scope:scope' body
      else Dfa.complement (compile ~sigma ~scope:scope' body)
    in
    let inner =
      if is_pos then
        Dfa.minimize
          (Dfa.product inner
             (singleton_dfa ~sigma ~tracks:(tracks + 1) tracks)
             ~mode:`Inter)
      else inner
    in
    (* project away the top track *)
    let half = alphabet in
    let nfa =
      Nfa.project_sized inner ~alphabet:half (fun b -> [ b; b + half ])
    in
    let projected = Dfa.minimize (Nfa.determinize nfa) in
    if exists then projected else Dfa.minimize (Dfa.complement projected)
  in
  match phi with
  | MTrue | MFalse | Letter _ | Less _ | Succ _ | EqPos _ | Mem _ ->
      Dfa.minimize (base phi)
  | Not f -> Dfa.minimize (Dfa.complement (compile ~sigma ~scope f))
  | And fs ->
      Dfa.minimize
        (List.fold_left
           (fun acc f -> Dfa.product acc (compile ~sigma ~scope f) ~mode:`Inter)
           (Dfa.total_language ~alphabet)
           fs)
  | Or fs ->
      Dfa.minimize
        (List.fold_left
           (fun acc f -> Dfa.product acc (compile ~sigma ~scope f) ~mode:`Union)
           (Dfa.empty_language ~alphabet)
           fs)
  | ExistsPos (x, f) -> quantify ~is_pos:true ~exists:true x Pos f
  | ForallPos (x, f) -> quantify ~is_pos:true ~exists:false x Pos f
  | ExistsSet (x, f) -> quantify ~is_pos:false ~exists:true x Set f
  | ForallSet (x, f) -> quantify ~is_pos:false ~exists:false x Set f

let annotate ~sigma ~scope word asg =
  Array.mapi
    (fun i a ->
      if a < 0 || a >= sigma then
        invalid_arg "Mso.annotate: letter out of range";
      let mask =
        List.fold_left
          (fun acc (t, (v, kind)) ->
            let marked =
              match kind with
              | Pos -> List.assoc v asg.pos = i
              | Set -> List.mem i (List.assoc v asg.sets)
            in
            if marked then acc lor (1 lsl t) else acc)
          0
          (List.mapi (fun t entry -> (t, entry)) scope)
      in
      a + (sigma * mask))
    word

let holds_compiled ~sigma ~scope dfa word asg =
  Dfa.accepts dfa (annotate ~sigma ~scope word asg)

(* precedence: 0 = quantifiers/top, 2 = or, 3 = and, 4 = unary *)
let pp ~letters ppf phi =
  let letter a =
    match List.nth_opt letters a with
    | Some l -> l
    | None -> invalid_arg (Printf.sprintf "Mso.pp: letter %d out of alphabet" a)
  in
  let rec go lvl ppf f =
    let paren needed body =
      if needed then Format.fprintf ppf "(%t)" body else body ppf
    in
    match f with
    | MTrue -> Format.pp_print_string ppf "true"
    | MFalse -> Format.pp_print_string ppf "false"
    | Letter (a, x) -> Format.fprintf ppf "%s(%s)" (letter a) x
    | Less (x, y) -> Format.fprintf ppf "%s < %s" x y
    | Succ (x, y) -> Format.fprintf ppf "succ(%s, %s)" x y
    | EqPos (x, y) -> Format.fprintf ppf "%s = %s" x y
    | Mem (x, bigx) -> Format.fprintf ppf "%s in %s" x bigx
    | Not f ->
        Format.pp_print_string ppf "~";
        go 4 ppf f
    | And fs ->
        paren (lvl > 3) (fun ppf ->
            Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf " /\\ ")
              (go 4) ppf fs)
    | Or fs ->
        paren (lvl > 2) (fun ppf ->
            Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf " \\/ ")
              (go 3) ppf fs)
    | ExistsPos (x, f) ->
        paren (lvl > 0) (fun ppf -> Format.fprintf ppf "exists %s. %a" x (go 0) f)
    | ForallPos (x, f) ->
        paren (lvl > 0) (fun ppf -> Format.fprintf ppf "forall %s. %a" x (go 0) f)
    | ExistsSet (x, f) ->
        paren (lvl > 0) (fun ppf ->
            Format.fprintf ppf "existsset %s. %a" x (go 0) f)
    | ForallSet (x, f) ->
        paren (lvl > 0) (fun ppf ->
            Format.fprintf ppf "forallset %s. %a" x (go 0) f)
  in
  go 0 ppf phi

let to_string ~letters phi = Format.asprintf "%a" (pp ~letters) phi

let language ~sigma phi =
  if free phi <> [] then
    invalid_arg "Mso.language: formula has free variables";
  compile ~sigma ~scope:[] phi
