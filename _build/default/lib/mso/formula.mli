(** Monadic second-order logic on finite words.

    The logic of the Büchi–Elgot–Trakhtenbrot theorem: first-order
    position variables, monadic set variables, order/successor/letter
    atoms.  MSO sentences define exactly the regular languages, and every
    formula [φ(x̄, X̄)] compiles to a DFA over the word alphabet extended
    with one boolean {e track} per free variable ({!compile}).

    This is the concept language of the paper's related work [21]
    (learning MSO-definable hypotheses on strings), reproduced here as
    the string-side counterpart of the FO-over-graphs pipeline. *)

type var = string

(** Formulas.  Letters are integers [0..sigma-1]. *)
type t =
  | MTrue
  | MFalse
  | Letter of int * var  (** position [x] carries the letter *)
  | Less of var * var  (** strict position order [x < y] *)
  | Succ of var * var  (** [y = x + 1] *)
  | EqPos of var * var
  | Mem of var * var  (** [Mem (x, bigx)]: position [x] belongs to set [bigx] *)
  | Not of t
  | And of t list
  | Or of t list
  | ExistsPos of var * t
  | ForallPos of var * t
  | ExistsSet of var * t
  | ForallSet of var * t

type kind = Pos | Set

val free : t -> (var * kind) list
(** Free variables with their kinds, sorted by name.
    @raise Invalid_argument if a variable is used with both kinds. *)

(** {1 Direct evaluation (the reference semantics)} *)

type assignment = {
  pos : (var * int) list;  (** position variables *)
  sets : (var * int list) list;  (** set variables *)
}

val empty_assignment : assignment

val eval : word:int array -> assignment -> t -> bool
(** Recursive evaluation; set quantifiers enumerate all [2^n] subsets —
    reference semantics for short words only.
    @raise Not_found on an unbound variable. *)

(** {1 Compilation (Büchi–Elgot–Trakhtenbrot)} *)

val compile : sigma:int -> scope:(var * kind) list -> t -> Dfa.t
(** [compile ~sigma ~scope φ]: a minimal DFA over the alphabet
    [sigma * 2^|scope|] (letter [a] with track bitmask [m] encoded as
    [a + sigma * m], track [i] = [i]-th scope entry) accepting exactly
    the {e validly annotated} words satisfying [φ] — valid meaning every
    position-variable track carries exactly one mark.  [scope] must
    cover the free variables of [φ].
    @raise Invalid_argument on scope violations or letters [>= sigma]. *)

val annotate :
  sigma:int -> scope:(var * kind) list -> int array -> assignment -> int array
(** Encode a word and an assignment as a word over the track alphabet. *)

val holds_compiled :
  sigma:int -> scope:(var * kind) list -> Dfa.t -> int array -> assignment -> bool
(** Run a compiled automaton on an annotated word. *)

val pp : letters:string list -> Format.formatter -> t -> unit
(** Concrete syntax accepted by {!Parser.parse} (letters resolved
    against the same alphabet list).
    @raise Invalid_argument on a letter index outside the alphabet. *)

val to_string : letters:string list -> t -> string

val language : sigma:int -> t -> Dfa.t
(** Compile a sentence ([scope = []]).
    @raise Invalid_argument if the formula has free variables. *)
