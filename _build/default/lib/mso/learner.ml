type entry = {
  name : string;
  phi : Formula.t;
  xvars : Formula.var list;
  yvars : Formula.var list;
}

type result = {
  entry : entry;
  params : int array;
  err : float;
  evaluations : int;
  states : int;
}

let scope_of entry =
  List.map (fun v -> (v, Formula.Pos)) (entry.xvars @ entry.yvars)

let check_entry entry =
  let scope = scope_of entry in
  List.iter
    (fun (v, kind) ->
      match List.assoc_opt v scope with
      | Some Formula.Pos when kind = Formula.Pos -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Learner: free variable %S of %S is not an x/y position \
                variable"
               v entry.name))
    (Formula.free entry.phi)

(* marks for an (example, params) pair: track i = i-th scope entry *)
let marks_of entry example params =
  let kx = List.length entry.xvars in
  List.mapi (fun i p -> (p, 1 lsl i)) (Array.to_list example)
  @ List.mapi (fun j p -> (p, 1 lsl (kx + j))) (Array.to_list params)

let rec param_tuples n = function
  | 0 -> [ [||] ]
  | j ->
      List.concat_map
        (fun rest ->
          List.init n (fun p -> Array.append [| p |] rest))
        (param_tuples n (j - 1))

let solve ~sigma ~word ~catalogue examples =
  let n = Array.length word in
  let m = List.length examples in
  let best = ref None in
  let evals = ref 0 in
  List.iter
    (fun entry ->
      check_entry entry;
      let kx = List.length entry.xvars in
      List.iter
        (fun (v, _) ->
          if Array.length v <> kx then
            invalid_arg "Learner.solve: example arity mismatch")
        examples;
      let scope = scope_of entry in
      let dfa = Formula.compile ~sigma ~scope entry.phi in
      let oracle = Oracle.make ~sigma dfa word in
      List.iter
        (fun params ->
          let errs =
            List.fold_left
              (fun acc (v, label) ->
                incr evals;
                let verdict =
                  Oracle.eval_with_marks oracle
                    ~marks:(marks_of entry v params)
                in
                if verdict <> label then acc + 1 else acc)
              0 examples
          in
          match !best with
          | Some (_, _, _, e) when e <= errs -> ()
          | _ -> best := Some (entry, params, dfa.Dfa.states, errs))
        (param_tuples n (List.length entry.yvars)))
    catalogue;
  match !best with
  | None -> None
  | Some (entry, params, states, errs) ->
      Some
        {
          entry;
          params;
          err = (if m = 0 then 0.0 else float_of_int errs /. float_of_int m);
          evaluations = !evals;
          states;
        }

let predict ~sigma ~word result v =
  let scope = scope_of result.entry in
  let dfa = Formula.compile ~sigma ~scope result.entry.phi in
  let oracle = Oracle.make ~sigma dfa word in
  Oracle.eval_with_marks oracle ~marks:(marks_of result.entry v result.params)
