(** Learning MSO-definable hypotheses on strings — the framework of the
    paper's related work [21] (Grohe, Löding, Ritzert, ALT 2017),
    reproduced with the compile-once / evaluate-fast pipeline:

    hypotheses are [h_{φ,w̄}(v̄) = 1 iff word |= φ(v̄; w̄)] for MSO
    formulas [φ(x̄; ȳ)] and {e position} parameters [w̄]; the learner
    compiles each catalogue formula to a track automaton once, builds the
    {!Oracle} sparse table over the background word once, and then
    evaluates every (example, parameter) combination in logarithmic
    time — the preprocessing-then-sublinear-learning regime of [21]. *)

type entry = {
  name : string;
  phi : Formula.t;
  xvars : Formula.var list;  (** example position variables *)
  yvars : Formula.var list;  (** parameter position variables *)
}
(** A catalogue hypothesis template [φ(x̄; ȳ)]. *)

type result = {
  entry : entry;
  params : int array;  (** chosen positions [w̄] *)
  err : float;
  evaluations : int;  (** oracle evaluations performed *)
  states : int;  (** size of the compiled automaton *)
}

val solve :
  sigma:int ->
  word:int array ->
  catalogue:entry list ->
  (int array * bool) list ->
  result option
(** Exact ERM over the catalogue: minimise training error over every
    [(entry, w̄ ∈ positions^{|yvars|})]; parameters beyond the word
    length do not exist, so the empty word with parameters yields
    [None].  Examples are tuples of positions with labels.
    @raise Invalid_argument on malformed entries (wrong arities, free
    variables outside [x̄ ∪ ȳ]). *)

val predict : sigma:int -> word:int array -> result -> int array -> bool
(** Classify a fresh position tuple with a solved hypothesis. *)
