type t = {
  states : int;
  alphabet : int;
  starts : int list;
  delta : int list array array;
  accept : bool array;
}

let create ~states ~alphabet ~starts ~delta ~accept =
  if states < 1 then invalid_arg "Nfa.create: need at least one state";
  if alphabet < 1 then invalid_arg "Nfa.create: need at least one letter";
  List.iter
    (fun q ->
      if q < 0 || q >= states then invalid_arg "Nfa.create: bad start state")
    starts;
  if Array.length delta <> states || Array.length accept <> states then
    invalid_arg "Nfa.create: table sizes do not match";
  Array.iter
    (fun row ->
      if Array.length row <> alphabet then
        invalid_arg "Nfa.create: transition row has wrong width";
      Array.iter
        (List.iter (fun q ->
             if q < 0 || q >= states then
               invalid_arg "Nfa.create: transition target out of range"))
        row)
    delta;
  { states; alphabet; starts; delta; accept }

let of_dfa (d : Dfa.t) =
  {
    states = d.Dfa.states;
    alphabet = d.Dfa.alphabet;
    starts = [ d.Dfa.start ];
    delta = Array.map (Array.map (fun q -> [ q ])) d.Dfa.delta;
    accept = d.Dfa.accept;
  }

module ISet = Set.Make (Int)

let step_set n set letter =
  ISet.fold
    (fun q acc ->
      List.fold_left (fun acc q' -> ISet.add q' acc) acc n.delta.(q).(letter))
    set ISet.empty

let accepts n word =
  let final =
    Array.fold_left
      (fun set letter -> step_set n set letter)
      (ISet.of_list n.starts) word
  in
  ISet.exists (fun q -> n.accept.(q)) final

let project_sized (d : Dfa.t) ~alphabet preimages =
  {
    states = d.Dfa.states;
    alphabet;
    starts = [ d.Dfa.start ];
    delta =
      Array.init d.Dfa.states (fun q ->
          Array.init alphabet (fun b ->
              List.sort_uniq compare
                (List.map (fun a -> d.Dfa.delta.(q).(a)) (preimages b))));
    accept = d.Dfa.accept;
  }

let project (d : Dfa.t) preimages =
  (* default: halve the alphabet (erasing one boolean track) *)
  project_sized d ~alphabet:(max 1 (d.Dfa.alphabet / 2)) preimages

let determinize n =
  let module SMap = Map.Make (ISet) in
  let ids = ref SMap.empty in
  let table = ref [] in
  let count = ref 0 in
  let rec visit set =
    match SMap.find_opt set !ids with
    | Some id -> id
    | None ->
        let id = !count in
        incr count;
        ids := SMap.add set id !ids;
        let row = Array.make n.alphabet (-1) in
        table := (id, set, row) :: !table;
        for a = 0 to n.alphabet - 1 do
          row.(a) <- visit (step_set n set a)
        done;
        id
  in
  let start = visit (ISet.of_list n.starts) in
  let states = !count in
  let delta = Array.make states [||] in
  let accept = Array.make states false in
  List.iter
    (fun (id, set, row) ->
      delta.(id) <- row;
      accept.(id) <- ISet.exists (fun q -> n.accept.(q)) set)
    !table;
  Dfa.create ~states ~alphabet:n.alphabet ~start ~delta ~accept
