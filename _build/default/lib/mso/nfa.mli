(** Nondeterministic finite automata (no epsilon transitions) and the
    subset construction.  Used by the MSO compiler for the projection
    step of existential quantifiers. *)

type t = {
  states : int;
  alphabet : int;
  starts : int list;
  delta : int list array array;  (** [delta.(q).(a)]: successor list *)
  accept : bool array;
}

val create :
  states:int -> alphabet:int -> starts:int list ->
  delta:int list array array -> accept:bool array -> t
(** Validates shapes and ranges.  @raise Invalid_argument otherwise. *)

val of_dfa : Dfa.t -> t

val accepts : t -> int array -> bool

val project : Dfa.t -> (int -> int list) -> t
(** [project dfa preimages]: the NFA over a new alphabet whose letter [b]
    moves along any [a ∈ preimages b] of the DFA — the homomorphic
    preimage construction used to erase a variable track ([preimages]
    maps a letter of the {e smaller} alphabet to the letters of the
    larger one that project to it).  The new alphabet size is taken from
    the largest [b] probed; pass it explicitly via {!project_sized} when
    in doubt. *)

val project_sized : Dfa.t -> alphabet:int -> (int -> int list) -> t

val determinize : t -> Dfa.t
(** Subset construction (on reachable subsets only). *)
