type t = {
  dfa : Dfa.t;
  sigma : int;
  word : int array;
  (* table.(k).(i): transition function (as a state array) of the
     zero-annotated segment [i, i + 2^k) *)
  table : int array array array;
  levels : int;
}

let compose_into dst f g states =
  (* dst = g after f: dst.(q) = g.(f.(q)) *)
  for q = 0 to states - 1 do
    dst.(q) <- g.(f.(q))
  done

let make ~sigma (dfa : Dfa.t) word =
  if sigma < 1 then invalid_arg "Oracle.make: need sigma >= 1";
  let rec is_power_scaled a = a = sigma || (a mod 2 = 0 && is_power_scaled (a / 2)) in
  if not (is_power_scaled dfa.Dfa.alphabet) then
    invalid_arg "Oracle.make: alphabet is not sigma * 2^tracks";
  Array.iter
    (fun a ->
      if a < 0 || a >= sigma then
        invalid_arg "Oracle.make: word letter out of base alphabet")
    word;
  let n = Array.length word in
  let states = dfa.Dfa.states in
  let levels =
    let rec go k = if 1 lsl k >= max 1 n then k + 1 else go (k + 1) in
    go 0
  in
  let table =
    Array.init levels (fun _ -> Array.make (max 1 n) [||])
  in
  (* level 0: single letters *)
  for i = 0 to n - 1 do
    table.(0).(i) <- Array.init states (fun q -> dfa.Dfa.delta.(q).(word.(i)))
  done;
  if n = 0 then table.(0).(0) <- Array.init states Fun.id;
  for k = 1 to levels - 1 do
    let len = 1 lsl k in
    for i = 0 to n - 1 do
      if i + (len / 2) < n then begin
        let dst = Array.make states 0 in
        compose_into dst table.(k - 1).(i) table.(k - 1).(i + (len / 2)) states;
        table.(k).(i) <- dst
      end
      else table.(k).(i) <- table.(k - 1).(i)
    done
  done;
  { dfa; sigma; word; table; levels }

let word_length o = Array.length o.word

(* advance state q through the zero-annotated segment [i, j) *)
let advance o q i j =
  let q = ref q in
  let i = ref i in
  let k = ref (o.levels - 1) in
  while !i < j do
    while !k > 0 && (!i + (1 lsl !k) > j || 1 lsl !k > j - !i) do
      decr k
    done;
    q := o.table.(!k).(!i).(!q);
    i := !i + (1 lsl !k)
  done;
  !q

let normalise_marks o marks =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (p, mask) ->
      if p < 0 || p >= Array.length o.word then
        invalid_arg "Oracle: mark position out of range";
      let prev = Option.value (Hashtbl.find_opt tbl p) ~default:0 in
      Hashtbl.replace tbl p (prev lor mask))
    marks;
  Hashtbl.fold (fun p mask acc -> (p, mask) :: acc) tbl []
  |> List.sort compare

let eval_with_marks o ~marks =
  let marks = normalise_marks o marks in
  let n = Array.length o.word in
  let q = ref o.dfa.Dfa.start in
  let pos = ref 0 in
  List.iter
    (fun (p, mask) ->
      q := advance o !q !pos p;
      let letter = o.word.(p) + (o.sigma * mask) in
      q := o.dfa.Dfa.delta.(!q).(letter);
      pos := p + 1)
    marks;
  q := advance o !q !pos n;
  o.dfa.Dfa.accept.(!q)

let eval_naive o ~marks =
  let marks = normalise_marks o marks in
  let annotated = Array.copy o.word in
  List.iter
    (fun (p, mask) -> annotated.(p) <- o.word.(p) + (o.sigma * mask))
    marks;
  Dfa.accepts o.dfa annotated
