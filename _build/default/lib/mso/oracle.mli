(** Preprocessing for sublinear hypothesis evaluation on a fixed word —
    the engine of the paper's related work [21] (learning MSO on strings
    with a preprocessing phase that supports fast evaluation later).

    Given a compiled track automaton [A] (alphabet [sigma * 2^tracks])
    and a word [w] over the {e base} alphabet, {!make} builds a sparse
    table of composed transition functions of the zero-annotated word in
    time/space [O(|Q| n log n)].  {!eval_with_marks} then decides whether
    [A] accepts [w] annotated with any given variable marks in time
    [O((#marks + 1) * |Q| * log n)] — logarithmic in the word length,
    instead of the [O(n)] full run. *)

type t

val make : sigma:int -> Dfa.t -> int array -> t
(** [make ~sigma a w].  [a.alphabet] must be [sigma * 2^tracks] for some
    [tracks >= 0]; letters of [w] must be [< sigma].
    @raise Invalid_argument otherwise. *)

val word_length : t -> int

val eval_with_marks : t -> marks:(int * int) list -> bool
(** [eval_with_marks o ~marks] with [(position, trackmask)] pairs: does
    the automaton accept the word annotated with those track marks?
    Duplicate positions get their masks or-ed.
    @raise Invalid_argument on an out-of-range position. *)

val eval_naive : t -> marks:(int * int) list -> bool
(** Reference implementation: materialise the annotated word and run the
    automaton in [O(n)].  Used for cross-checking and the E13 baseline. *)
