exception Parse_error of string

type token =
  | IDENT of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | LESS
  | EQ
  | NOT
  | AND
  | OR
  | IMPLIES
  | IFF
  | TRUE
  | FALSE
  | EXISTS
  | FORALL
  | EXISTSSET
  | FORALLSET
  | SUCC
  | IN
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | LESS -> "'<'"
  | EQ -> "'='"
  | NOT -> "'~'"
  | AND -> "'/\\'"
  | OR -> "'\\/'"
  | IMPLIES -> "'->'"
  | IFF -> "'<->'"
  | TRUE -> "'true'"
  | FALSE -> "'false'"
  | EXISTS -> "'exists'"
  | FORALL -> "'forall'"
  | EXISTSSET -> "'existsset'"
  | FORALLSET -> "'forallset'"
  | SUCC -> "'succ'"
  | IN -> "'in'"
  | EOF -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (emit LPAREN; incr i)
    else if c = ')' then (emit RPAREN; incr i)
    else if c = ',' then (emit COMMA; incr i)
    else if c = '.' then (emit DOT; incr i)
    else if c = '~' then (emit NOT; incr i)
    else if c = '&' then (emit AND; incr i)
    else if c = '|' then (emit OR; incr i)
    else if c = '=' then (emit EQ; incr i)
    else if c = '/' && !i + 1 < n && input.[!i + 1] = '\\' then (emit AND; i := !i + 2)
    else if c = '\\' && !i + 1 < n && input.[!i + 1] = '/' then (emit OR; i := !i + 2)
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '>' then (emit IMPLIES; i := !i + 2)
    else if c = '<' && !i + 2 < n && input.[!i + 1] = '-' && input.[!i + 2] = '>'
    then (emit IFF; i := !i + 3)
    else if c = '<' then (emit LESS; incr i)
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do incr i done;
      match String.sub input start (!i - start) with
      | "true" -> emit TRUE
      | "false" -> emit FALSE
      | "not" -> emit NOT
      | "and" -> emit AND
      | "or" -> emit OR
      | "exists" -> emit EXISTS
      | "forall" -> emit FORALL
      | "existsset" -> emit EXISTSSET
      | "forallset" -> emit FORALLSET
      | "succ" -> emit SUCC
      | "in" -> emit IN
      | w -> emit (IDENT w)
    end
    else
      raise (Parse_error (Printf.sprintf "unexpected character %C at offset %d" c !i))
  done;
  emit EOF;
  List.rev !tokens

type state = { mutable toks : token list; letters : string list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t =
  let got = peek st in
  if got = t then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (token_to_string t)
            (token_to_string got)))

let expect_ident st =
  match peek st with
  | IDENT x ->
      advance st;
      x
  | got ->
      raise
        (Parse_error
           (Printf.sprintf "expected an identifier but found %s"
              (token_to_string got)))

let letter_index st name =
  let rec find i = function
    | [] -> None
    | l :: rest -> if l = name then Some i else find (i + 1) rest
  in
  find 0 st.letters

let rec parse_formula st = parse_iff st

and parse_iff st =
  let lhs = parse_impl st in
  match peek st with
  | IFF ->
      advance st;
      let rhs = parse_impl st in
      (* a <-> b  =  (a /\ b) \/ (~a /\ ~b) *)
      Formula.Or
        [ Formula.And [ lhs; rhs ]; Formula.And [ Formula.Not lhs; Formula.Not rhs ] ]
  | _ -> lhs

and parse_impl st =
  let lhs = parse_or st in
  match peek st with
  | IMPLIES ->
      advance st;
      let rhs = parse_impl st in
      Formula.Or [ Formula.Not lhs; rhs ]
  | _ -> lhs

and parse_or st =
  let first = parse_and st in
  let rec loop acc =
    match peek st with
    | OR ->
        advance st;
        loop (parse_and st :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with [ f ] -> f | fs -> Formula.Or fs

and parse_and st =
  let first = parse_unary st in
  let rec loop acc =
    match peek st with
    | AND ->
        advance st;
        loop (parse_unary st :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with [ f ] -> f | fs -> Formula.And fs

and parse_unary st =
  match peek st with
  | NOT ->
      advance st;
      Formula.Not (parse_unary st)
  | (EXISTS | FORALL | EXISTSSET | FORALLSET) as quant ->
      advance st;
      let rec idents acc =
        match peek st with
        | IDENT x ->
            advance st;
            idents (x :: acc)
        | _ -> List.rev acc
      in
      let xs = idents [] in
      if xs = [] then
        raise (Parse_error "quantifier must bind at least one variable");
      expect st DOT;
      let body = parse_formula st in
      let wrap x acc =
        match quant with
        | EXISTS -> Formula.ExistsPos (x, acc)
        | FORALL -> Formula.ForallPos (x, acc)
        | EXISTSSET -> Formula.ExistsSet (x, acc)
        | _ -> Formula.ForallSet (x, acc)
      in
      List.fold_right wrap xs body
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | TRUE ->
      advance st;
      Formula.MTrue
  | FALSE ->
      advance st;
      Formula.MFalse
  | LPAREN ->
      advance st;
      let f = parse_formula st in
      expect st RPAREN;
      f
  | SUCC ->
      advance st;
      expect st LPAREN;
      let x = expect_ident st in
      expect st COMMA;
      let y = expect_ident st in
      expect st RPAREN;
      Formula.Succ (x, y)
  | IDENT name -> (
      advance st;
      match peek st with
      | LESS ->
          advance st;
          Formula.Less (name, expect_ident st)
      | EQ ->
          advance st;
          Formula.EqPos (name, expect_ident st)
      | IN ->
          advance st;
          Formula.Mem (name, expect_ident st)
      | LPAREN -> (
          advance st;
          let x = expect_ident st in
          expect st RPAREN;
          match letter_index st name with
          | Some a -> Formula.Letter (a, x)
          | None ->
              raise
                (Parse_error
                   (Printf.sprintf "%S is not a letter of the alphabet" name)))
      | got ->
          raise
            (Parse_error
               (Printf.sprintf "identifier %S must begin an atom; found %s"
                  name (token_to_string got))))
  | got ->
      raise
        (Parse_error
           (Printf.sprintf "expected a formula but found %s"
              (token_to_string got)))

let parse ~letters input =
  List.iter
    (fun l ->
      if
        List.mem l
          [
            "true"; "false"; "not"; "and"; "or"; "exists"; "forall";
            "existsset"; "forallset"; "succ"; "in";
          ]
      then
        raise
          (Parse_error (Printf.sprintf "letter name %S collides with a keyword" l)))
    letters;
  let st = { toks = lex input; letters } in
  let f = parse_formula st in
  expect st EOF;
  f

let parse_opt ~letters input =
  try Some (parse ~letters input) with Parse_error _ -> None
