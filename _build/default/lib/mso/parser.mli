(** Concrete syntax for MSO-on-words formulas.

    Grammar (precedences as in {!Fo.Parser}):
    {v
      formula := iff | impl | or | and | unary ...
      unary   := ('~'|'not') unary | quantified | primary
      quantified := ('exists' | 'forall') ident+ '.' formula        (positions)
                  | ('existsset' | 'forallset') ident+ '.' formula  (sets)
      atom    := ident '<' ident            (position order)
                | ident '=' ident           (position equality)
                | 'succ' '(' ident ',' ident ')'
                | ident 'in' ident          (set membership)
                | letter '(' ident ')'      (letter atom, letter from the alphabet)
      'true' / 'false' and parentheses as usual.
    v}

    Letters are resolved against the [letters] argument (e.g.
    [~letters:["a"; "b"]] makes [a(x)] mean "position [x] carries letter
    0").  Keywords ([exists], [succ], [in], ...) cannot be letter
    names. *)

exception Parse_error of string

val parse : letters:string list -> string -> Formula.t
(** @raise Parse_error on malformed input. *)

val parse_opt : letters:string list -> string -> Formula.t option
