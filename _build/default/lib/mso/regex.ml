type t =
  | Empty
  | Eps
  | Letter of int
  | Seq of t * t
  | Alt of t * t
  | Star of t

let letter a = Letter a

let seq2 a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Eps, r | r, Eps -> r
  | a, b -> Seq (a, b)

let alt2 a b =
  match (a, b) with
  | Empty, r | r, Empty -> r
  | a, b -> if a = b then a else Alt (a, b)

let seq rs = List.fold_right seq2 rs Eps
let alt rs = List.fold_right alt2 rs Empty

let star = function
  | Empty | Eps -> Eps
  | Star _ as r -> r
  | r -> Star r

let plus r = seq2 r (star r)
let opt r = alt2 r Eps
let any ~sigma = alt (List.init sigma letter)
let all ~sigma = star (any ~sigma)

let rec nullable = function
  | Empty | Letter _ -> false
  | Eps | Star _ -> true
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b

(* Brzozowski derivative *)
let rec deriv a = function
  | Empty | Eps -> Empty
  | Letter b -> if a = b then Eps else Empty
  | Seq (r, s) ->
      let left = seq2 (deriv a r) s in
      if nullable r then alt2 left (deriv a s) else left
  | Alt (r, s) -> alt2 (deriv a r) (deriv a s)
  | Star r as whole -> seq2 (deriv a r) whole

let matches r word =
  nullable (Array.fold_left (fun r a -> deriv a r) r word)

(* --------------------------------------------------------------- *)
(* Glushkov position automaton                                      *)
(* --------------------------------------------------------------- *)

module ISet = Set.Make (Int)

(* linearise: annotate each letter occurrence with a position id *)
type lin =
  | LEmpty
  | LEps
  | LLetter of int * int  (* letter, position *)
  | LSeq of lin * lin
  | LAlt of lin * lin
  | LStar of lin

let linearise r =
  let count = ref 0 in
  let letters = ref [] in
  let rec go = function
    | Empty -> LEmpty
    | Eps -> LEps
    | Letter a ->
        incr count;
        letters := (!count, a) :: !letters;
        LLetter (a, !count)
    | Seq (x, y) ->
        let x' = go x in
        let y' = go y in
        LSeq (x', y')
    | Alt (x, y) ->
        let x' = go x in
        let y' = go y in
        LAlt (x', y')
    | Star x -> LStar (go x)
  in
  let l = go r in
  (l, !count, !letters)

let rec lnullable = function
  | LEmpty | LLetter _ -> false
  | LEps | LStar _ -> true
  | LSeq (a, b) -> lnullable a && lnullable b
  | LAlt (a, b) -> lnullable a || lnullable b

let rec first = function
  | LEmpty | LEps -> ISet.empty
  | LLetter (_, p) -> ISet.singleton p
  | LSeq (a, b) ->
      if lnullable a then ISet.union (first a) (first b) else first a
  | LAlt (a, b) -> ISet.union (first a) (first b)
  | LStar a -> first a

let rec last = function
  | LEmpty | LEps -> ISet.empty
  | LLetter (_, p) -> ISet.singleton p
  | LSeq (a, b) ->
      if lnullable b then ISet.union (last a) (last b) else last b
  | LAlt (a, b) -> ISet.union (last a) (last b)
  | LStar a -> last a

let follow_table lin count =
  let follow = Array.make (count + 1) ISet.empty in
  let add_all src targets =
    ISet.iter
      (fun p -> follow.(p) <- ISet.union follow.(p) targets)
      src
  in
  let rec go = function
    | LEmpty | LEps | LLetter _ -> ()
    | LSeq (a, b) ->
        go a;
        go b;
        add_all (last a) (first b)
    | LAlt (a, b) ->
        go a;
        go b
    | LStar a ->
        go a;
        add_all (last a) (first a)
  in
  go lin;
  follow

let to_nfa ~sigma r =
  let rec check = function
    | Letter a ->
        if a < 0 || a >= sigma then
          invalid_arg "Regex.to_nfa: letter out of alphabet"
    | Seq (a, b) | Alt (a, b) ->
        check a;
        check b
    | Star a -> check a
    | Empty | Eps -> ()
  in
  check r;
  let lin, count, letters = linearise r in
  let letter_of = Array.make (count + 1) 0 in
  List.iter (fun (p, a) -> letter_of.(p) <- a) letters;
  let follow = follow_table lin count in
  let firsts = first lin in
  let lasts = last lin in
  (* state 0 = start, states 1..count = positions *)
  let states = count + 1 in
  let delta =
    Array.init states (fun q ->
        Array.init sigma (fun a ->
            let sources = if q = 0 then firsts else follow.(q) in
            ISet.elements
              (ISet.filter (fun p -> letter_of.(p) = a) sources)))
  in
  let accept =
    Array.init states (fun q ->
        if q = 0 then lnullable lin else ISet.mem q lasts)
  in
  Nfa.create ~states ~alphabet:sigma ~starts:[ 0 ] ~delta ~accept

let to_dfa ~sigma r = Dfa.minimize (Nfa.determinize (to_nfa ~sigma r))

let pp ~letters ppf r =
  let name a =
    match List.nth_opt letters a with Some l -> l | None -> string_of_int a
  in
  (* precedence: alt 0, seq 1, star/atom 2 *)
  let rec go lvl ppf r =
    let paren needed body =
      if needed then Format.fprintf ppf "(%t)" body else body ppf
    in
    match r with
    | Empty -> Format.pp_print_string ppf "0"
    | Eps -> Format.pp_print_string ppf "1"
    | Letter a -> Format.pp_print_string ppf (name a)
    | Alt (a, b) ->
        paren (lvl > 0) (fun ppf ->
            Format.fprintf ppf "%a|%a" (go 0) a (go 0) b)
    | Seq (a, b) ->
        paren (lvl > 1) (fun ppf ->
            Format.fprintf ppf "%a%a" (go 1) a (go 1) b)
    | Star a ->
        paren false (fun ppf -> Format.fprintf ppf "%a*" (go 2) a)
  in
  go 0 ppf r

exception Parse_error of string

let of_string ~letters input =
  List.iter
    (fun l ->
      if String.length l <> 1 then
        raise (Parse_error (Printf.sprintf "letter name %S must be one character" l)))
    letters;
  let letter_of c =
    let rec find i = function
      | [] -> None
      | l :: rest -> if l.[0] = c then Some i else find (i + 1) rest
    in
    find 0 letters
  in
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let rec alt_level () =
    let first = seq_level () in
    let rec loop acc =
      match peek () with
      | Some '|' ->
          incr pos;
          loop (alt2 acc (seq_level ()))
      | _ -> acc
    in
    loop first
  and seq_level () =
    let rec loop acc =
      match peek () with
      | Some c when c <> '|' && c <> ')' -> loop (seq2 acc (star_level ()))
      | _ -> acc
    in
    (match peek () with
    | Some c when c <> '|' && c <> ')' -> loop (star_level ())
    | _ -> Eps)
  and star_level () =
    let base = atom_level () in
    let rec postfix acc =
      match peek () with
      | Some '*' ->
          incr pos;
          postfix (star acc)
      | Some '+' ->
          incr pos;
          postfix (plus acc)
      | Some '?' ->
          incr pos;
          postfix (opt acc)
      | _ -> acc
    in
    postfix base
  and atom_level () =
    match peek () with
    | Some '(' ->
        incr pos;
        let r = alt_level () in
        (match peek () with
        | Some ')' -> incr pos
        | _ -> fail "expected ')'");
        r
    | Some '0' when letter_of '0' = None ->
        incr pos;
        Empty
    | Some '1' when letter_of '1' = None ->
        incr pos;
        Eps
    | Some c -> (
        match letter_of c with
        | Some a ->
            incr pos;
            Letter a
        | None -> fail (Printf.sprintf "unknown letter %C" c))
    | None -> fail "unexpected end of input"
  in
  let r = alt_level () in
  if !pos <> n then fail "trailing input";
  r
