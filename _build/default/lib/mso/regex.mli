(** Regular expressions over integer alphabets, compiled to automata via
    the Glushkov (position automaton) construction.

    Completes the Büchi–Elgot–Trakhtenbrot triangle of the strings
    subsystem: MSO sentences, DFAs and regular expressions all denote the
    regular languages, and the test suite checks the three-way
    equivalences on concrete languages. *)

type t =
  | Empty  (** the empty language *)
  | Eps  (** the empty word *)
  | Letter of int
  | Seq of t * t
  | Alt of t * t
  | Star of t

(** {1 Combinators} *)

val letter : int -> t
val seq : t list -> t
(** Concatenation of a list ([Eps] for the empty list); simplifies units. *)

val alt : t list -> t
(** Union ([Empty] for the empty list); simplifies units. *)

val star : t -> t
val plus : t -> t
(** [plus r = seq r (star r)]. *)

val opt : t -> t
(** [opt r = alt r eps]. *)

val any : sigma:int -> t
(** Any single letter. *)

val all : sigma:int -> t
(** Any word: [(any)*]. *)

(** {1 Semantics} *)

val nullable : t -> bool
(** Does the language contain the empty word? *)

val matches : t -> int array -> bool
(** Direct matching by derivatives (reference semantics; no compilation). *)

val to_nfa : sigma:int -> t -> Nfa.t
(** The Glushkov position automaton: one state per letter occurrence plus
    a start state; no epsilon transitions.
    @raise Invalid_argument on a letter [>= sigma]. *)

val to_dfa : sigma:int -> t -> Dfa.t
(** [minimize (determinize (to_nfa r))]. *)

val pp : letters:string list -> Format.formatter -> t -> unit
(** Render with the given letter names (e.g. ["ab"] split into names). *)

exception Parse_error of string

val of_string : letters:string list -> string -> t
(** Parse the {!pp} syntax: juxtaposition is concatenation, ['|'] is
    union, ['*'] and ['+'] and ['?'] postfix, ['0'] the empty language,
    ['1'] the empty word, parentheses as usual; letter names resolved
    against [letters] (single-character names only).
    @raise Parse_error on malformed input. *)
