type t =
  | Leaf of int
  | Unary of int * t
  | Binary of int * t * t

let rec size = function
  | Leaf _ -> 1
  | Unary (_, c) -> 1 + size c
  | Binary (_, l, r) -> 1 + size l + size r

let rec depth = function
  | Leaf _ -> 1
  | Unary (_, c) -> 1 + depth c
  | Binary (_, l, r) -> 1 + max (depth l) (depth r)

let label = function Leaf a | Unary (a, _) | Binary (a, _, _) -> a

let rec check_labels ~sigma t =
  let a = label t in
  if a < 0 || a >= sigma then
    invalid_arg (Printf.sprintf "Tree: label %d outside 0..%d" a (sigma - 1));
  match t with
  | Leaf _ -> ()
  | Unary (_, c) -> check_labels ~sigma c
  | Binary (_, l, r) ->
      check_labels ~sigma l;
      check_labels ~sigma r

let nodes t =
  let acc = ref [] in
  let counter = ref 0 in
  let rec go t =
    let id = !counter in
    incr counter;
    acc := (id, label t) :: !acc;
    match t with
    | Leaf _ -> ()
    | Unary (_, c) -> go c
    | Binary (_, l, r) ->
        go l;
        go r
  in
  go t;
  List.rev !acc

let subtree t id =
  let counter = ref 0 in
  let found = ref None in
  let rec go t =
    let here = !counter in
    incr counter;
    if here = id then found := Some t;
    if !found = None then begin
      match t with
      | Leaf _ -> ()
      | Unary (_, c) -> go c
      | Binary (_, l, r) ->
          go l;
          go r
    end
  in
  go t;
  match !found with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Tree.subtree: no node %d" id)

let structure t =
  (* (id, parent option, children ids) in preorder *)
  let counter = ref 0 in
  let rows = ref [] in
  let rec go parent t =
    let id = !counter in
    incr counter;
    let kids =
      match t with
      | Leaf _ -> []
      | Unary (_, c) -> [ go (Some id) c ]
      | Binary (_, l, r) ->
          let a = go (Some id) l in
          let b = go (Some id) r in
          [ a; b ]
    in
    rows := (id, parent, kids) :: !rows;
    id
  in
  ignore (go None t);
  List.rev !rows

let parent t id =
  match List.find_opt (fun (i, _, _) -> i = id) (structure t) with
  | Some (_, p, _) -> p
  | None -> invalid_arg (Printf.sprintf "Tree.parent: no node %d" id)

let children t id =
  match List.find_opt (fun (i, _, _) -> i = id) (structure t) with
  | Some (_, _, kids) -> kids
  | None -> invalid_arg (Printf.sprintf "Tree.children: no node %d" id)

let relabel t id f =
  let counter = ref 0 in
  let rec go t =
    let here = !counter in
    incr counter;
    let fl a = if here = id then f a else a in
    match t with
    | Leaf a -> Leaf (fl a)
    | Unary (a, c) ->
        let a' = fl a in
        Unary (a', go c)
    | Binary (a, l, r) ->
        let a' = fl a in
        let l' = go l in
        let r' = go r in
        Binary (a', l', r')
  in
  go t

let random ~seed ~sigma ~size:target =
  if target < 1 then invalid_arg "Tree.random: need size >= 1";
  let st = Random.State.make [| seed; 0x7e |] in
  let letter () = Random.State.int st sigma in
  (* split a node budget into a random tree shape *)
  let rec build budget =
    if budget = 1 then Leaf (letter ())
    else if budget = 2 then Unary (letter (), build 1)
    else begin
      match Random.State.int st 3 with
      | 0 -> Unary (letter (), build (budget - 1))
      | _ ->
          let left = 1 + Random.State.int st (budget - 2) in
          Binary (letter (), build left, build (budget - 1 - left))
    end
  in
  build target

let rec pp ppf = function
  | Leaf a -> Format.fprintf ppf "%d" a
  | Unary (a, c) -> Format.fprintf ppf "%d(%a)" a pp c
  | Binary (a, l, r) -> Format.fprintf ppf "%d(%a,%a)" a pp l pp r

exception Parse_error of string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (input.[!pos] = ' ' || input.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if !pos < n && input.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let number () =
    skip_ws ();
    let start = !pos in
    while !pos < n && input.[!pos] >= '0' && input.[!pos] <= '9' do incr pos done;
    if !pos = start then fail "expected a label";
    int_of_string (String.sub input start (!pos - start))
  in
  let rec node () =
    let a = number () in
    skip_ws ();
    if !pos < n && input.[!pos] = '(' then begin
      incr pos;
      let first = node () in
      skip_ws ();
      if !pos < n && input.[!pos] = ',' then begin
        incr pos;
        let second = node () in
        expect ')';
        Binary (a, first, second)
      end
      else begin
        expect ')';
        Unary (a, first)
      end
    end
    else Leaf a
  in
  let t = node () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  t

let to_string t = Format.asprintf "%a" pp t
