(** Labelled ordered trees (arity at most 2) — the structures of the
    paper's related work [19] (learning MSO-definable hypotheses on
    trees, ICDT 2019).

    Every node carries a label [0..sigma-1] and has zero, one, or two
    children.  Nodes are addressed by their preorder index. *)

type t =
  | Leaf of int
  | Unary of int * t
  | Binary of int * t * t

val size : t -> int
(** Number of nodes. *)

val depth : t -> int
(** Length of the longest root-to-leaf path (a leaf has depth 1). *)

val label : t -> int
(** Root label. *)

val check_labels : sigma:int -> t -> unit
(** @raise Invalid_argument if some label is outside [0..sigma-1]. *)

(** {1 Preorder addressing} *)

val nodes : t -> (int * int) list
(** [(preorder id, label)] for every node, in preorder. *)

val subtree : t -> int -> t
(** The subtree rooted at a preorder id.
    @raise Invalid_argument on an out-of-range id. *)

val parent : t -> int -> int option
(** Preorder id of the parent ([None] for the root). *)

val children : t -> int -> int list
(** Preorder ids of the children, in order. *)

val relabel : t -> int -> (int -> int) -> t
(** [relabel t id f]: apply [f] to the label of the node with the given
    preorder id (used to annotate marks). *)

(** {1 Generation and printing} *)

val random : seed:int -> sigma:int -> size:int -> t
(** A random tree with exactly [size] nodes ([size >= 1]). *)

val pp : Format.formatter -> t -> unit
(** Term syntax: [1(0(1),1(0,0))]. *)

exception Parse_error of string

val of_string : string -> t
(** Parse the {!pp} term syntax (integer labels, parentheses, commas).
    @raise Parse_error on malformed input. *)

val to_string : t -> string
