type t = {
  states : int;
  alphabet : int;
  leaf : int array;
  unary : int array array;
  binary : int array array array;
  accept : bool array;
}

let create ~states ~alphabet ~leaf ~unary ~binary ~accept =
  if states < 1 then invalid_arg "Tree_automaton.create: need a state";
  if alphabet < 1 then invalid_arg "Tree_automaton.create: need a letter";
  let chk q = q >= 0 && q < states in
  if Array.length leaf <> alphabet || not (Array.for_all chk leaf) then
    invalid_arg "Tree_automaton.create: bad leaf table";
  if
    Array.length unary <> states
    || not
         (Array.for_all
            (fun row -> Array.length row = alphabet && Array.for_all chk row)
            unary)
  then invalid_arg "Tree_automaton.create: bad unary table";
  if
    Array.length binary <> states
    || not
         (Array.for_all
            (fun plane ->
              Array.length plane = states
              && Array.for_all
                   (fun row ->
                     Array.length row = alphabet && Array.for_all chk row)
                   plane)
            binary)
  then invalid_arg "Tree_automaton.create: bad binary table";
  if Array.length accept <> states then
    invalid_arg "Tree_automaton.create: bad accept table";
  { states; alphabet; leaf; unary; binary; accept }

let rec run a t =
  let check_label l =
    if l < 0 || l >= a.alphabet then
      invalid_arg "Tree_automaton.run: label out of alphabet"
  in
  match t with
  | Tree.Leaf l ->
      check_label l;
      a.leaf.(l)
  | Tree.Unary (l, c) ->
      check_label l;
      a.unary.(run a c).(l)
  | Tree.Binary (l, x, y) ->
      check_label l;
      a.binary.(run a x).(run a y).(l)

let accepts a t = a.accept.(run a t)

let complement a = { a with accept = Array.map not a.accept }

let product a b ~mode =
  if a.alphabet <> b.alphabet then
    invalid_arg "Tree_automaton.product: alphabet mismatch";
  let states = a.states * b.states in
  let pair qa qb = (qa * b.states) + qb in
  let leaf = Array.init a.alphabet (fun l -> pair a.leaf.(l) b.leaf.(l)) in
  let unary =
    Array.init states (fun s ->
        let qa = s / b.states and qb = s mod b.states in
        Array.init a.alphabet (fun l -> pair a.unary.(qa).(l) b.unary.(qb).(l)))
  in
  let binary =
    Array.init states (fun s1 ->
        let qa1 = s1 / b.states and qb1 = s1 mod b.states in
        Array.init states (fun s2 ->
            let qa2 = s2 / b.states and qb2 = s2 mod b.states in
            Array.init a.alphabet (fun l ->
                pair a.binary.(qa1).(qa2).(l) b.binary.(qb1).(qb2).(l))))
  in
  let accept =
    Array.init states (fun s ->
        let qa = s / b.states and qb = s mod b.states in
        match mode with
        | `Inter -> a.accept.(qa) && b.accept.(qb)
        | `Union -> a.accept.(qa) || b.accept.(qb))
  in
  { states; alphabet = a.alphabet; leaf; unary; binary; accept }

(* states generable bottom-up *)
let reachable_states a =
  let seen = Array.make a.states false in
  Array.iter (fun q -> seen.(q) <- true) a.leaf;
  let changed = ref true in
  while !changed do
    changed := false;
    for q = 0 to a.states - 1 do
      if seen.(q) then
        Array.iter
          (fun q' ->
            if not seen.(q') then begin
              seen.(q') <- true;
              changed := true
            end)
          a.unary.(q)
    done;
    for q1 = 0 to a.states - 1 do
      if seen.(q1) then
        for q2 = 0 to a.states - 1 do
          if seen.(q2) then
            Array.iter
              (fun q' ->
                if not seen.(q') then begin
                  seen.(q') <- true;
                  changed := true
                end)
              a.binary.(q1).(q2)
        done
    done
  done;
  seen

let restrict a =
  let seen = reachable_states a in
  let renum = Array.make a.states (-1) in
  let count = ref 0 in
  Array.iteri
    (fun q live ->
      if live then begin
        renum.(q) <- !count;
        incr count
      end)
    seen;
  let states = !count in
  let old_of_new = Array.make states 0 in
  Array.iteri (fun q c -> if c >= 0 then old_of_new.(c) <- q) renum;
  {
    states;
    alphabet = a.alphabet;
    leaf = Array.map (fun q -> renum.(q)) a.leaf;
    unary =
      Array.init states (fun c ->
          Array.map (fun q -> renum.(q)) a.unary.(old_of_new.(c)));
    binary =
      Array.init states (fun c1 ->
          Array.init states (fun c2 ->
              Array.map
                (fun q -> renum.(q))
                a.binary.(old_of_new.(c1)).(old_of_new.(c2))));
    accept = Array.init states (fun c -> a.accept.(old_of_new.(c)));
  }

let minimize a0 =
  let a = restrict a0 in
  let cls = Array.init a.states (fun q -> if a.accept.(q) then 1 else 0) in
  let changed = ref true in
  while !changed do
    changed := false;
    let sigs =
      Array.init a.states (fun q ->
          ( cls.(q),
            Array.map (fun q' -> cls.(q')) a.unary.(q),
            Array.init a.states (fun q2 ->
                ( cls.(q2),
                  Array.map (fun q' -> cls.(q')) a.binary.(q).(q2),
                  Array.map (fun q' -> cls.(q')) a.binary.(q2).(q) )) ))
    in
    let tbl = Hashtbl.create 16 in
    let next = ref 0 in
    let newcls =
      Array.map
        (fun s ->
          match Hashtbl.find_opt tbl s with
          | Some c -> c
          | None ->
              let c = !next in
              incr next;
              Hashtbl.replace tbl s c;
              c)
        sigs
    in
    if newcls <> cls then begin
      Array.blit newcls 0 cls 0 a.states;
      changed := true
    end
  done;
  let class_count = 1 + Array.fold_left max 0 cls in
  let repr = Array.make class_count (-1) in
  Array.iteri (fun q c -> if repr.(c) < 0 then repr.(c) <- q) cls;
  {
    states = class_count;
    alphabet = a.alphabet;
    leaf = Array.map (fun q -> cls.(q)) a.leaf;
    unary =
      Array.init class_count (fun c ->
          Array.map (fun q' -> cls.(q')) a.unary.(repr.(c)));
    binary =
      Array.init class_count (fun c1 ->
          Array.init class_count (fun c2 ->
              Array.map (fun q' -> cls.(q')) a.binary.(repr.(c1)).(repr.(c2))));
    accept = Array.init class_count (fun c -> a.accept.(repr.(c)));
  }

let is_empty a =
  let seen = reachable_states a in
  not (Array.exists2 (fun live acc -> live && acc) seen a.accept)

let equal_language a b =
  if a.alphabet <> b.alphabet then
    invalid_arg "Tree_automaton.equal_language: alphabet mismatch";
  let p = product a b ~mode:`Inter in
  let xor =
    {
      p with
      accept =
        Array.init p.states (fun s ->
            a.accept.(s / b.states) <> b.accept.(s mod b.states));
    }
  in
  is_empty xor

let total_language ~alphabet =
  create ~states:1 ~alphabet ~leaf:(Array.make alphabet 0)
    ~unary:[| Array.make alphabet 0 |]
    ~binary:[| [| Array.make alphabet 0 |] |]
    ~accept:[| true |]

let empty_language ~alphabet =
  { (total_language ~alphabet) with accept = [| false |] }

(* ------------------------------------------------------------------ *)
(* Nondeterministic closure                                            *)
(* ------------------------------------------------------------------ *)

type nta = {
  n_states : int;
  n_alphabet : int;
  n_leaf : int list array;
  n_unary : int list array array;
  n_binary : int list array array array;
  n_accept : bool array;
}

let project a ~alphabet preimages =
  {
    n_states = a.states;
    n_alphabet = alphabet;
    n_leaf =
      Array.init alphabet (fun b ->
          List.sort_uniq compare (List.map (fun l -> a.leaf.(l)) (preimages b)));
    n_unary =
      Array.init a.states (fun q ->
          Array.init alphabet (fun b ->
              List.sort_uniq compare
                (List.map (fun l -> a.unary.(q).(l)) (preimages b))));
    n_binary =
      Array.init a.states (fun q1 ->
          Array.init a.states (fun q2 ->
              Array.init alphabet (fun b ->
                  List.sort_uniq compare
                    (List.map (fun l -> a.binary.(q1).(q2).(l)) (preimages b)))));
    n_accept = a.accept;
  }

module ISet = Set.Make (Int)

let determinize (n : nta) =
  let module SMap = Map.Make (ISet) in
  let ids = ref SMap.empty in
  let sets = ref [] in
  let count = ref 0 in
  let intern set =
    match SMap.find_opt set !ids with
    | Some id -> (id, false)
    | None ->
        let id = !count in
        incr count;
        ids := SMap.add set id !ids;
        sets := (id, set) :: !sets;
        (id, true)
  in
  let union_over f qs = List.fold_left (fun acc q -> ISet.union acc (ISet.of_list (f q))) ISet.empty qs in
  (* seed with leaf subsets *)
  let leaf_ids =
    Array.init n.n_alphabet (fun b -> fst (intern (ISet.of_list n.n_leaf.(b))))
  in
  (* saturate: keep discovering subsets via unary/binary moves *)
  let unary_tbl : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let binary_tbl : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let set_of = Hashtbl.create 64 in
  let sync () =
    List.iter (fun (id, s) -> Hashtbl.replace set_of id s) !sets
  in
  sync ();
  let changed = ref true in
  while !changed do
    changed := false;
    let current = !sets in
    List.iter
      (fun (id1, s1) ->
        for b = 0 to n.n_alphabet - 1 do
          if not (Hashtbl.mem unary_tbl (id1, b)) then begin
            let target =
              union_over (fun q -> n.n_unary.(q).(b)) (ISet.elements s1)
            in
            let tid, fresh = intern target in
            if fresh then begin
              changed := true;
              sync ()
            end;
            Hashtbl.replace unary_tbl (id1, b) tid
          end
        done;
        List.iter
          (fun (id2, s2) ->
            for b = 0 to n.n_alphabet - 1 do
              if not (Hashtbl.mem binary_tbl (id1, id2, b)) then begin
                let target =
                  ISet.elements s1
                  |> List.fold_left
                       (fun acc q1 ->
                         ISet.elements s2
                         |> List.fold_left
                              (fun acc q2 ->
                                ISet.union acc
                                  (ISet.of_list n.n_binary.(q1).(q2).(b)))
                              acc)
                       ISet.empty
                in
                let tid, fresh = intern target in
                if fresh then begin
                  changed := true;
                  sync ()
                end;
                Hashtbl.replace binary_tbl (id1, id2, b) tid
              end
            done)
          current)
      current
  done;
  let states = !count in
  let get_set id = Hashtbl.find set_of id in
  let leaf = leaf_ids in
  let unary =
    Array.init states (fun q ->
        Array.init n.n_alphabet (fun b ->
            match Hashtbl.find_opt unary_tbl (q, b) with
            | Some t -> t
            | None ->
                (* subset discovered in the last round: compute directly *)
                let target =
                  union_over (fun s -> n.n_unary.(s).(b))
                    (ISet.elements (get_set q))
                in
                fst (intern target)))
  in
  let binary =
    Array.init states (fun q1 ->
        Array.init states (fun q2 ->
            Array.init n.n_alphabet (fun b ->
                match Hashtbl.find_opt binary_tbl (q1, q2, b) with
                | Some t -> t
                | None ->
                    let target =
                      ISet.elements (get_set q1)
                      |> List.fold_left
                           (fun acc s1 ->
                             ISet.elements (get_set q2)
                             |> List.fold_left
                                  (fun acc s2 ->
                                    ISet.union acc
                                      (ISet.of_list n.n_binary.(s1).(s2).(b)))
                                  acc)
                           ISet.empty
                    in
                    fst (intern target))))
  in
  (* the while-loop saturated, so intern above cannot create new ids *)
  let accept =
    Array.init states (fun q ->
        ISet.exists (fun s -> n.n_accept.(s)) (get_set q))
  in
  create ~states ~alphabet:n.n_alphabet ~leaf ~unary ~binary ~accept
