(** Bottom-up deterministic tree automata over labelled trees of arity
    at most 2 — the tree counterpart of {!Dfa}, recognising the regular
    tree languages into which MSO-on-trees compiles. *)

type t = {
  states : int;
  alphabet : int;
  leaf : int array;  (** [leaf.(a)] *)
  unary : int array array;  (** [unary.(q).(a)] *)
  binary : int array array array;  (** [binary.(q1).(q2).(a)] *)
  accept : bool array;
}

val create :
  states:int -> alphabet:int ->
  leaf:int array -> unary:int array array -> binary:int array array array ->
  accept:bool array -> t
(** Validates shapes and ranges.  @raise Invalid_argument otherwise. *)

val run : t -> Tree.t -> int
(** Bottom-up state at the root.
    @raise Invalid_argument on an out-of-alphabet label. *)

val accepts : t -> Tree.t -> bool

val complement : t -> t
val product : t -> t -> mode:[ `Inter | `Union ] -> t

val minimize : t -> t
(** Restrict to states reachable bottom-up, then Moore-refine.  Minimal
    and canonical for the recognised tree language. *)

val is_empty : t -> bool
(** No reachable accepting state (reachability = generable bottom-up). *)

val equal_language : t -> t -> bool

val total_language : alphabet:int -> t
val empty_language : alphabet:int -> t

(** {1 Nondeterministic closure (for projection)} *)

type nta = {
  n_states : int;
  n_alphabet : int;
  n_leaf : int list array;
  n_unary : int list array array;
  n_binary : int list array array array;
  n_accept : bool array;
}

val project : t -> alphabet:int -> (int -> int list) -> nta
(** Homomorphic preimage on labels (track erasure): letter [b] of the
    smaller alphabet may act as any [a ∈ preimages b]. *)

val determinize : nta -> t
(** Bottom-up subset construction (reachable subsets only). *)
