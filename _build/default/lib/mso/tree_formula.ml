type var = string

type t =
  | TTrue
  | TFalse
  | Label of int * var
  | Child1 of var * var
  | Child2 of var * var
  | EqPos of var * var
  | Mem of var * var
  | Not of t
  | And of t list
  | Or of t list
  | ExistsPos of var * t
  | ForallPos of var * t
  | ExistsSet of var * t
  | ForallSet of var * t

type kind = Pos | Set

module VMap = Map.Make (String)

let free phi =
  let add name kind acc =
    match VMap.find_opt name acc with
    | Some k when k <> kind ->
        invalid_arg
          (Printf.sprintf
             "Tree_formula: variable %S used both as position and set" name)
    | _ -> VMap.add name kind acc
  in
  let rec go bound acc = function
    | TTrue | TFalse -> acc
    | Label (_, x) -> if List.mem x bound then acc else add x Pos acc
    | Child1 (x, y) | Child2 (x, y) | EqPos (x, y) ->
        let acc = if List.mem x bound then acc else add x Pos acc in
        if List.mem y bound then acc else add y Pos acc
    | Mem (x, bigx) ->
        let acc = if List.mem x bound then acc else add x Pos acc in
        if List.mem bigx bound then acc else add bigx Set acc
    | Not f -> go bound acc f
    | And fs | Or fs -> List.fold_left (go bound) acc fs
    | ExistsPos (x, f) | ForallPos (x, f) | ExistsSet (x, f) | ForallSet (x, f)
      ->
        go (x :: bound) acc f
  in
  VMap.bindings (go [] VMap.empty phi)

(* ------------------------------------------------------------------ *)
(* Direct evaluation                                                   *)
(* ------------------------------------------------------------------ *)

type assignment = {
  pos : (var * int) list;
  sets : (var * int list) list;
}

let empty_assignment = { pos = []; sets = [] }

let eval ~tree asg phi =
  let node_labels = Tree.nodes tree in
  let n = List.length node_labels in
  let label_of id = List.assoc id node_labels in
  let rec go asg = function
    | TTrue -> true
    | TFalse -> false
    | Label (a, x) -> label_of (List.assoc x asg.pos) = a
    | Child1 (x, y) -> (
        match Tree.children tree (List.assoc x asg.pos) with
        | c :: _ -> c = List.assoc y asg.pos
        | [] -> false)
    | Child2 (x, y) -> (
        match Tree.children tree (List.assoc x asg.pos) with
        | [ _; c ] -> c = List.assoc y asg.pos
        | _ -> false)
    | EqPos (x, y) -> List.assoc x asg.pos = List.assoc y asg.pos
    | Mem (x, bigx) ->
        List.mem (List.assoc x asg.pos) (List.assoc bigx asg.sets)
    | Not f -> not (go asg f)
    | And fs -> List.for_all (go asg) fs
    | Or fs -> List.exists (go asg) fs
    | ExistsPos (x, f) ->
        List.exists
          (fun p -> go { asg with pos = (x, p) :: asg.pos } f)
          (List.init n Fun.id)
    | ForallPos (x, f) ->
        List.for_all
          (fun p -> go { asg with pos = (x, p) :: asg.pos } f)
          (List.init n Fun.id)
    | ExistsSet (bigx, f) ->
        List.exists
          (fun s -> go { asg with sets = (bigx, s) :: asg.sets } f)
          (subsets_of (List.init n Fun.id))
    | ForallSet (bigx, f) ->
        List.for_all
          (fun s -> go { asg with sets = (bigx, s) :: asg.sets } f)
          (subsets_of (List.init n Fun.id))
  and subsets_of = function
    | [] -> [ [] ]
    | p :: rest ->
        let s = subsets_of rest in
        s @ List.map (fun u -> p :: u) s
  in
  go asg phi

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

module Ta = Tree_automaton

let track scope name =
  (* innermost binding wins: quantifiers append their variable at the end
     of the scope, so a shadowed name must resolve to the LAST entry *)
  let rec find i best = function
    | [] -> best
    | (v, _) :: rest -> find (i + 1) (if v = name then Some i else best) rest
  in
  match find 0 None scope with
  | Some i -> i
  | None ->
      invalid_arg (Printf.sprintf "%s: %S is not in scope" __MODULE__ name)

let bit mask i = (mask lsr i) land 1 = 1

(* tree-automaton builder with a rejecting sink; the [next] callbacks see
   (base label, track mask) and return [Some state] or [None] (sink) *)
let machine ~sigma ~tracks ~states ~leaf_next ~unary_next ~binary_next
    ~accepting =
  let alphabet = sigma lsl tracks in
  let total = states + 1 in
  let sink = states in
  let split l = (l mod sigma, l / sigma) in
  let leaf =
    Array.init alphabet (fun l ->
        let a, m = split l in
        match leaf_next a m with Some q -> q | None -> sink)
  in
  let unary =
    Array.init total (fun q ->
        Array.init alphabet (fun l ->
            if q = sink then sink
            else begin
              let a, m = split l in
              match unary_next q a m with Some q' -> q' | None -> sink
            end))
  in
  let binary =
    Array.init total (fun q1 ->
        Array.init total (fun q2 ->
            Array.init alphabet (fun l ->
                if q1 = sink || q2 = sink then sink
                else begin
                  let a, m = split l in
                  match binary_next q1 q2 a m with
                  | Some q' -> q'
                  | None -> sink
                end)))
  in
  let accept = Array.init total (fun q -> q <> sink && accepting q) in
  Ta.create ~states:total ~alphabet ~leaf ~unary ~binary ~accept

(* exactly one mark on track t anywhere in the tree *)
let singleton_ta ~sigma ~tracks t =
  machine ~sigma ~tracks ~states:2
    ~leaf_next:(fun _ m -> if bit m t then Some 1 else Some 0)
    ~unary_next:(fun q _ m ->
      match (q, bit m t) with
      | 0, false -> Some 0
      | 0, true -> Some 1
      | 1, false -> Some 1
      | _ -> None)
    ~binary_next:(fun q1 q2 _ m ->
      let below = q1 + q2 in
      if bit m t then if below = 0 then Some 1 else None
      else if below <= 1 then Some below
      else None)
    ~accepting:(fun q -> q = 1)

let rec compile ~sigma ~scope phi =
  if sigma < 1 then invalid_arg "Tree_formula.compile: need sigma >= 1";
  List.iter
    (fun (v, k) ->
      match List.assoc_opt v scope with
      | Some k' when k = k' -> ()
      | Some _ ->
          invalid_arg
            (Printf.sprintf "Tree_formula.compile: %S has the wrong kind" v)
      | None ->
          invalid_arg
            (Printf.sprintf "Tree_formula.compile: free variable %S not in scope"
               v))
    (free phi);
  let tracks = List.length scope in
  let alphabet = sigma lsl tracks in
  let base = function
    | TTrue -> Ta.total_language ~alphabet
    | TFalse -> Ta.empty_language ~alphabet
    | Label (la, x) ->
        if la < 0 || la >= sigma then
          invalid_arg "Tree_formula.compile: label out of range";
        let t = track scope x in
        machine ~sigma ~tracks ~states:2
          ~leaf_next:(fun a m ->
            if bit m t then if a = la then Some 1 else None else Some 0)
          ~unary_next:(fun q a m ->
            match (q, bit m t) with
            | 0, false -> Some 0
            | 0, true -> if a = la then Some 1 else None
            | 1, false -> Some 1
            | _ -> None)
          ~binary_next:(fun q1 q2 a m ->
            let below = q1 + q2 in
            if bit m t then
              if below = 0 && a = la then Some 1 else None
            else if below <= 1 then Some below
            else None)
          ~accepting:(fun q -> q = 1)
    | (Child1 (x, y) | Child2 (x, y)) as atom ->
        let is_first = match atom with Child1 _ -> true | _ -> false in
        let tx = track scope x and ty = track scope y in
        (* states: 0 = N, 1 = y at subtree root, 2 = OK *)
        machine ~sigma ~tracks ~states:3
          ~leaf_next:(fun _ m ->
            match (bit m tx, bit m ty) with
            | false, false -> Some 0
            | false, true -> Some 1
            | _ -> None)
          ~unary_next:(fun q _ m ->
            match (bit m tx, bit m ty) with
            | true, true -> None
            | false, true -> if q = 0 then Some 1 else None
            | true, false ->
                if is_first && q = 1 then Some 2 else None
            | false, false -> (
                match q with 0 -> Some 0 | 2 -> Some 2 | _ -> None))
          ~binary_next:(fun q1 q2 _ m ->
            match (bit m tx, bit m ty) with
            | true, true -> None
            | false, true -> if q1 = 0 && q2 = 0 then Some 1 else None
            | true, false ->
                if is_first then if q1 = 1 && q2 = 0 then Some 2 else None
                else if q1 = 0 && q2 = 1 then Some 2
                else None
            | false, false -> (
                match (q1, q2) with
                | 0, 0 -> Some 0
                | 2, 0 | 0, 2 -> Some 2
                | _ -> None))
          ~accepting:(fun q -> q = 2)
    | EqPos (x, y) ->
        let tx = track scope x and ty = track scope y in
        machine ~sigma ~tracks ~states:2
          ~leaf_next:(fun _ m ->
            match (bit m tx, bit m ty) with
            | false, false -> Some 0
            | true, true -> Some 1
            | _ -> None)
          ~unary_next:(fun q _ m ->
            match (bit m tx, bit m ty) with
            | false, false -> Some q
            | true, true -> if q = 0 then Some 1 else None
            | _ -> None)
          ~binary_next:(fun q1 q2 _ m ->
            let below = q1 + q2 in
            match (bit m tx, bit m ty) with
            | false, false -> if below <= 1 then Some below else None
            | true, true -> if below = 0 then Some 1 else None
            | _ -> None)
          ~accepting:(fun q -> q = 1)
    | Mem (x, bigx) ->
        let tx = track scope x and ts = track scope bigx in
        machine ~sigma ~tracks ~states:2
          ~leaf_next:(fun _ m ->
            if bit m tx then if bit m ts then Some 1 else None else Some 0)
          ~unary_next:(fun q _ m ->
            if bit m tx then
              if q = 0 && bit m ts then Some 1 else None
            else Some q)
          ~binary_next:(fun q1 q2 _ m ->
            let below = q1 + q2 in
            if bit m tx then
              if below = 0 && bit m ts then Some 1 else None
            else if below <= 1 then Some below
            else None)
          ~accepting:(fun q -> q = 1)
    | _ -> assert false
  in
  let quantify ~is_pos ~exists x kind body =
    let scope' = scope @ [ (x, kind) ] in
    let inner =
      if exists then compile ~sigma ~scope:scope' body
      else Ta.complement (compile ~sigma ~scope:scope' body)
    in
    let inner =
      if is_pos then
        Ta.minimize
          (Ta.product inner
             (singleton_ta ~sigma ~tracks:(tracks + 1) tracks)
             ~mode:`Inter)
      else Ta.minimize inner
    in
    let half = alphabet in
    let nta = Ta.project inner ~alphabet:half (fun b -> [ b; b + half ]) in
    let projected = Ta.minimize (Ta.determinize nta) in
    if exists then projected else Ta.minimize (Ta.complement projected)
  in
  match phi with
  | TTrue | TFalse | Label _ | Child1 _ | Child2 _ | EqPos _ | Mem _ ->
      Ta.minimize (base phi)
  | Not f -> Ta.minimize (Ta.complement (compile ~sigma ~scope f))
  | And fs ->
      Ta.minimize
        (List.fold_left
           (fun acc f -> Ta.product acc (compile ~sigma ~scope f) ~mode:`Inter)
           (Ta.total_language ~alphabet)
           fs)
  | Or fs ->
      Ta.minimize
        (List.fold_left
           (fun acc f -> Ta.product acc (compile ~sigma ~scope f) ~mode:`Union)
           (Ta.empty_language ~alphabet)
           fs)
  | ExistsPos (x, f) -> quantify ~is_pos:true ~exists:true x Pos f
  | ForallPos (x, f) -> quantify ~is_pos:true ~exists:false x Pos f
  | ExistsSet (x, f) -> quantify ~is_pos:false ~exists:true x Set f
  | ForallSet (x, f) -> quantify ~is_pos:false ~exists:false x Set f

let annotate ~sigma ~scope tree asg =
  let counter = ref (-1) in
  let mask_at id =
    List.fold_left
      (fun acc (t, (v, kind)) ->
        let marked =
          match kind with
          | Pos -> List.assoc v asg.pos = id
          | Set -> List.mem id (List.assoc v asg.sets)
        in
        if marked then acc lor (1 lsl t) else acc)
      0
      (List.mapi (fun t entry -> (t, entry)) scope)
  in
  let rec go t =
    incr counter;
    let id = !counter in
    let enc a =
      if a < 0 || a >= sigma then
        invalid_arg "Tree_formula.annotate: label out of range";
      a + (sigma * mask_at id)
    in
    match t with
    | Tree.Leaf a -> Tree.Leaf (enc a)
    | Tree.Unary (a, c) ->
        let a' = enc a in
        Tree.Unary (a', go c)
    | Tree.Binary (a, l, r) ->
        let a' = enc a in
        let l' = go l in
        let r' = go r in
        Tree.Binary (a', l', r')
  in
  go tree

let holds_compiled ~sigma ~scope ta tree asg =
  Ta.accepts ta (annotate ~sigma ~scope tree asg)
