(** MSO on labelled trees (arity ≤ 2), compiled to bottom-up tree
    automata — the Thatcher–Wright counterpart of {!Formula}, and the
    concept language of the paper's related work [19].

    Positions are preorder node ids of a {!Tree.t}. *)

type var = string

type t =
  | TTrue
  | TFalse
  | Label of int * var  (** node [x] carries the label *)
  | Child1 of var * var  (** [y] is the first child of [x] *)
  | Child2 of var * var  (** [y] is the second child of [x] *)
  | EqPos of var * var
  | Mem of var * var  (** node [x] belongs to set [X] *)
  | Not of t
  | And of t list
  | Or of t list
  | ExistsPos of var * t
  | ForallPos of var * t
  | ExistsSet of var * t
  | ForallSet of var * t

type kind = Pos | Set

val free : t -> (var * kind) list
(** Sorted free variables.
    @raise Invalid_argument on a kind clash. *)

type assignment = {
  pos : (var * int) list;
  sets : (var * int list) list;
}

val empty_assignment : assignment

val eval : tree:Tree.t -> assignment -> t -> bool
(** Direct reference semantics (set quantifiers enumerate all subsets:
    small trees only). *)

val compile : sigma:int -> scope:(var * kind) list -> t -> Tree_automaton.t
(** Compile to a tree automaton over the track alphabet
    [sigma * 2^|scope|] (label [a] with mark bitmask [m] encoded as
    [a + sigma * m]); accepts exactly the validly annotated trees
    satisfying the formula. *)

val annotate : sigma:int -> scope:(var * kind) list -> Tree.t -> assignment -> Tree.t
(** Encode marks into the labels. *)

val holds_compiled :
  sigma:int -> scope:(var * kind) list -> Tree_automaton.t -> Tree.t ->
  assignment -> bool
