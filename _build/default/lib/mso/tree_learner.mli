(** Learning MSO-definable hypotheses on trees (related work [19],
    Grienenberger–Ritzert ICDT 2019).

    The background structure is a tree; hypotheses classify nodes by MSO
    formulas with node parameters.  {!Node_oracle} is the preprocessing
    phase of [19] for single-variable concepts: one bottom-up pass
    computing the automaton state below every node and one top-down pass
    computing the acceptance behaviour of every node's context — after
    which classifying any node is O(1). *)

type entry = {
  name : string;
  phi : Tree_formula.t;
  xvars : Tree_formula.var list;
  yvars : Tree_formula.var list;
}

type result = {
  entry : entry;
  params : int array;  (** chosen node ids *)
  err : float;
  evaluations : int;
}

val solve :
  sigma:int ->
  tree:Tree.t ->
  catalogue:entry list ->
  (int array * bool) list ->
  result option
(** Exact ERM over catalogue × parameter node tuples (naive O(n)
    evaluation per combination). *)

val predict : sigma:int -> tree:Tree.t -> result -> int array -> bool

(** {1 The preprocessing oracle for φ(x)} *)

module Node_oracle : sig
  type t

  val make : sigma:int -> Tree_formula.t -> Tree.t -> t
  (** [make ~sigma phi tree] for a formula with exactly one free position
      variable.  Compiles the formula, then runs the two passes.
      @raise Invalid_argument if the formula is not unary. *)

  val holds : t -> int -> bool
  (** [holds o v]: does [phi(v)] hold?  O(1) after preprocessing. *)

  val states : t -> int
  (** Size of the compiled automaton. *)
end
