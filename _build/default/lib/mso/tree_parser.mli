(** Concrete syntax for MSO-on-trees formulas (mirror of {!Parser}).

    {v
      atom := ident '=' ident            (node equality)
            | 'child1' '(' ident ',' ident ')'
            | 'child2' '(' ident ',' ident ')'
            | ident 'in' ident           (set membership)
            | label '(' ident ')'        (label atom)
      quantifiers as in {!Parser}: exists/forall (nodes),
      existsset/forallset (sets).
    v}

    Labels are resolved against the [labels] list. *)

exception Parse_error of string

val parse : labels:string list -> string -> Tree_formula.t
(** @raise Parse_error on malformed input. *)

val parse_opt : labels:string list -> string -> Tree_formula.t option
