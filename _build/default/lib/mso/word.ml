type t = int array

let of_string ~alphabet s =
  Array.init (String.length s) (fun i ->
      match String.index_opt alphabet s.[i] with
      | Some a -> a
      | None ->
          invalid_arg
            (Printf.sprintf "Word.of_string: character %C not in alphabet %S"
               s.[i] alphabet))

let to_string ~alphabet w =
  String.init (Array.length w) (fun i ->
      if w.(i) < 0 || w.(i) >= String.length alphabet then
        invalid_arg "Word.to_string: letter out of alphabet range"
      else alphabet.[w.(i)])

let random ~seed ~sigma ~len =
  let st = Random.State.make [| seed; 0x77 |] in
  Array.init len (fun _ -> Random.State.int st sigma)

let to_graph ?letter_names ~sigma w =
  let n = Array.length w in
  let names =
    match letter_names with
    | Some names ->
        if List.length names <> sigma then
          invalid_arg "Word.to_graph: need one name per letter";
        names
    | None -> List.init sigma (fun a -> Printf.sprintf "L%d" a)
  in
  let classes =
    List.mapi
      (fun a name ->
        ( name,
          List.filter_map
            (fun i -> if w.(i) = a then Some i else None)
            (List.init n Fun.id) ))
      names
  in
  Cgraph.Graph.create ~n:(max n 1)
    ~edges:(List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))
    ~colors:(("First", if n = 0 then [] else [ 0 ]) :: classes)
