(** Words over a finite alphabet, and their coloured-graph encoding.

    A word is an [int array] of letters [0..sigma-1].  {!to_graph} turns
    it into the paper's setting — a coloured path with one colour per
    letter plus a [First] anchor — so the FO-over-graphs learners run on
    strings directly. *)

type t = int array

val of_string : alphabet:string -> string -> t
(** [of_string ~alphabet:"ab" "abba"] = [[|0;1;1;0|]].
    @raise Invalid_argument on characters outside the alphabet. *)

val to_string : alphabet:string -> t -> string

val random : seed:int -> sigma:int -> len:int -> t

val to_graph : ?letter_names:string list -> sigma:int -> t -> Cgraph.Graph.t
(** Path [0 - 1 - ... - n-1] with colour classes [L0, L1, ...] (or the
    given names) for the letters and colour [First] on position 0 (so
    that first-order formulas can recover the direction of the word). *)
