lib/splitter/game.ml: Array Bfs Cgraph Fun Graph List Ops Option
