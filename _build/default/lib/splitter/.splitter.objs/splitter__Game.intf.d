lib/splitter/game.mli: Cgraph Graph
