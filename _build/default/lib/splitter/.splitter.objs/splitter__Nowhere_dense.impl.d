lib/splitter/nowhere_dense.ml: Cgraph Game Graph Printf Strategy
