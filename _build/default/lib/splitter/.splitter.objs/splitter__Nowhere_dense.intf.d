lib/splitter/nowhere_dense.mli: Cgraph Game Graph
