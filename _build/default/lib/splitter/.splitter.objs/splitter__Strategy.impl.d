lib/splitter/strategy.ml: Array Bfs Cgraph Game Graph Hashtbl Invariants List Ops Option Random
