lib/splitter/strategy.mli: Cgraph Game Graph
