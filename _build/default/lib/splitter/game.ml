open Cgraph

exception Illegal_move of string

type state = {
  arena : Graph.t;
  to_orig : int array;
  radius : int;
  rounds_played : int;
}

let start g ~r =
  if r < 1 then invalid_arg "Game.start: need radius >= 1";
  {
    arena = g;
    to_orig = Array.init (Graph.order g) Fun.id;
    radius = r;
    rounds_played = 0;
  }

let radius st = st.radius
let arena st = st.arena
let rounds_played st = st.rounds_played

let to_original st v =
  if v < 0 || v >= Array.length st.to_orig then raise (Graph.Invalid_vertex v);
  st.to_orig.(v)

let is_won st = Graph.order st.arena = 0

let play ?radius' st ~connector ~splitter =
  if is_won st then raise (Illegal_move "the game is already over");
  let r' = Option.value radius' ~default:st.radius in
  if r' < 1 || r' > st.radius then
    raise (Illegal_move "Connector's radius must satisfy 1 <= r' <= r");
  if connector < 0 || connector >= Graph.order st.arena then
    raise (Illegal_move "Connector's vertex is not in the arena");
  let ball = Bfs.ball st.arena ~r:r' [ connector ] in
  if not (List.mem splitter ball) then
    raise (Illegal_move "Splitter's answer must lie in Connector's ball");
  let remaining = List.filter (fun v -> v <> splitter) ball in
  let emb = Ops.induced st.arena remaining in
  {
    arena = emb.Ops.graph;
    to_orig =
      Array.init (Graph.order emb.Ops.graph) (fun v ->
          st.to_orig.(emb.Ops.of_sub v));
    radius = st.radius;
    rounds_played = st.rounds_played + 1;
  }

type connector_strategy = Graph.t -> Graph.vertex
type splitter_strategy = Graph.t -> radius:int -> connector:Graph.vertex -> Graph.vertex

let play_out ?(max_rounds = 64) g ~r ~connector ~splitter =
  let rec go st =
    if is_won st then Some st.rounds_played
    else if st.rounds_played >= max_rounds then None
    else begin
      let v = connector st.arena in
      let w = splitter st.arena ~radius:st.radius ~connector:v in
      go (play st ~connector:v ~splitter:w)
    end
  in
  go (start g ~r)

let trace ?(max_rounds = 64) g ~r ~connector ~splitter =
  let rec go st acc =
    if is_won st || st.rounds_played >= max_rounds then List.rev acc
    else begin
      let v = connector st.arena in
      let w = splitter st.arena ~radius:st.radius ~connector:v in
      let v0 = to_original st v and w0 = to_original st w in
      let st' = play st ~connector:v ~splitter:w in
      go st' ((v0, w0, Graph.order st'.arena) :: acc)
    end
  in
  go (start g ~r) []
