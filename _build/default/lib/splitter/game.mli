(** The (r, s)-splitter game of Grohe, Kreutzer and Siebertz (Fact 4).

    Starting from [G_0 = G], in round [i+1] Connector picks a vertex
    [v ∈ V(G_i)] (in the modified game also a radius [r' <= r]), Splitter
    answers with [w ∈ N_{r'}^{G_i}(v)], and the game continues on
    [G_{i+1} = G_i\[N_{r'}^{G_i}(v) \ {w}\]].  Splitter wins when the arena
    becomes empty.  A class is nowhere dense iff for every [r] Splitter has
    a winning strategy in some bounded number [s] of rounds, uniformly over
    the class.

    The state tracks the embedding of the shrinking arena back into the
    original graph: Theorem 13 uses Splitter's answers, {e as vertices of
    the original graph}, as the learned query parameters. *)

open Cgraph

type state

exception Illegal_move of string

val start : Graph.t -> r:int -> state
(** Initial state with arena [G_0 = G]. *)

val radius : state -> int
(** The game radius [r]. *)

val arena : state -> Graph.t
(** The current arena [G_i] (vertices renumbered from 0). *)

val rounds_played : state -> int

val to_original : state -> Graph.vertex -> Graph.vertex
(** Map an arena vertex to the corresponding vertex of the original
    graph. *)

val is_won : state -> bool
(** Splitter has won: the arena is empty. *)

val play : ?radius':int -> state -> connector:Graph.vertex -> splitter:Graph.vertex -> state
(** One round; both vertices are arena vertices, [radius'] (default: the
    game radius) is Connector's radius in the modified game.
    @raise Illegal_move if the game is over, [radius' > r], or Splitter's
    answer lies outside [N_{radius'}(connector)]. *)

type connector_strategy = Graph.t -> Graph.vertex
(** Chooses Connector's vertex in the current arena (arena ids). *)

type splitter_strategy = Graph.t -> radius:int -> connector:Graph.vertex -> Graph.vertex
(** Chooses Splitter's answer within [N_radius(connector)] (arena ids). *)

val play_out :
  ?max_rounds:int ->
  Graph.t ->
  r:int ->
  connector:connector_strategy ->
  splitter:splitter_strategy ->
  int option
(** Run the game to completion; [Some rounds] if Splitter wins within
    [max_rounds] (default 64), [None] otherwise. *)

val trace :
  ?max_rounds:int ->
  Graph.t ->
  r:int ->
  connector:connector_strategy ->
  splitter:splitter_strategy ->
  (Graph.vertex * Graph.vertex * int) list
(** Like {!play_out} but returns per-round
    [(connector, splitter, arena size after)] in original-graph ids. *)
