open Cgraph

type t = {
  name : string;
  splitter : Game.splitter_strategy;
  s_bound : Graph.t -> r:int -> int;
}

let forests =
  {
    name = "forests";
    splitter = Strategy.best_heuristic;
    s_bound = (fun _g ~r -> (2 * r) + 2);
  }

let bounded_degree ~d =
  {
    name = Printf.sprintf "max-degree-%d" d;
    splitter = Strategy.best_heuristic;
    s_bound =
      (fun g ~r -> Strategy.estimate_s ~slack:2 g ~r ~splitter:Strategy.best_heuristic);
  }

let planar_like =
  {
    name = "planar-like";
    splitter = Strategy.best_heuristic;
    s_bound =
      (fun g ~r -> Strategy.estimate_s ~slack:2 g ~r ~splitter:Strategy.best_heuristic);
  }

let of_graph ?(slack = 2) name g =
  {
    name;
    splitter = Strategy.best_heuristic;
    s_bound = (fun g' ~r ->
      let target = if Graph.order g' = Graph.order g then g' else g in
      Strategy.estimate_s ~slack target ~r ~splitter:Strategy.best_heuristic);
  }
