(** Descriptors of (effectively) nowhere dense graph classes.

    An effectively nowhere dense class comes with a computable function
    [s(r)] bounding the number of rounds Splitter needs (Fact 4).  A
    descriptor bundles a Splitter strategy with such a bound; the
    Theorem 13 learner consumes descriptors.  For classes where no proven
    bound is wired in, {!of_graph} builds a descriptor empirically — the
    substitution recorded in DESIGN.md §5 (the learner verifies every game
    it plays, so an under-estimate surfaces as a reported failure, never a
    silent wrong answer). *)

open Cgraph

type t = {
  name : string;
  splitter : Game.splitter_strategy;
  s_bound : Graph.t -> r:int -> int;
      (** rounds budget for the (r, s)-splitter game on a member graph *)
}

val forests : t
(** Forests: Splitter wins the radius-[r] game in at most [2r + 2] rounds
    with the top-of-ball strategy (checked by the test suite on the random
    tree corpus; the GKS proof gives a bound depending only on [r]). *)

val bounded_degree : d:int -> t
(** Max-degree-[d] classes (uses the heuristic strategy with an empirical
    budget; balls have at most [1 + d^{r+1}] vertices). *)

val planar_like : t
(** Grids and other planar workloads (empirical budget). *)

val of_graph : ?slack:int -> string -> Graph.t -> t
(** Build a descriptor for "the class of graphs like this one" by
    measuring the heuristic strategy against the adversarial Connector
    battery on the given graph. *)
