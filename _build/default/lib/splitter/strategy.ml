open Cgraph

(* --------------------------------------------------------------- *)
(* Splitter strategies                                              *)
(* --------------------------------------------------------------- *)

let center _arena ~radius:_ ~connector = connector

let component_of arena v =
  List.find (fun comp -> List.mem v comp) (Invariants.components arena)

let top_of_ball arena ~radius ~connector =
  let ball = Bfs.ball arena ~r:radius [ connector ] in
  let root = List.hd (component_of arena connector) in
  let d = Bfs.distances arena root in
  List.fold_left
    (fun best v -> if d.(v) < d.(best) then v else best)
    (List.hd ball) ball

let min_max_component arena ~radius ~connector =
  let ball = Bfs.ball arena ~r:radius [ connector ] in
  let score w =
    let rest = List.filter (fun v -> v <> w) ball in
    let emb = Ops.induced arena rest in
    List.fold_left
      (fun acc c -> max acc (List.length c))
      0
      (Invariants.components emb.Ops.graph)
  in
  match ball with
  | [] -> connector
  | first :: _ ->
      let best = ref first and best_score = ref (score first) in
      List.iter
        (fun w ->
          let s = score w in
          if s < !best_score then begin
            best := w;
            best_score := s
          end)
        ball;
      !best

let best_heuristic arena ~radius ~connector =
  let ball = Bfs.ball arena ~r:radius [ connector ] in
  if List.length ball <= 160 then min_max_component arena ~radius ~connector
  else top_of_ball arena ~radius ~connector

(* --------------------------------------------------------------- *)
(* Connector strategies                                             *)
(* --------------------------------------------------------------- *)

let connector_random ~seed =
  let st = Random.State.make [| seed; 0xc0 |] in
  fun arena -> Random.State.int st (Graph.order arena)

let connector_max_ball ~r arena =
  let best = ref 0 and best_size = ref (-1) in
  List.iter
    (fun v ->
      let size = List.length (Bfs.ball arena ~r [ v ]) in
      if size > !best_size then begin
        best := v;
        best_size := size
      end)
    (Graph.vertices arena);
  !best

let connector_max_ecc arena =
  let best = ref 0 and best_ecc = ref (-1) in
  List.iter
    (fun v ->
      let e = Bfs.eccentricity arena v in
      if e > !best_ecc then begin
        best := v;
        best_ecc := e
      end)
    (Graph.vertices arena);
  !best

(* --------------------------------------------------------------- *)
(* Game values                                                      *)
(* --------------------------------------------------------------- *)

let minimax_rounds ?(cap = 6) g ~r =
  (* Arenas are identified by their sorted original-vertex sets. *)
  let memo : (int list * int, int option) Hashtbl.t = Hashtbl.create 1024 in
  let rec value vset budget =
    if vset = [] then Some 0
    else if budget = 0 then None
    else begin
      match Hashtbl.find_opt memo (vset, budget) with
      | Some cached -> cached
      | None ->
          let emb = Ops.induced g vset in
          let arena = emb.Ops.graph in
          let orig = Array.init (Graph.order arena) emb.Ops.of_sub in
          (* Connector maximises over moves; Splitter minimises. *)
          let worst = ref 0 in
          (try
             List.iter
               (fun v ->
                 let ball = Bfs.ball arena ~r [ v ] in
                 let best = ref None in
                 List.iter
                   (fun w ->
                     let next =
                       List.filter_map
                         (fun x -> if x = w then None else Some orig.(x))
                         ball
                       |> List.sort compare
                     in
                     match value next (budget - 1) with
                     | Some sub -> (
                         match !best with
                         | Some b when b <= sub -> ()
                         | _ -> best := Some sub)
                     | None -> ())
                   ball;
                 match !best with
                 | Some b -> worst := max !worst (1 + b)
                 | None ->
                     (* Splitter cannot win this branch within budget *)
                     raise Exit)
               (Graph.vertices arena)
           with Exit -> worst := budget + 1);
          let result = if !worst > budget then None else Some !worst in
          Hashtbl.replace memo (vset, budget) result;
          result
    end
  in
  value (Graph.vertices g) cap

let minimax_move ?(cap = 6) g ~r ~connector =
  (* value of the arena after answering with w, via minimax_rounds on the
     induced remainder; pick the answer minimising it *)
  let ball = Bfs.ball g ~r [ connector ] in
  let best = ref None in
  List.iter
    (fun w ->
      let rest = List.filter (fun v -> v <> w) ball in
      let emb = Ops.induced g rest in
      match minimax_rounds ~cap:(cap - 1) emb.Ops.graph ~r with
      | Some v -> (
          match !best with
          | Some (_, bv) when bv <= v -> ()
          | _ -> best := Some (w, v))
      | None -> ())
    ball;
  Option.map fst !best

let optimal ~cap arena ~radius ~connector =
  match minimax_move ~cap arena ~r:radius ~connector with
  | Some w -> w
  | None -> best_heuristic arena ~radius ~connector

let default_seeds = [ 1; 2; 3; 42 ]

let empirical_rounds ?(max_rounds = 64) ?(seeds = default_seeds) g ~r ~splitter =
  let adversaries =
    (fun () -> connector_max_ball ~r)
    :: (fun () -> connector_max_ecc)
    :: List.map (fun seed () -> connector_random ~seed) seeds
  in
  List.fold_left
    (fun acc make ->
      match acc with
      | None -> None
      | Some best -> (
          match Game.play_out ~max_rounds g ~r ~connector:(make ()) ~splitter with
          | Some rounds -> Some (max best rounds)
          | None -> None))
    (Some 0) adversaries

let estimate_s ?(slack = 1) g ~r ~splitter =
  match empirical_rounds g ~r ~splitter with
  | Some rounds -> max 1 (rounds + slack)
  | None -> max 1 (Graph.order g)
