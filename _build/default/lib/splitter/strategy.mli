(** Strategies for both players of the splitter game.

    Theorem 13 consumes a Splitter strategy as an oracle: any strategy
    that wins the [(R, s)]-game yields the learning guarantee with
    parameter-number [ℓ* · s].  We provide heuristic strategies (verified
    empirically by the game engine), an exact minimax solver for small
    arenas as ground truth, and adversarial Connector strategies for
    stress-testing (experiment E7). *)

open Cgraph

(** {1 Splitter strategies} *)

val center : Game.splitter_strategy
(** Answer with Connector's own vertex.  Optimal on stars; weak in
    general. *)

val top_of_ball : Game.splitter_strategy
(** Answer with the vertex of the ball closest to the arena's canonical
    root (the minimum-id vertex of Connector's component).  Mirrors the
    tree strategy from the proof of Fact 4 for forests. *)

val min_max_component : Game.splitter_strategy
(** Answer with the ball vertex whose removal minimises the largest
    remaining component of the ball — a strong (quadratic-cost)
    heuristic. *)

val best_heuristic : Game.splitter_strategy
(** {!min_max_component} on small balls, {!top_of_ball} on large ones. *)

(** {1 Connector strategies} *)

val connector_random : seed:int -> Game.connector_strategy
(** Uniform random vertex (deterministic per seed; draws advance an
    internal state). *)

val connector_max_ball : r:int -> Game.connector_strategy
(** Pick the vertex whose [r]-ball is largest (keeps the arena big). *)

val connector_max_ecc : Game.connector_strategy
(** Pick a vertex of maximum eccentricity. *)

(** {1 Game values} *)

val minimax_rounds : ?cap:int -> Graph.t -> r:int -> int option
(** Exact optimal number of rounds Splitter needs on this graph
    ([None] if above [cap], default 6).  Exponential: order <= ~12 only. *)

val minimax_move :
  ?cap:int -> Graph.t -> r:int -> connector:Graph.vertex -> Graph.vertex option
(** Splitter's {e optimal} answer to [connector] (the ball vertex
    minimising the remaining optimal round count), or [None] if no answer
    wins within [cap] (default 6) rounds.  Exponential — tiny arenas
    only. *)

val optimal : cap:int -> Game.splitter_strategy
(** The exact minimax strategy where it can decide within [cap] rounds,
    falling back to {!best_heuristic} beyond — ground truth for the
    ablation experiments. *)

val empirical_rounds :
  ?max_rounds:int -> ?seeds:int list -> Graph.t -> r:int ->
  splitter:Game.splitter_strategy -> int option
(** Max number of rounds the strategy needed against the adversarial
    Connector battery ({!connector_max_ball}, {!connector_max_ecc}, and
    random Connectors for each seed); [None] if it ever failed to win
    within [max_rounds] (default 64). *)

val estimate_s : ?slack:int -> Graph.t -> r:int -> splitter:Game.splitter_strategy -> int
(** Round budget for the Theorem 13 learner: {!empirical_rounds} plus
    [slack] (default 1); falls back to [order g] when the strategy lost —
    Splitter trivially wins in [order g] rounds only on graphs of radius
    [>= 1] balls covering everything, so treat that value as "give up". *)
