test/main.mli:
