test/test_counting.ml: Alcotest Array Cgraph Fo Folearn Gen Graph List Modelcheck QCheck QCheck_alcotest Random Test_formula
