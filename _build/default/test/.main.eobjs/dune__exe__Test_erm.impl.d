test/test_erm.ml: Alcotest Array Bfs Cgraph Fo Folearn Fun Gen Graph List Modelcheck Printf QCheck QCheck_alcotest Splitter
