test/test_eval.ml: Alcotest Cgraph Fo Gen Graph List Modelcheck QCheck QCheck_alcotest Random Test_formula
