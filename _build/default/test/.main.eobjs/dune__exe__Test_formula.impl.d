test/test_formula.ml: Alcotest Cgraph Fo List Modelcheck Option Printf QCheck QCheck_alcotest Random
