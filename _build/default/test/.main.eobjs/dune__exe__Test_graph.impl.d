test/test_graph.ml: Alcotest Array Bfs Cgraph Gen Graph Invariants List Ops Option QCheck QCheck_alcotest Random String Vitali
