test/test_hypothesis.ml: Alcotest Array Cgraph Fo Folearn Gen Graph List Modelcheck
