test/test_local.ml: Alcotest Array Bfs Cgraph Float Folearn Gen Graph Hashtbl List Modelcheck Printf QCheck QCheck_alcotest
