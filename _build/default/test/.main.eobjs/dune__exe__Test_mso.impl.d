test/test_mso.ml: Alcotest Array Cgraph Fo Format Fun List Modelcheck Mso Printf QCheck QCheck_alcotest Random
