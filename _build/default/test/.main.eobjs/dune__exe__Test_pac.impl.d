test/test_pac.ml: Alcotest Array Cgraph Float Folearn Fun Gen Graph Int Lazy List QCheck QCheck_alcotest
