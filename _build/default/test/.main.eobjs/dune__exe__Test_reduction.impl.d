test/test_reduction.ml: Alcotest Cgraph Fo Folearn Gen Graph List Modelcheck QCheck QCheck_alcotest Random Splitter Test_formula
