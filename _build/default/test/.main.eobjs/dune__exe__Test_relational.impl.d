test/test_relational.ml: Alcotest Array Cgraph Folearn Graph List Modelcheck Printf QCheck QCheck_alcotest Random
