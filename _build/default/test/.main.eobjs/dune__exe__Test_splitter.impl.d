test/test_splitter.ml: Alcotest Cgraph Gen Graph List Option QCheck QCheck_alcotest Splitter
