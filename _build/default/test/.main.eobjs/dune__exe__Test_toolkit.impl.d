test/test_toolkit.ml: Alcotest Bfs Cgraph Filename Fo Folearn Fun Gen Graph Io List Modelcheck QCheck QCheck_alcotest Random Sys
