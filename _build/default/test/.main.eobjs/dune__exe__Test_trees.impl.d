test/test_trees.ml: Alcotest Array Format List Mso Printf QCheck QCheck_alcotest
