test/test_types.ml: Alcotest Array Cgraph Fo Gen Graph List Modelcheck QCheck QCheck_alcotest
