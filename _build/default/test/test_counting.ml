(* Tests for the counting extension (FOC): syntax, evaluation, counting
   types, counting Hintikka formulas, counting ERM. *)

open Cgraph
module F = Fo.Formula
module E = Modelcheck.Eval
module C = Modelcheck.Ctypes
module T = Modelcheck.Types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_err = Alcotest.(check (float 1e-9))

let star7 = Gen.star 7
let p6 = Gen.path 6

(* ------------------------------------------------------------------ *)
(* Syntax                                                              *)
(* ------------------------------------------------------------------ *)

let test_count_ge_constructor () =
  check "threshold 0 is true" true (F.count_ge 0 "x" (F.edge "x" "y") = F.tru);
  check "false body collapses" true (F.count_ge 2 "x" F.fls = F.fls);
  check "negative rejected" true
    (try
       ignore (F.count_ge (-1) "x" F.tru);
       false
     with Invalid_argument _ -> true);
  check_int "counts as one quantifier" 1
    (F.quantifier_rank (F.count_ge 3 "y" (F.edge "x" "y")));
  Alcotest.(check (list string))
    "binds its variable" [ "x" ]
    (F.free_vars (F.count_ge 3 "y" (F.edge "x" "y")))

let test_parse_atleast () =
  check "parses" true
    (Fo.Parser.parse "atleast 3 y. E(x, y)"
    = F.count_ge 3 "y" (F.edge "x" "y"));
  check "round trip" true
    (Fo.Parser.parse (F.to_string (F.count_ge 2 "y" (F.color "Red" "y")))
    = F.count_ge 2 "y" (F.color "Red" "y"));
  check "threshold required" true
    (Fo.Parser.parse_opt "atleast y. E(x, y)" = None);
  check "non-numeric threshold rejected" true
    (Fo.Parser.parse_opt "atleast zz y. E(x, y)" = None)

let test_substitution_counting () =
  let f = F.count_ge 2 "y" (F.edge "x" "y") in
  (* substituting x := y must refresh the binder *)
  let g = F.substitute [ ("x", "y") ] f in
  Alcotest.(check (list string)) "free var is y" [ "y" ] (F.free_vars g);
  match g with
  | F.CountGe (2, b, _) -> check "binder refreshed" true (b <> "y")
  | _ -> Alcotest.fail "expected a counting quantifier"

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let degree_ge t = F.count_ge t "y" (F.edge "x" "y")

let test_eval_counting () =
  (* star centre has degree 6, leaves degree 1 *)
  check "centre deg >= 6" true (E.holds star7 [ ("x", 0) ] (degree_ge 6));
  check "centre deg not >= 7" false (E.holds star7 [ ("x", 0) ] (degree_ge 7));
  check "leaf deg >= 1" true (E.holds star7 [ ("x", 3) ] (degree_ge 1));
  check "leaf deg not >= 2" false (E.holds star7 [ ("x", 3) ] (degree_ge 2));
  (* threshold 1 coincides with exists *)
  List.iter
    (fun v ->
      check "atleast 1 = exists" true
        (E.holds p6 [ ("x", v) ] (degree_ge 1)
        = E.holds p6 [ ("x", v) ] (F.exists "y" (F.edge "x" "y"))))
    (Graph.vertices p6)

let test_eval_counting_nested () =
  (* "at least 2 neighbours that are themselves of degree >= 2" *)
  let f =
    F.count_ge 2 "y"
      (F.and_ [ F.edge "x" "y"; F.count_ge 2 "z" (F.edge "y" "z") ])
  in
  check "path middle" true (E.holds p6 [ ("x", 2) ] f);
  check "path near-end" false (E.holds p6 [ ("x", 1) ] f)

(* ------------------------------------------------------------------ *)
(* Counting types                                                      *)
(* ------------------------------------------------------------------ *)

let test_ctp_distinguishes_degree () =
  (* plain rank-1 types merge all P6 vertices; counting rank-1 types with
     tmax 2 split endpoints (1 edge-extension) from middles (2) *)
  check_int "plain rank-1: one class" 1 (T.count_types p6 ~q:1 ~k:1);
  check_int "counting rank-1 tmax 2: two classes" 2
    (C.count_types p6 ~q:1 ~tmax:2 ~k:1)

let test_ctp_tmax1_equals_plain () =
  (* with thresholds capped at 1, counting types = plain types *)
  List.iter
    (fun (g : Graph.t) ->
      let ctx = C.make_ctx g and tctx = T.make_ctx g in
      let tuples = Graph.Tuple.all ~n:(Graph.order g) ~k:1 in
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              let c_eq =
                C.equal (C.ctp ctx ~q:1 ~tmax:1 u) (C.ctp ctx ~q:1 ~tmax:1 v)
              in
              let t_eq =
                T.equal (T.tp tctx ~q:1 u) (T.tp tctx ~q:1 v)
              in
              if c_eq <> t_eq then
                Alcotest.failf "tmax=1 mismatch at %d vs %d" u.(0) v.(0))
            tuples)
        tuples)
    [ p6; star7; Gen.cycle 5 ]

let test_ctp_refines_with_tmax () =
  (* larger caps can only refine the partition *)
  let g = Gen.caterpillar ~seed:3 ~spine:6 ~legs:3 in
  let classes tmax = C.count_types g ~q:1 ~tmax ~k:1 in
  check "tmax 2 >= tmax 1" true (classes 2 >= classes 1);
  check "tmax 4 >= tmax 2" true (classes 4 >= classes 2)

let test_ctp_rank_arity () =
  let t = C.ctp (C.make_ctx p6) ~q:2 ~tmax:2 [| 0; 3 |] in
  check_int "rank" 2 (C.rank t);
  check_int "arity" 2 (C.arity t)

let test_cltp_local () =
  let ctx = C.make_ctx p6 in
  (* at radius 0 everything unicoloured merges *)
  check "radius 0 merges" true
    (C.equal
       (C.cltp ctx ~q:1 ~tmax:2 ~r:0 [| 0 |])
       (C.cltp ctx ~q:1 ~tmax:2 ~r:0 [| 3 |]));
  (* at radius 1, endpoint vs middle split by neighbour count *)
  check "radius 1 splits" false
    (C.equal
       (C.cltp ctx ~q:1 ~tmax:2 ~r:1 [| 0 |])
       (C.cltp ctx ~q:1 ~tmax:2 ~r:1 [| 3 |]))

(* ------------------------------------------------------------------ *)
(* Counting Hintikka                                                   *)
(* ------------------------------------------------------------------ *)

let chintikka_defines ~q ~tmax g =
  let ctx = C.make_ctx g in
  let colors = Graph.color_names g in
  let tuples = Graph.Tuple.all ~n:(Graph.order g) ~k:1 in
  List.for_all
    (fun u ->
      let theta = C.ctp ctx ~q ~tmax u in
      let f = C.hintikka ~colors ~tmax theta in
      List.for_all
        (fun v ->
          E.holds_tuple g ~vars:[ "x1" ] v f
          = C.equal (C.ctp ctx ~q ~tmax v) theta)
        tuples)
    tuples

let test_chintikka () =
  check "P6 q=1 tmax=2" true (chintikka_defines ~q:1 ~tmax:2 p6);
  check "star q=1 tmax=3" true (chintikka_defines ~q:1 ~tmax:3 star7);
  check "coloured q=1 tmax=2" true
    (chintikka_defines ~q:1 ~tmax:2
       (Graph.with_colors p6 [ ("Red", [ 0; 2 ]) ]))

let test_chintikka_cross_graph () =
  (* degree profile transfers: C6 vertex formula holds in C9 (same
     counting rank-1 type: exactly 2 edge-extensions) but not at a path
     endpoint *)
  let f =
    C.hintikka ~colors:[] ~tmax:2 (C.ctp (C.make_ctx (Gen.cycle 6)) ~q:1 ~tmax:2 [| 0 |])
  in
  check "holds in C9" true (E.holds_tuple (Gen.cycle 9) ~vars:[ "x1" ] [| 0 |] f);
  check "fails at P6 endpoint" false (E.holds_tuple p6 ~vars:[ "x1" ] [| 0 |] f)

(* ------------------------------------------------------------------ *)
(* Counting ERM                                                        *)
(* ------------------------------------------------------------------ *)

module Ec = Folearn.Erm_counting
module Brute = Folearn.Erm_brute
module Sam = Folearn.Sample
module Hyp = Folearn.Hypothesis

let test_counting_erm_degree_target () =
  (* target "degree >= 3": inexpressible at plain rank 1, exact for
     counting rank 1 with tmax 3 *)
  let g = Gen.caterpillar ~seed:9 ~spine:8 ~legs:3 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.degree g v.(0) >= 3)
      (Sam.all_tuples g ~k:1)
  in
  let plain = Brute.solve g ~k:1 ~ell:0 ~q:1 lam in
  let counting = Ec.solve g ~k:1 ~ell:0 ~q:1 ~tmax:3 lam in
  check "plain rank 1 must err" true (plain.Brute.err > 0.0);
  check_err "counting rank 1 is exact" 0.0 counting.Ec.err

let test_counting_erm_witness_formula () =
  let g = star7 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.degree g v.(0) >= 2)
      (Sam.all_tuples g ~k:1)
  in
  let r = Ec.solve g ~k:1 ~ell:0 ~q:1 ~tmax:2 lam in
  check_err "exact" 0.0 r.Ec.err;
  let f = Hyp.formula r.Ec.hypothesis in
  List.iter
    (fun v ->
      check "witness formula agrees" true
        (E.holds_tuple g ~vars:[ "x1" ] v f = Hyp.predict r.Ec.hypothesis v))
    (Sam.all_tuples g ~k:1)

let test_counting_erm_with_params () =
  (* "at least 2 common neighbours with the hidden w" on a dense-ish
     graph; needs a parameter and counting *)
  let g = Gen.gnp ~seed:17 ~n:12 ~p:0.5 in
  let w = 4 in
  let common u =
    Array.fold_left
      (fun acc y -> if Graph.mem_edge g y w then acc + 1 else acc)
      0 (Graph.neighbors g u)
  in
  let lam =
    Sam.label_with g ~target:(fun v -> common v.(0) >= 2)
      (Sam.all_tuples g ~k:1)
  in
  let r = Ec.solve g ~k:1 ~ell:1 ~q:1 ~tmax:2 lam in
  check_err "exact with one parameter" 0.0 r.Ec.err

let test_counting_never_worse () =
  (* the counting class contains the plain class at the same rank *)
  List.iter
    (fun seed ->
      let g =
        Gen.colored ~seed ~colors:[ "Red" ] (Gen.random_tree ~seed 10)
      in
      let lam =
        Sam.flip_noise ~seed ~p:0.2
          (Sam.label_with g
             ~target:(fun v -> Graph.has_color g "Red" v.(0))
             (Sam.all_tuples g ~k:1))
      in
      let plain = Brute.solve g ~k:1 ~ell:0 ~q:1 lam in
      let counting = Ec.solve g ~k:1 ~ell:0 ~q:1 ~tmax:2 lam in
      if counting.Ec.err > plain.Brute.err +. 1e-9 then
        Alcotest.failf "counting worse than plain on seed %d" seed)
    [ 1; 2; 3; 4 ]

let test_counting_guards () =
  check "tmax 0 rejected" true
    (try
       ignore (Ec.solve p6 ~k:1 ~ell:0 ~q:1 ~tmax:0 []);
       false
     with Invalid_argument _ -> true)

let counting_nnf_semantics =
  QCheck.Test.make ~name:"nnf preserves counting semantics" ~count:60
    QCheck.(int_range 0 5000)
    (fun seed ->
      let st = Random.State.make [| seed; 0xcc |] in
      let t = 1 + Random.State.int st 3 in
      let base = Test_formula.gen_formula [ "x"; "y" ] 2 st in
      let f = F.not_ (F.count_ge t "y" base) in
      let g =
        Gen.colored ~seed ~colors:[ "Red"; "Blue" ]
          (Gen.gnp ~seed:(seed + 2) ~n:6 ~p:0.4)
      in
      List.for_all
        (fun v ->
          E.holds g [ ("x", v) ] f = E.holds g [ ("x", v) ] (F.nnf f))
        [ 0; 2; 5 ])

let suite =
  [
    Alcotest.test_case "count_ge constructor" `Quick test_count_ge_constructor;
    Alcotest.test_case "parse atleast" `Quick test_parse_atleast;
    Alcotest.test_case "substitution" `Quick test_substitution_counting;
    Alcotest.test_case "eval counting" `Quick test_eval_counting;
    Alcotest.test_case "eval nested counting" `Quick test_eval_counting_nested;
    Alcotest.test_case "ctp distinguishes degree" `Quick
      test_ctp_distinguishes_degree;
    Alcotest.test_case "ctp tmax=1 = plain types" `Quick test_ctp_tmax1_equals_plain;
    Alcotest.test_case "ctp refines with tmax" `Quick test_ctp_refines_with_tmax;
    Alcotest.test_case "ctp rank arity" `Quick test_ctp_rank_arity;
    Alcotest.test_case "cltp local" `Quick test_cltp_local;
    Alcotest.test_case "counting Hintikka" `Quick test_chintikka;
    Alcotest.test_case "counting Hintikka cross-graph" `Quick
      test_chintikka_cross_graph;
    Alcotest.test_case "counting ERM degree target" `Quick
      test_counting_erm_degree_target;
    Alcotest.test_case "counting ERM witness" `Quick
      test_counting_erm_witness_formula;
    Alcotest.test_case "counting ERM with params" `Quick
      test_counting_erm_with_params;
    Alcotest.test_case "counting never worse" `Quick test_counting_never_worse;
    Alcotest.test_case "counting guards" `Quick test_counting_guards;
    QCheck_alcotest.to_alcotest counting_nnf_semantics;
  ]
