(* Tests for the three ERM solvers:
   - Erm_brute (Prop 11): exact optimality,
   - Erm_realizable (Prop 12): consistent parameter discovery for k = 1,
   - Erm_nd (Theorem 13): the (L,Q) guarantee err <= eps* + eps. *)

open Cgraph
module F = Fo.Formula
module Hyp = Folearn.Hypothesis
module Sam = Folearn.Sample
module Brute = Folearn.Erm_brute
module Real = Folearn.Erm_realizable
module Nd = Folearn.Erm_nd

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_err = Alcotest.(check (float 1e-9))

let coloured_path n =
  Graph.with_colors (Gen.path n)
    [
      ("Red", List.filter (fun v -> v mod 3 = 0) (List.init n Fun.id));
      ("Blue", List.filter (fun v -> v mod 4 = 1) (List.init n Fun.id));
    ]

let coloured_tree ~seed n =
  Gen.colored ~seed ~colors:[ "Red"; "Blue" ] (Gen.random_tree ~seed n)

(* ------------------------------------------------------------------ *)
(* Erm_brute                                                           *)
(* ------------------------------------------------------------------ *)

let test_brute_realisable_parameterless () =
  let g = coloured_path 8 in
  let target = Fo.Parser.parse "exists z. E(x1, z) /\\ Red(z)" in
  let lam =
    Sam.label_with_query g ~formula:target ~xvars:[ "x1" ] (Sam.all_tuples g ~k:1)
  in
  let r = Brute.solve g ~k:1 ~ell:0 ~q:1 lam in
  check_err "zero training error" 0.0 r.Brute.err;
  check_err "hypothesis agrees" 0.0 (Hyp.training_error r.Brute.hypothesis lam);
  check_int "tried exactly one parameter tuple" 1 r.Brute.params_tried

let test_brute_needs_parameter () =
  (* target "adjacent to w" for a hidden w: not expressible without
     parameters at rank 0, perfectly expressible with ell = 1 *)
  let g = Gen.path 7 in
  let w = 3 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.mem_edge g v.(0) w)
      (Sam.all_tuples g ~k:1)
  in
  let without = Brute.solve g ~k:1 ~ell:0 ~q:0 lam in
  let with_param = Brute.solve g ~k:1 ~ell:1 ~q:0 lam in
  check "parameterless must err" true (without.Brute.err > 0.0);
  check_err "parameter fixes it" 0.0 with_param.Brute.err;
  check_int "n^1 candidates" 7 with_param.Brute.params_tried

let test_brute_optimality_vs_all_hypotheses () =
  (* exhaustive check on a tiny instance: no (type-set, params) hypothesis
     beats the solver *)
  let g = coloured_path 5 in
  let lam =
    [ ([| 0 |], true); ([| 1 |], false); ([| 2 |], true);
      ([| 3 |], false); ([| 4 |], true) ]
  in
  let best = Brute.solve g ~k:1 ~ell:1 ~q:1 lam in
  let ctx = Modelcheck.Types.make_ctx g in
  (* all hypotheses: for each params w, each subset of realised types *)
  let beat = ref false in
  List.iter
    (fun w ->
      let params = [| w |] in
      let types =
        List.sort_uniq Modelcheck.Types.compare
          (List.map
             (fun (v, _) ->
               Modelcheck.Types.tp ctx ~q:1 (Graph.Tuple.append v params))
             lam)
      in
      let rec subsets = function
        | [] -> [ [] ]
        | t :: rest ->
            let s = subsets rest in
            s @ List.map (fun u -> t :: u) s
      in
      List.iter
        (fun chosen ->
          let h = Hyp.of_types g ~k:1 ~q:1 ~types:chosen ~params in
          if Hyp.training_error h lam < best.Brute.err -. 1e-9 then beat := true)
        (subsets types))
    (Graph.vertices g);
  check "no hypothesis beats the solver" false !beat

let test_brute_agnostic_contradiction () =
  (* the same tuple labelled both ways: best possible error is 1/2 *)
  let g = Gen.path 3 in
  let lam = [ ([| 1 |], true); ([| 1 |], false) ] in
  let r = Brute.solve g ~k:1 ~ell:1 ~q:1 lam in
  check_err "Bayes error 1/2" 0.5 r.Brute.err

let test_brute_pairs () =
  (* k = 2: learn "x1 and x2 are adjacent" *)
  let g = Gen.cycle 5 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.mem_edge g v.(0) v.(1))
      (Sam.all_tuples g ~k:2)
  in
  let r = Brute.solve g ~k:2 ~ell:0 ~q:0 lam in
  check_err "adjacency is a rank-0 pair property" 0.0 r.Brute.err

let test_brute_empty_sample () =
  let g = Gen.path 3 in
  let r = Brute.solve g ~k:1 ~ell:0 ~q:0 [] in
  check_err "empty sample, zero error" 0.0 r.Brute.err

let test_brute_witness_formula_faithful () =
  (* the returned formula, evaluated from scratch, reproduces the
     classifier *)
  let g = coloured_path 6 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.has_color g "Red" v.(0))
      (Sam.all_tuples g ~k:1)
  in
  let r = Brute.solve g ~k:1 ~ell:0 ~q:1 lam in
  let f = Hyp.formula r.Brute.hypothesis in
  List.iter
    (fun v ->
      check "formula = predictor" true
        (Modelcheck.Eval.holds_tuple g ~vars:[ "x1" ] v f
        = Hyp.predict r.Brute.hypothesis v))
    (Sam.all_tuples g ~k:1)

let brute_beats_any_query =
  QCheck.Test.make
    ~name:"erm_brute error <= error of every concrete query (random)"
    ~count:20
    QCheck.(int_range 0 500)
    (fun seed ->
      let g = coloured_tree ~seed:(seed + 21) 7 in
      let lam =
        Sam.flip_noise ~seed ~p:0.2
          (Sam.label_with g
             ~target:(fun v -> Graph.has_color g "Red" v.(0))
             (Sam.all_tuples g ~k:1))
      in
      let r = Brute.solve g ~k:1 ~ell:0 ~q:1 lam in
      let queries =
        [
          "Red(x1)";
          "Blue(x1)";
          "exists z. E(x1, z) /\\ Red(z)";
          "forall z. E(x1, z) -> Blue(z)";
          "true";
          "false";
        ]
      in
      List.for_all
        (fun src ->
          let f = Fo.Parser.parse src in
          let h = Hyp.of_formula g ~k:1 ~formula:f ~params:[||] in
          r.Brute.err <= Hyp.training_error h lam +. 1e-9)
        queries)

(* ------------------------------------------------------------------ *)
(* Erm_realizable (Algorithm 2)                                        *)
(* ------------------------------------------------------------------ *)

let ball_query = "exists z. E(x, z) /\\ E(z, y1)"
(* x within distance 2 of the parameter, via a midpoint *)

let test_realizable_finds_parameter () =
  let g = Gen.path 9 in
  let target = Fo.Parser.parse ball_query in
  (* hidden parameter w = 4 *)
  let lam =
    Sam.label_with g
      ~target:(fun v ->
        Modelcheck.Eval.holds g [ ("x", v.(0)); ("y1", 4) ] target)
      (Sam.all_tuples g ~k:1)
  in
  match Real.solve g ~ell:1 ~catalogue:[ target ] lam with
  | None -> Alcotest.fail "should find a consistent parameter"
  | Some r ->
      check_err "consistent" 0.0 (Hyp.training_error r.Real.hypothesis lam);
      check "called the model checker" true (r.Real.mc_calls >= 1)

let test_realizable_skips_bad_formula () =
  let g = coloured_path 7 in
  let bad = Fo.Parser.parse "Blue(x)" in
  let good = Fo.Parser.parse "Red(x)" in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.has_color g "Red" v.(0))
      (Sam.all_tuples g ~k:1)
  in
  match Real.solve g ~ell:0 ~catalogue:[ bad; good ] lam with
  | None -> Alcotest.fail "second formula is consistent"
  | Some r ->
      check_int "tried two formulas" 2 r.Real.formulas_tried;
      check_err "consistent" 0.0 (Hyp.training_error r.Real.hypothesis lam)

let test_realizable_rejects () =
  let g = Gen.path 4 in
  (* contradictory labels: no hypothesis is consistent *)
  let lam = [ ([| 0 |], true); ([| 0 |], false) ] in
  check "reject" true
    (Real.solve g ~ell:1 ~catalogue:[ Fo.Parser.parse "E(x, y1)" ] lam = None)

let test_realizable_two_parameters () =
  let g = Gen.path 10 in
  let target = Fo.Parser.parse "E(x, y1) \\/ E(x, y2)" in
  let w1 = 2 and w2 = 7 in
  let lam =
    Sam.label_with g
      ~target:(fun v ->
        Graph.mem_edge g v.(0) w1 || Graph.mem_edge g v.(0) w2)
      (Sam.all_tuples g ~k:1)
  in
  match Real.solve g ~ell:2 ~catalogue:[ target ] lam with
  | None -> Alcotest.fail "two-parameter target is realisable"
  | Some r ->
      check_err "consistent" 0.0 (Hyp.training_error r.Real.hypothesis lam)

let test_realizable_guards () =
  let g = Gen.path 4 in
  check "stray variable" true
    (try
       ignore
         (Real.solve g ~ell:0 ~catalogue:[ Fo.Parser.parse "E(x, zz)" ]
            [ ([| 0 |], true) ]);
       false
     with Invalid_argument _ -> true);
  check "arity guard" true
    (try
       ignore (Real.solve g ~ell:0 ~catalogue:[ F.tru ] [ ([| 0; 1 |], true) ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Catalogue generation for Algorithm 2                                *)
(* ------------------------------------------------------------------ *)

module Cat = Folearn.Catalogue

let test_catalogue_shapes () =
  let g = Graph.with_colors (Gen.path 6) [ ("Red", [ 2 ]) ] in
  let singles = Cat.positive_types_only g ~ell:0 ~q:1 ~r:1 in
  check "one formula per realised class" true (List.length singles >= 2);
  List.iter
    (fun f ->
      check "free variable is x" true (Fo.Formula.free_vars f = [ "x" ]))
    singles;
  let cat = Cat.of_local_types g ~ell:1 ~q:0 ~r:1 ~max_size:40 () in
  check "capped" true (List.length cat <= 40);
  List.iter
    (fun f ->
      check "free vars among x,y1" true
        (List.for_all (fun v -> List.mem v [ "x"; "y1" ]) (Fo.Formula.free_vars f)))
    cat

let test_catalogue_singletons_partition () =
  (* the singleton catalogue formulas are mutually exclusive and jointly
     exhaustive over vertices *)
  let g = Graph.with_colors (Gen.path 6) [ ("Red", [ 2 ]) ] in
  let singles = Cat.positive_types_only g ~ell:0 ~q:1 ~r:1 in
  List.iter
    (fun v ->
      let hits =
        List.length
          (List.filter
             (fun f -> Modelcheck.Eval.holds g [ ("x", v) ] f)
             singles)
      in
      check_int (Printf.sprintf "exactly one class at %d" v) 1 hits)
    (Graph.vertices g)

let test_catalogue_drives_algorithm2 () =
  (* fully automatic Prop 12: realisable one-parameter target, catalogue
     generated from the graph's own realised types *)
  let g = Graph.with_colors (Gen.path 8) [ ("Red", [ 2; 5 ]) ] in
  let w = 5 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.mem_edge g v.(0) w || v.(0) = w)
      (Sam.all_tuples g ~k:1)
  in
  let catalogue = Cat.of_local_types g ~ell:1 ~q:1 ~r:1 () in
  match Real.solve g ~ell:1 ~catalogue lam with
  | None -> Alcotest.fail "auto-catalogue should contain a consistent formula"
  | Some r ->
      check_err "consistent" 0.0 (Hyp.training_error r.Real.hypothesis lam)

(* ------------------------------------------------------------------ *)
(* Erm_nd (Theorem 13)                                                 *)
(* ------------------------------------------------------------------ *)

let nd_config ?(epsilon = 0.125) ?(ell_star = 1) ?(q_star = 1) ?(radius = 1) k =
  Nd.default_config ~epsilon ~radius ~branch_width:12 ~k ~ell_star ~q_star
    Splitter.Nowhere_dense.forests

let test_nd_no_conflicts_zero_rounds () =
  (* colour-determined labels: no conflicts, no parameters needed *)
  let g = coloured_path 8 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.has_color g "Red" v.(0))
      (Sam.all_tuples g ~k:1)
  in
  let rep = Nd.solve (nd_config 1) g lam in
  check_err "err 0" 0.0 rep.Nd.err;
  check_int "no parameters used" 0 rep.Nd.ell_used

let test_nd_learns_parameterised_target () =
  (* "adjacent to w" needs a parameter; conflicts force a splitter round *)
  let g = Gen.path 11 in
  let w = 5 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.mem_edge g v.(0) w)
      (Sam.all_tuples g ~k:1)
  in
  let rep = Nd.solve (nd_config 1) g lam in
  let eps_star = (Brute.solve g ~k:1 ~ell:1 ~q:1 lam).Brute.err in
  check_err "comparison class is realisable" 0.0 eps_star;
  check "theorem 13 guarantee" true (rep.Nd.err <= eps_star +. 0.125 +. 1e-9);
  check "used parameters" true (rep.Nd.ell_used >= 1)

let test_nd_conflicts_detected () =
  let g = Gen.path 11 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.mem_edge g v.(0) 5)
      (Sam.all_tuples g ~k:1)
  in
  let cs = Nd.conflicts g ~q:1 ~r:1 lam in
  check "conflicts exist" true (cs <> []);
  (* each conflict pair has equal local types *)
  let ctx = Modelcheck.Types.make_ctx g in
  List.iter
    (fun (p, n) ->
      check "equal ltp" true
        (Modelcheck.Types.equal
           (Modelcheck.Types.ltp ctx ~q:1 ~r:1 p)
           (Modelcheck.Types.ltp ctx ~q:1 ~r:1 n)))
    cs

let test_nd_guarantee_on_trees () =
  (* the headline property: err <= eps* + eps across random trees with a
     hidden one-parameter target *)
  List.iter
    (fun seed ->
      let g = Gen.random_tree ~seed 14 in
      let w = seed mod 14 in
      let lam =
        Sam.label_with g
          ~target:(fun v -> v.(0) = w || Graph.mem_edge g v.(0) w)
          (Sam.all_tuples g ~k:1)
      in
      let rep = Nd.solve (nd_config 1) g lam in
      let eps_star = (Brute.solve g ~k:1 ~ell:1 ~q:1 lam).Brute.err in
      if rep.Nd.err > eps_star +. 0.125 +. 1e-9 then
        Alcotest.failf "guarantee violated on seed %d: %.3f > %.3f + 0.125"
          seed rep.Nd.err eps_star)
    [ 1; 2; 3; 4; 5 ]

let test_nd_noisy_labels () =
  (* agnostic setting: noisy labels; guarantee is relative to eps* *)
  let g = Gen.random_tree ~seed:11 12 in
  let lam =
    Sam.flip_noise ~seed:3 ~p:0.15
      (Sam.label_with g ~target:(fun v -> Graph.mem_edge g v.(0) 4)
         (Sam.all_tuples g ~k:1))
  in
  let rep = Nd.solve (nd_config 1) g lam in
  let eps_star = (Brute.solve g ~k:1 ~ell:1 ~q:1 lam).Brute.err in
  check "agnostic guarantee" true (rep.Nd.err <= eps_star +. 0.125 +. 1e-9)

let test_nd_pairs () =
  (* k = 2 on a grid: learn "both endpoints near the hidden centre" *)
  let g = Gen.grid 4 3 in
  let cfg =
    Nd.default_config ~epsilon:0.25 ~radius:1 ~branch_width:12 ~k:2 ~ell_star:1
      ~q_star:1 Splitter.Nowhere_dense.planar_like
  in
  let w = 5 in
  let near v = Bfs.dist g v w <= 1 in
  let lam =
    Sam.label_with g ~target:(fun v -> near v.(0) && near v.(1))
      (Sam.random_tuples ~seed:4 g ~k:2 ~m:60)
  in
  let rep = Nd.solve cfg g lam in
  let eps_star = (Brute.solve g ~k:2 ~ell:1 ~q:1 lam).Brute.err in
  check "k=2 guarantee" true (rep.Nd.err <= eps_star +. 0.25 +. 1e-9)

let test_nd_rejects_bad_epsilon () =
  let g = Gen.path 3 in
  check "epsilon 0 rejected" true
    (try
       ignore (Nd.solve (nd_config ~epsilon:0.0 1) g []);
       false
     with Invalid_argument _ -> true)

let test_nd_hypothesis_formula_faithful () =
  let g = Gen.path 9 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.mem_edge g v.(0) 4)
      (Sam.all_tuples g ~k:1)
  in
  let rep = Nd.solve (nd_config 1) g lam in
  let f = Hyp.formula rep.Nd.hypothesis in
  let vars =
    Hyp.xvars 1 @ Hyp.yvars (Hyp.ell rep.Nd.hypothesis)
  in
  List.iter
    (fun v ->
      check "materialised formula agrees" true
        (Modelcheck.Eval.holds_tuple g ~vars
           (Graph.Tuple.append v (Hyp.params rep.Nd.hypothesis))
           f
        = Hyp.predict rep.Nd.hypothesis v))
    (Sam.all_tuples g ~k:1)

let test_nd_two_parameters () =
  (* ell* = 2: target is the union of two hidden balls *)
  List.iter
    (fun seed ->
      let g = Gen.random_tree ~seed 16 in
      let w1 = seed mod 16 and w2 = ((seed * 7) + 3) mod 16 in
      let lam =
        Sam.label_with g
          ~target:(fun v ->
            Bfs.dist g v.(0) w1 <= 1 || Bfs.dist g v.(0) w2 <= 1)
          (Sam.all_tuples g ~k:1)
      in
      let cfg =
        Nd.default_config ~epsilon:0.2 ~radius:1 ~branch_width:16 ~k:1
          ~ell_star:2 ~q_star:1 Splitter.Nowhere_dense.forests
      in
      let rep = Nd.solve cfg g lam in
      let eps_star = (Brute.solve g ~k:1 ~ell:2 ~q:1 lam).Brute.err in
      if rep.Nd.err > eps_star +. 0.2 +. 1e-9 then
        Alcotest.failf "two-parameter guarantee violated on seed %d" seed)
    [ 1; 2; 3; 6 ]

let test_nd_radius2_rank0 () =
  (* q* = 0 with a wider locality radius and colours *)
  List.iter
    (fun seed ->
      let g = Gen.colored ~seed ~colors:[ "Red" ] (Gen.random_tree ~seed 14) in
      let w = seed mod 14 in
      let lam =
        Sam.label_with g
          ~target:(fun v ->
            Bfs.dist g v.(0) w <= 2 && Graph.has_color g "Red" v.(0))
          (Sam.all_tuples g ~k:1)
      in
      let cfg =
        Nd.default_config ~epsilon:0.2 ~radius:2 ~branch_width:16 ~k:1
          ~ell_star:1 ~q_star:0 Splitter.Nowhere_dense.forests
      in
      let rep = Nd.solve cfg g lam in
      let eps_star = (Brute.solve g ~k:1 ~ell:1 ~q:0 lam).Brute.err in
      if rep.Nd.err > eps_star +. 0.2 +. 1e-9 then
        Alcotest.failf "radius-2 guarantee violated on seed %d" seed)
    [ 1; 2; 3; 5 ]

let test_nd_counting_mode () =
  (* the FOC variant (conclusion §6): counting local types fit a degree
     target at rank 1 where plain local types cannot *)
  List.iter
    (fun seed ->
      let g = Gen.caterpillar ~seed ~spine:10 ~legs:3 in
      let lam =
        Sam.label_with g ~target:(fun v -> Graph.degree g v.(0) >= 3)
          (Sam.all_tuples g ~k:1)
      in
      let cls = Splitter.Nowhere_dense.forests in
      let plain =
        Nd.solve
          (Nd.default_config ~epsilon:0.125 ~radius:1 ~branch_width:8 ~k:1
             ~ell_star:0 ~q_star:1 cls)
          g lam
      in
      let counting =
        Nd.solve
          (Nd.default_config ~epsilon:0.125 ~radius:1 ~branch_width:8
             ~counting:3 ~k:1 ~ell_star:0 ~q_star:1 cls)
          g lam
      in
      check "plain rank-1 local types must err" true (plain.Nd.err > 0.0);
      check_err
        (Printf.sprintf "counting exact on seed %d" seed)
        0.0 counting.Nd.err;
      (* the counting hypothesis round-trips through its witness formula *)
      let h = counting.Nd.hypothesis in
      let f = Hyp.formula h in
      let vars = Hyp.xvars 1 @ Hyp.yvars (Hyp.ell h) in
      List.iter
        (fun (v, _) ->
          check "counting witness formula agrees" true
            (Modelcheck.Eval.holds_tuple g ~vars
               (Graph.Tuple.append v (Hyp.params h))
               f
            = Hyp.predict h v))
        lam)
    [ 1; 2 ]

let nd_guarantee_random =
  QCheck.Test.make
    ~name:"Theorem 13 guarantee err <= eps* + eps (random trees)" ~count:8
    QCheck.(int_range 0 200)
    (fun seed ->
      let g = Gen.random_tree ~seed:(seed + 31) 12 in
      let w = seed mod 12 in
      let lam =
        Sam.label_with g ~target:(fun v -> Bfs.dist g v.(0) w <= 1)
          (Sam.all_tuples g ~k:1)
      in
      let rep = Nd.solve (nd_config 1) g lam in
      let eps_star = (Brute.solve g ~k:1 ~ell:1 ~q:1 lam).Brute.err in
      rep.Nd.err <= eps_star +. 0.125 +. 1e-9)

let suite =
  [
    Alcotest.test_case "brute realisable" `Quick test_brute_realisable_parameterless;
    Alcotest.test_case "brute needs parameter" `Quick test_brute_needs_parameter;
    Alcotest.test_case "brute optimality" `Quick test_brute_optimality_vs_all_hypotheses;
    Alcotest.test_case "brute contradiction" `Quick test_brute_agnostic_contradiction;
    Alcotest.test_case "brute pairs" `Quick test_brute_pairs;
    Alcotest.test_case "brute empty sample" `Quick test_brute_empty_sample;
    Alcotest.test_case "brute witness formula" `Quick test_brute_witness_formula_faithful;
    Alcotest.test_case "realizable finds parameter" `Quick test_realizable_finds_parameter;
    Alcotest.test_case "realizable skips bad formula" `Quick test_realizable_skips_bad_formula;
    Alcotest.test_case "realizable rejects" `Quick test_realizable_rejects;
    Alcotest.test_case "realizable two parameters" `Quick test_realizable_two_parameters;
    Alcotest.test_case "realizable guards" `Quick test_realizable_guards;
    Alcotest.test_case "catalogue shapes" `Quick test_catalogue_shapes;
    Alcotest.test_case "catalogue partitions" `Quick test_catalogue_singletons_partition;
    Alcotest.test_case "auto-catalogue drives Alg 2" `Slow test_catalogue_drives_algorithm2;
    Alcotest.test_case "nd no conflicts" `Quick test_nd_no_conflicts_zero_rounds;
    Alcotest.test_case "nd parameterised target" `Quick test_nd_learns_parameterised_target;
    Alcotest.test_case "nd conflicts detected" `Quick test_nd_conflicts_detected;
    Alcotest.test_case "nd guarantee on trees" `Quick test_nd_guarantee_on_trees;
    Alcotest.test_case "nd noisy labels" `Quick test_nd_noisy_labels;
    Alcotest.test_case "nd pairs on grid" `Slow test_nd_pairs;
    Alcotest.test_case "nd epsilon guard" `Quick test_nd_rejects_bad_epsilon;
    Alcotest.test_case "nd formula faithful" `Quick test_nd_hypothesis_formula_faithful;
    Alcotest.test_case "nd two parameters" `Slow test_nd_two_parameters;
    Alcotest.test_case "nd radius 2, rank 0" `Slow test_nd_radius2_rank0;
    Alcotest.test_case "nd counting mode (FOC)" `Slow test_nd_counting_mode;
    QCheck_alcotest.to_alcotest nd_guarantee_random;
    QCheck_alcotest.to_alcotest brute_beats_any_query;
  ]
