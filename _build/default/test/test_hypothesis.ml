(* Tests for hypotheses and training sequences. *)

open Cgraph
module F = Fo.Formula
module Hyp = Folearn.Hypothesis
module Sam = Folearn.Sample
module T = Modelcheck.Types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let g =
  Graph.with_colors (Gen.path 6) [ ("Red", [ 0; 3 ]); ("Blue", [ 5 ]) ]

(* target: x1 is Red or adjacent to a Red vertex *)
let near_red =
  Fo.Parser.parse "Red(x1) \\/ (exists z. E(x1, z) /\\ Red(z))"

(* ------------------------------------------------------------------ *)
(* Samples                                                             *)
(* ------------------------------------------------------------------ *)

let test_sample_basics () =
  let lam = [ ([| 0 |], true); ([| 1 |], false); ([| 2 |], true) ] in
  check_int "size" 3 (Sam.size lam);
  check_int "positives" 2 (List.length (Sam.positives lam));
  check_int "negatives" 1 (List.length (Sam.negatives lam));
  check "arity" true (Sam.arity lam = Some 1);
  check "empty arity" true (Sam.arity [] = None)

let test_sample_mixed_arity () =
  check "mixed arity rejected" true
    (try
       ignore (Sam.arity [ ([| 0 |], true); ([| 1; 2 |], false) ]);
       false
     with Invalid_argument _ -> true)

let test_error_of () =
  let lam = [ ([| 0 |], true); ([| 1 |], false) ] in
  Alcotest.(check (float 1e-9)) "half wrong" 0.5 (Sam.error_of (fun _ -> true) lam);
  check_int "errors_of" 1 (Sam.errors_of (fun _ -> true) lam);
  Alcotest.(check (float 1e-9)) "empty sample" 0.0 (Sam.error_of (fun _ -> true) [])

let test_label_with_query () =
  let lam = Sam.label_with_query g ~formula:near_red ~xvars:[ "x1" ] (Sam.all_tuples g ~k:1) in
  (* Red or adjacent to red: 0,1,2,3,4 yes; 5 no (nbr 4 is not red) *)
  check "labels" true
    (List.map snd lam = [ true; true; true; true; true; false ])

let test_label_with_params () =
  let f = Fo.Parser.parse "E(x1, y1)" in
  let lam =
    Sam.label_with_query g ~formula:f ~xvars:[ "x1" ] ~yvars:[ "y1" ]
      ~params:[| 2 |] (Sam.all_tuples g ~k:1)
  in
  check "neighbours of 2" true
    (List.map snd lam = [ false; true; false; true; false; false ])

let test_flip_noise () =
  let lam = Sam.label_with g ~target:(fun _ -> true) (Sam.all_tuples g ~k:1) in
  check "p=0 identity" true (Sam.flip_noise ~seed:1 ~p:0.0 lam = lam);
  let flipped = Sam.flip_noise ~seed:1 ~p:1.0 lam in
  check "p=1 flips all" true (List.for_all (fun (_, b) -> not b) flipped)

let test_random_tuples_deterministic () =
  check "determinism" true
    (Sam.random_tuples ~seed:9 g ~k:2 ~m:5 = Sam.random_tuples ~seed:9 g ~k:2 ~m:5)

(* ------------------------------------------------------------------ *)
(* Syntactic hypotheses                                                *)
(* ------------------------------------------------------------------ *)

let test_of_formula_predict () =
  let h = Hyp.of_formula g ~k:1 ~formula:near_red ~params:[||] in
  check "predicts positive" true (Hyp.predict h [| 1 |]);
  check "predicts negative" false (Hyp.predict h [| 5 |]);
  check_int "k" 1 (Hyp.k h);
  check_int "ell" 0 (Hyp.ell h);
  check_int "rank" 1 (Hyp.quantifier_rank h)

let test_of_formula_with_params () =
  let f = Fo.Parser.parse "E(x1, y1)" in
  let h = Hyp.of_formula g ~k:1 ~formula:f ~params:[| 2 |] in
  check "nbr of 2" true (Hyp.predict h [| 3 |]);
  check "non-nbr" false (Hyp.predict h [| 0 |])

let test_of_formula_guards () =
  check "stray variable rejected" true
    (try
       ignore (Hyp.of_formula g ~k:1 ~formula:(F.eq "x1" "zz") ~params:[||]);
       false
     with Invalid_argument _ -> true);
  check "bad parameter vertex rejected" true
    (try
       ignore (Hyp.of_formula g ~k:1 ~formula:F.tru ~params:[| 99 |]);
       false
     with Graph.Invalid_vertex _ -> true)

let test_predict_arity_guard () =
  let h = Hyp.of_formula g ~k:2 ~formula:(F.edge "x1" "x2") ~params:[||] in
  check "arity guard" true
    (try
       ignore (Hyp.predict h [| 0 |]);
       false
     with Invalid_argument _ -> true)

let test_training_error () =
  let h = Hyp.of_formula g ~k:1 ~formula:near_red ~params:[||] in
  let lam = Sam.label_with_query g ~formula:near_red ~xvars:[ "x1" ] (Sam.all_tuples g ~k:1) in
  Alcotest.(check (float 1e-9)) "consistent" 0.0 (Hyp.training_error h lam)

let test_constantly () =
  let h = Hyp.constantly g ~k:2 true in
  check "always true" true (Hyp.predict h [| 0; 5 |]);
  check "formula is true" true (Hyp.formula h = F.tru)

(* ------------------------------------------------------------------ *)
(* Semantic (type-set) hypotheses                                      *)
(* ------------------------------------------------------------------ *)

let test_of_types_agrees_with_formula () =
  (* pick the rank-1 types of the positives of near_red, then check the
     materialised Hintikka formula agrees with the type-based predictor *)
  let ctx = T.make_ctx g in
  let q = 2 in
  let pos_types =
    List.sort_uniq T.compare
      (List.filter_map
         (fun v ->
           if Modelcheck.Eval.holds_tuple g ~vars:[ "x1" ] v near_red then
             Some (T.tp ctx ~q v)
           else None)
         (Sam.all_tuples g ~k:1))
  in
  let h = Hyp.of_types g ~k:1 ~q ~types:pos_types ~params:[||] in
  let f = Hyp.formula h in
  List.iter
    (fun v ->
      let via_types = Hyp.predict h v in
      let via_formula = Modelcheck.Eval.holds_tuple g ~vars:[ "x1" ] v f in
      if via_types <> via_formula then
        Alcotest.failf "type/formula disagreement at %d" v.(0))
    (Sam.all_tuples g ~k:1)

let test_of_types_with_params () =
  (* hypothesis "x1 is adjacent to y1" via rank-0 pair types *)
  let ctx = T.make_ctx g in
  let adj_types =
    List.sort_uniq T.compare
      (List.filter_map
         (fun v ->
           if Graph.mem_edge g v.(0) 2 then Some (T.tp ctx ~q:0 [| v.(0); 2 |])
           else None)
         (Sam.all_tuples g ~k:1))
  in
  let h = Hyp.of_types g ~k:1 ~q:0 ~types:adj_types ~params:[| 2 |] in
  check "nbr" true (Hyp.predict h [| 1 |]);
  check "non-nbr" false (Hyp.predict h [| 4 |]);
  (* the materialised formula must agree too, with y1 bound to 2 *)
  let f = Hyp.formula h in
  check "formula free vars use the x/y split" true
    (List.for_all
       (fun v -> List.mem v [ "x1"; "y1" ])
       (F.free_vars f));
  List.iter
    (fun v ->
      check "formula agrees" true
        (Modelcheck.Eval.holds_tuple g ~vars:[ "x1"; "y1" ] [| v; 2 |] f
        = Hyp.predict h [| v |]))
    [ 0; 1; 2; 3; 4; 5 ]

let test_of_local_types_agrees () =
  let ctx = T.make_ctx g in
  let q = 1 and r = 2 in
  let pos_types =
    List.sort_uniq T.compare
      (List.filter_map
         (fun v ->
           if Modelcheck.Eval.holds_tuple g ~vars:[ "x1" ] v near_red then
             Some (T.ltp ctx ~q ~r v)
           else None)
         (Sam.all_tuples g ~k:1))
  in
  let h = Hyp.of_local_types g ~k:1 ~q ~r ~types:pos_types ~params:[||] in
  let f = Hyp.formula h in
  List.iter
    (fun v ->
      let via_types = Hyp.predict h v in
      let via_formula = Modelcheck.Eval.holds_tuple g ~vars:[ "x1" ] v f in
      if via_types <> via_formula then
        Alcotest.failf "local type/formula disagreement at %d" v.(0))
    (Sam.all_tuples g ~k:1)

let test_split_kfold () =
  let lam = List.init 20 (fun i -> ([| i mod 6 |], i mod 2 = 0)) in
  let train, test = Sam.split ~seed:4 ~ratio:0.7 lam in
  check "sizes add" true (Sam.size train + Sam.size test = 20);
  check "ratio respected" true (Sam.size train = 14);
  let folds = Sam.kfold ~seed:4 ~k:5 lam in
  check "five folds" true (List.length folds = 5);
  List.iter
    (fun (tr, va) ->
      check "fold sizes add" true (Sam.size tr + Sam.size va = 20))
    folds;
  (* validation folds partition the sample *)
  let total_val =
    List.fold_left (fun acc (_, va) -> acc + Sam.size va) 0 folds
  in
  check "validation covers everything once" true (total_val = 20);
  check "bad k rejected" true
    (try
       ignore (Sam.kfold ~seed:1 ~k:0 lam);
       false
     with Invalid_argument _ -> true)

let test_cross_validate () =
  let lam =
    Folearn.Sample.label_with g
      ~target:(fun v -> Graph.has_color g "Red" v.(0))
      (Folearn.Sample.all_tuples g ~k:1)
  in
  (* enlarge by repetition so every fold sees both classes *)
  let lam = lam @ lam @ lam in
  let solver l = (Folearn.Erm_brute.solve g ~k:1 ~ell:0 ~q:1 l).Folearn.Erm_brute.hypothesis in
  let cv = Folearn.Pac.cross_validate ~solver ~seed:3 ~k:3 lam in
  check "realisable target cross-validates near zero" true (cv <= 0.2)

let test_combinators () =
  let red = Hyp.of_formula g ~k:1 ~formula:(Fo.Parser.parse "Red(x1)") ~params:[||] in
  let nbr2 = Hyp.of_formula g ~k:1 ~formula:(Fo.Parser.parse "E(x1, y1)") ~params:[| 2 |] in
  let both = Hyp.conj red nbr2 in
  let either = Hyp.disj red nbr2 in
  let not_red = Hyp.negate red in
  List.iter
    (fun v ->
      let t = [| v |] in
      check "conj" true
        (Hyp.predict both t = (Hyp.predict red t && Hyp.predict nbr2 t));
      check "disj" true
        (Hyp.predict either t = (Hyp.predict red t || Hyp.predict nbr2 t));
      check "negate" true (Hyp.predict not_red t = not (Hyp.predict red t)))
    [ 0; 1; 2; 3; 4; 5 ];
  (* the combined formula evaluates consistently with the predictor *)
  let f = Hyp.formula both in
  let vars = Hyp.xvars 1 @ Hyp.yvars (Hyp.ell both) in
  List.iter
    (fun v ->
      check "conj formula faithful" true
        (Modelcheck.Eval.holds_tuple g ~vars
           (Graph.Tuple.append [| v |] (Hyp.params both))
           f
        = Hyp.predict both [| v |]))
    [ 0; 2; 5 ];
  check "arity mismatch rejected" true
    (try
       ignore (Hyp.conj red (Hyp.constantly g ~k:2 true));
       false
     with Invalid_argument _ -> true)

let test_signatures () =
  let ctx = T.make_ctx g in
  let t = T.tp ctx ~q:1 [| 0 |] in
  let h1 = Hyp.of_types g ~k:1 ~q:1 ~types:[ t ] ~params:[||] in
  let h2 = Hyp.of_types g ~k:1 ~q:1 ~types:[ t ] ~params:[||] in
  check "equal signatures" true (Hyp.signature h1 = Hyp.signature h2);
  let h3 = Hyp.of_types g ~k:1 ~q:1 ~types:[] ~params:[||] in
  check "different signatures" true (Hyp.signature h1 <> Hyp.signature h3)

let suite =
  [
    Alcotest.test_case "sample basics" `Quick test_sample_basics;
    Alcotest.test_case "mixed arity" `Quick test_sample_mixed_arity;
    Alcotest.test_case "error_of" `Quick test_error_of;
    Alcotest.test_case "label with query" `Quick test_label_with_query;
    Alcotest.test_case "label with params" `Quick test_label_with_params;
    Alcotest.test_case "flip noise" `Quick test_flip_noise;
    Alcotest.test_case "random tuples deterministic" `Quick
      test_random_tuples_deterministic;
    Alcotest.test_case "of_formula predict" `Quick test_of_formula_predict;
    Alcotest.test_case "of_formula params" `Quick test_of_formula_with_params;
    Alcotest.test_case "of_formula guards" `Quick test_of_formula_guards;
    Alcotest.test_case "predict arity guard" `Quick test_predict_arity_guard;
    Alcotest.test_case "training error" `Quick test_training_error;
    Alcotest.test_case "constant hypothesis" `Quick test_constantly;
    Alcotest.test_case "of_types = formula" `Quick test_of_types_agrees_with_formula;
    Alcotest.test_case "of_types with params" `Quick test_of_types_with_params;
    Alcotest.test_case "of_local_types = formula" `Quick test_of_local_types_agrees;
    Alcotest.test_case "split and kfold" `Quick test_split_kfold;
    Alcotest.test_case "cross validate" `Quick test_cross_validate;
    Alcotest.test_case "hypothesis combinators" `Quick test_combinators;
    Alcotest.test_case "signatures" `Quick test_signatures;
  ]
