(* Tests for the sublinear local learner (Grohe-Ritzert style). *)

open Cgraph
module L = Folearn.Erm_local
module Sam = Folearn.Sample
module Hyp = Folearn.Hypothesis
module T = Modelcheck.Types

let check = Alcotest.(check bool)
let check_err = Alcotest.(check (float 1e-9))

(* reference: best local-type hypothesis scanning ALL vertices as the
   single parameter (what Erm_local must match without scanning) *)
let global_best_single_param g ~q ~r lam =
  let ctx = T.make_ctx g in
  let majority params =
    let votes : (T.ty, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (v, label) ->
        let t = T.ltp ctx ~q ~r (Graph.Tuple.append v params) in
        let pos, neg =
          match Hashtbl.find_opt votes t with
          | Some cell -> cell
          | None ->
              let cell = (ref 0, ref 0) in
              Hashtbl.replace votes t cell;
              cell
        in
        if label then incr pos else incr neg)
      lam;
    Hashtbl.fold (fun _ (pos, neg) acc -> acc + min !pos !neg) votes 0
  in
  List.fold_left
    (fun acc w -> min acc (majority [| w |]))
    (majority [||])
    (Graph.vertices g)

let test_matches_global_optimum () =
  (* the pool-restricted search must equal the full-V(G) scan *)
  List.iter
    (fun seed ->
      let g = Gen.random_tree ~seed 24 in
      let w = seed mod 24 in
      let lam =
        Sam.label_with g ~target:(fun v -> Bfs.dist g v.(0) w <= 1)
          (Sam.random_tuples ~seed g ~k:1 ~m:14)
      in
      let r = 1 in
      let local = L.solve ~radius:r g ~k:1 ~ell:1 ~q:1 lam in
      let global = global_best_single_param g ~q:1 ~r lam in
      let m = Sam.size lam in
      check_err
        (Printf.sprintf "seed %d: local = global optimum" seed)
        (float_of_int global /. float_of_int m)
        local.L.err)
    [ 1; 2; 3; 5; 8 ]

let test_sublinear_access () =
  (* few examples on a long path: touched vertices independent of n *)
  let touched_for n =
    let g = Gen.path n in
    let lam = [ ([| 3 |], true); ([| 7 |], false); ([| n / 2 |], true) ] in
    (L.solve ~radius:1 g ~k:1 ~ell:1 ~q:1 lam).L.vertices_touched
  in
  let t100 = touched_for 100 and t400 = touched_for 400 in
  check "touched equal across n" true (t100 = t400);
  check "touched far below n" true (t400 < 50)

let test_realisable_parameterised () =
  let g = Gen.caterpillar ~seed:4 ~spine:12 ~legs:2 in
  let w = 6 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.mem_edge g v.(0) w || v.(0) = w)
      (Sam.all_tuples g ~k:1)
  in
  let r = L.solve ~radius:1 g ~k:1 ~ell:1 ~q:1 lam in
  check_err "exact" 0.0 r.L.err;
  (* witness formula round-trip *)
  let f = Hyp.formula r.L.hypothesis in
  let vars = Hyp.xvars 1 @ Hyp.yvars (Hyp.ell r.L.hypothesis) in
  List.iter
    (fun (v, _) ->
      check "formula agrees" true
        (Modelcheck.Eval.holds_tuple g ~vars
           (Graph.Tuple.append v (Hyp.params r.L.hypothesis))
           f
        = Hyp.predict r.L.hypothesis v))
    lam

let test_pool_contains_examples_neighbourhood () =
  let g = Gen.path 50 in
  let lam = [ ([| 25 |], true) ] in
  let r = L.solve ~radius:1 g ~k:1 ~ell:0 ~q:1 lam in
  (* pool = N_3(25) = 7 vertices on a path *)
  check "pool size" true (r.L.pool_size = 7);
  check "params tried = 1 for ell 0" true (r.L.params_tried = 1)

let test_empty_sample () =
  let g = Gen.path 5 in
  let r = L.solve ~radius:1 g ~k:1 ~ell:1 ~q:1 [] in
  check_err "no error on empty" 0.0 r.L.err

let test_noisy_matches_reference () =
  let g = Gen.random_bounded_degree ~seed:6 ~n:30 ~d:3 in
  let lam =
    Sam.flip_noise ~seed:2 ~p:0.2
      (Sam.label_with g ~target:(fun v -> Graph.degree g v.(0) >= 2)
         (Sam.random_tuples ~seed:3 g ~k:1 ~m:16))
  in
  let local = L.solve ~radius:1 g ~k:1 ~ell:1 ~q:1 lam in
  let global = global_best_single_param g ~q:1 ~r:1 lam in
  check_err "agnostic: local = global optimum"
    (float_of_int global /. float_of_int (Sam.size lam))
    local.L.err

let local_equals_global =
  QCheck.Test.make
    ~name:"pool-restricted search equals the full scan (random trees)"
    ~count:10
    QCheck.(int_range 0 300)
    (fun seed ->
      let g = Gen.colored ~seed ~colors:[ "Red" ] (Gen.random_tree ~seed 18) in
      let lam =
        Sam.flip_noise ~seed ~p:0.15
          (Sam.label_with g
             ~target:(fun v -> Graph.has_color g "Red" v.(0))
             (Sam.random_tuples ~seed:(seed + 1) g ~k:1 ~m:10))
      in
      let local = L.solve ~radius:1 g ~k:1 ~ell:1 ~q:1 lam in
      let global = global_best_single_param g ~q:1 ~r:1 lam in
      Float.abs
        (local.L.err -. (float_of_int global /. float_of_int (Sam.size lam)))
      < 1e-9)

let test_pairs_k2 () =
  (* k = 2 tuples: learn "the two endpoints are adjacent" locally *)
  let g = Gen.random_tree ~seed:12 30 in
  let lam =
    Sam.label_with g ~target:(fun v -> Graph.mem_edge g v.(0) v.(1))
      (Sam.random_tuples ~seed:5 g ~k:2 ~m:20)
  in
  let r = L.solve ~radius:1 g ~k:2 ~ell:0 ~q:0 lam in
  check_err "adjacency is a local rank-0 pair property" 0.0 r.L.err

(* ------------------------------------------------------------------ *)
(* Preindex (preprocessing for repeated tasks)                         *)
(* ------------------------------------------------------------------ *)

module P = Folearn.Preindex

let test_preindex_classes () =
  let g = Gen.path 10 in
  let idx = P.build g ~q:2 ~r:1 in
  (* rank-2 radius-1 local vertex types on a path: endpoint vs inner
     (rank 1 cannot see the missing second neighbour) *)
  check "two classes" true (P.class_count idx = 2);
  check "endpoints same class" true
    (P.vertex_class idx 0 = P.vertex_class idx 9);
  check "endpoint differs from middle" true
    (P.vertex_class idx 0 <> P.vertex_class idx 5)

let test_preindex_erm_agrees () =
  (* the indexed ERM equals the local learner with no parameters *)
  List.iter
    (fun seed ->
      let g = Gen.colored ~seed ~colors:[ "Red" ] (Gen.random_tree ~seed 20) in
      let idx = P.build g ~q:1 ~r:1 in
      let lam =
        Sam.flip_noise ~seed ~p:0.2
          (Sam.label_with g
             ~target:(fun v -> Graph.has_color g "Red" v.(0))
             (Sam.random_tuples ~seed:(seed + 1) g ~k:1 ~m:15))
      in
      let a = P.erm idx lam in
      let b = L.solve ~radius:1 g ~k:1 ~ell:0 ~q:1 lam in
      check_err
        (Printf.sprintf "indexed = direct (seed %d)" seed)
        b.L.err a.P.err;
      (* and the hypothesis classifies the training set identically *)
      List.iter
        (fun (v, _) ->
          check "same predictions" true
            (Hyp.predict a.P.hypothesis v = Hyp.predict b.L.hypothesis v))
        lam)
    [ 1; 2; 3 ]

let test_preindex_many_tasks () =
  (* amortisation: many tasks on one graph reuse the single build *)
  let g = Gen.random_bounded_degree ~seed:8 ~n:60 ~d:3 in
  let idx = P.build g ~q:1 ~r:1 in
  List.iter
    (fun task_seed ->
      let lam =
        Sam.label_with g
          ~target:(fun v -> Graph.degree g v.(0) >= (task_seed mod 3) + 1)
          (Sam.random_tuples ~seed:task_seed g ~k:1 ~m:12)
      in
      let a = P.erm idx lam in
      check "err bounded by 1" true (a.P.err <= 1.0))
    [ 1; 2; 3; 4; 5 ]

let test_preindex_guards () =
  let g = Gen.path 4 in
  let idx = P.build g ~q:0 ~r:1 in
  check "arity guard" true
    (try
       ignore (P.erm idx [ ([| 0; 1 |], true) ]);
       false
     with Invalid_argument _ -> true);
  check "vertex guard" true
    (try
       ignore (P.vertex_class idx 99);
       false
     with Graph.Invalid_vertex _ -> true)

let suite =
  [
    Alcotest.test_case "matches global optimum" `Quick test_matches_global_optimum;
    Alcotest.test_case "sublinear access" `Quick test_sublinear_access;
    Alcotest.test_case "realisable parameterised" `Quick
      test_realisable_parameterised;
    Alcotest.test_case "pool sizing" `Quick test_pool_contains_examples_neighbourhood;
    Alcotest.test_case "empty sample" `Quick test_empty_sample;
    Alcotest.test_case "noisy matches reference" `Quick test_noisy_matches_reference;
    Alcotest.test_case "pairs k=2" `Quick test_pairs_k2;
    Alcotest.test_case "preindex classes" `Quick test_preindex_classes;
    Alcotest.test_case "preindex erm agrees" `Quick test_preindex_erm_agrees;
    Alcotest.test_case "preindex many tasks" `Quick test_preindex_many_tasks;
    Alcotest.test_case "preindex guards" `Quick test_preindex_guards;
    QCheck_alcotest.to_alcotest local_equals_global;
  ]
