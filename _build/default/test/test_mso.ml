(* Tests for the MSO-on-strings subsystem: DFA algebra, the
   Büchi-Elgot-Trakhtenbrot compilation (cross-checked against direct
   evaluation), the sparse-table oracle, and the string learner. *)

module D = Mso.Dfa
module N = Mso.Nfa
module M = Mso.Formula
module O = Mso.Oracle
module W = Mso.Word
module L = Mso.Learner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* even number of 1s over {0,1} *)
let even_ones =
  D.create ~states:2 ~alphabet:2 ~start:0
    ~delta:[| [| 0; 1 |]; [| 1; 0 |] |]
    ~accept:[| true; false |]

(* contains the factor "01" *)
let has_01 =
  D.create ~states:3 ~alphabet:2 ~start:0
    ~delta:[| [| 1; 0 |]; [| 1; 2 |]; [| 2; 2 |] |]
    ~accept:[| false; false; true |]

let words_up_to sigma len =
  let rec go l = if l = 0 then [ [] ] else begin
    let shorter = go (l - 1) in
    shorter
    @ List.concat_map
        (fun w -> List.init sigma (fun a -> a :: w))
        (List.filter (fun w -> List.length w = l - 1) shorter)
  end in
  List.map Array.of_list (go len)

(* ------------------------------------------------------------------ *)
(* DFA algebra                                                         *)
(* ------------------------------------------------------------------ *)

let test_dfa_run () =
  check "even ones accepts empty" true (D.accepts even_ones [||]);
  check "rejects single 1" false (D.accepts even_ones [| 1 |]);
  check "accepts 1 0 1" true (D.accepts even_ones [| 1; 0; 1 |]);
  check "01 found" true (D.accepts has_01 [| 1; 1; 0; 1 |]);
  check "01 not found" false (D.accepts has_01 [| 1; 1; 0 |])

let test_dfa_create_guards () =
  check "bad start" true
    (try
       ignore
         (D.create ~states:1 ~alphabet:1 ~start:3 ~delta:[| [| 0 |] |]
            ~accept:[| true |]);
       false
     with Invalid_argument _ -> true);
  check "bad target" true
    (try
       ignore
         (D.create ~states:1 ~alphabet:1 ~start:0 ~delta:[| [| 7 |] |]
            ~accept:[| true |]);
       false
     with Invalid_argument _ -> true)

let test_dfa_boolean_ops () =
  List.iter
    (fun w ->
      check "complement" true
        (D.accepts (D.complement even_ones) w = not (D.accepts even_ones w));
      check "intersection" true
        (D.accepts (D.product even_ones has_01 ~mode:`Inter) w
        = (D.accepts even_ones w && D.accepts has_01 w));
      check "union" true
        (D.accepts (D.product even_ones has_01 ~mode:`Union) w
        = (D.accepts even_ones w || D.accepts has_01 w)))
    (words_up_to 2 5)

let test_dfa_minimize () =
  (* duplicate the even-ones automaton wastefully, then minimise *)
  let bloated = D.product even_ones even_ones ~mode:`Inter in
  let m = D.minimize bloated in
  check_int "back to 2 states" 2 m.D.states;
  check "language preserved" true (D.equal_language m even_ones);
  (* minimize is idempotent *)
  check_int "idempotent" 2 (D.minimize m).D.states

let test_dfa_emptiness_equivalence () =
  check "empty lang" true (D.is_empty (D.empty_language ~alphabet:2));
  check "total not empty" false (D.is_empty (D.total_language ~alphabet:2));
  check "self equivalent" true (D.equal_language has_01 has_01);
  check "different" false (D.equal_language has_01 even_ones);
  (* L \ L = empty *)
  check "L inter co-L empty" true
    (D.is_empty (D.product even_ones (D.complement even_ones) ~mode:`Inter))

let test_of_predicate () =
  let a = D.of_predicate ~alphabet:2 ~max_len:6 (fun w ->
      Array.fold_left (+) 0 w mod 2 = 0)
  in
  check "matches even-ones" true (D.equal_language a even_ones);
  check_int "minimal" 2 a.D.states

let test_nfa_determinize () =
  (* NFA for "third letter from the end is 1" over {0,1} *)
  let n =
    N.create ~states:4 ~alphabet:2 ~starts:[ 0 ]
      ~delta:
        [|
          [| [ 0 ]; [ 0; 1 ] |];
          [| [ 2 ]; [ 2 ] |];
          [| [ 3 ]; [ 3 ] |];
          [| []; [] |];
        |]
      ~accept:[| false; false; false; true |]
  in
  let d = D.minimize (N.determinize n) in
  check_int "classic 2^3 states" 8 d.D.states;
  List.iter
    (fun w ->
      let expected =
        Array.length w >= 3 && w.(Array.length w - 3) = 1
      in
      check "agrees with NFA semantics" true (D.accepts d w = expected);
      check "nfa accepts directly" true (N.accepts n w = expected))
    (words_up_to 2 6)

(* ------------------------------------------------------------------ *)
(* MSO compilation                                                     *)
(* ------------------------------------------------------------------ *)

(* some named MSO sentences over {0,1} with hand semantics *)
let mso_sentences =
  [
    ( "some 1",
      M.ExistsPos ("x", M.Letter (1, "x")),
      fun w -> Array.exists (fun a -> a = 1) w );
    ( "all 1",
      M.ForallPos ("x", M.Letter (1, "x")),
      fun w -> Array.for_all (fun a -> a = 1) w );
    ( "factor 01",
      M.ExistsPos
        ( "x",
          M.ExistsPos
            ( "y",
              M.And [ M.Succ ("x", "y"); M.Letter (0, "x"); M.Letter (1, "y") ]
            ) ),
      fun w ->
        let ok = ref false in
        Array.iteri
          (fun i a ->
            if i + 1 < Array.length w && a = 0 && w.(i + 1) = 1 then ok := true)
          w;
        !ok );
    ( "last letter 1",
      M.ExistsPos
        ("x", M.And [ M.Letter (1, "x"); M.Not (M.ExistsPos ("y", M.Less ("x", "y"))) ]),
      fun w -> Array.length w > 0 && w.(Array.length w - 1) = 1 );
    ( "even length (via MSO set)",
      (* exists X containing exactly the even positions (0th, 2nd, ...)
         such that: 0 in X, membership alternates along Succ, and the
         last position is odd (not in X) *)
      M.ExistsSet
        ( "X",
          M.And
            [
              M.ForallPos
                ( "x",
                  M.Or
                    [ M.ExistsPos ("p", M.Succ ("p", "x"));
                      M.Mem ("x", "X") ] );
              M.ForallPos
                ( "x",
                  M.ForallPos
                    ( "y",
                      M.Or
                        [
                          M.Not (M.Succ ("x", "y"));
                          M.And
                            [ M.Mem ("x", "X");
                              M.Not (M.Mem ("y", "X")) ]
                          |> fun a ->
                          M.Or
                            [ a;
                              M.And
                                [ M.Not (M.Mem ("x", "X")); M.Mem ("y", "X") ]
                            ];
                        ] ) );
              M.ForallPos
                ( "z",
                  M.Or
                    [ M.ExistsPos ("s", M.Succ ("z", "s"));
                      M.Not (M.Mem ("z", "X")) ] );
            ] ),
      fun w -> Array.length w mod 2 = 0 );
  ]

let test_mso_compile_sentences () =
  List.iter
    (fun (name, phi, semantics) ->
      let dfa = M.language ~sigma:2 phi in
      List.iter
        (fun w ->
          let direct = M.eval ~word:w M.empty_assignment phi in
          let via_dfa = D.accepts dfa w in
          let expected = semantics w in
          if direct <> expected then
            Alcotest.failf "%s: direct eval wrong on a word of length %d" name
              (Array.length w);
          if via_dfa <> expected then
            Alcotest.failf "%s: compiled automaton wrong on length %d" name
              (Array.length w))
        (words_up_to 2 6))
    mso_sentences

let test_mso_shadowing () =
  (* regression: an inner quantifier re-binding a name must win over the
     outer binding (track resolution picks the innermost scope entry) *)
  let phi =
    M.And
      [ M.Letter (1, "x");
        M.ExistsPos ("p", M.ForallPos ("p", M.Less ("x", "p"))) ]
  in
  let scope = [ ("x", M.Pos) ] in
  let dfa = M.compile ~sigma:2 ~scope phi in
  List.iter
    (fun w ->
      Array.iteri
        (fun p _ ->
          let asg = { M.pos = [ ("x", p) ]; sets = [] } in
          if
            M.eval ~word:w asg phi
            <> M.holds_compiled ~sigma:2 ~scope dfa w asg
          then Alcotest.failf "shadowing broken at position %d" p)
        w)
    (words_up_to 2 4)

let test_mso_free_variables () =
  let phi = M.And [ M.Letter (1, "x"); M.Mem ("x", "X") ] in
  check "free vars" true (M.free phi = [ ("X", M.Set); ("x", M.Pos) ]);
  check "kind clash detected" true
    (try
       ignore (M.free (M.And [ M.Letter (0, "x"); M.Mem ("p", "x") ]));
       false
     with Invalid_argument _ -> true)

let test_mso_compile_with_free_vars () =
  (* phi(x) = "x carries 1 and some later position carries 0" *)
  let phi =
    M.And
      [ M.Letter (1, "x");
        M.ExistsPos ("y", M.And [ M.Less ("x", "y"); M.Letter (0, "y") ]) ]
  in
  let scope = [ ("x", M.Pos) ] in
  let dfa = M.compile ~sigma:2 ~scope phi in
  List.iter
    (fun w ->
      Array.iteri
        (fun p _ ->
          let asg = { M.pos = [ ("x", p) ]; sets = [] } in
          let direct = M.eval ~word:w asg phi in
          let via = M.holds_compiled ~sigma:2 ~scope dfa w asg in
          if direct <> via then
            Alcotest.failf "free-var compile mismatch at position %d" p)
        w)
    (words_up_to 2 5)

let mso_random_formula seed =
  let st = Random.State.make [| seed; 0x350 |] in
  let rec go pos_vars set_vars depth =
    let pick l = List.nth l (Random.State.int st (List.length l)) in
    if depth = 0 || Random.State.int st 3 = 0 then begin
      match (pos_vars, set_vars, Random.State.int st 5) with
      | _ :: _, _, 0 -> M.Letter (Random.State.int st 2, pick pos_vars)
      | _ :: _, _, 1 -> M.Less (pick pos_vars, pick pos_vars)
      | _ :: _, _, 2 -> M.Succ (pick pos_vars, pick pos_vars)
      | _ :: _, _ :: _, 3 -> M.Mem (pick pos_vars, pick set_vars)
      | _ :: _, _, _ -> M.EqPos (pick pos_vars, pick pos_vars)
      | [], _, _ -> M.MTrue
    end
    else begin
      match Random.State.int st 6 with
      | 0 -> M.Not (go pos_vars set_vars (depth - 1))
      | 1 -> M.And [ go pos_vars set_vars (depth - 1); go pos_vars set_vars (depth - 1) ]
      | 2 -> M.Or [ go pos_vars set_vars (depth - 1); go pos_vars set_vars (depth - 1) ]
      | 3 ->
          let v = Printf.sprintf "p%d" (Random.State.int st 2) in
          M.ExistsPos (v, go (v :: pos_vars) set_vars (depth - 1))
      | 4 ->
          let v = Printf.sprintf "p%d" (Random.State.int st 2) in
          M.ForallPos (v, go (v :: pos_vars) set_vars (depth - 1))
      | _ ->
          let v = Printf.sprintf "S%d" (Random.State.int st 2) in
          M.ExistsSet (v, go pos_vars (v :: set_vars) (depth - 1))
    end
  in
  go [ "x" ] [] 3

let mso_compile_matches_eval =
  QCheck.Test.make
    ~name:"compiled automaton = direct MSO evaluation (random formulas)"
    ~count:40
    QCheck.(int_range 0 5000)
    (fun seed ->
      let phi = mso_random_formula seed in
      let scope = [ ("x", M.Pos) ] in
      let dfa = M.compile ~sigma:2 ~scope phi in
      List.for_all
        (fun w ->
          Array.length w = 0
          || List.for_all
               (fun p ->
                 let asg = { M.pos = [ ("x", p) ]; sets = [] } in
                 M.eval ~word:w asg phi
                 = M.holds_compiled ~sigma:2 ~scope dfa w asg)
               [ 0; Array.length w - 1; Array.length w / 2 ])
        (words_up_to 2 5))

(* ------------------------------------------------------------------ *)
(* Regular expressions (Glushkov)                                      *)
(* ------------------------------------------------------------------ *)

module R = Mso.Regex

let ab_star_ab =
  (* (a|b)* a b (a|b)*  — contains the factor "ab" *)
  R.seq [ R.all ~sigma:2; R.letter 0; R.letter 1; R.all ~sigma:2 ]

let test_regex_matches () =
  check "factor found" true (R.matches ab_star_ab [| 1; 0; 1; 1 |]);
  check "factor missing" false (R.matches ab_star_ab [| 1; 1; 0 |]);
  check "eps in star" true (R.matches (R.star (R.letter 0)) [||]);
  check "plus needs one" false (R.matches (R.plus (R.letter 0)) [||]);
  check "opt" true (R.matches (R.opt (R.letter 1)) [||]);
  check "empty language" false (R.matches R.Empty [||])

let test_regex_simplifiers () =
  check "seq unit" true (R.seq [ R.Eps; R.letter 0 ] = R.letter 0);
  check "seq zero" true (R.seq [ R.letter 0; R.Empty ] = R.Empty);
  check "alt unit" true (R.alt [ R.Empty; R.letter 1 ] = R.letter 1);
  check "star idempotent" true (R.star (R.star (R.letter 0)) = R.star (R.letter 0));
  check "star of eps" true (R.star R.Eps = R.Eps)

let test_regex_to_dfa () =
  (* the Glushkov DFA for "contains ab" equals the handwritten has_01
     automaton (letters 0=a, 1=b)... note has_01 looks for factor 01 *)
  let d = R.to_dfa ~sigma:2 ab_star_ab in
  check "equals handwritten automaton" true (D.equal_language d has_01);
  (* and equals the MSO compilation of the factor sentence *)
  let mso_factor =
    M.ExistsPos
      ( "x",
        M.ExistsPos
          ("y", M.And [ M.Succ ("x", "y"); M.Letter (0, "x"); M.Letter (1, "y") ])
      )
  in
  check "equals the MSO sentence (BET triangle)" true
    (D.equal_language d (M.language ~sigma:2 mso_factor))

let test_regex_even_ones () =
  (* (0*10*1)*0*  — even number of 1s *)
  let zeros = R.star (R.letter 0) in
  let r = R.seq [ R.star (R.seq [ zeros; R.letter 1; zeros; R.letter 1 ]); zeros ] in
  check "equals even-ones" true (D.equal_language (R.to_dfa ~sigma:2 r) even_ones)

let regex_glushkov_matches_derivatives =
  QCheck.Test.make ~name:"Glushkov automaton = derivative matching" ~count:60
    QCheck.(int_range 0 5000)
    (fun seed ->
      let st = Random.State.make [| seed; 0x4e6 |] in
      let rec gen depth =
        if depth = 0 || Random.State.int st 3 = 0 then
          match Random.State.int st 4 with
          | 0 -> R.letter (Random.State.int st 2)
          | 1 -> R.Eps
          | 2 -> R.letter (Random.State.int st 2)
          | _ -> R.Empty
        else begin
          match Random.State.int st 3 with
          | 0 -> R.seq [ gen (depth - 1); gen (depth - 1) ]
          | 1 -> R.alt [ gen (depth - 1); gen (depth - 1) ]
          | _ -> R.star (gen (depth - 1))
        end
      in
      let r = gen 4 in
      let d = R.to_dfa ~sigma:2 r in
      List.for_all
        (fun w -> D.accepts d w = R.matches r w)
        (words_up_to 2 5))

let test_regex_parse () =
  let letters = [ "a"; "b" ] in
  check "roundtrip factor regex (same language)" true
    (D.equal_language
       (R.to_dfa ~sigma:2 (R.of_string ~letters "(a|b)*ab(a|b)*"))
       (R.to_dfa ~sigma:2 ab_star_ab));
  check "postfix plus" true (R.of_string ~letters "a+" = R.plus (R.letter 0));
  check "postfix opt" true (R.of_string ~letters "b?" = R.opt (R.letter 1));
  check "empty word" true (R.of_string ~letters "1" = R.Eps);
  check "empty language" true (R.of_string ~letters "0" = R.Empty);
  check "empty input is eps" true (R.of_string ~letters "" = R.Eps);
  List.iter
    (fun bad ->
      check (Printf.sprintf "rejects %S" bad) true
        (try
           ignore (R.of_string ~letters bad);
           false
         with R.Parse_error _ -> true))
    [ "("; "a)"; "c"; "a**)" ]

let regex_parse_pp_roundtrip =
  QCheck.Test.make ~name:"regex pp/parse round-trip (language equality)"
    ~count:50
    QCheck.(int_range 0 5000)
    (fun seed ->
      let st = Random.State.make [| seed; 0x4e7 |] in
      let rec gen depth =
        if depth = 0 || Random.State.int st 3 = 0 then
          R.letter (Random.State.int st 2)
        else begin
          match Random.State.int st 3 with
          | 0 -> R.seq [ gen (depth - 1); gen (depth - 1) ]
          | 1 -> R.alt [ gen (depth - 1); gen (depth - 1) ]
          | _ -> R.star (gen (depth - 1))
        end
      in
      let r = gen 4 in
      let letters = [ "a"; "b" ] in
      let r' = R.of_string ~letters (Format.asprintf "%a" (R.pp ~letters) r) in
      D.equal_language (R.to_dfa ~sigma:2 r) (R.to_dfa ~sigma:2 r'))

let test_regex_pp () =
  Alcotest.(check string)
    "printing" "(a|b)*ab(a|b)*"
    (Format.asprintf "%a" (R.pp ~letters:[ "a"; "b" ]) ab_star_ab)

(* ------------------------------------------------------------------ *)
(* Concrete syntax                                                     *)
(* ------------------------------------------------------------------ *)

module P = Mso.Parser

let test_parser_atoms () =
  let letters = [ "a"; "b" ] in
  check "letter" true (P.parse ~letters "a(x)" = M.Letter (0, "x"));
  check "second letter" true (P.parse ~letters "b(x)" = M.Letter (1, "x"));
  check "less" true (P.parse ~letters "x < y" = M.Less ("x", "y"));
  check "eq" true (P.parse ~letters "x = y" = M.EqPos ("x", "y"));
  check "succ" true (P.parse ~letters "succ(x, y)" = M.Succ ("x", "y"));
  check "mem" true (P.parse ~letters "x in X" = M.Mem ("x", "X"))

let test_parser_quantifiers () =
  let letters = [ "a"; "b" ] in
  check "positions" true
    (P.parse ~letters "exists x y. x < y"
    = M.ExistsPos ("x", M.ExistsPos ("y", M.Less ("x", "y"))));
  check "sets" true
    (P.parse ~letters "existsset X. forall x. x in X"
    = M.ExistsSet ("X", M.ForallPos ("x", M.Mem ("x", "X"))));
  check "implication desugars" true
    (P.parse ~letters "a(x) -> b(x)"
    = M.Or [ M.Not (M.Letter (0, "x")); M.Letter (1, "x") ])

let test_parser_errors () =
  let letters = [ "a" ] in
  check "unknown letter" true (P.parse_opt ~letters "z(x)" = None);
  check "keyword letter rejected" true
    (try
       ignore (P.parse ~letters:[ "succ" ] "true");
       false
     with P.Parse_error _ -> true);
  check "dangling" true (P.parse_opt ~letters "x <" = None)

let printer_roundtrip =
  QCheck.Test.make ~name:"MSO pp/parse round-trip" ~count:60
    QCheck.(int_range 0 5000)
    (fun seed ->
      let phi = mso_random_formula seed in
      let letters = [ "a"; "b" ] in
      match P.parse_opt ~letters (M.to_string ~letters phi) with
      | None -> false
      | Some phi' ->
          (* parsing may normalise through derived forms; compare
             semantically via compiled automata *)
          let scope = [ ("x", M.Pos) ] in
          let d1 = M.compile ~sigma:2 ~scope phi in
          let d2 = M.compile ~sigma:2 ~scope phi' in
          D.equal_language d1 d2)

let test_parser_end_to_end () =
  (* parse, compile, run: "every a is eventually followed by a b" *)
  let letters = [ "a"; "b" ] in
  let phi =
    P.parse ~letters "forall x. a(x) -> exists y. x < y /\\ b(y)"
  in
  let dfa = M.language ~sigma:2 phi in
  check "abab ok" true (D.accepts dfa [| 0; 1; 0; 1 |]);
  check "aba fails" false (D.accepts dfa [| 0; 1; 0 |]);
  check "empty ok" true (D.accepts dfa [||])

(* ------------------------------------------------------------------ *)
(* Words                                                               *)
(* ------------------------------------------------------------------ *)

let test_word_strings () =
  let w = W.of_string ~alphabet:"ab" "abba" in
  check "parse" true (w = [| 0; 1; 1; 0 |]);
  Alcotest.(check string) "print" "abba" (W.to_string ~alphabet:"ab" w);
  check "bad char" true
    (try
       ignore (W.of_string ~alphabet:"ab" "abc");
       false
     with Invalid_argument _ -> true)

let test_word_graph () =
  let g = W.to_graph ~sigma:2 [| 0; 1; 1 |] in
  check_int "path order" 3 (Cgraph.Graph.order g);
  check "first marked" true (Cgraph.Graph.has_color g "First" 0);
  check "letters coloured" true
    (Cgraph.Graph.has_color g "L1" 1 && Cgraph.Graph.has_color g "L0" 0);
  check "path edges" true (Cgraph.Graph.mem_edge g 0 1 && Cgraph.Graph.mem_edge g 1 2)

(* ------------------------------------------------------------------ *)
(* Bridge: FO on word-graphs = MSO on words                            *)
(* ------------------------------------------------------------------ *)

let test_bridge_atoms () =
  let w = W.of_string ~alphabet:"ab" "abba" in
  let g = W.to_graph ~sigma:2 w in
  let checks =
    [
      ("E(x, y)", [ ("x", 1); ("y", 2) ], true);
      ("E(x, y)", [ ("x", 0); ("y", 2) ], false);
      ("L1(x)", [ ("x", 1) ], true);
      ("First(x)", [ ("x", 0) ], true);
      ("First(x)", [ ("x", 2) ], false);
    ]
  in
  List.iter
    (fun (src, env, expected) ->
      let fo = Fo.Parser.parse src in
      let mso = Mso.Bridge.mso_of_fo ~sigma:2 fo in
      check (src ^ " on the graph") true
        (Modelcheck.Eval.holds g env fo = expected);
      check (src ^ " on the word") true
        (M.eval ~word:w { M.pos = env; sets = [] } mso = expected))
    checks

let test_bridge_guards () =
  check "counting rejected" true
    (try
       ignore
         (Mso.Bridge.mso_of_fo ~sigma:2 (Fo.Formula.count_ge 2 "y" (Fo.Formula.edge "x" "y")));
       false
     with Mso.Bridge.Unsupported _ -> true);
  check "foreign colour rejected" true
    (try
       ignore (Mso.Bridge.mso_of_fo ~sigma:2 (Fo.Formula.color "Zeta" "x"));
       false
     with Mso.Bridge.Unsupported _ -> true)

let bridge_correspondence =
  QCheck.Test.make
    ~name:"FO on the word-graph = translated MSO on the word" ~count:60
    QCheck.(int_range 0 5000)
    (fun seed ->
      let cfg =
        {
          Fo.Genform.default with
          Fo.Genform.free_vars = [ "x" ];
          colors = [ "L0"; "L1"; "First" ];
          max_depth = 3;
        }
      in
      let fo = Fo.Genform.formula ~config:cfg ~seed () in
      let mso = Mso.Bridge.mso_of_fo ~sigma:2 fo in
      let w = W.random ~seed:(seed + 1) ~sigma:2 ~len:(1 + (seed mod 6)) in
      let g = W.to_graph ~sigma:2 w in
      List.for_all
        (fun p ->
          Modelcheck.Eval.holds g [ ("x", p) ] fo
          = M.eval ~word:w { M.pos = [ ("x", p) ]; sets = [] } mso)
        (List.init (Array.length w) Fun.id))

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let oracle_matches_naive =
  QCheck.Test.make ~name:"sparse-table oracle = naive run" ~count:60
    QCheck.(pair (int_range 0 2000) (int_range 1 40))
    (fun (seed, len) ->
      let phi =
        M.And
          [ M.Letter (1, "x");
            M.ExistsPos ("y", M.And [ M.Less ("y", "x"); M.Letter (0, "y") ]) ]
      in
      let scope = [ ("x", M.Pos) ] in
      let dfa = M.compile ~sigma:2 ~scope phi in
      let w = W.random ~seed ~sigma:2 ~len in
      let o = O.make ~sigma:2 dfa w in
      let st = Random.State.make [| seed; 9 |] in
      List.for_all
        (fun _ ->
          let p = Random.State.int st len in
          O.eval_with_marks o ~marks:[ (p, 1) ]
          = O.eval_naive o ~marks:[ (p, 1) ])
        (List.init 8 Fun.id))

let test_oracle_multi_marks () =
  let phi =
    M.And [ M.Less ("x", "y"); M.Letter (1, "x"); M.Letter (1, "y") ]
  in
  let scope = [ ("x", M.Pos); ("y", M.Pos) ] in
  let dfa = M.compile ~sigma:2 ~scope phi in
  let w = [| 1; 0; 1; 1; 0 |] in
  let o = O.make ~sigma:2 dfa w in
  List.iter
    (fun (px, py) ->
      let marks = [ (px, 1); (py, 2) ] in
      check "two marks agree with naive" true
        (O.eval_with_marks o ~marks = O.eval_naive o ~marks);
      let expected = px < py && w.(px) = 1 && w.(py) = 1 in
      check "semantics" true (O.eval_with_marks o ~marks = expected))
    [ (0, 2); (2, 0); (0, 3); (3, 2); (1, 2); (2, 3) ]

let test_oracle_same_position_marks () =
  (* x and y on the same position: masks merge *)
  let phi = M.EqPos ("x", "y") in
  let scope = [ ("x", M.Pos); ("y", M.Pos) ] in
  let dfa = M.compile ~sigma:2 ~scope phi in
  let o = O.make ~sigma:2 dfa [| 0; 1; 0 |] in
  check "merged marks" true (O.eval_with_marks o ~marks:[ (1, 1); (1, 2) ]);
  check "split marks" false (O.eval_with_marks o ~marks:[ (1, 1); (2, 2) ])

(* ------------------------------------------------------------------ *)
(* Learner                                                             *)
(* ------------------------------------------------------------------ *)

let catalogue =
  [
    {
      L.name = "letter is 1";
      phi = M.Letter (1, "x");
      xvars = [ "x" ];
      yvars = [];
    };
    {
      L.name = "right of the parameter";
      phi = M.Less ("y1", "x");
      xvars = [ "x" ];
      yvars = [ "y1" ];
    };
    {
      L.name = "same letter as the parameter";
      phi =
        M.Or
          [ M.And [ M.Letter (0, "x"); M.Letter (0, "y1") ];
            M.And [ M.Letter (1, "x"); M.Letter (1, "y1") ] ];
      xvars = [ "x" ];
      yvars = [ "y1" ];
    };
  ]

let test_learner_simple_concept () =
  let word = W.of_string ~alphabet:"ab" "abbabaab" in
  let examples =
    List.init 8 (fun p -> ([| p |], word.(p) = 1))
  in
  match L.solve ~sigma:2 ~word ~catalogue examples with
  | None -> Alcotest.fail "catalogue should fit"
  | Some r ->
      Alcotest.(check (float 1e-9)) "err 0" 0.0 r.L.err;
      check "picked the letter concept" true (r.L.entry.L.name = "letter is 1")

let test_learner_parameterised_concept () =
  (* hidden threshold position: everything right of position 5 *)
  let word = W.random ~seed:3 ~sigma:2 ~len:12 in
  let examples = List.init 12 (fun p -> ([| p |], p > 5)) in
  match L.solve ~sigma:2 ~word ~catalogue examples with
  | None -> Alcotest.fail "catalogue should fit"
  | Some r ->
      Alcotest.(check (float 1e-9)) "err 0" 0.0 r.L.err;
      check "picked the threshold concept" true
        (r.L.entry.L.name = "right of the parameter");
      check_int "threshold parameter" 5 r.L.params.(0);
      (* fresh position classified correctly *)
      check "predict" true (L.predict ~sigma:2 ~word r [| 7 |]);
      check "predict negative" false (L.predict ~sigma:2 ~word r [| 2 |])

let test_learner_agnostic () =
  (* noisy labels: best catalogue entry minimises, err > 0 *)
  let word = W.of_string ~alphabet:"ab" "aaaabbbb" in
  let examples =
    [ ([| 0 |], false); ([| 1 |], false); ([| 4 |], true); ([| 5 |], true);
      ([| 6 |], false) (* the noise *) ]
  in
  match L.solve ~sigma:2 ~word ~catalogue examples with
  | None -> Alcotest.fail "nonempty catalogue"
  | Some r -> check "one error out of five" true (abs_float (r.L.err -. 0.2) < 1e-9)

let test_learner_guards () =
  check "stray free variable" true
    (try
       ignore
         (L.solve ~sigma:2 ~word:[| 0 |]
            ~catalogue:
              [ { L.name = "bad"; phi = M.Letter (0, "zz"); xvars = [ "x" ]; yvars = [] } ]
            [ ([| 0 |], true) ]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "dfa run" `Quick test_dfa_run;
    Alcotest.test_case "dfa guards" `Quick test_dfa_create_guards;
    Alcotest.test_case "dfa boolean ops" `Quick test_dfa_boolean_ops;
    Alcotest.test_case "dfa minimize" `Quick test_dfa_minimize;
    Alcotest.test_case "dfa emptiness/equivalence" `Quick
      test_dfa_emptiness_equivalence;
    Alcotest.test_case "dfa of_predicate" `Quick test_of_predicate;
    Alcotest.test_case "nfa determinize" `Quick test_nfa_determinize;
    Alcotest.test_case "mso sentences compile" `Quick test_mso_compile_sentences;
    Alcotest.test_case "mso shadowing" `Quick test_mso_shadowing;
    Alcotest.test_case "mso free variables" `Quick test_mso_free_variables;
    Alcotest.test_case "mso free-var compile" `Quick test_mso_compile_with_free_vars;
    Alcotest.test_case "regex matches" `Quick test_regex_matches;
    Alcotest.test_case "regex simplifiers" `Quick test_regex_simplifiers;
    Alcotest.test_case "regex = DFA = MSO (BET)" `Quick test_regex_to_dfa;
    Alcotest.test_case "regex even ones" `Quick test_regex_even_ones;
    Alcotest.test_case "regex printing" `Quick test_regex_pp;
    Alcotest.test_case "regex parsing" `Quick test_regex_parse;
    QCheck_alcotest.to_alcotest regex_parse_pp_roundtrip;
    QCheck_alcotest.to_alcotest regex_glushkov_matches_derivatives;
    Alcotest.test_case "parser atoms" `Quick test_parser_atoms;
    Alcotest.test_case "parser quantifiers" `Quick test_parser_quantifiers;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "parser end-to-end" `Quick test_parser_end_to_end;
    QCheck_alcotest.to_alcotest printer_roundtrip;
    Alcotest.test_case "word strings" `Quick test_word_strings;
    Alcotest.test_case "word graph" `Quick test_word_graph;
    Alcotest.test_case "bridge atoms" `Quick test_bridge_atoms;
    Alcotest.test_case "bridge guards" `Quick test_bridge_guards;
    QCheck_alcotest.to_alcotest bridge_correspondence;
    Alcotest.test_case "oracle multi marks" `Quick test_oracle_multi_marks;
    Alcotest.test_case "oracle same-position marks" `Quick
      test_oracle_same_position_marks;
    Alcotest.test_case "learner simple concept" `Quick test_learner_simple_concept;
    Alcotest.test_case "learner parameterised" `Quick test_learner_parameterised_concept;
    Alcotest.test_case "learner agnostic" `Quick test_learner_agnostic;
    Alcotest.test_case "learner guards" `Quick test_learner_guards;
    QCheck_alcotest.to_alcotest mso_compile_matches_eval;
    QCheck_alcotest.to_alcotest oracle_matches_naive;
  ]
