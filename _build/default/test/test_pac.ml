(* Tests for the PAC wrapper and the VC-dimension machinery. *)

open Cgraph
module Pac = Folearn.Pac
module Vc = Folearn.Vc
module Sam = Folearn.Sample
module Brute = Folearn.Erm_brute
module Hyp = Folearn.Hypothesis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_f = Alcotest.(check (float 1e-9))

let g = Graph.with_colors (Gen.path 8) [ ("Red", [ 0; 3; 6 ]) ]
let red v = Graph.has_color g "Red" v.(0)

(* ------------------------------------------------------------------ *)
(* Distributions                                                       *)
(* ------------------------------------------------------------------ *)

let test_uniform_target_support () =
  let d = Pac.uniform_target g ~k:1 ~target:red in
  let support = Lazy.force d.Pac.support in
  check_int "8 atoms" 8 (List.length support);
  check_f "weights sum to 1" 1.0
    (List.fold_left (fun a (_, p) -> a +. p) 0.0 support);
  check_f "realisable Bayes risk" 0.0 (Pac.bayes_risk d)

let test_uniform_noisy () =
  let d = Pac.uniform_noisy g ~k:1 ~target:red ~noise:0.2 in
  let support = Lazy.force d.Pac.support in
  check_int "16 atoms" 16 (List.length support);
  check_f "Bayes risk is the noise rate" 0.2 (Pac.bayes_risk d);
  (* the target itself has risk exactly the noise *)
  check_f "target risk" 0.2 (Pac.risk d red);
  (* the anti-target has risk 0.8 *)
  check_f "anti-target risk" 0.8 (Pac.risk d (fun v -> not (red v)))

let test_weighted () =
  let d =
    Pac.weighted ~describe:"two atoms"
      [ (([| 0 |], true), 3.0); (([| 1 |], false), 1.0) ]
  in
  check_f "normalised risk" 0.25 (Pac.risk d (fun _ -> true));
  check "empty rejected" true
    (try
       ignore (Pac.weighted ~describe:"" []);
       false
     with Invalid_argument _ -> true)

let test_draw_deterministic_and_sized () =
  let d = Pac.uniform_target g ~k:1 ~target:red in
  let s1 = Pac.draw d ~seed:5 ~m:40 in
  check_int "m examples" 40 (Sam.size s1);
  check "deterministic" true (s1 = Pac.draw d ~seed:5 ~m:40);
  check "labels realisable" true (List.for_all (fun (v, b) -> red v = b) s1)

let test_draw_frequencies () =
  (* law of large numbers smoke test: every vertex appears *)
  let d = Pac.uniform_target g ~k:1 ~target:red in
  let s = Pac.draw d ~seed:1 ~m:400 in
  List.iter
    (fun v ->
      check "vertex sampled" true
        (List.exists (fun (t, _) -> t.(0) = v) s))
    (Graph.vertices g)

(* ------------------------------------------------------------------ *)
(* Sample bounds                                                       *)
(* ------------------------------------------------------------------ *)

let test_sample_bound_shape () =
  let m1 = Pac.sample_bound ~log2_h:10.0 ~eps:0.1 ~delta:0.05 in
  let m2 = Pac.sample_bound ~log2_h:20.0 ~eps:0.1 ~delta:0.05 in
  let m3 = Pac.sample_bound ~log2_h:10.0 ~eps:0.05 ~delta:0.05 in
  check "monotone in |H|" true (m2 > m1);
  check "quadratic in 1/eps" true (m3 > 3 * m1);
  check "guards" true
    (try
       ignore (Pac.sample_bound ~log2_h:1.0 ~eps:0.0 ~delta:0.1);
       false
     with Invalid_argument _ -> true)

let test_hypothesis_count_shape () =
  (* |H| grows with ell by a factor of n *)
  let h0 = Pac.log2_hypothesis_count g ~k:1 ~ell:0 ~q:1 in
  let h1 = Pac.log2_hypothesis_count g ~k:1 ~ell:1 ~q:1 in
  check "log grows by log2 n per parameter" true (h1 >= h0 +. Float.log2 8.0)

(* ------------------------------------------------------------------ *)
(* End-to-end PAC runs                                                 *)
(* ------------------------------------------------------------------ *)

let erm_solver lam = (Brute.solve g ~k:1 ~ell:0 ~q:1 lam).Brute.hypothesis

let test_pac_realisable_run () =
  let d = Pac.uniform_target g ~k:1 ~target:red in
  let o = Pac.run ~solver:erm_solver d ~seed:2 ~m:60 in
  check_f "training error 0" 0.0 o.Pac.training_error;
  check "generalises" true (o.Pac.generalisation_error <= 0.15)

let test_pac_noisy_run () =
  let d = Pac.uniform_noisy g ~k:1 ~target:red ~noise:0.1 in
  let o = Pac.run ~solver:erm_solver d ~seed:2 ~m:200 in
  (* agnostic: close to the Bayes risk *)
  check "risk near Bayes" true
    (o.Pac.generalisation_error <= o.Pac.best_risk +. 0.15)

let pac_gap_shrinks =
  QCheck.Test.make ~name:"uniform convergence: larger m, smaller gap (on average)"
    ~count:5
    QCheck.(int_range 0 100)
    (fun seed ->
      let d = Pac.uniform_noisy g ~k:1 ~target:red ~noise:0.15 in
      let avg_gap m =
        let runs =
          List.init 5 (fun i -> Pac.run ~solver:erm_solver d ~seed:(seed + i) ~m)
        in
        List.fold_left (fun a o -> a +. o.Pac.gap) 0.0 runs /. 5.0
      in
      (* not strictly monotone per draw; allow slack *)
      avg_gap 320 <= avg_gap 10 +. 0.05)

(* ------------------------------------------------------------------ *)
(* VC dimension                                                        *)
(* ------------------------------------------------------------------ *)

let test_dichotomies_single () =
  (* one tuple: both labelings realisable (empty set and full set of
     types) *)
  check_int "2 dichotomies" 2 (Vc.dichotomy_count g ~k:1 ~ell:0 ~q:1 [ [| 0 |] ])

let test_shattering_colour_pair () =
  (* {Red vertex, non-Red vertex} is shattered at rank 0 already with
     colours in the vocabulary *)
  check "pair shattered" true
    (Vc.is_shattered g ~k:1 ~ell:0 ~q:0 [ [| 0 |]; [| 1 |] ])

let test_no_shatter_same_type () =
  (* two vertices of equal rank-0 type cannot be shattered without
     parameters *)
  check "same-type pair not shattered" false
    (Vc.is_shattered g ~k:1 ~ell:0 ~q:0 [ [| 1 |]; [| 2 |] ]);
  (* ... but one parameter distinguishes them *)
  check "parameter shatters it" true
    (Vc.is_shattered g ~k:1 ~ell:1 ~q:1 [ [| 1 |]; [| 2 |] ])

let test_vc_lower_bound () =
  let lb = Vc.lower_bound ~seed:3 g ~k:1 ~ell:1 ~q:1 ~max_d:4 in
  check "at least 2" true (lb >= 2);
  check "bounded by cap" true (lb <= 4)

let test_vc_exact_small () =
  let tiny = Graph.with_colors (Gen.path 4) [ ("Red", [ 1 ]) ] in
  let d = Vc.exact_small tiny ~k:1 ~ell:0 ~q:1 ~max_d:3 in
  check "exact in range" true (d >= 1 && d <= 3);
  (* exact >= randomized lower bound *)
  let lb = Vc.lower_bound ~seed:1 tiny ~k:1 ~ell:0 ~q:1 ~max_d:3 in
  check "exact >= lower bound" true (d >= lb)

(* ------------------------------------------------------------------ *)
(* Ramsey                                                              *)
(* ------------------------------------------------------------------ *)

module R = Folearn.Ramsey

let test_factorial_binomial () =
  check_int "5!" 120 (R.factorial 5);
  check_int "0!" 1 (R.factorial 0);
  check_int "C(5,2)" 10 (R.binomial 5 2);
  check_int "out of range" 0 (R.binomial 3 5)

let test_triangle_bound () =
  check_int "1 colour" 3 (R.triangle_bound ~colors:1);
  check_int "2 colours (R(3,3)=6)" 6 (R.triangle_bound ~colors:2);
  check_int "3 colours (R(3,3,3)=17)" 17 (R.triangle_bound ~colors:3);
  check "monotone" true
    (R.triangle_bound ~colors:4 > R.triangle_bound ~colors:3)

let test_ramsey_upper () =
  check_int "R(2,2)" 2 (R.ramsey_upper ~colors:2 ~clique:2);
  check_int "R(3,3) = 6 via the recurrence" 6 (R.ramsey_upper ~colors:2 ~clique:3);
  check "trivial clique" true (R.ramsey_upper ~colors:3 ~clique:1 = 1)

let test_monochromatic_triple () =
  (* colour = parity of the pair sum: {0,2,4} is monochromatic *)
  let color u v = (u + v) mod 2 in
  (match R.monochromatic_triple ~color ~equal:Int.equal [ 0; 1; 2; 3; 4 ] with
  | Some (a, b, c) ->
      check "really monochromatic" true
        (color a b = color a c && color a b = color b c)
  | None -> Alcotest.fail "triple must exist among 5 vertices / 2 colours");
  check "no triple in tiny set" true
    (R.monochromatic_triple ~color ~equal:Int.equal [ 0; 1 ] = None)

let test_eliminate () =
  let color u v = (u + v) mod 3 in
  let survivors =
    R.eliminate_until_ramsey_free ~color ~equal:Int.equal (List.init 30 Fun.id)
  in
  check "no monochromatic triple remains" true
    (R.monochromatic_triple ~color ~equal:Int.equal survivors = None);
  check "bounded by Ramsey" true
    (List.length survivors <= R.triangle_bound ~colors:3)

let eliminate_is_sound =
  QCheck.Test.make ~name:"elimination keeps a representative of every colour-class"
    ~count:40
    QCheck.(pair (int_range 3 25) (int_range 1 4))
    (fun (n, classes) ->
      (* colour classes on vertices; pair colour = "same class?" +
         class pair id.  The invariant mirrors Lemma 7: if the pair
         colouring is induced by a vertex partition, a member of every
         class survives. *)
      let cls v = v mod classes in
      let color u v =
        if cls u = cls v then -1 else (min (cls u) (cls v) * 100) + max (cls u) (cls v)
      in
      let survivors =
        R.eliminate_until_ramsey_free ~color ~equal:Int.equal (List.init n Fun.id)
      in
      List.for_all
        (fun c -> List.exists (fun v -> cls v = c) survivors)
        (List.init (min classes n) Fun.id))

let suite =
  [
    Alcotest.test_case "uniform target support" `Quick test_uniform_target_support;
    Alcotest.test_case "uniform noisy" `Quick test_uniform_noisy;
    Alcotest.test_case "weighted" `Quick test_weighted;
    Alcotest.test_case "draw" `Quick test_draw_deterministic_and_sized;
    Alcotest.test_case "draw frequencies" `Quick test_draw_frequencies;
    Alcotest.test_case "sample bound shape" `Quick test_sample_bound_shape;
    Alcotest.test_case "hypothesis count shape" `Quick test_hypothesis_count_shape;
    Alcotest.test_case "pac realisable" `Quick test_pac_realisable_run;
    Alcotest.test_case "pac noisy" `Quick test_pac_noisy_run;
    Alcotest.test_case "dichotomies single" `Quick test_dichotomies_single;
    Alcotest.test_case "shattering colour pair" `Quick test_shattering_colour_pair;
    Alcotest.test_case "no shatter same type" `Quick test_no_shatter_same_type;
    Alcotest.test_case "vc lower bound" `Quick test_vc_lower_bound;
    Alcotest.test_case "vc exact small" `Quick test_vc_exact_small;
    Alcotest.test_case "factorial binomial" `Quick test_factorial_binomial;
    Alcotest.test_case "triangle bound" `Quick test_triangle_bound;
    Alcotest.test_case "ramsey upper" `Quick test_ramsey_upper;
    Alcotest.test_case "monochromatic triple" `Quick test_monochromatic_triple;
    Alcotest.test_case "eliminate" `Quick test_eliminate;
    QCheck_alcotest.to_alcotest pac_gap_shrinks;
    QCheck_alcotest.to_alcotest eliminate_is_sound;
  ]
