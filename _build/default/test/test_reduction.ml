(* Tests for the Theorem 1 hardness reduction: model checking through an
   ERM oracle must agree with direct model checking. *)

open Cgraph
module Red = Folearn.Reduction
module E = Modelcheck.Eval

let check = Alcotest.(check bool)

let corpus_graphs =
  [
    ("P7", Gen.path 7);
    ("C6", Gen.cycle 6);
    ("K4", Gen.clique 4);
    ("star6", Gen.star 6);
    ( "coloured-path",
      Graph.with_colors (Gen.path 6) [ ("Red", [ 0; 2 ]); ("Blue", [ 4 ]) ] );
    ("tree", Gen.random_tree ~seed:8 8);
  ]

let corpus_sentences =
  [
    "exists x. exists y. E(x, y)";
    "forall x. exists y. E(x, y)";
    "exists x. forall y. ~ E(x, y)";
    "exists x. exists y. exists z. E(x, y) /\\ E(y, z) /\\ E(x, z)";
    "forall x. forall y. E(x, y) \\/ x = y";
    "exists x. Red(x) /\\ exists y. E(x, y) /\\ Blue(y)";
    "exists x. forall y. E(x, y) -> exists z. E(y, z) /\\ ~ z = x";
    "true";
    "exists x. x = x";
  ]

let test_agrees_with_direct () =
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun src ->
          let phi = Fo.Parser.parse src in
          let expected = E.sentence g phi in
          let got, _ = Red.model_check ~oracle:Red.exact_oracle g phi in
          if got <> expected then
            Alcotest.failf "reduction wrong on %s |= %s (expected %b)" gname
              src expected)
        corpus_sentences)
    corpus_graphs

let test_stats_populated () =
  let g = Gen.path 6 in
  let phi = Fo.Parser.parse "exists x. forall y. E(x, y) -> ~ Red(y)" in
  let _, stats = Red.model_check ~oracle:Red.exact_oracle g phi in
  check "oracle consulted" true (stats.Red.oracle_calls > 0);
  check "pairs bounded" true (stats.Red.oracle_calls <= 6 * 5 / 2 * 10);
  check "representative sets recorded" true
    (stats.Red.representative_sets <> []);
  (* representative sets are genuinely smaller than the graph on paths *)
  check "compression happened" true
    (List.for_all (fun t -> t <= 6) stats.Red.representative_sets)

let test_representatives_cover_types () =
  (* on a long path the reduction should keep roughly the distinct
     rank-q types, far fewer than n *)
  let g = Gen.path 12 in
  let phi = Fo.Parser.parse "exists x. forall y. ~ E(x, y)" in
  let got, stats = Red.model_check ~oracle:Red.exact_oracle g phi in
  check "no isolated vertex on a path" false got;
  match stats.Red.representative_sets with
  | t :: _ -> check "top-level T small" true (t <= 6)
  | [] -> Alcotest.fail "no representative set recorded"

let test_sentence_guard () =
  check "free variables rejected" true
    (try
       ignore
         (Red.model_check ~oracle:Red.exact_oracle (Gen.path 3)
            (Fo.Parser.parse "E(x, y)"));
       false
     with Invalid_argument _ -> true)

let test_boolean_glue () =
  let g = Gen.cycle 5 in
  let t = Fo.Parser.parse "exists x. exists y. E(x, y)" in
  let f = Fo.Parser.parse "exists x. forall y. E(x, y)" in
  let and_phi = Fo.Formula.and_ [ t; Fo.Formula.not_ f ] in
  let got, _ = Red.model_check ~oracle:Red.exact_oracle g and_phi in
  check "boolean combination" true got

let test_general_l_small () =
  (* the disjoint-copies construction, on tiny instances *)
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun src ->
          let phi = Fo.Parser.parse src in
          let expected = E.sentence g phi in
          let got, _ =
            Red.model_check ~general_l:true ~oracle_ell:1 ~locality_radius:2
              ~oracle:Red.exact_oracle g phi
          in
          if got <> expected then
            Alcotest.failf "general-L reduction wrong on %s |= %s" gname src)
        [
          "exists x. exists y. E(x, y)";
          "exists x. forall y. ~ E(x, y)";
          "exists x. Red(x)";
        ])
    [
      ("P4", Gen.path 4);
      ("K3", Gen.clique 3);
      ( "coloured-P4",
        Graph.with_colors (Gen.path 4) [ ("Red", [ 2 ]) ] );
      ("P2+P1", Graph.create ~n:3 ~edges:[ (0, 1) ] ~colors:[]);
    ]

let test_oracle_respects_ell_zero () =
  (* with ell = 0 the exact oracle must return a parameterless
     hypothesis, as Claim 8 requires *)
  let g = Gen.path 5 in
  let h =
    Red.exact_oracle g [ ([| 0 |], false); ([| 2 |], true) ] ~ell:0 ~q:1
      ~eps:0.25
  in
  check "no parameters" true (Folearn.Hypothesis.ell h = 0)

let test_claim8_separation () =
  (* Claim 8: when the types differ, the oracle's answer separates the
     two vertices *)
  let g = Graph.with_colors (Gen.path 6) [ ("Red", [ 0 ]) ] in
  (* vertices 0 (red endpoint) and 3 (plain middle) differ at rank 0 *)
  let h =
    Red.exact_oracle g [ ([| 0 |], false); ([| 3 |], true) ] ~ell:0 ~q:0
      ~eps:0.25
  in
  check "separates" true
    ((not (Folearn.Hypothesis.predict h [| 0 |]))
    && Folearn.Hypothesis.predict h [| 3 |])

let test_gamma_general_separates () =
  (* the general form of Claim 8: when rank-q types differ, the
     disjoint-copies construction yields a separator with gamma(u) = 0,
     gamma(v) = 1, even though the oracle may use a parameter *)
  let g = Graph.with_colors (Gen.path 6) [ ("Red", [ 0 ]) ] in
  let cases = [ (0, 3, 0); (0, 5, 0); (1, 3, 1) ] in
  List.iter
    (fun (u, v, q) ->
      (* ensure the premise: types really differ at rank q *)
      check "premise" true (not (Modelcheck.Ef.equiv ~q g [| u |] g [| v |]));
      let gamma =
        Red.gamma_general ~oracle:Red.exact_oracle ~oracle_ell:1 ~radius:2 ~q
          g u v ()
      in
      check "gamma(u) = 0" false (gamma.Red.g_holds u);
      check "gamma(v) = 1" true (gamma.Red.g_holds v))
    cases

let test_gamma_general_counts_calls () =
  let counter = ref 0 in
  let g = Gen.path 4 in
  ignore
    (Red.gamma_general ~counter ~oracle:Red.exact_oracle ~oracle_ell:1
       ~radius:2 ~q:1 g 0 1 ());
  check "one oracle call" true (!counter = 1)

(* Theorem 1 composed with Theorem 2: model checking on a nowhere dense
   graph using the Theorem 13 learner itself as the ERM oracle.  The
   reduction only needs the oracle to be correct when a consistent
   hypothesis exists (Remark 10), which the nd guarantee with
   eps = 1/4 < 1/2 delivers. *)
let nd_oracle g lam ~ell ~q ~eps =
  let cls = Splitter.Nowhere_dense.of_graph "oracle" g in
  let cfg =
    {
      (Folearn.Erm_nd.default_config ~epsilon:(max eps 0.01) ~radius:1
         ~branch_width:8 ~k:1 ~ell_star:(max ell 1) ~q_star:q cls)
      with
      Folearn.Erm_nd.max_rounds = Some (if ell = 0 then 0 else 4);
    }
  in
  (Folearn.Erm_nd.solve cfg g lam).Folearn.Erm_nd.hypothesis

let test_full_stack_composition () =
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun src ->
          let phi = Fo.Parser.parse src in
          let direct = E.sentence g phi in
          let via, _ = Red.model_check ~oracle:nd_oracle g phi in
          if via <> direct then
            Alcotest.failf "Theorem1∘Theorem2 wrong on %s |= %s" gname src)
        [
          "exists x. Red(x) /\\ exists y. E(x, y)";
          "forall x. exists y. E(x, y)";
          "exists x. forall y. ~ E(x, y)";
        ])
    [
      ( "tree10",
        Graph.with_colors (Gen.random_tree ~seed:4 10) [ ("Red", [ 2; 7 ]) ] );
      ("P8", Graph.with_colors (Gen.path 8) [ ("Red", [ 0 ]) ]);
    ]

(* Remark 10: the reduction only uses oracle answers when a consistent
   hypothesis exists (the realisable case).  A sloppy oracle that returns
   garbage whenever eps* > 0 must not change any answer. *)
let sloppy_oracle g lam ~ell ~q ~eps =
  let exact = Red.exact_oracle g lam ~ell ~q ~eps in
  if Folearn.Hypothesis.training_error exact lam > 0.0 then
    (* garbage: reject everything *)
    Folearn.Hypothesis.constantly g ~k:1 false
  else exact

let test_remark10_realisable_only () =
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun src ->
          let phi = Fo.Parser.parse src in
          let expected = E.sentence g phi in
          let got, _ = Red.model_check ~oracle:sloppy_oracle g phi in
          if got <> expected then
            Alcotest.failf "Remark 10 violated on %s |= %s" gname src)
        corpus_sentences)
    corpus_graphs

let reduction_random_agreement =
  QCheck.Test.make ~name:"reduction agrees with direct MC (random graphs)"
    ~count:12
    QCheck.(int_range 0 400)
    (fun seed ->
      let g =
        Gen.colored ~seed ~colors:[ "Red" ]
          (Gen.gnp ~seed:(seed + 9) ~n:6 ~p:0.35)
      in
      let st = Random.State.make [| seed; 0xbd |] in
      (* random sentence of rank <= 2: close a random rank-2 formula *)
      let body = Test_formula.gen_formula [ "x" ] 2 st in
      let phi = Fo.Formula.forall "x" body in
      let expected = E.sentence g phi in
      let got, _ = Red.model_check ~oracle:Red.exact_oracle g phi in
      got = expected)

let suite =
  [
    Alcotest.test_case "agrees with direct MC" `Quick test_agrees_with_direct;
    Alcotest.test_case "stats populated" `Quick test_stats_populated;
    Alcotest.test_case "representatives compress" `Quick
      test_representatives_cover_types;
    Alcotest.test_case "sentence guard" `Quick test_sentence_guard;
    Alcotest.test_case "boolean glue" `Quick test_boolean_glue;
    Alcotest.test_case "general-L construction" `Slow test_general_l_small;
    Alcotest.test_case "oracle honours ell=0" `Quick test_oracle_respects_ell_zero;
    Alcotest.test_case "Claim 8 separation" `Quick test_claim8_separation;
    Alcotest.test_case "Claim 8 general form" `Quick test_gamma_general_separates;
    Alcotest.test_case "gamma counts calls" `Quick test_gamma_general_counts_calls;
    Alcotest.test_case "Theorem 1 with the Theorem 13 oracle" `Slow
      test_full_stack_composition;
    Alcotest.test_case "Remark 10: realisable-only oracle suffices" `Quick
      test_remark10_realisable_only;
    QCheck_alcotest.to_alcotest reduction_random_agreement;
  ]
