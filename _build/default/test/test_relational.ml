(* Tests for relational structures, their graph encoding, and the query
   translation (the paper's "relational structures can be coded as
   graphs" claim, Section 2). *)

open Cgraph
module R = Modelcheck.Relational
module E = Modelcheck.Eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a small movie database: Likes(person, movie), DirectedBy(movie, dir) *)
(* elements: 0,1,2 = persons; 3,4,5 = movies; 6,7 = directors *)
let movies =
  R.create ~n:8
    ~relations:
      [
        ("Likes", 2, [ [| 0; 3 |]; [| 0; 4 |]; [| 1; 4 |]; [| 2; 5 |] ]);
        ("DirectedBy", 2, [ [| 3; 6 |]; [| 4; 6 |]; [| 5; 7 |] ]);
        ("Person", 1, [ [| 0 |]; [| 1 |]; [| 2 |] ]);
      ]

let test_create_guards () =
  let fails f = try ignore (f ()); false with R.Ill_formed _ -> true in
  check "arity mismatch" true
    (fails (fun () -> R.create ~n:3 ~relations:[ ("R", 2, [ [| 0 |] ]) ]));
  check "out of range" true
    (fails (fun () -> R.create ~n:2 ~relations:[ ("R", 1, [ [| 5 |] ]) ]));
  check "duplicate relation" true
    (fails (fun () ->
         R.create ~n:2 ~relations:[ ("R", 1, []); ("R", 1, []) ]));
  check "zero arity rejected" true
    (fails (fun () -> R.create ~n:2 ~relations:[ ("R", 0, []) ]))

let test_structure_accessors () =
  check_int "universe" 8 (List.length (R.universe movies));
  Alcotest.(check (list string))
    "relations" [ "DirectedBy"; "Likes"; "Person" ]
    (R.relation_names movies);
  check_int "arity" 2 (R.arity movies "Likes");
  check "holds" true (R.holds movies "Likes" [| 1; 4 |]);
  check "not holds" false (R.holds movies "Likes" [| 1; 3 |]);
  check "unknown relation" false (R.holds movies "Nope" [| 0 |])

let test_eval_queries () =
  (* "x likes a movie directed by y" *)
  let q =
    R.RExists
      ( "m",
        R.RAnd [ R.RAtom ("Likes", [ "x"; "m" ]); R.RAtom ("DirectedBy", [ "m"; "y" ]) ]
      )
  in
  check "alice likes a film by 6" true (R.eval movies [ ("x", 0); ("y", 6) ] q);
  check "carol does not like films by 6" false
    (R.eval movies [ ("x", 2); ("y", 6) ] q);
  check "carol likes a film by 7" true (R.eval movies [ ("x", 2); ("y", 7) ] q);
  (* sentences *)
  check "every person likes something" true
    (R.eval movies []
       (R.RForall
          ( "p",
            R.RNot (R.RAtom ("Person", [ "p" ]))
            |> fun neg ->
            R.ROr [ neg; R.RExists ("m", R.RAtom ("Likes", [ "p"; "m" ])) ] )))

let test_encoding_shape () =
  let enc = R.encode movies in
  (* 8 elements + 10 facts, each with 1 fact vertex + arity connectors:
     Likes: 4*(1+2)=12, DirectedBy: 3*(1+2)=9, Person: 3*(1+1)=6 *)
  check_int "order" (8 + 12 + 9 + 6) (Graph.order enc.R.graph);
  check "elements coloured" true
    (List.for_all
       (fun a -> Graph.has_color enc.R.graph "_Elem" (enc.R.element a))
       (R.universe movies));
  (* fact vertices exist *)
  check_int "Likes fact vertices" 4
    (List.length (Graph.color_class enc.R.graph "_Rel_Likes"));
  (* degree bound: 2 per fact occurrence for elements, 2*arity for fact
     vertices, 2 for connectors *)
  check "bounded degree" true (Graph.max_degree enc.R.graph <= 8)

let test_translate_atom () =
  let enc = R.encode movies in
  let f = R.translate (R.RAtom ("Likes", [ "x"; "y" ])) in
  List.iter
    (fun (a, b) ->
      let expected = R.holds movies "Likes" [| a; b |] in
      let got =
        E.holds enc.R.graph
          [ ("x", enc.R.element a); ("y", enc.R.element b) ]
          f
      in
      if got <> expected then Alcotest.failf "translation wrong at (%d,%d)" a b)
    [ (0, 3); (0, 4); (1, 4); (1, 3); (2, 5); (5, 2); (0, 0) ]

let test_translate_repeated_vars () =
  (* self-loop atom: R(x, x) *)
  let s = R.create ~n:3 ~relations:[ ("R", 2, [ [| 0; 0 |]; [| 1; 2 |] ]) ] in
  let enc = R.encode s in
  let f = R.translate (R.RAtom ("R", [ "x"; "x" ])) in
  check "diagonal fact found" true (E.holds enc.R.graph [ ("x", 0) ] f);
  check "off-diagonal rejected" false (E.holds enc.R.graph [ ("x", 1) ] f)

let random_structure seed =
  let st = Random.State.make [| seed; 0x4e1 |] in
  let n = 3 + Random.State.int st 4 in
  let random_facts arity count =
    List.init count (fun _ ->
        Array.init arity (fun _ -> Random.State.int st n))
  in
  R.create ~n
    ~relations:
      [
        ("R", 2, random_facts 2 (Random.State.int st 6));
        ("S", 1, random_facts 1 (Random.State.int st 4));
        ("T", 3, random_facts 3 (Random.State.int st 3));
      ]

let rec random_query vars depth st =
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  if depth = 0 || Random.State.int st 3 = 0 then
    match Random.State.int st 4 with
    | 0 -> R.RAtom ("R", [ pick vars; pick vars ])
    | 1 -> R.RAtom ("S", [ pick vars ])
    | 2 -> R.RAtom ("T", [ pick vars; pick vars; pick vars ])
    | _ -> R.REq (pick vars, pick vars)
  else begin
    match Random.State.int st 5 with
    | 0 -> R.RNot (random_query vars (depth - 1) st)
    | 1 -> R.RAnd [ random_query vars (depth - 1) st; random_query vars (depth - 1) st ]
    | 2 -> R.ROr [ random_query vars (depth - 1) st; random_query vars (depth - 1) st ]
    | 3 ->
        let v = Printf.sprintf "b%d" (Random.State.int st 2) in
        R.RExists (v, random_query (v :: vars) (depth - 1) st)
    | _ ->
        let v = Printf.sprintf "b%d" (Random.State.int st 2) in
        R.RForall (v, random_query (v :: vars) (depth - 1) st)
  end

let translation_correspondence =
  QCheck.Test.make
    ~name:"query answers correspond through the encoding (random)" ~count:60
    QCheck.(int_range 0 5000)
    (fun seed ->
      let s = random_structure seed in
      let st = Random.State.make [| seed; 0x9e |] in
      let q = random_query [ "x" ] 3 st in
      let enc = R.encode s in
      let f = R.translate q in
      List.for_all
        (fun a ->
          R.eval s [ ("x", a) ] q
          = E.holds enc.R.graph [ ("x", enc.R.element a) ] f)
        (R.universe s))

let test_learning_over_database () =
  (* end-to-end: label person pairs by a relational query, learn over the
     encoded graph, recover the labels *)
  let enc = R.encode movies in
  let target =
    R.translate
      (R.RExists
         ( "m",
           R.RAnd
             [ R.RAtom ("Likes", [ "x1"; "m" ]); R.RAtom ("Likes", [ "x2"; "m" ]) ]
         ))
  in
  let persons = [ 0; 1; 2 ] in
  let pairs =
    List.concat_map
      (fun a -> List.map (fun b -> [| enc.R.element a; enc.R.element b |]) persons)
      persons
  in
  let lam =
    Folearn.Sample.label_with_query enc.R.graph ~formula:target
      ~xvars:[ "x1"; "x2" ] pairs
  in
  check "some positive" true (Folearn.Sample.positives lam <> []);
  check "some negative" true (Folearn.Sample.negatives lam <> []);
  let r = Folearn.Erm_brute.solve enc.R.graph ~k:2 ~ell:0 ~q:3 lam in
  Alcotest.(check (float 1e-9)) "learned the join query" 0.0 r.Folearn.Erm_brute.err

let suite =
  [
    Alcotest.test_case "create guards" `Quick test_create_guards;
    Alcotest.test_case "accessors" `Quick test_structure_accessors;
    Alcotest.test_case "eval queries" `Quick test_eval_queries;
    Alcotest.test_case "encoding shape" `Quick test_encoding_shape;
    Alcotest.test_case "translate atom" `Quick test_translate_atom;
    Alcotest.test_case "repeated variables" `Quick test_translate_repeated_vars;
    Alcotest.test_case "learning over a database" `Slow test_learning_over_database;
    QCheck_alcotest.to_alcotest translation_correspondence;
  ]
