(* Tests for the splitter game engine and strategies. *)

open Cgraph
module G = Splitter.Game
module S = Splitter.Strategy
module Nd = Splitter.Nowhere_dense

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p9 = Gen.path 9

let test_start_state () =
  let st = G.start p9 ~r:2 in
  check_int "arena is the graph" 9 (Graph.order (G.arena st));
  check_int "no rounds yet" 0 (G.rounds_played st);
  check "not won" false (G.is_won st);
  check_int "identity embedding" 4 (G.to_original st 4)

let test_one_round () =
  let st = G.start p9 ~r:2 in
  (* Connector picks 4; ball = {2..6}; Splitter answers 4 *)
  let st' = G.play st ~connector:4 ~splitter:4 in
  check_int "arena shrinks to ball minus answer" 4 (Graph.order (G.arena st'));
  check_int "one round played" 1 (G.rounds_played st');
  (* remaining original vertices are {2,3,5,6} *)
  let originals =
    List.map (G.to_original st') (Graph.vertices (G.arena st'))
    |> List.sort compare
  in
  Alcotest.(check (list int)) "remaining" [ 2; 3; 5; 6 ] originals

let test_illegal_moves () =
  let st = G.start p9 ~r:2 in
  check "answer outside ball" true
    (try
       ignore (G.play st ~connector:0 ~splitter:8);
       false
     with G.Illegal_move _ -> true);
  check "oversized radius" true
    (try
       ignore (G.play ~radius':5 st ~connector:0 ~splitter:0);
       false
     with G.Illegal_move _ -> true);
  check "reduced radius fine" true
    (ignore (G.play ~radius':1 st ~connector:4 ~splitter:4);
     true)

let test_game_over_detection () =
  let single = Gen.path 1 in
  let st = G.start single ~r:1 in
  let st' = G.play st ~connector:0 ~splitter:0 in
  check "won after removing the only vertex" true (G.is_won st');
  check "playing after the end raises" true
    (try
       ignore (G.play st' ~connector:0 ~splitter:0);
       false
     with G.Illegal_move _ -> true)

let test_splitter_wins_path () =
  match
    G.play_out p9 ~r:2 ~connector:(S.connector_max_ball ~r:2)
      ~splitter:S.min_max_component
  with
  | Some rounds -> check "wins within 5 rounds on P9" true (rounds <= 5)
  | None -> Alcotest.fail "Splitter lost on a path"

let test_splitter_wins_tree () =
  let t = Gen.random_tree ~seed:5 40 in
  List.iter
    (fun r ->
      match
        G.play_out t ~r ~connector:S.connector_max_ecc
          ~splitter:S.best_heuristic
      with
      | Some rounds -> check "wins on tree" true (rounds <= 2 * r + 6)
      | None -> Alcotest.fail "Splitter lost on a tree")
    [ 1; 2 ]

let test_trace () =
  let tr =
    G.trace p9 ~r:2 ~connector:(S.connector_random ~seed:3)
      ~splitter:S.min_max_component
  in
  check "trace nonempty" true (List.length tr >= 1);
  check "arena sizes decrease to zero" true
    (match List.rev tr with (_, _, last) :: _ -> last = 0 | [] -> false)

let test_minimax_star () =
  (* star: Splitter takes the centre; remaining isolated leaves die in one
     more round each... in fact after removing the centre every leaf is
     isolated, balls are singletons: ball of leaf = {leaf}, remove it;
     but Connector picks only one leaf per round, so value is larger on
     raw stars — on K1 it's 1. *)
  check_int "single vertex" 1 (Option.get (S.minimax_rounds (Gen.path 1) ~r:1));
  check_int "edge" 2 (Option.get (S.minimax_rounds (Gen.path 2) ~r:1))

let test_minimax_matches_heuristic_on_small () =
  let g = Gen.path 5 in
  let exact = Option.get (S.minimax_rounds ~cap:6 g ~r:1) in
  (match
     G.play_out g ~r:1 ~connector:(S.connector_max_ball ~r:1)
       ~splitter:S.min_max_component
   with
  | Some h -> check "heuristic within exact bound" true (h >= exact)
  | None -> Alcotest.fail "heuristic lost");
  check "exact small" true (exact <= 3)

let test_minimax_move () =
  (* on P5 with r=1 the optimal first answer to a middle pick exists and
     playing optimally meets the exact game value *)
  let g = Gen.path 5 in
  (match S.minimax_move ~cap:6 g ~r:1 ~connector:2 with
  | Some w -> check "answer inside the ball" true (List.mem w [ 1; 2; 3 ])
  | None -> Alcotest.fail "P5 is winnable");
  let exact = Option.get (S.minimax_rounds ~cap:6 g ~r:1) in
  (match
     G.play_out g ~r:1 ~connector:(S.connector_max_ball ~r:1)
       ~splitter:(S.optimal ~cap:6)
   with
  | Some rounds -> check "optimal play achieves the game value" true (rounds <= exact)
  | None -> Alcotest.fail "optimal splitter lost");
  (* optimal never worse than the heuristic on tiny graphs *)
  List.iter
    (fun (name, g) ->
      let rounds strat =
        match
          G.play_out ~max_rounds:10 g ~r:1
            ~connector:(S.connector_max_ball ~r:1) ~splitter:strat
        with
        | Some v -> v
        | None -> 99
      in
      if rounds (S.optimal ~cap:6) > rounds S.best_heuristic then
        Alcotest.failf "optimal worse than heuristic on %s" name)
    [ ("P6", Gen.path 6); ("C5", Gen.cycle 5); ("star6", Gen.star 6) ]

let test_empirical_rounds () =
  match S.empirical_rounds p9 ~r:2 ~splitter:S.best_heuristic with
  | Some rounds -> check "battery bound" true (rounds <= 5)
  | None -> Alcotest.fail "lost against battery"

let test_estimate_s () =
  let s = S.estimate_s p9 ~r:2 ~splitter:S.best_heuristic in
  check "estimate positive and small" true (s >= 1 && s <= 6)

let test_descriptors () =
  check "forest bound" true (Nd.forests.Nd.s_bound p9 ~r:2 = 6);
  let d = Nd.of_graph "paths" p9 in
  check "empirical descriptor sane" true (d.Nd.s_bound p9 ~r:2 <= 7)

let test_dense_graph_resists () =
  (* On a clique with radius 1 the ball is everything; the arena loses one
     vertex per round: Splitter needs exactly n rounds. *)
  let k6 = Gen.clique 6 in
  match
    G.play_out k6 ~r:1 ~connector:(S.connector_max_ball ~r:1)
      ~splitter:S.best_heuristic
  with
  | Some rounds -> check_int "clique needs n rounds" 6 rounds
  | None -> Alcotest.fail "game should still terminate"

let splitter_always_wins_eventually =
  QCheck.Test.make ~name:"splitter heuristic wins on random sparse graphs"
    ~count:25
    QCheck.(pair (int_range 5 30) (int_range 1 2))
    (fun (n, r) ->
      let g = Gen.random_bounded_degree ~seed:(n * 7 + r) ~n ~d:3 in
      match
        G.play_out ~max_rounds:(n + 2) g ~r
          ~connector:(S.connector_random ~seed:n) ~splitter:S.best_heuristic
      with
      | Some _ -> true
      | None -> false)

let game_arena_monotone =
  QCheck.Test.make ~name:"arena never grows" ~count:25
    QCheck.(int_range 4 25)
    (fun n ->
      let g = Gen.random_tree ~seed:(n * 3) n in
      let tr =
        G.trace g ~r:2 ~connector:(S.connector_random ~seed:n)
          ~splitter:S.top_of_ball
      in
      let sizes = List.map (fun (_, _, s) -> s) tr in
      let rec decreasing = function
        | a :: (b :: _ as rest) -> a >= b && decreasing rest
        | _ -> true
      in
      decreasing sizes)

let suite =
  [
    Alcotest.test_case "start state" `Quick test_start_state;
    Alcotest.test_case "one round" `Quick test_one_round;
    Alcotest.test_case "illegal moves" `Quick test_illegal_moves;
    Alcotest.test_case "game over" `Quick test_game_over_detection;
    Alcotest.test_case "splitter wins path" `Quick test_splitter_wins_path;
    Alcotest.test_case "splitter wins tree" `Quick test_splitter_wins_tree;
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "minimax tiny" `Quick test_minimax_star;
    Alcotest.test_case "minimax vs heuristic" `Quick
      test_minimax_matches_heuristic_on_small;
    Alcotest.test_case "minimax move" `Quick test_minimax_move;
    Alcotest.test_case "empirical rounds" `Quick test_empirical_rounds;
    Alcotest.test_case "estimate s" `Quick test_estimate_s;
    Alcotest.test_case "class descriptors" `Quick test_descriptors;
    Alcotest.test_case "dense graphs resist" `Quick test_dense_graph_resists;
    QCheck_alcotest.to_alcotest splitter_always_wins_eventually;
    QCheck_alcotest.to_alcotest game_arena_monotone;
  ]
