(* Tests for the toolkit additions: graph I/O, random formula generation,
   prenex normal form, and the Lemma 14 centre set. *)

open Cgraph
module F = Fo.Formula
module E = Modelcheck.Eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Graph I/O                                                           *)
(* ------------------------------------------------------------------ *)

let test_io_roundtrip_basic () =
  let g =
    Graph.with_colors (Gen.cycle 5) [ ("Red", [ 0; 2 ]); ("Empty", []) ]
  in
  let g' = Io.of_string (Io.to_string g) in
  check "roundtrip" true (Graph.equal g g')

let test_io_parse () =
  let g = Io.of_string "# demo\nn 4\ne 0 1\ne 2 3 # trailing comment\nc Red 0 3\n" in
  check_int "order" 4 (Graph.order g);
  check "edge" true (Graph.mem_edge g 2 3);
  check "colour" true (Graph.has_color g "Red" 3)

let test_io_errors () =
  let fails s =
    try
      ignore (Io.of_string s);
      false
    with Io.Format_error _ -> true
  in
  check "missing n" true (fails "e 0 1\n");
  check "bad integer" true (fails "n 3\ne 0 x\n");
  check "out of range" true (fails "n 2\ne 0 5\n");
  check "unknown directive" true (fails "n 2\nz 1\n");
  check "bare c" true (fails "n 2\nc\n")

let test_io_file () =
  let path = Filename.temp_file "folearn" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let g = Gen.colored ~seed:4 ~colors:[ "A" ] (Gen.random_tree ~seed:2 12) in
      Io.save path g;
      check "file roundtrip" true (Graph.equal g (Io.load path)))

let io_roundtrip_random =
  QCheck.Test.make ~name:"I/O roundtrip (random coloured graphs)" ~count:40
    QCheck.(int_range 1 600)
    (fun seed ->
      let g =
        Gen.colored ~seed ~colors:[ "Red"; "B_2" ]
          (Gen.gnp ~seed:(seed + 1) ~n:(3 + (seed mod 12)) ~p:0.3)
      in
      Graph.equal g (Io.of_string (Io.to_string g)))

(* ------------------------------------------------------------------ *)
(* Genform                                                             *)
(* ------------------------------------------------------------------ *)

let test_genform_deterministic () =
  check "same seed" true
    (Fo.Genform.formula ~seed:5 () = Fo.Genform.formula ~seed:5 ());
  check "different seeds differ somewhere" true
    (List.exists
       (fun s -> Fo.Genform.formula ~seed:s () <> Fo.Genform.formula ~seed:0 ())
       [ 1; 2; 3; 4; 5 ])

let test_genform_respects_config () =
  let cfg =
    { Fo.Genform.default with Fo.Genform.free_vars = [ "x" ]; colors = [] }
  in
  List.iter
    (fun seed ->
      let f = Fo.Genform.formula ~config:cfg ~seed () in
      check "free vars within config" true
        (List.for_all (fun v -> v = "x") (F.free_vars f));
      check "no colours" true (F.colors_used f = []))
    [ 0; 10; 20; 30 ]

let test_genform_sentence_closed () =
  List.iter
    (fun seed ->
      check "sentence has no free vars" true
        (F.free_vars (Fo.Genform.sentence ~seed ()) = []))
    [ 1; 2; 3; 4; 5 ]

let test_genform_counting_flag () =
  let rec has_counting = function
    | F.CountGe _ -> true
    | F.Not f -> has_counting f
    | F.And fs | F.Or fs -> List.exists has_counting fs
    | F.Implies (a, b) | F.Iff (a, b) -> has_counting a || has_counting b
    | F.Exists (_, f) | F.Forall (_, f) -> has_counting f
    | _ -> false
  in
  let cfg = { Fo.Genform.default with Fo.Genform.allow_counting = true } in
  check "counting appears eventually" true
    (List.exists
       (fun seed -> has_counting (Fo.Genform.formula ~config:cfg ~seed ()))
       (List.init 40 Fun.id));
  check "counting off by default" true
    (List.for_all
       (fun seed -> not (has_counting (Fo.Genform.formula ~seed ())))
       (List.init 40 Fun.id))

let genform_parses =
  QCheck.Test.make ~name:"generated formulas survive pp/parse" ~count:80
    QCheck.(int_range 0 10000)
    (fun seed ->
      let cfg = { Fo.Genform.default with Fo.Genform.allow_counting = true } in
      let f = Fo.Genform.formula ~config:cfg ~seed () in
      Fo.Parser.parse_opt (F.to_string f) <> None)

(* ------------------------------------------------------------------ *)
(* Prenex                                                              *)
(* ------------------------------------------------------------------ *)

let test_prenex_shape () =
  let f =
    Fo.Parser.parse
      "(exists z. E(x, z)) /\\ (forall w. Red(w) -> exists u. E(w, u))"
  in
  let p = Fo.Prenex.to_prenex f in
  check "prenex shape" true (Fo.Prenex.is_prenex p);
  check "prefix counts all quantifiers" true (Fo.Prenex.prefix_length p = 3);
  check "original is not prenex" false (Fo.Prenex.is_prenex f)

let test_prenex_counting_rejected () =
  check "counting rejected" true
    (try
       ignore (Fo.Prenex.to_prenex (F.count_ge 2 "y" (F.edge "x" "y")));
       false
     with Fo.Prenex.Unsupported _ -> true)

let prenex_preserves_semantics =
  QCheck.Test.make ~name:"prenex preserves semantics" ~count:100
    QCheck.(int_range 0 10000)
    (fun seed ->
      let f = Fo.Genform.formula ~seed () in
      let p = Fo.Prenex.to_prenex f in
      Fo.Prenex.is_prenex p
      &&
      let g =
        Gen.colored ~seed:(seed + 3) ~colors:[ "Red"; "Blue" ]
          (Gen.gnp ~seed:(seed + 4) ~n:5 ~p:0.4)
      in
      List.for_all
        (fun vx ->
          List.for_all
            (fun vy ->
              let env = [ ("x", vx); ("y", vy) ] in
              E.holds g env f = E.holds g env p)
            [ 0; 2; 4 ])
        [ 1; 3 ])

(* ------------------------------------------------------------------ *)
(* Lemma 14 centre set                                                 *)
(* ------------------------------------------------------------------ *)

let test_centre_set_separation () =
  let g = Gen.path 40 in
  let critical = List.map (fun v -> [| v |]) [ 0; 10; 20; 30; 39 ] in
  let r = 1 in
  let xs = Folearn.Erm_nd.centre_set g ~r ~cap:10 ~critical in
  check "nonempty" true (xs <> []);
  (* pairwise separation > 4r+2 *)
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          if i < j && Bfs.dist g x y <= (4 * r) + 2 then
            Alcotest.failf "centres %d,%d too close" x y)
        xs)
    xs;
  (* every centre attends at least one critical tuple *)
  List.iter
    (fun x ->
      check "attends" true
        (List.exists
           (fun v -> Bfs.dist_tuple g [| x |] v <= (2 * r) + 1)
           critical))
    xs

let test_centre_set_cap () =
  let g = Gen.path 60 in
  let critical = List.map (fun v -> [| v |]) (List.init 60 Fun.id) in
  let xs = Folearn.Erm_nd.centre_set g ~r:1 ~cap:3 ~critical in
  check "cap respected" true (List.length xs <= 3)

let centre_set_property =
  QCheck.Test.make ~name:"Lemma 14 centre set properties (random trees)"
    ~count:30
    QCheck.(pair (int_range 8 40) (int_range 1 2))
    (fun (n, r) ->
      let g = Gen.random_tree ~seed:(n + r) n in
      let st = Random.State.make [| n; r |] in
      let critical =
        List.init (1 + Random.State.int st 8) (fun _ ->
            [| Random.State.int st n |])
      in
      let xs = Folearn.Erm_nd.centre_set g ~r ~cap:20 ~critical in
      (* separation *)
      List.for_all
        (fun x ->
          List.for_all
            (fun y -> x = y || Bfs.dist g x y > (4 * r) + 2)
            xs)
        xs
      (* coverage: anything that attends critical tuples is within
         4r+2 of some chosen centre (else greedy would have taken it) *)
      && List.for_all
           (fun u ->
             (not
                (List.exists
                   (fun v -> Bfs.dist_tuple g [| u |] v <= (2 * r) + 1)
                   critical))
             || List.exists (fun x -> Bfs.dist g u x <= (4 * r) + 2) xs)
           (Graph.vertices g))

let suite =
  [
    Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip_basic;
    Alcotest.test_case "io parse" `Quick test_io_parse;
    Alcotest.test_case "io errors" `Quick test_io_errors;
    Alcotest.test_case "io file" `Quick test_io_file;
    Alcotest.test_case "genform deterministic" `Quick test_genform_deterministic;
    Alcotest.test_case "genform config" `Quick test_genform_respects_config;
    Alcotest.test_case "genform sentences" `Quick test_genform_sentence_closed;
    Alcotest.test_case "genform counting flag" `Quick test_genform_counting_flag;
    Alcotest.test_case "prenex shape" `Quick test_prenex_shape;
    Alcotest.test_case "prenex rejects counting" `Quick
      test_prenex_counting_rejected;
    Alcotest.test_case "centre set separation" `Quick test_centre_set_separation;
    Alcotest.test_case "centre set cap" `Quick test_centre_set_cap;
    QCheck_alcotest.to_alcotest io_roundtrip_random;
    QCheck_alcotest.to_alcotest genform_parses;
    QCheck_alcotest.to_alcotest prenex_preserves_semantics;
    QCheck_alcotest.to_alcotest centre_set_property;
  ]
