(* Tests for the tree side of the MSO subsystem: trees, bottom-up tree
   automata, MSO-on-trees compilation (cross-checked against direct
   semantics), and the per-node preprocessing oracle of [19]. *)

module T = Mso.Tree
module Ta = Mso.Tree_automaton
module Tf = Mso.Tree_formula
module Tl = Mso.Tree_learner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a fixed small tree over sigma = 2:
         1
        / \
       0   1
       |  / \
       1 0   0        preorder: 0:1  1:0  2:1  3:1  4:0  5:0        *)
let t0 =
  T.Binary (1, T.Unary (0, T.Leaf 1), T.Binary (1, T.Leaf 0, T.Leaf 0))

let all_trees_up_to sigma max_size =
  (* all trees with <= max_size nodes (small sigma/size only) *)
  let rec of_size s =
    if s <= 0 then []
    else if s = 1 then List.init sigma (fun a -> T.Leaf a)
    else begin
      let unaries =
        List.concat_map
          (fun c -> List.init sigma (fun a -> T.Unary (a, c)))
          (of_size (s - 1))
      in
      let binaries =
        List.concat_map
          (fun left_size ->
            List.concat_map
              (fun l ->
                List.concat_map
                  (fun r -> List.init sigma (fun a -> T.Binary (a, l, r)))
                  (of_size (s - 1 - left_size)))
              (of_size left_size))
          (List.init (s - 2) (fun i -> i + 1))
      in
      unaries @ binaries
    end
  in
  List.concat_map of_size (List.init max_size (fun i -> i + 1))

(* ------------------------------------------------------------------ *)
(* Trees                                                               *)
(* ------------------------------------------------------------------ *)

let test_tree_basics () =
  check_int "size" 6 (T.size t0);
  check_int "depth" 3 (T.depth t0);
  check_int "root label" 1 (T.label t0);
  Alcotest.(check (list (pair int int)))
    "preorder nodes"
    [ (0, 1); (1, 0); (2, 1); (3, 1); (4, 0); (5, 0) ]
    (T.nodes t0)

let test_tree_navigation () =
  check "parent of root" true (T.parent t0 0 = None);
  check "parent of 2" true (T.parent t0 2 = Some 1);
  check "parent of 4" true (T.parent t0 4 = Some 3);
  Alcotest.(check (list int)) "children of root" [ 1; 3 ] (T.children t0 0);
  Alcotest.(check (list int)) "children of leaf" [] (T.children t0 5);
  check "subtree at 3" true (T.subtree t0 3 = T.Binary (1, T.Leaf 0, T.Leaf 0))

let test_tree_relabel () =
  let t = T.relabel t0 2 (fun a -> a + 10) in
  check "only node 2 changed" true
    (T.nodes t = [ (0, 1); (1, 0); (2, 11); (3, 1); (4, 0); (5, 0) ])

let test_tree_random () =
  List.iter
    (fun s ->
      let t = T.random ~seed:s ~sigma:3 ~size:17 in
      check_int "exact size" 17 (T.size t);
      T.check_labels ~sigma:3 t)
    [ 1; 2; 3 ]

let test_tree_parse () =
  check "roundtrip fixed" true (T.of_string (T.to_string t0) = t0);
  check "leaf" true (T.of_string "7" = T.Leaf 7);
  check "unary" true (T.of_string "1(0)" = T.Unary (1, T.Leaf 0));
  check "whitespace ok" true
    (T.of_string " 1( 0 , 2 ) " = T.Binary (1, T.Leaf 0, T.Leaf 2));
  List.iter
    (fun bad ->
      check (Printf.sprintf "rejects %S" bad) true
        (try
           ignore (T.of_string bad);
           false
         with T.Parse_error _ -> true))
    [ ""; "1("; "1(0,)"; "1(0,1,2)"; "x"; "1)2" ]

let tree_parse_roundtrip =
  QCheck.Test.make ~name:"tree term syntax round-trips" ~count:50
    QCheck.(int_range 0 2000)
    (fun seed ->
      let t = T.random ~seed ~sigma:4 ~size:(1 + (seed mod 25)) in
      T.of_string (T.to_string t) = t)

(* ------------------------------------------------------------------ *)
(* Tree automata                                                       *)
(* ------------------------------------------------------------------ *)

(* parity of the number of 1-labelled nodes *)
let parity_ta =
  Ta.create ~states:2 ~alphabet:2
    ~leaf:[| 0; 1 |]
    ~unary:[| [| 0; 1 |]; [| 1; 0 |] |]
    ~binary:
      [|
        [| [| 0; 1 |]; [| 1; 0 |] |];
        [| [| 1; 0 |]; [| 0; 1 |] |];
      |]
    ~accept:[| true; false |]

let count_ones t =
  List.length (List.filter (fun (_, a) -> a = 1) (T.nodes t))

let test_ta_run () =
  check "t0 has 3 ones -> odd" false (Ta.accepts parity_ta t0);
  check "leaf 0 even" true (Ta.accepts parity_ta (T.Leaf 0));
  List.iter
    (fun t ->
      check "parity semantics" true
        (Ta.accepts parity_ta t = (count_ones t mod 2 = 0)))
    (all_trees_up_to 2 4)

let test_ta_boolean () =
  (* root label is 1 *)
  let root1 =
    Ta.create ~states:2 ~alphabet:2 ~leaf:[| 0; 1 |]
      ~unary:[| [| 0; 1 |]; [| 0; 1 |] |]
      ~binary:
        [|
          [| [| 0; 1 |]; [| 0; 1 |] |];
          [| [| 0; 1 |]; [| 0; 1 |] |];
        |]
      ~accept:[| false; true |]
  in
  List.iter
    (fun t ->
      check "complement" true
        (Ta.accepts (Ta.complement parity_ta) t = not (Ta.accepts parity_ta t));
      check "intersection" true
        (Ta.accepts (Ta.product parity_ta root1 ~mode:`Inter) t
        = (Ta.accepts parity_ta t && Ta.accepts root1 t));
      check "union" true
        (Ta.accepts (Ta.product parity_ta root1 ~mode:`Union) t
        = (Ta.accepts parity_ta t || Ta.accepts root1 t)))
    (all_trees_up_to 2 4)

let test_ta_minimize () =
  let bloated = Ta.product parity_ta parity_ta ~mode:`Inter in
  let m = Ta.minimize bloated in
  check_int "minimal states" 2 m.Ta.states;
  check "language preserved" true (Ta.equal_language m parity_ta);
  check "emptiness" true
    (Ta.is_empty (Ta.product parity_ta (Ta.complement parity_ta) ~mode:`Inter))

(* ------------------------------------------------------------------ *)
(* MSO on trees                                                        *)
(* ------------------------------------------------------------------ *)

let tree_sentences =
  [
    ( "some node labelled 1",
      Tf.ExistsPos ("x", Tf.Label (1, "x")),
      fun t -> List.exists (fun (_, a) -> a = 1) (T.nodes t) );
    ( "all nodes labelled 1",
      Tf.ForallPos ("x", Tf.Label (1, "x")),
      fun t -> List.for_all (fun (_, a) -> a = 1) (T.nodes t) );
    ( "a 0-node with a 1-first-child",
      Tf.ExistsPos
        ( "x",
          Tf.ExistsPos
            ( "y",
              Tf.And
                [ Tf.Child1 ("x", "y"); Tf.Label (0, "x"); Tf.Label (1, "y") ]
            ) ),
      fun t ->
        List.exists
          (fun (id, a) ->
            a = 0
            && match T.children t id with
               | c :: _ -> List.assoc c (T.nodes t) = 1
               | [] -> false)
          (T.nodes t) );
    ( "some leaf",
      Tf.ExistsPos ("x", Tf.Not (Tf.ExistsPos ("y", Tf.Child1 ("x", "y")))),
      fun _ -> true );
    ( "root is binary with equal-labelled children",
      Tf.ExistsPos
        ( "r",
          Tf.And
            [
              Tf.Not (Tf.ExistsPos ("p", Tf.Or [ Tf.Child1 ("p", "r"); Tf.Child2 ("p", "r") ]));
              Tf.ExistsPos
                ( "l",
                  Tf.ExistsPos
                    ( "rr",
                      Tf.And
                        [
                          Tf.Child1 ("r", "l");
                          Tf.Child2 ("r", "rr");
                          Tf.Or
                            [
                              Tf.And [ Tf.Label (0, "l"); Tf.Label (0, "rr") ];
                              Tf.And [ Tf.Label (1, "l"); Tf.Label (1, "rr") ];
                            ];
                        ] ) );
            ] ),
      fun t ->
        match t with
        | T.Binary (_, l, r) -> T.label l = T.label r
        | _ -> false );
  ]

let test_tree_mso_sentences () =
  List.iter
    (fun (name, phi, semantics) ->
      let ta = Tf.compile ~sigma:2 ~scope:[] phi in
      List.iter
        (fun t ->
          let direct = Tf.eval ~tree:t Tf.empty_assignment phi in
          let via = Ta.accepts ta t in
          let expected = semantics t in
          if direct <> expected then
            Alcotest.failf "%s: direct semantics wrong (tree %s)" name
              (Format.asprintf "%a" T.pp t);
          if via <> expected then
            Alcotest.failf "%s: compiled automaton wrong (tree %s)" name
              (Format.asprintf "%a" T.pp t))
        (all_trees_up_to 2 4))
    tree_sentences

let test_tree_mso_free_var () =
  (* phi(x) = "x is labelled 1 and has a first child labelled 0" *)
  let phi =
    Tf.And
      [
        Tf.Label (1, "x");
        Tf.ExistsPos ("y", Tf.And [ Tf.Child1 ("x", "y"); Tf.Label (0, "y") ]);
      ]
  in
  let scope = [ ("x", Tf.Pos) ] in
  let ta = Tf.compile ~sigma:2 ~scope phi in
  List.iter
    (fun t ->
      List.iter
        (fun (id, _) ->
          let asg = { Tf.pos = [ ("x", id) ]; sets = [] } in
          if
            Tf.eval ~tree:t asg phi
            <> Tf.holds_compiled ~sigma:2 ~scope ta t asg
          then Alcotest.failf "free-var mismatch at node %d" id)
        (T.nodes t))
    (all_trees_up_to 2 4)

let test_tree_shadowing () =
  let phi =
    Tf.And
      [ Tf.Label (1, "x");
        Tf.ExistsPos ("p", Tf.ForallPos ("p", Tf.Not (Tf.EqPos ("x", "p")))) ]
  in
  let scope = [ ("x", Tf.Pos) ] in
  let ta = Tf.compile ~sigma:2 ~scope phi in
  List.iter
    (fun t ->
      List.iter
        (fun (id, _) ->
          let asg = { Tf.pos = [ ("x", id) ]; sets = [] } in
          if
            Tf.eval ~tree:t asg phi
            <> Tf.holds_compiled ~sigma:2 ~scope ta t asg
          then Alcotest.failf "tree shadowing broken at node %d" id)
        (T.nodes t))
    (all_trees_up_to 2 3)

let test_tree_mso_sets () =
  (* "there is a set containing the root and closed under first children"
     - trivially true (take all nodes); and its negation false *)
  let phi =
    Tf.ExistsSet
      ( "X",
        Tf.And
          [
            Tf.ExistsPos
              ( "r",
                Tf.And
                  [
                    Tf.Not
                      (Tf.ExistsPos
                         ("p", Tf.Or [ Tf.Child1 ("p", "r"); Tf.Child2 ("p", "r") ]));
                    Tf.Mem ("r", "X");
                  ] );
            Tf.ForallPos
              ( "u",
                Tf.ForallPos
                  ( "v",
                    Tf.Or
                      [
                        Tf.Not (Tf.And [ Tf.Mem ("u", "X"); Tf.Child1 ("u", "v") ]);
                        Tf.Mem ("v", "X");
                      ] ) );
          ] )
  in
  let ta = Tf.compile ~sigma:2 ~scope:[] phi in
  List.iter
    (fun t ->
      check "set sentence holds everywhere" true (Ta.accepts ta t);
      check "direct agrees" true (Tf.eval ~tree:t Tf.empty_assignment phi))
    (all_trees_up_to 2 3)

(* ------------------------------------------------------------------ *)
(* Concrete syntax for tree formulas                                   *)
(* ------------------------------------------------------------------ *)

module Tp = Mso.Tree_parser

let test_tree_formula_parser () =
  let labels = [ "a"; "b" ] in
  check "label atom" true (Tp.parse ~labels "b(x)" = Tf.Label (1, "x"));
  check "child1" true (Tp.parse ~labels "child1(x, y)" = Tf.Child1 ("x", "y"));
  check "membership" true (Tp.parse ~labels "x in X" = Tf.Mem ("x", "X"));
  check "quantifiers" true
    (Tp.parse ~labels "exists x. forall y. x = y"
    = Tf.ExistsPos ("x", Tf.ForallPos ("y", Tf.EqPos ("x", "y"))));
  check "unknown label" true (Tp.parse_opt ~labels "z(x)" = None);
  (* parse-compile-run round trip *)
  let phi = Tp.parse ~labels "exists x. b(x) /\\ ~ exists y. child1(x, y)" in
  let ta = Tf.compile ~sigma:2 ~scope:[] phi in
  check "b-leaf exists in t0" true (Ta.accepts ta t0);
  check "no b-leaf in all-a tree" false
    (Ta.accepts ta (T.Binary (0, T.Leaf 0, T.Leaf 0)))

(* ------------------------------------------------------------------ *)
(* Node oracle ([19] preprocessing)                                    *)
(* ------------------------------------------------------------------ *)

let unary_phi =
  (* x is labelled 1 and some strict ancestor is labelled 0: expressible
     via "exists p. (Child1(p,x) \/ Child2(p,x)) /\ ..."?  ancestors need
     transitive closure; keep it local instead: parent is labelled 0 *)
  Tf.And
    [
      Tf.Label (1, "x");
      Tf.ExistsPos
        ( "p",
          Tf.And
            [ Tf.Or [ Tf.Child1 ("p", "x"); Tf.Child2 ("p", "x") ];
              Tf.Label (0, "p") ] );
    ]

let test_node_oracle_agrees () =
  List.iter
    (fun seed ->
      let t = T.random ~seed ~sigma:2 ~size:25 in
      let oracle = Tl.Node_oracle.make ~sigma:2 unary_phi t in
      List.iter
        (fun (id, _) ->
          let direct =
            Tf.eval ~tree:t { Tf.pos = [ ("x", id) ]; sets = [] } unary_phi
          in
          if Tl.Node_oracle.holds oracle id <> direct then
            Alcotest.failf "oracle mismatch at node %d (seed %d)" id seed)
        (T.nodes t))
    [ 1; 2; 3; 4; 5 ]

let test_node_oracle_guards () =
  check "non-unary rejected" true
    (try
       ignore
         (Tl.Node_oracle.make ~sigma:2
            (Tf.Child1 ("x", "y"))
            (T.Leaf 0));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Tree learner                                                        *)
(* ------------------------------------------------------------------ *)

let tree_catalogue =
  [
    { Tl.name = "labelled 1"; phi = Tf.Label (1, "x"); xvars = [ "x" ]; yvars = [] };
    {
      Tl.name = "child of the parameter";
      phi = Tf.Or [ Tf.Child1 ("y1", "x"); Tf.Child2 ("y1", "x") ];
      xvars = [ "x" ];
      yvars = [ "y1" ];
    };
    {
      Tl.name = "same label as the parameter";
      phi =
        Tf.Or
          [ Tf.And [ Tf.Label (0, "x"); Tf.Label (0, "y1") ];
            Tf.And [ Tf.Label (1, "x"); Tf.Label (1, "y1") ] ];
      xvars = [ "x" ];
      yvars = [ "y1" ];
    };
  ]

let test_tree_learner () =
  let t = T.random ~seed:9 ~sigma:2 ~size:14 in
  (* hidden concept: children of node 3 *)
  let target = T.children t 3 in
  let examples =
    List.map (fun (id, _) -> ([| id |], List.mem id target)) (T.nodes t)
  in
  match Tl.solve ~sigma:2 ~tree:t ~catalogue:tree_catalogue examples with
  | None -> Alcotest.fail "catalogue should fit"
  | Some r ->
      Alcotest.(check (float 1e-9)) "err 0" 0.0 r.Tl.err;
      check "found the child concept" true
        (r.Tl.entry.Tl.name = "child of the parameter");
      check_int "parameter is node 3" 3 r.Tl.params.(0);
      check "predict fresh" true
        (List.for_all
           (fun (id, _) ->
             Tl.predict ~sigma:2 ~tree:t r [| id |] = List.mem id target)
           (T.nodes t))

let test_tree_learner_agnostic () =
  let t = t0 in
  (* noisy labels for "labelled 1": flip node 5 *)
  let examples =
    [ ([| 0 |], true); ([| 1 |], false); ([| 2 |], true); ([| 3 |], true);
      ([| 4 |], false); ([| 5 |], true) ]
  in
  match Tl.solve ~sigma:2 ~tree:t ~catalogue:tree_catalogue examples with
  | None -> Alcotest.fail "nonempty catalogue"
  | Some r -> check "one error in six" true (abs_float (r.Tl.err -. (1.0 /. 6.0)) < 1e-9)

let suite =
  [
    Alcotest.test_case "tree basics" `Quick test_tree_basics;
    Alcotest.test_case "tree navigation" `Quick test_tree_navigation;
    Alcotest.test_case "tree relabel" `Quick test_tree_relabel;
    Alcotest.test_case "tree random" `Quick test_tree_random;
    Alcotest.test_case "tree parse" `Quick test_tree_parse;
    QCheck_alcotest.to_alcotest tree_parse_roundtrip;
    Alcotest.test_case "ta run" `Quick test_ta_run;
    Alcotest.test_case "ta boolean" `Quick test_ta_boolean;
    Alcotest.test_case "ta minimize" `Quick test_ta_minimize;
    Alcotest.test_case "tree MSO sentences" `Quick test_tree_mso_sentences;
    Alcotest.test_case "tree MSO free var" `Quick test_tree_mso_free_var;
    Alcotest.test_case "tree MSO shadowing" `Quick test_tree_shadowing;
    Alcotest.test_case "tree MSO sets" `Quick test_tree_mso_sets;
    Alcotest.test_case "tree formula parser" `Quick test_tree_formula_parser;
    Alcotest.test_case "node oracle agrees" `Quick test_node_oracle_agrees;
    Alcotest.test_case "node oracle guards" `Quick test_node_oracle_guards;
    Alcotest.test_case "tree learner" `Quick test_tree_learner;
    Alcotest.test_case "tree learner agnostic" `Quick test_tree_learner_agnostic;
  ]
