(* Cross-validation of the canonical type machinery:
   - canonical type equality coincides with EF-game equivalence,
   - Hintikka formulas define their types,
   - Gaifman locality (Fact 5) holds at the configured radius. *)

open Cgraph
module T = Modelcheck.Types
module Ef = Modelcheck.Ef
module H = Modelcheck.Hintikka
module E = Modelcheck.Eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p6 = Gen.path 6
let c6 = Gen.cycle 6

let coloured_path =
  Graph.with_colors (Gen.path 6) [ ("Red", [ 0; 3 ]); ("Blue", [ 5 ]) ]

(* ------------------------------------------------------------------ *)
(* EF games                                                            *)
(* ------------------------------------------------------------------ *)

let test_partial_iso () =
  check "matching pairs" true (Ef.partial_isomorphism p6 [| 0; 1 |] p6 [| 5; 4 |]);
  check "edge mismatch" false
    (Ef.partial_isomorphism p6 [| 0; 1 |] p6 [| 0; 2 |]);
  check "equality pattern" false
    (Ef.partial_isomorphism p6 [| 0; 0 |] p6 [| 0; 1 |]);
  check "colour mismatch" false
    (Ef.partial_isomorphism coloured_path [| 0 |] coloured_path [| 1 |])

let test_ef_path_endpoints () =
  (* one round cannot see degrees (Duplicator matches any single probe),
     two rounds distinguish the endpoint from a middle vertex *)
  check "0-equivalent" true (Ef.equiv ~q:0 p6 [| 0 |] p6 [| 2 |]);
  check "1 move is not enough" true (Ef.equiv ~q:1 p6 [| 0 |] p6 [| 2 |]);
  check "2 moves distinguish endpoint" false (Ef.equiv ~q:2 p6 [| 0 |] p6 [| 2 |]);
  check "symmetric vertices equivalent" true (Ef.equiv ~q:3 p6 [| 0 |] p6 [| 5 |])

let test_ef_path_vs_cycle () =
  (* P6 and C6 agree up to rank 1 on generic vertices but rank 2 splits
     (endpoints exist) *)
  check "rank 1" true (Ef.equiv ~q:1 p6 [| 2 |] c6 [| 0 |]);
  check "rank 2 splits" false (Ef.equiv ~q:2 p6 [| 2 |] c6 [| 0 |]);
  check "distinguishing rank" true
    (Ef.rank_distinguishing ~max_q:3 p6 [| 2 |] c6 [| 0 |] = Some 2)

let test_ef_sentences () =
  (* empty tuples: C5 vs C6 differ at some small rank *)
  let c5 = Gen.cycle 5 in
  check "graphs 1-equivalent" true (Ef.equiv ~q:1 c5 [||] c6 [||]);
  check "eventually split" true
    (Ef.rank_distinguishing ~max_q:3 c5 [||] c6 [||] <> None)

(* ------------------------------------------------------------------ *)
(* Canonical types vs EF                                               *)
(* ------------------------------------------------------------------ *)

let types_match_ef ~q g tuples =
  let ctx = T.make_ctx g in
  List.for_all
    (fun u ->
      List.for_all
        (fun v ->
          T.equal (T.tp ctx ~q u) (T.tp ctx ~q v) = Ef.equiv ~q g u g v)
        tuples)
    tuples

let test_types_vs_ef_1tuples () =
  check "rank 0" true (types_match_ef ~q:0 coloured_path (Graph.Tuple.all ~n:6 ~k:1));
  check "rank 1" true (types_match_ef ~q:1 coloured_path (Graph.Tuple.all ~n:6 ~k:1));
  check "rank 2" true (types_match_ef ~q:2 coloured_path (Graph.Tuple.all ~n:6 ~k:1))

let test_types_vs_ef_2tuples () =
  check "rank 1 pairs" true
    (types_match_ef ~q:1 p6 (Graph.Tuple.all ~n:6 ~k:2))

let types_vs_ef_random =
  QCheck.Test.make ~name:"canonical type equality = EF equivalence" ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 0 2))
    (fun (seed, q) ->
      let g =
        Gen.colored ~seed ~colors:[ "Red" ] (Gen.random_tree ~seed:(seed + 3) 7)
      in
      types_match_ef ~q g (Graph.Tuple.all ~n:7 ~k:1))

let test_types_cross_graph () =
  (* a path endpoint in P6 looks like a path endpoint in P7 at rank 1 *)
  let p7 = Gen.path 7 in
  let t6 = T.tp_graph p6 ~q:1 [| 0 |] in
  let t7 = T.tp_graph p7 ~q:1 [| 0 |] in
  check "cross-graph endpoint types agree at rank 1" true (T.equal t6 t7);
  check "EF agrees" true (Ef.equiv ~q:1 p6 [| 0 |] p7 [| 0 |]);
  (* ... but rank 3 tells P6 from P7 even at the endpoint *)
  check "cross-graph EF splits eventually" true
    (Ef.rank_distinguishing ~max_q:4 p6 [| 0 |] p7 [| 0 |] <> None)

let test_rank_arity () =
  let t = T.tp_graph coloured_path ~q:2 [| 1; 4 |] in
  check_int "rank recorded" 2 (T.rank t);
  check_int "arity recorded" 2 (T.arity t)

let test_partition () =
  let ctx = T.make_ctx p6 in
  let classes = T.partition_by_tp ctx ~q:1 (Graph.Tuple.all ~n:6 ~k:1) in
  (* rank 1 sees only the one-extension patterns {equal, edge, neither},
     which every P6 vertex realises: a single class *)
  check_int "one rank-1 class" 1 (List.length classes);
  let classes2 = T.partition_by_tp ctx ~q:2 (Graph.Tuple.all ~n:6 ~k:1) in
  (* rank 2: endpoints {0,5}, their neighbours {1,4}, middles {2,3} *)
  check_int "three rank-2 classes" 3 (List.length classes2)

let test_count_types () =
  check_int "count matches partition" 1 (T.count_types p6 ~q:1 ~k:1);
  check_int "rank 2 splits the path" 3 (T.count_types p6 ~q:2 ~k:1);
  check "cycle is vertex-transitive" true (T.count_types c6 ~q:2 ~k:1 = 1)

(* ------------------------------------------------------------------ *)
(* Local types                                                         *)
(* ------------------------------------------------------------------ *)

let test_ltp_refines () =
  (* equal local types at generous radius imply equal global types *)
  let ctx = T.make_ctx coloured_path in
  let tuples = Graph.Tuple.all ~n:6 ~k:1 in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          let lu = T.ltp ctx ~q:1 ~r:3 u and lv = T.ltp ctx ~q:1 ~r:3 v in
          let gu = T.tp ctx ~q:1 u and gv = T.tp ctx ~q:1 v in
          if T.equal lu lv && not (T.equal gu gv) then
            Alcotest.failf "locality violated at %d vs %d" u.(0) v.(0))
        tuples)
    tuples

let test_ltp_small_radius_coarser () =
  (* at radius 0 a local type sees only the vertex itself *)
  let ctx = T.make_ctx p6 in
  check "r=0 merges endpoint and middle" true
    (T.equal (T.ltp ctx ~q:0 ~r:0 [| 0 |]) (T.ltp ctx ~q:0 ~r:0 [| 3 |]))

let test_fact5_holds () =
  check "Fact 5 on coloured path, q=1, r=3" true
    (Modelcheck.Locality.fact5_holds coloured_path ~q:1 ~r:3 ~k:1);
  check "Fact 5 pairs" true
    (Modelcheck.Locality.fact5_holds p6 ~q:1 ~r:3 ~k:2)

let fact5_random =
  QCheck.Test.make ~name:"Fact 5 at the Gaifman radius (q=1, random trees)"
    ~count:30
    QCheck.(int_range 0 2000)
    (fun seed ->
      let g =
        Gen.colored ~seed ~colors:[ "Red"; "Blue" ]
          (Gen.random_tree ~seed:(seed + 11) 9)
      in
      Modelcheck.Locality.fact5_holds g ~q:1 ~r:(Fo.Gaifman.radius 1) ~k:1)

let test_minimal_radius () =
  match Modelcheck.Locality.minimal_radius p6 ~q:1 ~k:1 ~max_r:5 with
  | Some r -> check "minimal radius sane" true (r <= 3)
  | None -> Alcotest.fail "expected locality to hold within r=5"

(* ------------------------------------------------------------------ *)
(* Hintikka formulas                                                   *)
(* ------------------------------------------------------------------ *)

let hintikka_defines_type ~q g tuples =
  let ctx = T.make_ctx g in
  let colors = Graph.color_names g in
  List.for_all
    (fun u ->
      let theta = T.tp ctx ~q u in
      let f = H.of_type ~colors theta in
      List.for_all
        (fun v ->
          E.holds_tuple g ~vars:(H.variables (Array.length v)) v f
          = T.equal (T.tp ctx ~q v) theta)
        tuples)
    tuples

let test_hintikka_rank0 () =
  check "rank 0 singles" true
    (hintikka_defines_type ~q:0 coloured_path (Graph.Tuple.all ~n:6 ~k:1));
  check "rank 0 pairs" true
    (hintikka_defines_type ~q:0 coloured_path (Graph.Tuple.all ~n:6 ~k:2))

let test_hintikka_rank1 () =
  check "rank 1 singles" true
    (hintikka_defines_type ~q:1 coloured_path (Graph.Tuple.all ~n:6 ~k:1))

let test_hintikka_rank2 () =
  check "rank 2 singles" true
    (hintikka_defines_type ~q:2 p6 (Graph.Tuple.all ~n:6 ~k:1))

let hintikka_random =
  QCheck.Test.make ~name:"Hintikka formula defines its type (random)" ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g =
        Gen.colored ~seed ~colors:[ "Red" ] (Gen.gnp ~seed:(seed + 5) ~n:5 ~p:0.5)
      in
      hintikka_defines_type ~q:1 g (Graph.Tuple.all ~n:5 ~k:1))

let test_hintikka_cross_graph () =
  (* the Hintikka formula of a C6 vertex at rank 1 holds of C7 (and even
     P6) vertices: rank 1 only sees the extension patterns
     {equal, edge, neither} *)
  let c7 = Gen.cycle 7 in
  let f = H.of_tuple ~colors:[] c6 ~q:1 [| 0 |] in
  check "transfers to C7" true (E.holds_tuple c7 ~vars:[ "x1" ] [| 0 |] f);
  check "transfers to P6" true (E.holds_tuple p6 ~vars:[ "x1" ] [| 0 |] f);
  (* a triangle vertex has no "neither" extension: rejected already at
     rank 1 *)
  check "rejects K3" false
    (E.holds_tuple (Gen.clique 3) ~vars:[ "x1" ] [| 0 |] f);
  (* at rank 2, C6 and C7 part ways (antipodal pairs behave differently) *)
  let f2 = H.of_tuple ~colors:[] c6 ~q:2 [| 0 |] in
  check "rank 2 rejects C7" false (E.holds_tuple c7 ~vars:[ "x1" ] [| 0 |] f2)

let test_hintikka_quantifier_rank () =
  let f = H.of_tuple ~colors:[] p6 ~q:2 [| 0 |] in
  check_int "rank exactly q" 2 (Fo.Formula.quantifier_rank f)

let test_hintikka_vocabulary_guard () =
  let theta = T.tp_graph coloured_path ~q:0 [| 0 |] in
  check "missing colour rejected" true
    (try
       ignore (H.of_type ~colors:[] theta);
       false
     with Invalid_argument _ -> true)

let test_of_types_disjunction () =
  let ctx = T.make_ctx p6 in
  let t0 = T.tp ctx ~q:1 [| 0 |] and t2 = T.tp ctx ~q:1 [| 2 |] in
  let f = H.of_types ~colors:[] [ t0; t2 ] in
  (* every vertex is endpoint-like or middle-like at rank 1 *)
  check "covers all vertices" true
    (List.for_all
       (fun v -> E.holds_tuple p6 ~vars:[ "x1" ] [| v |] f)
       (Graph.vertices p6))

let test_node_decomposition () =
  (* rank-0 nodes have no children; rank-1 children are rank-0 *)
  let ctx = T.make_ctx p6 in
  let t0 = T.tp ctx ~q:0 [| 2 |] in
  (match T.node t0 with
  | _, None -> ()
  | _ -> Alcotest.fail "rank 0 should have no children");
  let t1 = T.tp ctx ~q:1 [| 2 |] in
  (match T.node t1 with
  | sg, Some kids ->
      check "arity recorded in signature" true (sg.T.sig_arity = 1);
      check "children nonempty" true (kids <> []);
      check "children are rank 0" true (List.for_all (fun k -> T.rank k = 0) kids)
  | _ -> Alcotest.fail "rank 1 should have children");
  (* signature structure of a pair with an edge *)
  let sg = T.atomic_signature p6 [| 1; 2 |] in
  check "edge recorded" true (sg.T.edgs = [ (0, 1) ]);
  check "no equalities" true (sg.T.eqs = []);
  let sg' = T.atomic_signature p6 [| 3; 3 |] in
  check "equality recorded" true (sg'.T.eqs = [ (0, 1) ])

let test_rank_distinguishing_bounds () =
  check "equal tuples never distinguished" true
    (Ef.rank_distinguishing ~max_q:3 p6 [| 2 |] p6 [| 2 |] = None);
  check "distinguishing rank is minimal" true
    (match Ef.rank_distinguishing ~max_q:3 p6 [| 0 |] p6 [| 2 |] with
    | Some q -> Ef.equiv ~q:(q - 1) p6 [| 0 |] p6 [| 2 |]
    | None -> false)

let test_partition_order () =
  (* classes come out in first-occurrence order of their representatives *)
  let ctx = T.make_ctx p6 in
  match T.partition_by_tp ctx ~q:2 (Graph.Tuple.all ~n:6 ~k:1) with
  | (_, first_class) :: _ ->
      check "vertex 0 leads the first class" true
        (List.hd first_class = [| 0 |])
  | [] -> Alcotest.fail "expected classes"

let suite =
  [
    Alcotest.test_case "node decomposition" `Quick test_node_decomposition;
    Alcotest.test_case "rank distinguishing bounds" `Quick
      test_rank_distinguishing_bounds;
    Alcotest.test_case "partition order" `Quick test_partition_order;
    Alcotest.test_case "partial isomorphism" `Quick test_partial_iso;
    Alcotest.test_case "EF path endpoints" `Quick test_ef_path_endpoints;
    Alcotest.test_case "EF path vs cycle" `Quick test_ef_path_vs_cycle;
    Alcotest.test_case "EF sentences" `Quick test_ef_sentences;
    Alcotest.test_case "types=EF on 1-tuples" `Quick test_types_vs_ef_1tuples;
    Alcotest.test_case "types=EF on 2-tuples" `Quick test_types_vs_ef_2tuples;
    Alcotest.test_case "cross-graph types" `Quick test_types_cross_graph;
    Alcotest.test_case "rank and arity" `Quick test_rank_arity;
    Alcotest.test_case "partition by type" `Quick test_partition;
    Alcotest.test_case "count types" `Quick test_count_types;
    Alcotest.test_case "ltp refines tp" `Quick test_ltp_refines;
    Alcotest.test_case "ltp radius 0" `Quick test_ltp_small_radius_coarser;
    Alcotest.test_case "Fact 5 holds" `Quick test_fact5_holds;
    Alcotest.test_case "minimal radius" `Quick test_minimal_radius;
    Alcotest.test_case "Hintikka rank 0" `Quick test_hintikka_rank0;
    Alcotest.test_case "Hintikka rank 1" `Quick test_hintikka_rank1;
    Alcotest.test_case "Hintikka rank 2" `Quick test_hintikka_rank2;
    Alcotest.test_case "Hintikka cross-graph" `Quick test_hintikka_cross_graph;
    Alcotest.test_case "Hintikka rank exact" `Quick test_hintikka_quantifier_rank;
    Alcotest.test_case "Hintikka vocabulary guard" `Quick
      test_hintikka_vocabulary_guard;
    Alcotest.test_case "type-set disjunction" `Quick test_of_types_disjunction;
    QCheck_alcotest.to_alcotest types_vs_ef_random;
    QCheck_alcotest.to_alcotest fact5_random;
    QCheck_alcotest.to_alcotest hintikka_random;
  ]
