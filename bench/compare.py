#!/usr/bin/env python3
"""Diff two BENCH_<exp>.json telemetry files and flag regressions.

Usage: compare.py BASELINE CURRENT [--tol FRAC] [--time-tol FRAC]

Compares the deterministic substance of a benchmark run — the headline
work counters (model_check_calls, hypotheses_enumerated,
checkpoint_writes, events_recorded), the metric-snapshot counters, and
the row count — and exits non-zero on any mismatch beyond tolerance.

Design choices, so the gate stays useful in CI:
- integer work counters compare EXACTLY by default (the solvers are
  deterministic at jobs 1; a drifting counter is a behaviour change,
  not noise).  --tol 0.05 relaxes every counter to +/-5%.
- wall_time_s and other timings are IGNORED unless --time-tol is
  given: shared CI runners make time gates flaky, counter gates are
  the reliable regression signal.
- a counter present in the baseline must exist in the current run
  (deleting instrumentation silently is a regression); counters that
  are new in the current run are allowed (instrumentation grows).
- --skip-counters REGEX exempts scheduling-dependent counters (cache
  hit/miss splits, intern shard merges, per-worker task tallies) whose
  values legitimately vary with the core count or chunking even though
  the solver output is byte-identical.
"""
import argparse
import json
import re
import sys

HEADLINE_COUNTERS = (
    "model_check_calls",
    "hypotheses_enumerated",
    "checkpoint_writes",
    "events_recorded",
)


def load(path):
    try:
        with open(path, "rb") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"compare: {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def within(base, cur, tol):
    if tol is None or tol == 0.0:
        return base == cur
    if base == 0:
        return cur == 0
    return abs(cur - base) <= abs(base) * tol


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tol", type=float, default=0.0,
        help="relative tolerance for every counter (default 0: exact)")
    ap.add_argument(
        "--time-tol", type=float, default=None,
        help="also gate wall_time_s within this relative tolerance "
             "(default: timings are not compared)")
    ap.add_argument(
        "--skip-counters", metavar="REGEX", default=None,
        help="exclude metric counters matching this regex (re.search) "
             "from the comparison; use for scheduling-dependent "
             "counters that vary with core count or chunking")
    args = ap.parse_args()
    skip_re = re.compile(args.skip_counters) if args.skip_counters else None

    base = load(args.baseline)
    cur = load(args.current)
    problems = []

    def check(what, b, c, tol):
        if not within(b, c, tol):
            problems.append(f"{what}: baseline {b}, current {c}")

    if base.get("experiment") != cur.get("experiment"):
        problems.append(
            f"experiment: baseline {base.get('experiment')!r}, "
            f"current {cur.get('experiment')!r}")
    if base.get("jobs") != cur.get("jobs"):
        problems.append(
            f"jobs: baseline {base.get('jobs')}, current {cur.get('jobs')} "
            "(counter determinism only holds at matching job counts)")

    for key in HEADLINE_COUNTERS:
        if key in base:
            if key not in cur:
                problems.append(f"headline {key}: missing from current run")
            else:
                check(f"headline {key}", base[key], cur[key], args.tol)

    base_counters = base.get("metrics", {}).get("counters", {})
    cur_counters = cur.get("metrics", {}).get("counters", {})
    skipped = 0
    for name in sorted(base_counters):
        if skip_re is not None and skip_re.search(name):
            skipped += 1
        elif name not in cur_counters:
            problems.append(f"counter {name}: missing from current run")
        else:
            check(f"counter {name}", base_counters[name], cur_counters[name],
                  args.tol)

    # rows carry per-config results; their COUNT is deterministic even
    # when their timing fields are not
    check("row count", len(base.get("rows", [])), len(cur.get("rows", [])),
          None)

    if args.time_tol is not None:
        check("wall_time_s", base.get("wall_time_s", 0.0),
              cur.get("wall_time_s", 0.0), args.time_tol)

    exp = cur.get("experiment", "?")
    if problems:
        print(f"compare: {exp}: {len(problems)} regression(s) vs "
              f"{args.baseline}:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        sys.exit(1)
    new = sorted(set(cur_counters) - set(base_counters))
    extra = f", {len(new)} new counter(s)" if new else ""
    skipnote = f", {skipped} skipped" if skipped else ""
    print(f"compare: {exp}: ok ({len(base_counters) - skipped} counters "
          f"matched{skipnote}{extra})")


if __name__ == "__main__":
    main()
