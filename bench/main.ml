(* Benchmark harness: regenerates every experiment table of the
   reproduction (E1-E9 in DESIGN.md / EXPERIMENTS.md) plus Bechamel
   micro-benchmarks of the core operations.

   The paper ("On the Parameterized Complexity of Learning First-Order
   Logic", PODS 2022) has no empirical section of its own — every table
   below validates a *claim* of the paper (see EXPERIMENTS.md for the
   claim-by-claim record).

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e5 e7   # selected experiments
     dune exec bench/main.exe -- micro   # Bechamel micro-benchmarks only *)

open Cgraph
module Sam = Folearn.Sample
module Brute = Folearn.Erm_brute
module Real = Folearn.Erm_realizable
module Nd = Folearn.Erm_nd
module Pac = Folearn.Pac
module Vc = Folearn.Vc
module Red = Folearn.Reduction
module S = Splitter.Strategy
module T = Modelcheck.Types

(* monotonic: wall-clock steps (NTP) must not corrupt timings *)
let time f =
  let t0 = Obs.Clock.now_ns () in
  let r = f () in
  (r, Obs.Clock.elapsed_s t0)

let header title = Printf.printf "\n=== %s ===\n" title
let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Telemetry: every experiment runs with the obs sink enabled and      *)
(* emits BENCH_<name>.json — wall time, the headline counters, its     *)
(* structured table rows, and the full metric snapshot.                *)
(* ------------------------------------------------------------------ *)

let bench_schema_version = 1
let bench_rows : Obs.Json.t list ref = ref []
let add_row kvs = bench_rows := Obs.Json.Obj kvs :: !bench_rows

(* crash-safety headline: experiments that exercise checkpointing (E17)
   report their snapshot writes here; the bench driver itself never
   resumes, so [resumed] is a constant the telemetry schema carries for
   symmetry with the CLI's snapshots *)
let bench_checkpoint_writes = ref 0

(* experiment-specific headline keys (E20 reports its fleet counters
   at the top level so check_bench_json.py can gate on them) *)
let bench_extra_headline : (string * Obs.Json.t) list ref = ref []

let jint n = Obs.Json.Int n
let jfloat x = Obs.Json.Float x
let jstr s = Obs.Json.String s

let run_instrumented name f =
  bench_rows := [];
  bench_checkpoint_writes := 0;
  bench_extra_headline := [];
  Obs.enable ();
  Obs.reset_all ();
  (* account resource spend through a capless budget — except for the
     micro/overhead benchmarks, whose acceptance bar is the cost of the
     checkpoint fast path with NO budget installed *)
  let budget =
    if name = "micro" || name = "overhead" then None
    else Some (Guard.Budget.unlimited ())
  in
  let t0 = Obs.Clock.now_ns () in
  (* one broken experiment must not cost the others their telemetry *)
  let error =
    match
      Guard.run ?budget
        ~salvage:(fun () -> None)
        (fun () -> Obs.Span.with_ ("bench." ^ name) f)
    with
    | Guard.Complete () -> None
    | Guard.Exhausted { reason; checkpoint; _ } ->
        Some
          (Printf.sprintf "budget exhausted: %s at %s"
             (Guard.reason_to_string reason)
             (Guard.checkpoint_to_string checkpoint))
    | exception e -> Some (Printexc.to_string e)
  in
  (match error with
  | Some msg -> Printf.eprintf "experiment %s failed: %s\n%!" name msg
  | None -> ());
  let wall = Obs.Clock.elapsed_s t0 in
  let snap = Obs.Metric.snapshot () in
  Obs.disable ();
  let doc =
    Obs.Json.Obj
      ([
         ("experiment", jstr name);
         ("schema_version", jint bench_schema_version);
         ("jobs", jint (Par.jobs ()));
         ("wall_time_s", jfloat wall);
         ( "model_check_calls",
           jint (Obs.Metric.find_counter snap "modelcheck.eval.calls") );
         ( "hypotheses_enumerated",
           jint (Obs.Metric.find_counter snap "erm.hypotheses_enumerated") );
         ( "budget_spent",
           match budget with
           | Some b -> Guard.spent_to_json (Guard.Budget.spent b)
           | None -> Obs.Json.Null );
         ("resumed", Obs.Json.Bool false);
         ("checkpoint_writes", jint !bench_checkpoint_writes);
         ("events_recorded", jint (Obs.Event.total ()));
       ]
      @ !bench_extra_headline
      @ (match error with
        | Some msg -> [ ("error", jstr msg) ]
        | None -> [])
      @ [
          ("rows", Obs.Json.List (List.rev !bench_rows));
          ("metrics", Obs.Metric.snapshot_to_json snap);
        ])
  in
  let file = Printf.sprintf "BENCH_%s.json" name in
  (* atomic replace: a reader (or a crash mid-write) never sees a
     zero-length or truncated telemetry file.  fsync off — telemetry is
     not crash-durable state, the rename alone gives atomicity. *)
  Resil.atomic_write ~fsync:false ~path:file
    (Obs.Json.to_string doc ^ "\n");
  Printf.printf "telemetry -> %s\n" file

(* ------------------------------------------------------------------ *)
(* E1: XP data complexity of direct FO model checking                  *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1  FO-MC data complexity (naive evaluator, fixed phi)";
  let phi2 = Fo.Parser.parse "forall x. exists y. E(x, y)" in
  let phi3 =
    Fo.Parser.parse
      "forall x. exists y. exists z. E(x, y) /\\ E(y, z) /\\ ~ z = x"
  in
  row "%-10s %6s %14s %14s\n" "graph" "n" "qr2 time (s)" "qr3 time (s)";
  List.iter
    (fun n ->
      List.iter
        (fun (gname, g) ->
          let _, t2 = time (fun () -> Modelcheck.Eval.sentence g phi2) in
          let _, t3 = time (fun () -> Modelcheck.Eval.sentence g phi3) in
          add_row
            [
              ("graph", jstr gname);
              ("n", jint (Graph.order g));
              ("qr2_s", jfloat t2);
              ("qr3_s", jfloat t3);
            ];
          row "%-10s %6d %14.4f %14.4f\n" gname (Graph.order g) t2 t3)
        [
          ("path", Gen.path n);
          ("tree", Gen.random_tree ~seed:n n);
          ("grid", Gen.grid (n / 8) 8);
        ])
    [ 32; 64; 128; 256 ];
  row "shape check: time grows ~ n^(qr), independent of the class.\n"

(* ------------------------------------------------------------------ *)
(* E2: Theorem 1 - model checking via the ERM oracle                   *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2  Theorem 1: FO-MC through the (L,Q)-FO-ERM oracle";
  let sentences =
    [
      "exists x. Red(x) /\\ exists y. E(x, y) /\\ Blue(y)";
      "forall x. exists y. E(x, y)";
      "exists x. forall y. ~ E(x, y)";
    ]
  in
  row "%-8s %-44s %7s %7s %6s %7s %9s\n" "graph" "sentence" "direct" "viaERM"
    "agree" "calls" "|T| (top)";
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun src ->
          let phi = Fo.Parser.parse src in
          let direct = Modelcheck.Eval.sentence g phi in
          let via, stats = Red.model_check ~oracle:Red.exact_oracle g phi in
          row "%-8s %-44s %7b %7b %6b %7d %9s\n" gname src direct via
            (direct = via) stats.Red.oracle_calls
            (match stats.Red.representative_sets with
            | t :: _ -> string_of_int t
            | [] -> "-"))
        sentences)
    [
      ( "P10",
        Graph.with_colors (Gen.path 10) [ ("Red", [ 0; 5 ]); ("Blue", [ 9 ]) ]
      );
      ( "tree12",
        Gen.colored_balanced ~seed:3 ~colors:[ "Red"; "Blue" ]
          (Gen.random_tree ~seed:5 12) );
      ("C8", Gen.cycle 8);
    ];
  row
    "shape check: 100%% agreement; oracle calls stay O(n^2 * depth) and |T| \
     is far below n.\n"

(* ------------------------------------------------------------------ *)
(* E3: Proposition 11 - brute-force ERM scaling in n^ell               *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3  Prop 11: exact ERM, cost n^ell (q = 1, k = 1)";
  row "%-6s %6s %6s %12s %12s %8s\n" "class" "n" "ell" "params" "time (s)"
    "err";
  List.iter
    (fun n ->
      let g =
        Gen.colored ~seed:n ~colors:[ "Red" ] (Gen.random_tree ~seed:n n)
      in
      let w = n / 2 in
      let lam =
        Sam.label_with g ~target:(fun v -> Bfs.dist g v.(0) w <= 1)
          (Sam.all_tuples g ~k:1)
      in
      List.iter
        (fun ell ->
          if ell = 0 || (ell = 1 && n <= 40) || (ell = 2 && n <= 12) then begin
            let r, t = time (fun () -> Brute.solve g ~k:1 ~ell ~q:1 lam) in
            add_row
              [
                ("n", jint n);
                ("ell", jint ell);
                ("params_tried", jint r.Brute.params_tried);
                ("time_s", jfloat t);
                ("err", jfloat r.Brute.err);
              ];
            row "%-6s %6d %6d %12d %12.4f %8.3f\n" "tree" n ell
              r.Brute.params_tried t r.Brute.err
          end)
        [ 0; 1; 2 ])
    [ 8; 12; 16; 24; 40 ];
  row
    "shape check: time multiplies by ~n when ell increases by 1; ell = 1 \
     reaches err 0 (the target uses one constant).\n"

(* ------------------------------------------------------------------ *)
(* E4: Proposition 12 - the realisable k = 1 learner                   *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4  Prop 12: realisable k=1 prefix search vs brute force";
  let target = Fo.Parser.parse "exists z. E(x, z) /\\ E(z, y1)" in
  row "%-6s %6s %10s %12s | %12s %12s\n" "class" "n" "mc calls"
    "prefix t(s)" "brute tried" "brute t(s)";
  List.iter
    (fun n ->
      let g = Gen.path n in
      let hidden = n / 2 in
      let lam =
        Sam.label_with g
          ~target:(fun v ->
            Modelcheck.Eval.holds g [ ("x", v.(0)); ("y1", hidden) ] target)
          (Sam.all_tuples g ~k:1)
      in
      let pre, t_pre =
        time (fun () -> Real.solve g ~ell:1 ~catalogue:[ target ] lam)
      in
      let brute, t_brute =
        time (fun () -> Brute.solve g ~k:1 ~ell:1 ~q:1 lam)
      in
      match pre with
      | Some r ->
          add_row
            [
              ("n", jint n);
              ("mc_calls", jint r.Real.mc_calls);
              ("prefix_time_s", jfloat t_pre);
              ("brute_tried", jint brute.Brute.params_tried);
              ("brute_time_s", jfloat t_brute);
            ];
          row "%-6s %6d %10d %12.4f | %12d %12.4f\n" "path" n r.Real.mc_calls
            t_pre brute.Brute.params_tried t_brute
      | None -> row "%-6s %6d %10s %12s | (reject)\n" "path" n "-" "-")
    [ 8; 12; 16; 24 ];
  row
    "shape check: both reach err 0; the prefix search performs <= ell*n MC \
     calls (each itself poly), the brute force tries n^ell parameter \
     tuples.\n"

(* ------------------------------------------------------------------ *)
(* E5: Theorem 13 - the nowhere dense learner                          *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5  Theorem 13: (L,Q)-FO-ERM on nowhere dense classes";
  row "%-8s %6s %9s %8s %5s %7s %9s | %7s %10s\n" "class" "n" "nd t(s)"
    "nd err" "ell" "rounds" "branches" "eps*" "guarantee";
  let eps = 0.125 in
  List.iter
    (fun (cname, sizes, make_g, cls) ->
      List.iter
        (fun n ->
          let g = make_g n in
          let w = n / 2 in
          let lam =
            Sam.label_with g ~target:(fun v -> Bfs.dist g v.(0) w <= 1)
              (Sam.all_tuples g ~k:1)
          in
          let cfg =
            Nd.default_config ~epsilon:eps ~radius:1 ~branch_width:8 ~k:1
              ~ell_star:1 ~q_star:1 cls
          in
          let rep, t_nd = time (fun () -> Nd.solve cfg g lam) in
          let eps_star =
            if n <= 40 then Some (Brute.solve g ~k:1 ~ell:1 ~q:1 lam).Brute.err
            else None
          in
          row "%-8s %6d %9.3f %8.3f %5d %7d %9d | %7s %10s\n" cname n t_nd
            rep.Nd.err rep.Nd.ell_used
            (List.length rep.Nd.rounds)
            rep.Nd.branches_explored
            (match eps_star with
            | Some e -> Printf.sprintf "%.3f" e
            | None -> "(skip)")
            (match eps_star with
            | Some e -> if rep.Nd.err <= e +. eps +. 1e-9 then "OK" else "VIOL"
            | None -> if rep.Nd.err <= eps +. 1e-9 then "OK" else "VIOL"))
        sizes)
    [
      ( "tree",
        [ 15; 30; 60; 120 ],
        (fun n -> Gen.random_tree ~seed:n n),
        Splitter.Nowhere_dense.forests );
      ( "grid",
        [ 15; 30; 60 ],
        (fun n -> Gen.grid (max 3 (n / 6)) 6),
        Splitter.Nowhere_dense.planar_like );
      ( "deg3",
        [ 15; 30; 60 ],
        (fun n -> Gen.random_bounded_degree ~seed:n ~n ~d:3),
        Splitter.Nowhere_dense.bounded_degree ~d:3 );
      ( "2tree",
        [ 15; 30; 60 ],
        (fun n -> Gen.ktree ~seed:n ~k:2 ~n),
        Splitter.Nowhere_dense.planar_like );
    ];
  row
    "shape check: err <= eps* + eps everywhere; nd time grows gently with n \
     while the brute-force baseline (E3) multiplies by n per parameter.\n"

(* ------------------------------------------------------------------ *)
(* E6: PAC generalisation via uniform convergence                      *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6  agnostic PAC: generalisation gap vs sample size";
  let g =
    Gen.colored ~seed:41 ~colors:[ "Premium" ]
      (Gen.random_bounded_degree ~seed:13 ~n:40 ~d:4)
  in
  let target v =
    not
      (Array.exists
         (fun u -> Graph.has_color g "Premium" u)
         (Graph.neighbors g v.(0)))
  in
  let solver lam = (Brute.solve g ~k:1 ~ell:0 ~q:1 lam).Brute.hypothesis in
  row "%-8s %6s %12s %12s %10s\n" "noise" "m" "train err" "risk" "gap";
  List.iter
    (fun noise ->
      let d = Pac.uniform_noisy g ~k:1 ~target ~noise in
      List.iter
        (fun m ->
          let runs =
            List.init 5 (fun s -> Pac.run ~solver d ~seed:(97 * s) ~m)
          in
          let avg f = List.fold_left (fun a o -> a +. f o) 0.0 runs /. 5.0 in
          row "%-8.2f %6d %12.3f %12.3f %10.3f\n" noise m
            (avg (fun o -> o.Pac.training_error))
            (avg (fun o -> o.Pac.generalisation_error))
            (avg (fun o -> o.Pac.gap)))
        [ 10; 40; 160; 640 ])
    [ 0.0; 0.15 ];
  row
    "shape check: gap shrinks ~1/sqrt(m); with noise, risk approaches the \
     Bayes risk (= the noise rate) rather than 0.\n"

(* ------------------------------------------------------------------ *)
(* E7: the splitter game characterisation (Fact 4)                     *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7  splitter game: rounds to win across classes";
  row "%-10s %6s %6s %6s %6s\n" "class" "n" "r=1" "r=2" "r=3";
  let rounds g r =
    match
      S.empirical_rounds ~max_rounds:(Graph.order g + 2) g ~r
        ~splitter:S.best_heuristic
    with
    | Some s -> string_of_int s
    | None -> "-"
  in
  List.iter
    (fun (cname, make_g) ->
      List.iter
        (fun n ->
          let g = make_g n in
          row "%-10s %6d %6s %6s %6s\n" cname (Graph.order g) (rounds g 1)
            (rounds g 2) (rounds g 3))
        [ 16; 32; 64 ])
    [
      ("path", Gen.path);
      ("tree", fun n -> Gen.random_tree ~seed:n n);
      ("grid", fun n -> Gen.grid (max 2 (n / 8)) 8);
      ("deg3", fun n -> Gen.random_bounded_degree ~seed:n ~n ~d:3);
      ("2tree", fun n -> Gen.ktree ~seed:n ~k:2 ~n);
      ("clique", Gen.clique);
      ("gnp.5", fun n -> Gen.gnp ~seed:n ~n ~p:0.5);
    ];
  row
    "shape check: sparse classes need a bounded number of rounds as n \
     grows; cliques (and dense G(n,p)) need ~n rounds - the Fact 4 \
     dichotomy.\n"

(* ------------------------------------------------------------------ *)
(* E8: Gaifman locality of types (Fact 5 / Corollary 6)                *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8  locality: Fact 5 at radius r(q), and type growth";
  row "%-12s %6s %4s %16s %12s\n" "class" "n" "q" "violations@r(q)"
    "min radius";
  List.iter
    (fun (cname, g) ->
      List.iter
        (fun q ->
          let r = Fo.Gaifman.radius q in
          let v = Modelcheck.Locality.violations g ~q ~r ~k:1 in
          let min_r = Modelcheck.Locality.minimal_radius g ~q ~k:1 ~max_r:6 in
          row "%-12s %6d %4d %16d %12s\n" cname (Graph.order g) q
            (List.length v)
            (match min_r with Some r -> string_of_int r | None -> ">6"))
        [ 0; 1 ])
    [
      ("col-path", Graph.with_colors (Gen.path 14) [ ("Red", [ 0; 6; 7 ]) ]);
      ( "col-tree",
        Gen.colored ~seed:5 ~colors:[ "Red"; "Blue" ]
          (Gen.random_tree ~seed:9 14) );
      ("cycle", Gen.cycle 12);
    ];
  row "\ntype counts (k = 1): distinct tp_q classes per graph\n";
  row "%-12s %6s %8s %8s %8s\n" "class" "n" "q=0" "q=1" "q=2";
  List.iter
    (fun (cname, g) ->
      row "%-12s %6d %8d %8d %8d\n" cname (Graph.order g)
        (T.count_types g ~q:0 ~k:1)
        (T.count_types g ~q:1 ~k:1)
        (T.count_types g ~q:2 ~k:1))
    [
      ("path", Gen.path 14);
      ("col-path", Graph.with_colors (Gen.path 14) [ ("Red", [ 0; 6; 7 ]) ]);
      ("cycle", Gen.cycle 14);
      ("tree", Gen.random_tree ~seed:9 14);
      ("gnp.4", Gen.gnp ~seed:2 ~n:14 ~p:0.4);
    ];
  row
    "shape check: zero Fact 5 violations at the Gaifman radius; the \
     realised minimal radius is usually much smaller (the bound is \
     worst-case); type counts grow with q and with structural richness.\n"

(* ------------------------------------------------------------------ *)
(* E9: VC dimension / hypothesis-class size (Section 3, Adler-Adler)   *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9  VC dimension of H_{k,ell,q}(G): sparse vs dense (Adler-Adler)";
  (* For ell = 0 the hypotheses are exactly the unions of realised
     q-type classes, so VC(H_{1,0,q}) = #realised classes: with every
     vertex in its own class, every dichotomy is realisable. *)
  row "%-10s %6s %18s %18s\n" "class" "n" "VC(H_{1,0,3}) = #tp" "VC lb, ell=1 q=1";
  List.iter
    (fun (cname, make_g) ->
      List.iter
        (fun n ->
          let g = make_g n in
          let classes = T.count_types g ~q:3 ~k:1 in
          let lb = Vc.lower_bound ~seed:5 g ~k:1 ~ell:1 ~q:1 ~max_d:6 in
          row "%-10s %6d %18d %17d+\n" cname (Graph.order g) classes lb)
        [ 8; 12; 16; 20 ])
    [
      ("path", Gen.path);
      ("tree", fun n -> Gen.random_tree ~seed:n n);
      ("gnp.5", fun n -> Gen.gnp ~seed:n ~n ~p:0.5);
    ];
  row "\nhypothesis-class size |H_{1,ell,1}(G)| = f * n^ell (Section 3):\n";
  row "%-10s %6s %6s %16s\n" "class" "n" "ell" "log2 |H| bound";
  List.iter
    (fun n ->
      let g = Gen.colored ~seed:n ~colors:[ "Red" ] (Gen.random_tree ~seed:n n) in
      List.iter
        (fun ell ->
          row "%-10s %6d %6d %16.1f\n" "col-tree" n ell
            (Pac.log2_hypothesis_count g ~k:1 ~ell ~q:1))
        [ 0; 1; 2 ])
    [ 12; 24 ];
  row
    "shape check: on paths (nowhere dense) the rank-3 type count - and \
     hence VC(H_{1,0,3}) - saturates at a constant (8), while on dense \
     G(n,1/2) every vertex gets its own type: VC grows linearly in n, the \
     Adler-Adler dichotomy.  |H| carries the n^ell factor of Section 3.\n"

(* ------------------------------------------------------------------ *)
(* E10: the counting extension (paper's conclusion / FOC)              *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10  FOC extension: counting quantifiers at fixed rank";
  row "%-14s %6s | %10s %10s | %10s %10s\n" "target" "n" "plain q=1"
    "plain q=2" "cnt q=1,t2" "cnt q=1,t3";
  List.iter
    (fun n ->
      let g = Gen.caterpillar ~seed:n ~spine:(n / 2) ~legs:3 in
      let n_actual = Graph.order g in
      let lam =
        Sam.label_with g ~target:(fun v -> Graph.degree g v.(0) >= 3)
          (Sam.all_tuples g ~k:1)
      in
      let plain q = (Brute.solve g ~k:1 ~ell:0 ~q lam).Brute.err in
      let counting tmax =
        (Folearn.Erm_counting.solve g ~k:1 ~ell:0 ~q:1 ~tmax lam)
          .Folearn.Erm_counting.err
      in
      row "%-14s %6d | %10.3f %10.3f | %10.3f %10.3f\n" "degree>=3" n_actual
        (plain 1) (plain 2) (counting 2) (counting 3))
    [ 12; 20; 32 ];
  row "\ncounting-type counts (k = 1, q = 1) vs threshold cap:\n";
  row "%-10s %6s %8s %8s %8s %8s\n" "class" "n" "plain" "t=2" "t=3" "t=4";
  List.iter
    (fun (cname, g) ->
      row "%-10s %6d %8d %8d %8d %8d\n" cname (Graph.order g)
        (T.count_types g ~q:1 ~k:1)
        (Modelcheck.Ctypes.count_types g ~q:1 ~tmax:2 ~k:1)
        (Modelcheck.Ctypes.count_types g ~q:1 ~tmax:3 ~k:1)
        (Modelcheck.Ctypes.count_types g ~q:1 ~tmax:4 ~k:1))
    [
      ("path", Gen.path 14);
      ("star", Gen.star 14);
      ("caterp.", Gen.caterpillar ~seed:2 ~spine:7 ~legs:3);
      ("gnp.3", Gen.gnp ~seed:4 ~n:14 ~p:0.3);
    ];
  row
    "shape check: 'degree >= 3' is inexpressible at plain rank 1 (err > 0) \
     and needs rank 3 in plain FO, but counting rank 1 with threshold 3 is \
     exact; counting types strictly refine plain types as the cap grows.\n"

(* ------------------------------------------------------------------ *)
(* E11: sublinear local learning (Grohe-Ritzert predecessor result)    *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11  sublinear local learner: access independent of |G|";
  row "%-8s %8s %6s | %9s %9s %10s %9s | %12s\n" "class" "n" "m" "touched"
    "pool" "local t(s)" "err" "brute t(s)";
  List.iter
    (fun (cname, make_g) ->
      List.iter
        (fun n ->
          let g = make_g n in
          let m = 12 in
          let w = n / 2 in
          let lam =
            Sam.label_with g ~target:(fun v -> Bfs.dist g v.(0) w <= 1)
              (Sam.random_tuples ~seed:5 g ~k:1 ~m)
          in
          let local, t_local =
            time (fun () ->
                Folearn.Erm_local.solve ~radius:1 g ~k:1 ~ell:1 ~q:1 lam)
          in
          let t_brute =
            if n <= 200 then
              Printf.sprintf "%.4f"
                (snd (time (fun () -> Brute.solve g ~k:1 ~ell:1 ~q:1 lam)))
            else "(skip)"
          in
          add_row
            [
              ("class", jstr cname);
              ("n", jint n);
              ("touched", jint local.Folearn.Erm_local.vertices_touched);
              ("pool", jint local.Folearn.Erm_local.pool_size);
              ("local_time_s", jfloat t_local);
              ("err", jfloat local.Folearn.Erm_local.err);
            ];
          row "%-8s %8d %6d | %9d %9d %10.4f %9.3f | %12s\n" cname n m
            local.Folearn.Erm_local.vertices_touched
            local.Folearn.Erm_local.pool_size t_local
            local.Folearn.Erm_local.err t_brute)
        [ 50; 200; 800; 3200 ])
    [
      ("path", Gen.path);
      ("deg3", fun n -> Gen.random_bounded_degree ~seed:n ~n ~d:3);
    ];
  row
    "shape check: vertices touched and local time stay flat as n grows \
     16x (they depend on d, m, r only), while the brute-force baseline \
     scales with n; the sublinear-regime claim of [22] reproduced.\n"

(* ------------------------------------------------------------------ *)
(* E12: ablations of the Theorem 13 learner's design choices           *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12  ablations: Theorem 13 learner design choices";
  let eps = 0.125 in
  let instance seed =
    let g = Gen.random_tree ~seed 40 in
    let w = seed mod 40 in
    let lam =
      Sam.label_with g ~target:(fun v -> Bfs.dist g v.(0) w <= 1)
        (Sam.all_tuples g ~k:1)
    in
    (g, lam)
  in
  let seeds = [ 3; 7; 11; 19; 23 ] in
  let run ~branch_width ~splitter (g, lam) =
    let cls =
      {
        Splitter.Nowhere_dense.name = "ablation";
        splitter;
        s_bound = (fun _ ~r:_ -> 8);
      }
    in
    let cfg =
      Nd.default_config ~epsilon:eps ~radius:1 ~branch_width ~k:1 ~ell_star:1
        ~q_star:1 cls
    in
    Nd.solve cfg g lam
  in
  row "%-28s %10s %10s %10s\n" "variant" "mean err" "max err" "mean t(s)";
  List.iter
    (fun (name, branch_width, splitter) ->
      let errs, times =
        List.split
          (List.map
             (fun seed ->
               let rep, t = time (fun () -> run ~branch_width ~splitter (instance seed)) in
               (rep.Nd.err, t))
             seeds)
      in
      let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      row "%-28s %10.3f %10.3f %10.3f\n" name (mean errs)
        (List.fold_left Float.max 0.0 errs)
        (mean times))
    [
      ("full (width 8, min-max-comp)", 8, S.min_max_component);
      ("greedy only (width 1)", 1, S.min_max_component);
      ("width 3", 3, S.min_max_component);
      ("splitter = centre", 8, S.center);
      ("splitter = top-of-ball", 8, S.top_of_ball);
    ];
  row
    "shape check: the guarantee is robust - even width 1 and weaker \
     splitter strategies stay within eps of the optimum on trees, at \
     lower cost; the full variant dominates on error.\n"

(* ------------------------------------------------------------------ *)
(* E13: MSO on strings - preprocessing-based evaluation ([21])         *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13  MSO on strings: compile once, evaluate in O(log n)";
  let module M = Mso.Formula in
  let module O = Mso.Oracle in
  let module W = Mso.Word in
  let module L = Mso.Learner in
  let sigma = 3 in
  let phi =
    M.ExistsPos ("e", M.And [ M.Less ("e", "x"); M.Letter (2, "e") ])
  in
  let scope = [ ("x", M.Pos) ] in
  let dfa = M.compile ~sigma ~scope phi in
  row "concept: 'some error precedes x' (%d-state track automaton)\n"
    dfa.Mso.Dfa.states;
  row "%10s %14s %16s %16s\n" "n" "preproc (ms)" "naive eval (us)"
    "oracle eval (us)";
  List.iter
    (fun n ->
      let w = W.random ~seed:n ~sigma ~len:n in
      let oracle, t_pre = time (fun () -> O.make ~sigma dfa w) in
      let queries = List.init 200 (fun i -> (i * 7919) mod n) in
      let (), t_naive =
        time (fun () ->
            List.iter
              (fun p -> ignore (O.eval_naive oracle ~marks:[ (p, 1) ]))
              queries)
      in
      let (), t_fast =
        time (fun () ->
            List.iter
              (fun p -> ignore (O.eval_with_marks oracle ~marks:[ (p, 1) ]))
              queries)
      in
      row "%10d %14.1f %16.2f %16.2f\n" n (t_pre *. 1e3)
        (t_naive *. 1e6 /. 200.0)
        (t_fast *. 1e6 /. 200.0))
    [ 1_000; 10_000; 100_000; 1_000_000 ];
  (* end-to-end string learning *)
  let catalogue =
    [
      { L.name = "letter"; phi = M.Letter (2, "x"); xvars = [ "x" ]; yvars = [] };
      { L.name = "threshold"; phi = M.Less ("y1", "x"); xvars = [ "x" ]; yvars = [ "y1" ] };
    ]
  in
  row "\nstring learning (hidden threshold concept):\n";
  row "%10s %8s %10s %12s\n" "n" "m" "err" "time (s)";
  List.iter
    (fun n ->
      let word = W.random ~seed:(n + 1) ~sigma ~len:n in
      let thr = n / 2 in
      let examples =
        List.init 24 (fun i ->
            let p = (i * 4241) mod n in
            ([| p |], p > thr))
      in
      let res, t =
        time (fun () -> L.solve ~sigma ~word ~catalogue examples)
      in
      match res with
      | Some r -> row "%10d %8d %10.3f %12.3f\n" n 24 r.L.err t
      | None -> row "%10d %8d %10s %12.3f\n" n 24 "-" t)
    [ 200; 800; 3200 ];
  (* trees: the [19]-style two-pass preprocessing, then O(1) per node *)
  row "\ntrees: per-node oracle (two passes, then O(1) per query):\n";
  row "%10s %14s %18s\n" "nodes" "preproc (ms)" "classify-all (ms)";
  let module Tf = Mso.Tree_formula in
  let module Tl = Mso.Tree_learner in
  let tree_phi =
    Tf.And
      [
        Tf.Label (0, "x");
        Tf.ExistsPos
          ( "p",
            Tf.And
              [ Mso.Tree_formula.Or
                  [ Tf.Child1 ("p", "x"); Tf.Child2 ("p", "x") ];
                Tf.Label (1, "p") ] );
      ]
  in
  List.iter
    (fun n ->
      let t = Mso.Tree.random ~seed:n ~sigma:2 ~size:n in
      let oracle, t_pre =
        time (fun () -> Tl.Node_oracle.make ~sigma:2 tree_phi t)
      in
      let (), t_all =
        time (fun () ->
            for v = 0 to n - 1 do
              ignore (Tl.Node_oracle.holds oracle v)
            done)
      in
      row "%10d %14.2f %18.2f\n" n (t_pre *. 1e3) (t_all *. 1e3))
    [ 1_000; 10_000; 100_000 ];
  row
    "shape check: preprocessing is near-linear, per-query evaluation is \
     logarithmic on strings and O(1) on trees (flat vs the naive O(n) run \
     growing 1000x); the learner recovers the hidden threshold exactly.\n"

(* ------------------------------------------------------------------ *)
(* E14: preprocessing for repeated learning tasks (conclusion §6)      *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14  graph preprocessing: one index, many learning tasks";
  row "%-8s %8s %8s | %12s %14s | %14s\n" "class" "n" "tasks" "build (s)"
    "per task (ms)" "no index (ms)";
  List.iter
    (fun n ->
      let g = Gen.random_bounded_degree ~seed:n ~n ~d:3 in
      let tasks =
        List.init 20 (fun i ->
            Sam.label_with g
              ~target:(fun v -> Graph.degree g v.(0) >= (i mod 3) + 1)
              (Sam.random_tuples ~seed:i g ~k:1 ~m:20))
      in
      let idx, t_build =
        time (fun () -> Folearn.Preindex.build g ~q:1 ~r:1)
      in
      let (), t_tasks =
        time (fun () ->
            List.iter (fun lam -> ignore (Folearn.Preindex.erm idx lam)) tasks)
      in
      let (), t_noindex =
        time (fun () ->
            List.iter
              (fun lam ->
                ignore (Folearn.Erm_local.solve ~radius:1 g ~k:1 ~ell:0 ~q:1 lam))
              tasks)
      in
      add_row
        [
          ("n", jint n);
          ("build_s", jfloat t_build);
          ("per_task_ms", jfloat (t_tasks *. 1e3 /. 20.0));
          ("no_index_ms", jfloat (t_noindex *. 1e3 /. 20.0));
          ("classes", jint (Folearn.Preindex.class_count idx));
        ];
      row "%-8s %8d %8d | %12.3f %14.3f | %14.3f\n" "deg3" n 20 t_build
        (t_tasks *. 1e3 /. 20.0)
        (t_noindex *. 1e3 /. 20.0))
    [ 100; 400; 1600 ];
  row
    "shape check: after the one-off build, each task costs O(m) (flat in \
     n); the per-task baseline redoes neighbourhood work every time - the \
     preprocessing regime the conclusion asks about, on graphs.\n"

(* ------------------------------------------------------------------ *)
(* E15: graceful degradation under a shrinking fuel budget             *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15  graceful degradation: fuel ladder at q* = 2 (local -> brute)";
  let g = Gen.random_tree ~seed:11 20 in
  let w = 10 in
  let lam =
    Sam.label_with g ~target:(fun v -> Bfs.dist g v.(0) w <= 1)
      (Sam.all_tuples g ~k:1)
  in
  row "%10s | %-9s %-8s %5s %8s %7s %10s\n" "fuel" "outcome" "solver" "rank"
    "err" "stages" "fuel spent";
  List.iter
    (fun fuel ->
      let budget = Option.map (fun f -> Guard.Budget.make ~fuel:f ()) fuel in
      let outcome = Folearn.Degrade.learn ?budget g ~k:1 ~ell:1 ~q:2 lam in
      let fuel_str =
        match fuel with Some f -> string_of_int f | None -> "(none)"
      in
      (* stages run on [for_stage] copies, so the parent budget's own
         counters stay at zero; account the exhausted stages instead *)
      let attempts_fuel l =
        List.fold_left
          (fun acc (a : Folearn.Degrade.attempt) ->
            acc + a.Folearn.Degrade.spent.Guard.fuel)
          0 l.Folearn.Degrade.attempts
      in
      let spent_fuel =
        match outcome with
        | Guard.Complete l -> attempts_fuel l
        | Guard.Exhausted { spent; _ } -> spent.Guard.fuel
      in
      let emit status solver q_used err stages =
        add_row
          [
            ( "fuel",
              match fuel with Some f -> jint f | None -> Obs.Json.Null );
            ("status", jstr status);
            ("solver", jstr solver);
            ("q_used", jint q_used);
            ("err", jfloat err);
            ("stages_exhausted", jint stages);
            ("fuel_spent", jint spent_fuel);
          ];
        row "%10s | %-9s %-8s %5d %8.3f %7d %10d\n" fuel_str status solver
          q_used err stages spent_fuel
      in
      match outcome with
      | Guard.Complete l ->
          emit
            (if l.Folearn.Degrade.degraded then "degraded" else "complete")
            l.Folearn.Degrade.solver l.Folearn.Degrade.q_used
            l.Folearn.Degrade.err
            (List.length l.Folearn.Degrade.attempts)
      | Guard.Exhausted { best_so_far = Some l; _ } ->
          emit "salvaged" l.Folearn.Degrade.solver l.Folearn.Degrade.q_used
            l.Folearn.Degrade.err
            (List.length l.Folearn.Degrade.attempts)
      | Guard.Exhausted { best_so_far = None; reason; _ } ->
          add_row
            [
              ( "fuel",
                match fuel with Some f -> jint f | None -> Obs.Json.Null );
              ("status", jstr "exhausted");
              ("reason", jstr (Guard.reason_to_string reason));
              ("fuel_spent", jint spent_fuel);
            ];
          row "%10s | %-9s (%s)\n" fuel_str "exhausted"
            (Guard.reason_to_string reason))
    [ None; Some 2_000_000; Some 200_000; Some 20_000; Some 2_000; Some 200;
      Some 20 ];
  row
    "shape check: every rung answers or exits cleanly — no exception ever \
     escapes; as fuel shrinks the chain falls from the rank-2 local learner \
     to brute-force ERM at smaller rank (err rises gracefully), and at the \
     bottom only a best-so-far salvage or a clean exhaustion remains.\n"

(* ------------------------------------------------------------------ *)
(* E16: deterministic domain parallelism - speedup vs jobs             *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header "E16  parallel ERM: speedup vs jobs (bit-identical hypotheses)";
  (* Two workloads: brute-force ERM (candidate-parallel) and the
     preprocessing index build (vertex-parallel).  jobs = 1 runs first
     so the global intern tables are warm; every later level must then
     reproduce its hypotheses and class assignments bit for bit. *)
  let g_erm = Gen.gnp ~seed:7 ~n:36 ~p:0.15 in
  let lam =
    Sam.label_with g_erm ~target:(fun v -> Bfs.dist g_erm v.(0) 18 <= 1)
      (Sam.all_tuples g_erm ~k:1)
  in
  let g_idx = Gen.random_bounded_degree ~seed:9 ~n:1500 ~d:3 in
  let levels = [ 1; 2; 4 ] in
  row "%-10s %5s %10s %9s %10s %9s %10s\n" "workload" "jobs" "time (s)"
    "speedup" "err" "match" "classes";
  let baseline = ref None in
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs in
      let erm, t_erm =
        time (fun () -> Brute.solve ~pool g_erm ~k:1 ~ell:1 ~q:2 lam)
      in
      let idx, t_idx =
        time (fun () -> Folearn.Preindex.build ~pool g_idx ~q:1 ~r:2)
      in
      Par.Pool.shutdown pool;
      let classes =
        List.init (Graph.order g_idx) (Folearn.Preindex.vertex_class idx)
      in
      let here =
        ( Folearn.Hypothesis.signature erm.Brute.hypothesis,
          erm.Brute.err, classes )
      in
      let t1_erm, t1_idx, agree =
        match !baseline with
        | None ->
            baseline := Some (t_erm, t_idx, here);
            (t_erm, t_idx, true)
        | Some (a, b, first) -> (a, b, first = here)
      in
      let emit workload t speedup =
        add_row
          [
            ("workload", jstr workload);
            ("jobs", jint jobs);
            ("time_s", jfloat t);
            ("speedup", jfloat speedup);
            ("identical", Obs.Json.Bool agree);
          ]
      in
      emit "erm_brute" t_erm (t1_erm /. t_erm);
      emit "preindex" t_idx (t1_idx /. t_idx);
      row "%-10s %5d %10.3f %9.2f %10.3f %9b %10s\n" "erm_brute" jobs t_erm
        (t1_erm /. t_erm) erm.Brute.err agree "-";
      row "%-10s %5d %10.3f %9.2f %10s %9b %10d\n" "preindex" jobs t_idx
        (t1_idx /. t_idx) "-" agree
        (Folearn.Preindex.class_count idx))
    levels;
  row
    "shape check: hypotheses, errors and class assignments are identical \
     at every jobs level; speedup approaches the worker count on \
     multi-core hosts and stays ~1 (never a large slowdown) when the \
     machine has a single core.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let g = Gen.colored ~seed:3 ~colors:[ "Red" ] (Gen.random_tree ~seed:7 64) in
  let ctx = T.make_ctx g in
  let phi = Fo.Parser.parse "exists y. E(x1, y) /\\ Red(y)" in
  let tests =
    [
      Test.make ~name:"bfs-ball-r2"
        (Staged.stage (fun () -> Bfs.ball g ~r:2 [ 31 ]));
      Test.make ~name:"eval-rank1"
        (Staged.stage (fun () ->
             Modelcheck.Eval.holds_tuple g ~vars:[ "x1" ] [| 31 |] phi));
      (let compiled = Modelcheck.Compile.compile g ~vars:[ "x1" ] phi in
       Test.make ~name:"eval-rank1-compiled"
         (Staged.stage (fun () ->
              Modelcheck.Compile.holds_tuple compiled [| 31 |])));
      Test.make ~name:"csr-neighbor-scan"
        (Staged.stage (fun () ->
             let acc = ref 0 in
             for v = 0 to Graph.order g - 1 do
               Graph.iter_neighbors g v (fun w -> acc := !acc + w)
             done;
             !acc));
      Test.make ~name:"tp-q1-cold"
        (Staged.stage (fun () -> T.tp (T.make_ctx g) ~q:1 [| 31 |]));
      Test.make ~name:"ltp-q1-r2-memo"
        (Staged.stage (fun () -> T.ltp ctx ~q:1 ~r:2 [| 31 |]));
      Test.make ~name:"induced-half"
        (Staged.stage (fun () -> Ops.induced g (List.init 32 (fun i -> 2 * i))));
      Test.make ~name:"hintikka-q1"
        (Staged.stage (fun () ->
             Modelcheck.Hintikka.of_tuple ~colors:[ "Red" ] g ~q:1 [| 31 |]));
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"core" ~fmt:"%s/%s" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        match Analyze.OLS.estimates v with
        | Some [ t ] -> (name, t) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  row "%-28s %16s\n" "operation" "time/run";
  List.iter
    (fun (name, t) ->
      let pretty =
        if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
        else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
        else Printf.sprintf "%.0f ns" t
      in
      add_row [ ("operation", jstr name); ("ns_per_run", jfloat t) ];
      row "%-28s %16s\n" name pretty)
    rows

(* ------------------------------------------------------------------ *)
(* overhead: instrumentation must be ~free when the sink is disabled   *)
(* ------------------------------------------------------------------ *)

(* Uninstrumented clone of Modelcheck.Eval's recursive evaluator.  It
   exists only as the baseline of the disabled-overhead check below;
   keep it in sync with lib/modelcheck/eval.ml. *)
module Plain_eval = struct
  module VMap = Map.Make (String)

  let lookup env x =
    match VMap.find_opt x env with Some v -> v | None -> raise Not_found

  let rec eval g env (f : Fo.Formula.t) =
    match f with
    | True -> true
    | False -> false
    | Atom (Eq (x, y)) -> lookup env x = lookup env y
    | Atom (Edge (x, y)) -> Graph.mem_edge g (lookup env x) (lookup env y)
    | Atom (Color (c, x)) -> Graph.has_color g c (lookup env x)
    | Not f -> not (eval g env f)
    | And fs -> List.for_all (eval g env) fs
    | Or fs -> List.exists (eval g env) fs
    | Implies (a, b) -> (not (eval g env a)) || eval g env b
    | Iff (a, b) -> eval g env a = eval g env b
    | Exists (x, body) ->
        let n = Graph.order g in
        let rec try_from v =
          v < n && (eval g (VMap.add x v env) body || try_from (v + 1))
        in
        try_from 0
    | Forall (x, body) ->
        let n = Graph.order g in
        let rec all_from v =
          v >= n || (eval g (VMap.add x v env) body && all_from (v + 1))
        in
        all_from 0
    | CountGe (t, x, body) ->
        let n = Graph.order g in
        let rec count_from v found =
          found >= t
          || (v < n
             && count_from (v + 1)
                  (if eval g (VMap.add x v env) body then found + 1 else found))
        in
        count_from 0 0

  let sentence g f = eval g VMap.empty f
end

let overhead () =
  header "overhead  disabled instrumentation vs uninstrumented Eval clone";
  let g = Gen.grid 16 16 in
  let phi = Fo.Parser.parse "forall x. exists y. E(x, y)" in
  let reps = 30 in
  let samples = 11 in
  let once f =
    snd
      (time (fun () ->
           for _ = 1 to reps do
             ignore (f ())
           done))
  in
  (* the driver enables the sink around every experiment; this one
     measures the DISABLED cost, so switch it off for the duration *)
  let was_enabled = Obs.enabled () in
  Obs.disable ();
  let f_inst () = Modelcheck.Eval.sentence g phi in
  let f_plain () = Plain_eval.sentence g phi in
  ignore (once f_inst);
  ignore (once f_plain);
  (* interleaved min-of-samples: the minimum is the run least disturbed
     by scheduling noise, and interleaving keeps thermal/frequency drift
     from biasing one side *)
  let t_inst = ref infinity and t_plain = ref infinity in
  for _ = 1 to samples do
    t_inst := Float.min !t_inst (once f_inst);
    t_plain := Float.min !t_plain (once f_plain)
  done;
  let t_inst = !t_inst and t_plain = !t_plain in
  if was_enabled then Obs.enable ();
  let ratio = t_inst /. t_plain in
  add_row
    [
      ("instrumented_disabled_s", jfloat t_inst);
      ("uninstrumented_s", jfloat t_plain);
      ("ratio", jfloat ratio);
    ];
  row "%-28s %12.6f s\n" "instrumented (sink off)" t_inst;
  row "%-28s %12.6f s\n" "uninstrumented clone" t_plain;
  row "%-28s %12.3f  (acceptance: < 1.05)\n" "ratio" ratio;
  row
    "shape check: with the sink disabled each instrumentation point is one \
     atomic load + branch, invisible next to the evaluator's own work.\n"

(* ------------------------------------------------------------------ *)
(* E17: checkpoint cadence overhead                                    *)
(* ------------------------------------------------------------------ *)

let e17 () =
  header "E17  checkpoint cadence overhead (brute ERM, cycle:20, ell 1, q 2)";
  let g = Graph.with_colors (Gen.cycle 20) [ ("Red", [ 0; 5; 10 ]) ] in
  let lam =
    Sam.label_with g
      ~target:(fun v -> Graph.has_color g "Red" v.(0))
      (Sam.all_tuples g ~k:1)
  in
  let snap = Filename.temp_file "folearn-e17" ".snap" in
  (* no explicit budget: the driver's ambient unlimited budget drives
     the ticks, exactly like a CLI `--checkpoint` run without budget
     flags *)
  let once ckpt =
    snd (time (fun () -> ignore (Brute.solve_budgeted ~ckpt g ~k:1 ~ell:1 ~q:2 lam)))
  in
  (* a controller is single-run state (frontier, resume cursor), so
     each timed run gets a fresh one *)
  let variants =
    [
      ("baseline", fun () -> Resil.Ctl.none);
      ( "default-cadence",
        fun () -> Resil.Ctl.create ~path:snap ~run_id:"e17" ~solver:"brute" () );
      ( "every-64",
        fun () ->
          Resil.Ctl.create ~path:snap ~every:64 ~run_id:"e17" ~solver:"brute" () );
      ( "every-16",
        fun () ->
          Resil.Ctl.create ~path:snap ~every:16 ~run_id:"e17" ~solver:"brute" () );
      ( "every-1",
        fun () ->
          Resil.Ctl.create ~path:snap ~every:1 ~run_id:"e17" ~solver:"brute" () );
    ]
  in
  let samples = 7 in
  List.iter (fun (_, mk) -> ignore (once (mk ()))) variants;
  (* interleaved min-of-samples, as in the overhead experiment *)
  let best = Array.make (List.length variants) infinity in
  let writes = Array.make (List.length variants) 0 in
  for _ = 1 to samples do
    List.iteri
      (fun i (_, mk) ->
        let ckpt = mk () in
        let t = once ckpt in
        writes.(i) <- Resil.Ctl.writes ckpt;
        if t < best.(i) then best.(i) <- t)
      variants
  done;
  bench_checkpoint_writes := Array.fold_left ( + ) 0 writes;
  let base = best.(0) in
  row "%-18s %12s %8s %8s\n" "variant" "time (s)" "ratio" "writes";
  List.iteri
    (fun i (name, _) ->
      let ratio = best.(i) /. base in
      add_row
        [
          ("variant", jstr name);
          ("time_s", jfloat best.(i));
          ("ratio", jfloat ratio);
          ("snapshot_writes", jint writes.(i));
        ];
      row "%-18s %12.6f %8.3f %8d%s\n" name best.(i) ratio writes.(i)
        (if name = "default-cadence" then "  (acceptance: < 1.05)" else ""))
    variants;
  (try Sys.remove snap with Sys_error _ -> ());
  row
    "shape check: the default cadence (time-driven, 2 s) adds only the \
     per-tick hook load on a short run; candidate cadences pay one \
     fsync'd snapshot per [every] settled candidates.\n"

(* ------------------------------------------------------------------ *)
(* E18: static plan calibration (focost)                               *)
(* ------------------------------------------------------------------ *)

(* Replay Analysis.Plan envelopes against the Obs counters of real
   runs.  Acceptance: every observed quantity lies inside its predicted
   [lo, hi] envelope; for the exact solvers (brute, counting) lo = hi =
   observed (calibration factor 1.0); for local and nd the documented
   calibration is the bracket itself, with the hi/observed looseness
   ratio reported per row (the nd branch-and-bound hi is a worst-case
   game-tree bound, so factors of 10^3..10^5 are expected and fine —
   the *sound* side used for admission is lo, which is tight). *)

let e18 () =
  header "E18  static plan calibration (predicted vs observed spend)";
  let module Plan = Analysis.Plan in
  let module Count = Analysis.Cost_model.Count in
  let module Env = Analysis.Cost_model.Env in
  let counter snap name = Obs.Metric.find_counter snap name in
  let configs =
    [
      ("brute", `Brute, Gen.path 12, 1, 1);
      ("brute", `Brute, Gen.random_tree ~seed:7 18, 1, 2);
      ("counting", `Counting, Gen.path 12, 1, 1);
      ("local", `Local, Gen.random_tree ~seed:11 18, 1, 1);
      ("local", `Local, Gen.path 12, 1, 1);
      ("nd", `Nd, Gen.path 10, 1, 1);
    ]
  in
  row "%-10s %6s %14s %14s %14s %8s %8s\n" "solver" "n" "fuel lo" "fuel seen"
    "fuel hi" "bracket" "factor";
  let all_ok = ref true in
  List.iter
    (fun (name, solver, g, ell, q) ->
      let k = 1 in
      let lam =
        Sam.label_with g ~target:(fun v -> v.(0) mod 3 = 0)
          (Sam.all_tuples g ~k)
      in
      let inp = Plan.input g ~k ~ell ~q (List.map fst lam) in
      let p =
        Plan.analyze inp
          (match solver with
          | `Brute -> Plan.Brute
          | `Counting -> Plan.Counting
          | `Local -> Plan.Local
          | `Nd -> Plan.Nd)
      in
      let before = Obs.Metric.snapshot () in
      let budget = Guard.Budget.unlimited () in
      (match solver with
      | `Brute ->
          ignore (Brute.solve_budgeted ~budget g ~k ~ell ~q lam)
      | `Counting ->
          ignore
            (Folearn.Erm_counting.solve_budgeted ~budget g ~k ~ell ~q ~tmax:2
               lam)
      | `Local ->
          ignore (Folearn.Erm_local.solve_budgeted ~budget g ~k ~ell ~q lam)
      | `Nd ->
          let cls = Splitter.Nowhere_dense.of_graph "e18" g in
          let cfg =
            Nd.default_config ~radius:1 ~k ~ell_star:(max 1 ell) ~q_star:q cls
          in
          ignore (Nd.solve_budgeted ~budget cfg g lam));
      let after = Obs.Metric.snapshot () in
      let spent = Guard.Budget.spent budget in
      let delta cname = counter after cname - counter before cname in
      let observed_evals =
        delta "modelcheck.types.tp_misses"
        + delta "modelcheck.types.ltp_misses"
      in
      let observed_hyp = delta "erm.hypotheses_enumerated" in
      let inside (e : Env.t) v =
        Count.leq e.Env.lo (Count.of_int v)
        && Count.leq (Count.of_int v) e.Env.hi
      in
      (* table/ball envelopes are capacity bounds: observed *peaks* are
         memo-insertion-order dependent and may undershoot lo by a row,
         so only the admission-relevant side (observed <= hi) is checked *)
      let capped (e : Env.t) v = Count.leq (Count.of_int v) e.Env.hi in
      let fuel_ok = inside p.Plan.fuel_total spent.Guard.fuel in
      let hyp_ok = inside p.Plan.hypotheses observed_hyp in
      let evals_ok = inside p.Plan.type_evals observed_evals in
      let table_ok = capped p.Plan.table_total spent.Guard.table_rows in
      let ball_ok = capped p.Plan.ball_total spent.Guard.ball_peak in
      let ok = fuel_ok && hyp_ok && evals_ok && table_ok && ball_ok in
      if not ok then all_ok := false;
      let cint c =
        match Count.to_int_opt c with Some v -> string_of_int v | None -> "sat"
      in
      let factor =
        match Count.to_int_opt p.Plan.fuel_total.Env.hi with
        | Some hi when spent.Guard.fuel > 0 ->
            float_of_int hi /. float_of_int spent.Guard.fuel
        | _ -> Float.infinity
      in
      add_row
        [
          ("solver", jstr name);
          ("n", jint (Graph.order g));
          ("ell", jint ell);
          ("q", jint q);
          ("exact", Obs.Json.Bool p.Plan.exact);
          ("fuel_lo", jstr (cint p.Plan.fuel_total.Env.lo));
          ("fuel_hi", jstr (cint p.Plan.fuel_total.Env.hi));
          ("fuel_observed", jint spent.Guard.fuel);
          ("hypotheses_observed", jint observed_hyp);
          ("type_evals_observed", jint observed_evals);
          ("table_observed", jint spent.Guard.table_rows);
          ("ball_observed", jint spent.Guard.ball_peak);
          ("fuel_factor", jfloat factor);
          ("fuel_ok", Obs.Json.Bool fuel_ok);
          ("hypotheses_ok", Obs.Json.Bool hyp_ok);
          ("type_evals_ok", Obs.Json.Bool evals_ok);
          ("table_ok", Obs.Json.Bool table_ok);
          ("ball_ok", Obs.Json.Bool ball_ok);
          ("within_envelope", Obs.Json.Bool ok);
        ];
      row "%-10s %6d %14s %14d %14s %8s %8.2f\n" name (Graph.order g)
        (cint p.Plan.fuel_total.Env.lo)
        spent.Guard.fuel
        (cint p.Plan.fuel_total.Env.hi)
        (if ok then "ok" else "FAIL") factor)
    configs;
  add_row [ ("all_within_envelope", Obs.Json.Bool !all_ok) ];
  row
    "acceptance: every observed counter (fuel, hypotheses, type \
     evaluations, table rows, ball peak) inside its predicted envelope; \
     brute/counting envelopes are exact (factor 1.00).%s\n"
    (if !all_ok then "" else "  CALIBRATION FAILED")

(* ------------------------------------------------------------------ *)
(* E19: live exporter overhead                                         *)
(* ------------------------------------------------------------------ *)

(* The tentpole question for fopulse: what does serving live telemetry
   cost the learner?  Same interleaved min-of-samples discipline as
   [overhead], but the comparison is (sink enabled + exporter serving +
   a scraper hammering /metrics) against (sink disabled, nothing
   listening).  The exporter runs on its own domain and the sharded
   sink keeps the hot path lock-free, so the ratio should stay inside
   the same < 1.05 bar the disabled-sink path holds itself to. *)

let e19 () =
  header "E19  live exporter overhead (sink + server + scraper vs disabled)";
  (* the workload is the learner's real hot path (brute ERM, the
     mutex-sink bottleneck of ROADMAP item 2 before the sink was
     sharded), not a metric-saturated micro-loop: the bar is what a
     *production run* pays for leaving telemetry on and scraped *)
  let g = Graph.with_colors (Gen.cycle 20) [ ("Red", [ 0; 5; 10 ]) ] in
  let lam =
    Sam.label_with g
      ~target:(fun v -> Graph.has_color g "Red" v.(0))
      (Sam.all_tuples g ~k:1)
  in
  let reps = 12 in
  (* a multiple of 3: the three leg orders appear equally often *)
  let samples = 6 in
  let once f =
    snd
      (time (fun () ->
           for _ = 1 to reps do
             ignore (f ())
           done))
  in
  let f () = Brute.solve_budgeted g ~k:1 ~ell:1 ~q:2 lam in
  let was_enabled = Obs.enabled () in
  let run_disabled () =
    Obs.disable ();
    once f
  in
  (* sink-only leg: recording on, nobody scraping — isolates the
     sharded record cost from the exporter's *)
  let run_sink () =
    Obs.enable ();
    once f
  in
  (* live leg: sink on, exporter up, one scraper pulling /metrics at
     1 Hz — the most aggressive scrape_interval Prometheus deployments
     use in practice (the default is 15 s); on a single-core box the
     scraper and server domains timeshare with the workload, which is
     exactly the cost a production run would pay.  Each sample spans
     several scrapes (reps is sized so one sample takes ~3 s), so the
     min over samples cannot dodge the scraper. *)
  let run_live addr =
    Obs.enable ();
    let stop = Atomic.make false in
    let scraper =
      Domain.spawn (fun () ->
          let n = ref 0 in
          while not (Atomic.get stop) do
            (match Pulse.Client.get addr "/metrics" with
            | Ok _ -> Stdlib.incr n
            | Error _ -> ());
            Unix.sleepf 1.0
          done;
          !n)
    in
    let t = once f in
    Atomic.set stop true;
    let scrapes = Domain.join scraper in
    (t, scrapes)
  in
  (* Clock-speed drift on a shared box swamps a ratio of two mins
     taken minutes apart, so the statistic is paired: each sample runs
     the three legs back-to-back (drift cancels inside a triple) and
     the reported ratio is the MEDIAN of the per-sample ratios. *)
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  (match Pulse.Server.start (Pulse.Addr.Tcp ("127.0.0.1", 0)) with
  | Error m -> row "exporter failed to start: %s\n" m
  | Ok srv ->
      let addr = Pulse.Server.bound_addr srv in
      ignore (run_disabled ());
      ignore (run_live addr);
      let live_r = Array.make samples 0.0 in
      let sink_r = Array.make samples 0.0 in
      let t_live = ref infinity
      and t_sink = ref infinity
      and t_off = ref infinity in
      let scrapes = ref 0 in
      for i = 0 to samples - 1 do
        (* rotate the leg order so no leg always pays the
           first-after-domain-churn position *)
        let tl = ref 0.0 and ts = ref 0.0 and t0 = ref 0.0 in
        let leg = function
          | 0 ->
              let t, s = run_live addr in
              scrapes := !scrapes + s;
              tl := t
          | 1 -> ts := run_sink ()
          | _ -> t0 := run_disabled ()
        in
        leg (i mod 3);
        leg ((i + 1) mod 3);
        leg ((i + 2) mod 3);
        let tl = !tl and ts = !ts and t0 = !t0 in
        live_r.(i) <- tl /. t0;
        sink_r.(i) <- ts /. t0;
        t_live := Float.min !t_live tl;
        t_sink := Float.min !t_sink ts;
        t_off := Float.min !t_off t0
      done;
      Pulse.Server.stop srv;
      let spread a =
        Array.fold_left Float.min a.(0) a, Array.fold_left Float.max a.(0) a
      in
      let ratio = median live_r and sink_ratio = median sink_r in
      let live_lo, live_hi = spread live_r in
      let sink_lo, sink_hi = spread sink_r in
      add_row
        [
          ("live_s", jfloat !t_live);
          ("sink_s", jfloat !t_sink);
          ("disabled_s", jfloat !t_off);
          ("ratio", jfloat ratio);
          ("sink_ratio", jfloat sink_ratio);
          ("ratio_spread", jfloat (live_hi -. live_lo));
          ("sink_ratio_spread", jfloat (sink_hi -. sink_lo));
          ("scrapes", jint !scrapes);
        ];
      row "%-28s %12.6f s\n" "live (sink+server+scraper)" !t_live;
      row "%-28s %12.6f s\n" "sink on, nobody scraping" !t_sink;
      row "%-28s %12.6f s\n" "disabled sink" !t_off;
      row "%-28s %12d\n" "scrapes served" !scrapes;
      (* the spread is the per-sample min..max: when it brackets the
         acceptance bar, the box's scheduling noise floor exceeds the
         effect and the median alone should not be over-read *)
      row "%-28s %12.3f  [%.3f..%.3f]  (acceptance: < 1.05)\n" "sink ratio"
        sink_ratio sink_lo sink_hi;
      (* the live ratio folds in the scraper/server domains' own CPU,
         which on a single-core box timeshares with the solver — the
         gate is looser because that part is deployment topology, not
         exporter cost; with >= 2 cores live converges to sink *)
      row "%-28s %12.3f  [%.3f..%.3f]  (acceptance: < 1.10)\n" "live ratio"
        ratio live_lo live_hi);
  if was_enabled then Obs.enable () else Obs.disable ()

(* ------------------------------------------------------------------ *)
(* E20: fleet sharding - coordination tax and fault recovery           *)
(* ------------------------------------------------------------------ *)

let e20 () =
  header "E20  fleet sharding: coordination tax, lease expiry, quarantine";
  (* the fleet's unit of work is Erm_brute.eval_range, so the baseline
     is the same range evaluated sequentially in-process: the gap is
     pure coordination (lease claims, snapshot publishes, merge polls),
     not solver work.  Workers run as domains sharing the directory
     protocol with the coordinator, exactly as external [--worker]
     claimants would. *)
  let g = Graph.with_colors (Gen.cycle 24) [ ("Red", [ 0; 3; 6; 9 ]) ] in
  let lam =
    Sam.label_with g
      ~target:(fun v -> Graph.has_color g "Red" v.(0))
      (Sam.all_tuples g ~k:1)
  in
  let total = Graph.order g in
  let chunk_size = 1 in
  let run_id = "bench-e20" in
  let temp_dir tag =
    let path = Filename.temp_file ("folearn_bench_e20_" ^ tag) "" in
    Sys.remove path;
    Unix.mkdir path 0o755;
    path
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter
          (fun e -> rm_rf (Filename.concat path e))
          (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
  in
  let eval ~lo ~hi = Brute.eval_range g ~k:1 ~ell:1 ~q:2 lam ~lo ~hi in
  let _, seq_s = time (fun () -> eval ~lo:0 ~hi:total) in
  let seq_best = eval ~lo:0 ~hi:total in
  let expired = ref 0 and quarantined = ref 0 and max_workers = ref 0 in
  let fleet_leg ~tag ~workers ~chaos ~plant_dead_lease ~max_attempts =
    let dir = temp_dir tag in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    Fleet.Layout.ensure dir;
    if plant_dead_lease then begin
      (* a claimant that died before the run: its heartbeat deadline
         is long past, so the coordinator must expire it and re-pool
         chunk 0 under a bumped fence *)
      let dead =
        {
          Fleet.Lease.chunk = 0; lo = 0; hi = chunk_size; worker = "w-dead";
          pid = 1; fence = 0; deadline = Unix.gettimeofday () -. 60.0;
        }
      in
      ignore (Fleet.Lease.claim ~path:(Fleet.Layout.lease dir 0) dead)
    end;
    let worker_domains =
      List.init workers (fun i ->
          Domain.spawn (fun () ->
              Fleet.worker
                {
                  Fleet.w_dir = dir;
                  w_id = Printf.sprintf "bw%d" i;
                  w_run_id = run_id;
                  w_solver = "brute";
                  w_parent = None;
                  w_chaos = chaos;
                  (* in-process workers must not install a Guard
                     budget: the slot is process-global and the bench
                     driver already holds it *)
                  w_make_budget = (fun () -> None);
                  (* likewise no intern reset: the registries are
                     process-global and shared with sibling workers *)
                  w_reclaim = (fun () -> ());
                }
                ~eval))
    in
    let cfg =
      {
        Fleet.c_dir = dir;
        c_run_id = run_id;
        c_solver = "brute";
        c_total = total;
        c_chunk_size = chunk_size;
        c_heartbeat_s = 0.2;
        c_max_attempts = max_attempts;
        c_sample_size = Sam.size lam;
        c_workers = 0;
        (* workers are domains, not children *)
        c_spawn = (fun _ -> 0);
        c_backoff_base_s = 0.01;
        c_backoff_cap_s = 0.05;
      }
    in
    let out, wall_s = time (fun () -> Fleet.coordinate cfg) in
    let codes = List.map Domain.join worker_domains in
    match out with
    | Error m ->
        row "%-34s coordinator failed: %s\n" tag m;
        None
    | Ok out ->
        List.iter (fun c -> assert (c = 0)) codes;
        let stat k =
          match List.assoc_opt k out.Fleet.stats with Some v -> v | None -> 0
        in
        expired := !expired + stat "leases_expired";
        quarantined := !quarantined + stat "chunks_quarantined";
        max_workers := max !max_workers workers;
        add_row
          [
            ("leg", jstr tag);
            ("workers", jint workers);
            ("wall_s", jfloat wall_s);
            ("settled", jint out.Fleet.settled);
            ("leases_expired", jint (stat "leases_expired"));
            ("chunks_quarantined", jint (stat "chunks_quarantined"));
            ("failures_retried", jint (stat "failures_retried"));
            ("stale_publishes", jint (stat "stale_publishes"));
          ];
        row "%-34s %2d workers %10.4f s  settled %2d/%2d  ratio %6.2f\n" tag
          workers wall_s out.Fleet.settled total (wall_s /. seq_s);
        Some out
  in
  add_row [ ("leg", jstr "sequential"); ("wall_s", jfloat seq_s) ];
  row "%-34s %2s         %10.4f s\n" "sequential eval_range" "" seq_s;
  (* clean legs: the coordination tax at 1, 2, 4 in-process workers;
     the merged best must equal the sequential lex-min every time *)
  List.iter
    (fun workers ->
      match
        fleet_leg
          ~tag:(Printf.sprintf "fleet clean w%d" workers)
          ~workers ~chaos:[] ~plant_dead_lease:false ~max_attempts:3
      with
      | None -> ()
      | Some out -> assert (out.Fleet.best = seq_best))
    [ 1; 2; 4 ];
  (* recovery leg: a pre-seeded dead lease must be expired (fence
     bump) without changing the merged best *)
  (match
     fleet_leg ~tag:"fleet dead-lease recovery" ~workers:2 ~chaos:[]
       ~plant_dead_lease:true ~max_attempts:3
   with
  | None -> ()
  | Some out ->
      assert (out.Fleet.best = seq_best);
      assert (List.assoc "leases_expired" out.Fleet.stats >= 1));
  (* quarantine leg: one chunk fails deterministically on every claim;
     after max_attempts it must land in the poison list and the rest
     of the range must still settle *)
  (match
     fleet_leg ~tag:"fleet poisoned chunk" ~workers:2
       ~chaos:[ Fleet.Poison 5 ] ~plant_dead_lease:false ~max_attempts:2
   with
  | None -> ()
  | Some out ->
      assert (List.length out.Fleet.quarantined = 1);
      assert (out.Fleet.settled = total - chunk_size));
  bench_extra_headline :=
    [
      ("workers", jint !max_workers);
      ("leases_expired", jint !expired);
      ("chunks_quarantined", jint !quarantined);
    ];
  row "acceptance: clean-leg best == sequential lex-min; dead lease \
       expired; poisoned chunk quarantined.\n"

(* ------------------------------------------------------------------ *)
(* E21: hot-path engine - compiled eval, CSR adjacency, sharded intern *)
(* ------------------------------------------------------------------ *)

let e21 () =
  header
    "E21  hot-path engine: compiled evaluation, CSR adjacency, sharded \
     interning";
  let cores = Domain.recommended_domain_count () in
  let compile_hits_c = Obs.Metric.counter "modelcheck.compile.cache_hits" in
  let ty_merges_c = Obs.Metric.counter "modelcheck.types.shard_merges" in
  let cty_merges_c = Obs.Metric.counter "modelcheck.ctypes.shard_merges" in
  (* --- A: all four solvers once, sequentially.  The signature rows
     record the exact hypotheses; the deterministic work counters land
     in the metric snapshot for bench/compare.py. *)
  let g = Gen.gnp ~seed:21 ~n:32 ~p:0.15 in
  (* the realizable solver's convention: free variables x, y1 *)
  let target = Fo.Parser.parse "exists z. E(x, z) /\\ E(z, y1)" in
  let lam =
    Sam.label_with g
      ~target:(fun v ->
        Modelcheck.Eval.holds g [ ("x", v.(0)); ("y1", 5) ] target)
      (Sam.all_tuples g ~k:1)
  in
  row "%-12s %8s  %s\n" "solver" "err" "hypothesis";
  let emit solver err hyp =
    let s = Folearn.Hypothesis.signature hyp in
    add_row [ ("solver", jstr solver); ("err", jfloat err); ("sig", jstr s) ];
    row "%-12s %8.4f  %s\n" solver err
      (if String.length s > 48 then String.sub s 0 48 ^ "..." else s)
  in
  let brute = Brute.solve g ~k:1 ~ell:1 ~q:2 lam in
  emit "brute" brute.Brute.err brute.Brute.hypothesis;
  (match Real.solve g ~ell:1 ~catalogue:[ target ] lam with
  | Some r -> emit "realizable" 0.0 r.Real.hypothesis
  | None -> row "%-12s (reject)\n" "realizable");
  let counting = Folearn.Erm_counting.solve g ~k:1 ~ell:1 ~q:1 ~tmax:2 lam in
  emit "counting" counting.Folearn.Erm_counting.err
    counting.Folearn.Erm_counting.hypothesis;
  let nd_cfg =
    Nd.default_config ~epsilon:0.125 ~radius:1 ~branch_width:8 ~k:1
      ~ell_star:1 ~q_star:1
      (Splitter.Nowhere_dense.of_graph "e21" g)
  in
  let nd = Nd.solve nd_cfg g lam in
  emit "nd" nd.Nd.err nd.Nd.hypothesis;
  (* --- A2: the compiled-evaluation hot path itself.  One staged
     compile, then every 2-tuple through the closure tree; all calls
     after the first hit the per-domain compile cache. *)
  let n = Graph.order g in
  let (pos, evals), t_eval =
    time (fun () ->
        let pos = ref 0 and evals = ref 0 in
        for a = 0 to n - 1 do
          for b = 0 to n - 1 do
            incr evals;
            if
              Modelcheck.Eval.holds_tuple g ~vars:[ "x"; "y1" ] [| a; b |]
                target
            then incr pos
          done
        done;
        (!pos, !evals))
  in
  add_row
    [
      ("workload", jstr "compiled_eval_sweep");
      ("evals", jint evals);
      ("positives", jint pos);
      ("time_s", jfloat t_eval);
    ];
  row "compiled eval sweep: %d evaluations, %d positive, %.3f s\n" evals pos
    t_eval;
  (* --- B: the erm_brute jobs sweep.  jobs = 1 first (the reference);
     every later level must reproduce the hypothesis bit for bit, and
     on a multi-core host the 4-job level carries the CI speedup
     gate. *)
  let g_sweep = Gen.gnp ~seed:22 ~n:44 ~p:0.12 in
  let lam_sweep =
    Sam.label_with g_sweep
      ~target:(fun v -> Bfs.dist g_sweep v.(0) 22 <= 2)
      (Sam.all_tuples g_sweep ~k:1)
  in
  row "%-10s %5s %10s %9s %10s %9s\n" "workload" "jobs" "time (s)" "speedup"
    "err" "match";
  let baseline = ref None in
  let speedup4 = ref 1.0 in
  let all_identical = ref true in
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs in
      let erm, t =
        time (fun () -> Brute.solve ~pool g_sweep ~k:1 ~ell:1 ~q:2 lam_sweep)
      in
      Par.Pool.shutdown pool;
      let here =
        (Folearn.Hypothesis.signature erm.Brute.hypothesis, erm.Brute.err)
      in
      let t1, agree =
        match !baseline with
        | None ->
            baseline := Some (t, here);
            (t, true)
        | Some (t1, first) -> (t1, first = here)
      in
      if not agree then all_identical := false;
      if jobs = 4 then speedup4 := t1 /. t;
      add_row
        [
          ("workload", jstr "erm_brute");
          ("jobs", jint jobs);
          ("time_s", jfloat t);
          ("speedup", jfloat (t1 /. t));
          ("identical", Obs.Json.Bool agree);
        ];
      row "%-10s %5d %10.3f %9.2f %10.3f %9b\n" "erm_brute" jobs t (t1 /. t)
        erm.Brute.err agree)
    [ 1; 2; 4 ];
  bench_extra_headline :=
    [
      ("cores", jint cores);
      ("compile_hits", jint (Obs.Metric.value compile_hits_c));
      ( "intern_shard_merges",
        jint (Obs.Metric.value ty_merges_c + Obs.Metric.value cty_merges_c) );
      ("speedup_at_4_jobs", jfloat !speedup4);
      ("identical", Obs.Json.Bool !all_identical);
    ];
  row
    "acceptance: hypotheses bit-identical at every jobs level; on hosts \
     with >= 4 cores the 4-job erm_brute speedup must reach 3x (gated in \
     CI; on this host cores = %d).\n"
    cores

(* ------------------------------------------------------------------ *)
(* E22: resident service - warm latency, admission, shedding, resume   *)
(* ------------------------------------------------------------------ *)

let e22 () =
  header
    "E22  resident service: warm vs cold latency, admission, shedding, \
     resume";
  let requests = ref 0 and rejected = ref 0 and shed = ref 0 in
  (* the chaos harness's SHORT_LEARN workload: the serve identity test
     already proves server output byte-identical to the CLI on it, so
     the latency comparison here is apples to apples *)
  let learn_params =
    Obs.Json.Obj
      [
        ("graph", jstr "cycle:24");
        ("colors", Obs.Json.List [ jstr "Red=0,3,6,9" ]);
        ("target", jstr "exists y. (E(x1,y) & Red(y))");
        ("k", jint 1);
        ("ell", jint 1);
        ("q", jint 2);
        ("solver", jstr "brute");
      ]
  in
  let run_learn ?budget ?ckpt ?precheck () =
    incr requests;
    Serve.Exec.run_op ?budget ?ckpt ?precheck ~op:"learn"
      ~params:learn_params ()
  in
  (* --- A: warm-engine latency vs a cold CLI process.  The warm leg is
     the daemon's engine path (Serve.Exec.run_op in a long-lived
     process, intern tables and evaluator caches carried over); the
     cold leg forks the real one-shot binary per request when it is
     built, and otherwise simulates a fresh process by dropping the
     intern tables between in-process runs. *)
  let pct sorted p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (ceil (p *. float (n - 1)))))
  in
  let samples xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    (pct a 0.5, pct a 0.99)
  in
  let warm_n = 9 and cold_n = 7 in
  ignore (run_learn ());
  (* untimed table warm-up *)
  let warm_times =
    List.init warm_n (fun _ ->
        let r, t = time (fun () -> run_learn ()) in
        assert (r.Serve.Exec.code = 0);
        t)
  in
  let cli =
    let p =
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/folearn_cli.exe"
    in
    if Sys.file_exists p then Some p else None
  in
  let cold_mode = match cli with Some _ -> "cli" | None -> "in-process" in
  let cold_times =
    match cli with
    | Some exe ->
        let args =
          [|
            exe; "learn"; "-g"; "cycle:24"; "--color"; "Red=0,3,6,9";
            "--target"; "exists y. (E(x1,y) & Red(y))"; "-k"; "1"; "-l";
            "1"; "-q"; "2"; "--solver"; "brute";
          |]
        in
        let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
        let times =
          List.init cold_n (fun _ ->
              incr requests;
              snd
                (time (fun () ->
                     let pid =
                       Unix.create_process exe args devnull devnull devnull
                     in
                     match snd (Unix.waitpid [] pid) with
                     | Unix.WEXITED 0 -> ()
                     | _ -> failwith "cold CLI run failed")))
        in
        Unix.close devnull;
        times
    | None ->
        List.init cold_n (fun _ ->
            T.reset_tables ();
            Modelcheck.Ctypes.reset_tables ();
            let r, t = time (fun () -> run_learn ()) in
            assert (r.Serve.Exec.code = 0);
            t)
  in
  let w50, w99 = samples warm_times and c50, c99 = samples cold_times in
  let warm_speedup = c50 /. w50 in
  row "%-10s %6s %12s %12s\n" "leg" "n" "p50 (s)" "p99 (s)";
  row "%-10s %6d %12.4f %12.4f\n" "warm" warm_n w50 w99;
  row "%-10s %6d %12.4f %12.4f   (%s)\n" "cold" cold_n c50 c99 cold_mode;
  row "warm speedup (cold p50 / warm p50): %.2fx\n" warm_speedup;
  add_row
    [
      ("leg", jstr "warm"); ("n", jint warm_n); ("p50_s", jfloat w50);
      ("p99_s", jfloat w99);
    ];
  add_row
    [
      ("leg", jstr "cold"); ("n", jint cold_n); ("p50_s", jfloat c50);
      ("p99_s", jfloat c99); ("mode", jstr cold_mode);
    ];
  (* --- B: admission control.  A stingy tenant's fuel quota must be
     refused by the zero-fuel planner precheck - before any enumeration
     runs - exactly as the daemon refuses it before queueing. *)
  let stingy =
    {
      Analysis.Plan.fuel = Some 2;
      timeout_s = None;
      max_table = None;
      max_ball = None;
    }
  in
  for _ = 1 to 4 do
    incr requests;
    match
      Serve.Exec.precheck_rejection ~op:"learn" ~params:learn_params
        ~limits:stingy
    with
    | Ok (Some rej) ->
        assert (rej.Analysis.Plan.resource = "fuel");
        incr rejected
    | Ok None -> failwith "fuel=2 must be rejected at admission"
    | Error m -> failwith m
  done;
  add_row [ ("leg", jstr "admission"); ("rejected", jint !rejected) ];
  row "admission: %d/4 stingy requests refused by the planner precheck\n"
    !rejected;
  (* --- C: queue saturation.  12 entries into a cap-4 queue: the
     bounded scheduler sheds the earliest-deadline victims and the
     engine only ever sees what survived. *)
  let q = Serve.Sched.create ~cap:4 in
  let ran = ref 0 in
  let base = Obs.Clock.now_ns () in
  for i = 1 to 12 do
    incr requests;
    let entry =
      {
        Serve.Sched.e_seq = i;
        e_tenant = "bench";
        e_deadline_ns =
          Some
            (Int64.add base
               (Int64.of_int (((i mod 6) + 1) * 1_000_000_000)));
        e_run = (fun () -> incr ran);
        e_shed = (fun () -> incr shed);
      }
    in
    match Serve.Sched.push q entry with
    | `Queued -> ()
    (* a queued victim's [e_shed] ran inside push; the incoming victim
       is answered by the caller, exactly as the daemon replies
       [overloaded] itself *)
    | `Shed_incoming -> incr shed
    | `Closed -> failwith "queue closed unexpectedly"
  done;
  Serve.Sched.close q;
  let rec drain () =
    match Serve.Sched.pop q with
    | Some e ->
        e.Serve.Sched.e_run ();
        drain ()
    | None -> ()
  in
  drain ();
  assert (!ran + !shed = 12);
  add_row [ ("leg", jstr "overload"); ("ran", jint !ran); ("shed", jint !shed) ];
  row "overload: cap 4, 12 pushed -> %d executed, %d shed\n" !ran !shed;
  (* --- D: resume after a kill.  Exhaust the fuel budget mid-
     enumeration (the bench-process stand-in for SIGKILL - same
     snapshot, same skip cursor), then resume from the snapshot and
     demand the answer byte-identical to an uninterrupted run. *)
  let reference = run_learn ~budget:(Guard.Budget.unlimited ()) () in
  assert (reference.Serve.Exec.code = 0);
  let full_fuel =
    match reference.Serve.Exec.spent with
    | Some s -> s.Guard.fuel
    | None -> failwith "reference run must account fuel"
  in
  let snap = Filename.temp_file "folearn-e22" ".snap" in
  let b1 = Guard.Budget.make ~fuel:(max 1 (full_fuel / 2)) () in
  let ck1 =
    Resil.Ctl.create ~path:snap ~every:64 ~budget:b1 ~run_id:"bench-e22"
      ~solver:"brute" ()
  in
  let interrupted = run_learn ~budget:b1 ~ckpt:ck1 ~precheck:false () in
  (* 3 = degraded (a best-so-far was salvaged), 4 = exhausted dry -
     either way the run stopped early with a snapshot on disk *)
  assert (interrupted.Serve.Exec.code = 3 || interrupted.Serve.Exec.code = 4);
  let snapshot =
    match Resil.Snapshot.load snap with
    | Ok s -> s
    | Error `Not_found -> failwith "no snapshot after exhaustion"
    | Error (`Corrupt m) -> failwith ("corrupt snapshot: " ^ m)
  in
  let b2 = Guard.Budget.unlimited () in
  let ck2 =
    Resil.Ctl.create ~path:snap ~every:64 ~budget:b2 ~resume:snapshot
      ~run_id:"bench-e22" ~solver:"brute" ()
  in
  let resumed = run_learn ~budget:b2 ~ckpt:ck2 ~precheck:false () in
  assert (resumed.Serve.Exec.code = 0);
  let identical = resumed.Serve.Exec.out = reference.Serve.Exec.out in
  assert identical;
  bench_checkpoint_writes := Resil.Ctl.writes ck2;
  Sys.remove snap;
  add_row
    [
      ("leg", jstr "resume");
      ("fuel_full", jint full_fuel);
      ("fuel_at_kill", jint (max 1 (full_fuel / 2)));
      ("snapshot_writes", jint (Resil.Ctl.writes ck2));
      ("identical", Obs.Json.Bool identical);
    ];
  row
    "resume: exhausted at fuel %d/%d, resumed run byte-identical: %b (%d \
     snapshot writes)\n"
    (max 1 (full_fuel / 2))
    full_fuel identical (Resil.Ctl.writes ck2);
  bench_extra_headline :=
    [
      ("requests", jint !requests);
      ("rejected", jint !rejected);
      ("shed", jint !shed);
      ("warm_speedup", jfloat warm_speedup);
    ];
  row
    "acceptance: stingy fuel refused before any work; cap-4 queue sheds \
     under 12-deep load; killed run resumes bit-identically.\n"

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
    ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15);
    ("e16", e16); ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20);
    ("e21", e21); ("e22", e22);
    ("micro", micro);
    ("overhead", overhead);
  ]

(* --metrics-addr: one exporter for the whole bench run, so a dashboard
   can watch the per-experiment counters live *)
let metrics_srv = ref None

let () =
  (* --jobs N sets the default worker-pool size for every experiment
     (E16 additionally sweeps its own explicit pools) *)
  let args =
    let rec strip = function
      | "--jobs" :: n :: rest ->
          (match int_of_string_opt n with
          | Some j when j >= 1 -> Par.set_jobs j
          | _ ->
              Printf.eprintf "bench: --jobs expects an integer >= 1, got %S\n" n;
              exit 2);
          strip rest
      | "--metrics-addr" :: a :: rest ->
          (match Pulse.Addr.parse a with
          | Error m ->
              Printf.eprintf "bench: --metrics-addr %s\n" m;
              exit 2
          | Ok addr -> (
              match Pulse.Server.start addr with
              | Error m ->
                  Printf.eprintf "bench: --metrics-addr %s: %s\n"
                    (Pulse.Addr.to_string addr) m;
                  exit 2
              | Ok srv ->
                  Printf.eprintf "bench: serving telemetry on %s\n%!"
                    (Pulse.Addr.to_string (Pulse.Server.bound_addr srv));
                  metrics_srv := Some srv));
          strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match args with _ :: _ as names -> names | [] -> List.map fst experiments
  in
  let t0 = Obs.Clock.now_ns () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> run_instrumented name f
      | None ->
          Printf.eprintf "unknown experiment %S (known: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 2)
    requested;
  (match !metrics_srv with Some srv -> Pulse.Server.stop srv | None -> ());
  Printf.printf "\ntotal bench time: %.1f s\n" (Obs.Clock.elapsed_s t0)
