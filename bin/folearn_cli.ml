(* folearn_cli: command-line driver for the library.

   Subcommands:
     learn   learn a first-order query from examples labelled by a target
     plan    static cost analysis of a learn run (focost)
     mc      model checking, directly or through the ERM oracle (Thm 1)
     strings MSO on strings: model checking and learning ([21])
     trees   MSO on trees: model checking and node concepts ([19])
     types   print the q-type partition of a graph
     game    play out the splitter game and print the trace
     lint    static analysis of FO/MSO formulas (folint)
     pulse   decode a flight-recorder dump or query a live exporter
     serve   resident multi-tenant learning service (folserve)
     call    run one op on a resident server, replaying its output
     submit  enqueue a learn as a resumable server-side job
     poll    fetch a submitted job's result or status

   Graph specifications (the --graph argument):
     path:N          cycle:N        clique:N      star:N
     grid:WxH        tree:N[:SEED]  deg:N:D[:SEED]
     gnp:N:P[:SEED]  cbt:DEPTH      file:PATH
   Colours are added with repeatable --color NAME=v1,v2,... options. *)

open Cmdliner
open Cgraph

(* ------------------------------------------------------------------ *)
(* Graph specification parsing                                         *)
(* ------------------------------------------------------------------ *)

(* the spec DSL lives in Serve.Exec so the resident service accepts
   exactly the strings this CLI accepts *)
let parse_graph_spec = Serve.Exec.parse_graph_spec

let graph_conv =
  let parser s = try parse_graph_spec s with _ -> Error (`Msg "bad graph spec") in
  let printer ppf _ = Format.fprintf ppf "<graph>" in
  Arg.conv (parser, printer)

let parse_color = Serve.Exec.parse_color

let color_conv =
  let parser s = try parse_color s with _ -> Error (`Msg "bad colour spec") in
  let printer ppf (name, _) = Format.fprintf ppf "%s=..." name in
  Arg.conv (parser, printer)

(* Formulas are taken as plain strings and parsed inside the command
   body: cmdliner reserves its own exit code (124) for [Arg.conv]
   failures, and a malformed formula must be a usage error (2) with the
   parser's line/column diagnostics on stderr. *)
let parse_formula_or_exit ~cmd ~flag s =
  match Fo.Parser.parse_result s with
  | Ok f -> f
  | Error e ->
      Format.eprintf "folearn %s: %s: %a@." cmd flag Fo.Parser.pp_error e;
      exit 2

(* common args *)

let graph_arg =
  Arg.(
    required
    & opt (some graph_conv) None
    & info [ "g"; "graph" ] ~docv:"SPEC"
        ~doc:"Background graph, e.g. path:10, tree:30:7, grid:4x5, gnp:20:0.3.")

let colors_arg =
  Arg.(
    value & opt_all color_conv []
    & info [ "c"; "color" ] ~docv:"NAME=V,V"
        ~doc:"Add a colour class (repeatable), e.g. --color Red=0,3,6.")

let with_cli_colors g colors = Graph.with_colors g colors

(* observability: --trace / --stats / --stats-json on the compute-heavy
   subcommands.  The sink stays disabled unless one of them is given, so
   the default path keeps its uninstrumented cost. *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans and write a Chrome trace-event file, loadable in \
           chrome://tracing or ui.perfetto.dev.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the metrics snapshot after the run.")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write the metrics snapshot as JSON (pretty-print it back with \
           $(b,folearn stats)).")

(* live telemetry: --metrics-addr serves /metrics, /metrics.json,
   /healthz and /progress from a domain of its own for the whole run;
   --fdr keeps the bounded event ring flowing to a crash-readable
   flight-recorder file.  Both ride the compute-heavy subcommands. *)

let metrics_addr_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-addr" ] ~docv:"ADDR"
        ~doc:
          "Serve live telemetry while the run executes: $(b,unix:PATH), \
           $(b,HOST:PORT) or $(b,:PORT) (port 0 picks a free port, \
           printed on stderr).  Endpoints: /metrics (Prometheus text), \
           /metrics.json, /healthz, /progress.  Implies metric \
           recording, like --stats.")

let fdr_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fdr" ] ~docv:"FILE"
        ~doc:
          "Flight recorder: keep rewriting $(docv) with the most recent \
           telemetry events (atomic writes), so even a SIGKILL'd run \
           leaves a readable dump.  Decode it with $(b,folearn pulse).")

type pulse_opts = { metrics_addr : string option; fdr : string option }

let pulse_term =
  let mk metrics_addr fdr = { metrics_addr; fdr } in
  Term.(const mk $ metrics_addr_arg $ fdr_arg)

(* attach the flight recorder and bracket [f] with the exporter server;
   the recorder stays attached afterwards so the at_exit dump still
   lands *)
let with_pulse ~cmd { metrics_addr; fdr } f =
  (match fdr with
  | None -> ()
  | Some path -> Pulse.Fdr.attach ~path ());
  match metrics_addr with
  | None -> f ()
  | Some spec -> (
      match Pulse.Addr.parse spec with
      | Error m ->
          Format.eprintf "folearn %s: --metrics-addr %s@." cmd m;
          exit 2
      | Ok addr -> (
          match Pulse.Server.start addr with
          | Error m ->
              Format.eprintf "folearn %s: --metrics-addr %s: %s@." cmd
                (Pulse.Addr.to_string addr) m;
              exit 2
          | Ok srv ->
              Format.eprintf "folearn %s: serving telemetry on %s@." cmd
                (Pulse.Addr.to_string (Pulse.Server.bound_addr srv));
              Fun.protect
                ~finally:(fun () ->
                  (* a signal flipped the exporter into draining mode:
                     hold the server up for a beat so scrapers observe
                     the 503 before the socket closes (used by CI;
                     default is no grace, stop immediately) *)
                  (if Pulse.Server.draining () then
                     match
                       Option.bind
                         (Sys.getenv_opt "FOLEARN_DRAIN_GRACE")
                         float_of_string_opt
                     with
                     | Some s when s > 0.0 -> Unix.sleepf s
                     | _ -> ());
                  Pulse.Server.set_progress None;
                  Pulse.Server.stop srv)
                f))

let with_obs ~pulse ~trace ~stats ~stats_json f =
  if
    trace = None && (not stats) && stats_json = None
    && pulse.metrics_addr = None
  then f ()
  else begin
    Obs.enable ();
    Obs.reset_all ();
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        (match trace with
        | Some path ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc
                  (Obs.Json.to_string (Obs.Span.chrome_trace ())))
        | None -> ());
        (match stats_json with
        | Some path ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc
                  (Obs.Json.to_string
                     (Obs.Metric.snapshot_to_json (Obs.Metric.snapshot ()))))
        | None -> ());
        if stats then
          Format.printf "%a" Obs.Metric.pp_snapshot (Obs.Metric.snapshot ()))
      f
  end

(* resource budgets: --fuel / --timeout / --max-table / --max-ball on
   the compute-heavy subcommands.  With none of them given no budget is
   installed, so the default path costs one load and one branch per
   checkpoint.  Exit codes: 0 complete, 2 usage, 3 degraded but
   answered, 4 exhausted with nothing to show. *)

let exit_degraded = 3
let exit_exhausted = 4

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:"Abort after $(docv) checkpoint ticks (solver candidates, type \
              rows, BFS dequeues, ...).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Wall-clock deadline for the whole command, in seconds \
              (fractions allowed).")

let max_table_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-table" ] ~docv:"ROWS"
        ~doc:"Cap on memoised Hintikka-type table rows.")

let max_ball_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-ball" ] ~docv:"VERTICES"
        ~doc:"Cap on the size of any neighbourhood ball.")

(* admission control: a declared budget that is provably below the
   static first-settle floor ([Analysis.Plan]) is rejected before any
   fuel burns; --no-precheck restores the plain doomed burn *)
let no_precheck_arg =
  Arg.(
    value & flag
    & info [ "no-precheck" ]
        ~doc:
          "Skip the static admission precheck: run even when the declared \
           budget is provably too small to settle a first answer (see \
           $(b,folearn plan)).")

(* parallelism: --jobs on the compute-heavy subcommands.  The flag
   overrides the FOLEARN_JOBS environment variable; with neither given
   everything runs on one domain and the sequential code paths are
   taken unchanged. *)

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "FOLEARN_JOBS")
        ~doc:
          "Worker domains for the parallel solver paths (default 1). \
           Results are bit-identical to a sequential run.")

let apply_jobs = function
  | None -> ()
  | Some n when n >= 1 -> Par.set_jobs n
  | Some n ->
      Format.eprintf "folearn: --jobs must be >= 1 (got %d)@." n;
      exit 2

let budget_of ~fuel ~timeout ~max_table ~max_ball =
  if fuel = None && timeout = None && max_table = None && max_ball = None then
    None
  else
    Some
      (Guard.Budget.make ?fuel ?timeout_s:timeout ?max_table ?max_ball ())

(* the /progress fuel gauge needs a live budget to read spend from, so
   --metrics-addr with no budget flag installs an unlimited one — the
   same precedent --checkpoint set for its snapshot cadence *)
let budget_for_pulse pulse budget =
  match budget with
  | Some _ as b -> b
  | None ->
      if pulse.metrics_addr = None then None
      else Some (Guard.Budget.unlimited ())

let report_exhausted ~cmd ~reason ~checkpoint ~(spent : Guard.spent) =
  let what =
    match reason with
    | Guard.Interrupted -> "interrupted"
    | r -> "budget exhausted: " ^ Guard.reason_to_string r
  in
  Format.eprintf "folearn %s: %s at %s (fuel %d, %.3f s, table %d, ball %d)@."
    cmd what
    (Guard.checkpoint_to_string checkpoint)
    spent.Guard.fuel
    (Int64.to_float spent.Guard.elapsed_ns /. 1e9)
    spent.Guard.table_rows spent.Guard.ball_peak;
  (* preserve the final event window when a run dies of exhaustion or a
     signal (no-op unless --fdr attached the recorder) *)
  Pulse.Fdr.dump_now
    ~reason:
      (match reason with
      | Guard.Interrupted -> "interrupted"
      | r -> "guard.exhausted:" ^ Guard.reason_to_string r)

(* crash safety: --checkpoint / --resume on the long-running
   subcommands.  Snapshot cadence rides the Guard tick hook, so an
   uncheckpointed, unbudgeted run keeps its zero-overhead hot path;
   --checkpoint with no budget flag installs an unlimited budget purely
   to drive the cadence (it never trips). *)

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"PATH"
        ~doc:
          "Write crash-safe snapshots of the run to $(docv) (atomic \
           temp-file + fsync + rename; CRC-checked on load).")

let checkpoint_every_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Snapshot every $(docv) settled candidates (default: off, the \
           time cadence governs).")

let checkpoint_interval_arg =
  Arg.(
    value & opt float 2.0
    & info [ "checkpoint-interval" ] ~docv:"SECONDS"
        ~doc:"Snapshot at most every $(docv) seconds (default 2).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"PATH"
        ~doc:
          "Resume from the snapshot at $(docv).  A missing file is a \
           fresh start; a corrupt snapshot or one from a different \
           run/solver is a usage error.  The resumed run's output is \
           bit-identical to an uninterrupted one.")

type ckpt_opts = {
  ck_path : string option;
  ck_every : int option;
  ck_interval : float;
  ck_resume : string option;
}

let ckpt_term =
  let mk ck_path ck_every ck_interval ck_resume =
    { ck_path; ck_every; ck_interval; ck_resume }
  in
  Term.(
    const mk $ checkpoint_arg $ checkpoint_every_arg $ checkpoint_interval_arg
    $ resume_arg)

(* the handler body is async-signal-safe (two atomic stores); the next
   budgeted tick on any domain converts the flag into an [Interrupted]
   trip, the outcome handler flushes a final snapshot, and a live
   /healthz endpoint starts answering 503 draining *)
let install_signals () =
  let h =
    Sys.Signal_handle
      (fun _ ->
        Guard.interrupt ();
        Pulse.Server.set_draining true)
  in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h

(* Resolve the checkpoint flags into (budget, controller).  Resuming a
   snapshot whose run id or solver differs from this invocation would
   silently replay-skip the wrong candidates, so that is a usage
   error; a missing snapshot file is a fresh start, letting harnesses
   pass --checkpoint and --resume together unconditionally. *)
let setup_resilience ~cmd ~solver ~run_id ~budget
    { ck_path; ck_every; ck_interval; ck_resume } =
  Guard.clear_interrupt ();
  let resume =
    match ck_resume with
    | None -> None
    | Some path -> (
        match Resil.Snapshot.load_for ~run_id ~solver path with
        | Ok snap ->
            Format.eprintf
              "folearn %s: resuming from %s (cursor %d, %d snapshot \
               writes so far)@."
              cmd path snap.Resil.Snapshot.cursor
              snap.Resil.Snapshot.writes;
            Some snap
        | Error `Not_found ->
            Format.eprintf "folearn %s: no snapshot at %s; starting fresh@."
              cmd path;
            None
        | Error (`Corrupt msg) ->
            Format.eprintf "folearn %s: --resume %s: corrupt snapshot: %s@."
              cmd path msg;
            exit 2
        | Error (`Mismatch m) ->
            Format.eprintf "folearn %s: --resume %s: %a@." cmd path
              Resil.Snapshot.pp_mismatch m;
            Format.eprintf
              "folearn %s: hint: that snapshot belongs to another \
               invocation; pass a fresh --checkpoint path to start over@."
              cmd;
            exit 2)
  in
  let wants_ckpt = ck_path <> None || resume <> None in
  let budget =
    match budget with
    | Some _ as b -> b
    | None -> if wants_ckpt then Some (Guard.Budget.unlimited ()) else None
  in
  (match budget with Some _ -> install_signals () | None -> ());
  let ckpt =
    if not wants_ckpt then Resil.Ctl.none
    else
      Resil.Ctl.create ?path:ck_path ?every:ck_every ~interval_s:ck_interval
        ?budget ?resume ~run_id ~solver ()
  in
  (budget, ckpt)

(* Install the /progress sampler: a closure over the run's identity,
   the Resil frontier/best, the Guard budget and (for learn) the static
   plan envelope.  The closure runs on the exporter domain, so it only
   touches mutex- or atomic-guarded state. *)
let install_progress ~metrics ~run_id ~solver ~sample_size ?fuel_lo ?fuel_hi
    ?total budget ckpt =
  if metrics then
    Pulse.Server.set_progress
      (Some
         (fun () ->
           let fuel_spent, elapsed_ns =
             match budget with
             | None -> (None, None)
             | Some b ->
                 let s = Guard.Budget.spent b in
                 (Some s.Guard.fuel, Some s.Guard.elapsed_ns)
           in
           Pulse.Progress.to_json
             {
               Pulse.Progress.run_id;
               solver;
               frontier = Resil.Ctl.frontier ckpt;
               total;
               best = Resil.Ctl.best ckpt;
               sample_size;
               fuel_spent;
               elapsed_ns;
               fuel_lo;
               fuel_hi;
             }))

(* an interrupted run exits 3 even with nothing salvaged: the operator
   asked for the stop, and the snapshot (if any) holds the progress *)
let exhausted_exit reason ~salvaged =
  if reason = Guard.Interrupted || salvaged then exit_degraded
  else exit_exhausted

let run_id_of parts = Digest.to_hex (Digest.string (String.concat "\n" parts))

(* ------------------------------------------------------------------ *)
(* fleet: fault-tolerant multi-process ERM sharding (learn only)       *)
(* ------------------------------------------------------------------ *)

(* `learn --fleet DIR --workers N` runs the coordinator: it shards the
   candidate space into lease-claimed chunks under DIR, keeps N worker
   processes alive (respawning dead ones), and merges their published
   frontiers into the deterministic (error, index) lex-min — so the
   final output is byte-identical to a sequential run.  `--worker`
   turns the invocation into a claimant for an externally supervised
   fleet (same DIR, same learn flags). *)

type fleet_opts = {
  f_dir : string option;
  f_workers : int;
  f_worker : bool;
  f_worker_id : string option;
  f_heartbeat : float;
  f_chunk : int option;
  f_max_attempts : int;
  f_chaos : string option;
}

let fleet_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fleet" ] ~docv:"DIR"
        ~doc:
          "Shard the ERM sweep across processes coordinating through \
           $(docv) (lease files, heartbeat expiry, fenced publishes).  \
           The directory is the durable state: re-running the same \
           command against it resumes where the fleet left off.")

let fleet_workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker processes the coordinator spawns and keeps alive \
           (default 1; 0 = externally supervised $(b,--worker) \
           claimants only).")

let fleet_worker_arg =
  Arg.(
    value & flag
    & info [ "worker" ]
        ~doc:
          "Run as a fleet worker: claim chunks from $(b,--fleet) DIR, \
           evaluate, publish, repeat until the coordinator writes DONE.  \
           Prints nothing to stdout.")

let fleet_worker_id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fleet-worker-id" ] ~docv:"ID"
        ~doc:"Worker id recorded in leases (default: w-ext-<pid>).")

let fleet_heartbeat_arg =
  Arg.(
    value & opt float 5.0
    & info [ "fleet-heartbeat" ] ~docv:"SECONDS"
        ~doc:
          "Lease heartbeat: a worker renews its lease every third of \
           this, and the coordinator reclaims chunks whose lease \
           deadline passed (default 5).")

let fleet_chunk_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fleet-chunk" ] ~docv:"N"
        ~doc:
          "Candidates per chunk (default: candidate count / (8 x \
           workers), at most 4096 chunks).")

let fleet_max_attempts_arg =
  Arg.(
    value & opt int 3
    & info [ "fleet-max-attempts" ] ~docv:"N"
        ~doc:
          "Quarantine a chunk after $(docv) failed attempts instead of \
           retrying forever (default 3).")

let fleet_chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fleet-chaos" ] ~docv:"SPEC"
        ~doc:
          "Test-only fault injection: comma-separated $(b,poison:C) \
           (chunk C always fails deterministically) and $(b,flaky:C:N) \
           (chunk C fails transiently on its first N claims) terms, \
           applied by workers.")

let fleet_term =
  let mk f_dir f_workers f_worker f_worker_id f_heartbeat f_chunk
      f_max_attempts f_chaos =
    {
      f_dir; f_workers; f_worker; f_worker_id; f_heartbeat; f_chunk;
      f_max_attempts; f_chaos;
    }
  in
  Term.(
    const mk $ fleet_dir_arg $ fleet_workers_arg $ fleet_worker_arg
    $ fleet_worker_id_arg $ fleet_heartbeat_arg $ fleet_chunk_arg
    $ fleet_max_attempts_arg $ fleet_chaos_arg)

let fleet_chaos_of ~cmd = function
  | None -> []
  | Some spec -> (
      match Fleet.parse_chaos spec with
      | Ok chaos -> chaos
      | Error m ->
          Format.eprintf "folearn %s: --fleet-chaos: %s@." cmd m;
          exit 2)

(* fleet shards the indexable parameter sweeps; nd and local have no
   stable candidate numbering to shard over *)
let fleet_check_solver ~cmd solver =
  match solver with
  | `Brute | `Counting -> ()
  | `Nd | `Local ->
      Format.eprintf
        "folearn %s: --fleet supports --solver brute and counting only@." cmd;
      exit 2

(* ------------------------------------------------------------------ *)
(* learn                                                               *)
(* ------------------------------------------------------------------ *)

let learn_cmd =
  let target_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "t"; "target" ] ~docv:"FORMULA"
          ~doc:
            "Hidden target query over x1..xk (used only to label the \
             training data).")
  in
  let k_arg = Arg.(value & opt int 1 & info [ "k" ] ~doc:"Arity of examples.") in
  let ell_arg =
    Arg.(value & opt int 0 & info [ "l"; "ell" ] ~doc:"Parameter budget.")
  in
  let q_arg =
    Arg.(value & opt int 1 & info [ "q" ] ~doc:"Quantifier-rank budget.")
  in
  let solver_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("brute", `Brute); ("nd", `Nd); ("counting", `Counting);
               ("local", `Local);
             ])
          `Brute
      & info [ "solver" ]
          ~doc:
            "ERM solver: $(b,brute) (Prop 11, exact), $(b,nd) (Theorem 13, \
             nowhere dense), $(b,counting) (FOC extension), or $(b,local) \
             (sublinear local access).")
  in
  let tmax_arg =
    Arg.(
      value & opt int 2
      & info [ "tmax" ]
          ~doc:"Counting-threshold cap for $(b,--solver counting).")
  in
  let noise_arg =
    Arg.(value & opt float 0.0 & info [ "noise" ] ~doc:"Label-flip probability.")
  in
  let m_arg =
    Arg.(
      value & opt int 0
      & info [ "m" ]
          ~doc:"Sample size (0 = label every tuple of the graph).")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  (* shared by the solo path, the fleet coordinator and fleet workers:
     parse/validate the target, colour the graph, fix the run identity
     and label the training sequence.  Workers must rebuild exactly
     this state from their own flags, so it only depends on the
     arguments — never on ambient process state. *)
  let learn_prep g colors target k ell q solver tmax noise m seed =
    let target = parse_formula_or_exit ~cmd:"learn" ~flag:"--target" target in
    let g = with_cli_colors g colors in
    let solver_name =
      match solver with
      | `Brute -> "brute"
      | `Nd -> "nd"
      | `Counting -> "counting"
      | `Local -> "local"
    in
    let run_id =
      run_id_of
        [
          "learn"; Io.to_string g;
          Format.asprintf "%a" Fo.Formula.pp target;
          string_of_int k; string_of_int ell; string_of_int q; solver_name;
          string_of_int tmax; string_of_float noise; string_of_int m;
          string_of_int seed;
        ]
    in
    let module Sam = Folearn.Sample in
    let xvars = Folearn.Hypothesis.xvars k in
    (match
       Analysis.Diagnostic.errors
         (Analysis.Fo_check.check
            ~vocab:(Analysis.Vocab.of_graph g)
            ~allowed_free:xvars target)
     with
    | [] -> ()
    | errs ->
        Format.eprintf
          "folearn learn: the target must be a query over x1..x%d in the \
           graph's vocabulary:@.%s@."
          k
          (Analysis.Diagnostic.render_list errs);
        exit 2);
    let tuples =
      if m = 0 then Sam.all_tuples g ~k else Sam.random_tuples ~seed g ~k ~m
    in
    let lam =
      Sam.label_with_query g ~formula:target ~xvars tuples
      |> fun l -> if noise > 0.0 then Sam.flip_noise ~seed ~p:noise l else l
    in
    (g, solver_name, run_id, tuples, lam)
  in
  (* fleet worker: claim/evaluate/publish against --fleet DIR until the
     coordinator writes DONE.  No stdout, no telemetry, no signal
     rewiring — the coordinator owns the run's observable surface. *)
  let run_fleet_worker fleet g colors target k ell q solver tmax noise m seed
      fuel timeout max_table max_ball =
    let dir =
      match fleet.f_dir with
      | Some d -> d
      | None ->
          Format.eprintf "folearn learn: --worker requires --fleet DIR@.";
          exit 2
    in
    fleet_check_solver ~cmd:"learn" solver;
    let chaos = fleet_chaos_of ~cmd:"learn" fleet.f_chaos in
    let g, solver_name, run_id, _tuples, lam =
      learn_prep g colors target k ell q solver tmax noise m seed
    in
    let eval =
      match solver with
      | `Brute ->
          fun ~lo ~hi -> Folearn.Erm_brute.eval_range g ~k ~ell ~q lam ~lo ~hi
      | `Counting ->
          fun ~lo ~hi ->
            Folearn.Erm_counting.eval_range g ~k ~ell ~q ~tmax lam ~lo ~hi
      | _ -> assert false
    in
    Fleet.worker
      {
        Fleet.w_dir = dir;
        w_id =
          (match fleet.f_worker_id with
          | Some id -> id
          | None -> Printf.sprintf "w-ext-%d" (Unix.getpid ()));
        w_run_id = run_id;
        w_solver = solver_name;
        w_parent =
          Option.bind
            (Sys.getenv_opt "FOLEARN_FLEET_PARENT")
            int_of_string_opt;
        w_chaos = chaos;
        w_make_budget =
          (fun () -> budget_of ~fuel ~timeout ~max_table ~max_ball);
        (* chunk results carry only (index, errors): no type ids
           survive a chunk, so the worker process can drop the intern
           registries instead of growing them for the whole drain *)
        w_reclaim =
          (fun () ->
            Modelcheck.Types.reset_tables ();
            Modelcheck.Ctypes.reset_tables ());
      }
      ~eval
  in
  (* fleet coordinator: shard, supervise, merge; the printed result is
     byte-identical to the sequential solver's *)
  let run_fleet_coordinator ~dir fleet ~precheck g colors target k ell q
      solver tmax noise m seed fuel timeout max_table max_ball ckpt_opts pulse
      =
    fleet_check_solver ~cmd:"learn" solver;
    (match (ckpt_opts.ck_path, ckpt_opts.ck_resume) with
    | None, None -> ()
    | _ ->
        Format.eprintf
          "folearn learn: --fleet and --checkpoint/--resume are mutually \
           exclusive (the fleet directory is the durable state)@.";
        exit 2);
    (match fleet.f_worker_id with
    | None -> ()
    | Some _ ->
        Format.eprintf "folearn learn: --fleet-worker-id requires --worker@.";
        exit 2);
    if fleet.f_workers < 0 then begin
      Format.eprintf "folearn learn: --workers must be >= 0 (got %d)@."
        fleet.f_workers;
      exit 2
    end;
    if fleet.f_heartbeat <= 0.0 then begin
      Format.eprintf "folearn learn: --fleet-heartbeat must be positive@.";
      exit 2
    end;
    if fleet.f_max_attempts < 1 then begin
      Format.eprintf "folearn learn: --fleet-max-attempts must be >= 1@.";
      exit 2
    end;
    (* workers apply the chaos spec; validate it up front anyway so a
       typo fails the run before any fork *)
    let (_ : Fleet.chaos list) = fleet_chaos_of ~cmd:"learn" fleet.f_chaos in
    let g, solver_name, run_id, _tuples, lam =
      learn_prep g colors target k ell q solver tmax noise m seed
    in
    let module Sam = Folearn.Sample in
    Format.printf "training sequence: %d examples (%d positive)@."
      (Sam.size lam)
      (List.length (Sam.positives lam));
    let n = Graph.order g in
    let total =
      match Graph.Tuple.count ~n ~k:ell with
      | Some t -> t
      | None ->
          Format.eprintf
            "folearn learn: --fleet: the candidate space n^ell does not fit \
             in an int; nothing to shard@.";
          exit 2
    in
    let user_budget = budget_of ~fuel ~timeout ~max_table ~max_ball in
    let what, plan_solver =
      match solver with
      | `Brute -> ("Erm_brute", Analysis.Plan.Brute)
      | `Counting -> ("Erm_counting", Analysis.Plan.Counting)
      | _ -> assert false
    in
    (* same admission gate the sequential solvers run: a per-chunk
       budget provably below the first-settle floor is rejected before
       any worker forks *)
    (match
       Folearn.Admission.erm ?budget:user_budget ~tmax ~enabled:precheck ~what
         ~solver:plan_solver g ~k ~ell ~q lam
     with
    | Some (Guard.Exhausted { reason; checkpoint; spent; _ }) ->
        report_exhausted ~cmd:"learn" ~reason ~checkpoint ~spent;
        Format.eprintf "folearn learn: no hypothesis salvaged@.";
        exit (exhausted_exit reason ~salvaged:false)
    | Some (Guard.Complete _) | None -> ());
    Guard.clear_interrupt ();
    install_signals ();
    let mon = Fleet.Monitor.create () in
    let ctl =
      if pulse.metrics_addr <> None then
        Resil.Ctl.observer ~run_id ~solver:solver_name ()
      else Resil.Ctl.none
    in
    (* /progress: the standard frontier document plus a "fleet" member
       with per-worker liveness, lease churn and quarantine counts *)
    if pulse.metrics_addr <> None then
      Pulse.Server.set_progress
        (Some
           (fun () ->
             let base =
               Pulse.Progress.to_json
                 {
                   Pulse.Progress.run_id;
                   solver = solver_name;
                   frontier = Resil.Ctl.frontier ctl;
                   total = Some total;
                   best = Resil.Ctl.best ctl;
                   sample_size = Sam.size lam;
                   fuel_spent = None;
                   elapsed_ns = None;
                   fuel_lo = None;
                   fuel_hi = None;
                 }
             in
             match base with
             | Obs.Json.Obj kvs ->
                 Obs.Json.Obj
                   (kvs @ [ ("fleet", Fleet.Monitor.to_json mon) ])
             | j -> j));
    let chunk_size =
      match fleet.f_chunk with
      | Some c when c >= 1 -> c
      | Some c ->
          Format.eprintf "folearn learn: --fleet-chunk must be >= 1 (got %d)@."
            c;
          exit 2
      | None ->
          let by_workers = max 1 (total / (8 * max 1 fleet.f_workers)) in
          let min_for_cap = (total + 4095) / 4096 in
          max by_workers min_for_cap
    in
    Unix.putenv "FOLEARN_FLEET_PARENT" (string_of_int (Unix.getpid ()));
    let spawn i =
      Unix.create_process Sys.executable_name
        (Array.append Sys.argv
           [| "--worker"; "--fleet-worker-id"; "w" ^ string_of_int i |])
        Unix.stdin Unix.stdout Unix.stderr
    in
    let cfg =
      {
        Fleet.c_dir = dir;
        c_run_id = run_id;
        c_solver = solver_name;
        c_total = total;
        c_chunk_size = chunk_size;
        c_heartbeat_s = fleet.f_heartbeat;
        c_max_attempts = fleet.f_max_attempts;
        c_sample_size = Sam.size lam;
        c_workers = fleet.f_workers;
        c_spawn = spawn;
        c_backoff_base_s = Fleet.default_backoff_base_s;
        c_backoff_cap_s = Fleet.default_backoff_cap_s;
      }
    in
    match Fleet.coordinate ~monitor:mon ~ctl cfg with
    | Error msg ->
        Format.eprintf "folearn learn: --fleet: %s@." msg;
        2
    | Ok out ->
        (* the winning hypothesis is recovered by re-evaluating the
           lex-min index with a fresh context — the same mechanism a
           full-skip checkpoint resume uses, so the output bytes match
           the sequential run *)
        let print_winner ~params_tried =
          (match solver with
          | `Brute ->
              Format.printf
                "solver: Prop 11 exact ERM (tried %d parameter tuples)@."
                params_tried
          | `Counting ->
              Format.printf
                "solver: exact counting ERM (FOC, thresholds <= %d; tried %d \
                 parameter tuples)@."
                tmax params_tried
          | _ -> assert false);
          match out.Fleet.best with
          | Some (i, _) ->
              let params = Graph.Tuple.of_index ~n ~k:ell i in
              let err, hyp =
                match solver with
                | `Brute ->
                    let r =
                      Folearn.Erm_brute.solve_for_params g ~k ~q ~params lam
                    in
                    (r.Folearn.Erm_brute.err, r.Folearn.Erm_brute.hypothesis)
                | `Counting ->
                    let r =
                      Folearn.Erm_counting.solve_for_params g ~k ~q ~tmax
                        ~params lam
                    in
                    ( r.Folearn.Erm_counting.err,
                      r.Folearn.Erm_counting.hypothesis )
                | _ -> assert false
              in
              Format.printf "training error: %.4f@." err;
              Format.printf "%a@." Folearn.Hypothesis.pp hyp
          | None ->
              Format.printf "training error: %.4f@."
                (Sam.error_of (fun _ -> false) lam);
              Format.printf "%a@." Folearn.Hypothesis.pp
                (Folearn.Hypothesis.constantly g ~k false)
        in
        if out.Fleet.interrupted then begin
          Format.eprintf
            "folearn learn: interrupted; fleet directory %s holds the \
             settled frontier (%d of %d candidates)@."
            dir out.Fleet.settled total;
          Pulse.Fdr.dump_now ~reason:"interrupted";
          (match out.Fleet.best with
          | Some _ ->
              Format.printf
                "best-so-far hypothesis (no optimality certificate):@.";
              print_winner ~params_tried:out.Fleet.settled
          | None -> Format.eprintf "folearn learn: no hypothesis salvaged@.");
          exit_degraded
        end
        else if out.Fleet.quarantined <> [] then begin
          Format.eprintf
            "folearn learn: fleet quarantined %d chunk(s) after repeated \
             failures:@."
            (List.length out.Fleet.quarantined);
          List.iter
            (fun qc ->
              Format.eprintf
                "  chunk %d [%d,%d): %d attempts, last error: %s@."
                qc.Fleet.q_chunk qc.Fleet.q_lo qc.Fleet.q_hi qc.Fleet.q_attempts
                qc.Fleet.q_error)
            out.Fleet.quarantined;
          match out.Fleet.best with
          | Some _ ->
              Format.printf
                "best-so-far hypothesis (no optimality certificate):@.";
              print_winner ~params_tried:out.Fleet.settled;
              exit_degraded
          | None ->
              Format.eprintf "folearn learn: no hypothesis salvaged@.";
              exit_exhausted
        end
        else begin
          print_winner ~params_tried:total;
          0
        end
  in
  let run g colors target k ell q solver tmax noise m seed fuel timeout
      max_table max_ball no_precheck jobs fleet_opts ckpt_opts pulse trace
      stats stats_json =
    apply_jobs jobs;
    let precheck = not no_precheck in
    if fleet_opts.f_worker then
      run_fleet_worker fleet_opts g colors target k ell q solver tmax noise m
        seed fuel timeout max_table max_ball
    else
      match fleet_opts.f_dir with
      | Some dir ->
          with_obs ~pulse ~trace ~stats ~stats_json @@ fun () ->
          with_pulse ~cmd:"learn" pulse @@ fun () ->
          run_fleet_coordinator ~dir fleet_opts ~precheck g colors target k
            ell q solver tmax noise m seed fuel timeout max_table max_ball
            ckpt_opts pulse
      | None ->
    with_obs ~pulse ~trace ~stats ~stats_json @@ fun () ->
    with_pulse ~cmd:"learn" pulse @@ fun () ->
    let user_budget = budget_of ~fuel ~timeout ~max_table ~max_ball in
    let budget = budget_for_pulse pulse user_budget in
    let g, solver_name, run_id, tuples, lam =
      learn_prep g colors target k ell q solver tmax noise m seed
    in
    let budget, ckpt =
      setup_resilience ~cmd:"learn" ~solver:solver_name ~run_id ~budget
        ckpt_opts
    in
    (* no checkpointing asked for, but a live /progress endpoint wants
       the settled frontier: track it passively (admission prechecks
       still see an un-checkpointed run) *)
    let ckpt =
      if pulse.metrics_addr <> None && not (Resil.Ctl.active ckpt) then
        Resil.Ctl.observer ~run_id ~solver:solver_name ()
      else ckpt
    in
    let module Sam = Folearn.Sample in
    Format.printf "training sequence: %d examples (%d positive)@."
      (Sam.size lam)
      (List.length (Sam.positives lam));
    (* /progress marries the live frontier with the static plan
       envelope, so scrapers get fuel_spent / fuel_hi percent-complete
       without running `folearn plan` themselves *)
    (if pulse.metrics_addr <> None then
       let module Plan = Analysis.Plan in
       let module Cm = Analysis.Cost_model in
       let psolver =
         match solver with
         | `Brute -> Plan.Brute
         | `Nd -> Plan.Nd
         | `Counting -> Plan.Counting
         | `Local -> Plan.Local
       in
       let plan = Plan.analyze (Plan.input ~tmax g ~k ~ell ~q tuples) psolver in
       let env_lo (e : Cm.Env.t) = Cm.Count.to_int_opt e.Cm.Env.lo in
       let env_hi (e : Cm.Env.t) = Cm.Count.to_int_opt e.Cm.Env.hi in
       install_progress ~metrics:true ~run_id ~solver:solver_name
         ~sample_size:(Sam.size lam)
         ?fuel_lo:(env_lo plan.Plan.fuel_total)
         ?fuel_hi:(env_hi plan.Plan.fuel_total)
         ?total:(env_hi plan.Plan.hypotheses)
         budget ckpt);
    (* one outcome handler for every solver: 0 on a complete run, 3
       when only a best-so-far hypothesis (with its true empirical
       error, but no min-error certificate) survived, 4 when nothing
       did *)
    let conclude outcome print =
      match outcome with
      | Guard.Complete r ->
          Resil.Ctl.flush ~complete:true ckpt;
          print r;
          0
      | Guard.Exhausted { best_so_far = Some r; reason; checkpoint; spent } ->
          Resil.Ctl.flush ckpt;
          report_exhausted ~cmd:"learn" ~reason ~checkpoint ~spent;
          Format.printf "best-so-far hypothesis (no optimality certificate):@.";
          print r;
          exhausted_exit reason ~salvaged:true
      | Guard.Exhausted { best_so_far = None; reason; checkpoint; spent } ->
          Resil.Ctl.flush ckpt;
          report_exhausted ~cmd:"learn" ~reason ~checkpoint ~spent;
          Format.eprintf "folearn learn: no hypothesis salvaged@.";
          exhausted_exit reason ~salvaged:false
    in
    match solver with
    | `Brute ->
        conclude
          (Folearn.Erm_brute.solve_budgeted ?budget ~precheck ~ckpt g ~k ~ell
             ~q lam)
          (fun (r : Folearn.Erm_brute.result) ->
            Format.printf
              "solver: Prop 11 exact ERM (tried %d parameter tuples)@."
              r.Folearn.Erm_brute.params_tried;
            Format.printf "training error: %.4f@." r.Folearn.Erm_brute.err;
            Format.printf "%a@." Folearn.Hypothesis.pp
              r.Folearn.Erm_brute.hypothesis)
    | `Nd ->
        let cls = Splitter.Nowhere_dense.of_graph "cli" g in
        let cfg =
          Folearn.Erm_nd.default_config ~radius:1 ~k ~ell_star:(max 1 ell)
            ~q_star:q cls
        in
        conclude
          (Folearn.Erm_nd.solve_budgeted ?budget ~precheck ~ckpt cfg g lam)
          (fun (rep : Folearn.Erm_nd.report) ->
            Format.printf
              "solver: Theorem 13 (rounds %d, branches %d, ell used %d, rank \
               %d)@."
              (List.length rep.Folearn.Erm_nd.rounds)
              rep.Folearn.Erm_nd.branches_explored rep.Folearn.Erm_nd.ell_used
              rep.Folearn.Erm_nd.q_used;
            Format.printf "training error: %.4f@." rep.Folearn.Erm_nd.err;
            Format.printf "parameters: %a@." Graph.Tuple.pp
              (Folearn.Hypothesis.params rep.Folearn.Erm_nd.hypothesis))
    | `Counting ->
        conclude
          (Folearn.Erm_counting.solve_budgeted ?budget ~precheck ~ckpt g ~k
             ~ell ~q ~tmax lam)
          (fun (r : Folearn.Erm_counting.result) ->
            Format.printf
              "solver: exact counting ERM (FOC, thresholds <= %d; tried %d \
               parameter tuples)@."
              tmax r.Folearn.Erm_counting.params_tried;
            Format.printf "training error: %.4f@." r.Folearn.Erm_counting.err;
            Format.printf "%a@." Folearn.Hypothesis.pp
              r.Folearn.Erm_counting.hypothesis)
    | `Local -> (
        match budget with
        | None ->
            let r = Folearn.Erm_local.solve g ~k ~ell ~q lam in
            Format.printf
              "solver: sublinear local learner (pool %d, touched %d of %d \
               vertices)@."
              r.Folearn.Erm_local.pool_size r.Folearn.Erm_local.vertices_touched
              (Graph.order g);
            Format.printf "training error: %.4f@." r.Folearn.Erm_local.err;
            Format.printf "parameters: %a@." Graph.Tuple.pp
              (Folearn.Hypothesis.params r.Folearn.Erm_local.hypothesis);
            0
        | Some _ when Resil.Ctl.active ckpt || user_budget = None ->
            (* a checkpointed local run must resume bit-identically,
               so it bypasses the degradation chain (whose stage
               hand-offs have no stable candidate numbering) and runs
               the local solver directly under the budget; likewise a
               run whose only budget is the synthetic unlimited one
               --metrics-addr installs (nothing to degrade under) *)
            conclude
              (Folearn.Erm_local.solve_budgeted ?budget ~precheck ~ckpt g ~k
                 ~ell ~q lam)
              (fun (r : Folearn.Erm_local.result) ->
                Format.printf
                  "solver: sublinear local learner (pool %d, touched %d of \
                   %d vertices)@."
                  r.Folearn.Erm_local.pool_size
                  r.Folearn.Erm_local.vertices_touched (Graph.order g);
                Format.printf "training error: %.4f@."
                  r.Folearn.Erm_local.err;
                Format.printf "parameters: %a@." Graph.Tuple.pp
                  (Folearn.Hypothesis.params r.Folearn.Erm_local.hypothesis))
        | Some _ ->
            (* budgeted local runs go through the degradation chain:
               local at rank q, then exact brute-force ERM at ranks
               q-1, ..., 0, all racing one wall-clock deadline *)
            let print (l : Folearn.Degrade.learned) =
              List.iter
                (fun (a : Folearn.Degrade.attempt) ->
                  Format.eprintf
                    "folearn learn: stage %s at rank %d exhausted (%s at %s)@."
                    a.Folearn.Degrade.solver a.Folearn.Degrade.q
                    (Guard.reason_to_string a.Folearn.Degrade.reason)
                    (Guard.checkpoint_to_string a.Folearn.Degrade.checkpoint))
                l.Folearn.Degrade.attempts;
              Format.printf "solver: %s ERM at rank %d%s@."
                (match l.Folearn.Degrade.solver with
                | "local" -> "sublinear local"
                | s -> "fallback " ^ s)
                l.Folearn.Degrade.q_used
                (if l.Folearn.Degrade.degraded then " (degraded)" else "");
              Format.printf "training error: %.4f@." l.Folearn.Degrade.err;
              Format.printf "parameters: %a@." Graph.Tuple.pp
                (Folearn.Hypothesis.params l.Folearn.Degrade.hypothesis)
            in
            match Folearn.Degrade.learn ?budget ~precheck g ~k ~ell ~q lam with
            | Guard.Complete l ->
                print l;
                if l.Folearn.Degrade.degraded then exit_degraded else 0
            | Guard.Exhausted
                { best_so_far = Some l; reason; checkpoint; spent } ->
                report_exhausted ~cmd:"learn" ~reason ~checkpoint ~spent;
                Format.printf
                  "best-so-far hypothesis (no optimality certificate):@.";
                print l;
                exhausted_exit reason ~salvaged:true
            | Guard.Exhausted { best_so_far = None; reason; checkpoint; spent }
              ->
                report_exhausted ~cmd:"learn" ~reason ~checkpoint ~spent;
                Format.eprintf "folearn learn: no hypothesis salvaged@.";
                exhausted_exit reason ~salvaged:false)
  in
  let term =
    Term.(
      const run $ graph_arg $ colors_arg $ target_arg $ k_arg $ ell_arg $ q_arg
      $ solver_arg $ tmax_arg $ noise_arg $ m_arg $ seed_arg $ fuel_arg
      $ timeout_arg $ max_table_arg $ max_ball_arg $ no_precheck_arg
      $ jobs_arg $ fleet_term $ ckpt_term $ pulse_term $ trace_arg $ stats_arg
      $ stats_json_arg)
  in
  Cmd.v
    (Cmd.info "learn" ~doc:"Learn a first-order query from labelled examples.")
    term

(* ------------------------------------------------------------------ *)
(* plan                                                                *)
(* ------------------------------------------------------------------ *)

(* Static cost analysis ("focost"): analyze the run that `learn` with
   the same arguments would execute — without burning a single unit of
   fuel — and report symbolic cost envelopes per solver, the degrade
   chain a budgeted --solver local run walks, a solver/jobs
   recommendation, --fuel suggestions bracketing each exit code, and
   (when budget flags are given) the predicted exit code with its
   certainty.  --strict turns a provably infeasible budget into exit 1,
   making `plan` usable as a pre-submit admission gate. *)

let plan_cmd =
  let module Plan = Analysis.Plan in
  let target_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "target" ] ~docv:"FORMULA"
          ~doc:
            "Target query over x1..xk.  Validated like $(b,learn) does; \
             the cost plan itself depends only on the example tuples, \
             never on the labels.")
  in
  let k_arg = Arg.(value & opt int 1 & info [ "k" ] ~doc:"Arity of examples.") in
  let ell_arg =
    Arg.(value & opt int 0 & info [ "l"; "ell" ] ~doc:"Parameter budget.")
  in
  let q_arg =
    Arg.(value & opt int 1 & info [ "q" ] ~doc:"Quantifier-rank budget.")
  in
  let solver_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("brute", `Brute); ("nd", `Nd); ("counting", `Counting);
               ("local", `Local);
             ])
          `Brute
      & info [ "solver" ]
          ~doc:
            "Solver whose run the top-level prediction covers (all four \
             are always analyzed).  $(b,local) with budget flags is \
             predicted through the degradation chain, exactly as \
             $(b,learn) executes it.")
  in
  let tmax_arg =
    Arg.(
      value & opt int 2
      & info [ "tmax" ]
          ~doc:"Counting-threshold cap for $(b,--solver counting).")
  in
  let m_arg =
    Arg.(
      value & opt int 0
      & info [ "m" ]
          ~doc:"Sample size (0 = label every tuple of the graph).")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("json", `Json); ("sarif", `Sarif) ]) `Json
      & info [ "format" ]
          ~doc:
            "Output format: $(b,json) (the full plan) or $(b,sarif) \
             (admission diagnostics only, SARIF 2.1.0).")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit 1 when the declared budget is provably infeasible for \
             the selected solver (the admission precheck would reject \
             the run).")
  in
  let run g colors target k ell q solver tmax m seed fuel timeout max_table
      max_ball format strict =
    let g = with_cli_colors g colors in
    (match target with
    | None -> ()
    | Some t -> (
        let t = parse_formula_or_exit ~cmd:"plan" ~flag:"--target" t in
        let xvars = Folearn.Hypothesis.xvars k in
        match
          Analysis.Diagnostic.errors
            (Analysis.Fo_check.check
               ~vocab:(Analysis.Vocab.of_graph g)
               ~allowed_free:xvars t)
        with
        | [] -> ()
        | errs ->
            Format.eprintf
              "folearn plan: the target must be a query over x1..x%d in \
               the graph's vocabulary:@.%s@."
              k
              (Analysis.Diagnostic.render_list errs);
            exit 2));
    let module Sam = Folearn.Sample in
    let tuples =
      if m = 0 then Sam.all_tuples g ~k else Sam.random_tuples ~seed g ~k ~m
    in
    let inp = Plan.input ~tmax g ~k ~ell ~q tuples in
    let solvers = [ Plan.Brute; Plan.Local; Plan.Nd; Plan.Counting ] in
    let plans = List.map (Plan.analyze inp) solvers in
    let chain = Plan.degrade_stages inp in
    let limits = Plan.limits ?fuel ?timeout_s:timeout ?max_table ?max_ball () in
    let has_limits =
      fuel <> None || timeout <> None || max_table <> None || max_ball <> None
    in
    let selected =
      match solver with
      | `Brute -> Plan.Brute
      | `Nd -> Plan.Nd
      | `Counting -> Plan.Counting
      | `Local -> Plan.Local
    in
    let selected_plan = Plan.analyze inp selected in
    (* the budgeted local path of `learn` runs the degradation chain,
       so its prediction and admission must use chain semantics *)
    let chain_mode = selected = Plan.Local && has_limits in
    let prediction =
      if chain_mode then Plan.predict_chain chain limits
      else Plan.predict selected_plan limits
    in
    let rejection =
      if not has_limits then None
      else if chain_mode then
        Plan.precheck_chain ~what:"plan" chain limits
      else Plan.precheck ~what:"plan" selected_plan limits
    in
    let module J = Obs.Json in
    (match format with
    | `Sarif ->
        let artifact =
          match target with Some _ -> "--target" | None -> "<plan>"
        in
        let diags =
          match rejection with
          | Some r -> [ r.Plan.diagnostic ]
          | None -> []
        in
        print_string (Analysis.Sarif.to_string ~tool:"focost" [ (artifact, diags) ]);
        print_newline ()
    | `Json ->
        let solver_entry s p =
          ( Plan.solver_name s,
            J.Obj
              [
                ("plan", Plan.to_json p);
                ("suggested_fuel", Plan.suggestion_to_json (Plan.suggest_fuel p));
                ("prediction", Plan.prediction_to_json (Plan.predict p limits));
              ] )
        in
        let opt_int = function None -> J.Null | Some v -> J.Int v in
        let doc =
          J.Obj
            [
              ("graph", Stats.to_json (Stats.probe g));
              ( "params",
                J.Obj
                  [
                    ("k", J.Int k); ("ell", J.Int ell); ("q", J.Int q);
                    ("tmax", J.Int tmax);
                    ("examples", J.Int (List.length tuples));
                    ("solver", J.String (Plan.solver_name selected));
                  ] );
              ( "limits",
                J.Obj
                  [
                    ("fuel", opt_int fuel);
                    ( "timeout_s",
                      match timeout with
                      | None -> J.Null
                      | Some t -> J.Float t );
                    ("max_table", opt_int max_table);
                    ("max_ball", opt_int max_ball);
                  ] );
              ("solvers", J.Obj (List.map2 solver_entry solvers plans));
              ( "degrade_chain",
                J.Obj
                  [
                    ("stages", J.List (List.map Plan.to_json chain));
                    ( "suggested_fuel",
                      Plan.suggestion_to_json (Plan.suggest_fuel_chain chain) );
                    ( "prediction",
                      Plan.prediction_to_json (Plan.predict_chain chain limits)
                    );
                  ] );
              ( "recommendation",
                Plan.recommendation_to_json (Plan.recommend plans) );
              ("prediction", Plan.prediction_to_json prediction);
              ( "admitted",
                J.Bool (match rejection with None -> true | Some _ -> false) );
              ( "rejection",
                match rejection with
                | None -> J.Null
                | Some r ->
                    J.Obj
                      [
                        ("resource", J.String r.Plan.resource);
                        ("limit", J.Int r.Plan.limit);
                        ("message", J.String r.Plan.message);
                      ] );
            ]
        in
        print_string (J.to_string doc);
        print_newline ());
    match rejection with
    | Some r when strict ->
        Format.eprintf "folearn plan: %s@." r.Plan.message;
        1
    | _ -> 0
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Static cost analysis: predict the spend, exit code and best \
          solver of a $(b,learn) run without executing it.")
    Term.(
      const run $ graph_arg $ colors_arg $ target_arg $ k_arg $ ell_arg
      $ q_arg $ solver_arg $ tmax_arg $ m_arg $ seed_arg $ fuel_arg
      $ timeout_arg $ max_table_arg $ max_ball_arg $ format_arg $ strict_arg)

(* ------------------------------------------------------------------ *)
(* mc                                                                  *)
(* ------------------------------------------------------------------ *)

let mc_cmd =
  let formula_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "f"; "formula" ] ~docv:"SENTENCE" ~doc:"Sentence to check.")
  in
  let via_erm_arg =
    Arg.(
      value & flag
      & info [ "via-erm" ]
          ~doc:"Decide through the Theorem 1 reduction (ERM-oracle calls).")
  in
  let run g colors phi via_erm fuel timeout max_table max_ball no_precheck
      jobs ckpt_opts pulse trace stats stats_json =
    apply_jobs jobs;
    with_obs ~pulse ~trace ~stats ~stats_json @@ fun () ->
    with_pulse ~cmd:"mc" pulse @@ fun () ->
    let phi = parse_formula_or_exit ~cmd:"mc" ~flag:"--formula" phi in
    (match Fo.Formula.free_vars phi with
    | [] -> ()
    | fv ->
        Format.eprintf
          "folearn mc: --formula must be a sentence; free variable%s: %s@."
          (if List.length fv > 1 then "s" else "")
          (String.concat ", " fv);
        exit 2);
    let budget =
      budget_for_pulse pulse (budget_of ~fuel ~timeout ~max_table ~max_ball)
    in
    let g = with_cli_colors g colors in
    (* mc has no candidate enumeration to replay-skip: checkpoints
       record run identity and spend only, and a resumed run re-checks
       from scratch (coarse resume) *)
    let run_id =
      run_id_of
        [
          "mc"; Io.to_string g;
          Format.asprintf "%a" Fo.Formula.pp phi;
          string_of_bool via_erm;
        ]
    in
    let budget, ckpt =
      setup_resilience ~cmd:"mc" ~solver:"mc" ~run_id ~budget ckpt_opts
    in
    install_progress
      ~metrics:(pulse.metrics_addr <> None)
      ~run_id ~solver:"mc" ~sample_size:0 budget ckpt;
    let outcome =
      Resil.Ctl.with_attached ckpt @@ fun () ->
      if via_erm then
        Guard.outcome_map
          (fun (verdict, stats) ->
            fun () ->
             Format.printf "%b@." verdict;
             Format.printf
               "(oracle calls: %d, recursion nodes: %d, representative sets: \
                [%s])@."
               stats.Folearn.Reduction.oracle_calls
               stats.Folearn.Reduction.recursion_nodes
               (String.concat "; "
                  (List.map string_of_int
                     stats.Folearn.Reduction.representative_sets)))
          (Folearn.Reduction.model_check_budgeted ?budget
             ~precheck:(not no_precheck)
             ~oracle:Folearn.Reduction.exact_oracle g phi)
      else
        Guard.run ?budget
          ~salvage:(fun () -> None)
          (fun () ->
            let verdict = Modelcheck.Eval.sentence g phi in
            fun () -> Format.printf "%b@." verdict)
    in
    match outcome with
    | Guard.Complete print ->
        Resil.Ctl.flush ~complete:true ckpt;
        print ();
        0
    | Guard.Exhausted { reason; checkpoint; spent; _ } ->
        (* a truth value is all-or-nothing: no partial verdict to keep *)
        Resil.Ctl.flush ckpt;
        report_exhausted ~cmd:"mc" ~reason ~checkpoint ~spent;
        exhausted_exit reason ~salvaged:false
  in
  Cmd.v
    (Cmd.info "mc" ~doc:"First-order model checking (direct or via Theorem 1).")
    Term.(
      const run $ graph_arg $ colors_arg $ formula_arg $ via_erm_arg $ fuel_arg
      $ timeout_arg $ max_table_arg $ max_ball_arg $ no_precheck_arg
      $ jobs_arg $ ckpt_term $ pulse_term $ trace_arg $ stats_arg
      $ stats_json_arg)

(* ------------------------------------------------------------------ *)
(* types                                                               *)
(* ------------------------------------------------------------------ *)

let types_cmd =
  let q_arg = Arg.(value & opt int 1 & info [ "q" ] ~doc:"Quantifier rank.") in
  let k_arg = Arg.(value & opt int 1 & info [ "k" ] ~doc:"Tuple arity.") in
  let hintikka_arg =
    Arg.(
      value & flag
      & info [ "hintikka" ] ~doc:"Also print one Hintikka formula per class.")
  in
  let run g colors q k hintikka fuel timeout max_table max_ball jobs ckpt_opts
      pulse trace stats stats_json =
    apply_jobs jobs;
    with_obs ~pulse ~trace ~stats ~stats_json @@ fun () ->
    with_pulse ~cmd:"types" pulse @@ fun () ->
    let budget =
      budget_for_pulse pulse (budget_of ~fuel ~timeout ~max_table ~max_ball)
    in
    let g = with_cli_colors g colors in
    let run_id =
      run_id_of
        [
          "types"; Io.to_string g; string_of_int q; string_of_int k;
          string_of_bool hintikka;
        ]
    in
    let budget, ckpt =
      setup_resilience ~cmd:"types" ~solver:"types" ~run_id ~budget ckpt_opts
    in
    install_progress
      ~metrics:(pulse.metrics_addr <> None)
      ~run_id ~solver:"types" ~sample_size:0 budget ckpt;
    let outcome =
      Resil.Ctl.with_attached ckpt @@ fun () ->
      Guard.run ?budget
        ~salvage:(fun () -> None)
        (fun () ->
          let ctx = Modelcheck.Types.make_ctx g in
          Modelcheck.Types.partition_by_tp ctx ~q
            (Graph.Tuple.all ~n:(Graph.order g) ~k))
    in
    match outcome with
    | Guard.Complete classes ->
        Resil.Ctl.flush ~complete:true ckpt;
        Format.printf "%d distinct tp_%d classes of %d-tuples on %d vertices@."
          (List.length classes) q k (Graph.order g);
        List.iteri
          (fun i (ty, members) ->
            Format.printf "class %d (%a): %d tuples, e.g. %a@." i
              Modelcheck.Types.pp ty (List.length members) Graph.Tuple.pp
              (List.hd members);
            if hintikka then
              Format.printf "  %a@." Fo.Formula.pp
                (Modelcheck.Hintikka.of_type ~colors:(Graph.color_names g) ty))
          classes;
        0
    | Guard.Exhausted { reason; checkpoint; spent; _ } ->
        Resil.Ctl.flush ckpt;
        report_exhausted ~cmd:"types" ~reason ~checkpoint ~spent;
        exhausted_exit reason ~salvaged:false
  in
  Cmd.v
    (Cmd.info "types" ~doc:"Print the q-type partition of the graph.")
    Term.(
      const run $ graph_arg $ colors_arg $ q_arg $ k_arg $ hintikka_arg
      $ fuel_arg $ timeout_arg $ max_table_arg $ max_ball_arg $ jobs_arg
      $ ckpt_term $ pulse_term $ trace_arg $ stats_arg $ stats_json_arg)

(* ------------------------------------------------------------------ *)
(* game                                                                *)
(* ------------------------------------------------------------------ *)

let game_cmd =
  let r_arg = Arg.(value & opt int 2 & info [ "r" ] ~doc:"Game radius.") in
  let run g colors r fuel timeout max_table max_ball jobs ckpt_opts pulse
      trace stats stats_json =
    apply_jobs jobs;
    with_obs ~pulse ~trace ~stats ~stats_json @@ fun () ->
    with_pulse ~cmd:"game" pulse @@ fun () ->
    let budget =
      budget_for_pulse pulse (budget_of ~fuel ~timeout ~max_table ~max_ball)
    in
    let g = with_cli_colors g colors in
    let run_id = run_id_of [ "game"; Io.to_string g; string_of_int r ] in
    let budget, ckpt =
      setup_resilience ~cmd:"game" ~solver:"game" ~run_id ~budget ckpt_opts
    in
    install_progress
      ~metrics:(pulse.metrics_addr <> None)
      ~run_id ~solver:"game" ~sample_size:0 budget ckpt;
    let outcome =
      Resil.Ctl.with_attached ckpt @@ fun () ->
      Guard.run ?budget
        ~salvage:(fun () -> None)
        (fun () ->
          Splitter.Game.trace g ~r
            ~connector:(Splitter.Strategy.connector_max_ball ~r)
            ~splitter:Splitter.Strategy.best_heuristic)
    in
    match outcome with
    | Guard.Complete tr ->
        Resil.Ctl.flush ~complete:true ckpt;
        List.iteri
          (fun i (v, w, remaining) ->
            Format.printf
              "round %d: Connector -> %d, Splitter -> %d, arena %d vertices@."
              (i + 1) v w remaining)
          tr;
        (match List.rev tr with
        | (_, _, 0) :: _ ->
            Format.printf "Splitter wins in %d rounds@." (List.length tr)
        | _ -> Format.printf "no win within the round cap@.");
        0
    | Guard.Exhausted { reason; checkpoint; spent; _ } ->
        Resil.Ctl.flush ckpt;
        report_exhausted ~cmd:"game" ~reason ~checkpoint ~spent;
        exhausted_exit reason ~salvaged:false
  in
  Cmd.v
    (Cmd.info "game" ~doc:"Play out the (r, s)-splitter game.")
    Term.(
      const run $ graph_arg $ colors_arg $ r_arg $ fuel_arg $ timeout_arg
      $ max_table_arg $ max_ball_arg $ jobs_arg $ ckpt_term $ pulse_term
      $ trace_arg $ stats_arg $ stats_json_arg)

(* ------------------------------------------------------------------ *)
(* graph                                                               *)
(* ------------------------------------------------------------------ *)

let graph_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH"
          ~doc:"Write the graph to a file (default: stdout).")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz instead.")
  in
  let run g colors out dot =
    let g = with_cli_colors g colors in
    let text = if dot then Graph.to_dot g else Io.to_string g in
    (match out with
    | Some path ->
        if dot then Out_channel.with_open_text path (fun oc -> output_string oc text)
        else Io.save path g
    | None -> print_string text);
    0
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Generate a graph from a spec and print or save it.")
    Term.(const run $ graph_arg $ colors_arg $ out_arg $ dot_arg)


(* ------------------------------------------------------------------ *)
(* strings                                                             *)
(* ------------------------------------------------------------------ *)

let strings_cmd =
  let word_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "w"; "word" ] ~docv:"WORD" ~doc:"The background string.")
  in
  let alphabet_arg =
    Arg.(
      value & opt string "ab"
      & info [ "alphabet" ] ~docv:"LETTERS"
          ~doc:"Alphabet, one character per letter (default ab).")
  in
  let sentence_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "formula" ] ~docv:"SENTENCE"
          ~doc:"MSO sentence to model-check against the word.")
  in
  let target_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "target" ] ~docv:"FORMULA"
          ~doc:
            "Unary MSO target phi(x): label every position, then learn it \
             back from the catalogue.")
  in
  let hyp_arg =
    Arg.(
      value & opt_all string []
      & info [ "hyp" ] ~docv:"FORMULA"
          ~doc:
            "Catalogue hypothesis phi(x; y1...) (repeatable; free \
             variables besides x become position parameters).")
  in
  let regex_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "regex" ] ~docv:"REGEX"
          ~doc:
            "Regular expression to match against the word (Glushkov \
             compilation; '|', '*', '+', '?', parentheses).")
  in
  let run word alphabet sentence target hyps regex =
    let letters = List.init (String.length alphabet) (fun i -> String.make 1 alphabet.[i]) in
    let sigma = List.length letters in
    let w =
      try Mso.Word.of_string ~alphabet word
      with Invalid_argument m ->
        Format.eprintf "folearn strings: %s@." m;
        exit 2
    in
    let parse src =
      try Mso.Parser.parse ~letters src
      with Mso.Parser.Parse_error m ->
        Format.eprintf "folearn strings: %s@." m;
        exit 2
    in
    (match regex with
    | Some src ->
        let r =
          try Mso.Regex.of_string ~letters src
          with Mso.Regex.Parse_error m ->
            Format.eprintf "folearn strings: %s@." m;
            exit 2
        in
        let dfa = Mso.Regex.to_dfa ~sigma r in
        Format.printf "%b  (regex automaton: %d states)@."
          (Mso.Dfa.accepts dfa w) dfa.Mso.Dfa.states
    | None -> ());
    (match sentence with
    | Some src ->
        let phi = parse src in
        if Mso.Formula.free phi <> [] then begin
          Format.eprintf "folearn strings: -f needs a sentence@.";
          exit 2
        end;
        let dfa = Mso.Formula.language ~sigma phi in
        Format.printf "%b  (automaton: %d states)@."
          (Mso.Dfa.accepts dfa w) dfa.Mso.Dfa.states
    | None -> ());
    (match target with
    | Some src ->
        let tphi = parse src in
        (match Mso.Formula.free tphi with
        | [ ("x", Mso.Formula.Pos) ] -> ()
        | _ ->
            Format.eprintf "folearn strings: -t needs exactly x free@.";
            exit 2);
        let scope = [ ("x", Mso.Formula.Pos) ] in
        let tdfa = Mso.Formula.compile ~sigma ~scope tphi in
        let examples =
          List.init (Array.length w) (fun p ->
              ( [| p |],
                Mso.Formula.holds_compiled ~sigma ~scope tdfa w
                  { Mso.Formula.pos = [ ("x", p) ]; sets = [] } ))
        in
        let catalogue =
          List.mapi
            (fun i src ->
              let phi = parse src in
              let yvars =
                List.filter_map
                  (fun (v, k) ->
                    if v <> "x" && k = Mso.Formula.Pos then Some v else None)
                  (Mso.Formula.free phi)
              in
              {
                Mso.Learner.name = Printf.sprintf "hyp%d: %s" (i + 1) src;
                phi;
                xvars = [ "x" ];
                yvars;
              })
            hyps
        in
        if catalogue = [] then begin
          Format.eprintf "folearn strings: -t needs at least one --hyp@.";
          exit 2
        end;
        (match Mso.Learner.solve ~sigma ~word:w ~catalogue examples with
        | Some r ->
            Format.printf
              "learned %S, parameters [%s], training error %.3f (%d oracle \
               evaluations)@."
              r.Mso.Learner.entry.Mso.Learner.name
              (String.concat ";"
                 (List.map string_of_int (Array.to_list r.Mso.Learner.params)))
              r.Mso.Learner.err r.Mso.Learner.evaluations
        | None -> Format.printf "empty catalogue@.")
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "strings"
       ~doc:"MSO on strings: model checking and learning (related work [21]).")
    Term.(
      const run $ word_arg $ alphabet_arg $ sentence_arg $ target_arg
      $ hyp_arg $ regex_arg)


(* ------------------------------------------------------------------ *)
(* trees                                                               *)
(* ------------------------------------------------------------------ *)

let trees_cmd =
  let tree_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "tree" ] ~docv:"TERM"
          ~doc:"The background tree in term syntax, e.g. 1(0(1),1(0,0)).")
  in
  let labels_arg =
    Arg.(
      value & opt string "ab"
      & info [ "labels" ] ~docv:"NAMES"
          ~doc:
            "Label names, one character per label id (default ab: a = 0, \
             b = 1).")
  in
  let formula_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "formula" ] ~docv:"SENTENCE"
          ~doc:"MSO sentence to model-check against the tree.")
  in
  let concept_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "concept" ] ~docv:"FORMULA"
          ~doc:
            "Unary MSO concept phi(x): classify every node with the \
             two-pass oracle and print the satisfying nodes.")
  in
  let run tree_src labels formula concept =
    let label_names =
      List.init (String.length labels) (fun i -> String.make 1 labels.[i])
    in
    let sigma = List.length label_names in
    let tree =
      try Mso.Tree.of_string tree_src
      with Mso.Tree.Parse_error m ->
        Format.eprintf "folearn trees: %s@." m;
        exit 2
    in
    (try Mso.Tree.check_labels ~sigma tree
     with Invalid_argument m ->
       Format.eprintf "folearn trees: %s@." m;
       exit 2);
    let parse src =
      try Mso.Tree_parser.parse ~labels:label_names src
      with Mso.Tree_parser.Parse_error m ->
        Format.eprintf "folearn trees: %s@." m;
        exit 2
    in
    (match formula with
    | Some src ->
        let phi = parse src in
        if Mso.Tree_formula.free phi <> [] then begin
          Format.eprintf "folearn trees: -f needs a sentence@.";
          exit 2
        end;
        let ta = Mso.Tree_formula.compile ~sigma ~scope:[] phi in
        Format.printf "%b@." (Mso.Tree_automaton.accepts ta tree)
    | None -> ());
    (match concept with
    | Some src ->
        let phi = parse src in
        let oracle =
          try Mso.Tree_learner.Node_oracle.make ~sigma phi tree
          with Invalid_argument m ->
            Format.eprintf "folearn trees: %s@." m;
            exit 2
        in
        let hits =
          List.filter
            (fun (id, _) -> Mso.Tree_learner.Node_oracle.holds oracle id)
            (Mso.Tree.nodes tree)
        in
        Format.printf "satisfying nodes (preorder ids): [%s]@."
          (String.concat "; " (List.map (fun (id, _) -> string_of_int id) hits))
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "trees"
       ~doc:"MSO on trees: model checking and node concepts (related work [19]).")
    Term.(const run $ tree_arg $ labels_arg $ formula_arg $ concept_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

(* Static analysis of formulas ("folint"): signature conformance against
   a declared vocabulary, scope analysis, paper budget verification
   (quantifier rank <= q, free variables <= k + l), Gaifman-locality
   lints, and simplification hints.  Input formulas come from positional
   files (one formula per line, '#' comments and blank lines ignored)
   and/or repeated --formula options; exit status is non-zero iff any
   formula triggers an error-severity diagnostic (or any warning, with
   --strict). *)

let lint_cmd =
  let files_arg =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Formula corpus files: one formula per line; lines starting \
             with '#' and blank lines are ignored.")
  in
  let formulas_arg =
    Arg.(
      value & opt_all string []
      & info [ "f"; "formula" ] ~docv:"FORMULA"
          ~doc:"Formula given inline (repeatable).")
  in
  let lang_arg =
    Arg.(
      value
      & opt (enum [ ("fo", `Fo); ("mso", `Mso); ("trees", `Trees) ]) `Fo
      & info [ "lang" ]
          ~doc:
            "Formula language: $(b,fo) (first-order over coloured graphs), \
             $(b,mso) (MSO on strings), or $(b,trees) (MSO on trees).")
  in
  let vocab_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "vocab" ] ~docv:"DECLS"
          ~doc:
            "Declared vocabulary for signature conformance, e.g. \
             $(b,E/2,Red/1,Blue) (a bare name is unary).  Omitted: \
             signature checks are skipped.")
  in
  let alphabet_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "alphabet" ] ~docv:"LETTERS"
          ~doc:
            "Alphabet for --lang mso/trees, one character per letter \
             (default ab).  Also bounds the letter indices checked by \
             the unknown-letter rule.")
  in
  let free_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "free" ] ~docv:"VARS"
          ~doc:
            "Comma-separated interface variables the formula may use \
             free, e.g. $(b,x1,x2,y1).  An empty string demands a \
             sentence.  Omitted: any free variable is allowed.")
  in
  let q_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "q" ] ~docv:"Q" ~doc:"Quantifier-rank budget.")
  in
  let max_free_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-free" ] ~docv:"N"
          ~doc:"Free-variable budget (the paper's k + l).")
  in
  let radius_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "radius" ] ~docv:"R"
          ~doc:
            "Demand syntactic r-locality in the Gaifman sense (FO only): \
             every quantifier must be relativised to the r-neighbourhood \
             of the interface variables.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("json", `Json); ("sarif", `Sarif) ])
          `Human
      & info [ "format" ]
          ~doc:
            "Output format: $(b,human), $(b,json), or $(b,sarif) (SARIF \
             2.1.0, for code-scanning upload and editor ingestion).")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Treat warnings as failures too.")
  in
  let cost_arg =
    Arg.(
      value & flag
      & info [ "cost" ]
          ~doc:
            "Emit the informational $(b,cost-metadata) hint for every FO \
             formula: quantifier rank, locality radius and Hintikka-table \
             bound, as a JSON message.")
  in
  let list_rules_arg =
    Arg.(
      value & flag
      & info [ "list-rules" ]
          ~doc:"Print every rule id, its severity and description, then exit.")
  in
  let run files formulas lang vocab alphabet free q max_free radius format
      strict list_rules cost =
    let open Analysis in
    if list_rules then begin
      List.iter
        (fun r ->
          Format.printf "%-20s %-8s %s@." r.Diagnostic.id
            (Diagnostic.severity_to_string r.Diagnostic.default_severity)
            r.Diagnostic.doc)
        Diagnostic.rules;
      0
    end
    else begin
      let vocab =
        match vocab with
        | None -> None
        | Some s -> (
            match Vocab.of_string s with
            | Ok v -> Some v
            | Error m ->
                Format.eprintf "folearn lint: %s@." m;
                exit 2)
      in
      let allowed_free =
        Option.map
          (fun s ->
            String.split_on_char ',' s |> List.map String.trim
            |> List.filter (fun v -> v <> ""))
          free
      in
      let letters =
        let a = Option.value alphabet ~default:"ab" in
        List.init (String.length a) (fun i -> String.make 1 a.[i])
      in
      let sigma =
        Option.map (fun a -> String.length a) alphabet
      in
      let inputs =
        List.concat_map
          (fun path ->
            In_channel.with_open_text path In_channel.input_lines
            |> List.mapi (fun i line -> (Printf.sprintf "%s:%d" path (i + 1), line))
            |> List.filter (fun (_, line) ->
                   let line = String.trim line in
                   line <> "" && not (String.length line > 0 && line.[0] = '#')))
          files
        @ List.map (fun src -> ("--formula", src)) formulas
      in
      if inputs = [] then begin
        Format.eprintf "folearn lint: no formulas given (FILE or --formula)@.";
        exit 2
      end;
      let parse_diag msg =
        [ Diagnostic.make ~rule:"parse-error" msg ]
      in
      let check_one (_, src) =
        match lang with
        | `Fo -> (
            match Fo.Parser.parse (String.trim src) with
            | f ->
                let ds =
                  Fo_check.check ?vocab ?allowed_free
                    ~budget:
                      (Fo_check.budget ?max_rank:q ?max_free ?radius ())
                    f
                in
                if cost then ds @ [ Fo_check.cost_diagnostic ?vocab f ]
                else ds
            | exception Fo.Parser.Parse_error m -> parse_diag m)
        | `Mso -> (
            match Mso.Parser.parse ~letters (String.trim src) with
            | f -> Mso_check.check_word ?sigma ?allowed_free ?max_rank:q f
            | exception Mso.Parser.Parse_error m -> parse_diag m)
        | `Trees -> (
            match Mso.Tree_parser.parse ~labels:letters (String.trim src) with
            | f -> Mso_check.check_tree ?sigma ?allowed_free ?max_rank:q f
            | exception Mso.Tree_parser.Parse_error m -> parse_diag m)
      in
      let results =
        List.map (fun input -> (input, check_one input)) inputs
      in
      let failing ds =
        Diagnostic.errors ds <> []
        || (strict && Diagnostic.warnings ds <> [])
      in
      (match format with
      | `Sarif ->
          print_string
            (Sarif.to_string
               (List.map (fun ((origin, _), ds) -> (origin, ds)) results));
          print_newline ()
      | `Json ->
          Format.printf "[%s]@."
            (String.concat ", "
               (List.map
                  (fun ((origin, src), ds) ->
                    Printf.sprintf
                      {|{"origin": %s, "formula": %s, "ok": %b, "diagnostics": %s}|}
                      (Diagnostic.json_string origin)
                      (Diagnostic.json_string (String.trim src))
                      (not (failing ds))
                      (Diagnostic.list_to_json ds))
                  results))
      | `Human ->
          List.iter
            (fun ((origin, src), ds) ->
              if ds <> [] then begin
                Format.printf "%s: %s@." origin (String.trim src);
                List.iter (fun d -> Format.printf "  %a@." Diagnostic.pp d) ds
              end)
            results;
          let count sel =
            List.fold_left
              (fun acc (_, ds) -> acc + List.length (sel ds))
              0 results
          in
          Format.printf
            "%d formulas: %d errors, %d warnings, %d hints@."
            (List.length results)
            (count Diagnostic.errors)
            (count Diagnostic.warnings)
            (count Diagnostic.hints));
      if List.exists (fun (_, ds) -> failing ds) results then 1 else 0
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse FO/MSO formulas: signature conformance, \
          scopes, paper budgets, locality, simplification hints.")
    Term.(
      const run $ files_arg $ formulas_arg $ lang_arg $ vocab_arg
      $ alphabet_arg $ free_arg $ q_arg $ max_free_arg $ radius_arg
      $ format_arg $ strict_arg $ list_rules_arg $ cost_arg)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A metrics snapshot (from $(b,--stats-json)) or a benchmark \
             telemetry file ($(b,BENCH_*.json)).")
  in
  let run path =
    let text = In_channel.with_open_text path In_channel.input_all in
    match Obs.Json.of_string text with
    | Error m ->
        Format.eprintf "folearn stats: %s: %s@." path m;
        2
    | Ok doc -> (
        (* BENCH_*.json wraps the snapshot under "metrics" beside the
           headline numbers; a bare snapshot is the document itself. *)
        let snap_json =
          match Obs.Json.member "metrics" doc with
          | Some m ->
              let field name conv = Option.bind (Obs.Json.member name doc) conv in
              (match field "experiment" Obs.Json.to_string_opt with
              | Some e -> Format.printf "experiment: %s@." e
              | None -> ());
              (match field "wall_time_s" Obs.Json.to_float_opt with
              | Some t -> Format.printf "wall time: %.3f s@." t
              | None -> ());
              (match field "model_check_calls" Obs.Json.to_int_opt with
              | Some n -> Format.printf "model-check calls: %d@." n
              | None -> ());
              (match field "hypotheses_enumerated" Obs.Json.to_int_opt with
              | Some n -> Format.printf "hypotheses enumerated: %d@." n
              | None -> ());
              m
          | None -> doc
        in
        match Obs.Metric.snapshot_of_json snap_json with
        | Ok snap ->
            Format.printf "%a" Obs.Metric.pp_snapshot snap;
            0
        | Error m ->
            Format.eprintf "folearn stats: %s: %s@." path m;
            2)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Pretty-print a saved metrics snapshot or a BENCH_*.json \
          telemetry file.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* pulse                                                               *)
(* ------------------------------------------------------------------ *)

let pulse_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"A flight-recorder dump (from $(b,--fdr)) to decode.")
  in
  let addr_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "addr" ] ~docv:"ADDR"
          ~doc:
            "A live exporter to query instead: $(b,unix:PATH), \
             $(b,HOST:PORT) or $(b,:PORT), as given to \
             $(b,--metrics-addr).")
  in
  let endpoint_arg =
    Arg.(
      value & opt string "/progress"
      & info [ "endpoint" ] ~docv:"PATH"
          ~doc:
            "Endpoint to fetch with $(b,--addr): /progress (default), \
             /metrics, /metrics.json or /healthz.")
  in
  let run file addr endpoint =
    match (file, addr) with
    | Some path, _ -> (
        match Pulse.Fdr.load path with
        | Ok d ->
            Format.printf "%a" Pulse.Fdr.pp d;
            0
        | Error m ->
            Format.eprintf "folearn pulse: %s: %s@." path m;
            2)
    | None, Some spec -> (
        match Pulse.Addr.parse spec with
        | Error m ->
            Format.eprintf "folearn pulse: --addr %s@." m;
            2
        | Ok a -> (
            match Pulse.Client.get a endpoint with
            | Error m ->
                Format.eprintf "folearn pulse: %s@." m;
                1
            | Ok body -> (
                (* JSON objects print one member per line; everything
                   else (Prometheus text, healthz) passes through *)
                match Obs.Json.of_string body with
                | Ok (Obs.Json.Obj members) ->
                    List.iter
                      (fun (key, v) ->
                        Format.printf "%-16s %s@." key (Obs.Json.to_string v))
                      members;
                    0
                | _ ->
                    print_string body;
                    0)))
    | None, None ->
        Format.eprintf
          "folearn pulse: give a flight-recorder FILE or --addr@.";
        2
  in
  Cmd.v
    (Cmd.info "pulse"
       ~doc:
         "Decode a flight-recorder dump, or query a live \
          $(b,--metrics-addr) exporter.")
    Term.(const run $ file_arg $ addr_arg $ endpoint_arg)

(* ------------------------------------------------------------------ *)
(* serve / call / submit / poll: the resident service (folserve)       *)
(* ------------------------------------------------------------------ *)

let addr_of_spec ~cmd ~flag spec =
  match Pulse.Addr.parse spec with
  | Ok a -> a
  | Error m ->
      Format.eprintf "folearn %s: %s %s@." cmd flag m;
      exit 2

let serve_cmd =
  let listen_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Where to accept requests: $(b,unix:PATH), $(b,HOST:PORT) or \
             $(b,:PORT).")
  in
  let tenant_arg =
    Arg.(
      value & opt_all string []
      & info [ "tenant" ] ~docv:"NAME:QUOTA"
          ~doc:
            "Per-tenant admission quota (repeatable): \
             $(b,NAME:fuel=N,deadline=S,table=N,ball=N), every term \
             optional.  Requests are clamped to their tenant's quota; \
             $(b,*) sets the default for unlisted tenants.")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 32
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Bounded request queue depth; a full queue sheds the \
             earliest-deadline request with an $(b,overloaded) response.")
  in
  let job_dir_arg =
    Arg.(
      value & opt string "folearn-jobs"
      & info [ "job-dir" ] ~docv:"DIR"
          ~doc:
            "Durable job table and snapshots; a restarted server resumes \
             unfinished jobs from here.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Concurrent connection cap; excess connects are refused \
                $(b,overloaded).")
  in
  let run listen tenants queue_cap job_dir max_conns jobs metrics_addr =
    let tenants =
      List.map
        (fun spec ->
          match Serve.Tenant.parse spec with
          | Ok kv -> kv
          | Error m ->
              Format.eprintf "folearn serve: --tenant %s@." m;
              exit 2)
        tenants
    in
    let engine_jobs =
      match jobs with
      | None -> 1
      | Some n when n >= 1 -> n
      | Some n ->
          Format.eprintf "folearn serve: --jobs must be >= 1 (got %d)@." n;
          exit 2
    in
    let cfg =
      {
        Serve.Daemon.listen = addr_of_spec ~cmd:"serve" ~flag:"--listen" listen;
        tenants = Serve.Tenant.make tenants;
        queue_cap;
        job_dir;
        max_conns;
        engine_jobs;
        metrics_addr =
          Option.map
            (addr_of_spec ~cmd:"serve" ~flag:"--metrics-addr")
            metrics_addr;
      }
    in
    match Serve.Daemon.run cfg with
    | Ok code -> code
    | Error m ->
        Format.eprintf "folearn serve: %s@." m;
        1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident learning service: warm shared state, \
          per-tenant admission control, bounded queue with load \
          shedding, resumable jobs, graceful drain on SIGTERM.")
    Term.(
      const run $ listen_arg $ tenant_arg $ queue_cap_arg $ job_dir_arg
      $ max_conns_arg $ jobs_arg $ metrics_addr_arg)

(* client side: one request per invocation, framed over the socket;
   the response's stdout/stderr/code reproduce the one-shot CLI *)

let connect_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:
          "Server address: $(b,unix:PATH), $(b,HOST:PORT) or $(b,:PORT), \
           as given to $(b,folearn serve --listen).")

let rpc_tenant_arg =
  Arg.(
    value & opt string "anon"
    & info [ "tenant" ] ~docv:"NAME"
        ~doc:"Tenant to bill this request to (admission quotas apply).")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry up to $(docv) times, with exponential backoff, when the \
           server answers $(b,overloaded) or $(b,draining) (exit 75) or \
           the connection fails.")

let backoff_arg =
  Arg.(
    value & opt float 0.2
    & info [ "backoff" ] ~docv:"SECONDS"
        ~doc:"Initial retry backoff; doubles per attempt.")

let rpc_timeout_arg =
  Arg.(
    value & opt float 60.0
    & info [ "rpc-timeout" ] ~docv:"SECONDS"
        ~doc:"Socket receive timeout while waiting for the response.")

let budget_req_of ~fuel ~timeout ~max_table ~max_ball =
  { Serve.Proto.fuel; deadline_s = timeout; max_table; max_ball }

let rpc_with_retries ~cmd ~connect ~retries ~backoff ~timeout_s req =
  let addr = addr_of_spec ~cmd ~flag:"--connect" connect in
  let rec attempt i sleep =
    let retryable () =
      if i < retries then begin
        Unix.sleepf sleep;
        attempt (i + 1) (sleep *. 2.0)
      end
      else None
    in
    match
      Serve.Client.rpc ~timeout_s addr (Serve.Proto.request_to_json req)
    with
    | Error m -> (
        match retryable () with
        | Some r -> Some r
        | None ->
            Format.eprintf "folearn %s: %s@." cmd m;
            None)
    | Ok resp ->
        if Serve.Proto.resp_code resp = Serve.Proto.exit_retry then
          match retryable () with Some r -> Some r | None -> Some resp
        else Some resp
  in
  attempt 0 backoff

(* replay the remote run locally: its stdout to stdout, stderr to
   stderr, its status code as the exit code *)
let render_response resp =
  print_string (Serve.Proto.resp_stdout resp);
  prerr_string (Serve.Proto.resp_stderr resp);
  flush stdout;
  flush stderr;
  Serve.Proto.resp_code resp

(* op parameter flags, shared by call and submit; only flags the user
   actually gave are sent, so server-side defaults match the CLI's *)

let p_graph_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "g"; "graph" ] ~docv:"SPEC"
        ~doc:"Background graph spec (same DSL as the local commands).")

let p_colors_arg =
  Arg.(
    value & opt_all string []
    & info [ "c"; "color" ] ~docv:"NAME=V,V"
        ~doc:"Add a colour class (repeatable).")

let p_target_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "target" ] ~docv:"FORMULA" ~doc:"Target formula (learn).")

let p_formula_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "formula" ] ~docv:"FORMULA" ~doc:"Formula to check (mc).")

let p_k_arg =
  Arg.(value & opt (some int) None & info [ "k" ] ~docv:"N" ~doc:"Arity.")

let p_ell_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "l"; "ell" ] ~docv:"N" ~doc:"Quantifier budget (learn).")

let p_q_arg =
  Arg.(
    value & opt (some int) None & info [ "q" ] ~docv:"N" ~doc:"Quantifier rank.")

let p_solver_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "solver" ] ~docv:"NAME" ~doc:"brute, nd, counting or local.")

let p_tmax_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tmax" ] ~docv:"N" ~doc:"Counting-solver threshold cap.")

let p_noise_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "noise" ] ~docv:"P" ~doc:"Label-flip probability (learn).")

let p_m_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "m" ] ~docv:"N" ~doc:"Sample size; 0 = all tuples (learn).")

let p_seed_arg =
  Arg.(
    value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc:"Sample seed.")

let p_via_erm_arg =
  Arg.(
    value & flag & info [ "via-erm" ] ~doc:"Model-check through the ERM \
                                            reduction (mc).")

let p_hintikka_arg =
  Arg.(
    value & flag & info [ "hintikka" ] ~doc:"Print Hintikka formulas (types).")

let p_r_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "r" ] ~docv:"N" ~doc:"Splitter-game radius (game).")

let params_json ~graph ~colors ~target ~formula ~k ~ell ~q ~solver ~tmax
    ~noise ~m ~seed ~via_erm ~hintikka ~r =
  let add name v acc =
    match v with Some x -> (name, x) :: acc | None -> acc
  in
  let open Obs.Json in
  []
  |> add "graph" (Option.map (fun s -> String s) graph)
  |> (fun acc ->
       if colors = [] then acc
       else ("colors", List (List.map (fun s -> String s) colors)) :: acc)
  |> add "target" (Option.map (fun s -> String s) target)
  |> add "formula" (Option.map (fun s -> String s) formula)
  |> add "k" (Option.map (fun n -> Int n) k)
  |> add "ell" (Option.map (fun n -> Int n) ell)
  |> add "q" (Option.map (fun n -> Int n) q)
  |> add "solver" (Option.map (fun s -> String s) solver)
  |> add "tmax" (Option.map (fun n -> Int n) tmax)
  |> add "noise" (Option.map (fun f -> Float f) noise)
  |> add "m" (Option.map (fun n -> Int n) m)
  |> add "seed" (Option.map (fun n -> Int n) seed)
  |> (fun acc -> if via_erm then ("via_erm", Bool true) :: acc else acc)
  |> (fun acc -> if hintikka then ("hintikka", Bool true) :: acc else acc)
  |> add "r" (Option.map (fun n -> Int n) r)
  |> List.rev
  |> fun l -> Obj l

let params_term =
  let mk graph colors target formula k ell q solver tmax noise m seed via_erm
      hintikka r =
    params_json ~graph ~colors ~target ~formula ~k ~ell ~q ~solver ~tmax
      ~noise ~m ~seed ~via_erm ~hintikka ~r
  in
  Term.(
    const mk $ p_graph_arg $ p_colors_arg $ p_target_arg $ p_formula_arg
    $ p_k_arg $ p_ell_arg $ p_q_arg $ p_solver_arg $ p_tmax_arg $ p_noise_arg
    $ p_m_arg $ p_seed_arg $ p_via_erm_arg $ p_hintikka_arg $ p_r_arg)

let call_cmd =
  let op_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP" ~doc:"learn, mc, types, game or ping.")
  in
  let run op connect tenant retries backoff timeout_s fuel timeout max_table
      max_ball params =
    let req =
      {
        Serve.Proto.tenant;
        op;
        budget = budget_req_of ~fuel ~timeout ~max_table ~max_ball;
        params;
      }
    in
    match
      rpc_with_retries ~cmd:"call" ~connect ~retries ~backoff ~timeout_s req
    with
    | None -> 1
    | Some resp -> render_response resp
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Run one op on a resident $(b,folearn serve) and replay its \
          stdout/stderr/exit code locally.")
    Term.(
      const run $ op_arg $ connect_arg $ rpc_tenant_arg $ retries_arg
      $ backoff_arg $ rpc_timeout_arg $ fuel_arg $ timeout_arg
      $ max_table_arg $ max_ball_arg $ params_term)

let submit_cmd =
  let run connect tenant retries backoff timeout_s fuel timeout max_table
      max_ball params =
    let req =
      {
        Serve.Proto.tenant;
        op = "submit";
        budget = budget_req_of ~fuel ~timeout ~max_table ~max_ball;
        params;
      }
    in
    match
      rpc_with_retries ~cmd:"submit" ~connect ~retries ~backoff ~timeout_s req
    with
    | None -> 1
    | Some resp ->
        prerr_string (Serve.Proto.resp_stderr resp);
        (match
           Option.bind
             (Obs.Json.member "job" resp)
             (Obs.Json.member "id")
         with
        | Some (Obs.Json.String id) ->
            let status = Serve.Proto.resp_status resp in
            Printf.printf "folearn submit: job %s %s\n" id status
        | _ -> ());
        flush stdout;
        flush stderr;
        Serve.Proto.resp_code resp
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a learn as a resumable server-side job; poll it with \
          $(b,folearn poll).  Submitting identical work is idempotent.")
    Term.(
      const run $ connect_arg $ rpc_tenant_arg $ retries_arg $ backoff_arg
      $ rpc_timeout_arg $ fuel_arg $ timeout_arg $ max_table_arg
      $ max_ball_arg $ params_term)

let poll_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOB"
          ~doc:"Job id, as printed by $(b,folearn submit).")
  in
  let wait_arg =
    Arg.(
      value & opt float 0.0
      & info [ "wait" ] ~docv:"SECONDS"
          ~doc:
            "Keep polling until the job settles or $(docv) elapse \
             (0 = ask once).")
  in
  let run id connect tenant retries backoff timeout_s wait =
    let req =
      {
        Serve.Proto.tenant;
        op = "poll";
        budget = Serve.Proto.no_budget;
        params = Obs.Json.Obj [ ("id", Obs.Json.String id) ];
      }
    in
    let pending resp =
      match Serve.Proto.resp_status resp with
      | "queued" | "running" -> true
      | _ -> false
    in
    let deadline = Unix.gettimeofday () +. wait in
    let rec ask () =
      match
        rpc_with_retries ~cmd:"poll" ~connect ~retries ~backoff ~timeout_s req
      with
      | None -> None
      | Some resp ->
          if pending resp && Unix.gettimeofday () < deadline then begin
            Unix.sleepf 0.2;
            ask ()
          end
          else Some resp
    in
    match ask () with
    | None -> 1
    | Some resp ->
        if pending resp then begin
          Format.eprintf "folearn poll: job %s still %s@." id
            (Serve.Proto.resp_status resp);
          0
        end
        else render_response resp
  in
  Cmd.v
    (Cmd.info "poll"
       ~doc:
         "Fetch a submitted job's result (or best-so-far status).  A \
          stale or foreign job id yields a structured \
          $(b,job_mismatch).")
    Term.(
      const run $ id_arg $ connect_arg $ rpc_tenant_arg $ retries_arg
      $ backoff_arg $ rpc_timeout_arg $ wait_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "learning first-order queries (PODS 2022 reproduction)" in
  let info = Cmd.info "folearn" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            learn_cmd; plan_cmd; mc_cmd; types_cmd; game_cmd; graph_cmd;
            strings_cmd; trees_cmd; lint_cmd; stats_cmd; pulse_cmd;
            serve_cmd; call_cmd; submit_cmd; poll_cmd;
          ]))
