(* Learning MSO-definable concepts on strings (related work [21]).

   The predecessor framework the paper builds on: the background
   structure is a string, hypotheses are MSO formulas with position
   parameters, and a preprocessing phase (here: a sparse table of
   composed transition functions) makes every hypothesis evaluation
   logarithmic in the string length.

   Run with:  dune exec examples/mso_strings.exe *)

module M = Mso.Formula
module W = Mso.Word
module L = Mso.Learner
module O = Mso.Oracle

let () =
  (* A log file as a string over the alphabet {o, w, e}:
     ok / warning / error events. *)
  let alphabet = "owe" in
  let log =
    "ooowoooeoowwooooeooooowoooooeeoooowooo"
  in
  let word = W.of_string ~alphabet log in
  let sigma = 3 in
  Format.printf "log = %s  (%d events)@.@." log (Array.length word);

  (* The hidden concept an operator has in mind: "this event happened
     after the first error".  Label some positions. *)
  let first_error =
    let rec find i = if word.(i) = 2 then i else find (i + 1) in
    find 0
  in
  let examples =
    List.map
      (fun p -> ([| p |], p > first_error))
      [ 0; 3; 5; 7; 9; 12; 16; 20; 25; 30; 37 ]
  in
  Format.printf "operator marked %d events (after-first-error?)@.@."
    (List.length examples);

  (* a catalogue of MSO hypothesis templates phi(x; y1) *)
  let catalogue =
    [
      {
        L.name = "x is an error";
        phi = M.Letter (2, "x");
        xvars = [ "x" ];
        yvars = [];
      };
      {
        L.name = "x is after the parameter position";
        phi = M.Less ("y1", "x");
        xvars = [ "x" ];
        yvars = [ "y1" ];
      };
      {
        L.name = "some error precedes x";
        phi =
          M.ExistsPos
            ("e", M.And [ M.Less ("e", "x"); M.Letter (2, "e") ]);
        xvars = [ "x" ];
        yvars = [];
      };
    ]
  in
  (match L.solve ~sigma ~word ~catalogue examples with
  | None -> Format.printf "no hypothesis found@."
  | Some r ->
      Format.printf
        "learned: %S with parameters %s (training error %.3f, %d-state \
         automaton, %d oracle evaluations)@."
        r.L.entry.L.name
        (String.concat ","
           (List.map string_of_int (Array.to_list r.L.params)))
        r.L.err r.L.states r.L.evaluations);

  (* the preprocessing pay-off: evaluation time per query, naive O(n)
     run vs the O(log n) sparse-table oracle *)
  Format.printf
    "@.preprocessing pay-off (concept: 'some error precedes x'):@.";
  Format.printf "%10s %14s %14s@." "n" "naive (us)" "oracle (us)";
  let phi =
    M.ExistsPos ("e", M.And [ M.Less ("e", "x"); M.Letter (2, "e") ])
  in
  let scope = [ ("x", M.Pos) ] in
  let dfa = M.compile ~sigma ~scope phi in
  List.iter
    (fun n ->
      let w = W.random ~seed:n ~sigma ~len:n in
      let oracle = O.make ~sigma dfa w in
      let queries = List.init 200 (fun i -> (i * 7919) mod n) in
      let t_naive = Unix.gettimeofday () in
      List.iter
        (fun p -> ignore (O.eval_naive oracle ~marks:[ (p, 1) ]))
        queries;
      let t_mid = Unix.gettimeofday () in
      List.iter
        (fun p -> ignore (O.eval_with_marks oracle ~marks:[ (p, 1) ]))
        queries;
      let t_end = Unix.gettimeofday () in
      Format.printf "%10d %14.2f %14.2f@." n
        ((t_mid -. t_naive) *. 1e6 /. 200.0)
        ((t_end -. t_mid) *. 1e6 /. 200.0))
    [ 1000; 10_000; 100_000; 1_000_000 ];
  Format.printf
    "@.naive evaluation scales linearly with the string; the sparse-table@.\
     oracle stays logarithmic - the preprocessing regime of [21].@."
