(* Learning over a real relational database instance.

   The paper states its results for coloured graphs and notes that
   arbitrary relational structures are covered "by coding relational
   structures as graphs" (Section 2).  This demo runs that pipeline end
   to end:

     relational DB --encode--> coloured graph --ERM--> recovered query

   Run with:  dune exec examples/relational_database.exe *)

open Cgraph
module R = Modelcheck.Relational
module Sam = Folearn.Sample

(* a streaming-service database *)
let people = [ (0, "ada"); (1, "ben"); (2, "cleo"); (3, "dan") ]
let movies = [ (4, "solaris"); (5, "stalker"); (6, "alien"); (7, "arrival") ]
let directors = [ (8, "tarkovsky"); (9, "scott"); (10, "villeneuve") ]

let name v =
  try List.assoc v (people @ movies @ directors)
  with Not_found -> string_of_int v

let db =
  R.create ~n:11
    ~relations:
      [
        ( "Watched", 2,
          [
            [| 0; 4 |]; [| 0; 5 |]; [| 1; 6 |]; [| 2; 5 |]; [| 2; 7 |];
            [| 3; 6 |]; [| 3; 7 |];
          ] );
        ("DirectedBy", 2, [ [| 4; 8 |]; [| 5; 8 |]; [| 6; 9 |]; [| 7; 10 |] ]);
        ("Person", 1, List.map (fun (v, _) -> [| v |]) people);
        ("SciFi", 1, [ [| 6 |]; [| 7 |] ]);
      ]

let () =
  Format.printf "%a@." R.pp db;

  let enc = R.encode db in
  Format.printf
    "Encoded as a coloured graph: %d vertices, %d edges, max degree %d@."
    (Graph.order enc.R.graph) (Graph.size enc.R.graph)
    (Graph.max_degree enc.R.graph);
  Format.printf
    "(the encoding keeps the structure sparse - this is why the paper's@.\
    \ nowhere-dense results carry over to databases)@.@.";

  (* The analyst's hidden intent: "x watched a Tarkovsky film".  They
     only mark four people. *)
  let intent =
    R.RExists
      ( "m",
        R.RAnd
          [
            R.RAtom ("Watched", [ "x1"; "m" ]);
            R.RExists
              ( "d",
                R.RAnd
                  [
                    R.RAtom ("DirectedBy", [ "m"; "d" ]);
                    R.REq ("d", "d");
                  ] );
            R.RAtom ("DirectedBy", [ "m"; "tark" ]);
          ] )
  in
  ignore intent;
  (* simpler to express with the director as a learned *parameter*:
     target(x) = exists m. Watched(x, m) /\ DirectedBy(m, y1) with the
     hidden constant y1 = tarkovsky. *)
  let target_graph_formula =
    R.translate
      (R.RExists
         ( "m",
           R.RAnd
             [
               R.RAtom ("Watched", [ "x1"; "m" ]);
               R.RAtom ("DirectedBy", [ "m"; "y1" ]);
             ] ))
  in
  let tark = enc.R.element 8 in
  let person_tuples = List.map (fun (v, _) -> [| enc.R.element v |]) people in
  let lam =
    Sam.label_with_query enc.R.graph ~formula:target_graph_formula
      ~xvars:[ "x1" ] ~yvars:[ "y1" ] ~params:[| tark |] person_tuples
  in
  Format.printf "Analyst feedback:@.";
  List.iter
    (fun (t, l) ->
      Format.printf "  %-6s -> %s@." (name t.(0))
        (if l then "relevant" else "irrelevant"))
    lam;

  (* Learn over the encoded graph with one parameter allowed.  Through
     the incidence encoding, "x watched a w-movie" is a radius-2 pattern
     around the pair (x, w) (person - fact - movie - fact - director),
     so rank-2 local types at radius 2 separate the labels; the local
     learner finds the hidden director as the parameter. *)
  let result =
    Folearn.Erm_local.solve ~radius:2 enc.R.graph ~k:1 ~ell:1 ~q:2 lam
  in
  let hyp = result.Folearn.Erm_local.hypothesis in
  let params = Folearn.Hypothesis.params hyp in
  Format.printf "@.Recovered: training error %.3f, parameter = %s@."
    result.Folearn.Erm_local.err
    (if Array.length params = 1 then name params.(0) else "(none)");
  if Array.length params = 1 && params.(0) <> tark then
    Format.printf
      "(ERM only promises *a* consistent hypothesis - here a pattern@.\
      \ anchored at %s fits the four labels just as well as the@.\
      \ hidden tarkovsky constant does)@."
      (name params.(0));

  (* validate against the intent on everyone *)
  let agree =
    List.for_all (fun (t, l) -> Folearn.Hypothesis.predict hyp t = l) lam
  in
  Format.printf "Consistent with all feedback: %b@." agree
