module Count = struct
  type t = Finite of int | Saturated

  let zero = Finite 0
  let one = Finite 1
  let saturated = Saturated

  let of_int n = if n < 0 then invalid_arg "Count.of_int: negative" else Finite n

  let add a b =
    match (a, b) with
    | Saturated, _ | _, Saturated -> Saturated
    | Finite a, Finite b -> if a > max_int - b then Saturated else Finite (a + b)

  let mul a b =
    match (a, b) with
    | Finite 0, _ | _, Finite 0 -> Finite 0
    | Saturated, _ | _, Saturated -> Saturated
    | Finite a, Finite b -> if a > max_int / b then Saturated else Finite (a * b)

  let rec pow base e =
    if e < 0 then invalid_arg "Count.pow: negative exponent"
    else if e = 0 then one
    else mul base (pow base (e - 1))

  (* Sum_{j=0}^{upto} base^j — the row count of a rank-[upto] type-table
     chain over a [base]-element domain. *)
  let sum_powers ~base ~upto =
    let rec go j acc = if j > upto then acc else go (j + 1) (add acc (pow base j)) in
    if upto < 0 then zero else go 0 zero

  let min_cap t cap =
    match t with
    | Saturated -> Finite cap
    | Finite n -> Finite (min n cap)

  let to_int_opt = function Finite n -> Some n | Saturated -> None

  let leq a b =
    match (a, b) with
    | _, Saturated -> true
    | Saturated, Finite _ -> false
    | Finite a, Finite b -> a <= b

  (* Is the limit [limit] certainly insufficient / certainly sufficient
     for a quantity known to lie in an interval?  [Saturated] means
     "at least [max_int]", so a finite limit is below it. *)
  let exceeds_int t limit =
    match t with Saturated -> true | Finite n -> n > limit

  let to_json = function
    | Finite n -> Obs.Json.Int n
    | Saturated -> Obs.Json.String "saturated"

  let of_json = function
    | Obs.Json.Int n when n >= 0 -> Ok (Finite n)
    | Obs.Json.String "saturated" -> Ok Saturated
    | _ -> Error "Count.of_json: expected a non-negative integer or \"saturated\""

  let pp ppf = function
    | Finite n -> Format.pp_print_int ppf n
    | Saturated -> Format.pp_print_string ppf "saturated"
end

module Log2 = struct
  type t = Finite of float | Saturated

  let of_float f =
    if Float.is_finite f then Finite f
    else if f = Float.infinity then Saturated
    else invalid_arg "Log2.of_float: nan or -inf"

  let to_json = function
    | Finite f -> Obs.Json.Float f
    | Saturated -> Obs.Json.String "saturated"

  let of_json = function
    | Obs.Json.Int n -> Ok (Finite (float_of_int n))
    | Obs.Json.Float f when Float.is_finite f -> Ok (Finite f)
    | Obs.Json.String "saturated" -> Ok Saturated
    | _ -> Error "Log2.of_json: expected a finite number or \"saturated\""

  let pp ppf = function
    | Finite f -> Format.fprintf ppf "%g" f
    | Saturated -> Format.pp_print_string ppf "saturated"
end

module Env = struct
  type t = { lo : Count.t; hi : Count.t }

  let exact c = { lo = c; hi = c }
  let of_ints lo hi = { lo = Count.of_int lo; hi = Count.of_int hi }
  let make ~lo ~hi = { lo; hi }
  let add a b = { lo = Count.add a.lo b.lo; hi = Count.add a.hi b.hi }
  let mul a b = { lo = Count.mul a.lo b.lo; hi = Count.mul a.hi b.hi }
  let widen_lo t = { t with lo = Count.zero }

  let to_json t =
    Obs.Json.Obj [ ("lo", Count.to_json t.lo); ("hi", Count.to_json t.hi) ]

  let pp ppf t = Format.fprintf ppf "[%a, %a]" Count.pp t.lo Count.pp t.hi
end

(* ------------------------------------------------------------------ *)
(* Paper bounds                                                        *)
(* ------------------------------------------------------------------ *)

let hintikka_log2 ~colors ~q ~k =
  let atoms k = float_of_int ((k * (k - 1)) + (k * colors)) in
  let rec log2_t q k =
    if q <= 0 then Log2.Finite (atoms k)
    else
      match log2_t (q - 1) (k + 1) with
      | Log2.Saturated -> Log2.Saturated
      | Log2.Finite sub ->
          if sub > 62.0 then Log2.Saturated
          else Log2.Finite (atoms k +. Float.exp2 sub)
  in
  log2_t q k

let ramsey_r233_log2 ~s_log2 =
  match s_log2 with
  | Log2.Saturated -> Log2.Saturated
  | Log2.Finite s_log2 ->
      if s_log2 > 62.0 then Log2.Saturated
      else begin
        let s = Float.exp2 s_log2 in
        if s < 2.0 then Log2.Finite (Float.log2 3.0)
        else
          let log2_e = Float.log2 (Float.exp 1.0) in
          Log2.of_float
            ((s *. (s_log2 -. log2_e))
            +. (0.5 *. Float.log2 (2.0 *. Float.pi *. s))
            +. log2_e)
      end

let gaifman_radius q =
  if q < 0 then invalid_arg "Cost_model.gaifman_radius: negative rank"
  else
    (* (7^q - 1) / 2, the radius from Gaifman's locality theorem *)
    let sevens = Count.pow (Count.of_int 7) q in
    match sevens with
    | Count.Saturated -> Count.Saturated
    | Count.Finite s -> Count.Finite ((s - 1) / 2)

let type_table_rows ~n ~q = Count.sum_powers ~base:(Count.of_int n) ~upto:q

let candidate_count ~n ~ell = Count.pow (Count.of_int n) ell

let local_candidate_count ~pool ~ell =
  Count.sum_powers ~base:(Count.of_int pool) ~upto:ell

let catalogue_cardinality ~types ~max_size =
  if types < 0 then invalid_arg "Cost_model.catalogue_cardinality: negative"
  else
    let all =
      if types >= Sys.int_size - 1 then Count.Saturated
      else Count.of_int ((1 lsl types) - 1)
    in
    Count.min_cap all max_size

let ball_bound_degree ~d ~r =
  if d < 0 || r < 0 then invalid_arg "Cost_model.ball_bound_degree: negative"
  else if r = 0 then Count.one
  else if d <= 1 then Count.of_int (1 + d)
  else if d = 2 then Count.of_int (min max_int (2 * r) + 1)
  else
    (* 1 + d * ((d-1)^r - 1) / (d - 2), the Moore bound *)
    let dm1 = Count.of_int (d - 1) in
    match Count.pow dm1 r with
    | Count.Saturated -> Count.Saturated
    | Count.Finite p ->
        Count.add Count.one
          (Count.mul (Count.of_int d) (Count.Finite ((p - 1) / (d - 2))))
