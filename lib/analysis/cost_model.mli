(** Saturating symbolic arithmetic and the paper's parameterized cost
    bounds — the numeric substrate of the static planner {!Plan}.

    Every headline quantity of {e On the Parameterized Complexity of
    Learning First-Order Logic} (van Bergerem–Grohe–Ritzert, PODS 2022)
    is a tower: type tables are iterated exponentials in the quantifier
    rank, hypothesis catalogues are powersets of type tables, and the
    hardness reduction consumes Ramsey numbers of those.  A static
    analyzer must therefore compute with explicitly {e saturating}
    numbers: a bound that leaves the machine range is reported as
    [Saturated], never silently clamped or wrapped — that is the
    contract the [lint --cost] saturation fix and the admission
    precheck both rely on. *)

(** Saturating non-negative machine integers. *)
module Count : sig
  type t = Finite of int | Saturated
      (** [Saturated] means "at least [max_int]": every arithmetic
          operation propagates it, and comparisons treat it as larger
          than any finite value. *)

  val zero : t
  val one : t
  val saturated : t

  val of_int : int -> t
  (** @raise Invalid_argument on a negative input. *)

  val add : t -> t -> t
  val mul : t -> t -> t

  val pow : t -> int -> t
  (** @raise Invalid_argument on a negative exponent. *)

  val sum_powers : base:t -> upto:int -> t
  (** [sum_powers ~base ~upto = Σ_{j=0}^{upto} base^j] — the number of
      memo rows a rank-[upto] type computation ([Modelcheck.Types.tp])
      materialises over a [base]-element domain (Lemma 19 of the paper:
      model checking by recursive type computation). *)

  val min_cap : t -> int -> t
  (** [min_cap t cap = min t cap]; caps even [Saturated]. *)

  val to_int_opt : t -> int option
  val leq : t -> t -> bool

  val exceeds_int : t -> int -> bool
  (** [exceeds_int t limit] — is [t] certainly larger than the finite
      [limit]?  [Saturated] exceeds every finite limit. *)

  val to_json : t -> Obs.Json.t
  (** [Finite n] encodes as a JSON int, [Saturated] as the string
      ["saturated"]. *)

  val of_json : Obs.Json.t -> (t, string) result
  (** Inverse of {!to_json}: [of_json (to_json t) = Ok t]. *)

  val pp : Format.formatter -> t -> unit
end

(** Saturating base-2 logarithms of bounds too large even for {!Count}. *)
module Log2 : sig
  type t = Finite of float | Saturated

  val of_float : float -> t
  (** [infinity] becomes [Saturated].
      @raise Invalid_argument on [nan] or negative infinity. *)

  val to_json : t -> Obs.Json.t
  (** [Finite f] encodes as a JSON float, [Saturated] as the string
      ["saturated"] — losslessly, unlike a bare non-finite float (which
      [Obs.Json] must encode as [null]). *)

  val of_json : Obs.Json.t -> (t, string) result
  (** Inverse of {!to_json}: [of_json (to_json t) = Ok t]. *)

  val pp : Format.formatter -> t -> unit
end

(** Closed intervals [[lo, hi]] of {!Count.t} — the envelopes the
    planner derives for fuel, table rows, and ball sizes.  [lo] is a
    sound lower bound (the run spends at least [lo]), [hi] a sound
    upper bound; admission decisions only ever use the sound side
    ([lo] to prove infeasibility, [hi] to prove feasibility). *)
module Env : sig
  type t = { lo : Count.t; hi : Count.t }

  val exact : Count.t -> t
  val of_ints : int -> int -> t
  val make : lo:Count.t -> hi:Count.t -> t
  val add : t -> t -> t
  val mul : t -> t -> t

  val widen_lo : t -> t
  (** Forget the lower bound (sets it to [0]) — used where a phase's
      cost has a sound upper bound but no useful lower bound, e.g. the
      splitter-game probes of [Erm_nd]. *)

  val to_json : t -> Obs.Json.t
  val pp : Format.formatter -> t -> unit
end

(** {1 Bounds from the paper}

    Each function cites the statement it implements. *)

val hintikka_log2 : colors:int -> q:int -> k:int -> Log2.t
(** [log2] of the rank-[q] type-table bound [T(q, k)] over [k] free
    variables and [colors] unary predicates — the tower bound behind
    Lemma 11 (the Hintikka-formula catalogue) of BGR PODS 2022.
    Explicitly [Saturated] (never a clamped finite value) once any
    factor leaves the float range. *)

val ramsey_r233_log2 : s_log2:Log2.t -> Log2.t
(** [log2] of the Ramsey bound [R(2, s, 3) <= floor(s! e) + 1] consumed
    by the Lemma 7 hardness reduction, with [s = 2^s_log2] colours.
    Saturates with its input. *)

val gaifman_radius : int -> Count.t
(** [(7^q - 1) / 2], the locality radius of Gaifman's theorem used by
    the local solver (Theorem 13 via Gaifman normal form; the sharper
    degree-bounded forms are Grohe–Ritzert, arXiv:1701.05487). *)

val type_table_rows : n:int -> q:int -> Count.t
(** [Σ_{j=0}^{q} n^j] — the exact number of memo rows (equivalently,
    [Hintikka_build] guard ticks) one rank-[q] type computation over an
    [n]-element structure performs per example root (Lemma 19). *)

val candidate_count : n:int -> ell:int -> Count.t
(** [n^ell] — the parameter-tuple catalogue the brute and counting
    solvers enumerate (Theorem 10: parameter learning by enumeration). *)

val local_candidate_count : pool:int -> ell:int -> Count.t
(** [Σ_{j=0}^{ell} pool^j] — the candidate count of the local solver,
    whose parameters range over a neighbourhood pool of the examples
    (Theorem 13 / Lemma 15: parameters can be assumed
    [(2r+1)]-local). *)

val catalogue_cardinality : types:int -> max_size:int -> Count.t
(** [min (2^types - 1) max_size] — the exact number of hypotheses
    [Folearn.Catalogue.of_local_types] builds from [types] realised
    local types (nonempty subsets, smallest first, capped at
    [max_size]).  The QCheck property [plan-catalogue-exact] pins this
    against the real enumeration. *)

val ball_bound_degree : d:int -> r:int -> Count.t
(** [1 + d Σ_{i<r} (d-1)^i] — the Moore bound on an [r]-ball in a
    graph of maximum degree [d] (the bounded-degree ball bound of
    Grohe–Ritzert arXiv:1701.05487, Section 3). *)
