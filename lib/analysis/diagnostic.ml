type severity = Error | Warning | Hint

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let pp_severity ppf s = Format.pp_print_string ppf (severity_to_string s)

type t = {
  rule : string;
  severity : severity;
  message : string;
  path : string list;
}

type rule_info = {
  id : string;
  default_severity : severity;
  doc : string;
}

let rules =
  [
    { id = "parse-error"; default_severity = Error;
      doc = "the input is not a syntactically valid formula" };
    { id = "unknown-relation"; default_severity = Error;
      doc = "atom uses a relation symbol not declared in the vocabulary" };
    { id = "arity-mismatch"; default_severity = Error;
      doc = "atom applies a relation symbol with the wrong number of arguments" };
    { id = "unbound-variable"; default_severity = Error;
      doc = "variable occurs free but is not a declared interface variable" };
    { id = "kind-clash"; default_severity = Error;
      doc = "MSO variable used both as a position and as a set variable" };
    { id = "shadowed-binder"; default_severity = Warning;
      doc = "quantifier re-binds a variable already in scope" };
    { id = "vacuous-quantifier"; default_severity = Warning;
      doc = "quantified variable does not occur free in the body" };
    { id = "rank-over-budget"; default_severity = Error;
      doc = "quantifier rank exceeds the declared budget q" };
    { id = "free-over-budget"; default_severity = Error;
      doc = "more free variables than the declared budget admits" };
    { id = "unknown-letter"; default_severity = Error;
      doc = "letter or label index outside the declared alphabet" };
    { id = "invalid-parameter"; default_severity = Error;
      doc = "learning budget (k, ell, q, tmax, r) outside its legal range" };
    { id = "non-local"; default_severity = Error;
      doc = "quantifier not relativised to the r-neighbourhood of the \
             interface variables" };
    { id = "double-negation"; default_severity = Hint;
      doc = "~~phi simplifies to phi" };
    { id = "trivial-atom"; default_severity = Hint;
      doc = "atom has a constant truth value" };
    { id = "duplicate-junct"; default_severity = Hint;
      doc = "junction lists the same subformula twice" };
    { id = "constant-junct"; default_severity = Hint;
      doc = "conjunction containing false / disjunction containing true" };
    { id = "cost-metadata"; default_severity = Hint;
      doc = "informational per-formula cost estimate (rank, locality \
             radius, Hintikka-table bound) as a JSON message" };
    { id = "budget-infeasible"; default_severity = Error;
      doc = "declared resource budget is provably below the sound \
             first-settle floor of the planned run (admission precheck)" };
  ]

let default_severity id =
  match List.find_opt (fun r -> r.id = id) rules with
  | Some r -> r.default_severity
  | None -> Error

let make ?(path = []) ~rule message =
  { rule; severity = default_severity rule; message; path }

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let hints ds = List.filter (fun d -> d.severity = Hint) ds

let rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let worst = function
  | [] -> None
  | d :: ds ->
      Some
        (List.fold_left
           (fun acc d -> if rank d.severity < rank acc then d.severity else acc)
           d.severity ds)

let sort ds =
  List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity)) ds

let pp_path ppf = function
  | [] -> Format.pp_print_string ppf "<toplevel>"
  | path ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " > ")
        Format.pp_print_string ppf path

let pp ppf d =
  Format.fprintf ppf "%a[%s] at %a: %s" pp_severity d.severity d.rule pp_path
    d.path d.message

let to_string d = Format.asprintf "%a" pp d

let render_list ds =
  String.concat "\n" (List.map to_string (sort ds))

(* Minimal JSON emission — enough for the diagnostic fields (rule ids and
   paths are ASCII; messages may contain quotes/backslashes). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf {|"%s"|} (json_escape s)

let to_json d =
  Printf.sprintf {|{"rule": "%s", "severity": "%s", "message": "%s", "path": [%s]}|}
    (json_escape d.rule)
    (severity_to_string d.severity)
    (json_escape d.message)
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf {|"%s"|} (json_escape s)) d.path))

let list_to_json ds =
  Printf.sprintf "[%s]" (String.concat ", " (List.map to_json ds))
