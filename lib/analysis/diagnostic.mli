(** Structured diagnostics for the static analyses over FO and MSO
    formulas ("folint").

    A diagnostic carries a stable {e rule id}, a severity, a
    human-readable message, and a {e path}: a breadcrumb into the formula
    AST locating the offending subformula (outermost step first, e.g.
    [exists y › and\[2\] › ~]).

    {2 Rule catalogue}

    Every rule enforced by {!Fo_check} and {!Mso_check}, its default
    severity, and the paper side condition it guards (section numbers
    refer to van Bergerem–Grohe–Ritzert, PODS 2022):

    {ul
    {- [parse-error] (error) — the input is not a formula at all.  Not an
       AST analysis; emitted by the CLI when {!Fo.Parser} rejects the
       input.}
    {- [unknown-relation] (error) — {e signature conformance}: an atom
       uses a relation symbol not declared in the vocabulary [τ]
       (Section 2: formulas are over a fixed vocabulary
       [{E, P_1, ..., P_c}]; an undeclared colour cannot be evaluated on
       a [τ]-structure).}
    {- [arity-mismatch] (error) — {e signature conformance}: an atom
       applies a declared relation symbol to the wrong number of
       arguments (e.g. a binary symbol used as a colour predicate).}
    {- [unbound-variable] (error) — {e scope analysis}: a variable occurs
       free but is not among the declared interface variables.  The
       hypothesis classes [H_{k,ℓ,q}] of Section 3 admit only
       [φ(x1..xk; y1..yℓ)]; a stray free variable has no vertex to be
       assigned to.}
    {- [kind-clash] (error) — {e scope analysis}, MSO only: a variable is
       used both as a position (first-order) and as a set (monadic
       second-order) variable.}
    {- [shadowed-binder] (warning) — {e scope analysis}: a quantifier
       re-binds a variable already bound (or free) in an enclosing scope.
       Legal but a classic source of wrong formulas; Section 2's
       normal-form convention assumes distinctly named binders.}
    {- [vacuous-quantifier] (warning) — {e scope analysis}: a quantifier
       whose variable does not occur free in its body.  Wastes one unit
       of the quantifier-rank budget [q] without changing the defined
       query.}
    {- [rank-over-budget] (error) — {e budget verification}: the computed
       quantifier rank exceeds the declared budget [q].  Theorems 1–2
       are parameterized by [q = qr(φ)]; a hypothesis over the budget is
       outside the class [Φ(q, k, ℓ)].}
    {- [free-over-budget] (error) — {e budget verification}: the formula
       has more free variables than the declared interface [k + ℓ]
       admits.}
    {- [unknown-letter] (error) — {e signature conformance}, MSO only: a
       letter (or tree-label) atom uses an index outside the declared
       alphabet [0..σ-1].}
    {- [invalid-parameter] (error) — {e budget verification}: a learning
       budget handed to an ERM entry point is outside its legal range
       ([k >= 1], [ℓ >= 0], [q >= 0], [tmax >= 1], [r >= 0]).}
    {- [non-local] (error) — {e locality}: a quantifier is not
       syntactically relativised to the [r]-neighbourhood of the formula's
       interface variables (the shape produced by {!Fo.Localize.relativize}),
       or its guard implies a radius larger than the declared budget [r].
       Gaifman locality (Fact 5) is the engine of both main theorems; the
       message reports the radius [r(q) = (7^q - 1)/2] that
       {!Fo.Gaifman.radius} guarantees as a fallback for an unguarded
       subformula of rank [q].}
    {- [double-negation] (hint) — {e simplification}: [~~φ]; rewrite to
       [φ].}
    {- [trivial-atom] (hint) — {e simplification}: an atom with a
       constant truth value ([x = x], or a reflexive edge [E(x, x)] on
       loop-free graphs).}
    {- [duplicate-junct] (hint) — {e simplification}: a conjunction or
       disjunction lists the same subformula twice.}
    {- [constant-junct] (hint) — {e simplification}: a conjunction
       containing [false] (or a disjunction containing [true]) — the
       whole junction is constant.}
    {- [cost-metadata] (hint) — {e informational}: per-formula cost
       estimates (quantifier rank, syntactic or Gaifman locality radius,
       a log2 bound on the rank-q Hintikka type table) encoded as a JSON
       object in the message.  Emitted only on request
       ([lint --cost] / {!Fo_check.cost_diagnostic}); never a failure.}
    {- [budget-infeasible] (error) — {e admission}: the declared
       resource budget ([--fuel]/[--max-table]/[--max-ball]) is provably
       below the sound first-settle floor computed by the static planner
       ({!Plan.precheck}); the run would exhaust with nothing to salvage,
       so it is rejected up front ([--no-precheck] escapes).}} *)

type severity = Error | Warning | Hint

val severity_to_string : severity -> string
val pp_severity : Format.formatter -> severity -> unit

type t = {
  rule : string;  (** stable rule id, kebab-case (see the catalogue) *)
  severity : severity;
  message : string;
  path : string list;  (** breadcrumb into the AST, outermost first *)
}

val make : ?path:string list -> rule:string -> string -> t
(** [make ~rule msg] builds a diagnostic with the rule's default severity
    from the registry ([Error] for unregistered rule ids). *)

(** {1 Registry} *)

type rule_info = {
  id : string;
  default_severity : severity;
  doc : string;  (** one-line description, shown by [lint --list-rules] *)
}

val rules : rule_info list
(** Every known rule, in catalogue order. *)

val default_severity : string -> severity

(** {1 Aggregation} *)

val errors : t list -> t list
val warnings : t list -> t list
val hints : t list -> t list

val worst : t list -> severity option
(** Most severe severity present, [None] on the empty list. *)

val sort : t list -> t list
(** Stable sort: errors first, then warnings, then hints. *)

(** {1 Rendering} *)

val pp_path : Format.formatter -> string list -> unit
(** [exists y › and\[2\]]; prints [⟨toplevel⟩] for the empty path. *)

val pp : Format.formatter -> t -> unit
(** One line: [error\[rule\] at path: message]. *)

val to_string : t -> string

val render_list : t list -> string
(** All diagnostics, one per line — used for [Invalid_argument] payloads
    raised by the {!Guard}ed library entry points. *)

val json_string : string -> string
(** A quoted, escaped JSON string literal — for callers embedding
    diagnostics in larger JSON documents. *)

val to_json : t -> string
(** Single JSON object
    [{"rule": ..., "severity": ..., "message": ..., "path": [...]}]. *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects. *)
