open Fo

type budget = {
  max_rank : int option;
  max_free : int option;
  radius : int option;
}

let no_budget = { max_rank = None; max_free = None; radius = None }
let budget ?max_rank ?max_free ?radius () = { max_rank; max_free; radius }

module VSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

(* Breadcrumbs are built in reverse (innermost first) and flipped when a
   diagnostic is emitted. *)
let step_binder kind x = Printf.sprintf "%s %s" kind x
let step_junct kind i = Printf.sprintf "%s[%d]" kind (i + 1)

let at path = List.rev path

(* ------------------------------------------------------------------ *)
(* Signature conformance                                               *)
(* ------------------------------------------------------------------ *)

let check_atom_signature vocab path acc atom =
  let use name used_arity rendered =
    match Vocab.arity vocab name with
    | None ->
        Diagnostic.make ~path:(at path) ~rule:"unknown-relation"
          (Printf.sprintf
             "relation %S in atom %s is not declared in the vocabulary [%s]"
             name rendered
             (Format.asprintf "%a" Vocab.pp vocab))
        :: acc
    | Some a when a <> used_arity ->
        Diagnostic.make ~path:(at path) ~rule:"arity-mismatch"
          (Printf.sprintf
             "relation %S is declared with arity %d but atom %s applies it \
              to %d argument%s"
             name a rendered used_arity (if used_arity = 1 then "" else "s"))
        :: acc
    | Some _ -> acc
  in
  match atom with
  | Formula.Eq _ -> acc (* equality is a logical symbol *)
  | Formula.Edge (x, y) -> use "E" 2 (Printf.sprintf "E(%s, %s)" x y)
  | Formula.Color (c, x) -> use c 1 (Printf.sprintf "%s(%s)" c x)

let signature_pass vocab f =
  let rec go path acc f =
    match f with
    | Formula.True | Formula.False -> acc
    | Formula.Atom a -> check_atom_signature vocab path acc a
    | Formula.Not g -> go ("~" :: path) acc g
    | Formula.And fs ->
        List.fold_left
          (fun (i, acc) g -> (i + 1, go (step_junct "and" i :: path) acc g))
          (0, acc) fs
        |> snd
    | Formula.Or fs ->
        List.fold_left
          (fun (i, acc) g -> (i + 1, go (step_junct "or" i :: path) acc g))
          (0, acc) fs
        |> snd
    | Formula.Implies (a, b) ->
        go ("->rhs" :: path) (go ("->lhs" :: path) acc a) b
    | Formula.Iff (a, b) ->
        go ("<->rhs" :: path) (go ("<->lhs" :: path) acc a) b
    | Formula.Exists (x, g) -> go (step_binder "exists" x :: path) acc g
    | Formula.Forall (x, g) -> go (step_binder "forall" x :: path) acc g
    | Formula.CountGe (t, x, g) ->
        go (step_binder (Printf.sprintf "atleast %d" t) x :: path) acc g
  in
  List.rev (go [] [] f)

(* ------------------------------------------------------------------ *)
(* Scope analysis                                                      *)
(* ------------------------------------------------------------------ *)

let scope_pass ?allowed_free f =
  let reported_unbound = ref VSet.empty in
  let use path acc x bound =
    match allowed_free with
    | None -> acc
    | Some allowed ->
        if VSet.mem x bound || List.mem x allowed
           || VSet.mem x !reported_unbound
        then acc
        else begin
          reported_unbound := VSet.add x !reported_unbound;
          Diagnostic.make ~path:(at path) ~rule:"unbound-variable"
            (Printf.sprintf
               "variable %S occurs free but is not among the interface \
                variables [%s]"
               x
               (String.concat "; " allowed))
          :: acc
        end
  in
  let bind kind path acc x body bound =
    let acc =
      let shadows_bound = VSet.mem x bound in
      let shadows_free =
        match allowed_free with Some l -> List.mem x l | None -> false
      in
      if shadows_bound || shadows_free then
        Diagnostic.make ~path:(at path) ~rule:"shadowed-binder"
          (Printf.sprintf "%s %s re-binds %s %S already in scope" kind x
             (if shadows_bound then "the bound variable"
              else "the interface variable")
             x)
        :: acc
      else acc
    in
    if VSet.mem x (Formula.free_vars body |> VSet.of_list) then acc
    else
      Diagnostic.make ~path:(at path) ~rule:"vacuous-quantifier"
        (Printf.sprintf
           "%s %s binds a variable that does not occur free in its body \
            (one unit of quantifier rank for nothing)"
           kind x)
      :: acc
  in
  let rec go path bound acc f =
    match f with
    | Formula.True | Formula.False -> acc
    | Formula.Atom (Formula.Eq (x, y)) | Formula.Atom (Formula.Edge (x, y)) ->
        use path (use path acc x bound) y bound
    | Formula.Atom (Formula.Color (_, x)) -> use path acc x bound
    | Formula.Not g -> go ("~" :: path) bound acc g
    | Formula.And fs ->
        List.fold_left
          (fun (i, acc) g ->
            (i + 1, go (step_junct "and" i :: path) bound acc g))
          (0, acc) fs
        |> snd
    | Formula.Or fs ->
        List.fold_left
          (fun (i, acc) g ->
            (i + 1, go (step_junct "or" i :: path) bound acc g))
          (0, acc) fs
        |> snd
    | Formula.Implies (a, b) ->
        go ("->rhs" :: path) bound (go ("->lhs" :: path) bound acc a) b
    | Formula.Iff (a, b) ->
        go ("<->rhs" :: path) bound (go ("<->lhs" :: path) bound acc a) b
    | Formula.Exists (x, g) ->
        let path = step_binder "exists" x :: path in
        go path (VSet.add x bound) (bind "exists" path acc x g bound) g
    | Formula.Forall (x, g) ->
        let path = step_binder "forall" x :: path in
        go path (VSet.add x bound) (bind "forall" path acc x g bound) g
    | Formula.CountGe (t, x, g) ->
        let kind = Printf.sprintf "atleast %d" t in
        let path = step_binder kind x :: path in
        go path (VSet.add x bound) (bind kind path acc x g bound) g
  in
  List.rev (go [] VSet.empty [] f)

(* ------------------------------------------------------------------ *)
(* Budget verification                                                 *)
(* ------------------------------------------------------------------ *)

(* Walk down with the remaining rank budget and report the first binder
   on each branch that crosses it (rather than one toplevel count), so
   the path points at the offending quantifier. *)
let rank_pass ~max_rank f =
  let total = Formula.quantifier_rank f in
  let rec go path remaining acc f =
    match f with
    | Formula.True | Formula.False | Formula.Atom _ -> acc
    | Formula.Not g -> go ("~" :: path) remaining acc g
    | Formula.And fs | Formula.Or fs ->
        let kind = match f with Formula.And _ -> "and" | _ -> "or" in
        List.fold_left
          (fun (i, acc) g ->
            (i + 1, go (step_junct kind i :: path) remaining acc g))
          (0, acc) fs
        |> snd
    | Formula.Implies (a, b) ->
        go ("->rhs" :: path) remaining (go ("->lhs" :: path) remaining acc a) b
    | Formula.Iff (a, b) ->
        go ("<->rhs" :: path) remaining
          (go ("<->lhs" :: path) remaining acc a)
          b
    | Formula.Exists (x, g) | Formula.Forall (x, g)
    | Formula.CountGe (_, x, g) ->
        let kind =
          match f with
          | Formula.Exists _ -> "exists"
          | Formula.Forall _ -> "forall"
          | _ -> "atleast"
        in
        let path = step_binder kind x :: path in
        if remaining = 0 && Formula.quantifier_rank f > 0 then
          Diagnostic.make ~path:(at path) ~rule:"rank-over-budget"
            (Printf.sprintf
               "this quantifier exceeds the rank budget: the formula has \
                quantifier rank %d, the class Phi(q, k, l) admits q = %d"
               total max_rank)
          :: acc
        else go path (remaining - 1) acc g
  in
  if total <= max_rank then []
  else List.rev (go [] max_rank [] f)

let free_pass ~max_free f =
  let fv = Formula.free_vars f in
  if List.length fv <= max_free then []
  else
    [
      Diagnostic.make ~rule:"free-over-budget"
        (Printf.sprintf
           "formula has %d free variables [%s], over the budget of %d \
            (k example slots plus l parameter slots)"
           (List.length fv) (String.concat "; " fv) max_free);
    ]

(* ------------------------------------------------------------------ *)
(* Locality                                                            *)
(* ------------------------------------------------------------------ *)

(* Recognise the output shapes of Localize.dist_le:
     d = 0           x = y
     d = 1           x = y \/ E(x, y)
     d = a + b       exists z. (dist_le a x z /\ dist_le b z y)        *)
let rec as_dist_le f =
  match f with
  | Formula.Atom (Formula.Eq (x, y)) -> Some (x, y, 0)
  | Formula.Or [ Formula.Atom (Formula.Eq (x, y)); Formula.Atom (Formula.Edge (x', y')) ]
    when x = x' && y = y' ->
      Some (x, y, 1)
  | Formula.Exists (z, Formula.And [ a; b ]) -> (
      match (as_dist_le a, as_dist_le b) with
      | Some (x, z1, d1), Some (z2, y, d2)
        when z1 = z && z2 = z && x <> z && y <> z ->
          Some (x, y, d1 + d2)
      | _ -> None)
  | _ -> None

(* Recognise Localize.ball_membership ~r centers y — a disjunction of
   dist_le formulas all guarding the same source variable [y].  The
   smart constructor or_ flattens the r = 1 disjuncts into the outer
   disjunction, so juncts are parsed greedily: an equality immediately
   followed by the matching edge atom is one radius-1 guard. *)
let as_ball_guard y f =
  let rec parse acc = function
    | [] -> Some (List.rev acc)
    | Formula.Atom (Formula.Eq (s, c)) :: Formula.Atom (Formula.Edge (s', c')) :: rest
      when s = y && s' = y && c = c' ->
        parse ((c, 1) :: acc) rest
    | junct :: rest -> (
        match as_dist_le junct with
        | Some (s, c, d) when s = y -> parse ((c, d) :: acc) rest
        | _ -> None)
  in
  match f with Formula.Or fs -> parse [] fs | f -> parse [] [ f ]

(* Reach of a bound variable: an upper bound on its distance from the
   interface variables, accumulated through chained guards.  A guard
   [\/_i dist(y, c_i) <= d_i] places y within max_i (reach c_i + d_i)
   (the disjunction only promises SOME centre, so the max is the sound
   bound). *)
type reach_result = {
  max_reach : int;
  offenders : (string list * string * int) list;
      (* path, binder rendering, rank of the unguarded subformula *)
}

let locality_walk ~around f =
  let offenders = ref [] in
  let max_reach = ref 0 in
  let reach_env0 =
    List.fold_left (fun m x -> (x, 0) :: m) [] around
  in
  let guard_reach env centers =
    List.fold_left
      (fun acc (c, d) ->
        match (acc, List.assoc_opt c env) with
        | Some m, Some rc -> Some (max m (rc + d))
        | _ -> None)
      (Some 0) centers
  in
  let offend path kind x g =
    offenders :=
      (at path, step_binder kind x, 1 + Formula.quantifier_rank g)
      :: !offenders
  in
  let rec go path env f =
    match f with
    | Formula.True | Formula.False | Formula.Atom _ -> ()
    | _ when is_bounded_dist env f -> ()
    | Formula.Not g -> go ("~" :: path) env g
    | Formula.And fs ->
        List.iteri (fun i g -> go (step_junct "and" i :: path) env g) fs
    | Formula.Or fs ->
        List.iteri (fun i g -> go (step_junct "or" i :: path) env g) fs
    | Formula.Implies (a, b) ->
        go ("->lhs" :: path) env a;
        go ("->rhs" :: path) env b
    | Formula.Iff (a, b) ->
        go ("<->lhs" :: path) env a;
        go ("<->rhs" :: path) env b
    | Formula.Exists (x, body) ->
        quant path env "exists" x body
          (function
            | Formula.And (g :: rest) -> Some (g, Formula.and_ rest)
            | g -> (match as_ball_guard x g with
                    | Some _ -> Some (g, Formula.True)
                    | None -> None))
    | Formula.Forall (x, body) ->
        quant path env "forall" x body
          (function
            | Formula.Implies (g, rest) -> Some (g, rest)
            | Formula.Not g ->
                (* [implies g False] simplifies to [Not g], so a
                   relativised forall with body [False] reaches us in
                   this shape. *)
                (match as_ball_guard x g with
                 | Some _ -> Some (g, Formula.False)
                 | None -> None)
            | _ -> None)
    | Formula.CountGe (t, x, body) ->
        quant path env (Printf.sprintf "atleast %d" t) x body
          (function
            | Formula.And (g :: rest) -> Some (g, Formula.and_ rest)
            | g -> (match as_ball_guard x g with
                    | Some _ -> Some (g, Formula.True)
                    | None -> None))
  and quant path env kind x body split =
    let path = step_binder kind x :: path in
    match split body with
    | Some (g, rest) -> (
        match as_ball_guard x g with
        | Some centers -> (
            match guard_reach env centers with
            | Some r ->
                max_reach := max !max_reach r;
                go path ((x, r) :: env) rest
            | None -> offend path kind x body)
        | None -> offend path kind x body)
    | None -> offend path kind x body
  and is_bounded_dist env f =
    (* a raw dist_le used as a subformula (not a quantifier guard) is
       local as long as one endpoint has bounded reach *)
    match as_dist_le f with
    | Some (a, b, _) ->
        List.mem_assoc a env || List.mem_assoc b env
    | None -> false
  in
  go [] reach_env0 f;
  { max_reach = !max_reach; offenders = List.rev !offenders }

let inferred_radius ~around f =
  let { max_reach; offenders } = locality_walk ~around f in
  if offenders = [] then Some max_reach else None

let gaifman_fallback rank =
  if rank > 21 then
    Printf.sprintf
      "r(%d) = (7^%d - 1)/2, astronomically large (overflows 63 bits)" rank
      rank
  else Printf.sprintf "r(%d) = %d" rank (Gaifman.radius rank)

let locality_pass ~radius ~around f =
  let { max_reach; offenders } = locality_walk ~around f in
  let unguarded =
    List.map
      (fun (path, binder, rank) ->
        Diagnostic.make ~path ~rule:"non-local"
          (Printf.sprintf
             "%s is not relativised to a neighbourhood of the interface \
              variables [%s]; Gaifman's theorem guarantees locality only \
              at radius %s for its quantifier rank %d"
             binder
             (String.concat "; " around)
             (gaifman_fallback rank) rank))
      offenders
  in
  if unguarded <> [] then unguarded
  else if max_reach > radius then
    [
      Diagnostic.make ~rule:"non-local"
        (Printf.sprintf
           "formula is syntactically %d-local, over the declared locality \
            radius budget r = %d"
           max_reach radius);
    ]
  else []

(* ------------------------------------------------------------------ *)
(* Simplification hints                                                *)
(* ------------------------------------------------------------------ *)

let hints_pass f =
  let junction kind path acc fs =
    let acc =
      let rec dup i seen acc = function
        | [] -> acc
        | g :: rest ->
            if List.exists (Formula.equal g) seen then
              dup (i + 1) seen
                (Diagnostic.make
                   ~path:(at (step_junct kind i :: path))
                   ~rule:"duplicate-junct"
                   (Printf.sprintf
                      "%s repeats the subformula %s; drop the duplicate" kind
                      (Formula.to_string g))
                :: acc)
                rest
            else dup (i + 1) (g :: seen) acc rest
      in
      dup 0 [] acc fs
    in
    let absorbing = if kind = "and" then Formula.False else Formula.True in
    if List.exists (Formula.equal absorbing) fs then
      Diagnostic.make ~path:(at path) ~rule:"constant-junct"
        (Printf.sprintf "%s contains %s, so the whole junction is %s" kind
           (Formula.to_string absorbing)
           (Formula.to_string absorbing))
      :: acc
    else acc
  in
  let rec go path acc f =
    match f with
    | Formula.True | Formula.False -> acc
    | Formula.Atom (Formula.Eq (x, y)) when x = y ->
        Diagnostic.make ~path:(at path) ~rule:"trivial-atom"
          (Printf.sprintf "%s = %s is always true" x y)
        :: acc
    | Formula.Atom (Formula.Edge (x, y)) when x = y ->
        Diagnostic.make ~path:(at path) ~rule:"trivial-atom"
          (Printf.sprintf "E(%s, %s) is always false on loop-free graphs" x y)
        :: acc
    | Formula.Atom _ -> acc
    | Formula.Not (Formula.Not g) ->
        go ("~" :: "~" :: path)
          (Diagnostic.make ~path:(at path) ~rule:"double-negation"
             "double negation; ~~phi is phi"
          :: acc)
          g
    | Formula.Not g -> go ("~" :: path) acc g
    | Formula.And fs ->
        let acc = junction "and" path acc fs in
        List.fold_left
          (fun (i, acc) g ->
            (i + 1, go (step_junct "and" i :: path) acc g))
          (0, acc) fs
        |> snd
    | Formula.Or fs ->
        let acc = junction "or" path acc fs in
        List.fold_left
          (fun (i, acc) g -> (i + 1, go (step_junct "or" i :: path) acc g))
          (0, acc) fs
        |> snd
    | Formula.Implies (a, b) ->
        go ("->rhs" :: path) (go ("->lhs" :: path) acc a) b
    | Formula.Iff (a, b) ->
        go ("<->rhs" :: path) (go ("<->lhs" :: path) acc a) b
    | Formula.Exists (x, g) -> go (step_binder "exists" x :: path) acc g
    | Formula.Forall (x, g) -> go (step_binder "forall" x :: path) acc g
    | Formula.CountGe (t, x, g) ->
        go (step_binder (Printf.sprintf "atleast %d" t) x :: path) acc g
  in
  List.rev (go [] [] f)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let check ?vocab ?allowed_free ?(budget = no_budget) f =
  let sig_ds =
    match vocab with None -> [] | Some v -> signature_pass v f
  in
  let scope_ds = scope_pass ?allowed_free f in
  let rank_ds =
    match budget.max_rank with
    | None -> []
    | Some q -> rank_pass ~max_rank:q f
  in
  let free_ds =
    match budget.max_free with
    | None -> []
    | Some k -> free_pass ~max_free:k f
  in
  let local_ds =
    match budget.radius with
    | None -> []
    | Some r ->
        let around =
          match allowed_free with
          | Some l -> l
          | None -> Formula.free_vars f
        in
        locality_pass ~radius:r ~around f
  in
  Diagnostic.sort (sig_ds @ scope_ds @ rank_ds @ free_ds @ local_ds @ hints_pass f)

(* ------------------------------------------------------------------ *)
(* Cost metadata (informational)                                       *)
(* ------------------------------------------------------------------ *)

type cost = {
  rank : int;
  free_count : int;
  size : int;
  locality_radius : int option;
  hintikka_log2 : Cost_model.Log2.t;
  ramsey_r233_log2 : Cost_model.Log2.t;
}

let colour_names f =
  let acc = ref VSet.empty in
  let rec go (f : Formula.t) =
    match f with
    | True | False -> ()
    | Atom (Color (c, _)) -> acc := VSet.add c !acc
    | Atom _ -> ()
    | Not f -> go f
    | And fs | Or fs -> List.iter go fs
    | Implies (a, b) | Iff (a, b) -> go a; go b
    | Exists (_, f) | Forall (_, f) | CountGe (_, _, f) -> go f
  in
  go f;
  VSet.elements !acc

(* The tower bounds live in [Cost_model]; both saturate to an explicit
   [Saturated] (serialised as the string "saturated") rather than to a
   float infinity, which [Obs.Json] could only encode as [null] and
   never parse back. *)
let hintikka_log2 = Cost_model.hintikka_log2
let ramsey_r233_log2 ~s_log2 = Cost_model.ramsey_r233_log2 ~s_log2

let cost ?vocab phi =
  let rank = Formula.quantifier_rank phi in
  let free = Formula.free_vars phi in
  let colors =
    match vocab with
    | Some v -> List.length (List.filter (fun n -> Vocab.arity v n = Some 1) (Vocab.names v))
    | None -> List.length (colour_names phi)
  in
  let locality_radius =
    match inferred_radius ~around:free phi with
    | Some r -> Some r
    | None -> ( try Some (Gaifman.radius rank) with Invalid_argument _ -> None)
  in
  {
    rank;
    free_count = List.length free;
    size = Formula.size phi;
    locality_radius;
    hintikka_log2 =
      hintikka_log2 ~colors ~q:rank ~k:(max 1 (List.length free));
    ramsey_r233_log2 =
      ramsey_r233_log2
        ~s_log2:(hintikka_log2 ~colors ~q:rank ~k:(max 1 (List.length free)));
  }

let cost_json c =
  Obs.Json.Obj
    [
      ("quantifier_rank", Obs.Json.Int c.rank);
      ("free_variables", Obs.Json.Int c.free_count);
      ("size", Obs.Json.Int c.size);
      ( "locality_radius",
        match c.locality_radius with
        | Some r -> Obs.Json.Int r
        | None -> Obs.Json.Null );
      (* saturated bounds encode as the string "saturated", so the
         round-trip through [Obs.Json] is lossless *)
      ("hintikka_log2", Cost_model.Log2.to_json c.hintikka_log2);
      ("ramsey_r233_log2", Cost_model.Log2.to_json c.ramsey_r233_log2);
    ]

let cost_of_json j =
  let ( let* ) = Result.bind in
  let field name =
    match Obs.Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "cost_of_json: missing field %S" name)
  in
  let int_field name =
    let* v = field name in
    match Obs.Json.to_int_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "cost_of_json: field %S is not an int" name)
  in
  let* rank = int_field "quantifier_rank" in
  let* free_count = int_field "free_variables" in
  let* size = int_field "size" in
  let* locality_radius =
    let* v = field "locality_radius" in
    match v with
    | Obs.Json.Null -> Ok None
    | v -> (
        match Obs.Json.to_int_opt v with
        | Some r -> Ok (Some r)
        | None -> Error "cost_of_json: field \"locality_radius\" is not an int")
  in
  let* hintikka_log2 = Result.bind (field "hintikka_log2") Cost_model.Log2.of_json in
  let* ramsey_r233_log2 =
    Result.bind (field "ramsey_r233_log2") Cost_model.Log2.of_json
  in
  Ok { rank; free_count; size; locality_radius; hintikka_log2; ramsey_r233_log2 }

let cost_diagnostic ?vocab phi =
  Diagnostic.make ~rule:"cost-metadata"
    (Obs.Json.to_string (cost_json (cost ?vocab phi)))
