(** Static analysis of first-order formulas ({!Fo.Formula.t}).

    [check] runs every analysis whose inputs were supplied and returns
    structured {!Diagnostic.t}s instead of raising: omit [vocab] to skip
    signature conformance, [allowed_free] to admit any free variable,
    and the budget fields to skip budget verification.  See
    {!Diagnostic} for the rule catalogue. *)

type budget = {
  max_rank : int option;  (** quantifier-rank budget [q] *)
  max_free : int option;  (** free-variable budget, usually [k + ℓ] *)
  radius : int option;  (** demanded syntactic locality radius [r] *)
}

val no_budget : budget

val budget :
  ?max_rank:int -> ?max_free:int -> ?radius:int -> unit -> budget

val check :
  ?vocab:Vocab.t ->
  ?allowed_free:Fo.Formula.var list ->
  ?budget:budget ->
  Fo.Formula.t ->
  Diagnostic.t list
(** All diagnostics, in severity order ({!Diagnostic.sort}). *)

val inferred_radius :
  around:Fo.Formula.var list -> Fo.Formula.t -> int option
(** The minimal [r] such that the formula is {e syntactically} [r]-local
    around the given interface variables: every quantifier is guarded by
    a distance formula in the shape produced by
    {!Fo.Localize.relativize}, and chained guards are accumulated
    (a variable within distance [a] of a variable within distance [b] of
    the interface contributes [a + b]).  [None] if some quantifier is
    unguarded; [Some 0] for quantifier-free formulas. *)

val as_dist_le : Fo.Formula.t -> (Fo.Formula.var * Fo.Formula.var * int) option
(** Recognise the recursive-doubling distance formulas of
    {!Fo.Localize.dist_le}: [as_dist_le (dist_le ~d x y) = Some (x, y, d)].
    Exposed for the property tests. *)

(** {1 Cost metadata}

    Informational per-formula cost estimates, reusing the obs JSON
    types so [lint --format json --cost] diagnostics stay
    machine-readable. *)

type cost = {
  rank : int;  (** quantifier rank *)
  free_count : int;  (** number of free variables *)
  size : int;  (** AST size, {!Fo.Formula.size} *)
  locality_radius : int option;
      (** syntactic radius when every quantifier is guarded
          ({!inferred_radius}), else the Gaifman bound [(7^q - 1)/2];
          [None] when even that overflows ([q > 21]) *)
  hintikka_log2 : Cost_model.Log2.t;
      (** log2 upper bound on the rank-[q] Hintikka type table for this
          formula's interface ({!Cost_model.hintikka_log2});
          [Saturated] — never a clamped finite value — once the tower
          of exponents saturates *)
  ramsey_r233_log2 : Cost_model.Log2.t;
      (** log2 of the Ramsey bound [R(2, s, 3) <= s!·e + 1] the Lemma 7
          reduction needs, with [s = 2^hintikka_log2] oracle-answer
          colours (Stirling estimate); [Saturated] as soon as any
          factor saturates, mirroring [Folearn.Ramsey.Saturated]
          instead of wrapping *)
}

val cost : ?vocab:Vocab.t -> Fo.Formula.t -> cost
(** Colour count comes from [vocab] when given, else from the colour
    atoms appearing in the formula. *)

val cost_json : cost -> Obs.Json.t
(** Lossless: saturated bounds encode as the string ["saturated"], so
    [cost_of_json (cost_json c) = Ok c] for every [c]. *)

val cost_of_json : Obs.Json.t -> (cost, string) result
(** Inverse of {!cost_json}. *)

val cost_diagnostic : ?vocab:Vocab.t -> Fo.Formula.t -> Diagnostic.t
(** A [cost-metadata] hint whose message is {!cost_json} serialised. *)
