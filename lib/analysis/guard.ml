let require ~what ds =
  match Diagnostic.errors ds with
  | [] -> ()
  | errs ->
      invalid_arg (Printf.sprintf "%s:\n%s" what (Diagnostic.render_list errs))

let param name v lo =
  if v >= lo then []
  else
    [
      Diagnostic.make ~rule:"invalid-parameter"
        (Printf.sprintf "%s = %d, but %s >= %d is required" name v name lo);
    ]

let budgets ?ell ?q ?tmax ?radius ~k () =
  param "k" k 1
  @ (match ell with Some l -> param "ell" l 0 | None -> [])
  @ (match q with Some q -> param "q" q 0 | None -> [])
  @ (match tmax with Some t -> param "tmax" t 1 | None -> [])
  @ match radius with Some r -> param "r" r 0 | None -> []

let sample_arity ~k examples =
  List.filter (fun v -> Array.length v <> k) examples
  |> List.map (fun v ->
         Diagnostic.make ~rule:"arity-mismatch"
           (Printf.sprintf
              "example tuple (%s) has arity %d, the learner expects k = %d"
              (String.concat ", "
                 (Array.to_list (Array.map string_of_int v)))
              (Array.length v) k))

let xyvars ~k ~ell =
  List.init k (fun i -> Printf.sprintf "x%d" (i + 1))
  @ List.init ell (fun i -> Printf.sprintf "y%d" (i + 1))

(* The runtime guards deliberately skip the vocabulary pass: the
   evaluator is open-world about colours ([Graph.has_color] is [false]
   for undeclared names), so a formula mentioning a colour the graph
   lacks is well-defined.  Strict vocabulary conformance is the lint
   CLI's job. *)

let hypothesis_formula ~k ~ell ?q f =
  Fo_check.check
    ~allowed_free:(xyvars ~k ~ell)
    ~budget:(Fo_check.budget ?max_rank:q ~max_free:(k + ell) ())
    f

let sentence f = Fo_check.check ~allowed_free:[] f
