(** Precondition guards for library entry points.

    The ERM solvers, {!Hypothesis.of_formula}, the sample labellers and
    the Theorem 1 reduction all consume formulas and parameter budgets;
    [Guard] lets them reject ill-formed inputs {e at the boundary} with
    the structured diagnostics of this library (rendered into the
    [Invalid_argument] payload) instead of failing deep inside type
    computation with a bare stack trace. *)

val require : what:string -> Diagnostic.t list -> unit
(** [require ~what ds]: if [ds] contains any [Error]-severity diagnostic,
    @raise Invalid_argument with [what] and every error rendered one per
    line.  Warnings and hints are ignored. *)

val budgets :
  ?ell:int -> ?q:int -> ?tmax:int -> ?radius:int -> k:int -> unit ->
  Diagnostic.t list
(** [invalid-parameter] diagnostics for out-of-range learning budgets:
    [k >= 1], [ell >= 0], [q >= 0], [tmax >= 1], [radius >= 0]. *)

val sample_arity : k:int -> int array list -> Diagnostic.t list
(** [arity-mismatch] diagnostics for example tuples whose arity differs
    from the declared [k] (one diagnostic per offending position). *)

val xyvars : k:int -> ell:int -> Fo.Formula.var list
(** The interface variables [x1..xk, y1..yℓ] of the class
    [H_{k,ℓ,q}]. *)

val hypothesis_formula :
  k:int -> ell:int -> ?q:int -> Fo.Formula.t -> Diagnostic.t list
(** Static check of a hypothesis formula [φ(x̄; ȳ)] against the
    interface variables {!xyvars} and (when given) the rank budget [q].
    Vocabulary conformance is deliberately {e not} checked here: the
    evaluator is open-world about colours ([Cgraph.Graph.has_color] is
    [false] for undeclared names), so undeclared colours are
    well-defined at runtime.  Use {!Fo_check.check} with a {!Vocab.t}
    for strict conformance (what [folearn_cli lint] does). *)

val sentence : Fo.Formula.t -> Diagnostic.t list
(** Check of a model-checking input: no free variables (same open-world
    caveat as {!hypothesis_formula}). *)
