(* Both MSO ASTs (words and binary trees) are lowered to one skeleton so
   every rule is implemented once. *)

type use = UPos | USet

let use_name = function UPos -> "position" | USet -> "set"

type node =
  | KConst of bool
  | KAtom of {
      rendered : string;
      vars : (string * use) list;
      letter : int option;  (* letter/label index, for unknown-letter *)
    }
  | KNot of node
  | KJunct of bool * node list  (* true = conjunction *)
  | KQuant of bool * use * string * node  (* existential?, kind, var, body *)

let rec of_word (f : Mso.Formula.t) =
  match f with
  | Mso.Formula.MTrue -> KConst true
  | Mso.Formula.MFalse -> KConst false
  | Mso.Formula.Letter (a, x) ->
      KAtom
        {
          rendered = Printf.sprintf "letter_%d(%s)" a x;
          vars = [ (x, UPos) ];
          letter = Some a;
        }
  | Mso.Formula.Less (x, y) ->
      KAtom
        {
          rendered = Printf.sprintf "%s < %s" x y;
          vars = [ (x, UPos); (y, UPos) ];
          letter = None;
        }
  | Mso.Formula.Succ (x, y) ->
      KAtom
        {
          rendered = Printf.sprintf "succ(%s, %s)" x y;
          vars = [ (x, UPos); (y, UPos) ];
          letter = None;
        }
  | Mso.Formula.EqPos (x, y) ->
      KAtom
        {
          rendered = Printf.sprintf "%s = %s" x y;
          vars = [ (x, UPos); (y, UPos) ];
          letter = None;
        }
  | Mso.Formula.Mem (x, s) ->
      KAtom
        {
          rendered = Printf.sprintf "%s in %s" x s;
          vars = [ (x, UPos); (s, USet) ];
          letter = None;
        }
  | Mso.Formula.Not g -> KNot (of_word g)
  | Mso.Formula.And gs -> KJunct (true, List.map of_word gs)
  | Mso.Formula.Or gs -> KJunct (false, List.map of_word gs)
  | Mso.Formula.ExistsPos (x, g) -> KQuant (true, UPos, x, of_word g)
  | Mso.Formula.ForallPos (x, g) -> KQuant (false, UPos, x, of_word g)
  | Mso.Formula.ExistsSet (x, g) -> KQuant (true, USet, x, of_word g)
  | Mso.Formula.ForallSet (x, g) -> KQuant (false, USet, x, of_word g)

let rec of_tree (f : Mso.Tree_formula.t) =
  match f with
  | Mso.Tree_formula.TTrue -> KConst true
  | Mso.Tree_formula.TFalse -> KConst false
  | Mso.Tree_formula.Label (a, x) ->
      KAtom
        {
          rendered = Printf.sprintf "label_%d(%s)" a x;
          vars = [ (x, UPos) ];
          letter = Some a;
        }
  | Mso.Tree_formula.Child1 (x, y) ->
      KAtom
        {
          rendered = Printf.sprintf "child1(%s, %s)" x y;
          vars = [ (x, UPos); (y, UPos) ];
          letter = None;
        }
  | Mso.Tree_formula.Child2 (x, y) ->
      KAtom
        {
          rendered = Printf.sprintf "child2(%s, %s)" x y;
          vars = [ (x, UPos); (y, UPos) ];
          letter = None;
        }
  | Mso.Tree_formula.EqPos (x, y) ->
      KAtom
        {
          rendered = Printf.sprintf "%s = %s" x y;
          vars = [ (x, UPos); (y, UPos) ];
          letter = None;
        }
  | Mso.Tree_formula.Mem (x, s) ->
      KAtom
        {
          rendered = Printf.sprintf "%s in %s" x s;
          vars = [ (x, UPos); (s, USet) ];
          letter = None;
        }
  | Mso.Tree_formula.Not g -> KNot (of_tree g)
  | Mso.Tree_formula.And gs -> KJunct (true, List.map of_tree gs)
  | Mso.Tree_formula.Or gs -> KJunct (false, List.map of_tree gs)
  | Mso.Tree_formula.ExistsPos (x, g) -> KQuant (true, UPos, x, of_tree g)
  | Mso.Tree_formula.ForallPos (x, g) -> KQuant (false, UPos, x, of_tree g)
  | Mso.Tree_formula.ExistsSet (x, g) -> KQuant (true, USet, x, of_tree g)
  | Mso.Tree_formula.ForallSet (x, g) -> KQuant (false, USet, x, of_tree g)

(* ------------------------------------------------------------------ *)

module VSet = Set.Make (String)
module VMap = Map.Make (String)

let binder_step existential kind x =
  Printf.sprintf "%s%s %s"
    (if existential then "exists" else "forall")
    (match kind with UPos -> "" | USet -> "set")
    x

let junct_step conj i =
  Printf.sprintf "%s[%d]" (if conj then "and" else "or") (i + 1)

let rec rank = function
  | KConst _ | KAtom _ -> 0
  | KNot g -> rank g
  | KJunct (_, gs) -> List.fold_left (fun acc g -> max acc (rank g)) 0 gs
  | KQuant (_, _, _, g) -> 1 + rank g

let rec free_set = function
  | KConst _ -> VSet.empty
  | KAtom { vars; _ } -> VSet.of_list (List.map fst vars)
  | KNot g -> free_set g
  | KJunct (_, gs) ->
      List.fold_left (fun acc g -> VSet.union acc (free_set g)) VSet.empty gs
  | KQuant (_, _, x, g) -> VSet.remove x (free_set g)

let rec equal_node a b =
  match (a, b) with
  | KConst x, KConst y -> x = y
  | KAtom x, KAtom y -> x.rendered = y.rendered
  | KNot x, KNot y -> equal_node x y
  | KJunct (cx, xs), KJunct (cy, ys) ->
      cx = cy
      && List.length xs = List.length ys
      && List.for_all2 equal_node xs ys
  | KQuant (ex, kx, x, gx), KQuant (ey, ky, y, gy) ->
      ex = ey && kx = ky && x = y && equal_node gx gy
  | _ -> false

let check_node ?sigma ?allowed_free ?max_rank node =
  let diags = ref [] in
  let emit ~path ~rule msg =
    diags := Diagnostic.make ~path:(List.rev path) ~rule msg :: !diags
  in
  let total_rank = rank node in
  (* kinds: the kind a variable was first seen with (bound or free),
     per scope for bound variables, global for free ones *)
  let free_kinds = ref VMap.empty in
  let reported_unbound = ref VSet.empty in
  let reported_clash = ref VSet.empty in
  let clash path x k1 k2 =
    if not (VSet.mem x !reported_clash) then begin
      reported_clash := VSet.add x !reported_clash;
      emit ~path ~rule:"kind-clash"
        (Printf.sprintf
           "variable %S is used both as a %s variable and as a %s variable"
           x (use_name k1) (use_name k2))
    end
  in
  let use path env (x, k) =
    match VMap.find_opt x env with
    | Some k' -> if k <> k' then clash path x k' k
    | None -> (
        (match VMap.find_opt x !free_kinds with
        | Some k' -> if k <> k' then clash path x k' k
        | None -> free_kinds := VMap.add x k !free_kinds);
        match allowed_free with
        | Some allowed
          when (not (List.mem x allowed))
               && not (VSet.mem x !reported_unbound) ->
            reported_unbound := VSet.add x !reported_unbound;
            emit ~path ~rule:"unbound-variable"
              (Printf.sprintf
                 "variable %S occurs free but is not among the interface \
                  variables [%s]"
                 x
                 (String.concat "; " allowed))
        | _ -> ())
  in
  let rec go path env remaining node =
    match node with
    | KConst _ -> ()
    | KAtom { rendered; vars; letter } ->
        List.iter (use path env) vars;
        (match (letter, sigma) with
        | Some a, Some s when a < 0 || a >= s ->
            emit ~path ~rule:"unknown-letter"
              (Printf.sprintf
                 "atom %s uses letter index %d outside the declared \
                  alphabet 0..%d"
                 rendered a (s - 1))
        | _ -> ())
    | KNot (KNot g) ->
        emit ~path ~rule:"double-negation" "double negation; ~~phi is phi";
        go ("~" :: "~" :: path) env remaining g
    | KNot g -> go ("~" :: path) env remaining g
    | KJunct (conj, gs) ->
        let rec dup i seen = function
          | [] -> ()
          | g :: rest ->
              if List.exists (equal_node g) seen then
                emit
                  ~path:(junct_step conj i :: path)
                  ~rule:"duplicate-junct"
                  (Printf.sprintf "%s repeats a subformula; drop the duplicate"
                     (if conj then "conjunction" else "disjunction"))
              else ();
              dup (i + 1) (g :: seen) rest
        in
        dup 0 [] gs;
        if List.exists (fun g -> g = KConst (not conj)) gs then
          emit ~path ~rule:"constant-junct"
            (Printf.sprintf "%s contains %s, so the whole junction is %s"
               (if conj then "conjunction" else "disjunction")
               (if conj then "false" else "true")
               (if conj then "false" else "true"));
        List.iteri
          (fun i g -> go (junct_step conj i :: path) env remaining g)
          gs
    | KQuant (existential, kind, x, body) ->
        let path = binder_step existential kind x :: path in
        (match max_rank with
        | Some _ when remaining = 0 ->
            emit ~path ~rule:"rank-over-budget"
              (Printf.sprintf
                 "this quantifier exceeds the rank budget: the formula has \
                  quantifier rank %d, the declared budget is %d"
                 total_rank
                 (Option.get max_rank))
        | _ ->
            let shadows_bound = VMap.mem x env in
            let shadows_free =
              match allowed_free with
              | Some l -> List.mem x l
              | None -> false
            in
            if shadows_bound || shadows_free then
              emit ~path ~rule:"shadowed-binder"
                (Printf.sprintf "binder re-binds %s %S already in scope"
                   (if shadows_bound then "the bound variable"
                    else "the interface variable")
                   x);
            if not (VSet.mem x (free_set body)) then
              emit ~path ~rule:"vacuous-quantifier"
                (Printf.sprintf
                   "quantifier binds %s variable %S that does not occur \
                    free in its body"
                   (use_name kind) x);
            go path (VMap.add x kind env) (remaining - 1) body)
  in
  let remaining = match max_rank with Some q -> q | None -> max_int in
  go [] VMap.empty remaining node;
  Diagnostic.sort (List.rev !diags)

let check_word ?sigma ?allowed_free ?max_rank f =
  check_node ?sigma ?allowed_free ?max_rank (of_word f)

let check_tree ?sigma ?allowed_free ?max_rank f =
  check_node ?sigma ?allowed_free ?max_rank (of_tree f)

(* ------------------------------------------------------------------ *)
(* Cost metadata                                                       *)
(* ------------------------------------------------------------------ *)

type cost = {
  rank : int;
  set_rank : int;
  size : int;
  states_log2 : Cost_model.Log2.t;
}

let rec set_rank = function
  | KConst _ | KAtom _ -> 0
  | KNot g -> set_rank g
  | KJunct (_, gs) -> List.fold_left (fun acc g -> max acc (set_rank g)) 0 gs
  | KQuant (_, kind, _, g) ->
      (match kind with USet -> 1 | UPos -> 0) + set_rank g

let rec skeleton_size = function
  | KConst _ | KAtom _ -> 1
  | KNot g -> 1 + skeleton_size g
  | KJunct (_, gs) -> List.fold_left (fun acc g -> acc + skeleton_size g) 1 gs
  | KQuant (_, _, _, g) -> 1 + skeleton_size g

(* log2 of the automaton-state bound of the standard MSO-to-automaton
   construction (Buchi-Elgot-Trakhtenbrot): conjunction/disjunction
   take a product, projection (an existential quantifier) keeps the
   NFA, and every complementation — a negation, or the inner negation
   of a universal quantifier — determinises via the subset
   construction, exponentiating the state count.  The resulting tower
   in the quantifier-alternation depth is the non-elementary bound;
   like [Cost_model.hintikka_log2] it saturates explicitly. *)
let states_log2 ~sigma node =
  let open Cost_model.Log2 in
  let atom_log2 = Float.log2 (float_of_int (max 2 sigma) +. 2.0) in
  let exp2 = function
    | Saturated -> Saturated
    | Finite l -> if l > 62.0 then Saturated else Finite (Float.exp2 l)
  in
  let add a b =
    match (a, b) with
    | Saturated, _ | _, Saturated -> Saturated
    | Finite a, Finite b -> of_float (a +. b)
  in
  let rec go = function
    | KConst _ -> Finite 1.0
    | KAtom _ -> Finite atom_log2
    | KNot g -> exp2 (go g)
    | KJunct (_, gs) -> List.fold_left (fun acc g -> add acc (go g)) (Finite 0.0) gs
    | KQuant (existential, _, _, g) ->
        if existential then go g else exp2 (go g)
  in
  go node

let cost_node ?(sigma = 2) node =
  {
    rank = rank node;
    set_rank = set_rank node;
    size = skeleton_size node;
    states_log2 = states_log2 ~sigma node;
  }

let cost_word ?sigma f = cost_node ?sigma (of_word f)
let cost_tree ?sigma f = cost_node ?sigma (of_tree f)

let cost_json c =
  Obs.Json.Obj
    [
      ("quantifier_rank", Obs.Json.Int c.rank);
      ("set_quantifier_rank", Obs.Json.Int c.set_rank);
      ("size", Obs.Json.Int c.size);
      ("states_log2", Cost_model.Log2.to_json c.states_log2);
    ]

let cost_of_json j =
  let ( let* ) = Result.bind in
  let int_field name =
    match Option.bind (Obs.Json.member name j) Obs.Json.to_int_opt with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "cost_of_json: missing int field %S" name)
  in
  let* rank = int_field "quantifier_rank" in
  let* set_rank = int_field "set_quantifier_rank" in
  let* size = int_field "size" in
  let* states_log2 =
    match Obs.Json.member "states_log2" j with
    | Some v -> Cost_model.Log2.of_json v
    | None -> Error "cost_of_json: missing field \"states_log2\""
  in
  Ok { rank; set_rank; size; states_log2 }

let cost_diagnostic_word ?sigma f =
  Diagnostic.make ~rule:"cost-metadata"
    (Obs.Json.to_string (cost_json (cost_word ?sigma f)))

let cost_diagnostic_tree ?sigma f =
  Diagnostic.make ~rule:"cost-metadata"
    (Obs.Json.to_string (cost_json (cost_tree ?sigma f)))
