(** Static analysis of MSO formulas — words ({!Mso.Formula.t}) and trees
    ({!Mso.Tree_formula.t}) — producing the same {!Diagnostic.t}s as
    {!Fo_check}, so the CLI and the learners report uniformly across the
    FO and MSO pipelines.

    Both ASTs are lowered to a common skeleton and share one checker.
    Rules: [kind-clash], [unknown-letter] (when [sigma] is given),
    [unbound-variable] (when [allowed_free] is given), [shadowed-binder],
    [vacuous-quantifier], [rank-over-budget] (position {e and} set
    quantifiers both count), and the simplification hints
    [double-negation], [duplicate-junct], [constant-junct]. *)

val check_word :
  ?sigma:int ->
  ?allowed_free:string list ->
  ?max_rank:int ->
  Mso.Formula.t ->
  Diagnostic.t list

val check_tree :
  ?sigma:int ->
  ?allowed_free:string list ->
  ?max_rank:int ->
  Mso.Tree_formula.t ->
  Diagnostic.t list
