(** Static analysis of MSO formulas — words ({!Mso.Formula.t}) and trees
    ({!Mso.Tree_formula.t}) — producing the same {!Diagnostic.t}s as
    {!Fo_check}, so the CLI and the learners report uniformly across the
    FO and MSO pipelines.

    Both ASTs are lowered to a common skeleton and share one checker.
    Rules: [kind-clash], [unknown-letter] (when [sigma] is given),
    [unbound-variable] (when [allowed_free] is given), [shadowed-binder],
    [vacuous-quantifier], [rank-over-budget] (position {e and} set
    quantifiers both count), and the simplification hints
    [double-negation], [duplicate-junct], [constant-junct]. *)

val check_word :
  ?sigma:int ->
  ?allowed_free:string list ->
  ?max_rank:int ->
  Mso.Formula.t ->
  Diagnostic.t list

val check_tree :
  ?sigma:int ->
  ?allowed_free:string list ->
  ?max_rank:int ->
  Mso.Tree_formula.t ->
  Diagnostic.t list

(** {1 Cost metadata}

    The MSO analogue of {!Fo_check.cost}: informational per-formula
    bounds for the automaton pipeline.  The state bound implements the
    Buchi-Elgot-Trakhtenbrot translation — products at junctions,
    projection at existential quantifiers, and a subset-construction
    exponentiation at every complementation — whose tower in the
    alternation depth is the classic non-elementary bound.  Saturated
    towers report {!Cost_model.Log2.Saturated} explicitly (serialised
    as the string ["saturated"]), never a clamped finite value. *)

type cost = {
  rank : int;  (** total quantifier rank (position and set) *)
  set_rank : int;  (** set quantifiers only *)
  size : int;  (** skeleton node count *)
  states_log2 : Cost_model.Log2.t;
      (** log2 of the automaton-state bound for the given alphabet *)
}

val cost_word : ?sigma:int -> Mso.Formula.t -> cost
(** [sigma] defaults to [2]. *)

val cost_tree : ?sigma:int -> Mso.Tree_formula.t -> cost

val cost_json : cost -> Obs.Json.t
(** Lossless: [cost_of_json (cost_json c) = Ok c]. *)

val cost_of_json : Obs.Json.t -> (cost, string) result

val cost_diagnostic_word : ?sigma:int -> Mso.Formula.t -> Diagnostic.t
(** A [cost-metadata] hint whose message is {!cost_json} serialised. *)

val cost_diagnostic_tree : ?sigma:int -> Mso.Tree_formula.t -> Diagnostic.t
