module C = Cost_model.Count
module Env = Cost_model.Env
module Json = Obs.Json

type solver = Brute | Local | Nd | Counting

let solver_name = function
  | Brute -> "brute"
  | Local -> "local"
  | Nd -> "nd"
  | Counting -> "counting"

let solver_of_name = function
  | "brute" -> Some Brute
  | "local" -> Some Local
  | "nd" -> Some Nd
  | "counting" -> Some Counting
  | _ -> None

type input = {
  g : Cgraph.Graph.t;
  examples : Cgraph.Graph.Tuple.t list;
  k : int;
  ell : int;
  q : int;
  radius : int option;
  tmax : int;
}

let input ?radius ?(tmax = 2) g ~k ~ell ~q examples =
  { g; examples; k; ell; q; radius; tmax }

type t = {
  solver : solver;
  stage_q : int;
  fuel_first : Env.t;
  fuel_total : Env.t;
  table_first : Env.t;
  table_total : Env.t;
  ball_first : Env.t;
  ball_total : Env.t;
  hypotheses : Env.t;
  type_evals : Env.t;
  exact : bool;
  notes : string list;
}

(* ------------------------------------------------------------------ *)
(* Small Count helpers                                                 *)
(* ------------------------------------------------------------------ *)

let ( ++ ) = C.add
let ( ** ) = C.mul
let ci = C.of_int

(* one less, clamped at zero *)
let pred = function
  | C.Saturated -> C.Saturated
  | C.Finite n when n > 0 -> C.Finite (n - 1)
  | C.Finite _ -> C.zero

let strictly_less a b = not (C.leq b a)
let cmax a b = if C.leq a b then b else a

let distinct_roots examples = List.sort_uniq compare examples

let entries_of examples =
  List.sort_uniq compare (List.concat_map Array.to_list examples)

(* ------------------------------------------------------------------ *)
(* Per-solver envelopes                                                *)
(* ------------------------------------------------------------------ *)

(* Erm_brute, sequential model (sound for any job count, see .mli):
   per candidate 1 Solver_loop tick + d fresh type computations of
   T_q(n) memo rows each; all memo keys are distinct, so the totals are
   exact multiples. *)
let analyze_brute ?stage_q i =
  let q = Option.value stage_q ~default:i.q in
  let n = Cgraph.Graph.order i.g in
  let d = List.length (distinct_roots i.examples) in
  let tqn = Cost_model.type_table_rows ~n ~q in
  let c = Cost_model.candidate_count ~n ~ell:i.ell in
  let rows_per_cand = ci d ** tqn in
  let per_cand = C.one ++ rows_per_cand in
  let none = Env.exact C.zero in
  if c = C.zero then
    (* empty candidate space: the sweep completes having spent nothing *)
    {
      solver = Brute; stage_q = q;
      fuel_first = none; fuel_total = none;
      table_first = none; table_total = none;
      ball_first = none; ball_total = none;
      hypotheses = none; type_evals = none;
      exact = true;
      notes = [ "empty candidate space (order 0 graph): constant fallback" ];
    }
  else
    {
      solver = Brute;
      stage_q = q;
      fuel_first = Env.exact per_cand;
      fuel_total = Env.exact (c ** per_cand);
      table_first = Env.exact rows_per_cand;
      table_total = Env.exact (c ** rows_per_cand);
      ball_first = none;
      ball_total = none;
      hypotheses = Env.exact c;
      type_evals = Env.exact (c ** rows_per_cand);
      exact = true;
      notes =
        [
          "sequential model; with --jobs > 1 the totals are unchanged and \
           per-context table peaks only shrink";
        ];
    }

(* Erm_counting: one Solver_loop tick per candidate, counting-type
   evaluation is guard-free. *)
let analyze_counting i =
  let n = Cgraph.Graph.order i.g in
  let c = Cost_model.candidate_count ~n ~ell:i.ell in
  let none = Env.exact C.zero in
  {
    solver = Counting;
    stage_q = i.q;
    fuel_first = Env.exact (if c = C.zero then C.zero else C.one);
    fuel_total = Env.exact c;
    table_first = none;
    table_total = none;
    ball_first = none;
    ball_total = none;
    hypotheses = Env.exact c;
    type_evals = none;
    exact = true;
    notes = [ "counting-type evaluation (Ctypes.ctp) performs no guard ticks" ];
  }

let saturated_plan solver stage_q ~notes =
  let sat = Env.exact C.saturated in
  {
    solver; stage_q;
    fuel_first = sat; fuel_total = sat;
    table_first = sat; table_total = sat;
    ball_first = sat; ball_total = sat;
    hypotheses = sat; type_evals = sat;
    exact = false; notes;
  }

(* Erm_local, sequential model.  The first candidate (empty parameter
   tuple, enumerated first) is costed exactly from per-root structure
   probes; later candidates get a [reach/ball <= touched-neighbourhood]
   upper bound and a trivial lower bound. *)
let analyze_local i =
  let g = i.g in
  let q = i.q in
  let roots = distinct_roots i.examples in
  let d = List.length roots in
  let entries = entries_of i.examples in
  let r_count =
    match i.radius with
    | Some r -> ci r
    | None -> Cost_model.gaifman_radius q
  in
  match r_count with
  | (C.Saturated | C.Finite _) when C.exceeds_int r_count ((max_int - 2) / 3) ->
      saturated_plan Local q
        ~notes:
          [ "locality radius (7^q - 1)/2 overflows: every envelope saturates" ]
  | C.Saturated -> assert false (* covered by the guard above *)
  | C.Finite r ->
      let reach = Cgraph.Stats.reachable_count g entries in
      let pool = Cgraph.Stats.ball_size g ~r:((2 * r) + 1) entries in
      let touched = Cgraph.Stats.ball_size g ~r:((3 * r) + 2) entries in
      let poolbuild = ci ((2 * reach) + 2) in
      let c_loc = Cost_model.local_candidate_count ~pool ~ell:i.ell in
      let miss_of root =
        let vs = Array.to_list root in
        let reach_i = Cgraph.Stats.reachable_count g vs in
        let b_i = Cgraph.Stats.ball_size g ~r vs in
        let rows = Cost_model.type_table_rows ~n:b_i ~q in
        (ci (reach_i + 2) ++ rows, rows)
      in
      let first_misses = List.map miss_of roots in
      let first_cand =
        List.fold_left (fun acc (m, _) -> acc ++ m) C.one first_misses
      in
      let table_first =
        List.fold_left (fun acc (_, rows) -> cmax acc rows) C.zero first_misses
      in
      let tq_touched = Cost_model.type_table_rows ~n:touched ~q in
      let miss_hi = ci (reach + 2) ++ tq_touched in
      let per_cand_hi = C.one ++ (ci d ** miss_hi) in
      let per_cand_lo = ci (1 + (d * (q + 4))) in
      let rest = pred c_loc in
      (* the first candidate's local type tables are built from scratch
         (one fresh table per root, exactly [rows] misses each); later
         candidates re-enter the memo, so they contribute between 0 and
         a full touched-neighbourhood table per root *)
      let evals_first =
        List.fold_left (fun acc (_, rows) -> acc ++ rows) C.zero first_misses
      in
      {
        solver = Local;
        stage_q = q;
        fuel_first = Env.exact (poolbuild ++ first_cand);
        fuel_total =
          Env.make
            ~lo:(poolbuild ++ first_cand ++ (rest ** per_cand_lo))
            ~hi:(poolbuild ++ first_cand ++ (rest ** per_cand_hi));
        table_first = Env.exact table_first;
        table_total = Env.make ~lo:table_first ~hi:tq_touched;
        ball_first = Env.exact (ci touched);
        ball_total = Env.exact (ci touched);
        hypotheses = Env.exact c_loc;
        type_evals =
          Env.make ~lo:evals_first
            ~hi:(evals_first ++ (rest ** ci d ** tq_touched));
        exact = false;
        notes =
          [
            Printf.sprintf
              "radius %d: pool |N_%d| = %d, touched |N_%d| = %d of %d \
               vertices; first candidate costed exactly, later candidates \
               bounded by the touched neighbourhood"
              r ((2 * r) + 1) pool ((3 * r) + 2) touched
              (Cgraph.Graph.order g);
          ];
      }

(* Erm_nd: the non-deterministic splitter-game learner.  Sound but
   deliberately coarse: the lower bounds cover only the mandatory root
   leaf; the upper bounds combine the node budget (1024 branches), the
   adversary-game probes of [estimate_s], and stage graphs grown by at
   most [8 * m * (k+1)] synthetic vertices. *)
let analyze_nd i =
  let n = Cgraph.Graph.order i.g in
  let q = i.q in
  let d = List.length (distinct_roots i.examples) in
  let m = List.length i.examples in
  let lo_first = ci (2 + (d * (q + 4))) in
  let tqn = Cost_model.type_table_rows ~n ~q in
  let miss_hi = ci (n + 2) ++ tqn in
  let leaf_hi = C.one ++ (ci d ** miss_hi) in
  let np2 = ci (n + 2) in
  let round_hi = ci 2 ** np2 ** np2 in
  let games_hi = ci 512 ** round_hi in
  let nsg = ci n ++ (ci (8 * m) ** ci (i.k + 1)) in
  let nsg2 = nsg ++ ci 2 in
  let tq_nsg =
    match C.to_int_opt nsg with
    | Some s -> Cost_model.type_table_rows ~n:s ~q
    | None -> C.saturated
  in
  let step_hi =
    (ci 2 ** nsg2 ** nsg2) ++ (ci (i.k + 6) ** ci (m + 1) ** nsg2)
  in
  let node_hi = ci 2 ++ (ci 2 ** leaf_hi) ++ step_hi in
  let total_hi = ci 16 ++ (ci 2 ** (games_hi ++ (ci 1025 ** node_hi))) in
  {
    solver = Nd;
    stage_q = q;
    fuel_first = Env.make ~lo:lo_first ~hi:total_hi;
    fuel_total = Env.make ~lo:lo_first ~hi:total_hi;
    table_first = Env.make ~lo:(ci (q + 1)) ~hi:tq_nsg;
    table_total = Env.make ~lo:(ci (q + 1)) ~hi:tq_nsg;
    ball_first = Env.make ~lo:C.zero ~hi:nsg;
    ball_total = Env.make ~lo:C.zero ~hi:nsg;
    hypotheses = Env.make ~lo:C.one ~hi:(ci 2050);
    type_evals = Env.make ~lo:(ci d) ~hi:(ci 2050 ** ci d);
    exact = false;
    notes =
      [
        "coarse envelope: lower bounds cover only the mandatory root leaf \
         (splitter-game probes are not boundable below); upper bounds \
         assume the full 1024-node branch budget";
      ];
  }

let analyze i = function
  | Brute -> analyze_brute i
  | Local -> analyze_local i
  | Nd -> analyze_nd i
  | Counting -> analyze_counting i

(* the stage sequence [Degrade.learn] runs for a budgeted local solve:
   local at rank q, then brute at ranks q-1, ..., 0, each stage with a
   fresh fuel allowance *)
let degrade_stages i =
  let rec down q' =
    if q' < 0 then [] else analyze_brute ~stage_q:q' i :: down (q' - 1)
  in
  analyze_local i :: down (i.q - 1)

(* ------------------------------------------------------------------ *)
(* Limits and exit-code prediction                                     *)
(* ------------------------------------------------------------------ *)

type limits = {
  fuel : int option;
  timeout_s : float option;
  max_table : int option;
  max_ball : int option;
}

let no_limits = { fuel = None; timeout_s = None; max_table = None; max_ball = None }

let limits ?fuel ?timeout_s ?max_table ?max_ball () =
  { fuel; timeout_s; max_table; max_ball }

type verdict = Complete | Degraded | Exhausted_nothing

let exit_code = function Complete -> 0 | Degraded -> 3 | Exhausted_nothing -> 4

let verdict_name = function
  | Complete -> "complete"
  | Degraded -> "degraded"
  | Exhausted_nothing -> "exhausted"

type prediction = { verdict : verdict; certain : bool; reason : string }

(* [fits limit hi]: the limit certainly never trips a spend bounded by
   [hi] (spend <= hi <= limit, and a trip needs spend > limit). *)
let fits limit hi =
  match limit with None -> true | Some l -> C.leq hi (ci l)

(* [below limit lo]: the limit certainly trips a spend of at least
   [lo] (lo > limit). *)
let below limit lo =
  match limit with None -> false | Some l -> C.exceeds_int lo l

let complete_certain p l =
  l.timeout_s = None
  && fits l.fuel p.fuel_total.Env.hi
  && fits l.max_table p.table_total.Env.hi
  && fits l.max_ball p.ball_total.Env.hi

let reject_certain p l =
  below l.fuel p.fuel_first.Env.lo
  || below l.max_table p.table_first.Env.lo
  || below l.max_ball p.ball_first.Env.lo

let settles_certain p l =
  l.timeout_s = None
  && fits l.fuel p.fuel_first.Env.hi
  && fits l.max_table p.table_first.Env.hi
  && fits l.max_ball p.ball_first.Env.hi

let trips_certain p l =
  below l.fuel p.fuel_total.Env.lo
  || below l.max_table p.table_total.Env.lo
  || below l.max_ball p.ball_total.Env.lo

let predict p l =
  if complete_certain p l then
    {
      verdict = Complete;
      certain = true;
      reason = "the budget covers the worst-case envelope";
    }
  else if reject_certain p l then
    {
      verdict = Exhausted_nothing;
      certain = true;
      reason =
        Format.asprintf
          "the budget is below the sound first-settle floor (fuel >= %a, \
           table >= %a, ball >= %a)"
          C.pp p.fuel_first.Env.lo C.pp p.table_first.Env.lo C.pp
          p.ball_first.Env.lo;
    }
  else if settles_certain p l && trips_certain p l then
    {
      verdict = Degraded;
      certain = true;
      reason =
        "the first candidate provably settles but the budget provably trips \
         before the sweep completes";
    }
  else if
    l.timeout_s = None
    && fits l.fuel p.fuel_total.Env.lo
    && fits l.max_table p.table_total.Env.lo
    && fits l.max_ball p.ball_total.Env.lo
  then
    {
      verdict = Complete;
      certain = false;
      reason = "the budget covers the optimistic envelope; completion likely";
    }
  else if fits l.fuel p.fuel_first.Env.hi then
    {
      verdict = Degraded;
      certain = false;
      reason =
        "the budget lands inside the envelope: at least a salvaged \
         best-so-far hypothesis is likely";
    }
  else
    {
      verdict = Exhausted_nothing;
      certain = false;
      reason =
        "the budget is below the pessimistic first-settle bound; the run may \
         exhaust with nothing";
    }

(* [Degrade.learn] semantics: exit 0 only when the first (local) stage
   completes; any later completion, or any salvaged hypothesis, is exit
   3; exit 4 only when every stage strands.  Every stage gets a fresh
   fuel allowance ([Guard.Budget.for_stage]). *)
let predict_chain stages l =
  match stages with
  | [] -> { verdict = Complete; certain = false; reason = "empty chain" }
  | s0 :: rest ->
      if complete_certain s0 l then
        {
          verdict = Complete;
          certain = true;
          reason = "the budget covers the first stage's worst-case envelope";
        }
      else if List.for_all (fun s -> reject_certain s l) stages then
        {
          verdict = Exhausted_nothing;
          certain = true;
          reason =
            "every degradation stage is below its sound first-settle floor";
        }
      else if
        trips_certain s0 l
        && ((settles_certain s0 l)
           || List.exists (fun s -> complete_certain s l) rest)
      then
        {
          verdict = Degraded;
          certain = true;
          reason =
            "the first stage provably fails to complete, but a hypothesis is \
             provably produced (salvage or a fallback stage)";
        }
      else begin
        let p0 = predict s0 l in
        match p0.verdict with
        | Complete -> { p0 with certain = false }
        | _ ->
            let rest_best =
              List.fold_left
                (fun acc s ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                      let p = predict s l in
                      if p.verdict <> Exhausted_nothing then Some p else None)
                None rest
            in
            (match rest_best with
            | Some _ ->
                {
                  verdict = Degraded;
                  certain = false;
                  reason = "a fallback stage is likely to produce a hypothesis";
                }
            | None -> { p0 with certain = false })
      end

(* ------------------------------------------------------------------ *)
(* Fuel suggestions                                                    *)
(* ------------------------------------------------------------------ *)

type fuel_suggestion = {
  ample : int option;
  tight : int option;
  infeasible : int option;
}

let infeasible_of lo =
  match lo with
  | C.Saturated -> Some 0
  | C.Finite v when v >= 1 -> Some (v - 1)
  | C.Finite _ -> None

let suggest_fuel p =
  {
    ample = C.to_int_opt p.fuel_total.Env.hi;
    tight =
      (if strictly_less p.fuel_first.Env.hi p.fuel_total.Env.lo then
         C.to_int_opt p.fuel_first.Env.hi
       else None);
    infeasible = infeasible_of p.fuel_first.Env.lo;
  }

let suggest_fuel_chain stages =
  match stages with
  | [] -> { ample = None; tight = None; infeasible = None }
  | s0 :: rest ->
      let tight =
        if strictly_less s0.fuel_first.Env.hi s0.fuel_total.Env.lo then
          C.to_int_opt s0.fuel_first.Env.hi
        else
          List.find_map
            (fun s ->
              if strictly_less s.fuel_total.Env.hi s0.fuel_total.Env.lo then
                C.to_int_opt s.fuel_total.Env.hi
              else None)
            rest
      in
      let min_first_lo =
        List.fold_left
          (fun acc s ->
            if strictly_less s.fuel_first.Env.lo acc then s.fuel_first.Env.lo
            else acc)
          s0.fuel_first.Env.lo rest
      in
      {
        ample = C.to_int_opt s0.fuel_total.Env.hi;
        tight;
        infeasible = infeasible_of min_first_lo;
      }

(* ------------------------------------------------------------------ *)
(* Solver / job-count recommendation                                   *)
(* ------------------------------------------------------------------ *)

type recommendation = { solver : solver; jobs : int; reason : string }

let recommend (plans : t list) =
  let comparable =
    List.filter (fun (p : t) -> p.solver <> Counting) plans
  in
  let pool = if comparable = [] then plans else comparable in
  let best =
    List.fold_left
      (fun acc p ->
        match acc with
        | None -> Some p
        | Some b ->
            if strictly_less p.fuel_total.Env.hi b.fuel_total.Env.hi then Some p
            else if
              p.fuel_total.Env.hi = b.fuel_total.Env.hi
              && p.exact && not b.exact
            then Some p
            else acc)
      None pool
  in
  match best with
  | None -> { solver = Brute; jobs = 1; reason = "no plans to compare" }
  | Some p ->
      let jobs =
        if C.leq p.hypotheses.Env.hi (ci 64) then 1
        else min 8 (Domain.recommended_domain_count ())
      in
      {
        solver = p.solver;
        jobs;
        reason =
          Format.asprintf
            "smallest worst-case fuel envelope (%a%s); %s"
            C.pp p.fuel_total.Env.hi
            (if p.exact then ", exact" else "")
            (if jobs = 1 then "candidate space too small to amortise domains"
             else "enough candidates to share across domains");
      }

(* ------------------------------------------------------------------ *)
(* Admission precheck                                                  *)
(* ------------------------------------------------------------------ *)

type rejection = {
  what : string;
  resource : string;
  required : C.t;
  limit : int;
  message : string;
  diagnostic : Diagnostic.t;
}

let rejection what resource required limit =
  let message =
    Format.asprintf
      "%s: %s limit %d is below the sound lower bound %a needed before any \
       hypothesis can settle; the run would exhaust with nothing to salvage \
       (predicted exit 4).  Raise the limit or pass --no-precheck to try \
       anyway."
      what resource limit C.pp required
  in
  {
    what;
    resource;
    required;
    limit;
    message;
    diagnostic = Diagnostic.make ~rule:"budget-infeasible" message;
  }

let precheck ~what p l =
  if below l.fuel p.fuel_first.Env.lo then
    Some (rejection what "fuel" p.fuel_first.Env.lo (Option.get l.fuel))
  else if below l.max_table p.table_first.Env.lo then
    Some
      (rejection what "max-table" p.table_first.Env.lo (Option.get l.max_table))
  else if below l.max_ball p.ball_first.Env.lo then
    Some (rejection what "max-ball" p.ball_first.Env.lo (Option.get l.max_ball))
  else None

let precheck_chain ~what stages l =
  match stages with
  | [] -> None
  | s0 :: _ ->
      if List.for_all (fun s -> Option.is_some (precheck ~what s l)) stages
      then precheck ~what s0 l
      else None

(* ------------------------------------------------------------------ *)
(* Reduction.model_check floor                                         *)
(* ------------------------------------------------------------------ *)

(* A sound, oracle-agnostic lower bound on the [Solver_loop] ticks of a
   completed [Reduction.model_check] run: one tick per [decide] node on
   the cheapest short-circuit path.  Witness substitution preserves the
   connective skeleton (atoms become constants, both one tick), so the
   recursive case under a quantifier reuses the body's floor. *)
let model_check_floor ~n (phi : Fo.Formula.t) =
  let rec mt (f : Fo.Formula.t) =
    1
    +
    match f with
    | Fo.Formula.True | Fo.Formula.False | Fo.Formula.Atom _ -> 0
    | Fo.Formula.Not g -> mt g
    | Fo.Formula.And [] | Fo.Formula.Or [] -> 0
    | Fo.Formula.And fs | Fo.Formula.Or fs ->
        List.fold_left (fun acc g -> min acc (mt g)) max_int fs
    | Fo.Formula.Implies (a, _) -> mt a
    | Fo.Formula.Iff (a, b) -> mt a + mt b
    | Fo.Formula.Exists (_, b) -> if n = 0 then 0 else mt b
    | Fo.Formula.Forall (_, b) ->
        (* decide rewrites to [not (exists (not b))]: one extra node *)
        1 + (if n = 0 then 0 else 1 + mt b)
    | Fo.Formula.CountGe _ -> 0
  in
  mt phi

let precheck_model_check ~what ~n phi l =
  let floor = model_check_floor ~n phi in
  match l.fuel with
  | Some f when f < floor ->
      (* model checking salvages nothing: any trip is exit 4 *)
      Some (rejection what "fuel" (ci floor) f)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let envelope_pair_json first total =
  Json.Obj [ ("first", Env.to_json first); ("total", Env.to_json total) ]

let to_json (p : t) =
  Json.Obj
    [
      ("solver", Json.String (solver_name p.solver));
      ("stage_q", Json.Int p.stage_q);
      ("fuel", envelope_pair_json p.fuel_first p.fuel_total);
      ("table", envelope_pair_json p.table_first p.table_total);
      ("ball", envelope_pair_json p.ball_first p.ball_total);
      ("hypotheses", Env.to_json p.hypotheses);
      ("type_evals", Env.to_json p.type_evals);
      ("exact", Json.Bool p.exact);
      ("notes", Json.List (List.map (fun s -> Json.String s) p.notes));
    ]

let prediction_to_json pr =
  Json.Obj
    [
      ("verdict", Json.String (verdict_name pr.verdict));
      ("exit_code", Json.Int (exit_code pr.verdict));
      ("certain", Json.Bool pr.certain);
      ("reason", Json.String pr.reason);
    ]

let suggestion_to_json s =
  let opt = function None -> Json.Null | Some v -> Json.Int v in
  Json.Obj
    [
      ("ample", opt s.ample); ("tight", opt s.tight);
      ("infeasible", opt s.infeasible);
    ]

let recommendation_to_json r =
  Json.Obj
    [
      ("solver", Json.String (solver_name r.solver));
      ("jobs", Json.Int r.jobs);
      ("reason", Json.String r.reason);
    ]
