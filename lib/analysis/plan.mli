(** Static cost analysis and query planning for the learning pipeline
    ("focost").

    Abstract interpretation of the ERM solvers of {e On the
    Parameterized Complexity of Learning First-Order Logic} (van
    Bergerem–Grohe–Ritzert, PODS 2022): for a hypothesis-class budget
    [(q, k, ℓ, r)] and cheap, {e guard-tick-free} structure statistics
    ({!Cgraph.Stats}), compute symbolic saturating envelopes
    ({!Cost_model.Env}) on everything the runtime {!Guard} meters —
    fuel, Hintikka-table rows, neighbourhood-ball sizes — plus the
    candidate-catalogue cardinalities of Theorem 10 (brute/counting
    enumeration over [n^ℓ] parameter tuples), Theorem 13 / Lemma 15
    (the local solver's pool-restricted catalogue), and the
    degree-bounded ball forms of Grohe–Ritzert (arXiv:1701.05487).

    Three consumers:
    {ul
    {- [folearn_cli plan] — a JSON plan: predicted spend, the
       recommended solver and job count, and the predicted exit code
       (0 complete / 3 degraded / 4 exhausted-empty) for given limits;}
    {- the admission {!precheck} wired into the [Erm_*] solvers and
       [Reduction.model_check], which converts {e provably} infeasible
       budgets into an immediate structured rejection instead of a
       doomed burn ([--no-precheck] escapes);}
    {- the prediction-vs-actual calibration harness (bench E18), which
       replays {!t} envelopes against recorded [Obs] counters.}}

    Soundness contract: [lo] fields are lower bounds on what any run
    spends, [hi] fields upper bounds on what a completing run can
    spend.  Certainty claims ({!predict}, {!precheck}) only ever use
    the sound side; wall-clock deadlines are never grounds for a
    certain prediction. *)

type solver = Brute | Local | Nd | Counting

val solver_name : solver -> string
val solver_of_name : string -> solver option

(** A planning problem: the structure, the labelled-example roots, and
    the hypothesis-class budgets of the class [Phi(q, k, ℓ)]. *)
type input = {
  g : Cgraph.Graph.t;
  examples : Cgraph.Graph.Tuple.t list;  (** example roots (with repeats) *)
  k : int;
  ell : int;
  q : int;
  radius : int option;
      (** locality radius override; default is Gaifman's
          [(7^q - 1)/2] for {!Local} and [1] for {!Nd}, matching the
          CLI defaults *)
  tmax : int;  (** counting-threshold cap of the counting solver *)
}

val input :
  ?radius:int ->
  ?tmax:int ->
  Cgraph.Graph.t ->
  k:int ->
  ell:int ->
  q:int ->
  Cgraph.Graph.Tuple.t list ->
  input

(** The envelope bundle for one solver run.  [first] envelopes bound
    the spend up to the moment the {e first} candidate hypothesis
    settles (the earliest point a budget trip can still salvage a
    best-so-far answer); [total] envelopes bound a completing run. *)
type t = {
  solver : solver;
  stage_q : int;  (** quantifier rank of this (possibly fallback) stage *)
  fuel_first : Cost_model.Env.t;
  fuel_total : Cost_model.Env.t;
  table_first : Cost_model.Env.t;  (** peak memo rows in one type context *)
  table_total : Cost_model.Env.t;
  ball_first : Cost_model.Env.t;  (** largest neighbourhood ball reported *)
  ball_total : Cost_model.Env.t;
  hypotheses : Cost_model.Env.t;  (** candidates enumerated (Theorem 10) *)
  type_evals : Cost_model.Env.t;
      (** type-computation memo misses ([tp] for brute, [ltp] for
          local/nd) — the calibration target of bench E18 *)
  exact : bool;  (** every envelope has [lo = hi] *)
  notes : string list;
}

val analyze : input -> solver -> t
(** Envelopes for one solver.  Brute and counting are {e exact}
    (Lemma 19's recursive type computation has deterministic memo-miss
    counts); local is exact up to the first candidate and bounded by
    the touched neighbourhood afterwards; nd is coarse (see {!t}
    notes). *)

val degrade_stages : input -> t list
(** The stage sequence a budgeted [--solver local] run executes
    ([Degrade.learn]): local at rank [q], then brute fallbacks at ranks
    [q-1, ..., 0] — each stage with a fresh fuel allowance. *)

(** {1 Exit-code prediction} *)

(** Declarative resource limits, mirroring [Guard.Budget.limits]
    without depending on the live budget. *)
type limits = {
  fuel : int option;
  timeout_s : float option;
  max_table : int option;
  max_ball : int option;
}

val no_limits : limits

val limits :
  ?fuel:int -> ?timeout_s:float -> ?max_table:int -> ?max_ball:int -> unit ->
  limits

type verdict =
  | Complete  (** exit 0: finished with the min-error certificate *)
  | Degraded  (** exit 3: a hypothesis without the certificate *)
  | Exhausted_nothing  (** exit 4: tripped before anything settled *)

val exit_code : verdict -> int
val verdict_name : verdict -> string

type prediction = { verdict : verdict; certain : bool; reason : string }

val predict : t -> limits -> prediction
(** [certain = true] only when the verdict is forced by the sound side
    of the envelopes: completion needs the limits to cover every [hi];
    exit 4 needs some limit below a [first.lo]; exit 3 needs the first
    settle provably affordable and completion provably not.  A
    wall-clock [timeout_s] disables the 0/3 certainties (deadlines are
    not statically predictable). *)

val predict_chain : t list -> limits -> prediction
(** Prediction for a {!degrade_stages} sequence under [Degrade.learn]
    semantics: completion of the head stage is exit 0; any later
    completion or any salvage is exit 3; exit 4 only when every stage
    provably strands. *)

(** {1 Fuel suggestions} *)

(** Suggested [--fuel] values bracketing the three exit codes:
    [ample] provably completes, [tight] provably settles the first
    candidate but provably cannot finish (exit 3), [infeasible]
    provably trips before anything settles (exit 4).  [None] when the
    corresponding band is empty or beyond [max_int]. *)
type fuel_suggestion = {
  ample : int option;
  tight : int option;
  infeasible : int option;
}

val suggest_fuel : t -> fuel_suggestion
val suggest_fuel_chain : t list -> fuel_suggestion

(** {1 Recommendation} *)

type recommendation = { solver : solver; jobs : int; reason : string }

val recommend : t list -> recommendation
(** Smallest worst-case fuel envelope wins (exactness breaks ties); the
    counting solver is excluded unless it is the only plan (it answers
    a different — threshold-counting — hypothesis class).  [jobs]
    scales with the candidate-catalogue cardinality. *)

(** {1 Admission precheck} *)

type rejection = {
  what : string;  (** rejecting entry point, e.g. ["Erm_brute"] *)
  resource : string;  (** ["fuel"], ["max-table"], or ["max-ball"] *)
  required : Cost_model.Count.t;  (** sound lower bound on the resource *)
  limit : int;  (** the limit that falls short *)
  message : string;
  diagnostic : Diagnostic.t;  (** rule [budget-infeasible] *)
}

val precheck : what:string -> t -> limits -> rejection option
(** [Some _] only when the run is {e provably} doomed to exit 4: a
    limit strictly below the sound first-settle floor.  Never fires on
    deadlines, and never on merely-unlikely budgets. *)

val precheck_chain : what:string -> t list -> limits -> rejection option
(** Rejects a degradation chain only when {e every} stage is provably
    doomed. *)

val model_check_floor : n:int -> Fo.Formula.t -> int
(** Sound, oracle-agnostic lower bound on the [Solver_loop] ticks of a
    completed [Reduction.model_check] run over an order-[n] structure:
    one tick per decision node on the cheapest short-circuit path of
    the Lemma 7 reduction.  Exposed for the property tests. *)

val precheck_model_check :
  what:string -> n:int -> Fo.Formula.t -> limits -> rejection option
(** Model checking salvages nothing, so any provable trip
    ([fuel < {!model_check_floor}]) is a provable exit 4. *)

(** {1 JSON} *)

val to_json : t -> Obs.Json.t
val prediction_to_json : prediction -> Obs.Json.t
val suggestion_to_json : fuel_suggestion -> Obs.Json.t
val recommendation_to_json : recommendation -> Obs.Json.t
