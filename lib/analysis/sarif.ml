module Json = Obs.Json

let level_of = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Hint -> "note"

let rule_json (r : Diagnostic.rule_info) =
  Json.Obj
    [
      ("id", Json.String r.id);
      ("shortDescription", Json.Obj [ ("text", Json.String r.doc) ]);
      ( "defaultConfiguration",
        Json.Obj [ ("level", Json.String (level_of r.default_severity)) ] );
    ]

let result_json artifact (d : Diagnostic.t) =
  let logical =
    Json.Obj
      [
        ( "fullyQualifiedName",
          Json.String (Format.asprintf "%a" Diagnostic.pp_path d.path) );
      ]
  in
  let location =
    Json.Obj
      [
        ( "physicalLocation",
          Json.Obj
            [
              ( "artifactLocation",
                Json.Obj [ ("uri", Json.String artifact) ] );
            ] );
        ("logicalLocations", Json.List [ logical ]);
      ]
  in
  Json.Obj
    [
      ("ruleId", Json.String d.rule);
      ("level", Json.String (level_of d.severity));
      ("message", Json.Obj [ ("text", Json.String d.message) ]);
      ("locations", Json.List [ location ]);
    ]

let log ?(tool = "folint") results =
  (* only the rules that actually fired, in catalogue order, so the
     document stays small and its golden form stable *)
  let fired =
    List.concat_map (fun (_, ds) -> List.map (fun d -> d.Diagnostic.rule) ds)
      results
  in
  let rules =
    List.filter (fun (r : Diagnostic.rule_info) -> List.mem r.id fired)
      Diagnostic.rules
  in
  Json.Obj
    [
      ("version", Json.String "2.1.0");
      ( "$schema",
        Json.String
          "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"
      );
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String tool);
                            ( "informationUri",
                              Json.String
                                "https://arxiv.org/abs/2102.12201" );
                            ("rules", Json.List (List.map rule_json rules));
                          ] );
                    ] );
                ( "results",
                  Json.List
                    (List.concat_map
                       (fun (artifact, ds) ->
                         List.map (result_json artifact) ds)
                       results) );
              ];
          ] );
    ]

let to_string ?tool results = Json.to_string (log ?tool results)
