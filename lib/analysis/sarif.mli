(** SARIF 2.1.0 encoding of {!Diagnostic} lists, for [folearn_cli lint
    --format sarif] and [plan --format sarif].

    The emitted document is the minimal static-analysis log most SARIF
    consumers (GitHub code scanning, VS Code SARIF viewer) accept: one
    run, one [tool.driver] with the fired subset of the
    {!Diagnostic.rules} catalogue, and one [result] per diagnostic.
    Severities map [Error → error], [Warning → warning],
    [Hint → note].  The formula-AST breadcrumb ({!Diagnostic.pp_path})
    is carried as a [logicalLocation]; the artifact URI is the caller's
    name for the linted input (a file path, or ["<arg>"] for inline
    formulas).

    Output is deterministic for a fixed input (insertion-ordered
    objects, catalogue-ordered rules), so goldens can pin it. *)

val log : ?tool:string -> (string * Diagnostic.t list) list -> Obs.Json.t
(** [log results] builds the SARIF document for [(artifact, diagnostics)]
    pairs.  [tool] defaults to ["folint"]. *)

val to_string : ?tool:string -> (string * Diagnostic.t list) list -> string
(** Compact single-line {!Obs.Json.to_string} of {!log}. *)
