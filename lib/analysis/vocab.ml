module SMap = Map.Make (String)

type t = int SMap.t

let empty = SMap.empty
let declare v name arity = SMap.add name arity v
let graph colors = List.fold_left (fun v c -> declare v c 1) (declare empty "E" 2) colors
let of_graph g = graph (Cgraph.Graph.color_names g)
let arity v name = SMap.find_opt name v
let mem v name = SMap.mem name v
let names v = SMap.bindings v |> List.map fst

let of_string s =
  let decls = String.split_on_char ',' s |> List.map String.trim in
  let rec go v = function
    | [] -> Ok v
    | "" :: rest -> go v rest
    | d :: rest -> (
        match String.index_opt d '/' with
        | None -> go (declare v d 1) rest
        | Some i -> (
            let name = String.sub d 0 i in
            let ar = String.sub d (i + 1) (String.length d - i - 1) in
            match int_of_string_opt ar with
            | Some n when n >= 0 && name <> "" -> go (declare v name n) rest
            | _ -> Error (Printf.sprintf "bad vocabulary entry %S (want NAME/ARITY)" d)))
  in
  go empty decls

let pp ppf v =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (name, ar) -> Format.fprintf ppf "%s/%d" name ar)
    ppf (SMap.bindings v)
