(** Declared vocabularies for signature-conformance checking.

    The paper fixes a vocabulary [τ = {E, P_1, ..., P_c}] of one binary
    edge relation and unary colour predicates (Section 2); the relational
    encoding of {!Modelcheck.Relational} generalises to arbitrary arities.
    A {!t} declares the relation symbols an analysed formula may use,
    each with its arity, so {!Fo_check} can flag unknown symbols and
    arity mismatches before a formula ever reaches an evaluator. *)

type t

val empty : t
(** No symbols at all — not even [E]. *)

val declare : t -> string -> int -> t
(** [declare v name arity]; re-declaring a name overrides its arity. *)

val graph : string list -> t
(** The coloured-graph vocabulary: [E/2] plus the given unary colours. *)

val of_graph : Cgraph.Graph.t -> t
(** [graph (Graph.color_names g)]. *)

val of_string : string -> (t, string) result
(** Parse a declaration list ["E/2,Red/1,Blue/1"].  A bare name declares
    a unary symbol (["Red"] is ["Red/1"]).  [E] is {e not} implicit:
    declare it (or start from {!graph}). *)

val arity : t -> string -> int option
val mem : t -> string -> bool

val names : t -> string list
(** Declared names, sorted. *)

val pp : Format.formatter -> t -> unit
(** [E/2, Red/1] — the syntax accepted by {!of_string}. *)
