let infinity = max_int / 4

(* observability handles; every record is a no-op while the sink is off *)
let bfs_calls = Obs.Metric.counter "cgraph.bfs.calls"
let frontier_h = Obs.Metric.histogram "cgraph.bfs.frontier_size"
let ball_h = Obs.Metric.histogram "cgraph.bfs.ball_size"

(* frontier sizes = vertices per BFS level; derived from the distance
   array afterwards so the traversal itself stays untouched *)
let record_frontiers dist =
  if Obs.Sink.enabled () then begin
    let levels = Hashtbl.create 16 in
    Array.iter
      (fun d ->
        if d < infinity then
          Hashtbl.replace levels d
            (1 + Option.value ~default:0 (Hashtbl.find_opt levels d)))
      dist;
    Hashtbl.iter
      (fun _ c -> Obs.Metric.observe frontier_h (float_of_int c))
      levels
  end

(* The traversals below run on a flat int-array FIFO over the CSR rows
   instead of a boxed [Queue]: the frontier is one contiguous scan, a
   vertex costs a store on push and a load on pop, and every discovered
   vertex enters the queue exactly once so a plain [n]-slot array never
   overflows.  Visit order (and therefore the per-dequeue [Guard.tick]
   count, which budgeted runs pin) is identical to the queue version. *)

let distances_multi g srcs =
  Obs.Metric.incr bfs_calls;
  let n = Graph.order g in
  let dist = Array.make n infinity in
  let queue = Array.make (max n 1) 0 in
  let head = ref 0 and tail = ref 0 in
  List.iter
    (fun s ->
      if dist.(s) = infinity then begin
        dist.(s) <- 0;
        queue.(!tail) <- s;
        incr tail
      end)
    srcs;
  while !head < !tail do
    Guard.tick Guard.Bfs_frontier;
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) = infinity then begin
          dist.(v) <- du + 1;
          queue.(!tail) <- v;
          incr tail
        end)
  done;
  record_frontiers dist;
  dist

let distances g src = distances_multi g [ src ]

let dist g u v =
  (* early-exit BFS from the lower-degree endpoint: the distance is
     symmetric, and the search frontier grows with the degree of the
     start vertex, so explore outward from the sparser side *)
  if u = v then 0
  else begin
    Obs.Metric.incr bfs_calls;
    let u, v = if Graph.degree g u <= Graph.degree g v then (u, v) else (v, u) in
    let n = Graph.order g in
    let dist_arr = Array.make n infinity in
    let queue = Array.make (max n 1) 0 in
    let head = ref 0 and tail = ref 0 in
    dist_arr.(u) <- 0;
    queue.(!tail) <- u;
    incr tail;
    let result = ref infinity in
    (try
       while !head < !tail do
         Guard.tick Guard.Bfs_frontier;
         let x = queue.(!head) in
         incr head;
         Graph.iter_neighbors g x (fun y ->
             if dist_arr.(y) = infinity then begin
               dist_arr.(y) <- dist_arr.(x) + 1;
               if y = v then begin
                 result := dist_arr.(y);
                 raise Exit
               end;
               queue.(!tail) <- y;
               incr tail
             end)
       done
     with Exit -> ());
    !result
  end

let dist_tuple g a b =
  if Array.length a = 0 || Array.length b = 0 then infinity
  else begin
    let d = distances_multi g (Array.to_list a) in
    Array.fold_left (fun acc v -> min acc d.(v)) infinity b
  end

let ball g ~r srcs =
  if r < 0 then invalid_arg "Bfs.ball: negative radius";
  let d = distances_multi g srcs in
  let acc = ref [] in
  let count = ref 0 in
  for v = Graph.order g - 1 downto 0 do
    if d.(v) <= r then begin
      acc := v :: !acc;
      incr count
    end
  done;
  Guard.note_ball !count;
  if Obs.Sink.enabled () then
    Obs.Metric.observe ball_h (float_of_int !count);
  !acc

let ball_tuple g ~r t = ball g ~r (Array.to_list t)

let eccentricity g v =
  let d = distances g v in
  Array.fold_left (fun acc x -> if x < infinity then max acc x else acc) 0 d

let within g ~r u v =
  if u = v then r >= 0
  else begin
    Obs.Metric.incr bfs_calls;
    let n = Graph.order g in
    let dist_arr = Array.make n infinity in
    let queue = Array.make (max n 1) 0 in
    let head = ref 0 and tail = ref 0 in
    dist_arr.(u) <- 0;
    queue.(!tail) <- u;
    incr tail;
    let found = ref false in
    (try
       while !head < !tail do
         Guard.tick Guard.Bfs_frontier;
         let x = queue.(!head) in
         incr head;
         if dist_arr.(x) >= r then raise Exit;
         Graph.iter_neighbors g x (fun y ->
             if dist_arr.(y) = infinity then begin
               dist_arr.(y) <- dist_arr.(x) + 1;
               if y = v then begin
                 found := true;
                 raise Exit
               end;
               queue.(!tail) <- y;
               incr tail
             end)
       done
     with Exit -> ());
    !found
  end
