(* Vertex-coloured graphs backed by sorted adjacency arrays.

   The representation favours the access patterns of the type-computation
   and learning algorithms: O(log d) edge tests, O(1) neighbour iteration,
   cheap colour expansions (colour maps are persistent association data
   shared between expanded graphs). *)

type vertex = int

exception Invalid_vertex of int

module SMap = Map.Make (String)

type t = {
  n : int;
  adj : vertex array array;         (* sorted, duplicate-free *)
  colors : vertex array SMap.t;     (* colour name -> sorted member array *)
  nedges : int;
}

let check_vertex g v = if v < 0 || v >= g.n then raise (Invalid_vertex v)

let sorted_dedup_array lst =
  let a = Array.of_list lst in
  Array.sort compare a;
  let m = Array.length a in
  if m = 0 then a
  else begin
    let w = ref 1 in
    for r = 1 to m - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    Array.sub a 0 !w
  end

let build_colors n color_list =
  List.fold_left
    (fun acc (name, members) ->
      if SMap.mem name acc then
        invalid_arg (Printf.sprintf "Graph.create: duplicate colour %S" name);
      List.iter
        (fun v -> if v < 0 || v >= n then raise (Invalid_vertex v))
        members;
      SMap.add name (sorted_dedup_array members) acc)
    SMap.empty color_list

let create ~n ~edges ~colors =
  if n < 0 then invalid_arg "Graph.create: negative order";
  let buckets = Array.make (max n 1) [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n then raise (Invalid_vertex u);
      if v < 0 || v >= n then raise (Invalid_vertex v);
      if u = v then invalid_arg "Graph.create: self-loop";
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v))
    edges;
  let adj = Array.init n (fun v -> sorted_dedup_array buckets.(v)) in
  let nedges =
    Array.fold_left (fun acc nbrs -> acc + Array.length nbrs) 0 adj / 2
  in
  { n; adj; colors = build_colors n colors; nedges }

let of_adjacency adj colors =
  let n = Array.length adj in
  let edges =
    List.concat
      (List.init n (fun u ->
           List.filter_map (fun v -> if u < v then Some (u, v) else None) adj.(u)))
  in
  (* symmetrise: also collect edges given only in the high->low direction *)
  let extra =
    List.concat
      (List.init n (fun u ->
           List.filter_map (fun v -> if u > v then Some (v, u) else None) adj.(u)))
  in
  create ~n ~edges:(edges @ extra) ~colors

let order g = g.n
let size g = g.nedges
let vertices g = List.init g.n Fun.id

let neighbors g v =
  check_vertex g v;
  g.adj.(v)

let degree g v =
  check_vertex g v;
  Array.length g.adj.(v)

let max_degree g =
  Array.fold_left (fun acc nbrs -> max acc (Array.length nbrs)) 0 g.adj

let mem_sorted a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && a.(!lo) = x

let mem_edge g u v =
  check_vertex g u;
  check_vertex g v;
  if Array.length g.adj.(u) <= Array.length g.adj.(v) then
    mem_sorted g.adj.(u) v
  else mem_sorted g.adj.(v) u

let edges g =
  List.concat
    (List.init g.n (fun u ->
         Array.to_list g.adj.(u)
         |> List.filter_map (fun v -> if u < v then Some (u, v) else None)))

let color_names g = SMap.bindings g.colors |> List.map fst

let has_color g c v =
  check_vertex g v;
  match SMap.find_opt c g.colors with
  | None -> false
  | Some members -> mem_sorted members v

let color_class g c =
  match SMap.find_opt c g.colors with
  | None -> []
  | Some members -> Array.to_list members

let colors_of g v =
  check_vertex g v;
  SMap.fold
    (fun name members acc -> if mem_sorted members v then name :: acc else acc)
    g.colors []
  |> List.rev

let with_colors g fresh =
  let colors =
    List.fold_left
      (fun acc (name, members) ->
        if SMap.mem name acc then
          invalid_arg
            (Printf.sprintf "Graph.with_colors: colour %S already present" name);
        List.iter (fun v -> check_vertex g v) members;
        SMap.add name (sorted_dedup_array members) acc)
      g.colors fresh
  in
  { g with colors }

let restrict_vocabulary g keep =
  let colors = SMap.filter (fun name _ -> List.mem name keep) g.colors in
  { g with colors }

let equal g h =
  g.n = h.n
  && g.nedges = h.nedges
  && Array.for_all2 (fun a b -> a = b) g.adj h.adj
  && SMap.equal (fun a b -> a = b) g.colors h.colors

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d vertices, %d edges@," g.n g.nedges;
  Format.fprintf ppf "edges: %a@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges g);
  SMap.iter
    (fun name members ->
      Format.fprintf ppf "colour %s: {%a}@," name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        (Array.to_list members))
    g.colors;
  Format.fprintf ppf "@]"

let to_dot ?(name = "G") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  List.iter
    (fun v ->
      let cs = colors_of g v in
      let label =
        if cs = [] then string_of_int v
        else Printf.sprintf "%d:%s" v (String.concat "," cs)
      in
      Buffer.add_string buf (Printf.sprintf "  v%d [label=\"%s\"];\n" v label))
    (vertices g);
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  v%d -- v%d;\n" u v))
    (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

module Tuple = struct
  type nonrec t = vertex array

  let equal (a : t) (b : t) = a = b
  let compare (a : t) (b : t) = compare a b

  let hash (a : t) =
    Array.fold_left (fun acc v -> (acc * 31) + v + 1) (Array.length a) a

  let pp ppf t =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      (Array.to_list t)

  let append = Array.append

  let all ~n ~k =
    if k < 0 then invalid_arg "Tuple.all: negative arity";
    let rec go k =
      if k = 0 then [ [] ]
      else
        let rest = go (k - 1) in
        List.concat (List.init n (fun v -> List.map (fun t -> v :: t) rest))
    in
    List.map Array.of_list (go k)

  let iter_all ~n ~k f =
    if k < 0 then invalid_arg "Tuple.iter_all: negative arity";
    let buf = Array.make k 0 in
    let rec go i =
      if i = k then f (Array.sub buf 0 k)
      else
        for v = 0 to n - 1 do
          buf.(i) <- v;
          go (i + 1)
        done
    in
    go 0

  let count ~n ~k =
    if k < 0 then invalid_arg "Tuple.count: negative arity";
    if n <= 0 then Some (if k = 0 then 1 else 0)
    else begin
      let rec go acc i =
        if i = 0 then Some acc
        else if acc > max_int / n then None
        else go (acc * n) (i - 1)
      in
      go 1 k
    end

  let of_index ~n ~k i =
    if k < 0 then invalid_arg "Tuple.of_index: negative arity";
    let t = Array.make k 0 in
    let rem = ref i in
    for j = k - 1 downto 0 do
      t.(j) <- !rem mod n;
      rem := !rem / n
    done;
    t
end
