(* Vertex-coloured graphs in compressed-sparse-row (CSR) form.

   The representation favours the access patterns of the type-computation
   and learning algorithms, which are read-heavy and cache-sensitive:

   - adjacency is two flat Bigarray int vectors ([offsets]/[targets]);
     row [v] is [targets.(offsets.(v)) .. targets.(offsets.(v+1) - 1)],
     sorted and duplicate-free.  Neighbour iteration is a linear scan of
     one contiguous slice (no per-vertex array object, no pointer
     chasing), edge tests are an O(log d) binary search in the smaller
     row;
   - colour classes carry a bitset next to the sorted member array, so
     [has_color] — the inner loop of atomic-signature computation — is
     one byte load and a mask instead of a binary search;
   - values are immutable; "modifying" operations return a new value
     sharing the adjacency vectors where possible.  Each value carries a
     process-unique [uid] so formula-compilation caches can key on graph
     identity without structural comparison. *)

type vertex = int

exception Invalid_vertex of int

module SMap = Map.Make (String)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type color = {
  members : vertex array;  (* sorted, duplicate-free *)
  bits : Bytes.t;          (* membership bitset over the vertex range *)
}

type t = {
  n : int;
  nedges : int;
  uid : int;
  offsets : ba;  (* length n + 1; offsets.(n) = 2 * nedges *)
  targets : ba;  (* sorted within each row *)
  colors : color SMap.t;
}

let next_uid = Atomic.make 0
let fresh_uid () = Atomic.fetch_and_add next_uid 1

let uid g = g.uid

let check_vertex g v = if v < 0 || v >= g.n then raise (Invalid_vertex v)

(* Monomorphic int sort: the polymorphic [compare] costs a C call per
   comparison, which dominates graph construction on big instances
   (pinned by the sort micro-regression in the test suite). *)
let sorted_dedup_array lst =
  let a = Array.of_list lst in
  Array.sort Int.compare a;
  let m = Array.length a in
  if m = 0 then a
  else begin
    let w = ref 1 in
    for r = 1 to m - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    Array.sub a 0 !w
  end

let bitset_of_members n members =
  let bits = Bytes.make ((n + 7) / 8) '\000' in
  Array.iter
    (fun v ->
      let byte = v lsr 3 and mask = 1 lsl (v land 7) in
      Bytes.unsafe_set bits byte
        (Char.chr (Char.code (Bytes.unsafe_get bits byte) lor mask)))
    members;
  bits

let make_color n members_list =
  let members = sorted_dedup_array members_list in
  { members; bits = bitset_of_members n members }

let bit_test c v =
  Char.code (Bytes.unsafe_get c.bits (v lsr 3)) land (1 lsl (v land 7)) <> 0

let build_colors n color_list =
  List.fold_left
    (fun acc (name, members) ->
      if SMap.mem name acc then
        invalid_arg (Printf.sprintf "Graph.create: duplicate colour %S" name);
      List.iter
        (fun v -> if v < 0 || v >= n then raise (Invalid_vertex v))
        members;
      SMap.add name (make_color n members) acc)
    SMap.empty color_list

(* Pack sorted duplicate-free rows into the CSR vectors. *)
let pack_csr n (adj : vertex array array) =
  let offsets = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (n + 1) in
  let total = ref 0 in
  for v = 0 to n - 1 do
    Bigarray.Array1.unsafe_set offsets v !total;
    total := !total + Array.length adj.(v)
  done;
  Bigarray.Array1.unsafe_set offsets n !total;
  let targets = Bigarray.Array1.create Bigarray.int Bigarray.c_layout !total in
  let w = ref 0 in
  for v = 0 to n - 1 do
    let row = adj.(v) in
    for i = 0 to Array.length row - 1 do
      Bigarray.Array1.unsafe_set targets !w row.(i);
      incr w
    done
  done;
  (offsets, targets, !total / 2)

let create ~n ~edges ~colors =
  if n < 0 then invalid_arg "Graph.create: negative order";
  let buckets = Array.make (max n 1) [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n then raise (Invalid_vertex u);
      if v < 0 || v >= n then raise (Invalid_vertex v);
      if u = v then invalid_arg "Graph.create: self-loop";
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v))
    edges;
  let adj = Array.init n (fun v -> sorted_dedup_array buckets.(v)) in
  let offsets, targets, nedges = pack_csr n adj in
  { n; nedges; uid = fresh_uid (); offsets; targets;
    colors = build_colors n colors }

let of_adjacency adj colors =
  let n = Array.length adj in
  let edges =
    List.concat
      (List.init n (fun u ->
           List.filter_map (fun v -> if u < v then Some (u, v) else None) adj.(u)))
  in
  (* symmetrise: also collect edges given only in the high->low direction *)
  let extra =
    List.concat
      (List.init n (fun u ->
           List.filter_map (fun v -> if u > v then Some (v, u) else None) adj.(u)))
  in
  create ~n ~edges:(edges @ extra) ~colors

let order g = g.n
let size g = g.nedges
let vertices g = List.init g.n Fun.id

let row_start g v = Bigarray.Array1.unsafe_get g.offsets v
let row_stop g v = Bigarray.Array1.unsafe_get g.offsets (v + 1)

let neighbors g v =
  check_vertex g v;
  let lo = row_start g v in
  Array.init (row_stop g v - lo) (fun i ->
      Bigarray.Array1.unsafe_get g.targets (lo + i))

let iter_neighbors g v f =
  check_vertex g v;
  for i = row_start g v to row_stop g v - 1 do
    f (Bigarray.Array1.unsafe_get g.targets i)
  done

let fold_neighbors g v f init =
  check_vertex g v;
  let acc = ref init in
  for i = row_start g v to row_stop g v - 1 do
    acc := f !acc (Bigarray.Array1.unsafe_get g.targets i)
  done;
  !acc

let degree g v =
  check_vertex g v;
  row_stop g v - row_start g v

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    let d = row_stop g v - row_start g v in
    if d > !best then best := d
  done;
  !best

(* binary search for [x] in targets.(lo) .. targets.(hi - 1) *)
let mem_row g lo0 hi0 x =
  let lo = ref lo0 and hi = ref hi0 in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Bigarray.Array1.unsafe_get g.targets mid < x then lo := mid + 1
    else hi := mid
  done;
  !lo < hi0 && Bigarray.Array1.unsafe_get g.targets !lo = x

let mem_edge g u v =
  check_vertex g u;
  check_vertex g v;
  let ulo = row_start g u and uhi = row_stop g u in
  let vlo = row_start g v and vhi = row_stop g v in
  if uhi - ulo <= vhi - vlo then mem_row g ulo uhi v else mem_row g vlo vhi u

let edges g =
  List.concat
    (List.init g.n (fun u ->
         fold_neighbors g u
           (fun acc v -> if u < v then (u, v) :: acc else acc)
           []
         |> List.rev))

let color_names g = SMap.bindings g.colors |> List.map fst

let has_color g c v =
  check_vertex g v;
  match SMap.find_opt c g.colors with
  | None -> false
  | Some col -> bit_test col v

let color_test g c =
  match SMap.find_opt c g.colors with
  | None -> fun v -> check_vertex g v; false
  | Some col -> fun v -> check_vertex g v; bit_test col v

let color_class g c =
  match SMap.find_opt c g.colors with
  | None -> []
  | Some col -> Array.to_list col.members

let colors_of g v =
  check_vertex g v;
  SMap.fold
    (fun name col acc -> if bit_test col v then name :: acc else acc)
    g.colors []
  |> List.rev

let with_colors g fresh =
  let colors =
    List.fold_left
      (fun acc (name, members) ->
        if SMap.mem name acc then
          invalid_arg
            (Printf.sprintf "Graph.with_colors: colour %S already present" name);
        List.iter (fun v -> check_vertex g v) members;
        SMap.add name (make_color g.n members) acc)
      g.colors fresh
  in
  (* adjacency is shared; the colour vocabulary changed, so the value
     gets a fresh identity for compilation caches *)
  { g with colors; uid = fresh_uid () }

let restrict_vocabulary g keep =
  let colors = SMap.filter (fun name _ -> List.mem name keep) g.colors in
  { g with colors; uid = fresh_uid () }

let same_int_array a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let equal g h =
  g.n = h.n
  && g.nedges = h.nedges
  && (let rec rows v =
        v >= g.n
        || (row_start g v = row_start h v
            && row_stop g v = row_stop h v
            &&
            let rec cells i =
              i >= row_stop g v
              || (Bigarray.Array1.unsafe_get g.targets i
                  = Bigarray.Array1.unsafe_get h.targets i
                 && cells (i + 1))
            in
            cells (row_start g v) && rows (v + 1))
      in
      rows 0)
  && SMap.equal (fun a b -> same_int_array a.members b.members) g.colors h.colors

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d vertices, %d edges@," g.n g.nedges;
  Format.fprintf ppf "edges: %a@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges g);
  SMap.iter
    (fun name col ->
      Format.fprintf ppf "colour %s: {%a}@," name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        (Array.to_list col.members))
    g.colors;
  Format.fprintf ppf "@]"

let to_dot ?(name = "G") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  List.iter
    (fun v ->
      let cs = colors_of g v in
      let label =
        if cs = [] then string_of_int v
        else Printf.sprintf "%d:%s" v (String.concat "," cs)
      in
      Buffer.add_string buf (Printf.sprintf "  v%d [label=\"%s\"];\n" v label))
    (vertices g);
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  v%d -- v%d;\n" u v))
    (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

module Tuple = struct
  type nonrec t = vertex array

  let equal (a : t) (b : t) = same_int_array a b

  (* length-first, then lexicographic — the order the polymorphic
     [compare] gives int arrays, without the C call per element *)
  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Int.compare la lb
    else
      let rec go i =
        if i >= la then 0
        else
          let c = Int.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

  let hash (a : t) =
    Array.fold_left (fun acc v -> (acc * 31) + v + 1) (Array.length a) a

  let pp ppf t =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      (Array.to_list t)

  let append = Array.append

  let all ~n ~k =
    if k < 0 then invalid_arg "Tuple.all: negative arity";
    let rec go k =
      if k = 0 then [ [] ]
      else
        let rest = go (k - 1) in
        List.concat (List.init n (fun v -> List.map (fun t -> v :: t) rest))
    in
    List.map Array.of_list (go k)

  let iter_all ~n ~k f =
    if k < 0 then invalid_arg "Tuple.iter_all: negative arity";
    let buf = Array.make k 0 in
    let rec go i =
      if i = k then f (Array.sub buf 0 k)
      else
        for v = 0 to n - 1 do
          buf.(i) <- v;
          go (i + 1)
        done
    in
    go 0

  let count ~n ~k =
    if k < 0 then invalid_arg "Tuple.count: negative arity";
    if n <= 0 then Some (if k = 0 then 1 else 0)
    else begin
      let rec go acc i =
        if i = 0 then Some acc
        else if acc > max_int / n then None
        else go (acc * n) (i - 1)
      in
      go 1 k
    end

  let of_index ~n ~k i =
    if k < 0 then invalid_arg "Tuple.of_index: negative arity";
    let t = Array.make k 0 in
    let rem = ref i in
    for j = k - 1 downto 0 do
      t.(j) <- !rem mod n;
      rem := !rem / n
    done;
    t
end
