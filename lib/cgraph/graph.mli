(** Vertex-coloured graphs: the relational structures of the paper.

    A graph is a finite relational structure
    [G = (V(G), E(G), P_1(G), ..., P_c(G))] over a vocabulary
    [tau = {E, P_1, ..., P_c}] with [E] binary (symmetric, irreflexive) and
    the [P_i] unary ("colours").  Vertices are the integers
    [0 .. order g - 1].  Values of type {!t} are immutable; all operations
    that "modify" a graph return a new value (cheaply sharing adjacency
    arrays where possible). *)

type t
(** A vertex-coloured graph, stored in compressed-sparse-row form:
    adjacency is two flat Bigarray int vectors (row offsets and sorted
    targets) and each colour class carries a membership bitset, so
    neighbour scans are contiguous and colour tests are O(1). *)

type vertex = int
(** Vertices are dense integer identifiers [0 .. order g - 1]. *)

exception Invalid_vertex of int
(** Raised when a vertex id is outside [0 .. order g - 1]. *)

(** {1 Construction} *)

val create :
  n:int -> edges:(vertex * vertex) list -> colors:(string * vertex list) list -> t
(** [create ~n ~edges ~colors] builds a graph with [n] vertices, the given
    undirected edges (self-loops are rejected, duplicates are merged) and
    the given colour classes.  A colour may appear once only.
    @raise Invalid_vertex on an out-of-range endpoint.
    @raise Invalid_argument on a self-loop or duplicate colour name. *)

val of_adjacency : int list array -> (string * vertex list) list -> t
(** [of_adjacency adj colors] builds a graph from adjacency lists; the
    relation is symmetrised automatically. *)

(** {1 Basic accessors} *)

val order : t -> int
(** Number of vertices, [|V(G)|]. *)

val size : t -> int
(** Number of (undirected) edges, [|E(G)|]. *)

val vertices : t -> vertex list
(** All vertices in increasing order. *)

val neighbors : t -> vertex -> vertex array
(** Sorted array of neighbours.  The returned array must not be mutated.
    Materialises a fresh array from the CSR row; hot loops should prefer
    {!iter_neighbors} / {!fold_neighbors}, which scan the row in place. *)

val iter_neighbors : t -> vertex -> (vertex -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbour of [v] in
    increasing order, without allocating. *)

val fold_neighbors : t -> vertex -> ('a -> vertex -> 'a) -> 'a -> 'a
(** [fold_neighbors g v f init] folds [f] over the neighbours of [v] in
    increasing order, without allocating. *)

val degree : t -> vertex -> int
(** Number of neighbours. *)

val max_degree : t -> int
(** Maximum degree over all vertices ([0] for the empty graph). *)

val mem_edge : t -> vertex -> vertex -> bool
(** Edge test in time [O(log degree)]. *)

val edges : t -> (vertex * vertex) list
(** All edges as pairs [(u, v)] with [u < v], lexicographically sorted. *)

(** {1 Colours} *)

val color_names : t -> string list
(** The unary predicates of the vocabulary, sorted by name. *)

val has_color : t -> string -> vertex -> bool
(** [has_color g c v] tests [v ∈ P_c(G)].  A colour absent from the
    vocabulary holds of no vertex. *)

val color_test : t -> string -> vertex -> bool
(** [color_test g c] resolves the colour [c] once and returns its O(1)
    bitset membership test — the staged form of {!has_color} used by
    compiled evaluators.  Partially apply it outside the hot loop. *)

val color_class : t -> string -> vertex list
(** All vertices of a colour (empty if the colour is unknown). *)

val colors_of : t -> vertex -> string list
(** Sorted list of the colours holding at a vertex. *)

val with_colors : t -> (string * vertex list) list -> t
(** Colour expansion (Section 2 of the paper): add fresh colour classes.
    @raise Invalid_argument if a colour already exists. *)

val restrict_vocabulary : t -> string list -> t
(** Keep only the listed colours (the [tau]-reduct on unary predicates). *)

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Structural equality: same order, same edge set, same colour classes. *)

val uid : t -> int
(** A process-unique identity for this value, fresh per construction
    (colour expansion and vocabulary restriction also refresh it).
    Lets formula-compilation caches key on graph identity without
    structural comparison; equal uids imply {!equal} graphs, never the
    converse. *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line description. *)

val to_dot : ?name:string -> t -> string
(** GraphViz rendering (colours become vertex labels). *)

(** {1 Tuples of vertices}

    The learning problem classifies [k]-tuples of vertices; tuples are
    plain [int array]s. *)

module Tuple : sig
  type nonrec t = vertex array

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  val append : t -> t -> t
  (** Concatenation [ū·v̄], used to extend example tuples by parameters. *)

  val all : n:int -> k:int -> t list
  (** All [n^k] tuples over [{0..n-1}], lexicographically.  [k = 0] gives
      the single empty tuple. *)

  val iter_all : n:int -> k:int -> (t -> unit) -> unit
  (** [iter_all ~n ~k f] applies [f] to the same [n^k] tuples in the
      same lexicographic order as {!all}, without materialising the
      list — so a resource budget can interrupt the enumeration
      part-way.  Each call receives a fresh array. *)

  val count : n:int -> k:int -> int option
  (** [Some (n^k)], or [None] if [n^k] overflows [int].  The domain of
      {!of_index}. *)

  val of_index : n:int -> k:int -> int -> t
  (** [of_index ~n ~k i] is the [i]-th tuple of the {!all} /
      {!iter_all} enumeration ([0 <= i < n^k], unchecked) — random
      access into the lexicographic order, so a chunked parallel sweep
      enumerates exactly the sequential candidate order. *)
end
