let components g =
  let n = Graph.order g in
  let seen = Array.make n false in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let comp = ref [] in
      let queue = Queue.create () in
      seen.(v) <- true;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        comp := u :: !comp;
        Graph.iter_neighbors g u (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              Queue.add w queue
            end)
      done;
      comps := List.sort Int.compare !comp :: !comps
    end
  done;
  List.rev !comps

let is_connected g = List.length (components g) <= 1

let isolated_vertices g =
  List.filter (fun v -> Graph.degree g v = 0) (Graph.vertices g)

let degeneracy g =
  (* peel minimum-degree vertices; the largest degree at removal time *)
  let n = Graph.order g in
  if n = 0 then 0
  else begin
    let deg = Array.init n (Graph.degree g) in
    let removed = Array.make n false in
    let best = ref 0 in
    for _ = 1 to n do
      let v = ref (-1) in
      for u = 0 to n - 1 do
        if (not removed.(u)) && (!v < 0 || deg.(u) < deg.(!v)) then v := u
      done;
      best := max !best deg.(!v);
      removed.(!v) <- true;
      Graph.iter_neighbors g !v (fun w ->
          if not removed.(w) then deg.(w) <- deg.(w) - 1)
    done;
    !best
  end

let is_forest g =
  let comp_count = List.length (components g) in
  Graph.size g = Graph.order g - comp_count

let diameter g =
  List.fold_left (fun acc v -> max acc (Bfs.eccentricity g v)) 0 (Graph.vertices g)

let treewidth_exact ?(cap = 16) g =
  let n = Graph.order g in
  if n > cap then None
  else if n = 0 then Some 0
  else begin
    (* Q(S, v): vertices outside S∪{v} reachable from v through S *)
    let q s v =
      let seen = Array.make n false in
      let count = ref 0 in
      let rec dfs u =
        Graph.iter_neighbors g u (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              if s land (1 lsl w) <> 0 then dfs w
              else if w <> v then incr count
            end)
      in
      seen.(v) <- true;
      dfs v;
      !count
    in
    (* f(S) = width of the best elimination prefix on S *)
    let f = Array.make (1 lsl n) max_int in
    f.(0) <- min_int;
    for s = 1 to (1 lsl n) - 1 do
      let best = ref max_int in
      for v = 0 to n - 1 do
        if s land (1 lsl v) <> 0 then begin
          let s' = s lxor (1 lsl v) in
          if f.(s') < max_int then begin
            let cost = max f.(s') (q s' v) in
            if cost < !best then best := cost
          end
        end
      done;
      f.(s) <- !best
    done;
    Some (max 0 f.((1 lsl n) - 1))
  end

let treedepth_upper_bound g =
  if not (is_forest g) then Graph.order g
  else begin
    (* For each tree component: td(T) <= 1 + td after removing a centroid. *)
    let rec td_of_component vs =
      match vs with
      | [] -> 0
      | [ _ ] -> 1
      | _ ->
          let emb = Ops.induced g vs in
          let sub = emb.Ops.graph in
          (* centroid = vertex minimising the largest remaining component *)
          let best_v = ref 0 and best_score = ref max_int in
          List.iter
            (fun v ->
              let rest = List.filter (fun u -> u <> v) (Graph.vertices sub) in
              let emb' = Ops.induced sub rest in
              let score =
                List.fold_left
                  (fun acc c -> max acc (List.length c))
                  0
                  (components emb'.Ops.graph)
              in
              if score < !best_score then begin
                best_score := score;
                best_v := v
              end)
            (Graph.vertices sub);
          let rest = List.filter (fun u -> u <> !best_v) (Graph.vertices sub) in
          let emb' = Ops.induced sub rest in
          let deeper =
            List.fold_left
              (fun acc c ->
                max acc
                  (td_of_component
                     (List.map (fun u -> emb.Ops.of_sub (emb'.Ops.of_sub u)) c)))
              0
              (components emb'.Ops.graph)
          in
          1 + deeper
    in
    List.fold_left (fun acc c -> max acc (td_of_component c)) 0 (components g)
  end
