let induced_calls = Obs.Metric.counter "cgraph.ops.induced_calls"
let induced_h = Obs.Metric.histogram "cgraph.ops.induced_size"
let neighborhood_calls = Obs.Metric.counter "cgraph.ops.neighborhood_calls"

type embedding = {
  graph : Graph.t;
  to_sub : Graph.vertex -> Graph.vertex option;
  of_sub : Graph.vertex -> Graph.vertex;
}

let induced g s =
  Obs.Metric.incr induced_calls;
  let s = List.sort_uniq Int.compare s in
  List.iter
    (fun v -> if v < 0 || v >= Graph.order g then raise (Graph.Invalid_vertex v))
    s;
  let old_of_new = Array.of_list s in
  let m = Array.length old_of_new in
  if Obs.Sink.enabled () then Obs.Metric.observe induced_h (float_of_int m);
  let new_of_old = Hashtbl.create (2 * m) in
  Array.iteri (fun i v -> Hashtbl.replace new_of_old v i) old_of_new;
  let edges =
    List.concat_map
      (fun (i : int) ->
        let v = old_of_new.(i) in
        Graph.fold_neighbors g v
          (fun acc w ->
            match Hashtbl.find_opt new_of_old w with
            | Some j when i < j -> (i, j) :: acc
            | _ -> acc)
          []
        |> List.rev)
      (List.init m Fun.id)
  in
  let colors =
    List.map
      (fun c ->
        ( c,
          Graph.color_class g c
          |> List.filter_map (fun v -> Hashtbl.find_opt new_of_old v) ))
      (Graph.color_names g)
  in
  {
    graph = Graph.create ~n:m ~edges ~colors;
    to_sub = (fun v -> Hashtbl.find_opt new_of_old v);
    of_sub = (fun i -> old_of_new.(i));
  }

let neighborhood g ~r t =
  Obs.Metric.incr neighborhood_calls;
  induced g (Bfs.ball_tuple g ~r t)

let disjoint_union gs =
  let offsets = Array.make (List.length gs) 0 in
  let total =
    List.fold_left
      (fun (i, acc) g ->
        offsets.(i) <- acc;
        (i + 1, acc + Graph.order g))
      (0, 0) gs
    |> snd
  in
  let edges =
    List.concat (List.mapi
      (fun i g ->
        List.map (fun (u, v) -> (u + offsets.(i), v + offsets.(i))) (Graph.edges g))
      gs)
  in
  let color_tbl : (string, Graph.vertex list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun i g ->
      List.iter
        (fun c ->
          let members =
            List.map (fun v -> v + offsets.(i)) (Graph.color_class g c)
          in
          match Hashtbl.find_opt color_tbl c with
          | Some r -> r := members @ !r
          | None -> Hashtbl.replace color_tbl c (ref members))
        (Graph.color_names g))
    gs;
  let colors =
    Hashtbl.fold (fun c members acc -> (c, !members) :: acc) color_tbl []
  in
  let union = Graph.create ~n:total ~edges ~colors in
  (union, fun i v -> v + offsets.(i))

let copies g c =
  if c < 1 then invalid_arg "Ops.copies: need at least one copy";
  disjoint_union (List.init c (fun _ -> g))

let delete_edges_at g vs =
  let doomed = Array.make (Graph.order g) false in
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.order g then raise (Graph.Invalid_vertex v);
      doomed.(v) <- true)
    vs;
  let edges =
    List.filter (fun (u, v) -> not (doomed.(u) || doomed.(v))) (Graph.edges g)
  in
  let colors =
    List.map (fun c -> (c, Graph.color_class g c)) (Graph.color_names g)
  in
  Graph.create ~n:(Graph.order g) ~edges ~colors

let add_isolated g colour_sets =
  let n = Graph.order g in
  let fresh = List.mapi (fun i _ -> n + i) colour_sets in
  let color_tbl : (string, Graph.vertex list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun c -> Hashtbl.replace color_tbl c (ref (Graph.color_class g c)))
    (Graph.color_names g);
  List.iteri
    (fun i cs ->
      List.iter
        (fun c ->
          match Hashtbl.find_opt color_tbl c with
          | Some r -> r := (n + i) :: !r
          | None -> Hashtbl.replace color_tbl c (ref [ n + i ]))
        cs)
    colour_sets;
  let colors =
    Hashtbl.fold (fun c members acc -> (c, !members) :: acc) color_tbl []
  in
  let graph =
    Graph.create ~n:(n + List.length colour_sets) ~edges:(Graph.edges g) ~colors
  in
  (graph, fresh)

let subgraph_of h g =
  Graph.order h <= Graph.order g
  && List.for_all (fun (u, v) -> Graph.mem_edge g u v) (Graph.edges h)
  && List.for_all
       (fun c ->
         List.for_all (fun v -> Graph.has_color g c v) (Graph.color_class h c))
       (Graph.color_names h)
