type t = {
  order : int;
  size : int;
  max_degree : int;
  degree_histogram : (int * int) list;
  color_counts : (string * int) list;
  component_count : int;
  largest_component : int;
  smallest_component : int;
}

(* A private BFS over the CSR rows: [Bfs] reports every dequeue to
   the guard, and a planner probing the structure must not spend the
   fuel of the run it is planning. *)
let bfs_mark g seen srcs ~r ~on_visit =
  let q = Queue.create () in
  List.iter
    (fun v ->
      if not seen.(v) then begin
        seen.(v) <- true;
        on_visit v;
        Queue.add (v, 0) q
      end)
    srcs;
  while not (Queue.is_empty q) do
    let u, d = Queue.pop q in
    if d < r then
      Graph.iter_neighbors g u (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            on_visit w;
            Queue.add (w, d + 1) q
          end)
  done

let count_from g srcs ~r =
  let seen = Array.make (max 1 (Graph.order g)) false in
  let count = ref 0 in
  bfs_mark g seen srcs ~r ~on_visit:(fun _ -> incr count);
  !count

let reachable_count g srcs = count_from g srcs ~r:max_int

let ball_size g ~r srcs =
  if r < 0 then invalid_arg "Stats.ball_size: need r >= 0";
  count_from g srcs ~r

let probe g =
  let n = Graph.order g in
  let hist = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace hist d (1 + Option.value ~default:0 (Hashtbl.find_opt hist d))
  done;
  let degree_histogram =
    Hashtbl.fold (fun d c acc -> (d, c) :: acc) hist []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let color_counts =
    List.map (fun c -> (c, List.length (Graph.color_class g c))) (Graph.color_names g)
  in
  let seen = Array.make (max 1 n) false in
  let component_count = ref 0 in
  let largest = ref 0 and smallest = ref 0 in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      incr component_count;
      let sz = ref 0 in
      bfs_mark g seen [ v ] ~r:max_int ~on_visit:(fun _ -> incr sz);
      if !sz > !largest then largest := !sz;
      if !smallest = 0 || !sz < !smallest then smallest := !sz
    end
  done;
  {
    order = n;
    size = Graph.size g;
    max_degree = Graph.max_degree g;
    degree_histogram;
    color_counts;
    component_count = !component_count;
    largest_component = !largest;
    smallest_component = !smallest;
  }

let to_json t =
  Obs.Json.Obj
    [
      ("order", Obs.Json.Int t.order);
      ("size", Obs.Json.Int t.size);
      ("max_degree", Obs.Json.Int t.max_degree);
      ( "degree_histogram",
        Obs.Json.List
          (List.map
             (fun (d, c) -> Obs.Json.List [ Obs.Json.Int d; Obs.Json.Int c ])
             t.degree_histogram) );
      ( "color_counts",
        Obs.Json.Obj (List.map (fun (c, k) -> (c, Obs.Json.Int k)) t.color_counts) );
      ("component_count", Obs.Json.Int t.component_count);
      ("largest_component", Obs.Json.Int t.largest_component);
      ("smallest_component", Obs.Json.Int t.smallest_component);
    ]
