(** Cheap structure statistics for static cost planning.

    The static analyzer ([Analysis.Cost_model] / [Analysis.Plan])
    instantiates the paper's parameterized cost bounds against a handful
    of measured quantities of the input structure: order, size, the
    degree histogram, colour-class cardinalities, and (optionally) exact
    reachable-set and ball sizes around the example roots.

    Everything in this module is deliberately {e tick-free}: unlike
    {!Bfs}, the traversals here never call [Guard.tick]/[note_ball], so
    probing a structure for planning purposes cannot consume fuel from
    an installed budget or trip a cap.  All probes run in
    [O(n + m)] per BFS source set. *)

type t = {
  order : int;  (** [n = |V(G)|] *)
  size : int;  (** [m = |E(G)|] *)
  max_degree : int;  (** [Δ(G)]; bounded-degree ball envelopes use this *)
  degree_histogram : (int * int) list;
      (** [(d, count)] pairs, increasing in [d], counts summing to [n] *)
  color_counts : (string * int) list;
      (** cardinality of every colour class, sorted by colour name *)
  component_count : int;  (** number of connected components *)
  largest_component : int;  (** order of the largest component ([0] iff [n = 0]) *)
  smallest_component : int;  (** order of the smallest component ([0] iff [n = 0]) *)
}

val probe : Graph.t -> t
(** Measure the whole structure in [O(n + m)]. *)

val reachable_count : Graph.t -> Graph.vertex list -> int
(** [reachable_count g srcs] is the number of vertices reachable from
    [srcs] — exactly the number of dequeues (hence [Bfs_frontier]
    ticks) a {!Bfs.distances_multi} from the same sources performs,
    which is what makes BFS fuel statically predictable. *)

val ball_size : Graph.t -> r:int -> Graph.vertex list -> int
(** [ball_size g ~r srcs = |N_r(srcs)|], the exact size of the
    [r]-neighbourhood — tick-free, unlike [Bfs.ball] which also reports
    the size to [Guard.note_ball]. *)

val to_json : t -> Obs.Json.t
