type cover = {
  centers : Graph.vertex list;
  radius : int;
  rounds : int;
}

(* Pairwise ball-disjointness: N_R(z) and N_R(z') are disjoint iff
   dist(z, z') > 2R. *)
let balls_disjoint g ~radius zs =
  let rec go = function
    | [] -> true
    | z :: rest ->
        let d = Bfs.distances g z in
        List.for_all (fun z' -> d.(z') > 2 * radius) rest && go rest
  in
  go zs

(* Inclusion-wise maximal subset of [zs] with pairwise-disjoint R-balls:
   greedily keep a vertex if its ball avoids all kept balls. *)
let maximal_disjoint g ~radius zs =
  List.fold_left
    (fun kept z ->
      let d = Bfs.distances g z in
      if List.for_all (fun z' -> d.(z') > 2 * radius) kept then z :: kept
      else kept)
    [] zs
  |> List.rev

let covered g ~r xs ~radius zs =
  (* N_r(X) ⊆ N_R(Z) *)
  let dz = Bfs.distances_multi g zs in
  List.for_all (fun v -> dz.(v) <= radius) (Bfs.ball g ~r xs)

let cover g ~r xs =
  if r < 1 then invalid_arg "Vitali.cover: need r >= 1";
  if xs = [] then invalid_arg "Vitali.cover: empty centre set";
  let xs = List.sort_uniq Int.compare xs in
  let rec go zs radius rounds =
    if balls_disjoint g ~radius zs then
      { centers = List.sort Int.compare zs; radius; rounds }
    else
      let zs' = maximal_disjoint g ~radius zs in
      go zs' (3 * radius) (rounds + 1)
  in
  go xs r 0

let check g ~r xs c =
  let xs = List.sort_uniq Int.compare xs in
  List.for_all (fun z -> List.mem z xs) c.centers
  && balls_disjoint g ~radius:c.radius c.centers
  && covered g ~r xs ~radius:c.radius c.centers
  && (let rec pow3 i = if i = 0 then 1 else 3 * pow3 (i - 1) in
      c.radius = r * pow3 c.rounds)
  && c.rounds <= List.length xs - 1
