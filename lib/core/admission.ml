(* Static admission control: before a budgeted solver burns any fuel,
   ask the planner (Analysis.Plan) whether the declared limits are
   provably below the sound first-settle floor.  If so, the run is
   doomed to exit 4 — return the structured exhaustion immediately
   instead of spending the whole budget discovering it. *)

module Plan = Analysis.Plan

let rejections = Obs.Metric.counter "plan.precheck_rejections"

let limits_of_budget b =
  let l = Guard.Budget.limits b in
  {
    Plan.fuel = l.Guard.Budget.l_fuel;
    timeout_s = l.Guard.Budget.l_timeout_s;
    max_table = l.Guard.Budget.l_max_table;
    max_ball = l.Guard.Budget.l_max_ball;
  }

let reason_of (rej : Plan.rejection) =
  match rej.Plan.resource with
  | "max-table" -> Guard.Table_cap
  | "max-ball" -> Guard.Ball_cap
  | _ -> Guard.Out_of_fuel

(* The rejection as a Guard outcome: nothing salvaged, the tripping
   resource as the reason, zero spend (the budget was never entered). *)
let reject_outcome budget (rej : Plan.rejection) =
  Obs.Metric.incr rejections;
  Logs.info (fun m -> m "%s" rej.Plan.message);
  Guard.Exhausted
    {
      best_so_far = None;
      reason = reason_of rej;
      checkpoint = Guard.Solver_loop;
      spent = Guard.Budget.spent budget;
    }

(* [erm ?budget ~enabled ~what ~solver ...] returns [Some outcome] when
   the run must be rejected, [None] when it may proceed.  Checkpointed
   runs (an active [ckpt]) are never prechecked: a resumed run must
   replay the recorded trip bit-identically, not shortcut it. *)
let erm ?budget ?radius ?tmax ~enabled ~what ~solver g ~k ~ell ~q lam =
  match budget with
  | Some b when enabled ->
      let i = Plan.input ?radius ?tmax g ~k ~ell ~q (List.map fst lam) in
      let plan = Plan.analyze i solver in
      Option.map (reject_outcome b)
        (Plan.precheck ~what plan (limits_of_budget b))
  | _ -> None

(* Chain variant for [Degrade.learn]: reject only when every stage is
   provably doomed. *)
let degrade ?budget ?radius ~enabled ~what g ~k ~ell ~q lam =
  match budget with
  | Some b when enabled ->
      let i = Plan.input ?radius g ~k ~ell ~q (List.map fst lam) in
      Option.map (reject_outcome b)
        (Plan.precheck_chain ~what (Plan.degrade_stages i)
           (limits_of_budget b))
  | _ -> None

let model_check ?budget ~enabled ~what g phi =
  match budget with
  | Some b when enabled ->
      Option.map (reject_outcome b)
        (Plan.precheck_model_check ~what ~n:(Cgraph.Graph.order g) phi
           (limits_of_budget b))
  | _ -> None
