open Cgraph
module Types = Modelcheck.Types

(* realised local (q,r)-types of (1+ell)-tuples, as canonical types *)
let realised_types g ~ell ~q ~r =
  let ctx = Types.make_ctx g in
  Types.partition_by_ltp ctx ~q ~r
    (Graph.Tuple.all ~n:(Graph.order g) ~k:(1 + ell))
  |> List.map fst

(* the formula "ltp(x, y1..yell) ∈ {θ}": relativised Hintikka over the
   Algorithm 2 variable convention (x, y1, ..., yell) *)
let formula_of_types g ~ell ~q:_ ~r thetas =
  let colors = Graph.color_names g in
  let vars = Modelcheck.Hintikka.variables (1 + ell) in
  let rename =
    ("x1", "x")
    :: List.init ell (fun i ->
           (Printf.sprintf "x%d" (i + 2), Printf.sprintf "y%d" (i + 1)))
  in
  Fo.Formula.or_
    (List.map
       (fun theta ->
         Fo.Formula.substitute rename
           (Fo.Localize.relativize ~r ~around:vars
              (Modelcheck.Hintikka.of_type ~colors theta)))
       thetas)

(* enumerate subsets in order of increasing cardinality, skipping the
   empty set, stopping at [limit] — streamed so a budget checkpoint in
   the consumer can stop the walk before the subset lattice blows up *)
let iter_subsets_smallest_first items ~limit f =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let count = ref 0 in
  try
    for size = 1 to n do
      (* all index subsets of the given size *)
      let rec choose start acc len =
        if len = size then begin
          incr count;
          f (List.rev_map (fun i -> arr.(i)) acc);
          if !count >= limit then raise Exit
        end
        else
          for i = start to n - 1 do
            choose (i + 1) (i :: acc) (len + 1)
          done
      in
      choose 0 [] 0
    done
  with Exit -> ()

(* grows the catalogue into [acc] (newest first) so a budgeted caller
   can salvage the formulas built before a trip *)
let build g ~ell ~q ~r ~max_size acc =
  let types = realised_types g ~ell ~q ~r in
  let count = ref 0 in
  iter_subsets_smallest_first types ~limit:max_size (fun thetas ->
      incr count;
      Guard.note_catalogue !count;
      acc := formula_of_types g ~ell ~q ~r thetas :: !acc);
  List.rev !acc

let of_local_types g ~ell ~q ~r ?(max_size = 256) () =
  if ell < 0 then invalid_arg "Catalogue.of_local_types: negative ell";
  build g ~ell ~q ~r ~max_size (ref [])

let of_local_types_budgeted ?budget g ~ell ~q ~r ?(max_size = 256) () =
  if ell < 0 then invalid_arg "Catalogue.of_local_types: negative ell";
  let acc = ref [] in
  Guard.run ?budget
    ~salvage:(fun () ->
      match !acc with [] -> None | fs -> Some (List.rev fs))
    (fun () -> build g ~ell ~q ~r ~max_size acc)

let positive_types_only g ~ell ~q ~r =
  List.map
    (fun theta -> formula_of_types g ~ell ~q ~r [ theta ])
    (realised_types g ~ell ~q ~r)
