(** Automatic hypothesis catalogues for the realisable learner.

    Algorithm 2 (Proposition 12) iterates over the {e full} finite set of
    quantifier-rank-[q] formulas in normal form — feasible in theory,
    tower-sized in practice.  This module generates the part of that
    catalogue that can matter on a given background graph: by
    Corollary 6, every rank-[q] hypothesis classifies by its local
    [(q,r)]-type, so the catalogue of all {e realised-type-set}
    hypotheses is complete for the graph at hand.  Formulas are
    materialised as relativised Hintikka disjunctions over the standard
    variables [x, y1, ..., yℓ] — exactly the shape
    {!Erm_realizable.solve} consumes. *)

open Cgraph

val of_local_types :
  Graph.t -> ell:int -> q:int -> r:int -> ?max_size:int -> unit -> Fo.Formula.t list
(** All hypothesis formulas [φ(x; y1..yℓ)] of the form "the local
    [(q,r)]-type of [(x, ȳ)] belongs to Θ", for every subset Θ of the
    types realised in the graph — capped at [max_size] formulas (default
    256).  Subsets are enumerated smallest-first, so low-complexity
    hypotheses come first and the astronomical tail of the subset
    lattice is never materialised. *)

val positive_types_only :
  Graph.t -> ell:int -> q:int -> r:int -> Fo.Formula.t list
(** The singleton-type catalogue only (one formula per realised class):
    linear in the number of classes, often enough for realisable
    targets that are a single type. *)

val of_local_types_budgeted :
  ?budget:Guard.Budget.t ->
  Graph.t -> ell:int -> q:int -> r:int -> ?max_size:int -> unit ->
  Fo.Formula.t list Guard.outcome
(** {!of_local_types} under a resource budget (checkpoint class
    [Catalogue_growth], cap [max_catalogue]).  On exhaustion,
    [best_so_far] holds the formulas built before the trip — a valid,
    smaller catalogue (smallest-first order means the low-complexity
    hypotheses survive). *)
