type attempt = {
  solver : string;
  q : int;
  reason : Guard.reason;
  checkpoint : Guard.checkpoint;
  spent : Guard.spent;
}

type learned = {
  hypothesis : Hypothesis.t;
  err : float;
  solver : string;
  q_used : int;
  degraded : bool;
  attempts : attempt list;
}

let degradations = Obs.Metric.counter "degrade.stages_tried"

let combine_spent (a : Guard.spent) (b : Guard.spent) : Guard.spent =
  {
    fuel = a.fuel + b.fuel;
    elapsed_ns = (if Int64.compare a.elapsed_ns b.elapsed_ns >= 0 then a.elapsed_ns else b.elapsed_ns);
    table_rows = max a.table_rows b.table_rows;
    ball_peak = max a.ball_peak b.ball_peak;
    catalogue_entries = max a.catalogue_entries b.catalogue_entries;
  }

(* Keep whichever salvaged hypothesis has the lower empirical error;
   ties go to the earlier (richer-class) stage. *)
let better old cand =
  match (old, cand) with
  | None, c -> c
  | o, None -> o
  | Some (_, err_o, _, _), Some (_, err_c, _, _) ->
      if err_c < err_o then cand else old

let learn_chain ?budget ?radius g ~k ~ell ~q lam =
  match budget with
  | None ->
      let r = Erm_local.solve ?radius g ~k ~ell ~q lam in
      Guard.Complete
        {
          hypothesis = r.Erm_local.hypothesis;
          err = r.Erm_local.err;
          solver = "local";
          q_used = q;
          degraded = false;
          attempts = [];
        }
  | Some b ->
      let attempts = ref [] in
      let salvaged = ref None in
      let note_attempt solver q (e : _) =
        match e with
        | Guard.Complete _ -> ()
        | Guard.Exhausted { reason; checkpoint; spent; _ } ->
            attempts := { solver; q; reason; checkpoint; spent } :: !attempts
      in
      let finish_complete ~solver ~q_used ~degraded hypothesis err =
        Guard.Complete
          {
            hypothesis;
            err;
            solver;
            q_used;
            degraded;
            attempts = List.rev !attempts;
          }
      in
      Obs.Metric.incr degradations;
      (* admission over the whole chain is decided once in [learn];
         the per-stage calls must burn real fuel so salvage and spend
         aggregation keep their pre-admission semantics *)
      let first =
        Erm_local.solve_budgeted ~budget:(Guard.Budget.for_stage b)
          ~precheck:false ?radius g ~k ~ell ~q lam
      in
      note_attempt "local" q first;
      (match first with
      | Guard.Complete r ->
          finish_complete ~solver:"local" ~q_used:q ~degraded:false
            r.Erm_local.hypothesis r.Erm_local.err
      | Guard.Exhausted { best_so_far; _ } ->
          (match best_so_far with
          | Some r ->
              salvaged :=
                better !salvaged
                  (Some (r.Erm_local.hypothesis, r.Erm_local.err, "local", q))
          | None -> ());
          (* fall back: exact brute-force ERM at strictly smaller
             quantifier rank, one fresh stage per rank, all racing the
             same absolute deadline *)
          let rec fallback q' =
            if q' < 0 then
              let reason, checkpoint, spent =
                match !attempts with
                | { reason; checkpoint; spent; _ } :: rest ->
                    ( reason,
                      checkpoint,
                      List.fold_left
                        (fun acc (a : attempt) -> combine_spent acc a.spent)
                        spent rest )
                | [] -> assert false (* the first stage always records *)
              in
              Guard.Exhausted
                {
                  best_so_far =
                    Option.map
                      (fun (hypothesis, err, solver, q_used) ->
                        {
                          hypothesis;
                          err;
                          solver;
                          q_used;
                          degraded = true;
                          attempts = List.rev !attempts;
                        })
                      !salvaged;
                  reason;
                  checkpoint;
                  spent;
                }
            else begin
              Obs.Metric.incr degradations;
              let o =
                Erm_brute.solve_budgeted ~budget:(Guard.Budget.for_stage b)
                  ~precheck:false g ~k ~ell ~q:q' lam
              in
              note_attempt "brute" q' o;
              match o with
              | Guard.Complete r ->
                  finish_complete ~solver:"brute" ~q_used:q' ~degraded:true
                    r.Erm_brute.hypothesis r.Erm_brute.err
              | Guard.Exhausted { best_so_far; _ } ->
                  (match best_so_far with
                  | Some r ->
                      salvaged :=
                        better !salvaged
                          (Some
                             ( r.Erm_brute.hypothesis,
                               r.Erm_brute.err,
                               "brute",
                               q' ))
                  | None -> ());
                  fallback (q' - 1)
            end
          in
          fallback (q - 1))

let learn ?budget ?(precheck = true) ?radius g ~k ~ell ~q lam =
  match
    Admission.degrade ?budget ?radius ~enabled:precheck ~what:"Degrade.learn" g
      ~k ~ell ~q lam
  with
  | Some rejected -> rejected
  | None -> learn_chain ?budget ?radius g ~k ~ell ~q lam
