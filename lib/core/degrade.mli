(** Graceful degradation for the learning pipeline.

    The paper's parameters are brutally expensive: the Gaifman radius
    of {!Erm_local} grows like [7^q], so a budget trip at the requested
    rank is common.  Rather than give up, the chain falls back to
    {!Erm_brute} at strictly smaller quantifier rank — a coarser but
    cheaper hypothesis class — one fresh budget stage per rank
    ({!Guard.Budget.for_stage}: fresh fuel and cap counters, the same
    absolute wall-clock deadline), until a stage completes or rank 0 is
    exhausted too.

    The chain is sound for the paper's agnostic ERM semantics: every
    answer is a genuine hypothesis with its true empirical error, only
    the min-error certificate weakens (from "optimal over
    [H_{k,l,q}]" to "optimal over the class of the stage that
    completed", or — for [best_so_far] — "best seen before the
    budget ran out"). *)



(** One budget-exhausted stage of the chain (for diagnostics). *)
type attempt = {
  solver : string;  (** ["local"] or ["brute"] *)
  q : int;  (** quantifier rank the stage attempted *)
  reason : Guard.reason;
  checkpoint : Guard.checkpoint;
  spent : Guard.spent;
}

type learned = {
  hypothesis : Hypothesis.t;
  err : float;  (** empirical error of [hypothesis] on the sample *)
  solver : string;  (** solver of the stage that produced it *)
  q_used : int;  (** quantifier rank of the producing stage *)
  degraded : bool;  (** [true] iff a fallback stage answered *)
  attempts : attempt list;  (** exhausted stages, in attempt order *)
}

val learn :
  ?budget:Guard.Budget.t ->
  ?precheck:bool ->
  ?radius:int ->
  Cgraph.Graph.t -> k:int -> ell:int -> q:int -> Sample.t -> learned Guard.outcome
(** [learn ?budget g ~k ~ell ~q lam] runs {!Erm_local.solve} at rank
    [q]; on budget exhaustion it degrades to {!Erm_brute.solve} at
    ranks [q-1, q-2, ..., 0].  [Complete] means some stage finished
    ([degraded] tells which kind); [Exhausted] means every stage
    tripped, with [best_so_far] the lowest-error hypothesis salvaged
    from any stage.  Without [budget] this is exactly
    {!Erm_local.solve}.

    [precheck] (default [true]) runs the static admission precheck of
    {!Analysis.Plan} over the whole degradation chain: the call is
    rejected up front only when {e every} stage is provably unable to
    settle its first candidate within the per-stage budget — see
    {!Erm_brute.solve_budgeted}. *)
