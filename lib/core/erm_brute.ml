open Cgraph
module Types = Modelcheck.Types

type result = {
  hypothesis : Hypothesis.t;
  err : float;
  params_tried : int;
}

(* shared across the four solvers: one increment per candidate
   hypothesis considered (parameter tuple / catalogue formula / leaf) *)
let hypotheses_enumerated = Obs.Metric.counter "erm.hypotheses_enumerated"
let consistency_checks = Obs.Metric.counter "erm.consistency_checks"

let check_arity ~k lam =
  Analysis.Guard.require ~what:"Erm_brute"
    (Analysis.Guard.sample_arity ~k (List.map fst lam))

(* Best type-set for fixed parameters: majority vote per q-type class of
   v̄·w̄.  Returns (positive type list, number of errors). *)
let majority_types ctx ~q ~params lam =
  let votes : (Types.ty, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v, label) ->
      let t = Types.tp ctx ~q (Graph.Tuple.append v params) in
      let pos, neg =
        match Hashtbl.find_opt votes t with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0) in
            Hashtbl.replace votes t cell;
            cell
      in
      if label then incr pos else incr neg)
    lam;
  Hashtbl.fold
    (fun t (pos, neg) (chosen, errs) ->
      if !pos > !neg then (t :: chosen, errs + !neg) else (chosen, errs + !pos))
    votes ([], 0)

let solve_for_params_ctx ctx g ~k ~q ~params lam =
  check_arity ~k lam;
  let chosen, errs = majority_types ctx ~q ~params lam in
  let hypothesis = Hypothesis.of_types g ~k ~q ~types:chosen ~params in
  let err =
    match lam with
    | [] -> 0.0
    | _ -> float_of_int errs /. float_of_int (Sample.size lam)
  in
  { hypothesis; err; params_tried = 1 }

let solve_for_params g ~k ~q ~params lam =
  solve_for_params_ctx (Types.make_ctx g) g ~k ~q ~params lam

(* One standalone slice of the candidate sweep, for an out-of-process
   fleet worker: fresh type context, the same per-candidate tick and
   counter discipline as the in-process sweep, local (errors, index)
   lex-min over [lo, hi).  Only the key is returned — the coordinator
   recovers the winning hypothesis by re-evaluating the best index
   with {!solve_for_params}, exactly like a checkpoint resume. *)
let eval_range g ~k ~ell ~q lam ~lo ~hi =
  check_arity ~k lam;
  let n = Graph.order g in
  let ctx = Types.make_ctx g in
  let best = ref None in
  for i = lo to hi - 1 do
    Guard.tick Guard.Solver_loop;
    Obs.Metric.incr hypotheses_enumerated;
    Obs.Metric.incr consistency_checks;
    let params = Graph.Tuple.of_index ~n ~k:ell i in
    let _, errs = majority_types ctx ~q ~params lam in
    match !best with
    | Some (_, best_errs) when best_errs <= errs -> ()
    | _ -> best := Some (i, errs)
  done;
  !best

(* The candidate store shared between the solver body and the salvage
   hook of [solve_budgeted].  [best] carries the candidate's index in
   the enumeration order: the winner is the lexicographic minimum of
   (errors, index), which is exactly the sequential first-best rule and
   — being a minimum — is independent of the order in which parallel
   chunks merge into it. *)
type progress = {
  tried : int ref;
  best : (int * Graph.Tuple.t * Types.ty list * int) option ref;
      (* (candidate index, params, chosen types, errors) *)
  merge : Mutex.t;
}

let fresh_progress () =
  { tried = ref 0; best = ref None; merge = Mutex.create () }

(* [(errs, idx)]-lex merge; assumes [st.merge] is held (or the run is
   sequential). *)
let consider st idx params chosen errs =
  match !(st.best) with
  | Some (bidx, _, _, berrs)
    when berrs < errs || (berrs = errs && bidx <= idx) ->
      ()
  | _ -> st.best := Some (idx, params, chosen, errs)

(* the checkpoint controller's view of the best: (index, error count) *)
let best_key st =
  match !(st.best) with Some (i, _, _, e) -> Some (i, e) | None -> None

let finish g ~k ~q lam st =
  match !(st.best) with
  | Some (_, params, chosen, errs) ->
      {
        hypothesis = Hypothesis.of_types g ~k ~q ~types:chosen ~params;
        err =
          (match lam with
          | [] -> 0.0
          | _ -> float_of_int errs /. float_of_int (Sample.size lam));
        params_tried = !(st.tried);
      }
  | None ->
      (* ell >= 1 on the empty graph: H is empty unless there are no
         examples; fall back to a constant hypothesis. *)
      {
        hypothesis = Hypothesis.constantly g ~k false;
        err = Sample.error_of (fun _ -> false) lam;
        params_tried = !(st.tried);
      }

(* The enumeration core, shared by [solve] and [solve_budgeted].  It
   streams candidate tuples (no materialised [n^ell] list) so an
   ambient budget can interrupt it at any checkpoint, and keeps the
   best candidate in [st] so the budgeted entry can salvage it.

   With a pool of size > 1 the candidate range is swept in chunks, one
   [Types] context per chunk (the memo tables are not shared between
   domains); each finished chunk merges its local (errs, idx)-best into
   [st] under [st.merge], so the final — and any salvaged — winner is
   the same candidate the sequential sweep keeps.

   [ckpt] threads the resume cursor: candidates below it still tick
   the budget, bump the obs counters and count as tried — so a resumed
   run's telemetry equals the uninterrupted one — but skip the
   majority vote, except the recorded best index (re-evaluated to
   recover the winning types).  Settled ranges are reported back so
   the cadence writer can snapshot the frontier. *)
let solve_body ?pool ?(ckpt = Resil.Ctl.none) g ~k ~ell ~q lam st =
  Analysis.Guard.require ~what:"Erm_brute.solve"
    (Analysis.Guard.budgets ~ell ~q ~k ());
  check_arity ~k lam;
  let n = Graph.order g in
  let pool = match pool with Some p -> p | None -> Par.default () in
  let total = Graph.Tuple.count ~n ~k:ell in
  match total with
  | Some total when Par.Pool.size pool > 1 && total > 1 ->
      Par.map_reduce_chunks pool ~n:total
        ~map:(fun lo hi ->
          let ctx = Types.make_ctx g in
          let local = ref None in
          for i = lo to hi - 1 do
            Guard.tick Guard.Solver_loop;
            Obs.Metric.incr hypotheses_enumerated;
            Obs.Metric.incr consistency_checks;
            if Resil.Ctl.should_eval ckpt i then begin
              let params = Graph.Tuple.of_index ~n ~k:ell i in
              let chosen, errs = majority_types ctx ~q ~params lam in
              match !local with
              | Some (_, _, _, best_errs) when best_errs <= errs -> ()
              | _ -> local := Some (i, params, chosen, errs)
            end
          done;
          (* merge as soon as the chunk completes so a later budget trip
             can still salvage it *)
          Mutex.lock st.merge;
          st.tried := !(st.tried) + (hi - lo);
          (match !local with
          | Some (i, params, chosen, errs) -> consider st i params chosen errs
          | None -> ());
          Resil.Ctl.chunk_done ckpt ~lo ~hi ~best:(best_key st);
          Mutex.unlock st.merge)
        ~reduce:(fun () () -> ())
        ~init:() ();
      finish g ~k ~q lam st
  | _ ->
      (* sequential sweep (also the fallback if n^ell overflows int) *)
      let ctx = Types.make_ctx g in
      let idx = ref 0 in
      Graph.Tuple.iter_all ~n ~k:ell (fun params ->
          Guard.tick Guard.Solver_loop;
          incr st.tried;
          Obs.Metric.incr hypotheses_enumerated;
          Obs.Metric.incr consistency_checks;
          let i = !idx in
          if Resil.Ctl.should_eval ckpt i then begin
            let chosen, errs = majority_types ctx ~q ~params lam in
            consider st i params chosen errs
          end;
          Resil.Ctl.chunk_done ckpt ~lo:i ~hi:(i + 1) ~best:(best_key st);
          incr idx);
      finish g ~k ~q lam st

let solve ?pool g ~k ~ell ~q lam =
  Obs.Span.with_ "erm_brute.solve"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q) ]
  @@ fun () ->
  solve_body ?pool g ~k ~ell ~q lam (fresh_progress ())

let solve_budgeted ?budget ?(precheck = true) ?pool ?(ckpt = Resil.Ctl.none) g
    ~k ~ell ~q lam =
  Obs.Span.with_ "erm_brute.solve_budgeted"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q) ]
  @@ fun () ->
  match
    Admission.erm ?budget
      ~enabled:(precheck && not (Resil.Ctl.active ckpt))
      ~what:"Erm_brute" ~solver:Analysis.Plan.Brute g ~k ~ell ~q lam
  with
  | Some rejected -> rejected
  | None ->
      let st = fresh_progress () in
      Resil.Ctl.with_attached ckpt @@ fun () ->
      Guard.run ?budget
        ~salvage:(fun () ->
          (* Only salvage if at least one candidate finished evaluating;
             the constant fallback would not be "best seen so far". *)
          match !(st.best) with
          | None -> None
          | Some _ -> Some (finish g ~k ~q lam st))
        (fun () -> solve_body ?pool ~ckpt g ~k ~ell ~q lam st)

let optimal_error g ~k ~ell ~q lam = (solve g ~k ~ell ~q lam).err
