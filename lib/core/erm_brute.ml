open Cgraph
module Types = Modelcheck.Types

type result = {
  hypothesis : Hypothesis.t;
  err : float;
  params_tried : int;
}

(* shared across the four solvers: one increment per candidate
   hypothesis considered (parameter tuple / catalogue formula / leaf) *)
let hypotheses_enumerated = Obs.Metric.counter "erm.hypotheses_enumerated"
let consistency_checks = Obs.Metric.counter "erm.consistency_checks"

let check_arity ~k lam =
  Analysis.Guard.require ~what:"Erm_brute"
    (Analysis.Guard.sample_arity ~k (List.map fst lam))

(* Best type-set for fixed parameters: majority vote per q-type class of
   v̄·w̄.  Returns (positive type list, number of errors). *)
let majority_types ctx ~q ~params lam =
  let votes : (Types.ty, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v, label) ->
      let t = Types.tp ctx ~q (Graph.Tuple.append v params) in
      let pos, neg =
        match Hashtbl.find_opt votes t with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0) in
            Hashtbl.replace votes t cell;
            cell
      in
      if label then incr pos else incr neg)
    lam;
  Hashtbl.fold
    (fun t (pos, neg) (chosen, errs) ->
      if !pos > !neg then (t :: chosen, errs + !neg) else (chosen, errs + !pos))
    votes ([], 0)

let solve_for_params_ctx ctx g ~k ~q ~params lam =
  check_arity ~k lam;
  let chosen, errs = majority_types ctx ~q ~params lam in
  let hypothesis = Hypothesis.of_types g ~k ~q ~types:chosen ~params in
  let err =
    match lam with
    | [] -> 0.0
    | _ -> float_of_int errs /. float_of_int (Sample.size lam)
  in
  { hypothesis; err; params_tried = 1 }

let solve_for_params g ~k ~q ~params lam =
  solve_for_params_ctx (Types.make_ctx g) g ~k ~q ~params lam

let finish g ~k ~q lam ~tried best =
  match best with
  | Some (params, chosen, errs) ->
      {
        hypothesis = Hypothesis.of_types g ~k ~q ~types:chosen ~params;
        err =
          (match lam with
          | [] -> 0.0
          | _ -> float_of_int errs /. float_of_int (Sample.size lam));
        params_tried = tried;
      }
  | None ->
      (* ell >= 1 on the empty graph: H is empty unless there are no
         examples; fall back to a constant hypothesis. *)
      {
        hypothesis = Hypothesis.constantly g ~k false;
        err = Sample.error_of (fun _ -> false) lam;
        params_tried = tried;
      }

(* The enumeration core, shared by [solve] and [solve_budgeted].  It
   streams candidate tuples (no materialised [n^ell] list) so an
   ambient budget can interrupt it at any checkpoint, and keeps the
   best candidate in [best] so the budgeted entry can salvage it. *)
let solve_body g ~k ~ell ~q lam ~tried ~best =
  Analysis.Guard.require ~what:"Erm_brute.solve"
    (Analysis.Guard.budgets ~ell ~q ~k ());
  check_arity ~k lam;
  let ctx = Types.make_ctx g in
  Graph.Tuple.iter_all ~n:(Graph.order g) ~k:ell (fun params ->
      Guard.tick Guard.Solver_loop;
      incr tried;
      Obs.Metric.incr hypotheses_enumerated;
      Obs.Metric.incr consistency_checks;
      let chosen, errs = majority_types ctx ~q ~params lam in
      match !best with
      | Some (_, _, best_errs) when best_errs <= errs -> ()
      | _ -> best := Some (params, chosen, errs));
  finish g ~k ~q lam ~tried:!tried !best

let solve g ~k ~ell ~q lam =
  Obs.Span.with_ "erm_brute.solve"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q) ]
  @@ fun () ->
  solve_body g ~k ~ell ~q lam ~tried:(ref 0) ~best:(ref None)

let solve_budgeted ?budget g ~k ~ell ~q lam =
  Obs.Span.with_ "erm_brute.solve_budgeted"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q) ]
  @@ fun () ->
  let tried = ref 0 and best = ref None in
  Guard.run ?budget
    ~salvage:(fun () ->
      (* Only salvage if at least one candidate finished evaluating;
         the constant fallback would not be "best seen so far". *)
      match !best with
      | None -> None
      | Some _ -> Some (finish g ~k ~q lam ~tried:!tried !best))
    (fun () -> solve_body g ~k ~ell ~q lam ~tried ~best)

let optimal_error g ~k ~ell ~q lam = (solve g ~k ~ell ~q lam).err
