(** Exact empirical risk minimisation over [H_{k,ℓ,q}(G)]
    (Proposition 11 / Algorithm 1 of the paper).

    For every parameter tuple [w̄ ∈ V(G)^ℓ] (the [n^ℓ] factor of the
    proposition), the best quantifier-rank-[q] formula classifies examples
    by their [q]-type class of [v̄·w̄] (Corollary 6); the optimum for fixed
    [w̄] is therefore majority vote per type class.  This replaces
    Algorithm 1's "for all φ' ∈ Φ'" loop over the (tower-sized) normal-form
    catalogue by an equivalent exact computation — the substitution
    documented in DESIGN.md §5 — and returns a genuine witness formula
    (Hintikka disjunction) of quantifier rank [q].

    The result is an {e exact} minimiser: [err_Λ = ε*], not just
    [ε* + ε]. *)

open Cgraph

type result = {
  hypothesis : Hypothesis.t;
  err : float;  (** the optimal training error [ε*] *)
  params_tried : int;  (** [n^ℓ], for the complexity experiments *)
}

val solve :
  ?pool:Par.Pool.t -> Graph.t -> k:int -> ell:int -> q:int -> Sample.t -> result
(** Exact ERM.  Cost [O(n^ℓ · m)] type computations of rank [q] on
    [(k+ℓ)]-tuples.  [pool] (default {!Par.default}) sweeps the [n^ℓ]
    candidate tuples in parallel chunks; the result is bit-identical to
    the sequential sweep — the winner is the (errors, candidate index)
    lexicographic minimum either way.
    @raise Invalid_argument if an example has arity other than [k]. *)

val solve_budgeted :
  ?budget:Guard.Budget.t ->
  ?precheck:bool ->
  ?pool:Par.Pool.t ->
  ?ckpt:Resil.Ctl.t ->
  Graph.t -> k:int -> ell:int -> q:int -> Sample.t -> result Guard.outcome
(** {!solve} under a resource budget.  [Complete r] is exactly the
    unbudgeted result; on exhaustion, [best_so_far] is the best
    hypothesis among the candidates that finished evaluating (with its
    empirical error), or [None] if none did — still a sound hypothesis
    under the agnostic semantics, only without the min-error
    certificate.

    [ckpt] (default inert) threads a checkpoint controller: settled
    candidate ranges are reported for cadence snapshots, and on resume
    candidates below the snapshot cursor are replay-skipped — ticked
    and counted, but not re-evaluated, except the recorded best index.
    The result is bit-identical to an uninterrupted run.

    [precheck] (default [true]) runs the static admission precheck of
    {!Analysis.Plan} first: if the declared budget is provably below
    the sound lower bound for settling even one candidate, the call
    returns [Exhausted] immediately — same constructor an actual run
    would produce, but with zero fuel burnt.  Checkpoint-resumed runs
    skip the precheck so resume replays bit-identically.  Pass [false]
    (the CLI's [--no-precheck]) to always burn real fuel. *)

val optimal_error : Graph.t -> k:int -> ell:int -> q:int -> Sample.t -> float
(** Just [ε* = min_{h ∈ H_{k,ℓ,q}} err_Λ(h)]. *)

val solve_for_params :
  Graph.t -> k:int -> q:int -> params:Graph.Tuple.t -> Sample.t -> result
(** The inner loop: best hypothesis for one fixed parameter tuple. *)

val eval_range :
  Graph.t ->
  k:int ->
  ell:int ->
  q:int ->
  Sample.t ->
  lo:int ->
  hi:int ->
  (int * int) option
(** One standalone slice of the candidate sweep, for an out-of-process
    fleet worker: the [(index, errors)] lex-min over candidates
    [\[lo, hi)], computed with a fresh type context and the same
    per-candidate [Guard] tick and obs-counter discipline as {!solve}.
    The winning hypothesis is recovered from the returned index with
    {!solve_for_params} — the same mechanism a checkpoint resume uses,
    so the assembled result is bit-identical to the sequential run. *)
