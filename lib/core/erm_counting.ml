open Cgraph
module C = Modelcheck.Ctypes

type result = {
  hypothesis : Hypothesis.t;
  err : float;
  params_tried : int;
}

let hypotheses_enumerated = Obs.Metric.counter "erm.hypotheses_enumerated"
let consistency_checks = Obs.Metric.counter "erm.consistency_checks"

let check_arity ~k lam =
  Analysis.Guard.require ~what:"Erm_counting"
    (Analysis.Guard.sample_arity ~k (List.map fst lam))

let majority ctx ~q ~tmax ~params lam =
  let votes : (C.ty, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v, label) ->
      let t = C.ctp ctx ~q ~tmax (Graph.Tuple.append v params) in
      let pos, neg =
        match Hashtbl.find_opt votes t with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0) in
            Hashtbl.replace votes t cell;
            cell
      in
      if label then incr pos else incr neg)
    lam;
  Hashtbl.fold
    (fun t (pos, neg) (chosen, errs) ->
      if !pos > !neg then (t :: chosen, errs + !neg) else (chosen, errs + !pos))
    votes ([], 0)

let finish g ~k ~q ~tmax lam ~tried best =
  match best with
  | Some (params, chosen, errs) ->
      {
        hypothesis =
          Hypothesis.of_counting_types g ~k ~q ~tmax ~types:chosen ~params;
        err =
          (match lam with
          | [] -> 0.0
          | _ -> float_of_int errs /. float_of_int (Sample.size lam));
        params_tried = tried;
      }
  | None ->
      {
        hypothesis = Hypothesis.constantly g ~k false;
        err = Sample.error_of (fun _ -> false) lam;
        params_tried = tried;
      }

let solve_body g ~k ~ell ~q ~tmax lam ~tried ~best =
  Analysis.Guard.require ~what:"Erm_counting.solve"
    (Analysis.Guard.budgets ~ell ~q ~tmax ~k ());
  check_arity ~k lam;
  let ctx = C.make_ctx g in
  Graph.Tuple.iter_all ~n:(Graph.order g) ~k:ell (fun params ->
      Guard.tick Guard.Solver_loop;
      incr tried;
      Obs.Metric.incr hypotheses_enumerated;
      Obs.Metric.incr consistency_checks;
      let chosen, errs = majority ctx ~q ~tmax ~params lam in
      match !best with
      | Some (_, _, best_errs) when best_errs <= errs -> ()
      | _ -> best := Some (params, chosen, errs));
  finish g ~k ~q ~tmax lam ~tried:!tried !best

let solve g ~k ~ell ~q ~tmax lam =
  Obs.Span.with_ "erm_counting.solve"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q); ("tmax", string_of_int tmax) ]
  @@ fun () ->
  solve_body g ~k ~ell ~q ~tmax lam ~tried:(ref 0) ~best:(ref None)

let solve_budgeted ?budget g ~k ~ell ~q ~tmax lam =
  Obs.Span.with_ "erm_counting.solve_budgeted"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q); ("tmax", string_of_int tmax) ]
  @@ fun () ->
  let tried = ref 0 and best = ref None in
  Guard.run ?budget
    ~salvage:(fun () ->
      match !best with
      | None -> None
      | Some _ -> Some (finish g ~k ~q ~tmax lam ~tried:!tried !best))
    (fun () -> solve_body g ~k ~ell ~q ~tmax lam ~tried ~best)

let optimal_error g ~k ~ell ~q ~tmax lam = (solve g ~k ~ell ~q ~tmax lam).err
