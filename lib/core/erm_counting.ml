open Cgraph
module C = Modelcheck.Ctypes

type result = {
  hypothesis : Hypothesis.t;
  err : float;
  params_tried : int;
}

let hypotheses_enumerated = Obs.Metric.counter "erm.hypotheses_enumerated"
let consistency_checks = Obs.Metric.counter "erm.consistency_checks"

let check_arity ~k lam =
  Analysis.Guard.require ~what:"Erm_counting"
    (Analysis.Guard.sample_arity ~k (List.map fst lam))

let majority ctx ~q ~tmax ~params lam =
  let votes : (C.ty, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v, label) ->
      let t = C.ctp ctx ~q ~tmax (Graph.Tuple.append v params) in
      let pos, neg =
        match Hashtbl.find_opt votes t with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0) in
            Hashtbl.replace votes t cell;
            cell
      in
      if label then incr pos else incr neg)
    lam;
  Hashtbl.fold
    (fun t (pos, neg) (chosen, errs) ->
      if !pos > !neg then (t :: chosen, errs + !neg) else (chosen, errs + !pos))
    votes ([], 0)

(* Fixed-parameter solve and the standalone sweep slice, mirroring
   [Erm_brute]; both serve the fleet worker/coordinator split. *)
let solve_for_params g ~k ~q ~tmax ~params lam =
  check_arity ~k lam;
  let ctx = C.make_ctx g in
  let chosen, errs = majority ctx ~q ~tmax ~params lam in
  let hypothesis =
    Hypothesis.of_counting_types g ~k ~q ~tmax ~types:chosen ~params
  in
  let err =
    match lam with
    | [] -> 0.0
    | _ -> float_of_int errs /. float_of_int (Sample.size lam)
  in
  { hypothesis; err; params_tried = 1 }

let eval_range g ~k ~ell ~q ~tmax lam ~lo ~hi =
  check_arity ~k lam;
  let n = Graph.order g in
  let ctx = C.make_ctx g in
  let best = ref None in
  for i = lo to hi - 1 do
    Guard.tick Guard.Solver_loop;
    Obs.Metric.incr hypotheses_enumerated;
    Obs.Metric.incr consistency_checks;
    let params = Graph.Tuple.of_index ~n ~k:ell i in
    let _, errs = majority ctx ~q ~tmax ~params lam in
    match !best with
    | Some (_, best_errs) when best_errs <= errs -> ()
    | _ -> best := Some (i, errs)
  done;
  !best

(* Candidate store shared with the salvage hook; see [Erm_brute] for
   the (errors, index)-lex determinism argument. *)
type progress = {
  tried : int ref;
  best : (int * Graph.Tuple.t * C.ty list * int) option ref;
  merge : Mutex.t;
}

let fresh_progress () =
  { tried = ref 0; best = ref None; merge = Mutex.create () }

let consider st idx params chosen errs =
  match !(st.best) with
  | Some (bidx, _, _, berrs)
    when berrs < errs || (berrs = errs && bidx <= idx) ->
      ()
  | _ -> st.best := Some (idx, params, chosen, errs)

let best_key st =
  match !(st.best) with Some (i, _, _, e) -> Some (i, e) | None -> None

let finish g ~k ~q ~tmax lam st =
  match !(st.best) with
  | Some (_, params, chosen, errs) ->
      {
        hypothesis =
          Hypothesis.of_counting_types g ~k ~q ~tmax ~types:chosen ~params;
        err =
          (match lam with
          | [] -> 0.0
          | _ -> float_of_int errs /. float_of_int (Sample.size lam));
        params_tried = !(st.tried);
      }
  | None ->
      {
        hypothesis = Hypothesis.constantly g ~k false;
        err = Sample.error_of (fun _ -> false) lam;
        params_tried = !(st.tried);
      }

let solve_body ?pool ?(ckpt = Resil.Ctl.none) g ~k ~ell ~q ~tmax lam st =
  Analysis.Guard.require ~what:"Erm_counting.solve"
    (Analysis.Guard.budgets ~ell ~q ~tmax ~k ());
  check_arity ~k lam;
  let n = Graph.order g in
  let pool = match pool with Some p -> p | None -> Par.default () in
  let total = Graph.Tuple.count ~n ~k:ell in
  match total with
  | Some total when Par.Pool.size pool > 1 && total > 1 ->
      Par.map_reduce_chunks pool ~n:total
        ~map:(fun lo hi ->
          let ctx = C.make_ctx g in
          let local = ref None in
          for i = lo to hi - 1 do
            Guard.tick Guard.Solver_loop;
            Obs.Metric.incr hypotheses_enumerated;
            Obs.Metric.incr consistency_checks;
            if Resil.Ctl.should_eval ckpt i then begin
              let params = Graph.Tuple.of_index ~n ~k:ell i in
              let chosen, errs = majority ctx ~q ~tmax ~params lam in
              match !local with
              | Some (_, _, _, best_errs) when best_errs <= errs -> ()
              | _ -> local := Some (i, params, chosen, errs)
            end
          done;
          Mutex.lock st.merge;
          st.tried := !(st.tried) + (hi - lo);
          (match !local with
          | Some (i, params, chosen, errs) -> consider st i params chosen errs
          | None -> ());
          Resil.Ctl.chunk_done ckpt ~lo ~hi ~best:(best_key st);
          Mutex.unlock st.merge)
        ~reduce:(fun () () -> ())
        ~init:() ();
      finish g ~k ~q ~tmax lam st
  | _ ->
      let ctx = C.make_ctx g in
      let idx = ref 0 in
      Graph.Tuple.iter_all ~n ~k:ell (fun params ->
          Guard.tick Guard.Solver_loop;
          incr st.tried;
          Obs.Metric.incr hypotheses_enumerated;
          Obs.Metric.incr consistency_checks;
          let i = !idx in
          if Resil.Ctl.should_eval ckpt i then begin
            let chosen, errs = majority ctx ~q ~tmax ~params lam in
            consider st i params chosen errs
          end;
          Resil.Ctl.chunk_done ckpt ~lo:i ~hi:(i + 1) ~best:(best_key st);
          incr idx);
      finish g ~k ~q ~tmax lam st

let solve ?pool g ~k ~ell ~q ~tmax lam =
  Obs.Span.with_ "erm_counting.solve"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q); ("tmax", string_of_int tmax) ]
  @@ fun () ->
  solve_body ?pool g ~k ~ell ~q ~tmax lam (fresh_progress ())

let solve_budgeted ?budget ?(precheck = true) ?pool ?(ckpt = Resil.Ctl.none) g
    ~k ~ell ~q ~tmax lam =
  Obs.Span.with_ "erm_counting.solve_budgeted"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q); ("tmax", string_of_int tmax) ]
  @@ fun () ->
  match
    Admission.erm ?budget ~tmax
      ~enabled:(precheck && not (Resil.Ctl.active ckpt))
      ~what:"Erm_counting" ~solver:Analysis.Plan.Counting g ~k ~ell ~q lam
  with
  | Some rejected -> rejected
  | None ->
      let st = fresh_progress () in
      Resil.Ctl.with_attached ckpt @@ fun () ->
      Guard.run ?budget
        ~salvage:(fun () ->
          match !(st.best) with
          | None -> None
          | Some _ -> Some (finish g ~k ~q ~tmax lam st))
        (fun () -> solve_body ?pool ~ckpt g ~k ~ell ~q ~tmax lam st)

let optimal_error g ~k ~ell ~q ~tmax lam = (solve g ~k ~ell ~q ~tmax lam).err
