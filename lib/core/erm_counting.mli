(** Exact ERM over first-order logic {e with counting} — the extension the
    paper's conclusion proposes ("extend our results to richer logics …
    such as the extensions of first-order logic with counting").

    The hypothesis class [H^C_{k,ℓ,q,tmax}(G)] consists of all
    [h_{φ,w̄}] where [φ] is an FOC formula of quantifier rank [q] whose
    counting thresholds are at most [tmax].  The solver mirrors
    {!Erm_brute}: for every parameter tuple, the optimal classifier is
    majority vote per counting-type class ({!Modelcheck.Ctypes}), and the
    witness formula is a disjunction of counting Hintikka formulas.

    Counting strictly increases expressive power at fixed rank: "degree at
    least 3" needs rank 3 in plain FO but is [∃^{>=3} y. E(x, y)] — rank 1
    — in FOC (exercised by E10 and the test suite). *)

open Cgraph

type result = {
  hypothesis : Hypothesis.t;
  err : float;  (** the optimal training error over the counting class *)
  params_tried : int;
}

val solve :
  ?pool:Par.Pool.t ->
  Graph.t -> k:int -> ell:int -> q:int -> tmax:int -> Sample.t -> result
(** Exact counting ERM.  [pool] (default {!Par.default}) parallelises
    the candidate sweep with results bit-identical to sequential; see
    {!Erm_brute.solve}.
    @raise Invalid_argument on arity mismatch or [tmax < 1]. *)

val solve_budgeted :
  ?budget:Guard.Budget.t ->
  ?precheck:bool ->
  ?pool:Par.Pool.t ->
  ?ckpt:Resil.Ctl.t ->
  Graph.t -> k:int -> ell:int -> q:int -> tmax:int -> Sample.t ->
  result Guard.outcome
(** {!solve} under a resource budget; see {!Erm_brute.solve_budgeted}
    for the [best_so_far], [ckpt] (checkpoint/resume) and [precheck]
    (static admission) contracts. *)

val optimal_error :
  Graph.t -> k:int -> ell:int -> q:int -> tmax:int -> Sample.t -> float

val solve_for_params :
  Graph.t ->
  k:int ->
  q:int ->
  tmax:int ->
  params:Graph.Tuple.t ->
  Sample.t ->
  result
(** The inner loop: best counting hypothesis for one fixed parameter
    tuple (fleet best-index recovery; cf.
    {!Erm_brute.solve_for_params}). *)

val eval_range :
  Graph.t ->
  k:int ->
  ell:int ->
  q:int ->
  tmax:int ->
  Sample.t ->
  lo:int ->
  hi:int ->
  (int * int) option
(** Standalone sweep slice over candidates [\[lo, hi)] for a fleet
    worker; see {!Erm_brute.eval_range}. *)
