open Cgraph
module Types = Modelcheck.Types

type result = {
  hypothesis : Hypothesis.t;
  err : float;
  pool_size : int;
  params_tried : int;
  vertices_touched : int;
}

let hypotheses_enumerated = Obs.Metric.counter "erm.hypotheses_enumerated"
let consistency_checks = Obs.Metric.counter "erm.consistency_checks"
let pool_size_h = Obs.Metric.histogram "erm_local.pool_size"

let majority ctx ~q ~r ~params lam =
  let votes : (Types.ty, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v, label) ->
      let t = Types.ltp ctx ~q ~r (Graph.Tuple.append v params) in
      let pos, neg =
        match Hashtbl.find_opt votes t with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0) in
            Hashtbl.replace votes t cell;
            cell
      in
      if label then incr pos else incr neg)
    lam;
  Hashtbl.fold
    (fun t (pos, neg) (chosen, errs) ->
      if !pos > !neg then (t :: chosen, errs + !neg) else (chosen, errs + !pos))
    votes ([], 0)

(* all j-tuples (with repetition) over a pool *)
let rec tuples_over pool j =
  if j = 0 then [ [] ]
  else
    List.concat_map
      (fun rest -> List.map (fun p -> p :: rest) pool)
      (tuples_over pool (j - 1))

let solve ?radius g ~k ~ell ~q lam =
  Obs.Span.with_ "erm_local.solve"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q) ]
  @@ fun () ->
  Analysis.Guard.require ~what:"Erm_local.solve"
    (Analysis.Guard.budgets ~ell ~q ?radius ~k ()
    @ Analysis.Guard.sample_arity ~k (List.map fst lam));
  let r = match radius with Some r -> r | None -> Fo.Gaifman.radius q in
  let entries =
    List.sort_uniq compare
      (List.concat_map (fun (v, _) -> Array.to_list v) lam)
  in
  (* candidate parameter pool: the (2r+1)-neighbourhood of the examples *)
  let pool = Bfs.ball g ~r:((2 * r) + 1) entries in
  if Obs.Sink.enabled () then
    Obs.Metric.observe pool_size_h (float_of_int (List.length pool));
  (* everything the algorithm can touch: pool plus the radius-r balls
     used by the local-type computations *)
  let touched = Bfs.ball g ~r:((3 * r) + 2) entries in
  let ctx = Types.make_ctx g in
  let tried = ref 0 in
  let best = ref None in
  for j = 0 to ell do
    List.iter
      (fun params_list ->
        incr tried;
        Obs.Metric.incr hypotheses_enumerated;
        Obs.Metric.incr consistency_checks;
        let params = Array.of_list params_list in
        let chosen, errs = majority ctx ~q ~r ~params lam in
        match !best with
        | Some (_, _, best_errs) when best_errs <= errs -> ()
        | _ -> best := Some (params, chosen, errs))
      (tuples_over pool j)
  done;
  let params, chosen, errs =
    match !best with
    | Some b -> b
    | None -> ([||], [], Sample.errors_of (fun _ -> false) lam)
  in
  {
    hypothesis = Hypothesis.of_local_types g ~k ~q ~r ~types:chosen ~params;
    err =
      (match lam with
      | [] -> 0.0
      | _ -> float_of_int errs /. float_of_int (Sample.size lam));
    pool_size = List.length pool;
    params_tried = !tried;
    vertices_touched = List.length touched;
  }
