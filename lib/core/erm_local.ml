open Cgraph
module Types = Modelcheck.Types

type result = {
  hypothesis : Hypothesis.t;
  err : float;
  pool_size : int;
  params_tried : int;
  vertices_touched : int;
}

let hypotheses_enumerated = Obs.Metric.counter "erm.hypotheses_enumerated"
let consistency_checks = Obs.Metric.counter "erm.consistency_checks"
let pool_size_h = Obs.Metric.histogram "erm_local.pool_size"

let majority ctx ~q ~r ~params lam =
  let votes : (Types.ty, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v, label) ->
      let t = Types.ltp ctx ~q ~r (Graph.Tuple.append v params) in
      let pos, neg =
        match Hashtbl.find_opt votes t with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0) in
            Hashtbl.replace votes t cell;
            cell
      in
      if label then incr pos else incr neg)
    lam;
  Hashtbl.fold
    (fun t (pos, neg) (chosen, errs) ->
      if !pos > !neg then (t :: chosen, errs + !neg) else (chosen, errs + !pos))
    votes ([], 0)

(* all j-tuples (with repetition) over a pool, streamed in the same
   order the old materialised enumeration produced: the length-(j-1)
   suffix varies in the outer loop, the new head in the inner one.
   Streaming matters: a budget checkpoint inside the consumer must be
   able to stop the enumeration before |pool|^j tuples exist. *)
let rec iter_tuples pool j f =
  if j = 0 then f []
  else
    iter_tuples pool (j - 1) (fun rest ->
        List.iter (fun p -> f (p :: rest)) pool)

(* mutable progress shared between the solver body and the salvage
   hook of [solve_budgeted] *)
type progress = {
  mutable pool_size : int;
  mutable vertices_touched : int;
  mutable tried : int;
  mutable best : (Graph.Tuple.t * Types.ty list * int) option;
}

let fresh_progress () =
  { pool_size = 0; vertices_touched = 0; tried = 0; best = None }

let finish g ~k ~q ~r lam st =
  let params, chosen, errs =
    match st.best with
    | Some b -> b
    | None -> ([||], [], Sample.errors_of (fun _ -> false) lam)
  in
  {
    hypothesis = Hypothesis.of_local_types g ~k ~q ~r ~types:chosen ~params;
    err =
      (match lam with
      | [] -> 0.0
      | _ -> float_of_int errs /. float_of_int (Sample.size lam));
    pool_size = st.pool_size;
    params_tried = st.tried;
    vertices_touched = st.vertices_touched;
  }

let solve_body g ~k ~ell ~q ~r lam st =
  Analysis.Guard.require ~what:"Erm_local.solve"
    (Analysis.Guard.budgets ~ell ~q ~radius:r ~k ()
    @ Analysis.Guard.sample_arity ~k (List.map fst lam));
  let entries =
    List.sort_uniq compare
      (List.concat_map (fun (v, _) -> Array.to_list v) lam)
  in
  (* candidate parameter pool: the (2r+1)-neighbourhood of the examples *)
  let pool = Bfs.ball g ~r:((2 * r) + 1) entries in
  st.pool_size <- List.length pool;
  if Obs.Sink.enabled () then
    Obs.Metric.observe pool_size_h (float_of_int st.pool_size);
  (* everything the algorithm can touch: pool plus the radius-r balls
     used by the local-type computations *)
  let touched = Bfs.ball g ~r:((3 * r) + 2) entries in
  st.vertices_touched <- List.length touched;
  let ctx = Types.make_ctx g in
  for j = 0 to ell do
    iter_tuples pool j (fun params_list ->
        Guard.tick Guard.Solver_loop;
        st.tried <- st.tried + 1;
        Obs.Metric.incr hypotheses_enumerated;
        Obs.Metric.incr consistency_checks;
        let params = Array.of_list params_list in
        let chosen, errs = majority ctx ~q ~r ~params lam in
        match st.best with
        | Some (_, _, best_errs) when best_errs <= errs -> ()
        | _ -> st.best <- Some (params, chosen, errs))
  done;
  finish g ~k ~q ~r lam st

let radius_for ?radius q =
  match radius with Some r -> r | None -> Fo.Gaifman.radius q

let solve ?radius g ~k ~ell ~q lam =
  Obs.Span.with_ "erm_local.solve"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q) ]
  @@ fun () ->
  solve_body g ~k ~ell ~q ~r:(radius_for ?radius q) lam (fresh_progress ())

let solve_budgeted ?budget ?radius g ~k ~ell ~q lam =
  Obs.Span.with_ "erm_local.solve_budgeted"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q) ]
  @@ fun () ->
  let r = radius_for ?radius q in
  let st = fresh_progress () in
  Guard.run ?budget
    ~salvage:(fun () ->
      match st.best with
      | None -> None
      | Some _ -> Some (finish g ~k ~q ~r lam st))
    (fun () -> solve_body g ~k ~ell ~q ~r lam st)
