open Cgraph
module Types = Modelcheck.Types

type result = {
  hypothesis : Hypothesis.t;
  err : float;
  pool_size : int;
  params_tried : int;
  vertices_touched : int;
}

let hypotheses_enumerated = Obs.Metric.counter "erm.hypotheses_enumerated"
let consistency_checks = Obs.Metric.counter "erm.consistency_checks"
let pool_size_h = Obs.Metric.histogram "erm_local.pool_size"

let majority ctx ~q ~r ~params lam =
  let votes : (Types.ty, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v, label) ->
      let t = Types.ltp ctx ~q ~r (Graph.Tuple.append v params) in
      let pos, neg =
        match Hashtbl.find_opt votes t with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0) in
            Hashtbl.replace votes t cell;
            cell
      in
      if label then incr pos else incr neg)
    lam;
  Hashtbl.fold
    (fun t (pos, neg) (chosen, errs) ->
      if !pos > !neg then (t :: chosen, errs + !neg) else (chosen, errs + !pos))
    votes ([], 0)

(* all j-tuples (with repetition) over a pool, streamed in the same
   order the old materialised enumeration produced: the length-(j-1)
   suffix varies in the outer loop, the new head in the inner one.
   Streaming matters: a budget checkpoint inside the consumer must be
   able to stop the enumeration before |pool|^j tuples exist. *)
let rec iter_tuples pool j f =
  if j = 0 then f []
  else
    iter_tuples pool (j - 1) (fun rest ->
        List.iter (fun p -> f (p :: rest)) pool)

(* random access into the [iter_tuples] order: the head varies fastest,
   so position [d] of tuple [i] is digit [d] of [i] base |pool| *)
let tuple_of_index pool_arr j i =
  let p = Array.length pool_arr in
  let t = Array.make j 0 in
  let rem = ref i in
  for d = 0 to j - 1 do
    t.(d) <- pool_arr.(!rem mod p);
    rem := !rem / p
  done;
  t

(* mutable progress shared between the solver body and the salvage
   hook of [solve_budgeted].  [best] carries the global candidate index
   (counting through j = 0, 1, ... in enumeration order): the winner is
   the (errors, index) lexicographic minimum, which both the sequential
   sweep and the chunk-merge of the parallel sweep compute. *)
type progress = {
  mutable pool_size : int;
  mutable vertices_touched : int;
  mutable tried : int;
  mutable best : (int * Graph.Tuple.t * Types.ty list * int) option;
  merge : Mutex.t;
}

let fresh_progress () =
  {
    pool_size = 0;
    vertices_touched = 0;
    tried = 0;
    best = None;
    merge = Mutex.create ();
  }

let consider st idx params chosen errs =
  match st.best with
  | Some (bidx, _, _, berrs)
    when berrs < errs || (berrs = errs && bidx <= idx) ->
      ()
  | _ -> st.best <- Some (idx, params, chosen, errs)

let best_key st =
  match st.best with Some (i, _, _, e) -> Some (i, e) | None -> None

let finish g ~k ~q ~r lam st =
  let params, chosen, errs =
    match st.best with
    | Some (_, params, chosen, errs) -> (params, chosen, errs)
    | None -> ([||], [], Sample.errors_of (fun _ -> false) lam)
  in
  {
    hypothesis = Hypothesis.of_local_types g ~k ~q ~r ~types:chosen ~params;
    err =
      (match lam with
      | [] -> 0.0
      | _ -> float_of_int errs /. float_of_int (Sample.size lam));
    pool_size = st.pool_size;
    params_tried = st.tried;
    vertices_touched = st.vertices_touched;
  }

let solve_body ?pool:ppool ?(ckpt = Resil.Ctl.none) g ~k ~ell ~q ~r lam st =
  Analysis.Guard.require ~what:"Erm_local.solve"
    (Analysis.Guard.budgets ~ell ~q ~radius:r ~k ()
    @ Analysis.Guard.sample_arity ~k (List.map fst lam));
  let ppool = match ppool with Some p -> p | None -> Par.default () in
  let entries =
    List.sort_uniq compare
      (List.concat_map (fun (v, _) -> Array.to_list v) lam)
  in
  (* the two multi-source balls are independent BFS sweeps — batch them
     on the pool (a 2-task batch; inline when jobs = 1):
     pool    = (2r+1)-neighbourhood of the examples (candidate params)
     touched = (3r+2)-neighbourhood (everything the algorithm reads) *)
  let balls =
    Par.map_tasks ppool ~tasks:2 (fun i ->
        if i = 0 then Bfs.ball g ~r:((2 * r) + 1) entries
        else Bfs.ball g ~r:((3 * r) + 2) entries)
  in
  let pool = balls.(0) in
  st.pool_size <- List.length pool;
  if Obs.Sink.enabled () then
    Obs.Metric.observe pool_size_h (float_of_int st.pool_size);
  st.vertices_touched <- List.length balls.(1);
  if Par.Pool.size ppool <= 1 then begin
    let ctx = Types.make_ctx g in
    let idx = ref 0 in
    for j = 0 to ell do
      iter_tuples pool j (fun params_list ->
          Guard.tick Guard.Solver_loop;
          st.tried <- st.tried + 1;
          Obs.Metric.incr hypotheses_enumerated;
          Obs.Metric.incr consistency_checks;
          let i = !idx in
          if Resil.Ctl.should_eval ckpt i then begin
            let params = Array.of_list params_list in
            let chosen, errs = majority ctx ~q ~r ~params lam in
            consider st i params chosen errs
          end;
          Resil.Ctl.chunk_done ckpt ~lo:i ~hi:(i + 1) ~best:(best_key st);
          incr idx)
    done
  end
  else begin
    (* parallel: sweep each tuple length j in candidate-order chunks;
       [offset] numbers candidates globally across the j-levels *)
    let pool_arr = Array.of_list pool in
    let p = Array.length pool_arr in
    let offset = ref 0 in
    for j = 0 to ell do
      match Graph.Tuple.count ~n:p ~k:j with
      | None ->
          invalid_arg "Erm_local.solve: candidate space exceeds max_int"
      | Some total ->
          let base = !offset in
          Par.map_reduce_chunks ppool ~n:total
            ~map:(fun lo hi ->
              let ctx = Types.make_ctx g in
              let local = ref None in
              for i = lo to hi - 1 do
                Guard.tick Guard.Solver_loop;
                Obs.Metric.incr hypotheses_enumerated;
                Obs.Metric.incr consistency_checks;
                if Resil.Ctl.should_eval ckpt (base + i) then begin
                  let params = tuple_of_index pool_arr j i in
                  let chosen, errs = majority ctx ~q ~r ~params lam in
                  match !local with
                  | Some (_, _, _, best_errs) when best_errs <= errs -> ()
                  | _ -> local := Some (base + i, params, chosen, errs)
                end
              done;
              Mutex.lock st.merge;
              st.tried <- st.tried + (hi - lo);
              (match !local with
              | Some (i, params, chosen, errs) ->
                  consider st i params chosen errs
              | None -> ());
              Resil.Ctl.chunk_done ckpt ~lo:(base + lo) ~hi:(base + hi)
                ~best:(best_key st);
              Mutex.unlock st.merge)
            ~reduce:(fun () () -> ())
            ~init:() ();
          offset := base + total
    done
  end;
  finish g ~k ~q ~r lam st

let radius_for ?radius q =
  match radius with Some r -> r | None -> Fo.Gaifman.radius q

let solve ?pool ?radius g ~k ~ell ~q lam =
  Obs.Span.with_ "erm_local.solve"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q) ]
  @@ fun () ->
  solve_body ?pool g ~k ~ell ~q ~r:(radius_for ?radius q) lam
    (fresh_progress ())

let solve_budgeted ?budget ?(precheck = true) ?pool ?radius
    ?(ckpt = Resil.Ctl.none) g ~k ~ell ~q lam =
  Obs.Span.with_ "erm_local.solve_budgeted"
    ~args:
      [ ("k", string_of_int k); ("ell", string_of_int ell);
        ("q", string_of_int q) ]
  @@ fun () ->
  match
    Admission.erm ?budget ?radius
      ~enabled:(precheck && not (Resil.Ctl.active ckpt))
      ~what:"Erm_local" ~solver:Analysis.Plan.Local g ~k ~ell ~q lam
  with
  | Some rejected -> rejected
  | None ->
      let r = radius_for ?radius q in
      let st = fresh_progress () in
      Resil.Ctl.with_attached ckpt @@ fun () ->
      Guard.run ?budget
        ~salvage:(fun () ->
          match st.best with
          | None -> None
          | Some _ -> Some (finish g ~k ~q ~r lam st))
        (fun () -> solve_body ?pool ~ckpt g ~k ~ell ~q ~r lam st)
