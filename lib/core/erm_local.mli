(** Sublinear-time local learning — the predecessor result the paper
    builds on (Grohe & Ritzert, LICS 2017: on structures of maximum
    degree [d], ERM for first-order definable hypotheses runs in time
    polynomial in [d] and the number [m] of examples, {e independently of
    the size of the background structure}).

    The engine is Gaifman locality.  A hypothesis classifies by the local
    type [ltp_{q,r}(G, v̄·w̄)].  A parameter [w] {e far} from every
    example (distance [> 2r+1]) contributes the same disconnected piece
    to every example's local type, so the classifier it induces on the
    sample is already induced by the same hypothesis with that parameter
    dropped.  Hence the optimum over all of [V(G)^ℓ] is attained with
    parameters from the pool [N_{2r+1}(examples)] and at most [ℓ] of
    them — a set whose size depends only on [d, k, m, r], not on [n].

    The solver explores exactly that pool, touching only
    [N_{3r+2}(example entries)]; {!result.vertices_touched} certifies the
    sublinear access pattern (experiment E11). *)

open Cgraph

type result = {
  hypothesis : Hypothesis.t;
  err : float;
      (** optimal training error over local-type hypotheses with up to
          [ℓ] parameters *)
  pool_size : int;  (** candidate parameters considered *)
  params_tried : int;  (** parameter tuples evaluated (≤ Σ pool^j) *)
  vertices_touched : int;
      (** distinct vertices the algorithm ever accessed — compare with
          [Graph.order g] *)
}

val solve :
  ?pool:Par.Pool.t ->
  ?radius:int -> Graph.t -> k:int -> ell:int -> q:int -> Sample.t -> result
(** [solve g ~k ~ell ~q lam].  [radius] defaults to
    [Fo.Gaifman.radius q].  The returned error satisfies: for {e every}
    [w̄ ∈ V(G)^{ℓ'}, ℓ' <= ℓ] and every set [Θ] of local types,
    [err <= err_Λ(v̄ ↦ ltp_{q,r}(v̄·w̄) ∈ Θ)] (tested exhaustively in the
    suite).
    @raise Invalid_argument on arity mismatch. *)

val solve_budgeted :
  ?budget:Guard.Budget.t ->
  ?precheck:bool ->
  ?pool:Par.Pool.t ->
  ?radius:int ->
  ?ckpt:Resil.Ctl.t ->
  Graph.t -> k:int -> ell:int -> q:int -> Sample.t -> result Guard.outcome
(** {!solve} under a resource budget.  [Complete r] is exactly the
    unbudgeted result; on exhaustion, [best_so_far] is the best
    hypothesis among the parameter tuples that finished evaluating, or
    [None] if the run tripped before any did (e.g. while building the
    candidate pool).  [ckpt] threads a checkpoint controller over the
    global candidate index (counting through the tuple lengths
    [j = 0..ell] in enumeration order); [precheck] (default [true])
    gates the call through the static admission precheck of
    {!Analysis.Plan} — see {!Erm_brute.solve_budgeted} for both
    contracts. *)
