open Cgraph
module Types = Modelcheck.Types

let log_src = Logs.Src.create "folearn.erm_nd" ~doc:"Theorem 13 learner"

module Log = (val Logs.src_log log_src : Logs.LOG)

let hypotheses_enumerated = Obs.Metric.counter "erm.hypotheses_enumerated"
let consistency_checks = Obs.Metric.counter "erm.consistency_checks"
let rounds_h = Obs.Metric.histogram "erm_nd.round_arena_order"

type config = {
  k : int;
  ell_star : int;
  q_star : int;
  epsilon : float;
  radius : int option;
  cls : Splitter.Nowhere_dense.t;
  branch_width : int;
  max_rounds : int option;
  counting : int option;
}

let default_config ?(epsilon = 0.1) ?radius ?(branch_width = 8) ?counting ~k
    ~ell_star ~q_star cls =
  {
    k;
    ell_star;
    q_star;
    epsilon;
    radius;
    cls;
    branch_width;
    max_rounds = None;
    counting;
  }

(* The learner is generic in the local-type machinery: plain FO local
   types, or counting local types (the FOC variant suggested by the
   paper's conclusion).  A typer computes canonical local-type ids
   (per-graph cached) and builds the final hypothesis from chosen ids;
   the id -> type mapping is remembered inside the typer. *)
type typer = {
  a_typ : Graph.t -> Graph.Tuple.t -> int;
  a_hyp :
    Graph.t -> k:int -> ids:int list -> params:Graph.Tuple.t -> Hypothesis.t;
}

let plain_typer ~q ~r =
  let store : (int, Types.ty) Hashtbl.t = Hashtbl.create 64 in
  {
    a_typ =
      (fun g ->
        let ctx = Types.make_ctx g in
        fun u ->
          let t = Types.ltp ctx ~q ~r u in
          Hashtbl.replace store (Types.hash t) t;
          Types.hash t);
    a_hyp =
      (fun g ~k ~ids ~params ->
        Hypothesis.of_local_types g ~k ~q ~r
          ~types:(List.map (Hashtbl.find store) ids)
          ~params);
  }

let counting_typer ~q ~r ~tmax =
  let store : (int, Modelcheck.Ctypes.ty) Hashtbl.t = Hashtbl.create 64 in
  {
    a_typ =
      (fun g ->
        let ctx = Modelcheck.Ctypes.make_ctx g in
        fun u ->
          let t = Modelcheck.Ctypes.cltp ctx ~q ~tmax ~r u in
          Hashtbl.replace store (Modelcheck.Ctypes.hash t) t;
          Modelcheck.Ctypes.hash t);
    a_hyp =
      (fun g ~k ~ids ~params ->
        Hypothesis.of_counting_local_types g ~k ~q ~tmax ~r
          ~types:(List.map (Hashtbl.find store) ids)
          ~params);
  }

type round_info = {
  round : int;
  arena_order : int;
  conflicts : int;
  critical : int;
  centre_count : int;
  vitali_radius : int;
  answers : Graph.vertex list;
}

type report = {
  hypothesis : Hypothesis.t;
  err : float;
  rounds : round_info list;
  r_used : int;
  s_budget : int;
  ell_used : int;
  q_used : int;
  branches_explored : int;
}

(* ------------------------------------------------------------------ *)
(* Shared pieces                                                       *)
(* ------------------------------------------------------------------ *)

(* One stage of the round sequence G^0, G^1, ...: the current graph, the
   partial map back to the original graph (None = synthetic isolated
   type-representative), and the surviving examples (tuple in stage
   coordinates, label, index into the original sequence). *)
type stage = {
  sgraph : Graph.t;
  orig : Graph.vertex option array;
  sexamples : (Graph.Tuple.t * bool * int) list;
}

(* Majority vote per local-type class: the exact optimum over type-set
   hypotheses for fixed parameters.  Returns (positive types, #errors). *)
let majority_local typ ~params lam =
  let votes = Hashtbl.create 64 in
  List.iter
    (fun (v, label) ->
      let t = typ (Graph.Tuple.append v params) in
      let pos, neg =
        match Hashtbl.find_opt votes t with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0) in
            Hashtbl.replace votes t cell;
            cell
      in
      if label then incr pos else incr neg)
    lam;
  Hashtbl.fold
    (fun t (pos, neg) (chosen, errs) ->
      if !pos > !neg then (t :: chosen, errs + !neg) else (chosen, errs + !pos))
    votes ([], 0)

(* Conflict analysis against the ORIGINAL graph: an example is critical
   iff its class under ltp_{q,r}(G, v̄·w̄) — with w̄ the parameters chosen
   so far — still contains both labels.  This is the paper's resolution
   criterion ("to resolve a conflict we need parameters w̄ such that
   ltp(G, v̄⁺w̄) ≠ ltp(G, v̄⁻w̄)"); checking it on the original graph
   rather than on the projected stage keeps the round loop honest: the
   fresh colours of the Lemma 16 projection refine stage-local types
   beyond what the final hypothesis can express. *)
let conflict_analysis typ ~params lam =
  let classes = Hashtbl.create 64 in
  List.iteri
    (fun idx (v, b) ->
      let t = typ (Graph.Tuple.append v params) in
      match Hashtbl.find_opt classes t with
      | Some cell -> cell := (b, idx) :: !cell
      | None -> Hashtbl.replace classes t (ref [ (b, idx) ]))
    lam;
  let conflicts = ref 0 in
  let critical_idx = ref [] in
  Hashtbl.iter
    (fun _ cell ->
      let members = !cell in
      let has_pos = List.exists (fun (b, _) -> b) members in
      let has_neg = List.exists (fun (b, _) -> not b) members in
      if has_pos && has_neg then begin
        incr conflicts;
        critical_idx := List.map snd members @ !critical_idx
      end)
    classes;
  (!conflicts, !critical_idx)

let conflicts g ~q ~r lam =
  let ctx = Types.make_ctx g in
  let stage =
    {
      sgraph = g;
      orig = Array.init (Graph.order g) (fun v -> Some v);
      sexamples = List.mapi (fun i (v, b) -> (v, b, i)) lam;
    }
  in
  let classes : (Types.ty, (Graph.Tuple.t list * Graph.Tuple.t list)) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (v, b, _) ->
      let t = Types.ltp ctx ~q ~r v in
      let pos, neg =
        match Hashtbl.find_opt classes t with Some c -> c | None -> ([], [])
      in
      Hashtbl.replace classes t (if b then (v :: pos, neg) else (pos, v :: neg)))
    stage.sexamples;
  Hashtbl.fold
    (fun _ (pos, neg) acc ->
      match (pos, neg) with p :: _, n :: _ -> (p, n) :: acc | _ -> acc)
    classes []

(* Lemma 14 greedy centre selection: vertices pairwise more than 4r+2
   apart, chosen by decreasing attendance |Γ(x)| (the number of critical
   tuples whose (2r+1)-neighbourhood contains x), at most [cap] of them,
   restricted to [allowed] vertices.  Returns the centres (in selection
   order) and the attendance table. *)
let greedy_centres g ~r ~cap ~allowed ~critical =
  let attend : int list array = Array.make (Graph.order g) [] in
  (* the per-tuple balls are independent BFS sweeps — batch them on the
     default pool; the attendance table is then filled sequentially in
     tuple order, so its contents (and everything greedy selection
     derives from them) do not depend on the pool size *)
  let balls =
    Par.map_list (Par.default ())
      (fun v -> Bfs.ball_tuple g ~r:((2 * r) + 1) v)
      critical
  in
  List.iteri
    (fun ci ball -> List.iter (fun u -> attend.(u) <- ci :: attend.(u)) ball)
    balls;
  let order =
    List.filter (fun u -> allowed u && attend.(u) <> []) (Graph.vertices g)
    |> List.sort (fun a b ->
           compare (List.length attend.(b)) (List.length attend.(a)))
  in
  let forbidden = Array.make (Graph.order g) false in
  let xs = ref [] and count = ref 0 in
  List.iter
    (fun u ->
      if (not forbidden.(u)) && !count < cap then begin
        xs := u :: !xs;
        incr count;
        List.iter
          (fun v -> forbidden.(v) <- true)
          (Bfs.ball g ~r:((4 * r) + 2) [ u ])
      end)
    order;
  (List.rev !xs, attend)

let centre_set g ~r ~cap ~critical =
  fst (greedy_centres g ~r ~cap ~allowed:(fun _ -> true) ~critical)

(* All size-(1..cap) subsets of a list (small inputs only). *)
let rec subsets_up_to cap = function
  | [] -> [ [] ]
  | x :: rest ->
      let without = subsets_up_to cap rest in
      let with_x =
        List.filter_map
          (fun s -> if List.length s < cap then Some (x :: s) else None)
          without
      in
      without @ with_x

(* ------------------------------------------------------------------ *)
(* The solver                                                          *)
(* ------------------------------------------------------------------ *)

(* Builds the search closure.  Returns [run] (the full nondeterministic
   search followed by report assembly) and [salvage] (assemble a report
   from the best leaf seen so far, or [None] if no leaf was reached) so
   [solve_budgeted] can recover a partial answer after a budget trip. *)
let solve_inner ?(ckpt = Resil.Ctl.none) cfg g lam =
  if cfg.epsilon <= 0.0 then invalid_arg "Erm_nd.solve: epsilon must be > 0";
  Analysis.Guard.require ~what:"Erm_nd.solve"
    (Analysis.Guard.budgets ~ell:cfg.ell_star ~q:cfg.q_star ?tmax:cfg.counting
       ?radius:cfg.radius ~k:cfg.k ()
    @ Analysis.Guard.sample_arity ~k:cfg.k (List.map fst lam));
  let k = cfg.k and ell_star = max 1 cfg.ell_star and q = cfg.q_star in
  let r =
    match cfg.radius with Some r -> r | None -> Fo.Gaifman.radius cfg.q_star
  in
  let base = (k + 2) * ((2 * r) + 1) in
  let rec pow3 i = if i <= 0 then 1 else 3 * pow3 (i - 1) in
  let big_r = pow3 (ell_star - 1) * base in
  let s =
    match cfg.max_rounds with
    | Some s -> s
    | None -> min 8 (cfg.cls.Splitter.Nowhere_dense.s_bound g ~r:big_r)
  in
  let m = Sample.size lam in
  let n = Graph.order g in
  let x_cap =
    if m = 0 then 0
    else
      min n
        (int_of_float
           (ceil (float_of_int (k * ell_star * s) /. cfg.epsilon)))
  in
  let typer =
    match cfg.counting with
    | None -> plain_typer ~q ~r
    | Some tmax -> counting_typer ~q ~r ~tmax
  in
  let typ_orig = typer.a_typ g in
  let branches = ref 0 in
  let node_budget = ref 1024 in
  (* best = (errs, params, rounds, leaf index).  The tree walk itself
     is deterministic and independent of leaf evaluations, so leaves
     are numbered in traversal order: a resumed run replays the walk,
     skips the majority vote for leaves below the snapshot cursor
     (except the recorded best leaf, re-evaluated to recover its
     hypothesis), and lands on the same first-best leaf. *)
  let best = ref None in
  let leaf_idx = ref 0 in
  let consider_leaf answers_rev rounds_rev =
    Guard.tick Guard.Solver_loop;
    incr branches;
    Obs.Metric.incr hypotheses_enumerated;
    Obs.Metric.incr consistency_checks;
    let i = !leaf_idx in
    incr leaf_idx;
    if Resil.Ctl.should_eval ckpt i then begin
      let params =
        Array.of_list (List.concat (List.rev answers_rev))
      in
      let _, errs = majority_local typ_orig ~params lam in
      (match !best with
      | Some (best_errs, _, _, _) when best_errs <= errs -> ()
      | _ -> best := Some (errs, params, List.rev rounds_rev, i))
    end;
    Resil.Ctl.chunk_done ckpt ~lo:i ~hi:(i + 1)
      ~best:
        (match !best with Some (e, _, _, bi) -> Some (bi, e) | None -> None)
  in
  let module ISet = Set.Make (Int) in
  let rec explore stage round answers_rev rounds_rev =
    Guard.tick Guard.Solver_loop;
    let params_so_far =
      Array.of_list (List.concat (List.rev answers_rev))
    in
    let n_conflicts, critical_idx =
      conflict_analysis typ_orig ~params:params_so_far lam
    in
    let crit_set = ISet.of_list critical_idx in
    let critical =
      List.filter (fun (_, _, idx) -> ISet.mem idx crit_set) stage.sexamples
    in
    Log.debug (fun m ->
        m "round %d: %d conflict classes, %d critical examples, %d params"
          round n_conflicts (List.length critical)
          (Array.length params_so_far));
    if n_conflicts = 0 || round >= s || critical = [] then
      consider_leaf answers_rev rounds_rev
    else begin
      (* Lemma 14: greedy centres over the critical tuples of this stage,
         real (non-synthetic) vertices only. *)
      let crit_count = List.length critical in
      let xs, attend =
        greedy_centres stage.sgraph ~r ~cap:x_cap
          ~allowed:(fun u -> stage.orig.(u) <> None)
          ~critical:(List.map (fun (v, _, _) -> v) critical)
      in
      if xs = [] then consider_leaf answers_rev rounds_rev
      else begin
        (* Candidate guesses Y ⊆ X, |Y| <= ℓ*, scored by how many critical
           examples their neighbourhoods attend. *)
        let module IS = Set.Make (Int) in
        let coverage y_set =
          List.fold_left
            (fun acc y -> IS.union acc (IS.of_list attend.(y)))
            IS.empty y_set
          |> IS.cardinal
        in
        let candidates =
          let all =
            if List.length xs <= 10 then
              List.filter (fun s -> s <> []) (subsets_up_to ell_star xs)
            else begin
              (* greedy chain: best singleton, best pair extending it, ... *)
              let singletons = List.map (fun x -> [ x ]) xs in
              let rec grow chain acc =
                if List.length chain >= ell_star then acc
                else begin
                  let extensions =
                    List.filter_map
                      (fun x ->
                        if List.mem x chain then None else Some (x :: chain))
                      xs
                  in
                  match
                    List.sort
                      (fun a b -> compare (coverage b) (coverage a))
                      extensions
                  with
                  | [] -> acc
                  | bst :: _ -> grow bst (bst :: acc)
                end
              in
              let top = match xs with x :: _ -> [ x ] | [] -> [] in
              singletons @ grow top []
            end
          in
          List.sort (fun a b -> compare (coverage b) (coverage a)) all
          |> List.filteri (fun i _ -> i < cfg.branch_width)
        in
        (* Stopping now is always allowed — keeps the search sound even if
           every guess makes things worse. *)
        consider_leaf answers_rev rounds_rev;
        List.iter
          (fun y ->
            if !node_budget > 0 then begin
              decr node_budget;
              match step stage ~round ~y ~critical ~crit_count ~n_conflicts with
              | None -> ()
              | Some (info, answers, stage') ->
                  explore stage' (round + 1) (answers :: answers_rev)
                    (info :: rounds_rev)
            end)
          candidates
      end
    end
  (* One round of the algorithm for a fixed guess Y: Vitali cover,
     Splitter answers, Lemma 16 projection. *)
  and step stage ~round ~y ~critical ~crit_count:_ ~n_conflicts =
    let sg = stage.sgraph in
    if Obs.Sink.enabled () then
      Obs.Metric.observe rounds_h (float_of_int (Graph.order sg));
    let cover = Cgraph.Vitali.cover sg ~r:base y in
    let z = cover.Cgraph.Vitali.centers in
    let r' = cover.Cgraph.Vitali.radius in
    (* Splitter's answers to the moves z_j with radius R' *)
    let answers_stage =
      List.map
        (fun zj ->
          cfg.cls.Splitter.Nowhere_dense.splitter sg ~radius:(min r' big_r)
            ~connector:zj)
        z
    in
    let answers_orig =
      List.filter_map (fun w -> stage.orig.(w)) answers_stage
    in
    if answers_orig = [] then None
    else begin
      let ball = Bfs.ball sg ~r:r' z in
      let emb = Ops.induced sg ball in
      let a0 = emb.Ops.graph in
      let map_opt v = emb.Ops.to_sub v in
      (* Step 1: distance colours D_{j,d} to the guessed centres y_j.
         One full BFS per centre — batched on the default pool. *)
      let y_dists =
        Par.map_list (Par.default ()) (fun yj -> Bfs.distances sg yj) y
      in
      let d_colors =
        List.concat
          (List.mapi
             (fun j dist ->
               List.init (base + 1) (fun d ->
                   ( Printf.sprintf "_D%d_%d_%d" round j d,
                     List.filter_map
                       (fun v ->
                         if dist.(v) = d then map_opt v else None)
                       ball )))
             y_dists)
      in
      (* Steps 2-3: neighbourhood colours C_j, deletion markers B_j, and
         the edge deletions at Splitter's answers. *)
      let c_colors =
        List.mapi
          (fun j wj ->
            ( Printf.sprintf "_C%d_%d" round j,
              List.filter_map map_opt
                (wj :: Array.to_list (Graph.neighbors sg wj)) ))
          answers_stage
      in
      let b_colors =
        List.mapi
          (fun j wj ->
            ( Printf.sprintf "_B%d_%d" round j,
              List.filter_map map_opt [ wj ] ))
          answers_stage
      in
      let a1 = Graph.with_colors a0 (d_colors @ c_colors @ b_colors) in
      let a2 =
        Ops.delete_edges_at a1 (List.filter_map map_opt answers_stage)
      in
      (* Carry over the synthetic isolated vertices of previous rounds. *)
      let carried =
        List.filter (fun v -> stage.orig.(v) = None) (Graph.vertices sg)
      in
      (* Step 4 + example projection: figure out which isolated
         type-representatives t_{I,θ} are needed. *)
      let dist_y = Bfs.distances_multi sg y in
      let near_limit = (6 * r) + 3 in
      let fresh_tbl : (int list * int, int) Hashtbl.t = Hashtbl.create 16 in
      let fresh_specs = ref [] and fresh_count = ref 0 in
      let carried_offset = Graph.order a2 in
      let fresh_offset = carried_offset + List.length carried in
      let get_fresh key colour =
        match Hashtbl.find_opt fresh_tbl key with
        | Some id -> id
        | None ->
            let id = fresh_offset + !fresh_count in
            incr fresh_count;
            Hashtbl.replace fresh_tbl key id;
            fresh_specs := (id, colour) :: !fresh_specs;
            id
      in
      let typ_stage = typer.a_typ sg in
      let project (v, label, idx) =
        let kk = Array.length v in
        let near v_entry = dist_y.(v_entry) <= near_limit in
        if not (Array.exists near v) then None
        else begin
          (* components of H_v̄: indices within distance 2r+1 chains *)
          let dists =
            Array.map (fun ve -> Bfs.distances sg ve) v
          in
          let comp = Array.make kk (-1) in
          let next_comp = ref 0 in
          for a = 0 to kk - 1 do
            if comp.(a) < 0 then begin
              let c = !next_comp in
              incr next_comp;
              let rec flood a =
                comp.(a) <- c;
                for b = 0 to kk - 1 do
                  if comp.(b) < 0 && dists.(a).(v.(b)) <= (2 * r) + 1 then
                    flood b
                done
              in
              flood a
            end
          done;
          let v' = Array.make kk (-1) in
          let ok = ref true in
          for c = 0 to !next_comp - 1 do
            let members =
              List.filter (fun a -> comp.(a) = c) (List.init kk Fun.id)
            in
            let comp_near = List.exists (fun a -> near v.(a)) members in
            if comp_near then
              List.iter
                (fun a ->
                  match map_opt v.(a) with
                  | Some va -> v'.(a) <- va
                  | None -> ok := false)
                members
            else begin
              let sub = Array.of_list (List.map (fun a -> v.(a)) members) in
              let theta_id = typ_stage sub in
              let key = (members, theta_id) in
              let colour =
                Printf.sprintf "_A%d_%s_t%d" round
                  (String.concat "." (List.map string_of_int members))
                  theta_id
              in
              let t_vertex = get_fresh key colour in
              List.iter (fun a -> v'.(a) <- t_vertex) members
            end
          done;
          if !ok then Some (v', label, idx) else None
        end
      in
      let projected = List.filter_map project critical in
      (* Assemble G^{i+1} = A2 ⊎ carried ⊎ fresh. *)
      let carried_colour_sets =
        List.map (fun v -> Graph.colors_of sg v) carried
      in
      let fresh_colour_sets =
        List.rev_map (fun (_, colour) -> [ colour ]) !fresh_specs
      in
      let g1, _ = Ops.add_isolated a2 carried_colour_sets in
      let g2, _ = Ops.add_isolated g1 fresh_colour_sets in
      let order2 = Graph.order g2 in
      let orig' = Array.make order2 None in
      for v = 0 to Graph.order a2 - 1 do
        orig'.(v) <- stage.orig.(emb.Ops.of_sub v)
      done;
      (* carried and fresh vertices stay None *)
      let info =
        {
          round;
          arena_order = Graph.order sg;
          conflicts = n_conflicts;
          critical = List.length critical;
          centre_count = List.length y;
          vitali_radius = r';
          answers = answers_orig;
        }
      in
      Some (info, answers_orig, { sgraph = g2; orig = orig'; sexamples = projected })
    end
  in
  let stage0 =
    {
      sgraph = g;
      orig = Array.init n (fun v -> Some v);
      sexamples = List.mapi (fun i (v, b) -> (v, b, i)) lam;
    }
  in
  let finish () =
    let errs, params, rounds =
      match !best with
      | Some (errs, params, rounds, _) -> (errs, params, rounds)
      | None -> (Sample.errors_of (fun _ -> false) lam, [||], [])
    in
    let chosen, errs' = majority_local typ_orig ~params lam in
    assert (errs' = errs);
    let hypothesis = typer.a_hyp g ~k ~ids:chosen ~params in
    {
      hypothesis;
      err = (if m = 0 then 0.0 else float_of_int errs /. float_of_int m);
      rounds;
      r_used = r;
      s_budget = s;
      ell_used = Array.length params;
      q_used = Hypothesis.quantifier_rank hypothesis;
      branches_explored = !branches;
    }
  in
  let run () =
    explore stage0 0 [] [];
    finish ()
  in
  let salvage () = if !best = None then None else Some (finish ()) in
  (run, salvage)

let solve cfg g lam =
  Obs.Span.with_ "erm_nd.solve"
    ~args:
      [ ("k", string_of_int cfg.k); ("ell", string_of_int cfg.ell_star);
        ("q", string_of_int cfg.q_star) ]
  @@ fun () ->
  let run, _ = solve_inner cfg g lam in
  run ()

let solve_budgeted ?budget ?(precheck = true) ?(ckpt = Resil.Ctl.none) cfg g
    lam =
  Obs.Span.with_ "erm_nd.solve_budgeted"
    ~args:
      [ ("k", string_of_int cfg.k); ("ell", string_of_int cfg.ell_star);
        ("q", string_of_int cfg.q_star) ]
  @@ fun () ->
  match
    Admission.erm ?budget ?radius:cfg.radius
      ~enabled:(precheck && not (Resil.Ctl.active ckpt))
      ~what:"Erm_nd" ~solver:Analysis.Plan.Nd g ~k:cfg.k ~ell:cfg.ell_star
      ~q:cfg.q_star lam
  with
  | Some rejected -> rejected
  | None ->
      let run, salvage = solve_inner ~ckpt cfg g lam in
      Resil.Ctl.with_attached ckpt @@ fun () -> Guard.run ?budget ~salvage run
