(** The fixed-parameter tractable learner for nowhere dense classes
    (Theorem 13 — the precise form of Theorem 2, the paper's main
    algorithmic result).

    The algorithm follows the proof structure exactly:

    + fix the locality radius [r = r(q_star)] (Fact 5) and the game radius
      [R = 3^{ℓ*-1} · (k+2)(2r+1)];
    + compute the {e conflicts} of the training sequence: pairs of a
      positive and a negative example with equal local [(q*, r)]-types —
      examples outside any conflict are classified by their local type
      alone;
    + per round [i]: compute the centre set [X] of Lemma 14 (greedy
      selection of [>4r+2]-separated vertices attending many conflicts),
      guess [Y ⊆ X] with [|Y| <= ℓ*], contract [Y] to ball-disjoint
      centres [Z] with blown-up radius [R'] via Lemma 3 (Vitali), and take
      {e Splitter's answers} to the moves [z ∈ Z] in the modified
      [(R, s)]-splitter game as this round's parameters [ŵ^i];
    + project the graph and the still-conflicted examples into
      [G^{i+1} = N_{R'}(Z)] with fresh distance/neighbour/deletion colours
      plus isolated type-representative vertices (Lemma 16), and repeat for
      at most [s] rounds;
    + output: parameters [w̄ = ŵ^0 ... ŵ^{s-1}] and the best local-type
      hypothesis for [v̄·w̄] (majority vote per class — the paper's final
      "test all formulas of quantifier rank q" step, computed exactly).

    The non-deterministic guess of [Y] is unrolled into a bounded-width
    search scored by final training error; [branch_width] large enough
    makes it exhaustive (DESIGN.md §5). *)

open Cgraph

type config = {
  k : int;  (** arity of the example tuples *)
  ell_star : int;  (** parameter budget [ℓ*] of the comparison class *)
  q_star : int;  (** quantifier-rank budget [q*] of the comparison class *)
  epsilon : float;  (** additive error [ε > 0] *)
  radius : int option;
      (** locality radius override; default [Fo.Gaifman.radius q_star]
          (astronomical for [q* >= 3] — see DESIGN.md §5) *)
  cls : Splitter.Nowhere_dense.t;  (** class descriptor: strategy + [s] *)
  branch_width : int;  (** max [Y]-guesses explored per round *)
  max_rounds : int option;  (** cap on [s] (default: the class bound) *)
  counting : int option;
      (** [Some tmax]: run the learner over {e counting} local types with
          thresholds up to [tmax] (the FOC variant the paper's conclusion
          proposes); [None]: plain FO local types *)
}

val default_config :
  ?epsilon:float -> ?radius:int -> ?branch_width:int -> ?counting:int ->
  k:int -> ell_star:int -> q_star:int -> Splitter.Nowhere_dense.t -> config
(** [epsilon] defaults to 0.1, [branch_width] to 8, [radius] to the
    Gaifman bound, [counting] to off. *)

type round_info = {
  round : int;
  arena_order : int;  (** [|V(G^i)|] *)
  conflicts : int;  (** number of conflicting (pos, neg) class pairs *)
  critical : int;  (** examples involved in some conflict *)
  centre_count : int;  (** [|X|] from Lemma 14 *)
  vitali_radius : int;  (** [R'] from Lemma 3 *)
  answers : Graph.vertex list;
      (** Splitter's answers this round, as original-graph vertices *)
}

type report = {
  hypothesis : Hypothesis.t;
  err : float;  (** training error of the returned hypothesis *)
  rounds : round_info list;  (** the winning branch, round by round *)
  r_used : int;  (** locality radius [r] *)
  s_budget : int;  (** round budget [s] *)
  ell_used : int;  (** [|w̄|  <=  ℓ* · s] *)
  q_used : int;  (** quantifier rank of the witness formula ([<= Q]) *)
  branches_explored : int;
}

val solve : config -> Graph.t -> Sample.t -> report
(** Run the learner.  The Theorem 13 guarantee — when [branch_width]
    covers all guesses and the class strategy wins its games —
    is [err <= ε* + ε] with
    [ε* = min err over H_{k,ℓ*,q*}(G)].
    @raise Invalid_argument on arity mismatch or [epsilon <= 0]. *)

val solve_budgeted :
  ?budget:Guard.Budget.t -> ?precheck:bool -> ?ckpt:Resil.Ctl.t -> config ->
  Graph.t -> Sample.t -> report Guard.outcome
(** {!solve} under a resource budget.  On exhaustion, [best_so_far]
    reports the best leaf of the branch tree reached before the trip,
    or [None] if the search tripped before reaching any leaf.

    [ckpt] threads a checkpoint controller over the leaf index in
    traversal order: the deterministic tree walk is replayed on
    resume, but the per-leaf majority vote is skipped below the
    snapshot cursor (except the recorded best leaf); [precheck]
    (default [true]) gates the call through the static admission
    precheck of {!Analysis.Plan}; see {!Erm_brute.solve_budgeted}. *)

val centre_set :
  Graph.t -> r:int -> cap:int -> critical:Graph.Tuple.t list -> Graph.vertex list
(** The greedy centre set of Lemma 14: vertices pairwise more than
    [4r+2] apart, by decreasing attendance [|Γ(x)|] (critical tuples
    whose [(2r+1)]-neighbourhood contains [x]), at most [cap] many.
    Exposed for the property tests and the E5 diagnostics. *)

val conflicts : Graph.t -> q:int -> r:int -> Sample.t -> (Graph.Tuple.t * Graph.Tuple.t) list
(** The conflict pairs of a training sequence (exposed for tests and the
    E5 diagnostics): one representative pair per (positive class,
    negative class) with equal [ltp_{q,r}]. *)
