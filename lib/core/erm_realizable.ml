open Cgraph

type result = {
  hypothesis : Hypothesis.t;
  mc_calls : int;
  formulas_tried : int;
}

let s_color j = Printf.sprintf "_S%d" j
let pos_color = "_Ppos"
let neg_color = "_Pneg"

(* Atomic: incremented from pool workers during the parallel scan *)
let mc_calls_counter = Atomic.make 0
let hypotheses_enumerated = Obs.Metric.counter "erm.hypotheses_enumerated"
let consistency_checks = Obs.Metric.counter "erm.consistency_checks"
let early_exits = Obs.Metric.counter "erm.early_exits"
let mc_calls_metric = Obs.Metric.counter "erm_realizable.mc_calls"

(* phi_i(x, y_{i+1}..y_l) = exists y_1..y_i. (/\_{j<=i} S_j(y_j)) /\ phi *)
let phi_i ~i phi =
  let bound = List.init i (fun j -> Printf.sprintf "y%d" (j + 1)) in
  let guards =
    List.init i (fun j -> Fo.Formula.color (s_color (j + 1)) (Printf.sprintf "y%d" (j + 1)))
  in
  Fo.Formula.exists_many bound (Fo.Formula.and_ (guards @ [ phi ]))

(* The certificate sentence of Algorithm 2, line 8. *)
let certificate ~ell ~i phi =
  let tail = List.init (ell - i) (fun j -> Printf.sprintf "y%d" (i + j + 1)) in
  let body =
    Fo.Formula.forall "x"
      (Fo.Formula.and_
         [
           Fo.Formula.implies (Fo.Formula.color pos_color "x") (phi_i ~i phi);
           Fo.Formula.implies
             (Fo.Formula.color neg_color "x")
             (Fo.Formula.not_ (phi_i ~i phi));
         ])
  in
  Fo.Formula.exists_many tail body

let expanded g ~prefix ~candidate_index ~candidate lam =
  let colors =
    List.mapi (fun j w -> (s_color (j + 1), [ w ])) prefix
    @ (match candidate with
      | Some u -> [ (s_color candidate_index, [ u ]) ]
      | None -> [])
    @ [
        (pos_color, List.map (fun v -> v.(0)) (Sample.positives lam));
        (neg_color, List.map (fun v -> v.(0)) (Sample.negatives lam));
      ]
  in
  Graph.with_colors g colors

let consistent_extension g ~ell phi lam =
  (match Sample.arity lam with
  | Some 1 | None -> ()
  | Some k ->
      invalid_arg
        (Printf.sprintf "Erm_realizable: k = 1 required, got examples of arity %d" k));
  let allowed = "x" :: List.init ell (fun i -> Printf.sprintf "y%d" (i + 1)) in
  List.iter
    (fun v ->
      if not (List.mem v allowed) then
        invalid_arg
          (Printf.sprintf "Erm_realizable: free variable %S not among x, y1..y%d" v ell))
    (Fo.Formula.free_vars phi);
  let rec fix_prefix i prefix =
    if i > ell then Some (Array.of_list (List.rev prefix))
    else begin
      let rec try_vertex u =
        if u >= Graph.order g then None
        else begin
          let g' =
            expanded g ~prefix:(List.rev prefix) ~candidate_index:i
              ~candidate:(Some u) lam
          in
          Atomic.incr mc_calls_counter;
          Obs.Metric.incr mc_calls_metric;
          if Modelcheck.Eval.sentence g' (certificate ~ell ~i phi) then Some u
          else try_vertex (u + 1)
        end
      in
      match try_vertex 0 with
      | Some u -> fix_prefix (i + 1) (u :: prefix)
      | None -> None
    end
  in
  if ell = 0 then begin
    let g' = expanded g ~prefix:[] ~candidate_index:0 ~candidate:None lam in
    Atomic.incr mc_calls_counter;
    Obs.Metric.incr mc_calls_metric;
    if Modelcheck.Eval.sentence g' (certificate ~ell:0 ~i:0 phi) then Some [||]
    else None
  end
  else fix_prefix 1 []

let result_for g ~total phi ~index params =
  if index < total - 1 then Obs.Metric.incr early_exits;
  (* catalogue formulas use "x"; hypotheses use "x1" *)
  let formula = Fo.Formula.substitute [ ("x", "x1") ] phi in
  {
    hypothesis = Hypothesis.of_formula g ~k:1 ~formula ~params;
    mc_calls = Atomic.get mc_calls_counter;
    formulas_tried = index + 1;
  }

let solve ?pool g ~ell ~catalogue lam =
  Obs.Span.with_ "erm_realizable.solve" ~args:[ ("ell", string_of_int ell) ]
  @@ fun () ->
  Atomic.set mc_calls_counter 0;
  let pool = match pool with Some p -> p | None -> Par.default () in
  if Par.Pool.size pool <= 1 then begin
    let total = List.length catalogue in
    let rec go tried = function
      | [] -> None
      | phi :: rest -> (
          Guard.tick Guard.Solver_loop;
          Obs.Metric.incr hypotheses_enumerated;
          Obs.Metric.incr consistency_checks;
          match consistent_extension g ~ell phi lam with
          | Some params -> Some (result_for g ~total phi ~index:tried params)
          | None -> go (tried + 1) rest)
    in
    go 0 catalogue
  end
  else begin
    (* Parallel scan in catalogue-order blocks: every formula of a
       block is checked concurrently, then the lowest-indexed hit — the
       same formula the sequential scan stops at — wins.  The scan
       stops at the first block containing a hit, so early exit is
       retained up to block granularity; [mc_calls] consequently counts
       a few speculative checks past the winner (the winning hypothesis
       itself is bit-identical to the sequential one). *)
    let arr = Array.of_list catalogue in
    let total = Array.length arr in
    let block = 4 * Par.Pool.size pool in
    let rec scan start =
      if start >= total then None
      else begin
        let stop = min total (start + block) in
        let hits =
          Par.map_tasks pool ~tasks:(stop - start) (fun d ->
              Guard.tick Guard.Solver_loop;
              Obs.Metric.incr hypotheses_enumerated;
              Obs.Metric.incr consistency_checks;
              consistent_extension g ~ell arr.(start + d) lam)
        in
        let rec first d =
          if d >= Array.length hits then None
          else
            match hits.(d) with
            | Some params -> Some (start + d, params)
            | None -> first (d + 1)
        in
        match first 0 with
        | Some (index, params) ->
            Some (result_for g ~total arr.(index) ~index params)
        | None -> scan stop
      end
    in
    scan 0
  end

let solve_budgeted ?budget ?pool g ~ell ~catalogue lam =
  Obs.Span.with_ "erm_realizable.solve_budgeted"
    ~args:[ ("ell", string_of_int ell) ]
  @@ fun () ->
  (* The algorithm keeps no partial state worth salvaging: it returns
     the first consistent formula, so an interrupted scan has no
     best-so-far — only "no answer yet". *)
  Guard.run ?budget
    ~salvage:(fun () -> None)
    (fun () -> solve ?pool g ~ell ~catalogue lam)
