(** The realisable one-dimensional learner
    (Proposition 12 / Algorithm 2 of the paper).

    Setting: [k = 1], and the promise that some hypothesis in
    [H_{1,ℓ,q}(G)] is consistent with the training sequence.  The
    algorithm fixes the parameters [w_1, ..., w_ℓ] one at a time: a prefix
    is kept iff a single model-checking call on a colour expansion of [G]
    (colours [S_j] for the chosen prefix, [P_+]/[P_-] for the examples)
    certifies that it extends to a fully consistent parameter tuple —
    the sentence

    {v exists y_{i+1}.. y_ℓ. forall x.
         (P_+(x) -> φ_i) /\ (P_-(x) -> ~φ_i) v}

    where [φ_i] existentially closes the already-fixed prefix through the
    [S_j] colours.

    The catalogue [Φ'] of candidate formulas is an explicit argument — the
    paper iterates over the full (tower-sized) normal-form catalogue; see
    DESIGN.md §5. *)

open Cgraph

type result = {
  hypothesis : Hypothesis.t;
  mc_calls : int;  (** model-checking oracle calls performed *)
  formulas_tried : int;
}

val solve :
  ?pool:Par.Pool.t ->
  Graph.t ->
  ell:int ->
  catalogue:Fo.Formula.t list ->
  Sample.t ->
  result option
(** [solve g ~ell ~catalogue lam] returns the first catalogue formula
    (free variables among [x1, y1..yℓ]) admitting a consistent parameter
    setting, with the parameters found — or [None] ("reject") when no
    catalogue formula is consistent.  The returned hypothesis has training
    error 0 whenever the promise holds for some catalogue member.
    @raise Invalid_argument if examples are not 1-tuples or a catalogue
    formula has stray free variables. *)

val consistent_extension :
  Graph.t -> ell:int -> Fo.Formula.t -> Sample.t -> Graph.Tuple.t option
(** The inner parameter search for one formula: [Some w̄] iff the prefix
    construction succeeds. *)

val solve_budgeted :
  ?budget:Guard.Budget.t ->
  ?pool:Par.Pool.t ->
  Graph.t ->
  ell:int ->
  catalogue:Fo.Formula.t list ->
  Sample.t ->
  result option Guard.outcome
(** {!solve} under a resource budget.  The scan keeps no partial state,
    so on exhaustion [best_so_far] is always [None] — the caller knows
    only that no catalogue formula was certified before the trip. *)
