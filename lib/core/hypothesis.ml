open Cgraph
module Types = Modelcheck.Types

type t = {
  graph : Graph.t;
  k : int;
  ell : int;
  qrank : int;
  params : Graph.Tuple.t;
  predictor : Graph.Tuple.t -> bool;
  formula : Fo.Formula.t Lazy.t;
  signature : string Lazy.t;
}

let xvars k = List.init k (fun i -> Printf.sprintf "x%d" (i + 1))
let yvars l = List.init l (fun i -> Printf.sprintf "y%d" (i + 1))

(* Rename the Hintikka variables x_{k+1}..x_{k+l} to y_1..y_l so the
   formula exposes the (x̄; ȳ) split of the paper. *)
let to_xy ~k ~ell f =
  let assoc =
    List.init ell (fun i ->
        (Printf.sprintf "x%d" (k + i + 1), Printf.sprintf "y%d" (i + 1)))
  in
  Fo.Formula.substitute assoc f

let check_tuple g v =
  Array.iter
    (fun x -> if x < 0 || x >= Graph.order g then raise (Graph.Invalid_vertex x))
    v

let of_formula g ~k ~formula ~params =
  check_tuple g params;
  let ell = Array.length params in
  Analysis.Guard.require ~what:"Hypothesis.of_formula"
    (Analysis.Guard.budgets ~ell ~k ()
    @ Analysis.Guard.hypothesis_formula ~k ~ell formula);
  let vars = xvars k @ yvars ell in
  (* stage once: every sample tuple then runs the compiled closure tree
     instead of re-walking the AST *)
  let compiled = Modelcheck.Compile.compile g ~vars formula in
  {
    graph = g;
    k;
    ell;
    qrank = Fo.Formula.quantifier_rank formula;
    params;
    predictor =
      (fun v ->
        Modelcheck.Compile.holds_tuple compiled (Graph.Tuple.append v params));
    formula = lazy formula;
    signature =
      lazy
        (Printf.sprintf "F|%s|%s" (Fo.Formula.to_string formula)
           (String.concat "," (Array.to_list (Array.map string_of_int params))));
  }

module TySet = Set.Make (Int)

let type_signature tag ~q types params =
  Printf.sprintf "%s|q=%d|t=%s|w=%s" tag q
    (String.concat ","
       (List.map (fun t -> string_of_int (Types.hash t)) types))
    (String.concat "," (Array.to_list (Array.map string_of_int params)))

let of_types g ~k ~q ~types ~params =
  check_tuple g params;
  let ell = Array.length params in
  let ctx = Types.make_ctx g in
  let members = TySet.of_list (List.map Types.hash types) in
  let types = List.sort_uniq Types.compare types in
  {
    graph = g;
    k;
    ell;
    qrank = q;
    params;
    predictor =
      (fun v ->
        TySet.mem
          (Types.hash (Types.tp ctx ~q (Graph.Tuple.append v params)))
          members);
    formula =
      lazy
        (to_xy ~k ~ell
           (Modelcheck.Hintikka.of_types ~colors:(Graph.color_names g) types));
    signature = lazy (type_signature "T" ~q types params);
  }

let of_local_types g ~k ~q ~r ~types ~params =
  check_tuple g params;
  let ell = Array.length params in
  let ctx = Types.make_ctx g in
  let members = TySet.of_list (List.map Types.hash types) in
  let types = List.sort_uniq Types.compare types in
  {
    graph = g;
    k;
    ell;
    qrank = q + Fo.Gaifman.rank_overhead r + 1;
    params;
    predictor =
      (fun v ->
        TySet.mem
          (Types.hash (Types.ltp ctx ~q ~r (Graph.Tuple.append v params)))
          members);
    formula =
      lazy
        (let colors = Graph.color_names g in
         Fo.Formula.or_
           (List.map
              (fun ty ->
                to_xy ~k ~ell
                  (Fo.Localize.relativize ~r
                     ~around:(Modelcheck.Hintikka.variables (k + ell))
                     (Modelcheck.Hintikka.of_type ~colors ty)))
              types));
    signature = lazy (type_signature (Printf.sprintf "L%d" r) ~q types params);
  }

let of_counting_types g ~k ~q ~tmax ~types ~params =
  check_tuple g params;
  let ell = Array.length params in
  let ctx = Modelcheck.Ctypes.make_ctx g in
  let members =
    TySet.of_list (List.map Modelcheck.Ctypes.hash types)
  in
  let types = List.sort_uniq Modelcheck.Ctypes.compare types in
  {
    graph = g;
    k;
    ell;
    qrank = q;
    params;
    predictor =
      (fun v ->
        TySet.mem
          (Modelcheck.Ctypes.hash
             (Modelcheck.Ctypes.ctp ctx ~q ~tmax (Graph.Tuple.append v params)))
          members);
    formula =
      lazy
        (to_xy ~k ~ell
           (Fo.Formula.or_
              (List.map
                 (Modelcheck.Ctypes.hintikka ~colors:(Graph.color_names g)
                    ~tmax)
                 types)));
    signature =
      lazy
        (Printf.sprintf "C%d|q=%d|t=%s|w=%s" tmax q
           (String.concat ","
              (List.map
                 (fun t -> string_of_int (Modelcheck.Ctypes.hash t))
                 types))
           (String.concat ","
              (Array.to_list (Array.map string_of_int params))));
  }

let of_counting_local_types g ~k ~q ~tmax ~r ~types ~params =
  check_tuple g params;
  let ell = Array.length params in
  let ctx = Modelcheck.Ctypes.make_ctx g in
  let members = TySet.of_list (List.map Modelcheck.Ctypes.hash types) in
  let types = List.sort_uniq Modelcheck.Ctypes.compare types in
  {
    graph = g;
    k;
    ell;
    qrank = q + Fo.Gaifman.rank_overhead r + 1;
    params;
    predictor =
      (fun v ->
        TySet.mem
          (Modelcheck.Ctypes.hash
             (Modelcheck.Ctypes.cltp ctx ~q ~tmax ~r
                (Graph.Tuple.append v params)))
          members);
    formula =
      lazy
        (let colors = Graph.color_names g in
         Fo.Formula.or_
           (List.map
              (fun ty ->
                to_xy ~k ~ell
                  (Fo.Localize.relativize ~r
                     ~around:(Modelcheck.Hintikka.variables (k + ell))
                     (Modelcheck.Ctypes.hintikka ~colors ~tmax ty)))
              types));
    signature =
      lazy
        (Printf.sprintf "CL%d_%d|q=%d|t=%s|w=%s" tmax r q
           (String.concat ","
              (List.map
                 (fun t -> string_of_int (Modelcheck.Ctypes.hash t))
                 types))
           (String.concat ","
              (Array.to_list (Array.map string_of_int params))));
  }

let constantly g ~k b =
  {
    graph = g;
    k;
    ell = 0;
    qrank = 0;
    params = [||];
    predictor = (fun _ -> b);
    formula = lazy (if b then Fo.Formula.tru else Fo.Formula.fls);
    signature = lazy (if b then "C|1" else "C|0");
  }

(* Combine two hypotheses: concatenated parameters, second operand's
   parameter variables shifted past the first's. *)
let combine op_name op_formula op_pred a b =
  if a.k <> b.k then
    invalid_arg (Printf.sprintf "Hypothesis.%s: arity mismatch" op_name);
  let shift =
    List.init b.ell (fun i ->
        (Printf.sprintf "y%d" (i + 1), Printf.sprintf "y%d" (a.ell + i + 1)))
  in
  {
    graph = a.graph;
    k = a.k;
    ell = a.ell + b.ell;
    qrank = max a.qrank b.qrank;
    params = Array.append a.params b.params;
    predictor = (fun v -> op_pred (a.predictor v) (b.predictor v));
    formula =
      lazy
        (op_formula (Lazy.force a.formula)
           (Fo.Formula.substitute shift (Lazy.force b.formula)));
    signature =
      lazy
        (Printf.sprintf "%s(%s;%s)" op_name (Lazy.force a.signature)
           (Lazy.force b.signature));
  }

let conj a b =
  combine "conj" (fun f g -> Fo.Formula.and_ [ f; g ]) ( && ) a b

let disj a b =
  combine "disj" (fun f g -> Fo.Formula.or_ [ f; g ]) ( || ) a b

let negate h =
  {
    h with
    predictor = (fun v -> not (h.predictor v));
    formula = lazy (Fo.Formula.not_ (Lazy.force h.formula));
    signature = lazy ("not(" ^ Lazy.force h.signature ^ ")");
  }

let predict h v =
  if Array.length v <> h.k then
    invalid_arg "Hypothesis.predict: tuple arity mismatch";
  h.predictor v

let formula h = Lazy.force h.formula
let params h = h.params
let k h = h.k
let ell h = h.ell
let quantifier_rank h = h.qrank
let training_error h lam = Sample.error_of h.predictor lam
let signature h = Lazy.force h.signature

let pp ppf h =
  Format.fprintf ppf "@[<v>phi(x1..x%d; y1..y%d) =@;<1 2>@[%a@]@,w = %a@]" h.k
    h.ell Fo.Formula.pp (formula h) Graph.Tuple.pp h.params
