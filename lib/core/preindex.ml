open Cgraph
module Types = Modelcheck.Types

type t = {
  g : Graph.t;
  q : int;
  r : int;
  class_of : int array;  (** vertex -> dense class id *)
  ty_of_class : Types.ty array;
  classes : int;
}

let classes_gauge = Obs.Metric.gauge "preindex.classes"
let build_calls = Obs.Metric.counter "preindex.builds"

let build ?pool ?(ckpt = Resil.Ctl.none) g ~q ~r =
  Obs.Span.with_ "preindex.build"
    ~args:[ ("q", string_of_int q); ("r", string_of_int r) ]
  @@ fun () ->
  Obs.Metric.incr build_calls;
  let pool = match pool with Some p -> p | None -> Par.default () in
  let n = Graph.order g in
  (* phase 1: the per-vertex local types, chunked across the pool (one
     Types context per chunk — the memo tables are not shared between
     domains).  Sequential fallback keeps one shared context, which
     memoises better.

     [ckpt] only reports progress (vertex frontier) for cadence
     snapshots: local types are cheap relative to the ERM sweeps and
     depend on shared memo state, so a resumed build recomputes them
     from scratch rather than replay-skipping. *)
  let vertex_ty =
    if Par.Pool.size pool <= 1 || n <= 1 then begin
      let ctx = Types.make_ctx g in
      Array.init n (fun v ->
          let ty = Types.ltp ctx ~q ~r [| v |] in
          Resil.Ctl.chunk_done ckpt ~lo:v ~hi:(v + 1) ~best:None;
          ty)
    end
    else begin
      let out = Array.make n None in
      Par.map_reduce_chunks pool ~n
        ~map:(fun lo hi ->
          let ctx = Types.make_ctx g in
          for v = lo to hi - 1 do
            out.(v) <- Some (Types.ltp ctx ~q ~r [| v |])
          done;
          Resil.Ctl.chunk_done ckpt ~lo ~hi ~best:None)
        ~reduce:(fun () () -> ())
        ~init:() ();
      Array.map
        (function Some ty -> ty | None -> assert false)
        out
    end
  in
  (* phase 2: dense class ids, assigned sequentially in vertex order so
     the numbering is identical whatever the pool size *)
  let ids : (Types.ty, int) Hashtbl.t = Hashtbl.create 32 in
  let tys = ref [] in
  let class_of =
    Array.init n (fun v ->
        let ty = vertex_ty.(v) in
        match Hashtbl.find_opt ids ty with
        | Some c -> c
        | None ->
            let c = Hashtbl.length ids in
            Hashtbl.replace ids ty c;
            tys := ty :: !tys;
            c)
  in
  Obs.Metric.set classes_gauge (float_of_int (Hashtbl.length ids));
  {
    g;
    q;
    r;
    class_of;
    ty_of_class = Array.of_list (List.rev !tys);
    classes = Hashtbl.length ids;
  }

let graph idx = idx.g
let class_count idx = idx.classes

let vertex_class idx v =
  if v < 0 || v >= Array.length idx.class_of then
    raise (Graph.Invalid_vertex v);
  idx.class_of.(v)

type answer = {
  hypothesis : Hypothesis.t;
  err : float;
}

let erm idx lam =
  (match Sample.arity lam with
  | Some 1 | None -> ()
  | Some k ->
      invalid_arg
        (Printf.sprintf "Preindex.erm: unary examples required, got arity %d" k));
  let pos = Array.make idx.classes 0 and neg = Array.make idx.classes 0 in
  List.iter
    (fun (v, label) ->
      let c = vertex_class idx v.(0) in
      if label then pos.(c) <- pos.(c) + 1 else neg.(c) <- neg.(c) + 1)
    lam;
  let chosen = ref [] and errs = ref 0 in
  for c = 0 to idx.classes - 1 do
    if pos.(c) > neg.(c) then begin
      chosen := idx.ty_of_class.(c) :: !chosen;
      errs := !errs + neg.(c)
    end
    else errs := !errs + pos.(c)
  done;
  let m = Sample.size lam in
  {
    hypothesis =
      Hypothesis.of_local_types idx.g ~k:1 ~q:idx.q ~r:idx.r ~types:!chosen
        ~params:[||];
    err = (if m = 0 then 0.0 else float_of_int !errs /. float_of_int m);
  }
