(** Preprocessing for repeated learning tasks over one background graph.

    The paper's conclusion asks whether sublinear-time learning on
    nowhere dense classes becomes possible "after a polynomial-time
    preprocessing phase (similar to the results of [21, 19] for monadic
    second-order logic on strings and trees)".  This module instantiates
    that regime for unary, parameterless local-type hypotheses: one pass
    computes the canonical local type of every vertex; afterwards every
    ERM task on the same graph costs [O(m)] — independent of [n].

    (The string and tree counterparts live in {!Mso.Oracle} and
    {!Mso.Tree_learner.Node_oracle}.) *)

open Cgraph

type t

val build : ?pool:Par.Pool.t -> ?ckpt:Resil.Ctl.t -> Graph.t -> q:int -> r:int -> t
(** One preprocessing pass: [ltp_{q,r}(G, v)] for every vertex.
    [pool] (default {!Par.default}) computes the per-vertex local types
    in parallel chunks; dense class ids are then assigned sequentially
    in vertex order, so the resulting index is identical whatever the
    pool size.  [ckpt] reports the settled-vertex frontier for cadence
    snapshots (progress visibility only — a resumed build recomputes
    the cheap per-vertex types rather than replay-skipping them). *)

val graph : t -> Graph.t
val class_count : t -> int
(** Number of distinct local-type classes realised. *)

val vertex_class : t -> Graph.vertex -> int
(** Dense class id of a vertex, [O(1)]. *)

type answer = {
  hypothesis : Hypothesis.t;
  err : float;
}

val erm : t -> Sample.t -> answer
(** Exact ERM over parameterless unary local-type hypotheses: majority
    vote per precomputed class, [O(m)] after the build.
    @raise Invalid_argument if an example is not a 1-tuple. *)
