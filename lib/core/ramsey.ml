(* Saturating arithmetic.  The old code only tested [x < 0] after a
   native multiplication, which misses products that wrap past min_int
   back into the positives — [R(2, s, 3)] bounds do exactly that for
   modest [s].  All quantities here are non-negative, so saturation is
   detected {e before} the operation. *)

type bound = Finite of int | Saturated

let bound_to_string = function
  | Finite v -> string_of_int v
  | Saturated -> "saturated"

let pp_bound ppf b = Format.pp_print_string ppf (bound_to_string b)

(* both operands must be >= 0 *)
let ( +! ) a b =
  match (a, b) with
  | Finite a, Finite b -> if a > max_int - b then Saturated else Finite (a + b)
  | _ -> Saturated

let ( *! ) a b =
  match (a, b) with
  | Finite a, Finite b ->
      if a <> 0 && b > max_int / a then Saturated else Finite (a * b)
  | _ -> Saturated

let to_exn name = function
  | Finite v -> v
  | Saturated -> invalid_arg (name ^ ": overflow")

let factorial_sat n =
  if n < 0 then invalid_arg "Ramsey.factorial: negative input";
  let rec go acc i = if i > n then acc else go (acc *! Finite i) (i + 1) in
  go (Finite 1) 1

let factorial n = to_exn "Ramsey.factorial" (factorial_sat n)

let binomial_sat n k =
  if k < 0 || k > n then Finite 0
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else
        (* exact: acc holds C(n-k+i-1, i-1), and i consecutive integers
           ending at n-k+i contain a multiple of i *)
        match acc *! Finite (n - k + i) with
        | Saturated -> Saturated
        | Finite p -> go (Finite (p / i)) (i + 1)
    in
    go (Finite 1) 1
  end

let binomial n k = to_exn "Ramsey.binomial" (binomial_sat n k)

let triangle_bound_sat ~colors =
  if colors < 1 then invalid_arg "Ramsey.triangle_bound: need >= 1 colour";
  (* R_s(3) <= floor(s! * e) + 1 = 1 + sum_{i=0..s} s!/i!  (Greenwood-
     Gleason style bound) *)
  let s = colors in
  let total = ref (Finite 0) in
  let term = ref (Finite 1) in
  (* term = s! / i! computed downwards from i = s (term 1) to i = 0 *)
  for i = s downto 0 do
    total := !total +! !term;
    if i >= 1 then term := !term *! Finite i
  done;
  !total +! Finite 1

let triangle_bound ~colors =
  to_exn "Ramsey.triangle_bound" (triangle_bound_sat ~colors)

let ramsey_upper_sat ~colors ~clique =
  if colors < 1 || clique < 1 then
    invalid_arg "Ramsey.ramsey_upper: need colors, clique >= 1";
  let memo : (int list, bound) Hashtbl.t = Hashtbl.create 64 in
  (* args: multiset of clique targets, sorted *)
  let rec r args =
    match args with
    | [] -> Finite 1
    | _ when List.mem 1 args -> Finite 1
    | [ m ] -> Finite m (* one colour: K_m appears at n = m *)
    | _ when List.mem 2 args ->
        (* R(2, rest) = R(rest): either some pair takes the "2" colour,
           or the colouring never uses it *)
        let rec drop_one = function
          | 2 :: rest -> rest
          | x :: rest -> x :: drop_one rest
          | [] -> []
        in
        r (drop_one args)
    | _ -> (
        let args = List.sort compare args in
        match Hashtbl.find_opt memo args with
        | Some v -> v
        | None ->
            let s = List.length args in
            let sum =
              List.fold_left ( +! ) (Finite 0)
                (List.mapi
                   (fun i _ ->
                     r (List.mapi (fun j m -> if i = j then m - 1 else m) args))
                   args)
            in
            (* the recurrence's 2 - s correction; each child is >= 1 so
               the true total stays >= 2 and subtraction cannot wrap *)
            let total =
              match sum with
              | Saturated -> Saturated
              | Finite v -> Finite (v + 2 - s)
            in
            Hashtbl.replace memo args total;
            total)
  in
  r (List.init colors (fun _ -> clique))

let ramsey_upper ~colors ~clique =
  to_exn "Ramsey.ramsey_upper" (ramsey_upper_sat ~colors ~clique)

let monochromatic_triple ~color ~equal vs =
  let arr = Array.of_list (List.sort_uniq compare vs) in
  let n = Array.length arr in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         let cij = color arr.(i) arr.(j) in
         for l = j + 1 to n - 1 do
           if
             equal cij (color arr.(i) arr.(l))
             && equal cij (color arr.(j) arr.(l))
           then begin
             found := Some (arr.(i), arr.(j), arr.(l));
             raise Exit
           end
         done
       done
     done
   with Exit -> ());
  !found

let eliminate_until_ramsey_free ~color ~equal vs =
  let rec go vs =
    match monochromatic_triple ~color ~equal vs with
    | None -> vs
    | Some (_, v2, _) -> go (List.filter (fun v -> v <> v2) vs)
  in
  go (List.sort_uniq compare vs)
