(** Ramsey-theoretic bounds for the hardness reduction (Lemma 7).

    The reduction needs [h(p) = R(2, s, 3)]: every 2-colouring... more
    precisely every [s]-colouring of the edges of a complete graph on more
    than [R(2, s, 3)] vertices contains a monochromatic triangle.  The
    classical multicolour bound is [R_s(3) <= ceil(s! * e) + 1]. *)

(** A bound that may exceed the native integer range.  The arithmetic
    below saturates {e before} the operation that would overflow, so a
    too-large bound is reported as {!Saturated} rather than as a
    silently wrapped (possibly positive!) native int. *)
type bound = Finite of int | Saturated

val bound_to_string : bound -> string
val pp_bound : Format.formatter -> bound -> unit

val factorial_sat : int -> bound
(** @raise Invalid_argument on negative input. *)

val binomial_sat : int -> int -> bound
(** [binomial_sat n k], [Finite 0] outside range. *)

val triangle_bound_sat : colors:int -> bound
(** Saturating {!triangle_bound}.
    @raise Invalid_argument if [colors < 1]. *)

val ramsey_upper_sat : colors:int -> clique:int -> bound
(** Saturating {!ramsey_upper}.
    @raise Invalid_argument if [colors < 1] or [clique < 1]. *)

val factorial : int -> int
(** @raise Invalid_argument on negative input or overflow. *)

val binomial : int -> int -> int
(** [binomial n k], 0 outside range.  @raise Invalid_argument on overflow. *)

val triangle_bound : colors:int -> int
(** Upper bound on [R(2, s, 3)]: with more vertices than this, any
    [s]-colouring of pairs has a monochromatic triple.
    [triangle_bound ~colors:1 = 3], [~colors:2 = 6] (the classical
    [R(3,3)]), [~colors:3 = 17].
    @raise Invalid_argument if [colors < 1] or the bound overflows. *)

val ramsey_upper : colors:int -> clique:int -> int
(** Generic multicolour 2-uniform upper bound [R_s(m)] via the recurrence
    [R(m_1, ..., m_s) <= 2 - s + Σ_i R(..., m_i - 1, ...)] with symmetric
    arguments.  Memoised.  @raise Invalid_argument on overflow. *)

val monochromatic_triple :
  color:(int -> int -> 'c) -> equal:('c -> 'c -> bool) -> int list ->
  (int * int * int) option
(** Find [v1 < v2 < v3] in the list with
    [color v1 v2 = color v1 v3 = color v2 v3] (the elimination step of
    Lemma 7's representative-set construction).  [color u v] is only
    called with [u < v]. *)

val eliminate_until_ramsey_free :
  color:(int -> int -> 'c) -> equal:('c -> 'c -> bool) -> int list -> int list
(** Repeatedly find a monochromatic triple [v1, v2, v3] and drop the
    middle element [v2], until no monochromatic triple remains.  By
    Ramsey's theorem the result has at most [triangle_bound ~colors:s]
    elements where [s] is the number of distinct colours; by Claim 9 of
    the paper it retains a representative of every colour-equivalence
    class when [color] arises from oracle answers. *)
