open Cgraph

type oracle = Graph.t -> Sample.t -> ell:int -> q:int -> eps:float -> Hypothesis.t

let oracle_calls_metric = Obs.Metric.counter "reduction.oracle_calls"
let nodes_metric = Obs.Metric.counter "reduction.recursion_nodes"

let exact_oracle g lam ~ell ~q ~eps:_ =
  (Erm_brute.solve g ~k:1 ~ell ~q lam).Erm_brute.hypothesis

type stats = {
  oracle_calls : int;
  recursion_nodes : int;
  representative_sets : int list;
  colors_observed : int;
}

(* Substitute the witness x := t into psi(x), turning it into a sentence
   over the expansion with colours p (= {t}) and qc (= N(t)).  Tracks
   shadowing of x by inner binders.  [t_colors] are the colours holding at
   t, to resolve colour atoms on x. *)
let rec subst_witness ~x ~p ~qc ~t_colors (f : Fo.Formula.t) : Fo.Formula.t =
  let recur = subst_witness ~x ~p ~qc ~t_colors in
  match f with
  | True | False -> f
  | Atom (Eq (a, b)) ->
      if a = x && b = x then Fo.Formula.tru
      else if a = x then Fo.Formula.color p b
      else if b = x then Fo.Formula.color p a
      else f
  | Atom (Edge (a, b)) ->
      if a = x && b = x then Fo.Formula.fls (* E is irreflexive *)
      else if a = x then Fo.Formula.color qc b
      else if b = x then Fo.Formula.color qc a
      else f
  | Atom (Color (c, a)) ->
      if a = x then if List.mem c t_colors then Fo.Formula.tru else Fo.Formula.fls
      else f
  | Not g -> Fo.Formula.not_ (recur g)
  | And fs -> Fo.Formula.and_ (List.map recur fs)
  | Or fs -> Fo.Formula.or_ (List.map recur fs)
  | Implies (a, b) -> Fo.Formula.implies (recur a) (recur b)
  | Iff (a, b) -> Fo.Formula.iff (recur a) (recur b)
  | Exists (y, g) -> if y = x then f else Fo.Formula.exists y (recur g)
  | Forall (y, g) -> if y = x then f else Fo.Formula.forall y (recur g)
  | CountGe (t, y, g) ->
      if y = x then f else Fo.Formula.count_ge t y (recur g)

(* ------------------------------------------------------------------ *)
(* The general-L construction: compute a separating formula gamma(x)
   even when the oracle is allowed parameters (Lemma 7, second part).   *)
(* ------------------------------------------------------------------ *)

(* The general-L branch returns the separating classifier semantically, as
   a set of canonical local types together with the localisation
   parameters (q̂, r').  This is exactly the paper's φ''': an r'-local
   formula free of the parameter colours.  Materialising it would be a
   disjunction of r'-relativised Hintikka formulas; for the reduction we
   need (a) a canonical identity usable as a Ramsey colour and (b) its
   value on vertices of G — both are available from the type set
   directly. *)
type gamma = {
  g_sig : string;  (** canonical identity (Ramsey colour) *)
  g_holds : Graph.vertex -> bool;  (** evaluation on the original graph *)
}

let gamma_general ?(counter = ref 0) ~oracle ~oracle_ell ~radius ~q g u v () =
  let call_counter = counter in
  let ell = max 1 oracle_ell in
  let copies = 2 * ell in
  let ghat, inj = Ops.copies g copies in
  let lam =
    List.concat
      (List.init copies (fun i ->
           [ ([| inj i u |], false); ([| inj i v |], true) ]))
  in
  (* quantifier-rank allowance for the localised discriminator *)
  let q_star = q + Fo.Gaifman.rank_overhead radius + 1 in
  incr call_counter;
  let h = oracle ghat lam ~ell ~q:q_star ~eps:(1.0 /. 8.0) in
  let params = Hypothesis.params h in
  let n = Graph.order g in
  let copy_of w = w / n in
  (* an index that is neither covered by a parameter nor misclassified *)
  let good_index =
    let rec find i =
      if i >= copies then None
      else begin
        let covered = Array.exists (fun w -> copy_of w = i) params in
        let wrong =
          Hypothesis.predict h [| inj i u |]
          || not (Hypothesis.predict h [| inj i v |])
        in
        if (not covered) && not wrong then Some i else find (i + 1)
      end
    in
    find 0
  in
  match good_index with
  | None ->
      (* the oracle beat the counting bound only if the types were equal;
         any constant colour is fine then *)
      { g_sig = "gamma:none"; g_holds = (fun _ -> false) }
  | Some _ ->
      (* φ'(x) := h(x) as a unary predicate on Ĝ (the parameters are part
         of h); S = its satisfying set. *)
      let s =
        Array.init (Graph.order ghat) (fun a -> Hypothesis.predict h [| a |])
      in
      (* constructive Gaifman on the instance: find (q̂, r') such that on
         every vertex FAR from all parameters, membership in S is a union
         of local (q̂, r')-type classes.  Far vertices are the only ones
         the claim needs (u°, v° are far, and every vertex of the
         parameterless G is far). *)
      let dist_to_params =
        Bfs.distances_multi ghat (Array.to_list params)
      in
      let ctx_hat = Modelcheck.Types.make_ctx ghat in
      let max_r = max radius (Invariants.diameter g + 1) in
      let rec localise q_hat r' =
        let far a = dist_to_params.(a) > r' in
        let pos_types = Hashtbl.create 16 and neg_types = Hashtbl.create 16 in
        List.iter
          (fun a ->
            if far a then begin
              let t = Modelcheck.Types.ltp ctx_hat ~q:q_hat ~r:r' [| a |] in
              if s.(a) then Hashtbl.replace pos_types t ()
              else Hashtbl.replace neg_types t ()
            end)
          (Graph.vertices ghat);
        let clash =
          Hashtbl.fold
            (fun t () acc -> acc || Hashtbl.mem neg_types t)
            pos_types false
        in
        if not clash then (q_hat, r', pos_types)
        else if r' < max_r then localise q_hat (min max_r (2 * r'))
        else if q_hat < q_star + ell + 1 then localise (q_hat + 1) radius
        else
          failwith
            "Reduction.gamma_general: could not localise the separator"
      in
      let q_hat, r', pos_types = localise q_star (max 1 radius) in
      let theta =
        Hashtbl.fold (fun t () acc -> Modelcheck.Types.hash t :: acc) pos_types []
        |> List.sort compare
      in
      let ctx_g = Modelcheck.Types.make_ctx g in
      {
        g_sig =
          Printf.sprintf "gamma:q=%d;r=%d;%s" q_hat r'
            (String.concat "," (List.map string_of_int theta));
        g_holds =
          (fun a ->
            let t = Modelcheck.Types.ltp ctx_g ~q:q_hat ~r:r' [| a |] in
            List.mem (Modelcheck.Types.hash t) theta);
      }

(* ------------------------------------------------------------------ *)
(* The reduction                                                       *)
(* ------------------------------------------------------------------ *)

let model_check ?(general_l = false) ?(oracle_ell = 1) ?locality_radius ~oracle
    g phi =
  Analysis.Guard.require ~what:"Reduction.model_check"
    (Analysis.Guard.sentence phi);
  let oracle_calls = ref 0 in
  let nodes = ref 0 in
  let rep_sets = ref [] in
  let max_colors = ref 0 in
  let fresh_counter = ref 0 in
  let rec decide g (phi : Fo.Formula.t) =
    Guard.tick Guard.Solver_loop;
    incr nodes;
    match phi with
    | True -> true
    | False -> false
    | Atom _ -> assert false (* sentences have no free variables *)
    | Not f -> not (decide g f)
    | And fs -> List.for_all (decide g) fs
    | Or fs -> List.exists (decide g) fs
    | Implies (a, b) -> (not (decide g a)) || decide g b
    | Iff (a, b) -> decide g a = decide g b
    | Forall (x, body) ->
        not (decide g (Fo.Formula.Exists (x, Fo.Formula.not_ body)))
    | CountGe _ ->
        invalid_arg
          "Reduction.model_check: counting quantifiers are outside the \
           plain-FO reduction (Lemma 7); use Modelcheck.Eval directly"
    | Exists (x, body) -> exists_case g x body
  and exists_case g x body =
    let n = Graph.order g in
    if n = 0 then false
    else begin
      let q = Fo.Formula.quantifier_rank body in
      let radius =
        match locality_radius with
        | Some r -> r
        | None -> ( try Fo.Gaifman.radius q with Invalid_argument _ -> 8)
      in
      (* gamma colouring of pairs, via oracle calls *)
      let gamma_tbl : (int * int, string) Hashtbl.t = Hashtbl.create 64 in
      let gamma u v =
        let u, v = (min u v, max u v) in
        match Hashtbl.find_opt gamma_tbl (u, v) with
        | Some s -> s
        | None ->
            let s =
              if general_l then
                (gamma_general ~counter:oracle_calls ~oracle ~oracle_ell
                   ~radius ~q g u v ())
                  .g_sig
              else begin
                incr oracle_calls;
                let h =
                  oracle g [ ([| u |], false); ([| v |], true) ] ~ell:0 ~q
                    ~eps:0.25
                in
                Hypothesis.signature h
              end
            in
            Hashtbl.replace gamma_tbl (u, v) s;
            s
      in
      let t_set =
        Ramsey.eliminate_until_ramsey_free ~color:gamma ~equal:String.equal
          (Graph.vertices g)
      in
      rep_sets := List.length t_set :: !rep_sets;
      let distinct_colors =
        Hashtbl.fold (fun _ s acc -> if List.mem s acc then acc else s :: acc)
          gamma_tbl []
        |> List.length
      in
      max_colors := max !max_colors distinct_colors;
      List.exists
        (fun t ->
          incr fresh_counter;
          let p = Printf.sprintf "_Pt%d" !fresh_counter in
          let qc = Printf.sprintf "_Qt%d" !fresh_counter in
          let g_t =
            Graph.with_colors g
              [ (p, [ t ]); (qc, Array.to_list (Graph.neighbors g t)) ]
          in
          let t_colors = Graph.colors_of g t in
          let psi_t = subst_witness ~x ~p ~qc ~t_colors body in
          decide g_t psi_t)
        t_set
    end
  in
  let result =
    Obs.Span.with_ "reduction.model_check" (fun () -> decide g phi)
  in
  Obs.Metric.add oracle_calls_metric !oracle_calls;
  Obs.Metric.add nodes_metric !nodes;
  ( result,
    {
      oracle_calls = !oracle_calls;
      recursion_nodes = !nodes;
      representative_sets = List.rev !rep_sets;
      colors_observed = !max_colors;
    } )

let model_check_budgeted ?budget ?(precheck = true) ?general_l ?oracle_ell
    ?locality_radius ~oracle g phi =
  match
    Admission.model_check ?budget ~enabled:precheck
      ~what:"Reduction.model_check" g phi
  with
  | Some rejected -> rejected
  | None ->
      (* A half-finished decision procedure has no meaningful partial
         verdict, so exhaustion salvages nothing; the caller still gets
         the reason and the resources spent. *)
      Guard.run ?budget
        ~salvage:(fun () -> None)
        (fun () ->
          model_check ?general_l ?oracle_ell ?locality_radius ~oracle g phi)
