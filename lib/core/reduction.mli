(** The hardness reduction: FO model checking via an ERM oracle
    (Theorem 1 / Lemma 7 of the paper).

    Given oracle access to [(L,Q)]-FO-ERM, the reduction decides
    [G |= φ] in fpt time.  For a sentence [∃x ψ(x)] it:

    + queries the oracle on every pair [Λ = ((u,0), (v,1))] with
      [k = 1, ℓ* = 0, q* = qr(ψ), ε = 1/4], obtaining formulas
      [γ_{u,v}] that provably separate [u] from [v] whenever their
      [qr(ψ)]-types differ (Claim 8);
    + uses the [γ]s as a Ramsey colouring: repeatedly removing the middle
      vertex of a monochromatic triple (Claim 9) shrinks [V(G)] to a set
      [T] of type representatives of size bounded by [R(2, s, 3)];
    + for each [t ∈ T], rewrites [ψ(x)] into a {e sentence} [ψ_t] over the
      expansion [G_t] with fresh colours [P_t = {t}], [Q_t = N(t)]
      (replacing [x = y ↦ P_t(y)], [E(x, y) ↦ Q_t(y)]) and recurses.

    When the oracle may use parameters ([L(1,0,q) > 0]), Claim 8 fails as
    stated and the reduction runs the paper's general construction: the
    disjoint union [Ĝ] of [2ℓ] copies of [G], a training sequence with one
    [(u,v)] pair per copy, locating a copy that is neither {e covered} by
    a parameter nor {e wrong}, and erasing the parameters from an
    [r']-localised rewriting of the returned hypothesis ([φ' → φ'' →
    φ''']).  Enable it with [general_l:true]. *)

open Cgraph

type oracle = Graph.t -> Sample.t -> ell:int -> q:int -> eps:float -> Hypothesis.t
(** An [(L,Q)]-FO-ERM oracle for [k = 1]: may return a hypothesis with at
    most [ell] parameters and rank at most the oracle's own [Q] bound. *)

val exact_oracle : oracle
(** The exact ERM solver ({!Erm_brute}) as oracle — sound for both modes
    (it honours [ℓ] exactly, so Claim 8 applies with [general_l:false]). *)

type gamma = {
  g_sig : string;  (** canonical identity, used as the Ramsey colour *)
  g_holds : Graph.vertex -> bool;  (** the classifier evaluated on [G] *)
}
(** A separating classifier [γ_{u,v}] produced by the general-[L]
    construction: semantically, the paper's [φ'''] — an [r']-local,
    parameter-free formula represented as a set of canonical local types
    (materialisable as a relativised Hintikka disjunction). *)

val gamma_general :
  ?counter:int ref ->
  oracle:oracle ->
  oracle_ell:int ->
  radius:int ->
  q:int ->
  Graph.t ->
  Graph.vertex ->
  Graph.vertex ->
  unit ->
  gamma
(** One run of the disjoint-copies construction for the pair [(u, v)].
    Guarantee (Claim 8, general form): if [tp_q(G, u) ≠ tp_q(G, v)], then
    [g_holds u = false] and [g_holds v = true].  [counter] accumulates
    oracle calls. *)

type stats = {
  oracle_calls : int;
  recursion_nodes : int;  (** sentences model-checked, incl. the root *)
  representative_sets : int list;
      (** [|T|] at each existential node, in visit order *)
  colors_observed : int;  (** max distinct oracle answers at any node *)
}

val model_check :
  ?general_l:bool ->
  ?oracle_ell:int ->
  ?locality_radius:int ->
  oracle:oracle ->
  Graph.t ->
  Fo.Formula.t ->
  bool * stats
(** Decide [G |= φ] using only ERM-oracle calls (plus trivial boolean
    glue).  [φ] must be a sentence.  With [general_l:true], [oracle_ell]
    (default 1) is the parameter allowance [L] granted to the oracle and
    [locality_radius] overrides the Gaifman radius used for the localised
    rewriting (DESIGN.md §5; the rewriting is {e verified} against the
    non-local formula on [Ĝ'] and the radius grown until equivalent, so
    the answer stays sound at any starting radius).
    @raise Invalid_argument if [φ] has free variables. *)

val model_check_budgeted :
  ?budget:Guard.Budget.t ->
  ?precheck:bool ->
  ?general_l:bool ->
  ?oracle_ell:int ->
  ?locality_radius:int ->
  oracle:oracle ->
  Graph.t ->
  Fo.Formula.t ->
  (bool * stats) Guard.outcome
(** {!model_check} under a resource budget.  A decision procedure has
    no partial verdict, so [best_so_far] is always [None] on
    exhaustion; the outcome still carries the trip reason and the
    resources spent.

    [precheck] (default [true]) first compares the fuel limit against
    {!Analysis.Plan.model_check_floor} — the structural minimum number
    of solver-loop ticks any completed run must spend, independent of
    the oracle.  A provably insufficient budget returns [Exhausted]
    immediately with zero fuel burnt; pass [false] to bypass. *)
