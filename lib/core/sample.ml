open Cgraph

type example = Graph.Tuple.t * bool
type t = example list

let size = List.length

let positives lam = List.filter_map (fun (v, b) -> if b then Some v else None) lam
let negatives lam = List.filter_map (fun (v, b) -> if b then None else Some v) lam

let arity = function
  | [] -> None
  | (first, _) :: rest ->
      let k = Array.length first in
      List.iter
        (fun (v, _) ->
          if Array.length v <> k then
            invalid_arg "Sample.arity: examples of mixed arity")
        rest;
      Some k

let errors_of h lam =
  List.fold_left (fun acc (v, b) -> if h v <> b then acc + 1 else acc) 0 lam

let error_of h lam =
  match lam with
  | [] -> 0.0
  | _ -> float_of_int (errors_of h lam) /. float_of_int (size lam)

let all_tuples g ~k = Graph.Tuple.all ~n:(Graph.order g) ~k

let random_tuples ~seed g ~k ~m =
  let st = Random.State.make [| seed; 0x5a |] in
  let n = Graph.order g in
  if n = 0 && m > 0 then invalid_arg "Sample.random_tuples: empty graph";
  List.init m (fun _ -> Array.init k (fun _ -> Random.State.int st n))

let label_with _g ~target tuples = List.map (fun v -> (v, target v)) tuples

let label_with_query g ~formula ~xvars ?(yvars = []) ?(params = [||]) tuples =
  if List.length yvars <> Array.length params then
    invalid_arg "Sample.label_with_query: parameter arity mismatch";
  let vars = xvars @ yvars in
  Analysis.Guard.require ~what:"Sample.label_with_query"
    (Analysis.Fo_check.check ~allowed_free:vars formula);
  let compiled = Modelcheck.Compile.compile g ~vars formula in
  List.map
    (fun v ->
      (v, Modelcheck.Compile.holds_tuple compiled (Graph.Tuple.append v params)))
    tuples

let flip_noise ~seed ~p lam =
  if p < 0.0 || p > 1.0 then invalid_arg "Sample.flip_noise: bad probability";
  let st = Random.State.make [| seed; 0xf1 |] in
  List.map
    (fun (v, b) -> if Random.State.float st 1.0 < p then (v, not b) else (v, b))
    lam

let shuffle ~seed lam =
  let st = Random.State.make [| seed; 0x5f |] in
  let arr = Array.of_list lam in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let split ~seed ~ratio lam =
  if ratio < 0.0 || ratio > 1.0 then invalid_arg "Sample.split: bad ratio";
  let shuffled = shuffle ~seed lam in
  let cut =
    int_of_float (Float.round (ratio *. float_of_int (List.length shuffled)))
  in
  (List.filteri (fun i _ -> i < cut) shuffled,
   List.filteri (fun i _ -> i >= cut) shuffled)

let kfold ~seed ~k lam =
  let m = List.length lam in
  if k < 1 || k > m then invalid_arg "Sample.kfold: need 1 <= k <= size";
  let shuffled = shuffle ~seed lam in
  List.init k (fun fold ->
      let validation =
        List.filteri (fun i _ -> i mod k = fold) shuffled
      in
      let train = List.filteri (fun i _ -> i mod k <> fold) shuffled in
      (train, validation))

let pp ppf lam =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (v, b) ->
      Format.fprintf ppf "%a -> %d@," Graph.Tuple.pp v (if b then 1 else 0))
    lam;
  Format.fprintf ppf "@]"
