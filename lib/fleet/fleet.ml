(* Fault-tolerant multi-process ERM sharding.  See the .mli for the
   protocol; implementation notes:

   - Everything durable goes through [Resil.atomic_write] (or
     [Lease.claim]'s link(2)), so every file in the fleet directory is
     either absent, a previous complete version, or the new complete
     version — the coordinator never parses torn state.
   - The coordinator is a poll loop, not an event loop: each pass
     reaps/respawns workers, ingests published results and failure
     reports, expires dead leases, and refreshes the monitor.  The
     poll period is well below the heartbeat, so a dead worker's chunk
     returns to the pool within one heartbeat of its deadline.
   - Retry policy mirrors [Par]'s in-process fault isolation: failures
     bump the chunk's fence and back off exponentially (capped, with
     deterministic jitter); a chunk that reaches [max_attempts]
     failures is quarantined into the poison list and the run settles
     around it, reporting degradation instead of wedging. *)

module Lease = Lease

let leases_claimed_c = Obs.Metric.counter "fleet.leases_claimed"
let leases_expired_c = Obs.Metric.counter "fleet.leases_expired"
let chunks_done_c = Obs.Metric.counter "fleet.chunks_done"
let chunks_quarantined_c = Obs.Metric.counter "fleet.chunks_quarantined"
let stale_publishes_c = Obs.Metric.counter "fleet.stale_publishes"
let workers_respawned_c = Obs.Metric.counter "fleet.workers_respawned"
let failures_retried_c = Obs.Metric.counter "fleet.failures_retried"

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

module Layout = struct
  let meta dir = Filename.concat dir "meta.json"
  let leases_dir dir = Filename.concat dir "leases"
  let lease dir c = Filename.concat (leases_dir dir) (Printf.sprintf "%06d.lease" c)
  let fence_dir dir = Filename.concat dir "fence"
  let fence dir c = Filename.concat (fence_dir dir) (Printf.sprintf "%06d.json" c)
  let done_dir dir = Filename.concat dir "done"
  let done_file dir c = Filename.concat (done_dir dir) (Printf.sprintf "%06d.snap" c)
  let fail_dir dir = Filename.concat dir "fail"

  let fail_file dir c ~fence =
    Filename.concat (fail_dir dir) (Printf.sprintf "%06d.f%d.json" c fence)

  let poison_dir dir = Filename.concat dir "poison"

  let poison_file dir c =
    Filename.concat (poison_dir dir) (Printf.sprintf "%06d.json" c)

  let workers_dir dir = Filename.concat dir "workers"
  let worker_reg dir id = Filename.concat (workers_dir dir) (id ^ ".json")
  let done_marker dir = Filename.concat dir "DONE"
  let summary dir = Filename.concat dir "summary.json"

  let ensure dir =
    List.iter mkdir_p
      [
        dir; leases_dir dir; fence_dir dir; done_dir dir; fail_dir dir;
        poison_dir dir; workers_dir dir;
      ]
end

(* ------------------------------------------------------------------ *)
(* Run metadata                                                        *)
(* ------------------------------------------------------------------ *)

module Meta = struct
  type t = {
    run_id : string;
    solver : string;
    total : int;
    chunk_size : int;
    heartbeat_s : float;
    max_attempts : int;
    sample_size : int;
  }

  let to_json m =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Int 1);
        ("run_id", Obs.Json.String m.run_id);
        ("solver", Obs.Json.String m.solver);
        ("total", Obs.Json.Int m.total);
        ("chunk_size", Obs.Json.Int m.chunk_size);
        ("heartbeat_s", Obs.Json.Float m.heartbeat_s);
        ("max_attempts", Obs.Json.Int m.max_attempts);
        ("sample_size", Obs.Json.Int m.sample_size);
      ]

  let of_json j =
    let open Obs.Json in
    let int_field name =
      match Option.bind (member name j) to_int_opt with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing or non-int field %S" name)
    in
    let str_field name =
      match Option.bind (member name j) to_string_opt with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing or non-string field %S" name)
    in
    let ( let* ) = Result.bind in
    let* run_id = str_field "run_id" in
    let* solver = str_field "solver" in
    let* total = int_field "total" in
    let* chunk_size = int_field "chunk_size" in
    let* heartbeat_s =
      match Option.bind (member "heartbeat_s" j) to_float_opt with
      | Some v -> Ok v
      | None -> Error "missing or non-float field \"heartbeat_s\""
    in
    let* max_attempts = int_field "max_attempts" in
    let* sample_size = int_field "sample_size" in
    Ok { run_id; solver; total; chunk_size; heartbeat_s; max_attempts;
         sample_size }

  let save ~dir m =
    Resil.atomic_write ~path:(Layout.meta dir) (Obs.Json.to_string (to_json m))

  let load dir =
    let path = Layout.meta dir in
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> Error `Not_found
    | data -> (
        match Obs.Json.of_string data with
        | Error e -> Error (`Corrupt ("meta is not JSON: " ^ e))
        | Ok j -> (
            match of_json j with
            | Ok m -> Ok m
            | Error e -> Error (`Corrupt e)))
end

let nchunks ~total ~chunk_size =
  if total <= 0 then 0 else (total + chunk_size - 1) / chunk_size

let chunk_range ~total ~chunk_size c =
  (c * chunk_size, min total ((c + 1) * chunk_size))

(* ------------------------------------------------------------------ *)
(* Fence records                                                       *)
(* ------------------------------------------------------------------ *)

(* The fence token is the chunk's claim epoch: bumped on every lease
   expiry and every processed failure, persisted so a restarted
   coordinator keeps rejecting publishes from before the bump.
   [attempts] counts failures (not expiries) toward quarantine and
   [not_before] is the backoff gate claimants respect. *)
module Fence = struct
  type t = { fence : int; attempts : int; not_before : float }

  let zero = { fence = 0; attempts = 0; not_before = 0.0 }

  let load dir c =
    let path = Layout.fence dir c in
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> zero
    | data -> (
        match Obs.Json.of_string data with
        | Error _ -> zero
        | Ok j ->
            let int_f name d =
              match Option.bind (Obs.Json.member name j) Obs.Json.to_int_opt with
              | Some v -> v
              | None -> d
            in
            let nb =
              match
                Option.bind (Obs.Json.member "not_before" j)
                  Obs.Json.to_float_opt
              with
              | Some v -> v
              | None -> 0.0
            in
            { fence = int_f "fence" 0; attempts = int_f "attempts" 0;
              not_before = nb })

  let save dir c f =
    Resil.atomic_write ~fsync:false ~path:(Layout.fence dir c)
      (Obs.Json.to_string
         (Obs.Json.Obj
            [
              ("fence", Obs.Json.Int f.fence);
              ("attempts", Obs.Json.Int f.attempts);
              ("not_before", Obs.Json.Float f.not_before);
            ]))
end

(* ------------------------------------------------------------------ *)
(* Chaos injection                                                     *)
(* ------------------------------------------------------------------ *)

type chaos = Poison of int | Flaky of int * int

let parse_chaos spec =
  let parse_one term =
    match String.split_on_char ':' (String.trim term) with
    | [ "poison"; c ] -> (
        match int_of_string_opt c with
        | Some c -> Ok (Poison c)
        | None -> Error (Printf.sprintf "bad poison chunk %S" c))
    | [ "flaky"; c; n ] -> (
        match (int_of_string_opt c, int_of_string_opt n) with
        | Some c, Some n -> Ok (Flaky (c, n))
        | _ -> Error (Printf.sprintf "bad flaky term %S" term))
    | _ ->
        Error
          (Printf.sprintf "unknown chaos term %S (poison:C or flaky:C:N)" term)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | t :: rest -> (
        match parse_one t with Ok c -> go (c :: acc) rest | Error _ as e -> e)
  in
  go [] (List.filter (( <> ) "") (String.split_on_char ',' spec))

(* Raised inside the worker's fenced chunk evaluation; the exception
   class decides transient (retried) vs deterministic (quarantined). *)
let chaos_trip chaos ~chunk ~fence =
  List.iter
    (function
      | Poison c when c = chunk ->
          invalid_arg (Printf.sprintf "chaos: poisoned chunk %d" chunk)
      | Flaky (c, n) when c = chunk && fence < n ->
          failwith
            (Printf.sprintf "chaos: flaky chunk %d (claim %d of %d)" chunk
               (fence + 1) n)
      | _ -> ())
    chaos

(* ------------------------------------------------------------------ *)
(* Publishing                                                          *)
(* ------------------------------------------------------------------ *)

(* A settled chunk is a [Resil.Snapshot] whose cursor is the chunk's
   upper bound; the chunk id, lower bound and fence ride the counters
   list so the record stays within the standard snapshot schema. *)
let publish_done ~dir ~(meta : Meta.t) ~chunk ~fence ~best =
  let lo, hi =
    chunk_range ~total:meta.Meta.total ~chunk_size:meta.Meta.chunk_size chunk
  in
  Resil.Snapshot.save ~path:(Layout.done_file dir chunk)
    {
      Resil.Snapshot.run_id = meta.Meta.run_id;
      solver = meta.Meta.solver;
      cursor = hi;
      best;
      complete = false;
      writes = 1;
      spent_fuel = 0;
      elapsed_ns = 0L;
      counters =
        [ ("fleet.chunk", chunk); ("fleet.lo", lo); ("fleet.fence", fence) ];
    }

let publish_fail ~dir ~chunk ~fence ~worker ~deterministic ~message =
  Resil.atomic_write ~path:(Layout.fail_file dir chunk ~fence)
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("chunk", Obs.Json.Int chunk);
            ("fence", Obs.Json.Int fence);
            ("worker", Obs.Json.String worker);
            ("deterministic", Obs.Json.Bool deterministic);
            ("message", Obs.Json.String message);
          ]))

let snap_counter name (s : Resil.Snapshot.t) =
  List.assoc_opt name s.Resil.Snapshot.counters

(* ------------------------------------------------------------------ *)
(* Worker                                                              *)
(* ------------------------------------------------------------------ *)

type worker_cfg = {
  w_dir : string;
  w_id : string;
  w_run_id : string;
  w_solver : string;
  w_parent : int option;
  w_chaos : chaos list;
  w_make_budget : unit -> Guard.Budget.t option;
  w_reclaim : unit -> unit;
}

let wait_for_meta dir ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Meta.load dir with
    | Ok m -> Ok m
    | Error (`Corrupt _) as e when Unix.gettimeofday () >= deadline -> e
    | Error `Not_found when Unix.gettimeofday () >= deadline ->
        Error `Not_found
    | Error _ ->
        Unix.sleepf 0.05;
        go ()
  in
  go ()

let register_worker ~dir ~id =
  Resil.atomic_write ~fsync:false ~path:(Layout.worker_reg dir id)
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("id", Obs.Json.String id);
            ("pid", Obs.Json.Int (Unix.getpid ()));
            ("started", Obs.Json.Float (Unix.gettimeofday ()));
          ]))

let orphaned cfg =
  match cfg.w_parent with
  | None -> false
  | Some p -> Unix.getppid () <> p

(* Evaluate one claimed chunk under its own heartbeat renewer (a
   domain that keeps pushing the lease deadline while the evaluation
   runs) and publish the result.  The lease is released only on the
   success path: a failure leaves it in place so other claimants stay
   away until the coordinator has processed the failure report and
   bumped the fence. *)
let process_chunk cfg ~(meta : Meta.t) ~eval ~chunk ~fence (lease : Lease.t) =
  Obs.Metric.incr leases_claimed_c;
  let lease_path = Layout.lease cfg.w_dir chunk in
  let stop = Atomic.make false in
  let renewer =
    Domain.spawn (fun () ->
        let period = Float.max 0.02 (meta.Meta.heartbeat_s /. 3.0) in
        let rec go last =
          if not (Atomic.get stop) then begin
            let now = Unix.gettimeofday () in
            if now -. last >= period then begin
              (try
                 Lease.renew ~path:lease_path
                   { lease with Lease.deadline = now +. meta.Meta.heartbeat_s }
               with _ -> ());
              go now
            end
            else begin
              Unix.sleepf 0.02;
              go last
            end
          end
        in
        go (Unix.gettimeofday ()))
  in
  let lo, hi =
    chunk_range ~total:meta.Meta.total ~chunk_size:meta.Meta.chunk_size chunk
  in
  let result =
    try
      chaos_trip cfg.w_chaos ~chunk ~fence;
      match
        Guard.run
          ?budget:(cfg.w_make_budget ())
          ~salvage:(fun () -> None)
          (fun () -> eval ~lo ~hi)
      with
      | Guard.Complete best -> Ok best
      | Guard.Exhausted { reason; _ } ->
          Error
            ( Guard.reason_is_deterministic reason,
              "budget exhausted: " ^ Guard.reason_to_string reason )
    with e -> Error (Par.non_retryable e, Printexc.to_string e)
  in
  Atomic.set stop true;
  Domain.join renewer;
  match result with
  | Ok best ->
      publish_done ~dir:cfg.w_dir ~meta ~chunk ~fence ~best;
      Lease.release ~path:lease_path ~mine:lease
  | Error (deterministic, message) ->
      publish_fail ~dir:cfg.w_dir ~chunk ~fence ~worker:cfg.w_id ~deterministic
        ~message

let worker cfg ~eval =
  match wait_for_meta cfg.w_dir ~timeout_s:30.0 with
  | Error `Not_found ->
      Printf.eprintf "folearn fleet worker %s: no meta.json in %s\n%!" cfg.w_id
        cfg.w_dir;
      1
  | Error (`Corrupt e) ->
      Printf.eprintf "folearn fleet worker %s: corrupt meta.json: %s\n%!"
        cfg.w_id e;
      1
  | Ok meta ->
      if meta.Meta.run_id <> cfg.w_run_id then begin
        Printf.eprintf
          "folearn fleet worker %s: fleet directory belongs to a different \
           run (id %s, expected %s)\n\
           %!"
          cfg.w_id meta.Meta.run_id cfg.w_run_id;
        1
      end
      else if meta.Meta.solver <> cfg.w_solver then begin
        Printf.eprintf
          "folearn fleet worker %s: fleet directory was sharded for solver \
           %s, this worker runs %s\n\
           %!"
          cfg.w_id meta.Meta.solver cfg.w_solver;
        1
      end
      else begin
        register_worker ~dir:cfg.w_dir ~id:cfg.w_id;
        let n =
          nchunks ~total:meta.Meta.total ~chunk_size:meta.Meta.chunk_size
        in
        (* spread claimants across the chunk space to cut claim races *)
        let start = if n = 0 then 0 else Hashtbl.hash cfg.w_id mod n in
        (* after publishing a failure, stay away from the chunk until
           the coordinator has bumped its fence past the failed claim *)
        let last_failed : (int, int) Hashtbl.t = Hashtbl.create 8 in
        let try_claim c =
          let done_f = Layout.done_file cfg.w_dir c in
          let poison_f = Layout.poison_file cfg.w_dir c in
          let lease_path = Layout.lease cfg.w_dir c in
          if Sys.file_exists done_f || Sys.file_exists poison_f
             || Sys.file_exists lease_path
          then None
          else
            let fence = Fence.load cfg.w_dir c in
            let stale_failure =
              match Hashtbl.find_opt last_failed c with
              | Some f -> fence.Fence.fence <= f
              | None -> false
            in
            if stale_failure || Unix.gettimeofday () < fence.Fence.not_before
            then None
            else
              let lo, hi =
                chunk_range ~total:meta.Meta.total
                  ~chunk_size:meta.Meta.chunk_size c
              in
              let lease =
                {
                  Lease.chunk = c;
                  lo;
                  hi;
                  worker = cfg.w_id;
                  pid = Unix.getpid ();
                  fence = fence.Fence.fence;
                  deadline = Unix.gettimeofday () +. meta.Meta.heartbeat_s;
                }
              in
              if Lease.claim ~path:lease_path lease then
                Some (c, fence.Fence.fence, lease)
              else None
        in
        let claim_somewhere () =
          let rec go i =
            if i >= n then None
            else
              match try_claim ((start + i) mod n) with
              | Some _ as r -> r
              | None -> go (i + 1)
          in
          go 0
        in
        let idle = Float.max 0.02 (Float.min 0.1 (meta.Meta.heartbeat_s /. 5.0)) in
        let rec loop () =
          if Sys.file_exists (Layout.done_marker cfg.w_dir) then 0
          else if orphaned cfg then 0
          else
            match claim_somewhere () with
            | Some (chunk, fence, lease) ->
                process_chunk cfg ~meta ~eval ~chunk ~fence lease;
                (match
                   Sys.file_exists (Layout.fail_file cfg.w_dir chunk ~fence)
                 with
                | true -> Hashtbl.replace last_failed chunk fence
                | false -> ());
                (* quiescent point: the chunk result is published and
                   carries only counters, so the caller may reclaim
                   per-process caches (e.g. intern registries) here *)
                cfg.w_reclaim ();
                loop ()
            | None ->
                Unix.sleepf idle;
                loop ()
        in
        loop ()
      end

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

module Monitor = struct
  type worker_view = { mw_id : string; mw_pid : int; mw_alive : bool }

  type t = {
    mu : Mutex.t;
    mutable workers : worker_view list;
    mutable total_chunks : int;
    mutable settled_chunks : int;
    mutable leased_chunks : int;
    mutable quarantined_chunks : int;
    mutable counters : (string * int) list;
  }

  let create () =
    {
      mu = Mutex.create ();
      workers = [];
      total_chunks = 0;
      settled_chunks = 0;
      leased_chunks = 0;
      quarantined_chunks = 0;
      counters = [];
    }

  let update t ~workers ~total_chunks ~settled_chunks ~leased_chunks
      ~quarantined_chunks ~counters =
    Mutex.lock t.mu;
    t.workers <- workers;
    t.total_chunks <- total_chunks;
    t.settled_chunks <- settled_chunks;
    t.leased_chunks <- leased_chunks;
    t.quarantined_chunks <- quarantined_chunks;
    t.counters <- counters;
    Mutex.unlock t.mu

  let to_json t =
    Mutex.lock t.mu;
    let j =
      Obs.Json.Obj
        [
          ( "workers",
            Obs.Json.List
              (List.map
                 (fun w ->
                   Obs.Json.Obj
                     [
                       ("id", Obs.Json.String w.mw_id);
                       ("pid", Obs.Json.Int w.mw_pid);
                       ("alive", Obs.Json.Bool w.mw_alive);
                     ])
                 t.workers) );
          ( "chunks",
            Obs.Json.Obj
              [
                ("total", Obs.Json.Int t.total_chunks);
                ("settled", Obs.Json.Int t.settled_chunks);
                ("leased", Obs.Json.Int t.leased_chunks);
                ("quarantined", Obs.Json.Int t.quarantined_chunks);
              ] );
          ( "counters",
            Obs.Json.Obj
              (List.map (fun (k, v) -> (k, Obs.Json.Int v)) t.counters) );
        ]
    in
    Mutex.unlock t.mu;
    j
end

type coord_cfg = {
  c_dir : string;
  c_run_id : string;
  c_solver : string;
  c_total : int;
  c_chunk_size : int;
  c_heartbeat_s : float;
  c_max_attempts : int;
  c_sample_size : int;
  c_workers : int;
  c_spawn : int -> int;
  c_backoff_base_s : float;
  c_backoff_cap_s : float;
}

let default_backoff_base_s = 0.1
let default_backoff_cap_s = 2.0

type quarantined = {
  q_chunk : int;
  q_lo : int;
  q_hi : int;
  q_attempts : int;
  q_error : string;
}

type outcome = {
  best : (int * int) option;
  settled : int;
  quarantined : quarantined list;
  interrupted : bool;
  stats : (string * int) list;
}

type chunk_state = Pending | Leased | Settled | Poisoned

(* deterministic jitter in [0.75, 1.25), seeded by (chunk, attempt) so
   retry schedules replay identically across coordinator restarts *)
let backoff cfg ~chunk ~attempts =
  let base =
    Float.min cfg.c_backoff_cap_s
      (cfg.c_backoff_base_s *. Float.pow 2.0 (float_of_int (attempts - 1)))
  in
  let jitter =
    0.75 +. (float_of_int (Hashtbl.hash (chunk, attempts) land 0xFF) /. 512.0)
  in
  base *. jitter

let coordinate ?monitor ?(ctl = Resil.Ctl.none) cfg =
  Layout.ensure cfg.c_dir;
  let meta_result =
    match Meta.load cfg.c_dir with
    | Ok m ->
        if m.Meta.run_id <> cfg.c_run_id then
          Error
            (Printf.sprintf
               "fleet directory %s belongs to a different run (id %s, \
                expected %s); pass a fresh --fleet directory"
               cfg.c_dir m.Meta.run_id cfg.c_run_id)
        else if m.Meta.solver <> cfg.c_solver then
          Error
            (Printf.sprintf
               "fleet directory %s was sharded for solver %s, this run uses \
                %s; pass a fresh --fleet directory"
               cfg.c_dir m.Meta.solver cfg.c_solver)
        else if m.Meta.total <> cfg.c_total then
          Error
            (Printf.sprintf
               "fleet directory %s shards %d candidates, this run has %d; \
                pass a fresh --fleet directory"
               cfg.c_dir m.Meta.total cfg.c_total)
        else Ok m
    | Error `Not_found ->
        let m =
          {
            Meta.run_id = cfg.c_run_id;
            solver = cfg.c_solver;
            total = cfg.c_total;
            chunk_size = cfg.c_chunk_size;
            heartbeat_s = cfg.c_heartbeat_s;
            max_attempts = cfg.c_max_attempts;
            sample_size = cfg.c_sample_size;
          }
        in
        Meta.save ~dir:cfg.c_dir m;
        Ok m
    | Error (`Corrupt e) ->
        Error (Printf.sprintf "corrupt meta.json in %s: %s" cfg.c_dir e)
  in
  match meta_result with
  | Error _ as e -> e
  | Ok meta ->
      let total = meta.Meta.total in
      let chunk_size = meta.Meta.chunk_size in
      let n = nchunks ~total ~chunk_size in
      let state = Array.make (max 1 n) Pending in
      let fences = Array.init (max 1 n) (fun c -> Fence.load cfg.c_dir c) in
      let last_error = Array.make (max 1 n) "" in
      let best = ref None in
      let settled = ref 0 in
      let merge_best b =
        match b with
        | None -> ()
        | Some (i, e) -> (
            match !best with
            | Some (bi, be) when be < e || (be = e && bi <= i) -> ()
            | _ -> best := Some (i, e))
      in
      (* local counters feed summary.json; the Obs counters feed the
         /metrics exporter when telemetry is on *)
      let n_expired = ref 0 and n_done = ref 0 and n_quarantined = ref 0 in
      let n_stale = ref 0 and n_respawned = ref 0 and n_retried = ref 0 in
      let stats () =
        [
          ("workers", cfg.c_workers);
          ("chunks", n);
          ("chunks_done", !n_done);
          ("chunks_quarantined", !n_quarantined);
          ("leases_expired", !n_expired);
          ("stale_publishes", !n_stale);
          ("workers_respawned", !n_respawned);
          ("failures_retried", !n_retried);
          ("settled", !settled);
          ("total", total);
        ]
      in
      let range c = chunk_range ~total ~chunk_size c in
      let unlink_quietly path = try Unix.unlink path with _ -> () in
      let settle c (snap : Resil.Snapshot.t) =
        let lo, hi = range c in
        state.(c) <- Settled;
        settled := !settled + (hi - lo);
        merge_best snap.Resil.Snapshot.best;
        incr n_done;
        Obs.Metric.incr chunks_done_c;
        Resil.Ctl.chunk_done ctl ~lo ~hi ~best:snap.Resil.Snapshot.best
      in
      let reject_done c path reason =
        incr n_stale;
        Obs.Metric.incr stale_publishes_c;
        Obs.Event.record ~kind:"fleet"
          ~args:[ ("chunk", string_of_int c); ("reason", reason) ]
          "fleet.stale_publish";
        unlink_quietly path
      in
      let scan_done () =
        for c = 0 to n - 1 do
          match state.(c) with
          | Settled | Poisoned -> ()
          | Pending | Leased -> (
              let path = Layout.done_file cfg.c_dir c in
              if Sys.file_exists path then
                match
                  Resil.Snapshot.load_for ~run_id:cfg.c_run_id
                    ~solver:cfg.c_solver path
                with
                | Ok snap ->
                    let fence_of_snap =
                      Option.value ~default:(-1)
                        (snap_counter "fleet.fence" snap)
                    in
                    if fence_of_snap <> fences.(c).Fence.fence then
                      reject_done c path
                        (Printf.sprintf "fence %d, current %d" fence_of_snap
                           fences.(c).Fence.fence)
                    else begin
                      settle c snap;
                      (* the publisher normally released its lease; a
                         worker killed in between leaves a dead one *)
                      unlink_quietly (Layout.lease cfg.c_dir c)
                    end
                | Error `Not_found -> ()
                | Error (`Corrupt e) -> reject_done c path ("corrupt: " ^ e)
                | Error (`Mismatch m) ->
                    reject_done c path
                      (Format.asprintf "%a" Resil.Snapshot.pp_mismatch m))
        done
      in
      let quarantine c message =
        let lo, hi = range c in
        state.(c) <- Poisoned;
        last_error.(c) <- message;
        incr n_quarantined;
        Obs.Metric.incr chunks_quarantined_c;
        Resil.atomic_write ~path:(Layout.poison_file cfg.c_dir c)
          (Obs.Json.to_string
             (Obs.Json.Obj
                [
                  ("chunk", Obs.Json.Int c);
                  ("lo", Obs.Json.Int lo);
                  ("hi", Obs.Json.Int hi);
                  ("attempts", Obs.Json.Int fences.(c).Fence.attempts);
                  ("message", Obs.Json.String message);
                ]))
      in
      let scan_fail () =
        for c = 0 to n - 1 do
          match state.(c) with
          | Settled | Poisoned -> ()
          | Pending | Leased ->
              let fence = fences.(c).Fence.fence in
              let path = Layout.fail_file cfg.c_dir c ~fence in
              if Sys.file_exists path then begin
                let message, deterministic =
                  match In_channel.with_open_bin path In_channel.input_all with
                  | exception Sys_error _ -> ("unreadable failure report", true)
                  | data -> (
                      match Obs.Json.of_string data with
                      | Error _ -> ("corrupt failure report", true)
                      | Ok j ->
                          ( (match
                               Option.bind (Obs.Json.member "message" j)
                                 Obs.Json.to_string_opt
                             with
                            | Some m -> m
                            | None -> "unknown failure"),
                            match Obs.Json.member "deterministic" j with
                            | Some (Obs.Json.Bool b) -> b
                            | _ -> true ))
                in
                let attempts = fences.(c).Fence.attempts + 1 in
                last_error.(c) <- message;
                (* the failing worker leaves its lease in place so the
                   chunk stays parked until this very moment *)
                unlink_quietly (Layout.lease cfg.c_dir c);
                Obs.Event.record ~kind:"fleet"
                  ~args:
                    [
                      ("chunk", string_of_int c);
                      ("attempts", string_of_int attempts);
                      ("deterministic", string_of_bool deterministic);
                      ("message", message);
                    ]
                  "fleet.chunk_failed";
                if attempts >= meta.Meta.max_attempts then begin
                  fences.(c) <- { fences.(c) with Fence.fence = fence + 1;
                                  attempts };
                  Fence.save cfg.c_dir c fences.(c);
                  quarantine c message
                end
                else begin
                  (* backoff only helps transient failures; a
                     deterministic one re-runs immediately and burns
                     through its remaining attempts to quarantine *)
                  let delay =
                    if deterministic then 0.0
                    else backoff cfg ~chunk:c ~attempts
                  in
                  fences.(c) <-
                    {
                      Fence.fence = fence + 1;
                      attempts;
                      not_before = Unix.gettimeofday () +. delay;
                    };
                  Fence.save cfg.c_dir c fences.(c);
                  incr n_retried;
                  Obs.Metric.incr failures_retried_c;
                  state.(c) <- Pending
                end
              end
        done
      in
      let expire_leases () =
        let now = Unix.gettimeofday () in
        for c = 0 to n - 1 do
          match state.(c) with
          | Settled | Poisoned -> ()
          | Pending | Leased -> (
              let path = Layout.lease cfg.c_dir c in
              match Lease.load path with
              | Error `Not_found -> state.(c) <- Pending
              | Error (`Corrupt _) ->
                  (* atomic writes make this near-impossible; clear it *)
                  unlink_quietly path;
                  state.(c) <- Pending
              | Ok l ->
                  if l.Lease.deadline < now then begin
                    unlink_quietly path;
                    fences.(c) <-
                      { fences.(c) with
                        Fence.fence = fences.(c).Fence.fence + 1 };
                    Fence.save cfg.c_dir c fences.(c);
                    incr n_expired;
                    Obs.Metric.incr leases_expired_c;
                    Obs.Event.record ~kind:"fleet"
                      ~args:
                        [
                          ("chunk", string_of_int c);
                          ("worker", l.Lease.worker);
                          ("pid", string_of_int l.Lease.pid);
                        ]
                      "fleet.lease_expired";
                    state.(c) <- Pending
                  end
                  else state.(c) <- Leased)
        done
      in
      (* ---- worker process management ---- *)
      let live : (int, int) Hashtbl.t = Hashtbl.create 8 in
      let spawn idx =
        let pid = cfg.c_spawn idx in
        Hashtbl.replace live pid idx
      in
      for i = 0 to cfg.c_workers - 1 do
        spawn i
      done;
      let respawn_budget = ref (100 + (10 * cfg.c_workers)) in
      let reap_and_respawn () =
        let dead =
          Hashtbl.fold
            (fun pid idx acc ->
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> acc
              | _, _ -> (pid, idx) :: acc
              | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                  (pid, idx) :: acc)
            live []
        in
        List.iter
          (fun (pid, idx) ->
            Hashtbl.remove live pid;
            decr respawn_budget;
            incr n_respawned;
            Obs.Metric.incr workers_respawned_c;
            if !respawn_budget > 0 then spawn idx)
          dead;
        !respawn_budget > 0
      in
      let kill_workers () =
        Hashtbl.iter
          (fun pid _ -> try Unix.kill pid Sys.sigterm with _ -> ())
          live;
        let deadline = Unix.gettimeofday () +. 2.0 in
        let rec drain () =
          if Hashtbl.length live > 0 then begin
            let pids = Hashtbl.fold (fun pid _ acc -> pid :: acc) live [] in
            List.iter
              (fun pid ->
                match Unix.waitpid [ Unix.WNOHANG ] pid with
                | 0, _ -> ()
                | _, _ -> Hashtbl.remove live pid
                | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                    Hashtbl.remove live pid)
              pids;
            if Hashtbl.length live > 0 then
              if Unix.gettimeofday () > deadline then begin
                Hashtbl.iter
                  (fun pid _ -> try Unix.kill pid Sys.sigkill with _ -> ())
                  live;
                Hashtbl.iter
                  (fun pid _ -> try ignore (Unix.waitpid [] pid) with _ -> ())
                  live;
                Hashtbl.reset live
              end
              else begin
                Unix.sleepf 0.05;
                drain ()
              end
          end
        in
        drain ()
      in
      let update_monitor () =
        match monitor with
        | None -> ()
        | Some mon ->
            let workers =
              Hashtbl.fold
                (fun pid idx acc ->
                  let alive =
                    match Unix.kill pid 0 with
                    | () -> true
                    | exception _ -> false
                  in
                  {
                    Monitor.mw_id = "w" ^ string_of_int idx;
                    mw_pid = pid;
                    mw_alive = alive;
                  }
                  :: acc)
                live []
            in
            let count st =
              Array.fold_left
                (fun acc s -> if s = st then acc + 1 else acc)
                0 state
            in
            Monitor.update mon ~workers ~total_chunks:n
              ~settled_chunks:(count Settled) ~leased_chunks:(count Leased)
              ~quarantined_chunks:(count Poisoned) ~counters:(stats ())
      in
      (* ---- resume: ingest what a previous coordinator left ---- *)
      for c = 0 to n - 1 do
        if Sys.file_exists (Layout.poison_file cfg.c_dir c) then begin
          let lo, hi = range c in
          ignore lo;
          ignore hi;
          state.(c) <- Poisoned;
          incr n_quarantined;
          last_error.(c) <-
            (match
               In_channel.with_open_bin (Layout.poison_file cfg.c_dir c)
                 In_channel.input_all
             with
            | exception Sys_error _ -> "quarantined by a previous coordinator"
            | data -> (
                match
                  Result.to_option (Obs.Json.of_string data)
                  |> Fun.flip Option.bind (Obs.Json.member "message")
                  |> Fun.flip Option.bind (fun j -> Obs.Json.to_string_opt j)
                with
                | Some m -> m
                | None -> "quarantined by a previous coordinator"))
        end
      done;
      scan_done ();
      let finished () =
        let ok = ref true in
        for c = 0 to n - 1 do
          match state.(c) with
          | Settled | Poisoned -> ()
          | Pending | Leased -> ok := false
        done;
        !ok
      in
      let poll =
        Float.max 0.02 (Float.min 0.25 (meta.Meta.heartbeat_s /. 4.0))
      in
      let wedged = ref false in
      let rec loop () =
        if finished () || Guard.interrupt_requested () || !wedged then ()
        else begin
          if cfg.c_workers > 0 && not (reap_and_respawn ()) then wedged := true
          else begin
            scan_done ();
            scan_fail ();
            expire_leases ();
            update_monitor ();
            Unix.sleepf poll
          end;
          loop ()
        end
      in
      loop ();
      update_monitor ();
      let interrupted = Guard.interrupt_requested () && not (finished ()) in
      let quarantined =
        List.filter_map
          (fun c ->
            if state.(c) = Poisoned then
              let lo, hi = range c in
              Some
                {
                  q_chunk = c;
                  q_lo = lo;
                  q_hi = hi;
                  q_attempts = fences.(c).Fence.attempts;
                  q_error = last_error.(c);
                }
            else None)
          (List.init n Fun.id)
      in
      let result =
        {
          best = !best;
          settled = !settled;
          quarantined;
          interrupted;
          stats = stats ();
        }
      in
      if !wedged then begin
        kill_workers ();
        Error
          "fleet workers keep dying at startup (respawn budget exhausted); \
           see worker stderr"
      end
      else begin
        if not interrupted then begin
          Resil.atomic_write ~path:(Layout.summary cfg.c_dir)
            (Obs.Json.to_string
               (Obs.Json.Obj
                  (("run_id", Obs.Json.String cfg.c_run_id)
                   :: ("solver", Obs.Json.String cfg.c_solver)
                   :: List.map
                        (fun (k, v) -> (k, Obs.Json.Int v))
                        (stats ()))));
          Resil.atomic_write ~fsync:false
            ~path:(Layout.done_marker cfg.c_dir)
            "done\n"
        end;
        kill_workers ();
        Ok result
      end
