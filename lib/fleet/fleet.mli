(** Fault-tolerant multi-process ERM sharding over a shared filesystem
    (ROADMAP item 5: the distributed-ERM substrate grown out of
    [Resil]'s durable frontiers and [Par]'s fault isolation).

    One {e coordinator} process owns a per-run fleet directory and N
    {e worker} processes (spawned children or externally supervised
    [--worker] claimants) share it:

    {v
    DIR/meta.json          run identity + sharding parameters
    DIR/leases/C.lease     live claims      (Lease framing, link(2)-claimed)
    DIR/fence/C.json       fence token, attempt count, retry not-before
    DIR/done/C.snap        published results (Resil.Snapshot framing)
    DIR/fail/C.fF.json     failure reports, named by fence
    DIR/poison/C.json      quarantined chunks
    DIR/workers/ID.json    worker registry (pid, for liveness probes)
    DIR/DONE               completion marker (workers exit on sight)
    DIR/summary.json       final counters (read by bench e20)
    v}

    Workers claim chunks by atomically link(2)-ing a lease carrying
    their id, a heartbeat deadline and the chunk's fence token,
    evaluate with the [Erm_*] enumerators, and publish the chunk's
    [(index, errors)] lex-min through the [Resil.Snapshot] format.
    The coordinator merges published frontiers with the deterministic
    [(error, index)] lex-min rule, expires leases whose heartbeat
    deadline passed (the chunk returns to the pool under a bumped
    fence), retries failed chunks with capped exponential backoff +
    deterministic jitter, and quarantines chunks that keep failing
    into the poison list instead of wedging the run.  Every piece of
    coordinator state is derivable from the directory, so a killed
    coordinator resumes by pointing a new one at the same [--fleet]
    directory. *)

module Lease = Lease
(** Re-export: the lease file protocol (see {!module:Lease}). *)

(** {1 Layout} *)

module Layout : sig
  val meta : string -> string
  val lease : string -> int -> string
  val fence : string -> int -> string
  val done_file : string -> int -> string
  val fail_file : string -> int -> fence:int -> string
  val poison_file : string -> int -> string
  val worker_reg : string -> string -> string
  val done_marker : string -> string
  val summary : string -> string

  val ensure : string -> unit
  (** Create the directory skeleton (idempotent). *)
end

(** {1 Run metadata} *)

module Meta : sig
  type t = {
    run_id : string;
    solver : string;
    total : int;  (** candidate count [n^ℓ] *)
    chunk_size : int;
    heartbeat_s : float;
    max_attempts : int;
    sample_size : int;
  }

  val save : dir:string -> t -> unit
  val load : string -> (t, [ `Not_found | `Corrupt of string ]) result
end

val nchunks : total:int -> chunk_size:int -> int
val chunk_range : total:int -> chunk_size:int -> int -> int * int
(** [chunk_range c] is the candidate interval [\[lo, hi)] of chunk
    [c]. *)

(** {1 Fence records}

    The fence token is the chunk's claim epoch: bumped on every lease
    expiry and every processed failure, persisted so a restarted
    coordinator keeps rejecting publishes from before the bump.
    [attempts] counts failures (not expiries) toward quarantine and
    [not_before] is the backoff gate claimants respect.  Exposed so
    harnesses can pre-seed fence state. *)

module Fence : sig
  type t = { fence : int; attempts : int; not_before : float }

  val zero : t
  val load : string -> int -> t
  (** [load dir chunk]; missing or corrupt records read as [zero]. *)

  val save : string -> int -> t -> unit
end

(** {1 Publishing}

    What a worker writes when a chunk finishes — exposed for external
    claimants and for tests exercising the coordinator's stale-fence
    rejection. *)

val publish_done :
  dir:string ->
  meta:Meta.t ->
  chunk:int ->
  fence:int ->
  best:(int * int) option ->
  unit
(** Publish the chunk's [(index, errors)] lex-min ([None] for an empty
    range) as [done/C.snap] under the given fence token. *)

val publish_fail :
  dir:string ->
  chunk:int ->
  fence:int ->
  worker:string ->
  deterministic:bool ->
  message:string ->
  unit
(** Publish a failure report as [fail/C.fF.json].  [deterministic]
    failures count toward quarantine without further retries being
    useful; transient ones are retried with backoff. *)

(** {1 Chaos injection (test-only failure hooks)} *)

type chaos =
  | Poison of int  (** chunk always fails deterministically *)
  | Flaky of int * int
      (** [Flaky (c, n)]: chunk [c] fails transiently while its fence
          token is below [n] — i.e. the first [n] claims fail *)

val parse_chaos : string -> (chaos list, string) result
(** Comma-separated [poison:C] / [flaky:C:N] terms. *)

(** {1 Worker} *)

type worker_cfg = {
  w_dir : string;
  w_id : string;
  w_run_id : string;  (** must match [meta.run_id] *)
  w_solver : string;
  w_parent : int option;
      (** coordinator pid: exit quietly when no longer our parent *)
  w_chaos : chaos list;
  w_make_budget : unit -> Guard.Budget.t option;
      (** fresh per-chunk admission budget (from the CLI flags) *)
  w_reclaim : unit -> unit;
      (** called after each settled chunk, when no chunk state is live —
          the hook for reclaiming per-process caches that would
          otherwise grow across chunks (the CLI resets the
          [Modelcheck] intern registries here).  Use [Fun.id]-style
          no-op [(fun () -> ())] if nothing needs reclaiming. *)
}

val worker :
  worker_cfg -> eval:(lo:int -> hi:int -> (int * int) option) -> int
(** Run the claim/evaluate/publish loop until the [DONE] marker
    appears (or the spawning coordinator dies).  [eval] returns the
    [(index, errors)] lex-min of the range; it runs under a fresh
    [Guard] budget per chunk, and a budget trip publishes a
    deterministic failure report.  Returns the process exit code:
    0 on a clean drain, 1 on setup errors (missing/mismatched meta). *)

(** {1 Coordinator} *)

module Monitor : sig
  type t
  (** Mutex-guarded live view for the [/progress] endpoint: per-worker
      liveness, lease churn and quarantine counts. *)

  val create : unit -> t

  val to_json : t -> Obs.Json.t
  (** Safe to call from the exporter domain. *)
end

type coord_cfg = {
  c_dir : string;
  c_run_id : string;
  c_solver : string;
  c_total : int;
  c_chunk_size : int;
  c_heartbeat_s : float;
  c_max_attempts : int;
  c_sample_size : int;
  c_workers : int;  (** local worker processes to keep alive; 0 = external *)
  c_spawn : int -> int;  (** spawn worker [i], return its pid *)
  c_backoff_base_s : float;
  c_backoff_cap_s : float;
}

val default_backoff_base_s : float
val default_backoff_cap_s : float

type quarantined = {
  q_chunk : int;
  q_lo : int;
  q_hi : int;
  q_attempts : int;
  q_error : string;
}

type outcome = {
  best : (int * int) option;  (** global [(index, errors)] lex-min *)
  settled : int;  (** candidates covered by accepted chunks *)
  quarantined : quarantined list;
  interrupted : bool;  (** [Guard.interrupt] arrived mid-run *)
  stats : (string * int) list;  (** the summary counters *)
}

val coordinate :
  ?monitor:Monitor.t -> ?ctl:Resil.Ctl.t -> coord_cfg -> (outcome, string) result
(** Run the merge/expiry/retry/respawn loop to completion (every chunk
    settled or quarantined), writing [summary.json] and the [DONE]
    marker, and reaping spawned workers on the way out.  [ctl]
    (typically a [Resil.Ctl.observer]) receives [chunk_done] reports
    for live frontier export.  [Error] covers unusable directories and
    meta mismatches (a fleet directory from a different run). *)
