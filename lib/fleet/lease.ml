(* Lease files: see the .mli for the protocol.  The framing reuses
   [Resil]'s header + CRC discipline so external harnesses can validate
   a lease with nothing but zlib.crc32, and the atomic-claim primitive
   is link(2): creating a hard link fails with EEXIST when the target
   exists, which rename(2) does not. *)

let magic = "FOLEARNLEASE1"
let schema_version = 1

type t = {
  chunk : int;
  lo : int;
  hi : int;
  worker : string;
  pid : int;
  fence : int;
  deadline : float;
}

let to_json l =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int schema_version);
      ("chunk", Obs.Json.Int l.chunk);
      ("lo", Obs.Json.Int l.lo);
      ("hi", Obs.Json.Int l.hi);
      ("worker", Obs.Json.String l.worker);
      ("pid", Obs.Json.Int l.pid);
      ("fence", Obs.Json.Int l.fence);
      ("deadline", Obs.Json.Float l.deadline);
    ]

let of_json j =
  let open Obs.Json in
  let int_field name =
    match Option.bind (member name j) to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or non-int field %S" name)
  in
  let ( let* ) = Result.bind in
  let* version = int_field "schema_version" in
  if version <> schema_version then
    Error (Printf.sprintf "unsupported schema_version %d" version)
  else
    let* chunk = int_field "chunk" in
    let* lo = int_field "lo" in
    let* hi = int_field "hi" in
    let* worker =
      match Option.bind (member "worker" j) to_string_opt with
      | Some v -> Ok v
      | None -> Error "missing or non-string field \"worker\""
    in
    let* pid = int_field "pid" in
    let* fence = int_field "fence" in
    let* deadline =
      match Option.bind (member "deadline" j) to_float_opt with
      | Some v -> Ok v
      | None -> Error "missing or non-float field \"deadline\""
    in
    Ok { chunk; lo; hi; worker; pid; fence; deadline }

let encode l =
  let body = Obs.Json.to_string (to_json l) in
  Printf.sprintf "%s %s %d\n%s\n" magic
    (Resil.Crc32.to_hex (Resil.Crc32.string body))
    (String.length body) body

let decode data =
  match String.index_opt data '\n' with
  | None -> Error "missing header line"
  | Some nl -> (
      let header = String.sub data 0 nl in
      match String.split_on_char ' ' header with
      | [ m; crc_hex; len_s ] when m = magic -> (
          match
            (int_of_string_opt ("0x" ^ crc_hex), int_of_string_opt len_s)
          with
          | Some crc, Some len ->
              if String.length data < nl + 1 + len then Error "truncated body"
              else
                let body = String.sub data (nl + 1) len in
                let actual =
                  Int32.to_int (Resil.Crc32.string body) land 0xFFFFFFFF
                in
                if actual <> crc land 0xFFFFFFFF then
                  Error
                    (Printf.sprintf "CRC mismatch (header %08x, body %08x)" crc
                       actual)
                else (
                  match Obs.Json.of_string body with
                  | Error e -> Error ("body is not JSON: " ^ e)
                  | Ok j -> of_json j)
          | _ -> Error "malformed header fields"
          | exception _ -> Error "malformed header fields")
      | m :: _ when m <> magic -> Error (Printf.sprintf "bad magic %S" m)
      | _ -> Error "malformed header line")

(* unique temp names even for two claimants in one process *)
let claim_seq = Atomic.make 0

let write_file path data =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      let n = String.length data in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring fd data !written (n - !written)
      done)

let claim ~path l =
  let tmp =
    Printf.sprintf "%s.claim.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add claim_seq 1)
  in
  write_file tmp (encode l);
  let won =
    match Unix.link tmp path with
    | () -> true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false
  in
  (try Sys.remove tmp with _ -> ());
  won

let renew ~path l = Resil.atomic_write ~fsync:false ~path (encode l)

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> Error `Not_found
  | data -> (
      match decode data with Ok l -> Ok l | Error e -> Error (`Corrupt e))

let release ~path ~mine =
  match load path with
  | Ok l
    when l.worker = mine.worker && l.pid = mine.pid && l.fence = mine.fence ->
      (try Unix.unlink path with _ -> ())
  | _ -> ()
