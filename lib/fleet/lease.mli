(** Chunk leases: the mutual-exclusion primitive of the fleet protocol.

    A lease file at [leases/<chunk>.lease] records who is evaluating a
    candidate chunk, under which fence token, and until when.  The
    framing is the same one-line ASCII header + JSON body used by
    [Resil.Snapshot]:
    {v FOLEARNLEASE1 <crc32-hex> <body-length>
<body JSON> v}

    {b Claiming is atomic.}  A claimant writes the lease to a private
    temp file and {e hard-links} it to the lease path: [link(2)] fails
    with [EEXIST] when the chunk is already claimed, so exactly one of
    any number of racing claimants wins — unlike [rename(2)], which
    silently replaces.  Renewal (pushing the heartbeat deadline
    forward) is the owner rewriting the file via atomic rename.

    {b Fencing.}  Every lease carries the chunk's fence token at claim
    time.  The coordinator bumps the fence whenever it expires a lease
    or processes a failure, and rejects any published result carrying
    a stale fence — so a worker that lost its lease (but not its life)
    can never corrupt the run. *)

val magic : string
val schema_version : int

type t = {
  chunk : int;  (** chunk id *)
  lo : int;  (** first candidate index of the chunk *)
  hi : int;  (** one past the last candidate index *)
  worker : string;  (** claimant's worker id *)
  pid : int;  (** claimant's process id *)
  fence : int;  (** fence token the chunk was claimed under *)
  deadline : float;  (** heartbeat deadline, epoch seconds *)
}

val encode : t -> string
val decode : string -> (t, string) result
(** [decode (encode l) = Ok l]; corruption of magic, length, CRC,
    JSON shape or schema version yields [Error]. *)

val claim : path:string -> t -> bool
(** Atomically create the lease file; [false] when the chunk is
    already claimed (the lease path exists).  Exactly one of any
    number of concurrent claimants succeeds. *)

val renew : path:string -> t -> unit
(** Owner-only: rewrite the lease (atomic rename) with a new
    deadline.  No fsync — a lost renewal only shortens the lease. *)

val release : path:string -> mine:t -> unit
(** Best-effort ownership-checked unlink: the file is removed only if
    it still carries [mine]'s worker, pid and fence.  (The check and
    the unlink are not atomic; the fence protocol makes the benign
    race harmless — a wrongly freed chunk is just re-evaluated.) *)

val load : string -> (t, [ `Not_found | `Corrupt of string ]) result
