type config = {
  free_vars : Formula.var list;
  colors : string list;
  max_depth : int;
  allow_counting : bool;
}

let default =
  {
    free_vars = [ "x"; "y" ];
    colors = [ "Red"; "Blue" ];
    max_depth = 4;
    allow_counting = false;
  }

let gen cfg st =
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let rec go vars depth =
    let var () = pick vars in
    if depth = 0 || Random.State.int st 3 = 0 then
      match Random.State.int st (if cfg.colors = [] then 3 else 4) with
      | 0 -> Formula.eq (var ()) (var ())
      | 1 -> Formula.edge (var ()) (var ())
      | 2 -> if Random.State.bool st then Formula.tru else Formula.fls
      | _ -> Formula.color (pick cfg.colors) (var ())
    else begin
      (* build through the smart constructors: generated formulas are
         then fixpoints of the parser's normalisation, so pp/parse
         round-trips are exact structural identity *)
      let max_case = if cfg.allow_counting then 7 else 6 in
      match Random.State.int st max_case with
      | 0 -> Formula.not_ (go vars (depth - 1))
      | 1 -> Formula.and_ [ go vars (depth - 1); go vars (depth - 1) ]
      | 2 -> Formula.or_ [ go vars (depth - 1); go vars (depth - 1) ]
      | 3 -> Formula.implies (go vars (depth - 1)) (go vars (depth - 1))
      | 4 ->
          let v = Printf.sprintf "b%d" (Random.State.int st 3) in
          Formula.exists v (go (v :: vars) (depth - 1))
      | 5 ->
          let v = Printf.sprintf "b%d" (Random.State.int st 3) in
          Formula.forall v (go (v :: vars) (depth - 1))
      | _ ->
          let v = Printf.sprintf "b%d" (Random.State.int st 3) in
          Formula.count_ge
            (1 + Random.State.int st 3)
            v
            (go (v :: vars) (depth - 1))
    end
  in
  go cfg.free_vars cfg.max_depth

let formula ?(config = default) ~seed () =
  let st = Random.State.make [| seed; 0x6f |] in
  gen config st

let sentence ?(config = default) ~seed () =
  let st = Random.State.make [| seed; 0x5e |] in
  let body = gen { config with free_vars = [ "x" ] } st in
  if Random.State.bool st then Formula.forall "x" body
  else Formula.exists "x" body

let batch ?(config = default) ~seed n =
  List.init n (fun i -> formula ~config ~seed:(seed + (i * 7919)) ())
