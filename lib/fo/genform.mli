(** Seeded random formula generation, for property tests, fuzzing the
    evaluator/parser, and workload synthesis in the benches. *)

type config = {
  free_vars : Formula.var list;  (** variables allowed free *)
  colors : string list;  (** colour predicates to draw atoms from *)
  max_depth : int;  (** connective nesting bound *)
  allow_counting : bool;  (** include [∃^{>=t}] quantifiers (t <= 3) *)
}

val default : config
(** free vars [x, y], colours [Red; Blue], depth 4, no counting. *)

val formula : ?config:config -> seed:int -> unit -> Formula.t
(** A random formula (deterministic per seed).  Built through the
    smart constructors, so the result is a fixpoint of the parser's
    normalisation: [Parser.parse (Formula.to_string f)] is structurally
    [f], not merely equivalent. *)

val sentence : ?config:config -> seed:int -> unit -> Formula.t
(** A random {e sentence}: a random formula with one free variable,
    closed universally or existentially. *)

val batch : ?config:config -> seed:int -> int -> Formula.t list
(** [batch ~seed n]: [n] formulas from consecutive derived seeds. *)
