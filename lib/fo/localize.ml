let dist_le ~d x y =
  if d < 0 then invalid_arg "Localize.dist_le: negative distance";
  (* A generated [_dN] name must not collide with either endpoint: with
     x = "_d1" the naive scheme would bind the endpoint variable. *)
  let used = Hashtbl.create 8 in
  Hashtbl.replace used x ();
  Hashtbl.replace used y ();
  let counter = ref 0 in
  let rec fresh () =
    incr counter;
    let cand = Printf.sprintf "_d%d" !counter in
    if Hashtbl.mem used cand then fresh ()
    else begin
      Hashtbl.replace used cand ();
      cand
    end
  in
  let rec go d x y =
    if d = 0 then Formula.eq x y
    else if d = 1 then Formula.or_ [ Formula.eq x y; Formula.edge x y ]
    else begin
      let half = (d + 1) / 2 in
      let z = fresh () in
      Formula.exists z (Formula.and_ [ go half x z; go (d - half) z y ])
    end
  in
  go d x y

let dist_gt ~d x y = Formula.not_ (dist_le ~d x y)

let ball_membership ~r centers y =
  Formula.or_ (List.map (fun x -> dist_le ~d:r y x) centers)

let relativize ~r ~around phi =
  if r < 0 then invalid_arg "Localize.relativize: negative radius";
  (* Avoid clashes between the guard centres and bound variables: rename
     bound variables away from [around] first by substituting identity
     (rename is capture-avoiding, so we refresh any bound variable whose
     name collides with a centre by substituting it with itself). *)
  let rec go f =
    match f with
    | Formula.True | Formula.False | Formula.Atom _ -> f
    | Formula.Not f -> Formula.not_ (go f)
    | Formula.And fs -> Formula.and_ (List.map go fs)
    | Formula.Or fs -> Formula.or_ (List.map go fs)
    | Formula.Implies (a, b) -> Formula.implies (go a) (go b)
    | Formula.Iff (a, b) -> Formula.iff (go a) (go b)
    | Formula.Exists (x, body) ->
        let x, body = avoid_centres x body in
        Formula.exists x
          (Formula.and_ [ ball_membership ~r around x; go body ])
    | Formula.Forall (x, body) ->
        let x, body = avoid_centres x body in
        Formula.forall x
          (Formula.implies (ball_membership ~r around x) (go body))
    | Formula.CountGe (t, x, body) ->
        let x, body = avoid_centres x body in
        Formula.count_ge t x
          (Formula.and_ [ ball_membership ~r around x; go body ])
  and avoid_centres x body =
    if List.mem x around then begin
      let avoid = around @ Formula.all_vars body in
      let x' = Formula.fresh_var ~avoid x in
      (x', Formula.substitute [ (x, x') ] body)
    end
    else (x, body)
  in
  go phi
