exception Parse_error of string

type position = { line : int; col : int }

type error = { message : string; position : position; token : string option }

let error_to_string e =
  Printf.sprintf "line %d, column %d: %s%s" e.position.line e.position.col
    e.message
    (match e.token with None -> "" | Some t -> Printf.sprintf " (at %s)" t)

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* structured twin of [Parse_error], private to this module: the public
   entry points either re-raise it as [Parse_error] (compat) or return
   it through [parse_result] *)
exception Error_internal of error

let position_of_offset input off =
  let off = min off (String.length input) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to off - 1 do
    if input.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  { line = !line; col = off - !bol + 1 }

type token =
  | IDENT of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EQ
  | NEQ
  | NOT
  | AND
  | OR
  | IMPLIES
  | IFF
  | TRUE
  | FALSE
  | EXISTS
  | FORALL
  | ATLEAST
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | EQ -> "'='"
  | NEQ -> "'!='"
  | NOT -> "'~'"
  | AND -> "'/\\'"
  | OR -> "'\\/'"
  | IMPLIES -> "'->'"
  | IFF -> "'<->'"
  | TRUE -> "'true'"
  | FALSE -> "'false'"
  | EXISTS -> "'exists'"
  | FORALL -> "'forall'"
  | ATLEAST -> "'atleast'"
  | EOF -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* every token carries the offset of its first character *)
let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let emit_at off t = tokens := (t, off) :: !tokens in
  while !i < n do
    let c = input.[!i] in
    let start = !i in
    let emit t = emit_at start t in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (emit LPAREN; incr i)
    else if c = ')' then (emit RPAREN; incr i)
    else if c = ',' then (emit COMMA; incr i)
    else if c = '.' then (emit DOT; incr i)
    else if c = '~' then (emit NOT; incr i)
    else if c = '&' then (emit AND; incr i)
    else if c = '|' then (emit OR; incr i)
    else if c = '=' then (emit EQ; incr i)
    else if c = '!' && !i + 1 < n && input.[!i + 1] = '=' then (emit NEQ; i := !i + 2)
    else if c = '/' && !i + 1 < n && input.[!i + 1] = '\\' then (emit AND; i := !i + 2)
    else if c = '\\' && !i + 1 < n && input.[!i + 1] = '/' then (emit OR; i := !i + 2)
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '>' then (emit IMPLIES; i := !i + 2)
    else if c = '<' && !i + 2 < n && input.[!i + 1] = '-' && input.[!i + 2] = '>'
    then (emit IFF; i := !i + 3)
    else if is_ident_char c then begin
      while !i < n && is_ident_char input.[!i] do incr i done;
      let word = String.sub input start (!i - start) in
      match word with
      | "true" -> emit TRUE
      | "false" -> emit FALSE
      | "not" -> emit NOT
      | "and" -> emit AND
      | "or" -> emit OR
      | "exists" -> emit EXISTS
      | "forall" -> emit FORALL
      | "atleast" -> emit ATLEAST
      | w -> emit (IDENT w)
    end
    else
      raise
        (Error_internal
           {
             message = Printf.sprintf "unexpected character %C" c;
             position = position_of_offset input !i;
             token = Some (Printf.sprintf "%C" c);
           })
  done;
  emit_at n EOF;
  List.rev !tokens

type state = { mutable toks : (token * int) list; input : string }

let peek st = match st.toks with [] -> EOF | (t, _) :: _ -> t

let peek_offset st =
  match st.toks with [] -> String.length st.input | (_, off) :: _ -> off

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

(* every syntax error points at the token the parser was looking at *)
let fail st message =
  let got = peek st in
  raise
    (Error_internal
       {
         message;
         position = position_of_offset st.input (peek_offset st);
         token = Some (token_to_string got);
       })

let expect st t =
  let got = peek st in
  if got = t then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (token_to_string t)
         (token_to_string got))

let expect_ident st =
  match peek st with
  | IDENT x ->
      advance st;
      x
  | got ->
      fail st
        (Printf.sprintf "expected an identifier but found %s"
           (token_to_string got))

let rec parse_formula st = parse_iff st

and parse_iff st =
  let lhs = parse_impl st in
  let rec loop acc =
    match peek st with
    | IFF ->
        advance st;
        let rhs = parse_impl st in
        loop (Formula.iff acc rhs)
    | _ -> acc
  in
  loop lhs

and parse_impl st =
  let lhs = parse_or st in
  match peek st with
  | IMPLIES ->
      advance st;
      let rhs = parse_impl st in
      Formula.implies lhs rhs
  | _ -> lhs

and parse_or st =
  let first = parse_and st in
  let rec loop acc =
    match peek st with
    | OR ->
        advance st;
        loop (parse_and st :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with [ f ] -> f | fs -> Formula.or_ fs

and parse_and st =
  let first = parse_unary st in
  let rec loop acc =
    match peek st with
    | AND ->
        advance st;
        loop (parse_unary st :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with [ f ] -> f | fs -> Formula.and_ fs

and parse_unary st =
  match peek st with
  | NOT ->
      advance st;
      Formula.not_ (parse_unary st)
  | ATLEAST ->
      advance st;
      let t =
        match peek st with
        | IDENT n -> (
            match int_of_string_opt n with
            | Some t when t >= 0 ->
                advance st;
                t
            | _ ->
                fail st
                  (Printf.sprintf
                     "atleast needs a non-negative threshold, got %S" n))
        | got ->
            fail st
              (Printf.sprintf "atleast needs a threshold but found %s"
                 (token_to_string got))
      in
      let x = expect_ident st in
      expect st DOT;
      let body = parse_formula st in
      Formula.count_ge t x body
  | EXISTS | FORALL ->
      let quant = peek st in
      advance st;
      let rec idents acc =
        match peek st with
        | IDENT x ->
            advance st;
            idents (x :: acc)
        | _ -> List.rev acc
      in
      let xs = idents [] in
      if xs = [] then fail st "quantifier must bind at least one variable";
      expect st DOT;
      let body = parse_formula st in
      if quant = EXISTS then Formula.exists_many xs body
      else Formula.forall_many xs body
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | TRUE ->
      advance st;
      Formula.tru
  | FALSE ->
      advance st;
      Formula.fls
  | LPAREN ->
      advance st;
      let f = parse_formula st in
      expect st RPAREN;
      f
  | IDENT name -> (
      advance st;
      match peek st with
      | EQ ->
          advance st;
          Formula.eq name (expect_ident st)
      | NEQ ->
          advance st;
          Formula.not_ (Formula.eq name (expect_ident st))
      | LPAREN ->
          advance st;
          let a = expect_ident st in
          let f =
            match peek st with
            | COMMA ->
                advance st;
                let b = expect_ident st in
                if name = "E" then Formula.edge a b
                else
                  fail st
                    (Printf.sprintf
                       "binary predicate %S is not part of the vocabulary"
                       name)
            | _ ->
                if name = "E" then
                  fail st "edge predicate E needs two arguments"
                else Formula.color name a
          in
          expect st RPAREN;
          f
      | got ->
          fail st
            (Printf.sprintf
               "identifier %S must begin an atom; found %s instead" name
               (token_to_string got)))
  | got ->
      fail st
        (Printf.sprintf "expected a formula but found %s" (token_to_string got))

let parse_result input =
  match
    let st = { toks = lex input; input } in
    let f = parse_formula st in
    expect st EOF;
    f
  with
  | f -> Ok f
  | exception Error_internal e -> Error e

let parse input =
  match parse_result input with
  | Ok f -> f
  | Error e -> raise (Parse_error (error_to_string e))

let parse_opt input =
  match parse_result input with Ok f -> Some f | Error _ -> None
