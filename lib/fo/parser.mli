(** A hand-written recursive-descent parser for the concrete formula syntax
    produced by {!Formula.pp}.

    Grammar (precedence increasing downwards, [->] right-associative):
    {v
      formula := iff
      iff     := impl ('<->' impl)*
      impl    := or ('->' impl)?
      or      := and (('\/' | 'or' | '|') and)*
      and     := unary (('/\' | 'and' | '&') unary)*
      unary   := ('~' | 'not') unary | quantified | primary
      quantified := ('exists' | 'forall') ident+ '.' formula
                   | 'atleast' nat ident '.' formula        (counting)
      primary := '(' formula ')' | 'true' | 'false' | atom
      atom    := ident '=' ident | ident '!=' ident
               | 'E' '(' ident ',' ident ')'       (edge)
               | ident '(' ident ')'               (colour)
    v}

    Quantifier bodies extend as far right as possible. *)

exception Parse_error of string
(** Raised with a human-readable message — ["line L, column C: ...
    (at <token>)"] — pointing at the offending token. *)

type position = { line : int; col : int }
(** 1-based source position. *)

type error = {
  message : string;  (** what went wrong *)
  position : position;  (** where (first character of the bad token) *)
  token : string option;  (** the offending token, printable form *)
}

val error_to_string : error -> string
(** ["line L, column C: <message> (at <token>)"]. *)

val pp_error : Format.formatter -> error -> unit

val parse_result : string -> (Formula.t, error) result
(** Structured-error parse: never raises on malformed input. *)

val parse : string -> Formula.t
(** @raise Parse_error on malformed input. *)

val parse_opt : string -> Formula.t option
(** Like {!parse} but returns [None] instead of raising. *)
