exception Unsupported of string

let rec quantifier_free = function
  | Formula.True | Formula.False | Formula.Atom _ -> true
  | Formula.Not f -> quantifier_free f
  | Formula.And fs | Formula.Or fs -> List.for_all quantifier_free fs
  | Formula.Implies (a, b) | Formula.Iff (a, b) ->
      quantifier_free a && quantifier_free b
  | Formula.Exists _ | Formula.Forall _ | Formula.CountGe _ -> false

let rec is_prenex = function
  | Formula.Exists (_, f) | Formula.Forall (_, f) -> is_prenex f
  | f -> quantifier_free f

let rec prefix_length = function
  | Formula.Exists (_, f) | Formula.Forall (_, f) -> 1 + prefix_length f
  | _ -> 0

type quant = Ex of Formula.var | All of Formula.var

let to_prenex phi =
  (* Fresh names are derived from the set of variables already appearing
     in [phi] (free or bound): a generated [_pN] that collides with an
     existing variable would capture it.  Skipping taken names keeps the
     output both correct and deterministic across repeated runs. *)
  let used = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace used v ()) (Formula.all_vars phi);
  let counter = ref 0 in
  let rec fresh () =
    incr counter;
    let cand = Printf.sprintf "_p%d" !counter in
    if Hashtbl.mem used cand then fresh ()
    else begin
      Hashtbl.replace used cand ();
      cand
    end
  in
  (* input in NNF: atoms, negated atoms, and/or, quantifiers *)
  let rec pull (f : Formula.t) : quant list * Formula.t =
    match f with
    | True | False | Atom _ | Not (Atom _) -> ([], f)
    | Exists (x, body) ->
        let x' = fresh () in
        let prefix, matrix = pull (Formula.substitute [ (x, x') ] body) in
        (Ex x' :: prefix, matrix)
    | Forall (x, body) ->
        let x' = fresh () in
        let prefix, matrix = pull (Formula.substitute [ (x, x') ] body) in
        (All x' :: prefix, matrix)
    | And fs ->
        let parts = List.map pull fs in
        (List.concat_map fst parts, Formula.and_ (List.map snd parts))
    | Or fs ->
        let parts = List.map pull fs in
        (List.concat_map fst parts, Formula.or_ (List.map snd parts))
    | CountGe _ | Not (CountGe _) ->
        raise (Unsupported "counting quantifiers have no prenex form here")
    | Not _ | Implies _ | Iff _ ->
        (* cannot happen after NNF *)
        assert false
  in
  let prefix, matrix = pull (Formula.nnf phi) in
  List.fold_right
    (fun q acc ->
      match q with
      | Ex x -> Formula.exists x acc
      | All x -> Formula.forall x acc)
    prefix matrix
