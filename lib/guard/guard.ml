type checkpoint =
  | Solver_loop
  | Hintikka_build
  | Bfs_frontier
  | Catalogue_growth
  | Eval_step

type reason =
  | Out_of_fuel
  | Deadline
  | Table_cap
  | Ball_cap
  | Catalogue_cap
  | Injected_fault
  | Interrupted

let checkpoint_to_string = function
  | Solver_loop -> "solver_loop"
  | Hintikka_build -> "hintikka_build"
  | Bfs_frontier -> "bfs_frontier"
  | Catalogue_growth -> "catalogue_growth"
  | Eval_step -> "eval_step"

let reason_to_string = function
  | Out_of_fuel -> "out_of_fuel"
  | Deadline -> "deadline"
  | Table_cap -> "table_cap"
  | Ball_cap -> "ball_cap"
  | Catalogue_cap -> "catalogue_cap"
  | Injected_fault -> "injected_fault"
  | Interrupted -> "interrupted"

(* Would an identical re-run trip the same reason again?  The fuel and
   size caps are pure functions of the input and the declared limits;
   the deadline depends on machine load and the interrupt on the
   operator, and an injected fault is whatever its plan says. *)
let reason_is_deterministic = function
  | Out_of_fuel | Table_cap | Ball_cap | Catalogue_cap -> true
  | Deadline | Injected_fault | Interrupted -> false

let all_checkpoints =
  [ Solver_loop; Hintikka_build; Bfs_frontier; Catalogue_growth; Eval_step ]

let checkpoint_index = function
  | Solver_loop -> 0
  | Hintikka_build -> 1
  | Bfs_frontier -> 2
  | Catalogue_growth -> 3
  | Eval_step -> 4

type spent = {
  fuel : int;
  elapsed_ns : int64;
  table_rows : int;
  ball_peak : int;
  catalogue_entries : int;
}

let spent_to_json s =
  Obs.Json.Obj
    [
      ("fuel", Obs.Json.Int s.fuel);
      ("elapsed_ns", Obs.Json.Float (Int64.to_float s.elapsed_ns));
      ("table_rows", Obs.Json.Int s.table_rows);
      ("ball_peak", Obs.Json.Int s.ball_peak);
      ("catalogue_entries", Obs.Json.Int s.catalogue_entries);
    ]

module Faults = struct
  (* A plan is a pure predicate over (checkpoint class, 1-based hit
     count), so a failing run replays exactly. *)
  type t = checkpoint -> int -> bool

  let none _ _ = false
  let trip_at cp ~n cp' n' = cp = cp' && n = n'

  (* SplitMix-style finaliser: decorrelates (seed, checkpoint, count)
     without any mutable state. *)
  let mix seed cp n =
    let z = seed lxor ((checkpoint_index cp + 1) * 0x9e3779b9) lxor (n * 0x85ebca6b) in
    let z = (z lxor (z lsr 16)) * 0x45d9f3b land max_int in
    let z = (z lxor (z lsr 16)) * 0x45d9f3b land max_int in
    z lxor (z lsr 16)

  let seeded ~seed ~rate cp n =
    rate > 0.
    && float_of_int (mix seed cp n land 0xFFFFFF) /. 16777216. < rate

  let any plans cp n = List.exists (fun p -> p cp n) plans
  let fires (t : t) cp n = t cp n
end

(* The live state behind an installed budget.  Counters are [Atomic]
   so one budget can govern a whole [Par] pool: fuel and per-checkpoint
   hit counts are shared fetch-and-add totals (a fault plan's n-th hit
   happens exactly once regardless of which worker lands on it), peaks
   are CAS-max cells, and [tripped] is a write-once cell — the first
   tripping worker records (reason, checkpoint); every other worker
   observes it at its next tick and unwinds cooperatively. *)
type state = {
  fuel_limit : int option;
  timeout_s : float option;  (* as given to [make]; [deadline_ns] is derived *)
  deadline_ns : int64 option;  (* absolute, on the obs monotonic clock *)
  max_table : int option;
  max_ball : int option;
  max_catalogue : int option;
  faults : Faults.t;
  born_ns : int64;
  fuel_used : int Atomic.t;
  table_rows : int Atomic.t;  (* peak *)
  ball_peak : int Atomic.t;
  catalogue_entries : int Atomic.t;  (* peak *)
  clock_stride : int Atomic.t;  (* countdown to the next deadline check *)
  tripped : (reason * checkpoint) option Atomic.t;
  hits : int Atomic.t array;  (* per checkpoint class *)
}

module Budget = struct
  type t = state

  let make ?fuel ?timeout_s ?deadline_ns ?max_table ?max_ball ?max_catalogue
      ?(faults = Faults.none) () =
    let born_ns = Obs.Clock.now_ns () in
    let relative_ns =
      Option.map
        (fun s -> Int64.add born_ns (Int64.of_float (s *. 1e9)))
        timeout_s
    in
    (* an absolute deadline composes with a relative timeout by taking
       whichever lands first: a server clamps a client's timeout to the
       tenant's wall-clock allowance this way *)
    let deadline_ns =
      match (relative_ns, deadline_ns) with
      | None, d -> d
      | r, None -> r
      | Some r, Some d -> Some (if Int64.compare r d <= 0 then r else d)
    in
    (* [limits] must keep reflecting the wall-clock cap so static
       admission ([Analysis.Plan]) can reason about it *)
    let timeout_s =
      match (timeout_s, deadline_ns) with
      | Some _, _ | _, None -> timeout_s
      | None, Some d ->
          Some (Int64.to_float (Int64.sub d born_ns) /. 1e9)
    in
    {
      fuel_limit = fuel;
      timeout_s;
      deadline_ns;
      max_table;
      max_ball;
      max_catalogue;
      faults;
      born_ns;
      fuel_used = Atomic.make 0;
      table_rows = Atomic.make 0;
      ball_peak = Atomic.make 0;
      catalogue_entries = Atomic.make 0;
      clock_stride = Atomic.make 0;
      tripped = Atomic.make None;
      hits = Array.init 5 (fun _ -> Atomic.make 0);
    }

  let unlimited () = make ()

  type limits = {
    l_fuel : int option;
    l_timeout_s : float option;
    l_max_table : int option;
    l_max_ball : int option;
    l_max_catalogue : int option;
  }

  let limits t =
    {
      l_fuel = t.fuel_limit;
      l_timeout_s = t.timeout_s;
      l_max_table = t.max_table;
      l_max_ball = t.max_ball;
      l_max_catalogue = t.max_catalogue;
    }

  let of_limits ?(faults = Faults.none) l =
    make ?fuel:l.l_fuel ?timeout_s:l.l_timeout_s ?max_table:l.l_max_table
      ?max_ball:l.l_max_ball ?max_catalogue:l.l_max_catalogue ~faults ()

  let spent t =
    {
      fuel = Atomic.get t.fuel_used;
      elapsed_ns = Int64.sub (Obs.Clock.now_ns ()) t.born_ns;
      table_rows = Atomic.get t.table_rows;
      ball_peak = Atomic.get t.ball_peak;
      catalogue_entries = Atomic.get t.catalogue_entries;
    }

  let tripped t = Atomic.get t.tripped

  let for_stage t =
    {
      t with
      fuel_used = Atomic.make 0;
      table_rows = Atomic.make 0;
      ball_peak = Atomic.make 0;
      catalogue_entries = Atomic.make 0;
      clock_stride = Atomic.make 0;
      tripped = Atomic.make None;
      hits = Array.init 5 (fun _ -> Atomic.make 0);
    }
end

(* The one exception of the subsystem.  It is not exported: the only
   handler is [run], so exhaustion cannot escape to callers. *)
exception Exhausted_internal

(* The stop signal is a control-flow edge, not a worker fault: a [Par]
   chunk that unwinds on it must not be re-attempted (a retried chunk
   would immediately unwind again, and fault-plan determinism relies on
   hit counts advancing exactly once). *)
let () =
  Par.register_no_retry (function Exhausted_internal -> true | _ -> false)

(* Process-wide interrupt request (SIGINT/SIGTERM from the CLI's signal
   handler, which must stay async-signal-safe: it only sets this flag).
   The budgeted tick path converts it into an [Interrupted] trip, so a
   signal unwinds exactly like exhaustion — cooperatively, with
   salvage. *)
let interrupt_flag = Atomic.make false
let interrupt () = Atomic.set interrupt_flag true
let interrupt_requested () = Atomic.get interrupt_flag
let clear_interrupt () = Atomic.set interrupt_flag false

(* An optional hook run after every surviving budgeted tick — the
   checkpoint-cadence writer of [Resil] attaches here.  Firing only on
   the budgeted path keeps the no-budget tick at one load + branch. *)
let tick_hook : (unit -> unit) option Atomic.t = Atomic.make None
let set_tick_hook h = Atomic.set tick_hook h

(* [Atomic] rather than a plain ref: pool workers read the installed
   budget concurrently with the main domain (un)installing it. *)
let current : state option Atomic.t = Atomic.make None
let active () = Option.is_some (Atomic.get current)

(* How many ticks between wall-clock reads.  A clock read is a
   syscall-order cost; 32 checkpoints of real solver work dwarf it. *)
let deadline_stride = 32

let exhausted_total = Obs.Metric.counter "guard.exhausted"

let exhausted_counter reason =
  Obs.Metric.counter ("guard.exhausted." ^ reason_to_string reason)

let trip st reason cp =
  (* write-once: under parallelism the first tripper wins, every later
     (or concurrent) tripper just joins the unwind *)
  if Atomic.compare_and_set st.tripped None (Some (reason, cp)) then
    Obs.Event.record ~kind:"guard"
      ~args:
        [
          ("reason", reason_to_string reason);
          ("checkpoint", checkpoint_to_string cp);
          ("fuel", string_of_int (Atomic.get st.fuel_used));
        ]
      "guard.trip";
  raise Exhausted_internal

(* CAS-max: lock-free peak tracking *)
let rec store_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then store_max cell v

let check_deadline st cp =
  match st.deadline_ns with
  | None -> ()
  | Some deadline ->
      (* racy stride decrements only jitter the check cadence *)
      if Atomic.fetch_and_add st.clock_stride (-1) <= 0 then begin
        Atomic.set st.clock_stride deadline_stride;
        if Int64.compare (Obs.Clock.now_ns ()) deadline >= 0 then
          trip st Deadline cp
      end

let tick_st st cost cp =
  (* cooperative cancellation: once any worker trips, every other
     worker unwinds at its next checkpoint *)
  if Option.is_some (Atomic.get st.tripped) then raise Exhausted_internal;
  if Atomic.get interrupt_flag then trip st Interrupted cp;
  let fuel = Atomic.fetch_and_add st.fuel_used cost + cost in
  let i = checkpoint_index cp in
  let hit = Atomic.fetch_and_add st.hits.(i) 1 + 1 in
  if Faults.fires st.faults cp hit then trip st Injected_fault cp;
  (match st.fuel_limit with
  | Some limit when fuel > limit -> trip st Out_of_fuel cp
  | _ -> ());
  check_deadline st cp;
  match Atomic.get tick_hook with None -> () | Some h -> h ()

let tick ?(cost = 1) cp =
  match Atomic.get current with None -> () | Some st -> tick_st st cost cp

let note_table_row rows =
  match Atomic.get current with
  | None -> ()
  | Some st ->
      store_max st.table_rows rows;
      (match st.max_table with
      | Some cap when rows > cap -> trip st Table_cap Hintikka_build
      | _ -> ());
      tick_st st 1 Hintikka_build

let note_ball size =
  match Atomic.get current with
  | None -> ()
  | Some st ->
      store_max st.ball_peak size;
      (match st.max_ball with
      | Some cap when size > cap -> trip st Ball_cap Bfs_frontier
      | _ -> ());
      tick_st st 1 Bfs_frontier

let note_catalogue entries =
  match Atomic.get current with
  | None -> ()
  | Some st ->
      store_max st.catalogue_entries entries;
      (match st.max_catalogue with
      | Some cap when entries > cap -> trip st Catalogue_cap Catalogue_growth
      | _ -> ());
      tick_st st 1 Catalogue_growth

type 'a outcome =
  | Complete of 'a
  | Exhausted of {
      best_so_far : 'a option;
      reason : reason;
      checkpoint : checkpoint;
      spent : spent;
    }

let run ?budget ~salvage f =
  match budget with
  | None -> Complete (f ())
  | Some b ->
      let prev = Atomic.get current in
      Atomic.set current (Some b);
      let restore () = Atomic.set current prev in
      let result =
        try Ok (f ())
        with
        | Exhausted_internal -> Error ()
        | e ->
            restore ();
            raise e
      in
      (match result with
      | Ok v ->
          restore ();
          Complete v
      | Error () ->
          let reason, checkpoint =
            match Atomic.get b.tripped with
            | Some rc -> rc
            | None -> (Out_of_fuel, Solver_loop)
            (* unreachable: only [trip] raises, and it records first *)
          in
          (* Salvage runs with no budget installed, so materialising
             the best-so-far answer cannot itself trip. *)
          Atomic.set current None;
          let best =
            match salvage () with
            | b -> b
            | exception _ -> None
          in
          restore ();
          Obs.Metric.incr exhausted_total;
          Obs.Metric.incr (exhausted_counter reason);
          Obs.Event.record ~kind:"guard"
            ~args:
              [
                ("reason", reason_to_string reason);
                ("checkpoint", checkpoint_to_string checkpoint);
                ("salvaged", string_of_bool (Option.is_some best));
              ]
            "guard.exhausted";
          Exhausted { best_so_far = best; reason; checkpoint; spent = Budget.spent b })

let outcome_map f = function
  | Complete v -> Complete (f v)
  | Exhausted e -> Exhausted { e with best_so_far = Option.map f e.best_so_far }

let outcome_value = function
  | Complete v -> Some v
  | Exhausted { best_so_far; _ } -> best_so_far

let pp_outcome pp_v ppf = function
  | Complete v -> Format.fprintf ppf "@[<2>Complete@ %a@]" pp_v v
  | Exhausted { best_so_far; reason; checkpoint; spent } ->
      Format.fprintf ppf
        "@[<2>Exhausted@ { reason = %s;@ checkpoint = %s;@ fuel = %d;@ best = %a }@]"
        (reason_to_string reason)
        (checkpoint_to_string checkpoint)
        spent.fuel
        (Format.pp_print_option
           ~none:(fun ppf () -> Format.pp_print_string ppf "<none>")
           pp_v)
        best_so_far
