(** Cooperative resource governance for the learning pipeline.

    Every headline object of the paper is galactic: Gaifman radii grow
    like [7^q], hypothesis catalogues are towers in [Phi(q,k,l)], and
    the hardness reduction leans on Ramsey numbers.  Any user-supplied
    [q]/[k] beyond toy scale therefore sends the enumerate-and-check
    solvers into effectively unbounded work.  This module bounds that
    work {e cooperatively}: long-running loops call {!tick} (or one of
    the [note_*] observers) at their checkpoints, and an ambient
    {!Budget.t} — fuel, a wall-clock deadline on the obs monotonic
    clock, and size caps — decides when to stop them.

    Exhaustion never escapes as an exception.  The only way to install
    a budget is {!run}, which converts the internal stop signal into a
    structured {!outcome}: [Complete v] when the computation finished,
    or [Exhausted] carrying the best answer salvaged so far, the
    {!reason} and {!checkpoint} of the trip, and the resources
    {!type-spent}.

    Cost discipline matches [Obs.Sink]: with no budget installed a
    {!tick} is one load and one branch.  Deadline checks amortise the
    clock syscall over a stride of ticks.

    A deterministic fault-injection harness ({!Faults}) can force a
    trip at any checkpoint, so tests can exercise every degradation
    path without constructing a galactic instance. *)

(** {1 Checkpoints and reasons} *)

(** Where in the pipeline a budget check happens.  Each long-running
    loop declares which class it belongs to; fault plans target these
    classes. *)
type checkpoint =
  | Solver_loop  (** candidate enumeration in the [Erm_*] solvers and
                     the decision nodes of [Reduction.model_check] *)
  | Hintikka_build  (** type computation ([Types.tp]/[ltp]) and
                        Hintikka-formula construction *)
  | Bfs_frontier  (** vertex dequeues in [Cgraph.Bfs] traversals *)
  | Catalogue_growth  (** formulas added to a hypothesis catalogue *)
  | Eval_step  (** quantifier nodes in [Modelcheck.Eval] *)

(** Why a budget tripped. *)
type reason =
  | Out_of_fuel  (** the fuel allowance ran out *)
  | Deadline  (** the wall-clock deadline passed *)
  | Table_cap  (** too many Hintikka-table rows *)
  | Ball_cap  (** a neighbourhood ball grew past the cap *)
  | Catalogue_cap  (** the catalogue grew past the cap *)
  | Injected_fault  (** a {!Faults} plan fired *)
  | Interrupted  (** {!interrupt} was requested (SIGINT/SIGTERM) *)

val checkpoint_to_string : checkpoint -> string
val reason_to_string : reason -> string

val reason_is_deterministic : reason -> bool
(** Would an identical re-run trip the same reason again?  True for
    the fuel and size caps (pure functions of the input and the
    declared limits), false for [Deadline], [Interrupted] and
    [Injected_fault].  The fleet coordinator uses this to mark a
    chunk's budget exhaustion as a deterministic failure (headed for
    quarantine) rather than a transient one (retried with backoff). *)

val all_checkpoints : checkpoint list

(** Resources consumed at the moment the budget was read. *)
type spent = {
  fuel : int;  (** checkpoints passed *)
  elapsed_ns : int64;  (** wall-clock time since the budget was made *)
  table_rows : int;  (** peak Hintikka-table rows observed *)
  ball_peak : int;  (** largest neighbourhood ball observed *)
  catalogue_entries : int;  (** peak catalogue size observed *)
}

val spent_to_json : spent -> Obs.Json.t

(** {1 Fault injection} *)

(** Deterministic fault plans.  A plan decides, from the checkpoint
    class and the number of times that class has been hit, whether to
    force a trip ([Injected_fault]).  Plans are pure, so a failing run
    replays exactly. *)
module Faults : sig
  type t

  val none : t

  val trip_at : checkpoint -> n:int -> t
  (** [trip_at cp ~n] fires on the [n]-th hit (1-based) of checkpoint
      class [cp], and never elsewhere. *)

  val seeded : seed:int -> rate:float -> t
  (** [seeded ~seed ~rate] fires pseudo-randomly with probability
      [rate] per hit, deterministically in [seed], the checkpoint
      class, and the hit count. *)

  val any : t list -> t
  (** Fires whenever any constituent plan fires. *)

  val fires : t -> checkpoint -> int -> bool
  (** [fires t cp n] — does plan [t] fire on the [n]-th hit of [cp]?
      (1-based; exposed for tests.) *)
end

(** {1 Budgets} *)

module Budget : sig
  type t

  val make :
    ?fuel:int ->
    ?timeout_s:float ->
    ?deadline_ns:int64 ->
    ?max_table:int ->
    ?max_ball:int ->
    ?max_catalogue:int ->
    ?faults:Faults.t ->
    unit ->
    t
  (** Omitted limits are unlimited.  The deadline is absolute: it is
      [timeout_s] from the moment [make] is called, on the obs
      monotonic clock.  [deadline_ns] is an already-absolute deadline
      on that clock (a server stamps it at admission so queue wait
      counts against the request); when both are given the earlier one
      governs, and {!limits} reports the resulting wall-clock cap as
      [l_timeout_s]. *)

  val unlimited : unit -> t
  (** No limits — useful to account {!type-spent} without bounding. *)

  (** The declarative part of a budget: its limits, without the live
      counters.  This is what a static planner ([Analysis.Plan]) reasons
      about — it cannot depend on a running budget, only on the caps the
      user asked for. *)
  type limits = {
    l_fuel : int option;
    l_timeout_s : float option;
    l_max_table : int option;
    l_max_ball : int option;
    l_max_catalogue : int option;
  }

  val limits : t -> limits
  (** The limits this budget was created with ([l_timeout_s] is the
      original relative timeout, not the remaining time). *)

  val of_limits : ?faults:Faults.t -> limits -> t
  (** A fresh budget with the given limits; the deadline restarts from
      now.  [limits (of_limits l) = l]. *)

  val spent : t -> spent

  val tripped : t -> (reason * checkpoint) option
  (** [Some _] once the budget has stopped a computation. *)

  val for_stage : t -> t
  (** A fresh budget for a fallback stage: same limits and fault plan,
      fresh fuel/cap counters, but the {e same absolute deadline} — a
      degradation chain shares one wall clock. *)
end

(** {1 Checkpoint API (called by instrumented code)} *)

val active : unit -> bool
(** Is a budget currently installed?  One load and one branch. *)

val tick : ?cost:int -> checkpoint -> unit
(** Pass a checkpoint, consuming [cost] fuel (default 1).  No-op when
    no budget is installed.  When the installed budget is out of fuel,
    past its deadline, or the fault plan fires, control unwinds to the
    enclosing {!run} — never past it. *)

val note_table_row : int -> unit
(** Report the current Hintikka-table row count; trips [Table_cap]
    when it exceeds the budget's [max_table].  Also a
    [Hintikka_build] tick. *)

val note_ball : int -> unit
(** Report a neighbourhood-ball size; trips [Ball_cap] above
    [max_ball].  Also a [Bfs_frontier] tick. *)

val note_catalogue : int -> unit
(** Report the catalogue size; trips [Catalogue_cap] above
    [max_catalogue].  Also a [Catalogue_growth] tick. *)

(** {1 Interrupts}

    A POSIX signal handler may only do async-signal-safe work, so the
    CLI's SIGINT/SIGTERM handler just calls {!interrupt}.  The next
    budgeted {!tick} on any domain converts the flag into an
    [Interrupted] trip: the run unwinds to {!run} cooperatively, the
    salvage hook recovers the best-so-far answer, and the caller can
    flush a final checkpoint before exiting. *)

val interrupt : unit -> unit
(** Request a cooperative stop (async-signal-safe: one atomic store). *)

val interrupt_requested : unit -> bool
val clear_interrupt : unit -> unit

val set_tick_hook : (unit -> unit) option -> unit
(** Install (or remove, with [None]) a hook run after every surviving
    budgeted tick, on whichever domain ticked.  Used by the checkpoint
    cadence writer ([Resil.Ctl]); the hook must be cheap, re-entrant
    across domains, and must not raise.  Unbudgeted ticks never invoke
    it, so the no-budget hot path is unchanged. *)

(** {1 Running under a budget} *)

(** Result of a governed computation. *)
type 'a outcome =
  | Complete of 'a
  | Exhausted of {
      best_so_far : 'a option;
          (** what the salvage hook recovered — for ERM solvers, the
              best hypothesis seen with its empirical error (still a
              sound hypothesis under agnostic semantics, only without
              the min-error certificate) *)
      reason : reason;
      checkpoint : checkpoint;
      spent : spent;
    }

val run : ?budget:Budget.t -> salvage:(unit -> 'a option) -> (unit -> 'a) -> 'a outcome
(** [run ?budget ~salvage f] evaluates [f ()] with [budget] installed.

    - With no [budget], this is transparent: [Complete (f ())].  (An
      ambient budget installed by an enclosing [run] keeps governing.)
    - On completion, returns [Complete v].
    - On exhaustion, calls [salvage ()] {e with the budget
      uninstalled} (so salvaging cannot itself trip), records an obs
      exhaustion counter, and returns [Exhausted].

    Budgets nest: during [f], the previous ambient budget is shadowed
    and restored on exit.  Exceptions other than the internal stop
    signal propagate unchanged. *)

val outcome_map : ('a -> 'b) -> 'a outcome -> 'b outcome

val outcome_value : 'a outcome -> 'a option
(** [Complete v] and [Exhausted {best_so_far = Some v; _}] both yield
    [Some v]. *)

val pp_outcome :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a outcome -> unit
